module fcpn

go 1.22

// Package fcpn synthesises embedded software from Free-Choice Petri Net
// specifications by quasi-static scheduling, reproducing Sgroi, Lavagno,
// Watanabe and Sangiovanni-Vincentelli, "Synthesis of Embedded Software
// Using Free-Choice Petri Nets" (DAC 1999).
//
// A specification is a Free-Choice Petri Net: transitions are data
// computations, places are (non-FIFO) channels, and a place with several
// output transitions is a data-dependent control point (an if-then-else or
// while-do abstracted as a non-deterministic free choice). Source
// transitions model environment inputs; inputs whose rates are not
// rationally related (a keyboard and a timer, say) are *independent-rate*
// inputs.
//
// The pipeline:
//
//	net := fcpn.MustParseString(spec)        // or build with fcpn.NewBuilder
//	syn, err := fcpn.Synthesize(net, fcpn.Options{})
//	fmt.Println(syn.C(true))                 // the generated C program
//
// Synthesize checks quasi-static schedulability (decidable for FCPNs:
// every T-reduction of the net must be consistent, cover the sources with
// T-invariants, and complete a deadlock-free finite cycle), computes a
// valid schedule — one finite complete cycle per distinct T-reduction —
// partitions the net into the minimum number of tasks (one per group of
// dependent-rate inputs), and emits one C task function per input, with
// if-then-else for choices, counting variables for multirate firing and
// shared drain helpers for merge places.
//
// A net that is not schedulable cannot run forever in bounded memory; the
// returned *NotSchedulableError names the failing T-reduction and why.
//
// The underlying analyses are available individually: Solve (scheduling
// only), PartitionTasks, Generate/EmitC (code generation), and the text
// format Parse/Format. The internal packages additionally provide
// T/P-invariants, Karp–Miller coverability, siphon/trap analysis, SDF
// static scheduling, a cost-model RTOS simulator, and the paper's ATM
// server case study.
package fcpn

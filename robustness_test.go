package fcpn

import (
	"encoding/json"
	"errors"
	"os"
	"testing"

	"fcpn/internal/atm"
	"fcpn/internal/fault"
	"fcpn/internal/modem"
	"fcpn/internal/rtos"
	"fcpn/internal/sim"
	"fcpn/internal/timing"
)

// loadNet parses one of the shipped example nets.
func loadNet(t *testing.T, path string) *Net {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestATMBoundsUnderBurstScenarios is the acceptance regression: the ATM
// server net synthesised from examples/nets/atmserver.pn reports zero
// structural bound violations under ten seeded burst scenarios.
func TestATMBoundsUnderBurstScenarios(t *testing.T) {
	n := loadNet(t, "examples/nets/atmserver.pn")
	syn, err := Synthesize(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sources := n.SourceTransitions()
	if len(sources) == 0 {
		t.Fatal("atmserver.pn has no source transitions")
	}
	var streams [][]rtos.Event
	for i, src := range sources {
		streams = append(streams, rtos.Periodic(src, int64(2*i+3), int64(i), 40))
	}
	base := rtos.Merge(streams...)
	limits, err := sim.StructuralLimits(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range fault.BurstScenarios(10, 0xFA117, fault.AnySource, 50, 3) {
		events := sc.Apply(base)
		ds := sim.NewDecisionStream(n, sc.Seed)
		rm, err := sim.RunRobust(syn.Program, events, rtos.DefaultCostModel(),
			sim.RobustConfig{Limits: limits}, sim.Hooks{Resolver: ds.Resolver()})
		if err != nil {
			t.Fatalf("scenario %s: %v", sc.Name, err)
		}
		if rm.BoundViolations != 0 {
			t.Fatalf("scenario %s: %d structural bound violations: %v",
				sc.Name, rm.BoundViolations, rm.Violations)
		}
	}
}

// TestATMRobustnessReportDeterministic checks the byte-identical
// reproducibility claim: the same seed yields the identical report.
func TestATMRobustnessReportDeterministic(t *testing.T) {
	cfg := atm.RobustnessConfig{
		Workload:      atm.DefaultWorkload(),
		Scenarios:     6,
		FaultSeed:     0xFA117,
		QueueCapacity: 8,
		Policy:        rtos.DropOldest,
		Deadline:      20000,
		OverrunPct:    15,
	}
	cost := rtos.DefaultCostModel()
	first, err := atm.RunRobustness(cfg, cost)
	if err != nil {
		t.Fatal(err)
	}
	second, err := atm.RunRobustness(cfg, cost)
	if err != nil {
		t.Fatal(err)
	}
	if first.Format() != second.Format() {
		t.Fatalf("same seed produced different reports:\n--- first\n%s--- second\n%s",
			first.Format(), second.Format())
	}
	if first.TotalViolations() != 0 {
		t.Fatalf("ATM robustness run violated structural bounds:\n%s", first.Format())
	}
	// A different seed must change the report (scenario seeds differ).
	cfg.FaultSeed = 0xBEEF
	third, err := atm.RunRobustness(cfg, cost)
	if err != nil {
		t.Fatal(err)
	}
	if first.Format() == third.Format() {
		t.Fatal("different fault seeds produced identical reports")
	}
}

// TestModemRobustness replays the modem under the mixed fault catalogue:
// the simulator must not panic and the structural bounds must hold.
func TestModemRobustness(t *testing.T) {
	m, err := modem.New()
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Synthesize(m.Net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	limits, err := sim.StructuralLimits(m.Net)
	if err != nil {
		t.Fatal(err)
	}
	base := rtos.Merge(
		rtos.Periodic(m.Sample, 5, 0, 60),
		rtos.Bursty(m.Cmd, 40, 8, 0xC0FFEE),
	)
	for _, sc := range fault.DefaultScenarios(10, 0x30DE) {
		events := sc.Apply(base)
		line := modem.NewLine(m)
		rm, err := sim.RunRobust(syn.Program, events, rtos.DefaultCostModel(), sim.RobustConfig{
			Queue:  rtos.QueueConfig{Capacity: 6, Policy: rtos.DropNewest},
			Limits: limits,
		}, sim.Hooks{
			Resolver: line.Resolver(),
			OnFire:   line.OnFire,
			BeforeEvent: func(ev rtos.Event) {
				switch ev.Source {
				case m.Sample:
					line.BeginSample()
				case m.Cmd:
					line.BeginCmd()
				}
			},
		})
		if err != nil {
			t.Fatalf("scenario %s: %v", sc.Name, err)
		}
		if rm.BoundViolations != 0 {
			t.Fatalf("scenario %s: %d violations: %v", sc.Name, rm.BoundViolations, rm.Violations)
		}
	}
}

// TestATMTimingSafetyMargins is the tentpole acceptance check for the ATM
// server: the overload-margin search produces finite non-negative margins
// under two injector kinds, reproducible byte-for-byte from the same seed,
// and every scenario carries a concrete weakly-hard verdict.
func TestATMTimingSafetyMargins(t *testing.T) {
	cfg := atm.RobustnessConfig{
		Workload:    atm.DefaultWorkload(),
		Scenarios:   3,
		FaultSeed:   0xFA117,
		MK:          timing.Constraint{M: 8, K: 10},
		MarginKinds: []sim.OverloadKind{sim.OverloadBurst, sim.OverloadOverrun},
	}
	cost := rtos.DefaultCostModel()
	first, err := atm.RunRobustness(cfg, cost)
	if err != nil {
		t.Fatal(err)
	}
	second, err := atm.RunRobustness(cfg, cost)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatalf("same seed produced different timing reports:\n%s\nvs\n%s", a, b)
	}
	ts := first.Timing
	if ts == nil || ts.MK != "(8,10)" || ts.Deadline <= 0 {
		t.Fatalf("missing timing block: %+v", ts)
	}
	if len(ts.Margins) != 2 ||
		ts.Margins[0].Kind != sim.OverloadBurst.String() ||
		ts.Margins[1].Kind != sim.OverloadOverrun.String() {
		t.Fatalf("margins = %+v", ts.Margins)
	}
	for _, om := range ts.Margins {
		if om.Result == nil || om.Result.Level < 0 || om.Result.Level > om.Result.Ceiling {
			t.Fatalf("margin %s not finite: %+v", om.Kind, om.Result)
		}
		if om.Deadline != ts.Deadline {
			t.Fatalf("margin %s deadline %d != calibrated %d", om.Kind, om.Deadline, ts.Deadline)
		}
	}
	for _, sc := range first.Scenarios {
		if sc.Timing == nil || sc.Timing.Events == 0 {
			t.Fatalf("scenario %s has no timing verdict: %+v", sc.Name, sc.Timing)
		}
	}
}

// TestModemTimingSafetyMargins mirrors the ATM acceptance check on the
// modem: nominal verdict satisfied under the calibrated deadline, finite
// reproducible margins under burst and overrun.
func TestModemTimingSafetyMargins(t *testing.T) {
	kinds := []sim.OverloadKind{sim.OverloadBurst, sim.OverloadOverrun}
	mk := timing.Constraint{M: 9, K: 10}
	cost := rtos.DefaultCostModel()
	first, err := modem.RunTimingSafety(modem.DefaultWorkload(), cost, mk, 0, kinds, 0x30DE)
	if err != nil {
		t.Fatal(err)
	}
	second, err := modem.RunTimingSafety(modem.DefaultWorkload(), cost, mk, 0, kinds, 0x30DE)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatalf("same seed produced different modem timing results:\n%s\nvs\n%s", a, b)
	}
	if first.Deadline <= 0 || first.Verdict == nil || !first.Verdict.Satisfied {
		t.Fatalf("nominal modem run must satisfy %s under the calibrated deadline: %+v", mk, first)
	}
	if len(first.Margins) != 2 {
		t.Fatalf("margins = %+v", first.Margins)
	}
	for _, om := range first.Margins {
		if om.Result == nil || om.Result.Level < 0 || om.Result.Level > om.Result.Ceiling {
			t.Fatalf("margin %s not finite: %+v", om.Kind, om.Result)
		}
	}
}

// TestBuildRecoversBuilderPanics covers the public panic-recovery
// boundary: programmatic construction errors surface as *BuildError.
func TestBuildRecoversBuilderPanics(t *testing.T) {
	cases := []struct {
		name      string
		construct func(*Builder)
	}{
		{"duplicate place", func(b *Builder) {
			b.Place("p")
			b.Place("p")
		}},
		{"duplicate transition", func(b *Builder) {
			b.Transition("t")
			b.Transition("t")
		}},
		{"non-positive weight", func(b *Builder) {
			p := b.Place("p")
			tr := b.Transition("t")
			b.WeightedArc(p, tr, 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := Build("bad", tc.construct)
			if err == nil {
				t.Fatalf("Build succeeded: %v", n)
			}
			var be *BuildError
			if !errors.As(err, &be) {
				t.Fatalf("error %T is not *BuildError: %v", err, err)
			}
			if be.Reason == "" || be.Error() == "" {
				t.Fatalf("empty diagnosis: %+v", be)
			}
		})
	}
}

func TestBuildValidNet(t *testing.T) {
	n, err := Build("good", func(b *Builder) {
		p := b.Place("p")
		tr := b.Transition("t")
		b.Arc(p, tr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "good" || n.NumPlaces() != 1 || n.NumTransitions() != 1 {
		t.Fatalf("unexpected net: %q %d/%d", n.Name(), n.NumPlaces(), n.NumTransitions())
	}
}

func TestErrBudgetExceededReexport(t *testing.T) {
	if ErrBudgetExceeded == nil {
		t.Fatal("nil sentinel")
	}
	if !errors.Is(ErrBudgetExceeded, ErrBudgetExceeded) {
		t.Fatal("sentinel does not match itself")
	}
}

package fcpn_test

// Acceptance test of the exact-arithmetic ladder: the paper's standard
// nets — every figure, the ATM server and the modem — are small-weight
// systems that must be served entirely by the int64 tier. A single
// linalg/bigint (or even linalg/int128) phase hit on this corpus means
// the fast path regressed and every invariant computation is paying
// big.Int allocation again.

import (
	"testing"

	"fcpn/internal/atm"
	"fcpn/internal/core"
	"fcpn/internal/figures"
	"fcpn/internal/invariant"
	"fcpn/internal/modem"
	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

func TestStandardNetsStayInInt64Tier(t *testing.T) {
	nets := map[string]*petri.Net{
		"atm": atm.New().Net,
	}
	for name, n := range figures.All() {
		nets[name] = n
	}
	mm, err := modem.New()
	if err != nil {
		t.Fatal(err)
	}
	nets["modem"] = mm.Net

	for name, n := range nets {
		tr := trace.New()
		opt := invariant.Options{Trace: tr}
		if _, err := invariant.TInvariants(n, opt); err != nil {
			t.Fatalf("%s: TInvariants: %v", name, err)
		}
		if _, err := invariant.PInvariants(n, opt); err != nil {
			t.Fatalf("%s: PInvariants: %v", name, err)
		}
		if _, err := invariant.RankTheoremFC(n, opt); err != nil {
			t.Fatalf("%s: RankTheoremFC: %v", name, err)
		}
		// Solve errors are fine (not every figure is schedulable); the
		// tier residency of the attempt is what is under test.
		core.Solve(n, core.Options{Trace: tr})

		rep := tr.Report()
		if ps, ok := rep.Phase("linalg/bigint"); ok && ps.Count > 0 {
			t.Errorf("%s: %d big.Int fallbacks on a standard net", name, ps.Count)
		}
		if ps, ok := rep.Phase("linalg/int128"); ok && ps.Count > 0 {
			t.Errorf("%s: %d int128 escalations on a standard net", name, ps.Count)
		}
		if ps, ok := rep.Phase("linalg/int64"); !ok || ps.Count == 0 {
			t.Errorf("%s: no linalg/int64 phase recorded; ladder not traced", name)
		}
	}
}

package sim

import (
	"errors"
	"fmt"
	"strings"

	"fcpn/internal/codegen"
	"fcpn/internal/fault"
	"fcpn/internal/rtos"
	"fcpn/internal/timing"
)

// OverloadKind selects the fault-injection axis an overload-margin search
// scales. Each kind maps an integer intensity level to one seeded
// injector configuration; level 0 is always the unperturbed workload.
type OverloadKind int

const (
	// OverloadBurst scales burst length: every event arrives with level
	// extra back-to-back copies (an interrupt storm of growing depth).
	OverloadBurst OverloadKind = iota
	// OverloadJitter scales timer jitter: event timestamps move by up to
	// level ticks and the stream re-sorts (clock drift, deferred ISRs).
	OverloadJitter
	// OverloadDrop scales event loss: level percent of events vanish
	// (capped at 100).
	OverloadDrop
	// OverloadOverrun scales task overruns: each dispatch runs up to
	// level percent slower than the nominal cost model.
	OverloadOverrun
)

// String names the kind as accepted by ParseOverloadKind.
func (k OverloadKind) String() string {
	switch k {
	case OverloadBurst:
		return "burst"
	case OverloadJitter:
		return "jitter"
	case OverloadDrop:
		return "drop"
	case OverloadOverrun:
		return "overrun"
	}
	return fmt.Sprintf("OverloadKind(%d)", int(k))
}

// ParseOverloadKind parses an overload kind name (burst, jitter, drop,
// overrun).
func ParseOverloadKind(s string) (OverloadKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "burst":
		return OverloadBurst, nil
	case "jitter":
		return OverloadJitter, nil
	case "drop":
		return OverloadDrop, nil
	case "overrun":
		return OverloadOverrun, nil
	}
	return 0, fmt.Errorf("sim: unknown overload kind %q (want burst, jitter, drop or overrun)", s)
}

// defaultCeiling bounds the search per kind: bursts deeper than 64 copies
// or overruns past 8x nominal are far outside any sensible operating
// envelope, and drop is a percentage by construction.
func (k OverloadKind) defaultCeiling() int {
	switch k {
	case OverloadBurst:
		return 64
	case OverloadJitter:
		return 1 << 12
	case OverloadDrop:
		return 100
	case OverloadOverrun:
		return 700
	}
	return 64
}

// DefaultDeadlineFactor is the calibration multiplier: when no deadline
// is configured, the per-event budget becomes this many times the
// fault-free worst response.
const DefaultDeadlineFactor = 2

// MarginConfig parameterises an overload-margin search.
type MarginConfig struct {
	// Kind is the overload axis to scale.
	Kind OverloadKind
	// MK is the weakly-hard constraint that defines "still safe". Must
	// be enabled.
	MK timing.Constraint
	// Seed drives the injectors and (absent custom Hooks) the decision
	// stream; the whole search is a pure function of it.
	Seed uint64
	// Ceiling bounds the intensity levels probed (0 = per-kind default).
	Ceiling int
	// Robust configures the underlying runs. Deadline == 0 auto-
	// calibrates to DefaultDeadlineFactor x the fault-free worst
	// response. The Jitter field is owned by the search under
	// OverloadOverrun and must be nil.
	Robust RobustConfig
	// Hooks, when set, builds fresh run hooks per probe (decision
	// streams are stateful, so each probe needs its own). Nil uses a
	// seeded DecisionStream.
	Hooks func() Hooks
}

func (cfg MarginConfig) hooks(prog *codegen.Program) Hooks {
	if cfg.Hooks != nil {
		return cfg.Hooks()
	}
	return Hooks{Resolver: NewDecisionStream(prog.Net, cfg.Seed).Resolver()}
}

// OverloadMargin is the outcome of one overload-margin search: the
// calibrated deadline and the bisection result (the highest intensity
// level at which the (m,k) constraint still holds).
type OverloadMargin struct {
	Kind     string               `json:"kind"`
	Deadline int64                `json:"deadline"`
	Result   *timing.MarginResult `json:"result"`
}

// String renders a one-line summary.
func (om *OverloadMargin) String() string {
	return fmt.Sprintf("%s deadline=%d %s", om.Kind, om.Deadline, om.Result)
}

// CalibrateDeadline derives a per-event response budget from the
// fault-free run: factor times the nominal worst response, minimum one
// cycle. It makes margins meaningful without hand-tuning a deadline per
// net — level 0 always passes under the calibrated budget.
func CalibrateDeadline(prog *codegen.Program, events []rtos.Event, cost rtos.CostModel, cfg RobustConfig, hooks Hooks, factor int64) (int64, error) {
	cfg.Deadline = 0
	cfg.MK = timing.Constraint{}
	cfg.Jitter = nil
	rm, err := RunRobust(prog, events, cost, cfg, hooks)
	if err != nil {
		return 0, fmt.Errorf("sim: deadline calibration: %w", err)
	}
	d := factor * rm.ResponseMax
	if d < 1 {
		d = 1
	}
	return d, nil
}

// SearchOverloadMargin binary-searches the fault-injector intensity for
// the highest level at which the weakly-hard constraint still holds:
// the overload the implementation tolerates before its timing safety
// breaks. Deterministic for a given (workload, seed, config); every
// probe replays the same seeded injector at a different intensity.
func SearchOverloadMargin(prog *codegen.Program, events []rtos.Event, cost rtos.CostModel, cfg MarginConfig) (*OverloadMargin, error) {
	if err := cfg.MK.Validate(); err != nil {
		return nil, fmt.Errorf("sim: margin search needs a valid (m,k) constraint: %w", err)
	}
	if cfg.Robust.Jitter != nil {
		return nil, fmt.Errorf("sim: margin search owns RobustConfig.Jitter; configure OverloadOverrun instead")
	}
	ceiling := cfg.Ceiling
	if ceiling <= 0 {
		ceiling = cfg.Kind.defaultCeiling()
	}
	if cfg.Kind == OverloadDrop && ceiling > 100 {
		ceiling = 100
	}

	deadline := cfg.Robust.Deadline
	if deadline == 0 {
		var err error
		deadline, err = CalibrateDeadline(prog, events, cost, cfg.Robust, cfg.hooks(prog), DefaultDeadlineFactor)
		if err != nil {
			return nil, err
		}
	}

	probe := func(level int) (*timing.Verdict, error) {
		rcfg := cfg.Robust
		rcfg.Deadline = deadline
		rcfg.MK = cfg.MK
		stream := events
		switch cfg.Kind {
		case OverloadBurst:
			if level > 0 {
				stream = fault.Scenario{
					Name: "margin-burst", Seed: cfg.Seed,
					Injectors: []fault.Injector{fault.Burst{Pct: 100, Extra: level, Source: fault.AnySource}},
				}.Apply(events)
			}
		case OverloadJitter:
			if level > 0 {
				stream = fault.Scenario{
					Name: "margin-jitter", Seed: cfg.Seed,
					Injectors: []fault.Injector{fault.JitterTicks{Window: int64(level), Source: fault.AnySource}},
				}.Apply(events)
			}
		case OverloadDrop:
			if level > 0 {
				stream = fault.Scenario{
					Name: "margin-drop", Seed: cfg.Seed,
					Injectors: []fault.Injector{fault.Drop{Pct: level, Source: fault.AnySource}},
				}.Apply(events)
			}
		case OverloadOverrun:
			rcfg.Jitter = &fault.CostJitter{Seed: cfg.Seed, MaxPct: level}
		default:
			return nil, fmt.Errorf("sim: unknown overload kind %v", cfg.Kind)
		}
		rm, err := RunRobust(prog, stream, cost, rcfg, cfg.hooks(prog))
		if err != nil {
			// A probe that exhausts its step budget is a system that cannot
			// keep up with the injected overload: report it as a failed
			// level, not a search abort.
			if errors.Is(err, codegen.ErrBudgetExceeded) && rm != nil && rm.Timing != nil {
				v := *rm.Timing
				v.Satisfied = false
				return &v, nil
			}
			return nil, fmt.Errorf("sim: margin probe level %d: %w", level, err)
		}
		return rm.Timing, nil
	}

	res, err := timing.SearchMargin(ceiling, probe)
	if err != nil {
		return nil, err
	}
	return &OverloadMargin{Kind: cfg.Kind.String(), Deadline: deadline, Result: res}, nil
}

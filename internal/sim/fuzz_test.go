package sim

import (
	"testing"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/figures"
	"fcpn/internal/petri"
	"fcpn/internal/rtos"
)

// FuzzScheduleReplay feeds malformed decision streams to the simulator:
// the resolver replays fuzz bytes as choice indices, including negative
// and far out-of-range picks. The simulator must reject or skip them —
// never panic — and the step budget must keep every input terminating.
func FuzzScheduleReplay(f *testing.F) {
	n := figures.Figure4()
	sched, err := core.Solve(n, core.Options{})
	if err != nil {
		f.Fatal(err)
	}
	tp, err := core.PartitionTasks(n, core.Options{})
	if err != nil {
		f.Fatal(err)
	}
	prog, err := codegen.Generate(sched, tp)
	if err != nil {
		f.Fatal(err)
	}
	t1, _ := n.TransitionByName("t1")
	events := rtos.Periodic(t1, 10, 0, 8)
	limits, err := StructuralLimits(n)
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 1, 0})
	f.Add([]byte{0xFF, 0x80, 0x7F})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})

	f.Fuzz(func(t *testing.T, stream []byte) {
		i := 0
		resolver := func(p petri.Place, alternatives []petri.Transition) int {
			if len(stream) == 0 {
				return 0
			}
			b := stream[i%len(stream)]
			i++
			// Spread the byte over a hostile range: negatives, valid
			// indices and far out-of-range picks.
			return int(b) - 64
		}
		rm, err := RunRobust(prog, events, rtos.DefaultCostModel(), RobustConfig{
			Queue:      rtos.QueueConfig{Capacity: 4, Policy: rtos.DropOldest},
			StepBudget: 1 << 16,
			Limits:     limits,
		}, Hooks{Resolver: resolver})
		if err != nil {
			return // rejection (including budget exhaustion) is fine; panics are not
		}
		// Whatever nonsense the stream selected, only legal firings ran,
		// so the structural bounds must still hold.
		if rm.BoundViolations != 0 {
			t.Fatalf("malformed stream produced bound violations: %v", rm.Violations)
		}
		// The plain simulators must hold up under the same resolver too.
		i = 0
		if _, err := RunQSSWithHooks(prog, events, rtos.DefaultCostModel(), Hooks{Resolver: resolver}); err != nil {
			return
		}
	})
}

package sim

import (
	"fmt"
	"sort"

	"fcpn/internal/codegen"
	"fcpn/internal/rtos"
	"fcpn/internal/timing"
)

// TimedMetrics extends Metrics with single-processor timing: events arrive
// at their workload timestamps, the CPU serves them run-to-completion in
// arrival order, and an event's response time is completion minus arrival.
type TimedMetrics struct {
	Metrics
	// CPUBusy is the total busy time in cycles; Makespan is the clock at
	// which the last event completes.
	CPUBusy, Makespan int64
	// ResponseMax and ResponseAvg summarise event response times
	// (queueing delay + execution), in cycles.
	ResponseMax, ResponseAvg int64
	// DeadlineMisses counts events whose response time exceeded the
	// deadline (when a deadline is configured).
	DeadlineMisses int
	// Utilisation is CPUBusy / Makespan in percent.
	Utilisation float64
	// Timing is the weakly-hard (m,k) verdict over the run's hit/miss
	// stream; nil unless TimedConfig.MK is enabled.
	Timing *timing.Verdict
}

// TimedConfig parameterises the timed run.
type TimedConfig struct {
	// CyclesPerTick converts workload time units into cycles (how much
	// CPU time passes between t and t+1). Must be positive.
	CyclesPerTick int64
	// Deadline, in cycles, is the per-event response-time budget; 0
	// disables deadline accounting.
	Deadline int64
	// Modular switches the baseline execution mode (dynamic scheduler
	// cascade after each event).
	Modular bool
	// MK, when enabled, checks the run's deadline hit/miss stream
	// against the weakly-hard (m,k) constraint; the verdict lands in
	// TimedMetrics.Timing. With Deadline == 0 every event is a hit, so
	// the verdict is trivially satisfied (the zero-deadline path stays a
	// no-deadline run, not an always-miss run).
	MK timing.Constraint
}

// RunTimed executes the program against the workload on a single CPU with
// real arrival times: if an event arrives while the processor is still
// serving an earlier one, it queues. Everything else (costs, hooks,
// decision semantics) matches RunQSSWithHooks / RunModularWithHooks.
func RunTimed(prog *codegen.Program, events []rtos.Event, cost rtos.CostModel, cfg TimedConfig, hooks Hooks) (*TimedMetrics, error) {
	if cfg.CyclesPerTick <= 0 {
		return nil, fmt.Errorf("sim: CyclesPerTick must be positive")
	}
	if len(events) == 0 {
		// Explicit zero-event fast path: an empty tick stream yields
		// all-zero timed metrics without touching the interpreter. The
		// (m,k) verdict over zero events is vacuously satisfied.
		return &TimedMetrics{
			Metrics: *emptyMetrics(prog),
			Timing:  timing.NewMonitor(cfg.MK).Verdict(),
		}, nil
	}
	ordered := append([]rtos.Event(nil), events...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Time < ordered[j].Time })

	in := codegen.NewInterp(prog, hooks.Resolver)
	k := rtos.NewKernel(cost)
	in.OnFire = fireHook(k, hooks)
	mon := timing.NewMonitor(cfg.MK)

	var clock int64 // absolute time in cycles
	var busy int64
	var respMax, respSum int64
	misses := 0

	for _, ev := range ordered {
		arrival := ev.Time * cfg.CyclesPerTick
		if clock < arrival {
			clock = arrival // CPU idles until the event arrives
		}
		ti := prog.TaskBySource(ev.Source)
		if ti < 0 {
			return nil, fmt.Errorf("sim: no task for source %s", prog.Net.TransitionName(ev.Source))
		}
		if hooks.BeforeEvent != nil {
			hooks.BeforeEvent(ev)
		}
		start := k.Cycles
		k.Interrupt()
		k.Activate(prog.Tasks[ti].Task.Name)
		beforeFired, beforeOps := totalFired(in), in.Stats.Ops
		if err := in.RunSource(ev.Source); err != nil {
			return nil, err
		}
		k.ChargeFirings(totalFired(in) - beforeFired)
		k.ChargeOps(int64(in.Stats.Ops - beforeOps))
		if cfg.Modular {
			for {
				progress := false
				for mi := range prog.Tasks {
					bf, bo := totalFired(in), in.Stats.Ops
					fired, err := in.RunTask(mi)
					if err != nil {
						return nil, err
					}
					if fired {
						k.Activate(prog.Tasks[mi].Task.Name)
						progress = true
					} else {
						k.Poll(prog.Tasks[mi].Task.Name)
					}
					k.ChargeFirings(totalFired(in) - bf)
					k.ChargeOps(int64(in.Stats.Ops - bo))
				}
				if !progress {
					break
				}
			}
		}
		service := k.Cycles - start
		busy += service
		clock += service
		response := clock - arrival
		if response > respMax {
			respMax = response
		}
		respSum += response
		miss := cfg.Deadline > 0 && response > cfg.Deadline
		if miss {
			misses++
			mon.ObserveOverrun(response - cfg.Deadline)
		}
		mon.Observe(miss)
	}

	m := metricsFrom(k, in, len(ordered))
	tm := &TimedMetrics{
		Metrics:        *m,
		CPUBusy:        busy,
		Makespan:       clock,
		ResponseMax:    respMax,
		DeadlineMisses: misses,
		Timing:         mon.Verdict(),
	}
	if len(ordered) > 0 {
		tm.ResponseAvg = respSum / int64(len(ordered))
	}
	if clock > 0 {
		tm.Utilisation = 100 * float64(busy) / float64(clock)
	}
	return tm, nil
}

package sim

import (
	"errors"
	"fmt"
	"sort"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/invariant"
	"fcpn/internal/petri"
	"fcpn/internal/rtos"
	"fcpn/internal/timing"
)

// CostPerturber perturbs the kernel cost model per dispatch (task
// overruns). fault.CostJitter is the standard implementation; the
// interface keeps sim decoupled from the fault package.
type CostPerturber interface {
	Perturb(base rtos.CostModel, dispatch int64) rtos.CostModel
}

// RobustConfig parameterises a robust (fault-tolerant) run: a bounded
// ingress queue, a deadline watchdog, per-dispatch cost jitter, a step
// budget, and static buffer bounds to verify at runtime.
type RobustConfig struct {
	// CyclesPerTick converts workload timestamps into cycles (default 1).
	CyclesPerTick int64
	// Queue bounds event ingress; Capacity <= 0 keeps the idealised
	// unbounded queue.
	Queue rtos.QueueConfig
	// Deadline, in cycles, is the watchdog's per-event response budget;
	// 0 disables deadline accounting.
	Deadline int64
	// Jitter, when set, perturbs the cost model per dispatch.
	Jitter CostPerturber
	// StepBudget caps total interpreter ops; exceeding it terminates the
	// run with an error wrapping core.ErrBudgetExceeded (default 1 << 26).
	StepBudget int
	// Limits are sound per-place token bounds (entries < 0 are
	// unchecked). Peaks above a limit count as BoundViolations. Use
	// StructuralLimits for bounds valid under any interleaving.
	Limits []int
	// CycleLimits are the schedule's per-cycle buffer bounds
	// (Schedule.BufferBounds). Peaks above them are reported as
	// CycleExceedances — expected under overload backlog, hence
	// informational, not violations.
	CycleLimits []int
	// Modular runs the functional baseline's dynamic scheduler cascade
	// after each event.
	Modular bool
	// MK, when enabled, checks the run's deadline hit/miss stream (the
	// watchdog's Observe outcomes) against the weakly-hard (m,k)
	// constraint; the verdict lands in RobustMetrics.Timing. With
	// Deadline == 0 the watchdog is disabled, every event counts as a
	// hit, and the verdict is trivially satisfied.
	MK timing.Constraint
}

// PlaceBound records one place whose observed peak counter passed a
// static bound.
type PlaceBound struct {
	Place    petri.Place
	Name     string
	Observed int
	Bound    int
}

func (b PlaceBound) String() string {
	return fmt.Sprintf("%s: observed %d > bound %d", b.Name, b.Observed, b.Bound)
}

// RobustMetrics extends Metrics with the robustness layer's observations.
type RobustMetrics struct {
	Metrics
	// RejectedEvents counts arrivals refused under the Reject policy
	// (DroppedEvents counts both kinds of loss).
	RejectedEvents int64
	// ResponseMax/ResponseAvg summarise response times (queueing delay +
	// service) in cycles; WorstOverrun is the largest excess past the
	// deadline.
	ResponseMax, ResponseAvg, WorstOverrun int64
	// CPUBusy and Makespan describe the timeline in cycles.
	CPUBusy, Makespan int64
	// PeakCounters[p] is the per-place peak token count observed.
	PeakCounters []int
	// Violations details every BoundViolations entry (sorted by place).
	Violations []PlaceBound
	// CycleExceedances lists places whose peak passed the per-cycle
	// schedule bound: backlog buffering beyond one cycle, the graceful
	// degradation signal under overload.
	CycleExceedances []PlaceBound
	// Steps is the interpreter op count; BudgetExhausted reports whether
	// the run was cut off by the step budget.
	Steps           int
	BudgetExhausted bool
	// Timing is the weakly-hard (m,k) verdict over the served events'
	// hit/miss stream; nil unless RobustConfig.MK is enabled.
	Timing *timing.Verdict
}

// StructuralLimits derives sound per-place token bounds from the net's
// P-invariants: for any reachable marking — under any event interleaving,
// duplication or loss — a place covered by an invariant cannot exceed its
// bound. Places with no invariant cover get -1 (unchecked). These are the
// bounds RunRobust verifies as BoundViolations: a violation disproves the
// schedulability theorem's bounded-memory claim (or reveals a broken
// implementation), so valid schedules must report zero.
func StructuralLimits(n *petri.Net) ([]int, error) {
	pis, err := invariant.PInvariants(n, invariant.Options{})
	if err != nil {
		return nil, fmt.Errorf("sim: structural limits: %w", err)
	}
	return invariant.StructuralBounds(n, pis), nil
}

// ScheduleLimits returns the schedule's per-cycle buffer bounds — the
// paper's statically allocatable buffer sizes. They are exact for
// single-cycle run-to-completion execution and are reported as
// CycleExceedances (not violations) when cross-event backlog passes them.
func ScheduleLimits(s *core.Schedule) ([]int, error) { return s.BufferBounds() }

const defaultStepBudget = 1 << 26

// RunRobust drives a program against a (possibly fault-injected) workload
// on a single CPU with real arrival times, a bounded ingress queue, an
// optional deadline watchdog and per-dispatch cost jitter, verifying
// observed per-place peaks against static buffer bounds.
//
// When the step budget runs out, the metrics collected so far are
// returned together with an error wrapping core.ErrBudgetExceeded.
func RunRobust(prog *codegen.Program, events []rtos.Event, cost rtos.CostModel, cfg RobustConfig, hooks Hooks) (*RobustMetrics, error) {
	if cfg.CyclesPerTick <= 0 {
		cfg.CyclesPerTick = 1
	}
	if cfg.StepBudget <= 0 {
		cfg.StepBudget = defaultStepBudget
	}
	if len(events) == 0 {
		rm := &RobustMetrics{Metrics: *emptyMetrics(prog)}
		rm.PeakCounters = append([]int(nil), prog.Net.InitialMarking()...)
		rm.Timing = timing.NewMonitor(cfg.MK).Verdict()
		return rm, nil
	}

	ordered := append([]rtos.Event(nil), events...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Time < ordered[j].Time })

	in := codegen.NewInterp(prog, hooks.Resolver)
	in.MaxOps = cfg.StepBudget
	k := rtos.NewKernel(cost)
	in.OnFire = fireHook(k, hooks)
	k.Queue = rtos.NewEventQueue(cfg.Queue)
	if cfg.Deadline > 0 {
		// The watchdog keeps one constraint window of hit/miss history so
		// violated windows stay inspectable after the run.
		k.Watch = &rtos.Watchdog{Budget: cfg.Deadline, HistoryCap: cfg.MK.K}
	}
	mon := timing.NewMonitor(cfg.MK)

	var clock, busy int64
	var respMax, respSum int64
	var lat latencyAgg
	var dispatch int64
	served := 0
	next := 0 // index of the next arrival in ordered

	var runErr error
serve:
	for {
		// Admit every arrival up to the current clock (the interrupt
		// handler runs even while a task occupies the CPU).
		for next < len(ordered) && ordered[next].Time*cfg.CyclesPerTick <= clock {
			k.Admit(ordered[next], ordered[next].Time*cfg.CyclesPerTick)
			next++
		}
		if k.Queue.Len() == 0 {
			if next >= len(ordered) {
				break
			}
			clock = ordered[next].Time * cfg.CyclesPerTick // CPU idles
			continue
		}
		qe, _ := k.Queue.Pop()
		ev := qe.Ev
		ti := prog.TaskBySource(ev.Source)
		if ti < 0 {
			return nil, fmt.Errorf("sim: no task for source %s", prog.Net.TransitionName(ev.Source))
		}
		if hooks.BeforeEvent != nil {
			hooks.BeforeEvent(ev)
		}
		if cfg.Jitter != nil {
			k.Cost = cfg.Jitter.Perturb(cost, dispatch)
		}
		dispatch++
		start := k.Cycles
		k.Activate(prog.Tasks[ti].Task.Name)
		beforeFired, beforeOps := totalFired(in), in.Stats.Ops
		if err := in.RunSource(ev.Source); err != nil {
			runErr = err
			break serve
		}
		if cfg.Modular {
			for {
				progress := false
				for mi := range prog.Tasks {
					bf, bo := totalFired(in), in.Stats.Ops
					fired, err := in.RunTask(mi)
					if err != nil {
						runErr = err
						break serve
					}
					if fired {
						k.Activate(prog.Tasks[mi].Task.Name)
						progress = true
					} else {
						k.Poll(prog.Tasks[mi].Task.Name)
					}
					k.ChargeFirings(totalFired(in) - bf)
					k.ChargeOps(int64(in.Stats.Ops - bo))
				}
				if !progress {
					break
				}
			}
		}
		k.ChargeFirings(totalFired(in) - beforeFired)
		k.ChargeOps(int64(in.Stats.Ops - beforeOps))
		served++
		service := k.Cycles - start
		lat.add(service)
		busy += service
		clock += service
		response := clock - qe.Arrival
		if response > respMax {
			respMax = response
		}
		respSum += response
		miss := k.Complete(response)
		if miss {
			mon.ObserveOverrun(response - cfg.Deadline)
		}
		mon.Observe(miss)
	}

	m := metricsFrom(k, in, served)
	lat.into(m)
	m.DroppedEvents = k.Queue.Lost()
	if k.Watch != nil {
		m.DeadlineMisses = k.Watch.Misses
	}
	rm := &RobustMetrics{
		Metrics:        *m,
		RejectedEvents: k.Queue.Rejected,
		ResponseMax:    respMax,
		CPUBusy:        busy,
		Makespan:       clock,
		PeakCounters:   append([]int(nil), in.Stats.MaxCounters...),
		Steps:          in.Stats.Ops,
	}
	if served > 0 {
		rm.ResponseAvg = respSum / int64(served)
	}
	if k.Watch != nil {
		rm.WorstOverrun = k.Watch.WorstOverrun
	}
	rm.Timing = mon.Verdict()
	rm.Violations = boundCheck(prog.Net, rm.PeakCounters, cfg.Limits)
	rm.BoundViolations = len(rm.Violations)
	rm.CycleExceedances = boundCheck(prog.Net, rm.PeakCounters, cfg.CycleLimits)

	if runErr != nil {
		if errors.Is(runErr, core.ErrBudgetExceeded) {
			rm.BudgetExhausted = true
			return rm, fmt.Errorf("sim: robust run stopped: %w", runErr)
		}
		return nil, runErr
	}
	return rm, nil
}

// boundCheck compares per-place peaks against limits (entries < 0 are
// unchecked), returning the offenders sorted by place index.
func boundCheck(n *petri.Net, peaks, limits []int) []PlaceBound {
	if limits == nil {
		return nil
	}
	var out []PlaceBound
	for p := 0; p < n.NumPlaces() && p < len(limits) && p < len(peaks); p++ {
		if limits[p] < 0 {
			continue
		}
		if peaks[p] > limits[p] {
			out = append(out, PlaceBound{
				Place:    petri.Place(p),
				Name:     n.PlaceName(petri.Place(p)),
				Observed: peaks[p],
				Bound:    limits[p],
			})
		}
	}
	return out
}

package sim

import (
	"testing"

	"fcpn/internal/codegen"
	"fcpn/internal/figures"
	"fcpn/internal/petri"
	"fcpn/internal/rtos"
	"fcpn/internal/timing"
)

func TestRunTimedBasics(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	// Sparse arrivals: no queueing, response == service time.
	events := rtos.Periodic(t1, 1000, 0, 10)
	ds := NewDecisionStream(n, 3)
	tm, err := RunTimed(prog, events, rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 10}, Hooks{Resolver: ds.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Events != 10 {
		t.Fatalf("events = %d", tm.Events)
	}
	if tm.ResponseMax <= 0 || tm.ResponseAvg <= 0 || tm.ResponseMax < tm.ResponseAvg {
		t.Fatalf("responses: max=%d avg=%d", tm.ResponseMax, tm.ResponseAvg)
	}
	if tm.Utilisation <= 0 || tm.Utilisation >= 100 {
		t.Fatalf("sparse load utilisation = %.1f%%", tm.Utilisation)
	}
	if tm.CPUBusy > tm.Makespan {
		t.Fatalf("busy %d > makespan %d", tm.CPUBusy, tm.Makespan)
	}
	if tm.DeadlineMisses != 0 {
		t.Fatal("no deadline configured, no misses possible")
	}
}

func TestRunTimedQueueingUnderLoad(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	ds1 := NewDecisionStream(n, 3)
	ds2 := NewDecisionStream(n, 3)
	// Back-to-back arrivals: queueing delays accumulate, so the worst
	// response under overload strictly exceeds the sparse case.
	sparse, err := RunTimed(prog, rtos.Periodic(t1, 1000, 0, 20), rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 10}, Hooks{Resolver: ds1.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := RunTimed(prog, rtos.Periodic(t1, 1, 0, 20), rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 10}, Hooks{Resolver: ds2.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if packed.ResponseMax <= sparse.ResponseMax {
		t.Fatalf("overload max response %d must exceed sparse %d",
			packed.ResponseMax, sparse.ResponseMax)
	}
	if packed.Utilisation <= sparse.Utilisation {
		t.Fatalf("overload utilisation %.1f must exceed sparse %.1f",
			packed.Utilisation, sparse.Utilisation)
	}
	// Deadline accounting: with a deadline below the packed worst case
	// there must be misses.
	ds3 := NewDecisionStream(n, 3)
	strict, err := RunTimed(prog, rtos.Periodic(t1, 1, 0, 20), rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 10, Deadline: packed.ResponseMax - 1},
		Hooks{Resolver: ds3.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if strict.DeadlineMisses == 0 {
		t.Fatal("expected deadline misses under overload")
	}
}

func TestRunTimedModularWorstCaseResponse(t *testing.T) {
	// On the same workload, the modular baseline's per-event service time
	// includes the dynamic-scheduler cascade, so its worst-case response
	// exceeds QSS's — the real-time argument for quasi-static scheduling.
	n := figures.Figure4()
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	t4, _ := n.TransitionByName("t4")
	t5, _ := n.TransitionByName("t5")
	modProg, err := codegen.GenerateModular(n, []codegen.Module{
		{Name: "in", Transitions: []petri.Transition{t1}},
		{Name: "branch", Transitions: []petri.Transition{t2, t3}},
		{Name: "out", Transitions: []petri.Transition{t4, t5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rtos.Periodic(t1, 50, 0, 25)
	cost := rtos.DefaultCostModel()
	dsQ := NewDecisionStream(n, 9)
	qssT, err := RunTimed(qssProgram(t, n), events, cost,
		TimedConfig{CyclesPerTick: 10}, Hooks{Resolver: dsQ.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	dsM := NewDecisionStream(n, 9)
	modT, err := RunTimed(modProg, events, cost,
		TimedConfig{CyclesPerTick: 10, Modular: true}, Hooks{Resolver: dsM.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if modT.ResponseMax <= qssT.ResponseMax {
		t.Fatalf("modular worst response %d must exceed QSS %d",
			modT.ResponseMax, qssT.ResponseMax)
	}
}

// TestRunTimedSimultaneousArrivalsKeepInputOrder pins the tie-breaking
// rule: events with equal Event.Time serve in input-slice order (the sort
// is stable), not by source id or any other hidden key. Reordering the
// tied entries reorders service — callers who care must order their
// streams (rtos.Merge is itself stable).
func TestRunTimedSimultaneousArrivalsKeepInputOrder(t *testing.T) {
	n := figures.Figure5() // two independent sources: t1 and t8
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	t8, _ := n.TransitionByName("t8")

	serveOrder := func(events []rtos.Event) []rtos.Event {
		var got []rtos.Event
		ds := NewDecisionStream(n, 5)
		_, err := RunTimed(prog, events, rtos.DefaultCostModel(),
			TimedConfig{CyclesPerTick: 10}, Hooks{
				Resolver:    ds.Resolver(),
				BeforeEvent: func(ev rtos.Event) { got = append(got, ev) },
			})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	// Three ties at t=5 plus one earlier arrival listed out of order: the
	// early event serves first, the ties keep their slice order.
	got := serveOrder([]rtos.Event{
		{Time: 5, Source: t8},
		{Time: 5, Source: t1},
		{Time: 0, Source: t1},
		{Time: 5, Source: t8},
	})
	want := []rtos.Event{
		{Time: 0, Source: t1},
		{Time: 5, Source: t8},
		{Time: 5, Source: t1},
		{Time: 5, Source: t8},
	}
	if len(got) != len(want) {
		t.Fatalf("served %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("serve order[%d] = %+v, want %+v (full order %v)", i, got[i], want[i], got)
		}
	}

	// Swapping the tied entries swaps the service order: the tie-break
	// really is input position, not source identity.
	swapped := serveOrder([]rtos.Event{
		{Time: 5, Source: t1},
		{Time: 5, Source: t8},
	})
	if swapped[0].Source != t1 || swapped[1].Source != t8 {
		t.Fatalf("swapped tie order = %v", swapped)
	}
}

// TestRunTimedZeroDeadline pins the zero-Deadline path: no deadline means
// no misses even under heavy backlog, and an (m,k) verdict over an
// all-hit stream is satisfied with zero misses — a no-deadline run, not
// an always-miss run.
func TestRunTimedZeroDeadline(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	ds := NewDecisionStream(n, 3)
	// Back-to-back arrivals guarantee queueing delays; with Deadline 0
	// they still never count as misses.
	tm, err := RunTimed(prog, rtos.Periodic(t1, 1, 0, 12), rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 1, MK: timing.Constraint{M: 2, K: 3}},
		Hooks{Resolver: ds.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if tm.DeadlineMisses != 0 {
		t.Fatalf("zero deadline produced %d misses", tm.DeadlineMisses)
	}
	if tm.Timing == nil || !tm.Timing.Satisfied || tm.Timing.Misses != 0 || tm.Timing.Events != 12 {
		t.Fatalf("zero-deadline verdict = %+v", tm.Timing)
	}
	// Without a constraint there is no verdict at all.
	ds2 := NewDecisionStream(n, 3)
	tm2, err := RunTimed(prog, rtos.Periodic(t1, 1, 0, 12), rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 1}, Hooks{Resolver: ds2.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if tm2.Timing != nil {
		t.Fatalf("disabled MK must yield nil verdict, got %+v", tm2.Timing)
	}
}

// TestRunTimedMKVerdict drives the monitor through a run where every
// event misses: the verdict must pin the first violating window and agree
// with the scalar miss counters.
func TestRunTimedMKVerdict(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	ds := NewDecisionStream(n, 3)
	tm, err := RunTimed(prog, rtos.Periodic(t1, 1, 0, 12), rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 1, Deadline: 1, MK: timing.Constraint{M: 1, K: 2}},
		Hooks{Resolver: ds.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	v := tm.Timing
	if v == nil || v.Satisfied {
		t.Fatalf("all-miss run must violate (1,2): %+v", v)
	}
	if v.Misses != tm.DeadlineMisses || v.Misses != 12 {
		t.Fatalf("verdict misses %d vs counter %d", v.Misses, tm.DeadlineMisses)
	}
	if v.Violation.End != 1 || v.Violation.Window != "00" {
		t.Fatalf("violation = %+v", v.Violation)
	}
	if v.WorstOverrun != tm.ResponseMax-1 {
		t.Fatalf("worst overrun %d, want %d", v.WorstOverrun, tm.ResponseMax-1)
	}
}

func TestRunTimedValidation(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	ds := NewDecisionStream(n, 1)
	if _, err := RunTimed(prog, nil, rtos.DefaultCostModel(),
		TimedConfig{}, Hooks{Resolver: ds.Resolver()}); err == nil {
		t.Fatal("zero CyclesPerTick accepted")
	}
	t2, _ := n.TransitionByName("t2")
	if _, err := RunTimed(prog, []rtos.Event{{Source: t2}}, rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 1}, Hooks{Resolver: ds.Resolver()}); err == nil {
		t.Fatal("non-source event accepted")
	}
}

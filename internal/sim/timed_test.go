package sim

import (
	"testing"

	"fcpn/internal/codegen"
	"fcpn/internal/figures"
	"fcpn/internal/petri"
	"fcpn/internal/rtos"
)

func TestRunTimedBasics(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	// Sparse arrivals: no queueing, response == service time.
	events := rtos.Periodic(t1, 1000, 0, 10)
	ds := NewDecisionStream(n, 3)
	tm, err := RunTimed(prog, events, rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 10}, Hooks{Resolver: ds.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Events != 10 {
		t.Fatalf("events = %d", tm.Events)
	}
	if tm.ResponseMax <= 0 || tm.ResponseAvg <= 0 || tm.ResponseMax < tm.ResponseAvg {
		t.Fatalf("responses: max=%d avg=%d", tm.ResponseMax, tm.ResponseAvg)
	}
	if tm.Utilisation <= 0 || tm.Utilisation >= 100 {
		t.Fatalf("sparse load utilisation = %.1f%%", tm.Utilisation)
	}
	if tm.CPUBusy > tm.Makespan {
		t.Fatalf("busy %d > makespan %d", tm.CPUBusy, tm.Makespan)
	}
	if tm.DeadlineMisses != 0 {
		t.Fatal("no deadline configured, no misses possible")
	}
}

func TestRunTimedQueueingUnderLoad(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	ds1 := NewDecisionStream(n, 3)
	ds2 := NewDecisionStream(n, 3)
	// Back-to-back arrivals: queueing delays accumulate, so the worst
	// response under overload strictly exceeds the sparse case.
	sparse, err := RunTimed(prog, rtos.Periodic(t1, 1000, 0, 20), rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 10}, Hooks{Resolver: ds1.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := RunTimed(prog, rtos.Periodic(t1, 1, 0, 20), rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 10}, Hooks{Resolver: ds2.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if packed.ResponseMax <= sparse.ResponseMax {
		t.Fatalf("overload max response %d must exceed sparse %d",
			packed.ResponseMax, sparse.ResponseMax)
	}
	if packed.Utilisation <= sparse.Utilisation {
		t.Fatalf("overload utilisation %.1f must exceed sparse %.1f",
			packed.Utilisation, sparse.Utilisation)
	}
	// Deadline accounting: with a deadline below the packed worst case
	// there must be misses.
	ds3 := NewDecisionStream(n, 3)
	strict, err := RunTimed(prog, rtos.Periodic(t1, 1, 0, 20), rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 10, Deadline: packed.ResponseMax - 1},
		Hooks{Resolver: ds3.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if strict.DeadlineMisses == 0 {
		t.Fatal("expected deadline misses under overload")
	}
}

func TestRunTimedModularWorstCaseResponse(t *testing.T) {
	// On the same workload, the modular baseline's per-event service time
	// includes the dynamic-scheduler cascade, so its worst-case response
	// exceeds QSS's — the real-time argument for quasi-static scheduling.
	n := figures.Figure4()
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	t4, _ := n.TransitionByName("t4")
	t5, _ := n.TransitionByName("t5")
	modProg, err := codegen.GenerateModular(n, []codegen.Module{
		{Name: "in", Transitions: []petri.Transition{t1}},
		{Name: "branch", Transitions: []petri.Transition{t2, t3}},
		{Name: "out", Transitions: []petri.Transition{t4, t5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rtos.Periodic(t1, 50, 0, 25)
	cost := rtos.DefaultCostModel()
	dsQ := NewDecisionStream(n, 9)
	qssT, err := RunTimed(qssProgram(t, n), events, cost,
		TimedConfig{CyclesPerTick: 10}, Hooks{Resolver: dsQ.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	dsM := NewDecisionStream(n, 9)
	modT, err := RunTimed(modProg, events, cost,
		TimedConfig{CyclesPerTick: 10, Modular: true}, Hooks{Resolver: dsM.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if modT.ResponseMax <= qssT.ResponseMax {
		t.Fatalf("modular worst response %d must exceed QSS %d",
			modT.ResponseMax, qssT.ResponseMax)
	}
}

func TestRunTimedValidation(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	ds := NewDecisionStream(n, 1)
	if _, err := RunTimed(prog, nil, rtos.DefaultCostModel(),
		TimedConfig{}, Hooks{Resolver: ds.Resolver()}); err == nil {
		t.Fatal("zero CyclesPerTick accepted")
	}
	t2, _ := n.TransitionByName("t2")
	if _, err := RunTimed(prog, []rtos.Event{{Source: t2}}, rtos.DefaultCostModel(),
		TimedConfig{CyclesPerTick: 1}, Hooks{Resolver: ds.Resolver()}); err == nil {
		t.Fatal("non-source event accepted")
	}
}

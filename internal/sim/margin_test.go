package sim

import (
	"encoding/json"
	"testing"

	"fcpn/internal/fault"
	"fcpn/internal/figures"
	"fcpn/internal/rtos"
	"fcpn/internal/timing"
)

func TestParseOverloadKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want OverloadKind
		ok   bool
	}{
		{"burst", OverloadBurst, true},
		{" Jitter ", OverloadJitter, true},
		{"drop", OverloadDrop, true},
		{"overrun", OverloadOverrun, true},
		{"storm", 0, false},
		{"", 0, false},
	} {
		got, err := ParseOverloadKind(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseOverloadKind(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseOverloadKind(%q) accepted", tc.in)
		}
	}
	if OverloadBurst.String() != "burst" || OverloadOverrun.String() != "overrun" {
		t.Fatal("kind names drifted")
	}
}

func marginFixture(t *testing.T) (*MarginConfig, []rtos.Event, func() *OverloadMargin) {
	t.Helper()
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	// Arrivals comfortably sparser than the per-event service time: the
	// nominal run has no backlog, so the calibrated deadline (2x nominal
	// worst response) leaves real headroom for the search to consume.
	events := rtos.Periodic(t1, 2000, 0, 30)
	cfg := &MarginConfig{
		Kind:   OverloadBurst,
		MK:     timing.Constraint{M: 9, K: 10},
		Seed:   0xC0FFEE,
		Robust: RobustConfig{CyclesPerTick: 1},
	}
	run := func() *OverloadMargin {
		om, err := SearchOverloadMargin(prog, events, rtos.DefaultCostModel(), *cfg)
		if err != nil {
			t.Fatal(err)
		}
		return om
	}
	return cfg, events, run
}

// TestSearchOverloadMarginBurstFiniteAndDeterministic is the acceptance
// shape: under burst overload the margin is finite (the nominal run
// passes, deep-enough bursts break the constraint) and the whole search
// reproduces byte-for-byte from the seed.
func TestSearchOverloadMarginBurstFiniteAndDeterministic(t *testing.T) {
	_, _, run := marginFixture(t)
	om := run()
	res := om.Result
	if om.Deadline <= 0 {
		t.Fatalf("calibrated deadline = %d", om.Deadline)
	}
	if res.Level < 0 {
		t.Fatalf("nominal run must pass under the calibrated deadline: %s", res)
	}
	if res.Level >= res.Ceiling {
		t.Fatalf("burst overload never broke (9,10) within the ceiling: %s", res)
	}
	if res.Pass == nil || !res.Pass.Satisfied || res.Fail == nil || res.Fail.Satisfied {
		t.Fatalf("frontier verdicts inconsistent: pass=%+v fail=%+v", res.Pass, res.Fail)
	}
	a, err := json.Marshal(om)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(run())
	if string(a) != string(b) {
		t.Fatalf("margin search not reproducible:\n%s\n%s", a, b)
	}
}

// TestSearchOverloadMarginOverrunFinite checks the second injector axis:
// scaling task overruns past the deadline's 2x headroom must eventually
// break the constraint, at a seed-reproducible level.
func TestSearchOverloadMarginOverrunFinite(t *testing.T) {
	cfg, _, run := marginFixture(t)
	cfg.Kind = OverloadOverrun
	om := run()
	if om.Result.Level < 0 || om.Result.Level >= om.Result.Ceiling {
		t.Fatalf("overrun margin must be finite and positive: %s", om.Result)
	}
	if om2 := run(); om2.Result.Level != om.Result.Level || om2.Result.Probes != om.Result.Probes {
		t.Fatalf("overrun margin not reproducible: %s vs %s", om.Result, om2.Result)
	}
}

// TestSearchOverloadMarginDropNeverBreaks: losing events only sheds load,
// so the drop axis can never violate a deadline constraint — the search
// must report the full ceiling with no failing verdict.
func TestSearchOverloadMarginDropNeverBreaks(t *testing.T) {
	cfg, _, run := marginFixture(t)
	cfg.Kind = OverloadDrop
	om := run()
	if om.Result.Level != om.Result.Ceiling || om.Result.Fail != nil {
		t.Fatalf("drop margin = %s, want full ceiling", om.Result)
	}
	if om.Result.Ceiling != 100 {
		t.Fatalf("drop ceiling = %d, want 100 (it is a percentage)", om.Result.Ceiling)
	}
}

// TestSearchOverloadMarginConfiguredDeadline: an explicit (uncalibrated)
// deadline is honoured, including one so tight the nominal run fails.
func TestSearchOverloadMarginConfiguredDeadline(t *testing.T) {
	cfg, _, run := marginFixture(t)
	cfg.Robust.Deadline = 1
	om := run()
	if om.Deadline != 1 {
		t.Fatalf("deadline = %d, want the configured 1", om.Deadline)
	}
	if om.Result.Level != -1 || om.Result.Probes != 1 {
		t.Fatalf("nominal failure must stop after one probe: %s", om.Result)
	}
}

func TestSearchOverloadMarginValidation(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	events := rtos.Periodic(t1, 100, 0, 5)
	cost := rtos.DefaultCostModel()
	if _, err := SearchOverloadMargin(prog, events, cost, MarginConfig{
		Kind: OverloadBurst, MK: timing.Constraint{M: 3, K: 2},
	}); err == nil {
		t.Fatal("invalid constraint accepted")
	}
	if _, err := SearchOverloadMargin(prog, events, cost, MarginConfig{
		Kind: OverloadBurst, MK: timing.Constraint{M: 1, K: 2},
		Robust: RobustConfig{Jitter: &fault.CostJitter{Seed: 1, MaxPct: 10}},
	}); err == nil {
		t.Fatal("caller-owned Jitter accepted")
	}
}

func TestCalibrateDeadline(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	events := rtos.Periodic(t1, 2000, 0, 10)
	hooks := func() Hooks {
		return Hooks{Resolver: NewDecisionStream(n, 11).Resolver()}
	}
	d1, err := CalibrateDeadline(prog, events, rtos.DefaultCostModel(),
		RobustConfig{CyclesPerTick: 1}, hooks(), DefaultDeadlineFactor)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := CalibrateDeadline(prog, events, rtos.DefaultCostModel(),
		RobustConfig{CyclesPerTick: 1}, hooks(), DefaultDeadlineFactor)
	if d1 != d2 || d1 < 1 {
		t.Fatalf("calibration = %d, %d", d1, d2)
	}
	// Zero events: minimum budget of one cycle, never zero.
	d0, err := CalibrateDeadline(prog, nil, rtos.DefaultCostModel(),
		RobustConfig{CyclesPerTick: 1}, hooks(), DefaultDeadlineFactor)
	if err != nil || d0 != 1 {
		t.Fatalf("empty-workload calibration = %d (%v)", d0, err)
	}
}

package sim

import (
	"testing"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/figures"
	"fcpn/internal/petri"
	"fcpn/internal/rtos"
)

func qssProgram(t *testing.T, n *petri.Net) *codegen.Program {
	t.Helper()
	s, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := core.PartitionTasks(n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(s, tp)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestRunQSSFigure4(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	events := rtos.Periodic(t1, 10, 0, 20)
	cost := rtos.DefaultCostModel()
	m, err := RunQSS(prog, events, cost, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Events != 20 || m.Activations != 20 {
		t.Fatalf("events=%d activations=%d", m.Events, m.Activations)
	}
	if m.Cycles <= 0 {
		t.Fatal("no cycles charged")
	}
	// t1 fires once per event.
	if m.Fired[t1] != 20 {
		t.Fatalf("t1 fired %d", m.Fired[t1])
	}
	// The branch split is seed-deterministic: t2+t3 == 20.
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	if m.Fired[t2]+m.Fired[t3] != 20 {
		t.Fatalf("branches = %d + %d", m.Fired[t2], m.Fired[t3])
	}
	// Determinism.
	m2, err := RunQSS(prog, events, cost, 1)
	if err != nil || m2.Cycles != m.Cycles {
		t.Fatalf("non-deterministic run: %d vs %d (%v)", m.Cycles, m2.Cycles, err)
	}
	// Different seed → different decisions (almost surely different cycle
	// count because branch costs differ).
	m3, err := RunQSS(prog, events, cost, 99)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Fired[t2] == m.Fired[t2] && m3.Fired[t3] == m.Fired[t3] {
		t.Log("warning: same branch counts for different seeds (possible but unlikely)")
	}
}

func TestRunQSSUnknownSource(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t2, _ := n.TransitionByName("t2")
	if _, err := RunQSS(prog, []rtos.Event{{Source: t2}}, rtos.DefaultCostModel(), 1); err == nil {
		t.Fatal("event on non-source must fail")
	}
}

func TestDecisionStreamConsistency(t *testing.T) {
	n := figures.Figure4()
	p1, _ := n.PlaceByName("p1")
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	ds1 := NewDecisionStream(n, 7)
	ds2 := NewDecisionStream(n, 7)
	r1 := ds1.Resolver()
	r2 := ds2.Resolver()
	// Same (place, k) must resolve identically even when the alternative
	// lists are presented in different orders.
	for k := 0; k < 50; k++ {
		a := r1(p1, []petri.Transition{t2, t3})
		b := r2(p1, []petri.Transition{t3, t2})
		ta := []petri.Transition{t2, t3}[a]
		tb := []petri.Transition{t3, t2}[b]
		if ta != tb {
			t.Fatalf("k=%d: decision differs across orderings", k)
		}
	}
}

func TestDecisionStreamBias(t *testing.T) {
	n := figures.Figure4()
	p1, _ := n.PlaceByName("p1")
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	ds := NewDecisionStream(n, 7)
	ds.Bias = map[petri.Place][]int{p1: {1, 0}} // always the first consumer (t2)
	r := ds.Resolver()
	for k := 0; k < 20; k++ {
		if got := r(p1, []petri.Transition{t2, t3}); got != 0 {
			t.Fatalf("bias ignored at k=%d", k)
		}
	}
	// Zero-total bias falls back to uniform without panicking.
	ds2 := NewDecisionStream(n, 7)
	ds2.Bias = map[petri.Place][]int{p1: {0, 0}}
	r2 := ds2.Resolver()
	if got := r2(p1, []petri.Transition{t2, t3}); got != 0 && got != 1 {
		t.Fatalf("fallback pick = %d", got)
	}
}

func TestRunModularFigure4(t *testing.T) {
	n := figures.Figure4()
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	t4, _ := n.TransitionByName("t4")
	t5, _ := n.TransitionByName("t5")
	prog, err := codegen.GenerateModular(n, []codegen.Module{
		{Name: "in", Transitions: []petri.Transition{t1}},
		{Name: "branch", Transitions: []petri.Transition{t2, t3}},
		{Name: "out", Transitions: []petri.Transition{t4, t5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rtos.Periodic(t1, 10, 0, 20)
	cost := rtos.DefaultCostModel()
	mm, err := RunModular(prog, events, cost, 1)
	if err != nil {
		t.Fatal(err)
	}
	qp := qssProgram(t, n)
	qm, err := RunQSS(qp, events, cost, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same decision stream → identical functional behaviour (firings)…
	for tr := 0; tr < n.NumTransitions(); tr++ {
		if mm.Fired[tr] != qm.Fired[tr] {
			t.Fatalf("firing counts diverge at %s: %d vs %d",
				n.TransitionName(petri.Transition(tr)), mm.Fired[tr], qm.Fired[tr])
		}
	}
	// …but more activations and more cycles for the modular split (the
	// paper's Table I effect).
	if mm.Activations <= qm.Activations {
		t.Fatalf("modular activations (%d) must exceed QSS (%d)", mm.Activations, qm.Activations)
	}
	if mm.Cycles <= qm.Cycles {
		t.Fatalf("modular cycles (%d) must exceed QSS (%d)", mm.Cycles, qm.Cycles)
	}
	if mm.Polls == 0 {
		t.Fatal("dynamic scheduler must record polls")
	}
}

func TestHooksBeforeEvent(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	count := 0
	fired := 0
	ds := NewDecisionStream(n, 3)
	_, err := RunQSSWithHooks(prog, rtos.Periodic(t1, 1, 0, 5), rtos.DefaultCostModel(), Hooks{
		Resolver:    ds.Resolver(),
		OnFire:      func(petri.Transition) { fired++ },
		BeforeEvent: func(rtos.Event) { count++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("BeforeEvent called %d times", count)
	}
	if fired == 0 {
		t.Fatal("OnFire never called")
	}
}

func TestLatencyMetrics(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	events := rtos.Periodic(t1, 10, 0, 25)
	m, err := RunQSS(prog, events, rtos.DefaultCostModel(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.LatencyMax <= 0 || m.LatencyAvg <= 0 {
		t.Fatalf("latency not recorded: max=%d avg=%d", m.LatencyMax, m.LatencyAvg)
	}
	if m.LatencyMax < m.LatencyAvg {
		t.Fatalf("max %d < avg %d", m.LatencyMax, m.LatencyAvg)
	}
	if m.LatencyAvg*int64(m.Events) > m.Cycles {
		t.Fatalf("avg latency * events (%d) exceeds total cycles (%d)",
			m.LatencyAvg*int64(m.Events), m.Cycles)
	}
}

func TestModularLatencyExceedsQSS(t *testing.T) {
	// Under the same workload, the baseline's per-event response time
	// includes scheduler cascades: its worst case must exceed QSS's.
	n := figures.Figure4()
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	t4, _ := n.TransitionByName("t4")
	t5, _ := n.TransitionByName("t5")
	prog, err := codegen.GenerateModular(n, []codegen.Module{
		{Name: "in", Transitions: []petri.Transition{t1}},
		{Name: "branch", Transitions: []petri.Transition{t2, t3}},
		{Name: "out", Transitions: []petri.Transition{t4, t5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rtos.Periodic(t1, 10, 0, 25)
	cost := rtos.DefaultCostModel()
	mm, err := RunModular(prog, events, cost, 5)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := RunQSS(qssProgram(t, n), events, cost, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mm.LatencyMax <= qm.LatencyMax {
		t.Fatalf("modular max latency %d must exceed QSS %d", mm.LatencyMax, qm.LatencyMax)
	}
}

// TestDurationAnnotationsChargePerFiring checks the timed-net duration
// annotations end to end: every runner charges a transition's duration
// once per firing through the interpreter's OnFire hook, on top of the
// uniform Fire cost, and any user OnFire hook still runs.
func TestDurationAnnotationsChargePerFiring(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	events := rtos.Periodic(t1, 10, 0, 15)
	base := rtos.DefaultCostModel()
	annotated := base
	annotated.Durations = map[petri.Transition]int64{t1: 500}
	const wantDelta = 500 * 15 // t1 fires once per event

	runQSS := func(cost rtos.CostModel) (int64, int) {
		ds := NewDecisionStream(n, 7)
		fired := 0
		m, err := RunQSSWithHooks(prog, events, cost, Hooks{
			Resolver: ds.Resolver(),
			OnFire:   func(petri.Transition) { fired++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Cycles, fired
	}
	plain, firedPlain := runQSS(base)
	rich, firedRich := runQSS(annotated)
	if firedPlain != firedRich || firedPlain == 0 {
		t.Fatalf("user OnFire hook lost under annotations: %d vs %d", firedPlain, firedRich)
	}
	if rich-plain != wantDelta {
		t.Fatalf("QSS duration charge = %d, want %d", rich-plain, wantDelta)
	}

	timedCycles := func(cost rtos.CostModel) int64 {
		ds := NewDecisionStream(n, 7)
		tm, err := RunTimed(prog, events, cost, TimedConfig{CyclesPerTick: 10},
			Hooks{Resolver: ds.Resolver()})
		if err != nil {
			t.Fatal(err)
		}
		return tm.Cycles
	}
	if d := timedCycles(annotated) - timedCycles(base); d != wantDelta {
		t.Fatalf("timed duration charge = %d, want %d", d, wantDelta)
	}

	robustCycles := func(cost rtos.CostModel) int64 {
		ds := NewDecisionStream(n, 7)
		rm, err := RunRobust(prog, events, cost, RobustConfig{},
			Hooks{Resolver: ds.Resolver()})
		if err != nil {
			t.Fatal(err)
		}
		return rm.Cycles
	}
	if d := robustCycles(annotated) - robustCycles(base); d != wantDelta {
		t.Fatalf("robust duration charge = %d, want %d", d, wantDelta)
	}
}

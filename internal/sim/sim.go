// Package sim executes generated task programs (internal/codegen) on the
// simulated RTOS (internal/rtos) against an event workload, producing the
// metrics of the paper's Table I: task count, generated code size and
// clock cycles.
//
// Both implementations of a net — the quasi-static one and the functional
// (modular) baseline — are driven with the *same* decision stream: the
// k-th control token of each choice place resolves identically in both
// runs, so measured differences come from scheduling, not workload luck.
package sim

import (
	"fmt"

	"fcpn/internal/codegen"
	"fcpn/internal/petri"
	"fcpn/internal/rtos"
)

// Metrics is the outcome of one simulated run.
type Metrics struct {
	// Cycles is the total cycle cost (the paper's "Clock cycles" row).
	Cycles int64
	// Activations counts RTOS task dispatches.
	Activations int64
	// Polls counts no-work scheduler examinations (baseline only).
	Polls int64
	// Events is the number of workload events delivered.
	Events int
	// Fired is the per-transition firing count over the whole run.
	Fired []int
	// MaxCounter is the largest queue/counter value observed: the memory
	// bound actually exercised.
	MaxCounter int
	// PerTask counts activations per task.
	PerTask map[string]int64
	// LatencyMax and LatencyAvg summarise per-event processing cost in
	// cycles (response time of one input under run-to-completion).
	LatencyMax int64
	LatencyAvg int64
	// DroppedEvents counts workload events lost to a bounded ingress
	// queue's overflow policy (robust runs only; see RunRobust).
	DroppedEvents int64
	// DeadlineMisses counts events whose response time exceeded the
	// configured watchdog budget (robust runs only).
	DeadlineMisses int64
	// BoundViolations counts places whose observed peak counter exceeded
	// the configured static bound (robust runs only): the executable form
	// of the paper's bounded-memory claim. Zero for every valid schedule
	// under sound (structural) bounds.
	BoundViolations int
}

// recordLatency folds one event's cycle cost into the metrics aggregates.
type latencyAgg struct {
	max, sum int64
	n        int64
}

func (l *latencyAgg) add(cycles int64) {
	if cycles > l.max {
		l.max = cycles
	}
	l.sum += cycles
	l.n++
}

func (l *latencyAgg) into(m *Metrics) {
	m.LatencyMax = l.max
	if l.n > 0 {
		m.LatencyAvg = l.sum / l.n
	}
}

// DecisionStream resolves the k-th control token of each choice place
// deterministically from a seed, so independent runs see identical data.
type DecisionStream struct {
	seed uint64
	k    map[petri.Place]uint64
	net  *petri.Net
	// Bias optionally overrides the uniform distribution: Bias[p] gives
	// per-alternative weights for place p (len = number of consumers).
	Bias map[petri.Place][]int
}

// NewDecisionStream creates a stream for the net with the given seed.
func NewDecisionStream(n *petri.Net, seed uint64) *DecisionStream {
	return &DecisionStream{seed: seed, k: make(map[petri.Place]uint64), net: n}
}

// Resolver adapts the stream to the interpreter's callback. The chosen
// transition is a deterministic function of (place, occurrence index,
// seed); its position within the alternatives offered is looked up so QSS
// and modular code see the same decision regardless of code shape.
func (ds *DecisionStream) Resolver() codegen.ChoiceResolver {
	return func(p petri.Place, alts []petri.Transition) int {
		k := ds.k[p]
		ds.k[p] = k + 1
		target := ds.decide(p, k)
		for i, t := range alts {
			if t == target {
				return i
			}
		}
		return -1
	}
}

func (ds *DecisionStream) decide(p petri.Place, k uint64) petri.Transition {
	consumers := ds.net.Consumers(p)
	h := ds.seed ^ (uint64(p)+1)*0x9E3779B97F4A7C15 ^ (k+1)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	if weights, ok := ds.Bias[p]; ok && len(weights) == len(consumers) {
		total := 0
		for _, w := range weights {
			total += w
		}
		if total > 0 {
			x := int(h % uint64(total))
			for i, w := range weights {
				if x < w {
					return consumers[i].Transition
				}
				x -= w
			}
		}
	}
	return consumers[h%uint64(len(consumers))].Transition
}

// Hooks customises a run: how choices resolve, what observes firings, and
// what happens before each event (e.g. presenting the next cell header to
// a behavioural model).
type Hooks struct {
	Resolver    codegen.ChoiceResolver
	OnFire      func(t petri.Transition)
	BeforeEvent func(ev rtos.Event)
}

// fireHook chains duration charging onto the caller's OnFire when the
// cost model carries per-transition duration annotations (timed Petri
// nets). The interpreter invokes it once per firing, so annotated and
// unannotated runs share one code path; without annotations the caller's
// hook is returned untouched.
func fireHook(k *rtos.Kernel, hooks Hooks) func(petri.Transition) {
	if len(k.Cost.Durations) == 0 {
		return hooks.OnFire
	}
	user := hooks.OnFire
	return func(t petri.Transition) {
		k.ChargeDuration(t)
		if user != nil {
			user(t)
		}
	}
}

// RunQSS drives the quasi-statically scheduled program: each event costs
// one interrupt plus one task activation, then the task runs to
// completion. Choices resolve through a seeded DecisionStream.
func RunQSS(prog *codegen.Program, events []rtos.Event, cost rtos.CostModel, seed uint64) (*Metrics, error) {
	ds := NewDecisionStream(prog.Net, seed)
	return RunQSSWithHooks(prog, events, cost, Hooks{Resolver: ds.Resolver()})
}

// emptyMetrics is the explicit fast path for zero-event workloads: no
// interpreter is built and every aggregate is zero by construction
// (Events: 0, LatencyAvg: 0 — not a 0/0 division that happens to work).
func emptyMetrics(prog *codegen.Program) *Metrics {
	return &Metrics{
		Events:  0,
		Fired:   make([]int, prog.Net.NumTransitions()),
		PerTask: make(map[string]int64),
	}
}

// RunQSSWithHooks is RunQSS with caller-supplied hooks.
func RunQSSWithHooks(prog *codegen.Program, events []rtos.Event, cost rtos.CostModel, hooks Hooks) (*Metrics, error) {
	if len(events) == 0 {
		return emptyMetrics(prog), nil
	}
	in := codegen.NewInterp(prog, hooks.Resolver)
	k := rtos.NewKernel(cost)
	in.OnFire = fireHook(k, hooks)
	var lat latencyAgg
	for _, ev := range events {
		ti := prog.TaskBySource(ev.Source)
		if ti < 0 {
			return nil, fmt.Errorf("sim: no task for source %s", prog.Net.TransitionName(ev.Source))
		}
		if hooks.BeforeEvent != nil {
			hooks.BeforeEvent(ev)
		}
		startCycles := k.Cycles
		k.Interrupt()
		k.Activate(prog.Tasks[ti].Task.Name)
		beforeFired, beforeOps := totalFired(in), in.Stats.Ops
		if err := in.RunSource(ev.Source); err != nil {
			return nil, err
		}
		k.ChargeFirings(totalFired(in) - beforeFired)
		k.ChargeOps(int64(in.Stats.Ops - beforeOps))
		lat.add(k.Cycles - startCycles)
	}
	m := metricsFrom(k, in, len(events))
	lat.into(m)
	return m, nil
}

// RunModular drives the functional-partitioning baseline: the event
// activates the owning module's task, then a dynamic scheduler keeps
// dispatching module tasks whose queues contain work until the system is
// quiescent. Every dispatch pays activation overhead; examining an idle
// task pays a poll. Choices resolve through a seeded DecisionStream.
func RunModular(prog *codegen.Program, events []rtos.Event, cost rtos.CostModel, seed uint64) (*Metrics, error) {
	ds := NewDecisionStream(prog.Net, seed)
	return RunModularWithHooks(prog, events, cost, Hooks{Resolver: ds.Resolver()})
}

// RunModularWithHooks is RunModular with caller-supplied hooks.
func RunModularWithHooks(prog *codegen.Program, events []rtos.Event, cost rtos.CostModel, hooks Hooks) (*Metrics, error) {
	if len(events) == 0 {
		return emptyMetrics(prog), nil
	}
	in := codegen.NewInterp(prog, hooks.Resolver)
	k := rtos.NewKernel(cost)
	in.OnFire = fireHook(k, hooks)
	var lat latencyAgg
	for _, ev := range events {
		ti := prog.TaskBySource(ev.Source)
		if ti < 0 {
			return nil, fmt.Errorf("sim: no task for source %s", prog.Net.TransitionName(ev.Source))
		}
		if hooks.BeforeEvent != nil {
			hooks.BeforeEvent(ev)
		}
		startCycles := k.Cycles
		k.Interrupt()
		k.Activate(prog.Tasks[ti].Task.Name)
		beforeFired, beforeOps := totalFired(in), in.Stats.Ops
		if err := in.RunSource(ev.Source); err != nil {
			return nil, err
		}
		k.ChargeFirings(totalFired(in) - beforeFired)
		k.ChargeOps(int64(in.Stats.Ops - beforeOps))

		// Dynamic scheduling: cascade through the module tasks until no
		// task makes progress.
		for {
			progress := false
			for mi := range prog.Tasks {
				beforeFired, beforeOps := totalFired(in), in.Stats.Ops
				fired, err := in.RunTask(mi)
				if err != nil {
					return nil, err
				}
				if fired {
					k.Activate(prog.Tasks[mi].Task.Name)
					progress = true
				} else {
					k.Poll(prog.Tasks[mi].Task.Name)
				}
				k.ChargeFirings(totalFired(in) - beforeFired)
				k.ChargeOps(int64(in.Stats.Ops - beforeOps))
			}
			if !progress {
				break
			}
		}
		lat.add(k.Cycles - startCycles)
	}
	m := metricsFrom(k, in, len(events))
	lat.into(m)
	return m, nil
}

func totalFired(in *codegen.Interp) int64 {
	var sum int64
	for _, c := range in.Stats.Fired {
		sum += int64(c)
	}
	return sum
}

func metricsFrom(k *rtos.Kernel, in *codegen.Interp, events int) *Metrics {
	fired := append([]int(nil), in.Stats.Fired...)
	return &Metrics{
		Cycles:      k.Cycles,
		Activations: k.Activations,
		Polls:       k.Polls,
		Events:      events,
		Fired:       fired,
		MaxCounter:  in.Stats.MaxCounter,
		PerTask:     k.PerTask,
	}
}

package sim

import (
	"errors"
	"reflect"
	"testing"

	"fcpn/internal/core"
	"fcpn/internal/fault"
	"fcpn/internal/figures"
	"fcpn/internal/rtos"
)

// TestRunRobustPolicyInjectorMatrix exercises every overflow policy
// against every injector kind: the simulator must never panic, must stay
// deterministic, and a valid schedule must never violate the structural
// bounds regardless of what the environment does to the event stream.
func TestRunRobustPolicyInjectorMatrix(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	base := rtos.Periodic(t1, 10, 0, 40)
	limits, err := StructuralLimits(n)
	if err != nil {
		t.Fatal(err)
	}
	cost := rtos.DefaultCostModel()

	policies := []rtos.OverflowPolicy{rtos.DropNewest, rtos.DropOldest, rtos.Reject}
	injectors := []struct {
		name string
		inj  fault.Injector
	}{
		{"burst", fault.Burst{Pct: 60, Extra: 3, Source: fault.AnySource}},
		{"duplicate", fault.Duplicate{Pct: 50, Source: fault.AnySource}},
		{"drop", fault.Drop{Pct: 30, Source: fault.AnySource}},
		{"jitter", fault.JitterTicks{Window: 15, Source: fault.AnySource}},
	}

	for _, pol := range policies {
		for _, tc := range injectors {
			t.Run(pol.String()+"/"+tc.name, func(t *testing.T) {
				sc := fault.Scenario{Name: tc.name, Seed: 0xFA117, Injectors: []fault.Injector{tc.inj}}
				events := sc.Apply(base)
				cfg := RobustConfig{
					Queue:    rtos.QueueConfig{Capacity: 4, Policy: pol},
					Deadline: 5000,
					Jitter:   &fault.CostJitter{Seed: sc.Seed, MaxPct: 25},
					Limits:   limits,
				}
				run := func() *RobustMetrics {
					ds := NewDecisionStream(n, sc.Seed)
					rm, err := RunRobust(prog, events, cost, cfg, Hooks{Resolver: ds.Resolver()})
					if err != nil {
						t.Fatalf("%s under %s: %v", pol, tc.name, err)
					}
					return rm
				}
				rm := run()
				if rm.BoundViolations != 0 {
					t.Fatalf("structural bound violations under %s/%s: %v", pol, tc.name, rm.Violations)
				}
				// DroppedEvents counts both kinds of loss, so served + lost
				// must account for every injected event.
				if int64(rm.Events)+rm.DroppedEvents != int64(len(events)) {
					t.Fatalf("event accounting: served %d + lost %d != injected %d",
						rm.Events, rm.DroppedEvents, len(events))
				}
				switch pol {
				case rtos.Reject:
					// Under Reject all losses are rejections.
					if rm.DroppedEvents != rm.RejectedEvents {
						t.Fatalf("reject policy counted %d lost but %d rejected",
							rm.DroppedEvents, rm.RejectedEvents)
					}
				default:
					if rm.RejectedEvents != 0 {
						t.Fatalf("%s policy rejected %d events", pol, rm.RejectedEvents)
					}
				}
				// Byte-identical replay with the same seed.
				if again := run(); !reflect.DeepEqual(rm, again) {
					t.Fatalf("non-deterministic robust run under %s/%s", pol, tc.name)
				}
			})
		}
	}
}

// TestRunRobustBacklogExceedsCycleBounds shows the two-bound design: an
// unbounded queue under a heavy burst exceeds the per-cycle schedule
// bounds (backlog), while the structural bounds still hold.
func TestRunRobustBacklogExceedsCycleBounds(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	// All 60 events at t=0: maximal backlog.
	events := make([]rtos.Event, 60)
	for i := range events {
		events[i] = rtos.Event{Time: 0, Source: t1}
	}
	limits, err := StructuralLimits(n)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cycleLimits, err := ScheduleLimits(sched)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDecisionStream(n, 7)
	rm, err := RunRobust(prog, events, rtos.DefaultCostModel(),
		RobustConfig{Limits: limits, CycleLimits: cycleLimits},
		Hooks{Resolver: ds.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if rm.BoundViolations != 0 {
		t.Fatalf("structural bounds must hold even under backlog: %v", rm.Violations)
	}
	if rm.Events != 60 || rm.DroppedEvents != 0 {
		t.Fatalf("unbounded queue served %d, dropped %d", rm.Events, rm.DroppedEvents)
	}
}

// TestRunRobustDetectsViolations proves the checker is live: impossibly
// tight limits must be flagged, sorted by place.
func TestRunRobustDetectsViolations(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	events := rtos.Periodic(t1, 10, 0, 10)
	// Measure the real peaks first, then demand one fewer token than was
	// observed on the busiest place: that limit must trip.
	probe, err := RunRobust(prog, events, rtos.DefaultCostModel(),
		RobustConfig{}, Hooks{Resolver: NewDecisionStream(n, 3).Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	busiest, peak := -1, 0
	for p, v := range probe.PeakCounters {
		if v > peak {
			busiest, peak = p, v
		}
	}
	if busiest < 0 {
		t.Fatal("no place ever held a token; cannot provoke a violation")
	}
	limits := make([]int, n.NumPlaces())
	for i := range limits {
		limits[i] = -1
	}
	limits[busiest] = peak - 1
	ds := NewDecisionStream(n, 3)
	rm, err := RunRobust(prog, events, rtos.DefaultCostModel(),
		RobustConfig{Limits: limits}, Hooks{Resolver: ds.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if rm.BoundViolations == 0 {
		t.Fatalf("limit %d below observed peak %d did not trip the checker", peak-1, peak)
	}
	if len(rm.Violations) != rm.BoundViolations {
		t.Fatalf("Violations length %d != BoundViolations %d", len(rm.Violations), rm.BoundViolations)
	}
	if rm.Violations[0].Bound != peak-1 || rm.Violations[0].Observed != peak {
		t.Fatalf("violation detail: %+v", rm.Violations[0])
	}
	if rm.Violations[0].String() == "" {
		t.Fatal("empty violation string")
	}
}

func TestRunRobustStepBudget(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	events := rtos.Periodic(t1, 10, 0, 100)
	ds := NewDecisionStream(n, 1)
	rm, err := RunRobust(prog, events, rtos.DefaultCostModel(),
		RobustConfig{StepBudget: 20}, Hooks{Resolver: ds.Resolver()})
	if err == nil {
		t.Fatal("a 20-op budget over 100 events must be exhausted")
	}
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("error %v is not core.ErrBudgetExceeded", err)
	}
	if rm == nil || !rm.BudgetExhausted {
		t.Fatalf("partial metrics missing or not flagged: %+v", rm)
	}
	if rm.Steps < 20 {
		t.Fatalf("steps=%d below the budget it exhausted", rm.Steps)
	}
	if rm.Events >= 100 {
		t.Fatalf("served all %d events despite the budget", rm.Events)
	}
}

func TestZeroEventFastPaths(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	cost := rtos.DefaultCostModel()

	qm, err := RunQSS(prog, nil, cost, 1)
	if err != nil || qm.Events != 0 || qm.Cycles != 0 {
		t.Fatalf("RunQSS zero events: %+v, %v", qm, err)
	}
	if len(qm.Fired) != n.NumTransitions() || qm.PerTask == nil {
		t.Fatalf("empty metrics not fully shaped: %+v", qm)
	}
	mm, err := RunModular(prog, []rtos.Event{}, cost, 1)
	if err != nil || mm.Events != 0 || mm.Cycles != 0 {
		t.Fatalf("RunModular zero events: %+v, %v", mm, err)
	}
	tm, err := RunTimed(prog, nil, cost, TimedConfig{CyclesPerTick: 1}, Hooks{})
	if err != nil || tm.Events != 0 {
		t.Fatalf("RunTimed zero events: %+v, %v", tm, err)
	}
	rm, err := RunRobust(prog, nil, cost, RobustConfig{}, Hooks{})
	if err != nil || rm.Events != 0 || rm.Makespan != 0 {
		t.Fatalf("RunRobust zero events: %+v, %v", rm, err)
	}
	// The peak counters of an idle run are the initial marking.
	if !reflect.DeepEqual(rm.PeakCounters, []int(n.InitialMarking())) {
		t.Fatalf("idle peaks %v != initial marking %v", rm.PeakCounters, n.InitialMarking())
	}
}

func TestRunRobustModularCascade(t *testing.T) {
	n := figures.Figure4()
	prog := qssProgram(t, n)
	t1, _ := n.TransitionByName("t1")
	events := rtos.Periodic(t1, 10, 0, 10)
	ds := NewDecisionStream(n, 5)
	rm, err := RunRobust(prog, events, rtos.DefaultCostModel(),
		RobustConfig{Modular: true}, Hooks{Resolver: ds.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	if rm.Events != 10 {
		t.Fatalf("served %d", rm.Events)
	}
}

// Package netgen generates pseudo-random Free-Choice Petri Nets for
// property-based testing and fuzz-style benchmarks. Generation is
// deterministic per seed.
//
// RandomSchedulablePipeline builds nets that are quasi-statically
// schedulable *by construction*: forests of source-fed chains whose
// choices branch into independent sub-chains that never re-synchronise
// across branches, with rate-balanced weighted arcs. RandomNet relaxes the
// guarantees (it may produce non-schedulable nets) for negative testing.
package netgen

import (
	"fmt"

	"fcpn/internal/petri"
)

// rng is a small deterministic generator (splitmix-style).
type rng struct{ state uint64 }

func newRng(seed uint64) *rng {
	return &rng{state: seed*0x9E3779B97F4A7C15 + 0x1234567}
}

func (r *rng) next(n int) int {
	if n <= 0 {
		return 0
	}
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}

// Config bounds the generated nets.
type Config struct {
	// MaxSources bounds the number of independent inputs (≥ 1).
	MaxSources int
	// MaxDepth bounds chain depth below each source.
	MaxDepth int
	// MaxBranch bounds the number of alternatives per choice (≥ 2 when a
	// choice is placed).
	MaxBranch int
	// MaxWeight bounds arc weights for the multirate segments.
	MaxWeight int
	// ChoicePct is the percentage (0–100) of places that become choices.
	ChoicePct int
	// MultiratePct is the percentage of 1:1 segments upgraded to
	// rate-balanced weighted segments.
	MultiratePct int
}

// DefaultConfig generates small, readable nets.
func DefaultConfig() Config {
	return Config{
		MaxSources:   3,
		MaxDepth:     4,
		MaxBranch:    3,
		MaxWeight:    3,
		ChoicePct:    40,
		MultiratePct: 30,
	}
}

// RandomSchedulablePipeline generates a free-choice net that has a valid
// quasi-static schedule by construction: every choice branch is a chain
// that drains to a sink, weighted segments are rate-balanced within one
// cycle (producer weight w feeds a consumer of weight 1 or vice versa, so
// a covering T-invariant always exists), and branches never merge into a
// synchronising transition.
func RandomSchedulablePipeline(seed uint64, cfg Config) *petri.Net {
	r := newRng(seed)
	if cfg.MaxSources < 1 {
		cfg.MaxSources = 1
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.MaxBranch < 2 {
		cfg.MaxBranch = 2
	}
	if cfg.MaxWeight < 1 {
		cfg.MaxWeight = 1
	}
	b := petri.NewBuilder(fmt.Sprintf("rand%d", seed))
	id := 0
	fresh := func(prefix string) string {
		id++
		return fmt.Sprintf("%s%d", prefix, id)
	}

	// grow extends the net below transition t for depth levels.
	var grow func(t petri.Transition, depth int)
	grow = func(t petri.Transition, depth int) {
		if depth <= 0 {
			return // t is a sink
		}
		p := b.Place(fresh("p"))
		if r.next(100) < cfg.ChoicePct {
			// Free choice: 2..MaxBranch alternatives, unit weights into
			// and out of the choice place.
			b.ArcTP(t, p)
			branches := 2 + r.next(cfg.MaxBranch-1)
			for i := 0; i < branches; i++ {
				alt := b.Transition(fresh("t"))
				b.Arc(p, alt)
				grow(alt, depth-1-r.next(2))
			}
			return
		}
		next := b.Transition(fresh("t"))
		if r.next(100) < cfg.MultiratePct {
			// Rate-balanced multirate segment: either accumulate
			// (produce 1, consume w) or distribute (produce w, consume 1).
			w := 2 + r.next(cfg.MaxWeight-1)
			if r.next(2) == 0 {
				b.ArcTP(t, p)
				b.WeightedArc(p, next, w) // consumer needs w productions
			} else {
				b.WeightedArcTP(t, p, w)
				b.Arc(p, next) // consumer drains w times
			}
		} else {
			b.Chain(t, p, next)
		}
		grow(next, depth-1)
	}

	sources := 1 + r.next(cfg.MaxSources)
	for i := 0; i < sources; i++ {
		src := b.Transition(fresh("src"))
		grow(src, 1+r.next(cfg.MaxDepth))
	}
	return b.Build()
}

// RandomNet generates an arbitrary free-choice net with no schedulability
// guarantee: branches may re-synchronise (the Figure 3b pattern), so some
// seeds produce non-schedulable nets. Useful for exercising the solver's
// failure diagnostics.
func RandomNet(seed uint64, cfg Config) *petri.Net {
	r := newRng(seed ^ 0xABCDEF)
	n := RandomSchedulablePipeline(seed, cfg)
	// With probability ~1/2, rebuild with an added synchronising join of
	// two sink transitions' outputs (the classic non-schedulable shape).
	if r.next(2) == 0 {
		return n
	}
	b := petri.NewBuilder(n.Name() + "_sync")
	// Copy the net.
	places := make([]petri.Place, n.NumPlaces())
	init := n.InitialMarking()
	for p := 0; p < n.NumPlaces(); p++ {
		places[p] = b.MarkedPlace(n.PlaceName(petri.Place(p)), init[p])
	}
	trans := make([]petri.Transition, n.NumTransitions())
	for t := 0; t < n.NumTransitions(); t++ {
		trans[t] = b.Transition(n.TransitionName(petri.Transition(t)))
	}
	for t := 0; t < n.NumTransitions(); t++ {
		for _, a := range n.Pre(petri.Transition(t)) {
			b.WeightedArc(places[a.Place], trans[t], a.Weight)
		}
		for _, a := range n.Post(petri.Transition(t)) {
			b.WeightedArcTP(trans[t], places[a.Place], a.Weight)
		}
	}
	sinks := n.SinkTransitions()
	if len(sinks) >= 2 {
		i := r.next(len(sinks))
		j := r.next(len(sinks))
		if i != j {
			pa := b.Place("sync_a")
			pb := b.Place("sync_b")
			join := b.Transition("sync_join")
			b.ArcTP(trans[sinks[i]], pa)
			b.ArcTP(trans[sinks[j]], pb)
			b.Arc(pa, join)
			b.Arc(pb, join)
		}
	}
	return b.Build()
}

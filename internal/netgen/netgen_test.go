package netgen

import (
	"testing"

	"fcpn/internal/petri"
)

func TestDeterministic(t *testing.T) {
	a := RandomSchedulablePipeline(42, DefaultConfig())
	b := RandomSchedulablePipeline(42, DefaultConfig())
	if petri.Format(a) != petri.Format(b) {
		t.Fatal("generation not deterministic")
	}
	c := RandomSchedulablePipeline(43, DefaultConfig())
	if petri.Format(a) == petri.Format(c) {
		t.Fatal("different seeds produced identical nets")
	}
}

func TestAlwaysFreeChoice(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		n := RandomSchedulablePipeline(seed, DefaultConfig())
		if err := n.Validate(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, petri.Format(n))
		}
		if len(n.SourceTransitions()) == 0 {
			t.Fatalf("seed %d: no sources", seed)
		}
	}
}

func TestConfigClamping(t *testing.T) {
	n := RandomSchedulablePipeline(7, Config{})
	if n.NumTransitions() == 0 {
		t.Fatal("degenerate config produced empty net")
	}
}

func TestRandomNetValid(t *testing.T) {
	sync := 0
	for seed := uint64(0); seed < 100; seed++ {
		n := RandomNet(seed, DefaultConfig())
		if err := n.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, ok := n.TransitionByName("sync_join"); ok {
			sync++
		}
	}
	if sync == 0 {
		t.Fatal("RandomNet never produced a synchronising variant")
	}
}

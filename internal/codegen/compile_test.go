package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"fcpn/internal/core"
	"fcpn/internal/figures"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

// compileC compiles a generated translation unit with the system C
// compiler under -Wall -Werror; the test is skipped when no compiler is
// installed. This validates that the backend emits real, warning-free C —
// extern computation hooks stay unresolved (-c).
func compileC(t *testing.T, name, src string) {
	t.Helper()
	cc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler in PATH")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, name+".c")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(cc, "-std=c99", "-Wall", "-Werror", "-c", path,
		"-o", filepath.Join(dir, name+".o")).CombinedOutput()
	if err != nil {
		t.Fatalf("cc failed for %s: %v\n%s\n--- source ---\n%s", name, err, out, src)
	}
}

func TestGeneratedCCompilesFigures(t *testing.T) {
	for _, name := range []string{"figure3a", "figure4", "figure5"} {
		n := figures.All()[name]
		prog := generate(t, n)
		compileC(t, name, EmitC(prog, CConfig{Standalone: true}))
		compileC(t, name+"_tasks", EmitC(prog, CConfig{}))
	}
}

func TestGeneratedCCompilesModular(t *testing.T) {
	n := figures.Figure4()
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	t4, _ := n.TransitionByName("t4")
	t5, _ := n.TransitionByName("t5")
	prog, err := GenerateModular(n, []Module{
		{Name: "in", Transitions: []petri.Transition{t1}},
		{Name: "branch", Transitions: []petri.Transition{t2, t3}},
		{Name: "out", Transitions: []petri.Transition{t4, t5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	compileC(t, "modular", EmitC(prog, CConfig{}))
}

func TestGeneratedCCompilesRandomNets(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := uint64(0); seed < 10; seed++ {
		n := netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig())
		s, err := core.Solve(n, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tp, err := core.PartitionTasks(n, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Generate(s, tp)
		if err != nil {
			t.Fatal(err)
		}
		compileC(t, n.Name(), EmitC(prog, CConfig{}))
	}
}

func TestGeneratedCWithAssertsCompiles(t *testing.T) {
	prog := generate(t, figures.Figure5())
	compileC(t, "figure5_asserts", EmitC(prog, CConfig{DebugAsserts: true}))
}

func TestHeaderCompilesWithUnit(t *testing.T) {
	cc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler in PATH")
	}
	prog := generate(t, figures.Figure5())
	dir := t.TempDir()
	hPath := filepath.Join(dir, "figure5.h")
	cPath := filepath.Join(dir, "figure5.c")
	src := "#include \"figure5.h\"\n\n" + EmitC(prog, CConfig{})
	if err := os.WriteFile(hPath, []byte(EmitH(prog)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(cc, "-std=c99", "-Wall", "-Werror", "-I", dir,
		"-c", cPath, "-o", filepath.Join(dir, "figure5.o")).CombinedOutput()
	if err != nil {
		t.Fatalf("cc: %v\n%s", err, out)
	}
}

package codegen

import (
	"fmt"
	"sort"

	"fcpn/internal/core"
	"fcpn/internal/petri"
)

// Module is one functional block of a specification, for the paper's
// comparison baseline ("functional task partitioning": one task per module,
// Table I right column).
type Module struct {
	Name        string
	Transitions []petri.Transition
}

// GenerateModular produces the baseline implementation: one task per
// module, each compiled in the fully counter-based style (every place a
// queue counter, every transition guarded by a while over its inputs).
// Inter-module places become communication queues drained by the consuming
// module's task, so each event typically cascades through several task
// activations — the run-time overhead the paper's QSS avoids.
//
// Free-choice clusters must lie entirely within one module: the choice is
// resolved where the control token is consumed.
func GenerateModular(n *petri.Net, modules []Module) (*Program, error) {
	owner := make([]int, n.NumTransitions())
	for i := range owner {
		owner[i] = -1
	}
	for mi, m := range modules {
		for _, t := range m.Transitions {
			if int(t) < 0 || int(t) >= n.NumTransitions() {
				return nil, fmt.Errorf("codegen: module %s: transition %d out of range", m.Name, t)
			}
			if owner[t] != -1 {
				return nil, fmt.Errorf("codegen: transition %s assigned to two modules",
					n.TransitionName(t))
			}
			owner[t] = mi
		}
	}
	for t, mi := range owner {
		if mi == -1 {
			return nil, fmt.Errorf("codegen: transition %s not assigned to any module",
				n.TransitionName(petri.Transition(t)))
		}
	}

	prog := &Program{
		Net:        n,
		HasCounter: make([]bool, n.NumPlaces()),
	}
	partition := &core.TaskPartition{Net: n}
	clusters := n.ConflictClusters()
	for mi, m := range modules {
		ts := append([]petri.Transition(nil), m.Transitions...)
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		task := core.Task{Name: "task_" + m.Name, Transitions: ts}
		for _, t := range ts {
			if isSource(n, t) {
				task.Sources = append(task.Sources, t)
			}
		}
		tc := &TaskCode{Task: task}
		for _, src := range task.Sources {
			body := []Node{FireNode{src}}
			for _, out := range n.Post(src) {
				prog.HasCounter[out.Place] = true
				body = append(body, IncNode{out.Place, out.Weight})
			}
			tc.Bodies = append(tc.Bodies, SourceBody{Source: src, Body: body})
		}
		// Non-source transitions drain by conflict cluster.
		for _, c := range clusters {
			if owner[c.Transitions[0]] != mi {
				continue
			}
			for _, t := range c.Transitions {
				if owner[t] != mi {
					return nil, fmt.Errorf("codegen: free-choice cluster of %s spans modules",
						n.TransitionName(t))
				}
			}
			block, err := prog.clusterBlock(c)
			if err != nil {
				return nil, err
			}
			tc.Residual = append(tc.Residual, block)
		}
		partition.Tasks = append(partition.Tasks, task)
		prog.Tasks = append(prog.Tasks, tc)
	}
	prog.Partition = partition
	return prog, nil
}

// clusterBlock compiles one conflict cluster to a counter-based drain loop.
func (prog *Program) clusterBlock(c petri.ConflictCluster) (Node, error) {
	n := prog.Net
	if len(c.Transitions) == 1 {
		return prog.residualBlock(c.Transitions[0]), nil
	}
	// Free choice: all alternatives share the single choice place.
	if len(c.Places) != 1 {
		return nil, fmt.Errorf("codegen: choice cluster with %d places is not free-choice", len(c.Places))
	}
	p := c.Places[0]
	prog.HasCounter[p] = true
	choice := ChoiceNode{P: p}
	for _, t := range c.Transitions {
		body := []Node{FireNode{t}}
		for _, out := range n.Post(t) {
			prog.HasCounter[out.Place] = true
			body = append(body, IncNode{out.Place, out.Weight})
		}
		choice.Branches = append(choice.Branches, Branch{T: t, Body: body})
	}
	return GuardNode{
		Conds: []Cond{{p, 1}},
		Loop:  true,
		Body:  []Node{DecNode{p, 1}, choice},
	}, nil
}

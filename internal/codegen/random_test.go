package codegen

import (
	"testing"

	"fcpn/internal/core"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

// TestRandomNetsCodegenEquivalence is the strongest property in the
// repository: for 80 randomly generated schedulable FCPNs, synthesise the
// task code, drive it with pseudo-random source events and choice
// outcomes, and after every event check the state equation — the code's
// counters must equal μ0 + fᵀ·D for the fired vector f, with every
// transient place empty. Any divergence between the generated control
// structure (ifs, whiles, counters, helpers) and the net semantics fails
// here.
func TestRandomNetsCodegenEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 80; seed++ {
		n := netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig())
		s, err := core.Solve(n, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tp, err := core.PartitionTasks(n, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := Generate(s, tp)
		if err != nil {
			t.Fatalf("seed %d: generate: %v\n%s", seed, err, petri.Format(n))
		}
		if src := EmitC(prog, CConfig{}); LineCount(src) == 0 {
			t.Fatalf("seed %d: empty C", seed)
		}
		in := NewInterp(prog, lcgResolver(seed*7+1))
		sources := n.SourceTransitions()
		state := seed
		for e := 0; e < 30; e++ {
			state = state*2862933555777941757 + 3037000493
			src := sources[int((state>>33)%uint64(len(sources)))]
			if err := in.RunSource(src); err != nil {
				t.Fatalf("seed %d event %d: %v\n%s", seed, e, err, petri.Format(n))
			}
			if err := in.StateEquationCheck(); err != nil {
				t.Fatalf("seed %d event %d: %v\n%s\n%s", seed, e, err,
					petri.Format(n), EmitC(prog, CConfig{}))
			}
		}
		// Bounded memory: counters stay below a small structural bound
		// (max arc weight × 2) for these balanced pipelines.
		maxW := 1
		for _, tr := range n.Transitions() {
			for _, a := range n.Pre(tr) {
				if a.Weight > maxW {
					maxW = a.Weight
				}
			}
			for _, a := range n.Post(tr) {
				if a.Weight > maxW {
					maxW = a.Weight
				}
			}
		}
		if in.Stats.MaxCounter > 2*maxW {
			t.Fatalf("seed %d: counter reached %d (max weight %d): unbounded accumulation in generated code",
				seed, in.Stats.MaxCounter, maxW)
		}
	}
}

// TestRandomNetsModularEquivalence runs the functional-baseline generator
// over random nets: transitions are partitioned into two modules along
// cluster boundaries, the program is driven with the RTOS-style drain
// loop, and the state equation must hold after quiescence — the modular
// path's analogue of TestRandomNetsCodegenEquivalence.
func TestRandomNetsModularEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		n := netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig())
		clusters := n.ConflictClusters()
		if len(clusters) < 2 {
			continue
		}
		// Split clusters in two halves: a legal module partition.
		var modA, modB []petri.Transition
		for i, c := range clusters {
			if i%2 == 0 {
				modA = append(modA, c.Transitions...)
			} else {
				modB = append(modB, c.Transitions...)
			}
		}
		// Sources have no cluster; give them to module A.
		for _, src := range n.SourceTransitions() {
			modA = append(modA, src)
		}
		prog, err := GenerateModular(n, []Module{
			{Name: "A", Transitions: modA},
			{Name: "B", Transitions: modB},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := NewInterp(prog, lcgResolver(seed+99))
		sources := n.SourceTransitions()
		for e := 0; e < 20; e++ {
			src := sources[e%len(sources)]
			if err := in.RunSource(src); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for {
				progress := false
				for ti := range prog.Tasks {
					fired, err := in.RunTask(ti)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					progress = progress || fired
				}
				if !progress {
					break
				}
			}
			if err := in.StateEquationCheck(); err != nil {
				t.Fatalf("seed %d event %d: %v\n%s", seed, e, err, petri.Format(n))
			}
		}
	}
}

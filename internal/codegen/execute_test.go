package codegen_test

import (
	"os/exec"
	"testing"

	"fcpn/internal/ctest"
	"fcpn/internal/figures"
	"fcpn/internal/petri"
)

// TestCompiledCMatchesInterpreter closes the verification loop: the
// generated C is compiled with the system compiler, linked against a
// generated driver whose transition hooks count firings and whose
// read_<place>() predicates replay a pre-recorded decision stream, and the
// binary's firing counts are compared against the Go interpreter driven by
// the same decisions. The *actual machine code* must behave like the net.
func TestCompiledCMatchesInterpreter(t *testing.T) {
	cc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler in PATH")
	}
	for _, tc := range []struct {
		name   string
		net    *petri.Net
		events int
	}{
		{"figure4", figures.Figure4(), 12},
		{"figure5", figures.Figure5(), 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctest.RunCompiledComparison(t, cc, tc.net, tc.events)
		})
	}
}

package codegen

import (
	"fmt"
	"strings"

	"fcpn/internal/petri"
)

// FormatIR renders the program's intermediate tree in a compact
// pseudo-assembly form, one statement per line — the debugging view of
// what Generate produced before the C backend prettifies it.
//
//	task task_t1 (source t1):
//	  fire t1
//	  choice p1:
//	  | alt t2:
//	  |   fire t2
//	  |   inc p2 +1
//	  |   if p2>=2:
//	  |     fire t4
//	  |     dec p2 -2
//	  ...
func FormatIR(prog *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s: %d task(s), %d shared helper(s)\n",
		prog.Net.Name(), len(prog.Tasks), len(prog.Helpers))
	for _, h := range prog.Helpers {
		fmt.Fprintf(&b, "helper %s:\n", h.Name)
		writeIR(&b, prog.Net, h.Body, 1)
	}
	for _, tc := range prog.Tasks {
		if len(tc.Bodies) == 0 {
			fmt.Fprintf(&b, "task %s (autonomous):\n", tc.Task.Name)
			writeIR(&b, prog.Net, tc.Residual, 1)
			continue
		}
		for _, body := range tc.Bodies {
			fmt.Fprintf(&b, "task %s (source %s):\n", tc.Task.Name,
				prog.Net.TransitionName(body.Source))
			writeIR(&b, prog.Net, body.Body, 1)
			if len(tc.Residual) > 0 {
				fmt.Fprintf(&b, "  residual:\n")
				writeIR(&b, prog.Net, tc.Residual, 2)
			}
		}
	}
	return b.String()
}

func writeIR(b *strings.Builder, n *petri.Net, nodes []Node, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, node := range nodes {
		switch x := node.(type) {
		case FireNode:
			fmt.Fprintf(b, "%sfire %s\n", ind, n.TransitionName(x.T))
		case IncNode:
			fmt.Fprintf(b, "%sinc %s +%d\n", ind, n.PlaceName(x.P), x.By)
		case DecNode:
			fmt.Fprintf(b, "%sdec %s -%d\n", ind, n.PlaceName(x.P), x.By)
		case CallNode:
			fmt.Fprintf(b, "%scall %s\n", ind, x.Name)
		case GuardNode:
			kw := "if"
			if x.Loop {
				kw = "while"
			}
			var conds []string
			for _, c := range x.Conds {
				conds = append(conds, fmt.Sprintf("%s>=%d", n.PlaceName(c.P), c.W))
			}
			fmt.Fprintf(b, "%s%s %s:\n", ind, kw, strings.Join(conds, " && "))
			writeIR(b, n, x.Body, depth+1)
		case ChoiceNode:
			fmt.Fprintf(b, "%schoice %s:\n", ind, n.PlaceName(x.P))
			for _, br := range x.Branches {
				fmt.Fprintf(b, "%s| alt %s:\n", ind, n.TransitionName(br.T))
				writeIR(b, n, br.Body, depth+1)
			}
		}
	}
}

// Package codegen synthesises software from a valid quasi-static schedule
// (Section 4 of the paper). The same intermediate tree is lowered two ways:
//
//   - to C source (cgen.go), following the paper's Schedule/Task algorithm:
//     an if-then-else per free choice, counting variables with if-guards
//     when the consumer fires less often than the producer and while-loops
//     when it fires more often, and one task function per independent-rate
//     input invoked by the RTOS;
//   - to an executable form interpreted by interp.go, used by the
//     simulator (internal/sim) and by the equivalence property tests.
//
// GenerateModular produces the paper's comparison baseline ("functional
// task partitioning"): one task per functional module with counter-based
// firing, communicating through inter-module queues.
package codegen

import (
	"fmt"
	"sort"

	"fcpn/internal/core"
	"fcpn/internal/petri"
)

// Node is one statement of the generated task body.
type Node interface{ node() }

// FireNode executes the computation of one transition.
type FireNode struct {
	T petri.Transition
}

// IncNode adds By tokens to the counter of place P.
type IncNode struct {
	P  petri.Place
	By int
}

// DecNode removes By tokens from the counter of place P.
type DecNode struct {
	P  petri.Place
	By int
}

// Cond is one conjunct of a guard: counter(P) >= W.
type Cond struct {
	P petri.Place
	W int
}

// GuardNode is an if (Loop=false) or while (Loop=true) over a conjunction
// of counter conditions.
type GuardNode struct {
	Conds []Cond
	Loop  bool
	Body  []Node
}

// Branch is one alternative of a free choice: transition T's code.
type Branch struct {
	T    petri.Transition
	Body []Node
}

// ChoiceNode dispatches on the value of the control token in place P
// (if-then-else in the generated C). Consuming the token is implicit in
// taking a branch.
type ChoiceNode struct {
	P        petri.Place
	Branches []Branch
}

// CallNode invokes a shared drain helper: the translation of the paper's
// label/goto sharing of merge-place code (we emit a static helper function
// instead of a goto, with the same effect on code size).
type CallNode struct {
	Name   string
	Helper *Helper
}

func (FireNode) node()   {}
func (IncNode) node()    {}
func (DecNode) node()    {}
func (GuardNode) node()  {}
func (ChoiceNode) node() {}
func (CallNode) node()   {}

// Helper is one shared drain block, emitted once per program.
type Helper struct {
	Name string
	Body []Node
	// covers lists the transitions fired inside the body, so tasks calling
	// the helper know those transitions are handled.
	covers []petri.Transition
}

// collectFired walks a node list and gathers every transition fired in it
// (including nested guards, choices and called helpers).
func collectFired(nodes []Node, into map[petri.Transition]bool) {
	for _, node := range nodes {
		switch x := node.(type) {
		case FireNode:
			into[x.T] = true
		case GuardNode:
			collectFired(x.Body, into)
		case CallNode:
			if x.Helper != nil {
				collectFired(x.Helper.Body, into)
			}
		case ChoiceNode:
			for _, br := range x.Branches {
				collectFired(br.Body, into)
			}
		}
	}
}

// SourceBody is the statement list run when one source event arrives.
type SourceBody struct {
	Source petri.Transition
	Body   []Node
}

// TaskCode is the generated code of one task.
type TaskCode struct {
	Task core.Task
	// Bodies holds one entry point per source of the task.
	Bodies []SourceBody
	// Residual drains transitions not reachable from any source by the
	// structured traversal (autonomous loops); appended after each body.
	Residual []Node
}

// Program is a complete generated implementation.
type Program struct {
	Net       *petri.Net
	Partition *core.TaskPartition
	Tasks     []*TaskCode
	// HasCounter marks the places compiled to a counter variable; others
	// are transient within one pass.
	HasCounter []bool
	// Helpers are the shared merge-drain blocks referenced by CallNodes —
	// the code the paper shares across branches and tasks via labels and
	// gotos — in creation order.
	Helpers []*Helper
	// helperOf maps a consumer transition to its shared drain helper.
	helperOf map[petri.Transition]*Helper
}

// Generate lowers a schedule and its task partition into a Program.
func Generate(sched *core.Schedule, partition *core.TaskPartition) (*Program, error) {
	n := sched.Net
	prog := &Program{
		Net:        n,
		Partition:  partition,
		HasCounter: make([]bool, n.NumPlaces()),
		helperOf:   map[petri.Transition]*Helper{},
	}
	for _, task := range partition.Tasks {
		tc, err := prog.generateTask(task)
		if err != nil {
			return nil, err
		}
		prog.Tasks = append(prog.Tasks, tc)
	}
	return prog, nil
}

// guardKind classifies how a consumer is sequenced after production into
// its input place.
type guardKind int

const (
	guardPlain guardKind = iota // fire immediately, no counter
	guardIf                     // accumulate, fire when enough
	guardWhile                  // fire repeatedly while enough
)

// classify decides the guard for consumer tc of place p, per the paper's
// f-ratio rule expressed structurally: consumers that can fire several
// times per production get a while, consumers that need several
// productions get an if, 1:1 single-producer chains need no counter.
func (prog *Program) classify(p petri.Place, tc petri.Transition) guardKind {
	n := prog.Net
	wCons := n.Weight(p, tc)
	producers := n.Producers(p)
	if len(n.Pre(tc)) > 1 {
		return guardWhile // synchronisation: all inputs counted
	}
	if len(producers) != 1 {
		return guardWhile // merged place: tokens arrive from several paths
	}
	wProd := producers[0].Weight
	switch {
	case wProd > wCons:
		return guardWhile
	case wProd < wCons:
		return guardIf
	default:
		return guardPlain
	}
}

// genCtx carries the per-task state of the structured emitter.
type genCtx struct {
	task    core.Task
	tc      *TaskCode
	stack   map[petri.Transition]bool
	emitted map[petri.Transition]bool
}

func (prog *Program) generateTask(task core.Task) (*TaskCode, error) {
	tc := &TaskCode{Task: task}
	ctx := &genCtx{
		task:    task,
		tc:      tc,
		emitted: map[petri.Transition]bool{},
	}
	for _, src := range task.Sources {
		ctx.stack = map[petri.Transition]bool{}
		body, err := prog.emitTransition(ctx, src)
		if err != nil {
			return nil, err
		}
		tc.Bodies = append(tc.Bodies, SourceBody{Source: src, Body: body})
	}
	emitted := ctx.emitted
	// Residual pass: counter-based draining blocks for task transitions
	// the structured traversal did not reach (none for source-driven
	// free-choice pipelines; autonomous loops land here).
	for _, t := range task.Transitions {
		if emitted[t] || isSource(prog.Net, t) {
			continue
		}
		tc.Residual = append(tc.Residual, prog.residualBlock(t))
		emitted[t] = true
	}
	if len(task.Sources) == 0 && len(tc.Residual) == 0 {
		return nil, fmt.Errorf("codegen: task %s has no entry points", task.Name)
	}
	return tc, nil
}

func isSource(n *petri.Net, t petri.Transition) bool { return len(n.Pre(t)) == 0 }

// residualBlock emits `while (inputs ready) { dec inputs; fire; inc outputs }`.
func (prog *Program) residualBlock(t petri.Transition) Node {
	n := prog.Net
	var conds []Cond
	var body []Node
	for _, a := range n.Pre(t) {
		prog.HasCounter[a.Place] = true
		conds = append(conds, Cond{a.Place, a.Weight})
	}
	body = append(body, FireNode{t})
	for _, a := range n.Pre(t) {
		body = append(body, DecNode{a.Place, a.Weight})
	}
	for _, a := range n.Post(t) {
		prog.HasCounter[a.Place] = true
		body = append(body, IncNode{a.Place, a.Weight})
	}
	return GuardNode{Conds: conds, Loop: true, Body: body}
}

// emitTransition emits the firing of t followed by the propagation of its
// produced tokens.
func (prog *Program) emitTransition(ctx *genCtx, t petri.Transition) ([]Node, error) {
	if ctx.stack[t] {
		return nil, fmt.Errorf("codegen: transition %s re-entered within one pass; net has an in-task cycle (use residual mode)",
			prog.Net.TransitionName(t))
	}
	ctx.stack[t] = true
	defer delete(ctx.stack, t)
	ctx.emitted[t] = true
	nodes := []Node{FireNode{T: t}}

	// Output places sharing one single consumer are handled as a group,
	// so a transition producing into both inputs of a synchronising
	// consumer emits the Incs together followed by one guard instead of
	// duplicating the consumer's body per place.
	handled := map[petri.Transition]bool{}
	for _, out := range prog.Net.Post(t) {
		consumers := prog.Net.Consumers(out.Place)
		if len(consumers) == 1 {
			tc := consumers[0].Transition
			if !ctx.stack[tc] && ctx.task.Contains(tc) {
				if handled[tc] {
					continue
				}
				handled[tc] = true
				var arcs []petri.ArcRef
				for _, o := range prog.Net.Post(t) {
					c := prog.Net.Consumers(o.Place)
					if len(c) == 1 && c[0].Transition == tc {
						arcs = append(arcs, o)
					}
				}
				prop, err := prog.emitConsumerGroup(ctx, tc, arcs)
				if err != nil {
					return nil, err
				}
				nodes = append(nodes, prop...)
				continue
			}
		}
		prop, err := prog.emitPlace(ctx, out.Place, out.Weight)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, prop...)
	}
	return nodes, nil
}

// emitConsumerGroup emits the propagation of tokens produced into one or
// more places all consumed by the same transition tc (already known to be
// in the task and not on the emission stack). When a produced place is a
// merge place (several producers), the consumer's drain block is shared
// through a helper — the equivalent of the paper's label/goto sharing of
// merge code — so each additional production site costs one call, not a
// duplicated body.
func (prog *Program) emitConsumerGroup(ctx *genCtx, tc petri.Transition, produced []petri.ArcRef) ([]Node, error) {
	n := prog.Net
	// Single produced place with a plain 1:1 single-input consumer keeps
	// the unguarded straight-line form.
	if len(produced) == 1 && prog.classify(produced[0].Place, tc) == guardPlain {
		return prog.emitTransition(ctx, tc)
	}
	var nodes []Node
	for _, a := range produced {
		prog.HasCounter[a.Place] = true
		nodes = append(nodes, IncNode{a.Place, a.Weight})
	}
	share := false
	for _, a := range produced {
		if len(n.Producers(a.Place)) > 1 {
			share = true
		}
	}
	if share {
		// Helpers are program-global: a merge place fed by several tasks
		// yields one drain block that every producing task calls — the
		// paper's "code patterns shared by different tasks".
		if h := prog.helperOf[tc]; h != nil {
			for _, t := range h.covers {
				ctx.emitted[t] = true
			}
			return append(nodes, CallNode{Name: h.Name, Helper: h}), nil
		}
		h := &Helper{Name: "drain_" + n.TransitionName(tc)}
		prog.helperOf[tc] = h
		prog.Helpers = append(prog.Helpers, h)
		guard, err := prog.consumerGuard(ctx, tc, true)
		if err != nil {
			return nil, err
		}
		h.Body = []Node{guard}
		fired := map[petri.Transition]bool{}
		collectFired(h.Body, fired)
		for t := range fired {
			h.covers = append(h.covers, t)
		}
		return append(nodes, CallNode{Name: h.Name, Helper: h}), nil
	}
	kind := guardIf
	for _, a := range produced {
		if prog.classify(a.Place, tc) == guardWhile {
			kind = guardWhile
		}
	}
	guard, err := prog.consumerGuard(ctx, tc, kind == guardWhile)
	if err != nil {
		return nil, err
	}
	return append(nodes, guard), nil
}

// consumerGuard builds the guarded firing block of tc: test every input,
// fire, decrement, propagate. The body fires first and then decrements,
// matching the paper's listing (`t4; count(p2)-=2;`).
func (prog *Program) consumerGuard(ctx *genCtx, tc petri.Transition, loop bool) (Node, error) {
	n := prog.Net
	var conds []Cond
	for _, in := range n.Pre(tc) {
		prog.HasCounter[in.Place] = true
		conds = append(conds, Cond{in.Place, in.Weight})
	}
	fire, err := prog.emitTransition(ctx, tc)
	if err != nil {
		return nil, err
	}
	body := []Node{fire[0]}
	for _, in := range n.Pre(tc) {
		body = append(body, DecNode{in.Place, in.Weight})
	}
	body = append(body, fire[1:]...)
	return GuardNode{Conds: conds, Loop: loop, Body: body}, nil
}

// emitPlace emits the code consuming wProduced fresh tokens in place p.
func (prog *Program) emitPlace(ctx *genCtx, p petri.Place, wProduced int) ([]Node, error) {
	n := prog.Net
	consumers := n.Consumers(p)
	switch {
	case len(consumers) == 0:
		// Sink place: tokens leave the system (environment output).
		return nil, nil

	case len(consumers) > 1:
		// Free choice: dispatch on the control token value.
		choice := ChoiceNode{P: p}
		for _, ta := range consumers {
			body, err := prog.emitTransition(ctx, ta.Transition)
			if err != nil {
				return nil, err
			}
			choice.Branches = append(choice.Branches, Branch{T: ta.Transition, Body: body})
		}
		if wProduced == 1 && len(n.Producers(p)) == 1 {
			// One control token per pass: no counter needed.
			return []Node{choice}, nil
		}
		// Several control tokens may be pending: count them and loop.
		prog.HasCounter[p] = true
		return []Node{
			IncNode{p, wProduced},
			GuardNode{
				Conds: []Cond{{p, 1}},
				Loop:  true,
				Body:  []Node{DecNode{p, 1}, choice},
			},
		}, nil

	default:
		// Reached only when the single consumer cannot run inline: it is
		// an ancestor on the emission stack (a state loop) or belongs to
		// another task. Record the tokens; the consumer's own guard (or
		// the other task) drains them.
		prog.HasCounter[p] = true
		return []Node{IncNode{p, wProduced}}, nil
	}
}

// CounterPlaces lists the places compiled to counter variables, sorted.
func (prog *Program) CounterPlaces() []petri.Place {
	var out []petri.Place
	for p, ok := range prog.HasCounter {
		if ok {
			out = append(out, petri.Place(p))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TaskBySource maps a source transition to the index of the task it
// activates, or -1.
func (prog *Program) TaskBySource(src petri.Transition) int {
	for i, tc := range prog.Tasks {
		for _, b := range tc.Bodies {
			if b.Source == src {
				return i
			}
		}
	}
	return -1
}

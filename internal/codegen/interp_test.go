package codegen

import (
	"strings"
	"testing"
	"testing/quick"

	"fcpn/internal/core"
	"fcpn/internal/figures"
	"fcpn/internal/petri"
)

// fixedResolver always picks the same branch index.
func fixedResolver(idx int) ChoiceResolver {
	return func(petri.Place, []petri.Transition) int { return idx }
}

// lcgResolver derives pseudo-random picks from a seed, deterministically.
func lcgResolver(seed uint64) ChoiceResolver {
	state := seed*6364136223846793005 + 1442695040888963407
	return func(_ petri.Place, alts []petri.Transition) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(len(alts)))
	}
}

func TestInterpFigure4BranchA(t *testing.T) {
	prog := generate(t, figures.Figure4())
	n := prog.Net
	t1, _ := n.TransitionByName("t1")
	in := NewInterp(prog, fixedResolver(0)) // always t2
	// Two passes: t4 fires on the second (needs two tokens in p2).
	for i := 0; i < 2; i++ {
		if err := in.RunSource(t1); err != nil {
			t.Fatal(err)
		}
	}
	t2i, _ := n.TransitionByName("t2")
	t4i, _ := n.TransitionByName("t4")
	if in.Stats.Fired[t2i] != 2 || in.Stats.Fired[t4i] != 1 {
		t.Fatalf("fired = %v", in.Stats.Fired)
	}
	if err := in.StateEquationCheck(); err != nil {
		t.Fatal(err)
	}
	p2, _ := n.PlaceByName("p2")
	if in.Counters[p2] != 0 {
		t.Fatalf("p2 counter = %d after t4 consumed", in.Counters[p2])
	}
}

func TestInterpFigure4BranchB(t *testing.T) {
	prog := generate(t, figures.Figure4())
	n := prog.Net
	t1, _ := n.TransitionByName("t1")
	in := NewInterp(prog, fixedResolver(1)) // always t3
	if err := in.RunSource(t1); err != nil {
		t.Fatal(err)
	}
	t5i, _ := n.TransitionByName("t5")
	if in.Stats.Fired[t5i] != 2 {
		t.Fatalf("t5 fired %d times, want 2 (t3 produces two tokens)", in.Stats.Fired[t5i])
	}
	if err := in.StateEquationCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestInterpFigure5SharedT6(t *testing.T) {
	prog := generate(t, figures.Figure5())
	n := prog.Net
	t1, _ := n.TransitionByName("t1")
	t8, _ := n.TransitionByName("t8")
	t6, _ := n.TransitionByName("t6")
	in := NewInterp(prog, fixedResolver(0)) // choice → t2 branch
	if err := in.RunSource(t1); err != nil {
		t.Fatal(err)
	}
	if in.Stats.Fired[t6] != 4 {
		t.Fatalf("after t1 event: t6 fired %d, want 4", in.Stats.Fired[t6])
	}
	if err := in.RunSource(t8); err != nil {
		t.Fatal(err)
	}
	if in.Stats.Fired[t6] != 5 {
		t.Fatalf("after t8 event: t6 fired %d, want 5 (paper's cycle fires t6 five times)", in.Stats.Fired[t6])
	}
	if err := in.StateEquationCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestInterpUnknownSource(t *testing.T) {
	prog := generate(t, figures.Figure4())
	in := NewInterp(prog, fixedResolver(0))
	if err := in.RunSource(petri.Transition(1)); err == nil {
		t.Fatal("non-source must be rejected")
	}
}

func TestRunTaskBounds(t *testing.T) {
	prog := generate(t, figures.Figure4())
	in := NewInterp(prog, fixedResolver(0))
	if _, err := in.RunTask(99); err == nil {
		t.Fatal("task index out of range accepted")
	}
	fired, err := in.RunTask(0)
	if err != nil || fired {
		t.Fatalf("empty residual must fire nothing: %v %v", fired, err)
	}
}

// TestInterpEquivalenceProperty drives the generated code with random
// choice outcomes and checks, after every event, that the code's counters
// satisfy the net's state equation and never go negative — the functional
// equivalence of the synthesised software and the FCPN (Section 4).
func TestInterpEquivalenceProperty(t *testing.T) {
	nets := []*petri.Net{figures.Figure3a(), figures.Figure4(), figures.Figure5()}
	progs := make([]*Program, len(nets))
	for i, n := range nets {
		progs[i] = generate(t, n)
	}
	f := func(seed uint64, eventsRaw uint8) bool {
		events := int(eventsRaw%40) + 1
		for _, prog := range progs {
			in := NewInterp(prog, lcgResolver(seed))
			sources := prog.Net.SourceTransitions()
			state := seed
			for e := 0; e < events; e++ {
				state = state*2862933555777941757 + 3037000493
				src := sources[int((state>>33)%uint64(len(sources)))]
				if err := in.RunSource(src); err != nil {
					t.Logf("net %s: %v", prog.Net.Name(), err)
					return false
				}
				if err := in.StateEquationCheck(); err != nil {
					t.Logf("net %s: %v", prog.Net.Name(), err)
					return false
				}
			}
			// Bounded memory: counters cannot exceed the static bound of
			// the largest arc weight times two for these nets.
			if in.Stats.MaxCounter > 4 {
				t.Logf("net %s: counter reached %d", prog.Net.Name(), in.Stats.MaxCounter)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestModularEquivalenceProperty checks the modular baseline against the
// same state-equation oracle, with the RTOS-style drain loop: after a
// source event, keep invoking tasks until quiescence.
func TestModularEquivalenceProperty(t *testing.T) {
	n := figures.Figure4()
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	t4, _ := n.TransitionByName("t4")
	t5, _ := n.TransitionByName("t5")
	prog, err := GenerateModular(n, []Module{
		{Name: "input", Transitions: []petri.Transition{t1}},
		{Name: "branch", Transitions: []petri.Transition{t2, t3}},
		{Name: "drain", Transitions: []petri.Transition{t4, t5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, eventsRaw uint8) bool {
		events := int(eventsRaw%30) + 1
		in := NewInterp(prog, lcgResolver(seed))
		for e := 0; e < events; e++ {
			if err := in.RunSource(t1); err != nil {
				return false
			}
			// Drain: run module tasks until no progress (the dynamic
			// scheduler's job in the baseline implementation).
			for {
				progress := false
				for ti := range prog.Tasks {
					fired, err := in.RunTask(ti)
					if err != nil {
						return false
					}
					progress = progress || fired
				}
				if !progress {
					break
				}
			}
			if err := in.StateEquationCheck(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRunawayGuard(t *testing.T) {
	// Hand-built pathological program: while (n >= 0) {} on a counter
	// place — not producible by the generator, but the interpreter must
	// bail out rather than hang.
	b := petri.NewBuilder("x")
	p := b.MarkedPlace("p", 1)
	tr := b.Transition("t")
	b.Arc(p, tr)
	n := b.Build()
	prog := &Program{Net: n, HasCounter: []bool{true}}
	prog.Tasks = []*TaskCode{{
		Task: core.Task{Name: "task_bad"},
		Residual: []Node{GuardNode{
			Conds: []Cond{{0, 1}},
			Loop:  true,
			Body:  []Node{IncNode{0, 1}, DecNode{0, 1}},
		}},
	}}
	in := NewInterp(prog, fixedResolver(0))
	in.MaxLoop = 100
	if _, err := in.RunTask(0); err == nil {
		t.Fatal("runaway loop must be detected")
	}
}

func TestTrace(t *testing.T) {
	prog := generate(t, figures.Figure4())
	n := prog.Net
	t1, _ := n.TransitionByName("t1")
	in := NewInterp(prog, fixedResolver(1)) // t3 branch: t3 then t5 twice
	in.StartTrace()
	if err := in.RunSource(t1); err != nil {
		t.Fatal(err)
	}
	tail := in.TraceTail()
	if len(tail) == 0 {
		t.Fatal("no trace recorded")
	}
	var rendered []string
	for _, e := range tail {
		rendered = append(rendered, e.String(n))
	}
	joined := strings.Join(rendered, "; ")
	for _, frag := range []string{"fire t1", "fire t3", "inc p3 +2", "fire t5", "dec p3 -1"} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("trace missing %q: %s", frag, joined)
		}
	}
	// The ring keeps only the most recent steps.
	for i := 0; i < 200; i++ {
		if err := in.RunSource(t1); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(in.TraceTail()); got != traceCap {
		t.Fatalf("trace length = %d, want cap %d", got, traceCap)
	}
	// Tracing off by default.
	in2 := NewInterp(prog, fixedResolver(0))
	if err := in2.RunSource(t1); err != nil {
		t.Fatal(err)
	}
	if len(in2.TraceTail()) != 0 {
		t.Fatal("trace recorded without StartTrace")
	}
}

package codegen

import (
	"errors"
	"fmt"

	"fcpn/internal/core"
	"fcpn/internal/petri"
)

// ChoiceResolver supplies the run-time value of a control token: it
// returns the index (into alternatives) of the transition the data selects.
// In the real system this is the generated `read_p()` predicate. The
// alternatives slice is only valid for the duration of the call — the
// interpreter reuses its backing array across choices.
type ChoiceResolver func(p petri.Place, alternatives []petri.Transition) int

// ExecStats accumulates observable behaviour of an interpreted program.
type ExecStats struct {
	// Fired[t] counts firings of transition t.
	Fired []int
	// Ops counts interpreter steps (fires + counter updates + guard
	// evaluations): a machine-independent execution-cost proxy.
	Ops int
	// MaxCounter is the largest value any place counter reached.
	MaxCounter int
	// MaxCounters[p] is the peak value of place p's counter over the run
	// (starting from the initial marking): the per-place memory bound
	// actually exercised, checked against static buffer bounds by the
	// robustness layer.
	MaxCounters []int
}

// ErrRunaway is returned when a guard loop exceeds the iteration cap: the
// generated code would not terminate (which a correct QSS program never
// does).
var ErrRunaway = errors.New("codegen: guard loop exceeded iteration cap")

// ErrBudgetExceeded is re-exported from core: the typed cause behind every
// structured step budget. Interp.MaxOps failures wrap it.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// Interp executes generated task code against counter state.
type Interp struct {
	Prog     *Program
	Counters []int
	Stats    ExecStats
	Resolve  ChoiceResolver
	// OnFire, when set, observes every transition execution (used by
	// behavioural models to update their state).
	OnFire func(t petri.Transition)
	// MaxLoop caps iterations of a single while guard (default 1 << 20).
	MaxLoop int
	// MaxOps, when positive, bounds the total interpreter steps of the
	// run; exceeding it returns an error wrapping ErrBudgetExceeded. This
	// is the execution-side analogue of core.Options.MaxCycleLength: a
	// hostile workload or a wrong schedule terminates instead of running
	// away.
	MaxOps int

	// Step tracing (see StartTrace / TraceTail).
	tracing    bool
	trace      []TraceEntry
	traceStart int

	// alts is the scratch alternatives slice handed to Resolve; choices
	// fire on every simulated cycle, so it is reused rather than
	// reallocated per ChoiceNode. Safe across the recursive exec: the
	// slice is dead before the chosen branch's body runs.
	alts []petri.Transition
}

// NewInterp prepares an interpreter with counters initialised from the
// net's initial marking.
func NewInterp(prog *Program, resolve ChoiceResolver) *Interp {
	in := &Interp{
		Prog:     prog,
		Counters: prog.Net.InitialMarking(),
		Resolve:  resolve,
		MaxLoop:  1 << 20,
	}
	in.Stats.Fired = make([]int, prog.Net.NumTransitions())
	in.Stats.MaxCounters = append([]int(nil), in.Counters...)
	return in
}

// RunSource executes the task body activated by one occurrence of the
// given source event, including the task's residual drains.
func (in *Interp) RunSource(src petri.Transition) error {
	ti := in.Prog.TaskBySource(src)
	if ti < 0 {
		return fmt.Errorf("codegen: no task handles source %s", in.Prog.Net.TransitionName(src))
	}
	tc := in.Prog.Tasks[ti]
	for _, body := range tc.Bodies {
		if body.Source != src {
			continue
		}
		if err := in.exec(body.Body); err != nil {
			return err
		}
		return in.exec(tc.Residual)
	}
	return fmt.Errorf("codegen: task %s has no body for %s", tc.Task.Name, in.Prog.Net.TransitionName(src))
}

// RunTask executes a task's residual blocks (used for autonomous tasks and
// for modular tasks activated by pending queue contents). It reports
// whether any transition fired.
func (in *Interp) RunTask(taskIdx int) (bool, error) {
	if taskIdx < 0 || taskIdx >= len(in.Prog.Tasks) {
		return false, fmt.Errorf("codegen: task index %d out of range", taskIdx)
	}
	before := in.totalFired()
	if err := in.exec(in.Prog.Tasks[taskIdx].Residual); err != nil {
		return false, err
	}
	return in.totalFired() > before, nil
}

func (in *Interp) totalFired() int {
	sum := 0
	for _, c := range in.Stats.Fired {
		sum += c
	}
	return sum
}

func (in *Interp) exec(nodes []Node) error {
	for _, node := range nodes {
		if in.MaxOps > 0 && in.Stats.Ops >= in.MaxOps {
			return fmt.Errorf("codegen: %w after %d interpreter ops", ErrBudgetExceeded, in.Stats.Ops)
		}
		switch x := node.(type) {
		case FireNode:
			in.Stats.Fired[x.T]++
			in.Stats.Ops++
			in.record(TraceEntry{Op: "fire", Transition: x.T})
			if in.OnFire != nil {
				in.OnFire(x.T)
			}
		case IncNode:
			in.Counters[x.P] += x.By
			if in.Counters[x.P] > in.Stats.MaxCounter {
				in.Stats.MaxCounter = in.Counters[x.P]
			}
			if in.Counters[x.P] > in.Stats.MaxCounters[x.P] {
				in.Stats.MaxCounters[x.P] = in.Counters[x.P]
			}
			in.Stats.Ops++
			in.record(TraceEntry{Op: "inc", Place: x.P, By: x.By})
		case DecNode:
			in.Counters[x.P] -= x.By
			in.record(TraceEntry{Op: "dec", Place: x.P, By: x.By})
			if in.Counters[x.P] < 0 {
				return fmt.Errorf("codegen: counter of place %s went negative",
					in.Prog.Net.PlaceName(x.P))
			}
			in.Stats.Ops++
		case GuardNode:
			if !x.Loop {
				in.Stats.Ops++
				if in.holds(x.Conds) {
					if err := in.exec(x.Body); err != nil {
						return err
					}
				}
				continue
			}
			maxLoop := in.MaxLoop
			if maxLoop <= 0 {
				maxLoop = 1 << 20
			}
			for iter := 0; ; iter++ {
				in.Stats.Ops++
				if !in.holds(x.Conds) {
					break
				}
				if iter >= maxLoop {
					return fmt.Errorf("%w (place guard %v)", ErrRunaway, x.Conds)
				}
				if err := in.exec(x.Body); err != nil {
					return err
				}
				if in.staticallyNoOp(x.Body) {
					// An empty body can never release the guard.
					break
				}
			}
		case CallNode:
			in.Stats.Ops++
			if x.Helper == nil {
				return fmt.Errorf("codegen: call to unresolved helper %s", x.Name)
			}
			if err := in.exec(x.Helper.Body); err != nil {
				return err
			}
		case ChoiceNode:
			in.alts = in.alts[:0]
			for _, br := range x.Branches {
				in.alts = append(in.alts, br.T)
			}
			in.Stats.Ops++
			pick := in.Resolve(x.P, in.alts)
			if pick < 0 || pick >= len(x.Branches) {
				// Resolution selects a transition outside this node's
				// branches (modular single-branch test): skip.
				continue
			}
			if err := in.exec(x.Branches[pick].Body); err != nil {
				return err
			}
		}
	}
	return nil
}

// staticallyNoOp reports whether the body contains no counter updates or
// fires on any path; such a loop body can never release its guard.
func (in *Interp) staticallyNoOp(body []Node) bool {
	for _, node := range body {
		switch x := node.(type) {
		case FireNode, IncNode, DecNode:
			return false
		case GuardNode:
			if !in.staticallyNoOp(x.Body) {
				return false
			}
		case CallNode:
			if x.Helper != nil && !in.staticallyNoOp(x.Helper.Body) {
				return false
			}
		case ChoiceNode:
			for _, br := range x.Branches {
				if !in.staticallyNoOp(br.Body) {
					return false
				}
			}
		}
	}
	return true
}

func (in *Interp) holds(conds []Cond) bool {
	for _, c := range conds {
		if in.Counters[c.P] < c.W {
			return false
		}
	}
	return true
}

// StateEquationCheck verifies the fundamental equivalence between the
// generated code and the net: for every place, the tracked counter (or 0
// for transient places) must equal μ0(p) + Σ_t Fired[t]·D[t][p]. A mismatch
// means the code fired transitions in an order the net does not allow.
func (in *Interp) StateEquationCheck() error {
	n := in.Prog.Net
	init := n.InitialMarking()
	expect := n.ApplyFiringVector(init, in.Stats.Fired)
	for p := 0; p < n.NumPlaces(); p++ {
		got := in.Counters[p]
		if expect[p] < 0 {
			return fmt.Errorf("codegen: state equation negative at place %s: %d",
				n.PlaceName(petri.Place(p)), expect[p])
		}
		if in.Prog.HasCounter[p] {
			if got != expect[p] {
				return fmt.Errorf("codegen: counter of %s is %d, state equation says %d",
					n.PlaceName(petri.Place(p)), got, expect[p])
			}
		} else if expect[p] != init[p] {
			// A transient (uncounted) place is fully drained within each
			// pass, so between passes it must hold exactly its initial
			// tokens (the generated code never touches those).
			return fmt.Errorf("codegen: transient place %s holds %d tokens between passes, want %d",
				n.PlaceName(petri.Place(p)), expect[p], init[p])
		}
	}
	return nil
}

// TraceEntry is one recorded interpreter step (fires and counter updates).
type TraceEntry struct {
	// Op is "fire", "inc" or "dec".
	Op string
	// Transition is set for fire entries, Place and By for inc/dec.
	Transition petri.Transition
	Place      petri.Place
	By         int
}

// String renders the entry against the program's net.
func (e TraceEntry) String(n *petri.Net) string {
	switch e.Op {
	case "fire":
		return "fire " + n.TransitionName(e.Transition)
	case "inc":
		return fmt.Sprintf("inc %s +%d", n.PlaceName(e.Place), e.By)
	default:
		return fmt.Sprintf("dec %s -%d", n.PlaceName(e.Place), e.By)
	}
}

// traceCap bounds the retained trace (a ring of the most recent steps).
const traceCap = 256

// StartTrace enables step recording; the most recent traceCap steps are
// retained. Useful when diagnosing a state-equation failure.
func (in *Interp) StartTrace() {
	in.tracing = true
	in.trace = in.trace[:0]
}

// TraceTail returns the recorded steps, oldest first.
func (in *Interp) TraceTail() []TraceEntry {
	out := make([]TraceEntry, 0, len(in.trace))
	out = append(out, in.trace[in.traceStart:]...)
	out = append(out, in.trace[:in.traceStart]...)
	return out
}

func (in *Interp) record(e TraceEntry) {
	if !in.tracing {
		return
	}
	if len(in.trace) < traceCap {
		in.trace = append(in.trace, e)
		return
	}
	in.trace[in.traceStart] = e
	in.traceStart = (in.traceStart + 1) % traceCap
}

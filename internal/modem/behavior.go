package modem

import (
	"fcpn/internal/codegen"
	"fcpn/internal/petri"
)

// Line is the executable semantics of the modem: a synthetic telephone
// line with carrier drop-outs, an AGC/equaliser state machine, and a host
// issuing commands. It resolves the FCPN's choices from that state.
type Line struct {
	model *Model

	// Synthetic line state.
	sampleIdx  int
	carrierOn  bool
	gain       int
	eqQuality  int // 0–100; slicing succeeds while above the slip threshold
	rate       int
	cmdCounter int

	Stats LineStats
}

// LineStats counts observable outcomes.
type LineStats struct {
	Samples, IdleSamples  int
	BitsEmitted, Resyncs  int
	Commands, RateChanges int
	Resets, Queries       int
	LineEvents            int
}

// CarrierPeriod shapes the synthetic line: the carrier is present for
// CarrierOnSamples out of every CarrierPeriod samples.
const (
	CarrierPeriod    = 32
	CarrierOnSamples = 24
)

// NewLine builds the behaviour for a model.
func NewLine(m *Model) *Line {
	return &Line{model: m, gain: 50, eqQuality: 90, rate: 9600}
}

// BeginSample advances the synthetic line by one ADC sample; call before
// each Sample event.
func (l *Line) BeginSample() {
	l.sampleIdx++
	l.carrierOn = l.sampleIdx%CarrierPeriod < CarrierOnSamples
	l.Stats.Samples++
}

// BeginCmd presents the next host command; call before each Cmd event.
// Commands rotate deterministically: rate, query, reset, query, …
func (l *Line) BeginCmd() {
	l.cmdCounter++
	l.Stats.Commands++
}

// Resolver maps the model's choice places to the line state.
func (l *Line) Resolver() codegen.ChoiceResolver {
	n := l.model.Net
	return func(p petri.Place, alts []petri.Transition) int {
		pick := func(target string) int {
			for i, t := range alts {
				if n.TransitionName(t) == target {
					return i
				}
			}
			return -1
		}
		switch n.PlaceName(p) {
		case "carrier":
			if l.carrierOn {
				return pick("carrier_on")
			}
			return pick("carrier_off")
		case "sync":
			// The equaliser slips when quality decays below threshold;
			// each slip triggers a resync that restores it.
			if l.eqQuality >= 40 {
				return pick("sync_locked")
			}
			return pick("sync_slip")
		case "cmd_kind":
			switch l.cmdCounter % 4 {
			case 1:
				return pick("cmd_kind_rate")
			case 3:
				return pick("cmd_kind_reset")
			default:
				return pick("cmd_kind_query")
			}
		default:
			return 0
		}
	}
}

// OnFire updates the line state as the generated code executes.
func (l *Line) OnFire(t petri.Transition) {
	switch l.model.Net.TransitionName(t) {
	case "agc":
		// Gain adapts toward mid-scale; carrier gaps decay EQ quality.
		if l.carrierOn && l.gain < 64 {
			l.gain++
		} else if !l.carrierOn && l.gain > 32 {
			l.gain--
		}
	case "eq_tap":
		// Each tap pass slightly degrades quality until a resync.
		if l.eqQuality > 0 {
			l.eqQuality -= 3
		}
	case "emit_bit":
		l.Stats.BitsEmitted++
	case "resync":
		l.Stats.Resyncs++
		l.eqQuality = 90
	case "idle_update":
		l.Stats.IdleSamples++
	case "set_rate":
		l.Stats.RateChanges++
		if l.rate == 9600 {
			l.rate = 14400
		} else {
			l.rate = 9600
		}
	case "reset_eq":
		l.Stats.Resets++
		l.eqQuality = 90
	case "report":
		l.Stats.Queries++
	case "update_line_stats":
		l.Stats.LineEvents++
	}
}

// Rate reports the current line rate (for assertions).
func (l *Line) Rate() int { return l.rate }

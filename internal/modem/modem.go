// Package modem is the repository's second case study (an extension beyond
// the paper's ATM server): the receive path of a dial-up soft-modem, a
// data-dominated DSP algorithm with data-dependent control, specified in
// the process-network frontend (internal/spec) and synthesised through the
// complete QSS pipeline.
//
// Two independent-rate inputs drive it: Sample, the periodic ADC stream,
// and Cmd, irregular host commands. The sample path runs AGC, detects the
// carrier, equalises (a two-phase fractionally-spaced equaliser: two taps
// per symbol, the Figure-4 multirate pattern), slices symbols and tracks
// sync; the command path parses set-rate/reset/query commands. The paths
// share the line-status bookkeeping, so QSS partitions the system into
// exactly two tasks with shared code — the Figure-5 situation arising
// naturally from an application.
package modem

import (
	"fmt"

	"fcpn/internal/petri"
	"fcpn/internal/spec"
)

// Model bundles the compiled net and its handles.
type Model struct {
	Net         *petri.Net
	Sample, Cmd petri.Transition
	// ModuleOf assigns each transition to a functional block for the
	// modular baseline: DSP, FRAMER or CONTROL.
	ModuleOf map[petri.Transition]string
}

// Module names of the functional baseline.
const (
	ModDSP     = "DSP"
	ModFramer  = "FRAMER"
	ModControl = "CONTROL"
)

// EqualizerPhases is the taps-per-symbol ratio of the fractionally spaced
// equaliser (the multirate element of the sample path).
const EqualizerPhases = 2

// New builds the modem specification and compiles it to an FCPN.
func New() (*Model, error) {
	s := spec.NewSystem("modem")
	sample := s.Input("Sample")
	cmd := s.Input("Cmd")
	bits := s.Output("Bits")
	status := s.Output("Status")
	lineLog := s.Channel("lineLog") // line events from both paths

	// Sample path: AGC → carrier decision → equalise → slice → sync check.
	s.Process("rx").
		Receive(sample).
		Run("agc").
		If("carrier",
			spec.Branch{Label: "on", Body: func(p *spec.Process) {
				p.Run("demod_start").
					Repeat(EqualizerPhases, func(b *spec.Process) { b.Run("eq_tap") }).
					Run("slice").
					If("sync",
						spec.Branch{Label: "locked", Body: func(b *spec.Process) {
							b.Run("emit_bit").Send(bits).Send(lineLog)
						}},
						spec.Branch{Label: "slip", Body: func(b *spec.Process) {
							b.Run("resync").Send(lineLog)
						}},
					)
			}},
			spec.Branch{Label: "off", Body: func(p *spec.Process) {
				p.Run("idle_update")
			}},
		)

	// Command path: parse → dispatch.
	s.Process("host").
		Receive(cmd).
		Run("parse_cmd").
		If("cmd_kind",
			spec.Branch{Label: "rate", Body: func(p *spec.Process) {
				p.Run("set_rate").Send(lineLog)
			}},
			spec.Branch{Label: "reset", Body: func(p *spec.Process) {
				p.Run("reset_eq")
			}},
			spec.Branch{Label: "query", Body: func(p *spec.Process) {
				p.Run("report").Send(status)
			}},
		)

	// Shared line-status bookkeeping: consumed by whichever task produced
	// the event — the transition both tasks share (the Figure-5 t6).
	s.Process("logger").
		Receive(lineLog).
		Run("update_line_stats")

	n, err := s.Compile()
	if err != nil {
		return nil, fmt.Errorf("modem: %w", err)
	}
	m := &Model{Net: n, ModuleOf: map[petri.Transition]string{}}
	var ok bool
	if m.Sample, ok = n.TransitionByName("Sample"); !ok {
		return nil, fmt.Errorf("modem: missing Sample source")
	}
	if m.Cmd, ok = n.TransitionByName("Cmd"); !ok {
		return nil, fmt.Errorf("modem: missing Cmd source")
	}

	// Module assignment for the functional baseline: the DSP block owns
	// the numeric front end, the framer owns slicing/bit handling, the
	// control block owns the host path. Transitions synthesised by the
	// frontend (joins, continuations) follow their neighbourhood.
	for t := petri.Transition(0); int(t) < n.NumTransitions(); t++ {
		name := n.TransitionName(t)
		switch {
		case hasPrefix(name, "Cmd") || hasPrefix(name, "parse_cmd") ||
			hasPrefix(name, "cmd_kind") || hasPrefix(name, "set_rate") ||
			hasPrefix(name, "reset_eq") || hasPrefix(name, "report") ||
			hasPrefix(name, "env_Status"):
			m.ModuleOf[t] = ModControl
		case hasPrefix(name, "slice") || hasPrefix(name, "sync") ||
			hasPrefix(name, "emit_bit") || hasPrefix(name, "resync") ||
			hasPrefix(name, "env_Bits") || hasPrefix(name, "update_line_stats"):
			m.ModuleOf[t] = ModFramer
		default:
			m.ModuleOf[t] = ModDSP
		}
	}
	return m, nil
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// Modules returns the functional partition in canonical order, suitable
// for codegen.GenerateModular. Free-choice clusters are kept within one
// module by construction (each choice's alternatives share a prefix).
func (m *Model) Modules() []struct {
	Name        string
	Transitions []petri.Transition
} {
	order := []string{ModDSP, ModFramer, ModControl}
	byMod := map[string][]petri.Transition{}
	for t := petri.Transition(0); int(t) < m.Net.NumTransitions(); t++ {
		byMod[m.ModuleOf[t]] = append(byMod[m.ModuleOf[t]], t)
	}
	var out []struct {
		Name        string
		Transitions []petri.Transition
	}
	for _, name := range order {
		out = append(out, struct {
			Name        string
			Transitions []petri.Transition
		}{name, byMod[name]})
	}
	return out
}

package modem

import (
	"testing"

	"fcpn/internal/core"
	"fcpn/internal/rtos"
)

func TestModelCompiles(t *testing.T) {
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	n := m.Net
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(n.SourceTransitions()); got != 2 {
		t.Fatalf("sources = %d", got)
	}
	if got := len(n.FreeChoiceSets()); got != 3 {
		t.Fatalf("choices = %d, want 3 (carrier, sync, cmd_kind)", got)
	}
}

func TestModelSchedulesToTwoTasks(t *testing.T) {
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Solve(m.Net, core.Options{})
	if err != nil {
		t.Fatalf("modem must be schedulable: %v", err)
	}
	// Cell path outcomes: carrier off, carrier on × (locked | slip) = 3;
	// cmd path outcomes: rate | reset | query = 3 ⇒ 9 distinct reductions.
	if len(sched.Cycles) != 9 {
		t.Fatalf("cycles = %d, want 9", len(sched.Cycles))
	}
	tp, err := core.PartitionTasks(m.Net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumTasks() != 2 {
		t.Fatalf("tasks = %d, want 2 (Sample, Cmd)", tp.NumTasks())
	}
	// The shared logger transition belongs to both tasks.
	shared := tp.SharedTransitions()
	found := false
	for _, tr := range shared {
		if m.Net.TransitionName(tr) == "update_line_stats" {
			found = true
		}
	}
	if !found {
		t.Fatalf("update_line_stats must be shared, got %v", m.Net.SequenceNames(shared))
	}
}

func TestModulesCoverNet(t *testing.T) {
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, mod := range m.Modules() {
		if len(mod.Transitions) == 0 {
			t.Fatalf("module %s empty", mod.Name)
		}
		total += len(mod.Transitions)
	}
	if total != m.Net.NumTransitions() {
		t.Fatalf("modules cover %d of %d", total, m.Net.NumTransitions())
	}
}

func TestComparisonShape(t *testing.T) {
	res, err := RunComparison(DefaultWorkload(), rtos.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.QSS.Tasks != 2 || res.Functional.Tasks != 3 {
		t.Fatalf("tasks = %d vs %d", res.QSS.Tasks, res.Functional.Tasks)
	}
	if res.QSS.ClockCycles >= res.Functional.ClockCycles {
		t.Fatalf("QSS cycles %d must beat functional %d",
			res.QSS.ClockCycles, res.Functional.ClockCycles)
	}
	if res.QSS.Activations >= res.Functional.Activations {
		t.Fatal("QSS must need fewer activations")
	}
	// Behaviour sanity: the line processed samples, emitted bits, and the
	// deterministic command mix was handled.
	st := res.Stats
	if st.Samples != 200 || st.Commands != 12 {
		t.Fatalf("workload not delivered: %+v", st)
	}
	if st.BitsEmitted == 0 || st.IdleSamples == 0 || st.Resyncs == 0 {
		t.Fatalf("line behaviour degenerate: %+v", st)
	}
	if st.RateChanges == 0 || st.Queries == 0 || st.Resets == 0 {
		t.Fatalf("command mix not exercised: %+v", st)
	}
	// Line events reach the shared logger from both paths.
	if st.LineEvents != st.BitsEmitted+st.Resyncs+st.RateChanges {
		t.Fatalf("logger missed events: %d != %d+%d+%d",
			st.LineEvents, st.BitsEmitted, st.Resyncs, st.RateChanges)
	}
}

func TestBehaviourDeterminism(t *testing.T) {
	a, err := RunComparison(DefaultWorkload(), rtos.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunComparison(DefaultWorkload(), rtos.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if a.QSS.ClockCycles != b.QSS.ClockCycles || a.Stats != b.Stats {
		t.Fatal("comparison not deterministic")
	}
}

package modem

import (
	"fmt"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/rtos"
	"fcpn/internal/sim"
	"fcpn/internal/timing"
)

// ComparisonRow is one implementation's measurements.
type ComparisonRow struct {
	Name        string
	Tasks       int
	LinesOfC    int
	ClockCycles int64
	Activations int64
}

// ComparisonResult is the modem's Table-I-style experiment: QSS (2 tasks)
// versus the functional three-module baseline, driven by the same
// synthetic line.
type ComparisonResult struct {
	QSS, Functional ComparisonRow
	Stats           LineStats
	Cycles          int // finite complete cycles in the valid schedule
}

// WorkloadConfig sizes the testbench.
type WorkloadConfig struct {
	// Samples is the number of ADC samples; Cmds the number of host
	// commands interleaved with them.
	Samples, Cmds int
	// SamplePeriod and CmdMeanGap set the input rates.
	SamplePeriod, CmdMeanGap int64
	// Seed drives the command arrival jitter.
	Seed uint64
}

// DefaultWorkload is 200 samples with 12 host commands.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{Samples: 200, Cmds: 12, SamplePeriod: 5, CmdMeanGap: 80, Seed: 0x51CA}
}

// TimingSafetyResult is the modem's weakly-hard timing experiment: the
// nominal verdict under a calibrated deadline plus one overload-margin
// frontier per requested kind. Deterministic for a given (workload, seed).
type TimingSafetyResult struct {
	MK       string
	Deadline int64
	Verdict  *timing.Verdict
	Margins  []*sim.OverloadMargin `json:",omitempty"`
}

// RunTimingSafety synthesises the QSS modem and checks its deadline
// hit/miss stream against the weakly-hard (m,k) constraint, then
// binary-searches the overload margin for each requested kind. A zero
// deadline is calibrated to sim.DefaultDeadlineFactor x the fault-free
// worst response.
func RunTimingSafety(wl WorkloadConfig, cost rtos.CostModel, mk timing.Constraint, deadline int64, kinds []sim.OverloadKind, seed uint64) (*TimingSafetyResult, error) {
	if err := mk.Validate(); err != nil {
		return nil, fmt.Errorf("modem: %w", err)
	}
	m, err := New()
	if err != nil {
		return nil, err
	}
	sched, err := core.Solve(m.Net, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("modem: schedule: %w", err)
	}
	tp, err := core.PartitionTasks(m.Net, core.Options{})
	if err != nil {
		return nil, err
	}
	prog, err := codegen.Generate(sched, tp)
	if err != nil {
		return nil, err
	}
	events := rtos.Merge(
		rtos.Periodic(m.Sample, wl.SamplePeriod, 0, wl.Samples),
		rtos.Bursty(m.Cmd, wl.CmdMeanGap, wl.Cmds, wl.Seed),
	)
	// Fresh line state per run: calibration and every margin probe replay
	// the same testbench.
	hooks := func() sim.Hooks {
		l := NewLine(m)
		return sim.Hooks{
			Resolver: l.Resolver(),
			OnFire:   l.OnFire,
			BeforeEvent: func(ev rtos.Event) {
				switch ev.Source {
				case m.Sample:
					l.BeginSample()
				case m.Cmd:
					l.BeginCmd()
				}
			},
		}
	}
	if deadline == 0 {
		deadline, err = sim.CalibrateDeadline(prog, events, cost,
			sim.RobustConfig{CyclesPerTick: 1}, hooks(), sim.DefaultDeadlineFactor)
		if err != nil {
			return nil, fmt.Errorf("modem: calibrating deadline: %w", err)
		}
	}
	rm, err := sim.RunRobust(prog, events, cost,
		sim.RobustConfig{CyclesPerTick: 1, Deadline: deadline, MK: mk}, hooks())
	if err != nil {
		return nil, err
	}
	res := &TimingSafetyResult{MK: mk.String(), Deadline: deadline, Verdict: rm.Timing}
	for _, kind := range kinds {
		om, err := sim.SearchOverloadMargin(prog, events, cost, sim.MarginConfig{
			Kind:   kind,
			MK:     mk,
			Seed:   seed,
			Robust: sim.RobustConfig{CyclesPerTick: 1, Deadline: deadline},
			Hooks:  hooks,
		})
		if err != nil {
			return nil, fmt.Errorf("modem: margin %s: %w", kind, err)
		}
		res.Margins = append(res.Margins, om)
	}
	return res, nil
}

// RunComparison synthesises both implementations and drives them with the
// same workload and line behaviour.
func RunComparison(wl WorkloadConfig, cost rtos.CostModel) (*ComparisonResult, error) {
	m, err := New()
	if err != nil {
		return nil, err
	}
	sched, err := core.Solve(m.Net, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("modem: schedule: %w", err)
	}
	tp, err := core.PartitionTasks(m.Net, core.Options{})
	if err != nil {
		return nil, err
	}
	qssProg, err := codegen.Generate(sched, tp)
	if err != nil {
		return nil, err
	}
	var modules []codegen.Module
	for _, mod := range m.Modules() {
		modules = append(modules, codegen.Module{Name: mod.Name, Transitions: mod.Transitions})
	}
	funProg, err := codegen.GenerateModular(m.Net, modules)
	if err != nil {
		return nil, err
	}

	events := rtos.Merge(
		rtos.Periodic(m.Sample, wl.SamplePeriod, 0, wl.Samples),
		rtos.Bursty(m.Cmd, wl.CmdMeanGap, wl.Cmds, wl.Seed),
	)
	feeder := func(l *Line) func(rtos.Event) {
		return func(ev rtos.Event) {
			switch ev.Source {
			case m.Sample:
				l.BeginSample()
			case m.Cmd:
				l.BeginCmd()
			}
		}
	}

	qssLine := NewLine(m)
	qm, err := sim.RunQSSWithHooks(qssProg, events, cost, sim.Hooks{
		Resolver:    qssLine.Resolver(),
		OnFire:      qssLine.OnFire,
		BeforeEvent: feeder(qssLine),
	})
	if err != nil {
		return nil, err
	}
	funLine := NewLine(m)
	fm, err := sim.RunModularWithHooks(funProg, events, cost, sim.Hooks{
		Resolver:    funLine.Resolver(),
		OnFire:      funLine.OnFire,
		BeforeEvent: feeder(funLine),
	})
	if err != nil {
		return nil, err
	}

	return &ComparisonResult{
		QSS: ComparisonRow{
			Name:        "QSS",
			Tasks:       len(qssProg.Tasks),
			LinesOfC:    codegen.LineCount(codegen.EmitC(qssProg, codegen.CConfig{})),
			ClockCycles: qm.Cycles,
			Activations: qm.Activations,
		},
		Functional: ComparisonRow{
			Name:        "Functional (3 modules)",
			Tasks:       len(funProg.Tasks),
			LinesOfC:    codegen.LineCount(codegen.EmitC(funProg, codegen.CConfig{})),
			ClockCycles: fm.Cycles,
			Activations: fm.Activations,
		},
		Stats:  qssLine.Stats,
		Cycles: len(sched.Cycles),
	}, nil
}

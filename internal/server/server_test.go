package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fcpn/internal/engine"
	"fcpn/internal/figures"
	"fcpn/internal/journal"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

// newTestServer boots a service and an httptest front end; both are torn
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post submits .pn source to /v1/analyze and decodes the envelope.
func post(t *testing.T, base, src string) (int, AnalyzeResponse) {
	t.Helper()
	resp, err := http.Post(base+"/v1/analyze", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("bad envelope: %v", err)
	}
	return resp.StatusCode, env
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// permuteSource reorders a .pn net's declarations — transitions before
// places, each block reversed — without touching names or arcs. The
// parsed net is isomorphic to the original (identical canonical hash)
// but its internal place/transition indices are permuted, which is
// exactly the "same structure, different submission" case the
// content-addressed service must collapse.
func permuteSource(t *testing.T, src string) string {
	t.Helper()
	var header, places, trans, rest []string
	for _, line := range strings.Split(strings.TrimRight(src, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "net "):
			header = append(header, line)
		case strings.HasPrefix(line, "place "):
			places = append(places, line)
		case strings.HasPrefix(line, "trans "):
			trans = append(trans, line)
		default:
			rest = append(rest, line)
		}
	}
	for i, j := 0, len(places)-1; i < j; i, j = i+1, j-1 {
		places[i], places[j] = places[j], places[i]
	}
	for i, j := 0, len(trans)-1; i < j; i, j = i+1, j-1 {
		trans[i], trans[j] = trans[j], trans[i]
	}
	var out []string
	out = append(out, header...)
	out = append(out, trans...)
	out = append(out, places...)
	out = append(out, rest...)
	return strings.Join(out, "\n") + "\n"
}

func TestServiceAnalyzeLookupAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: engine.Config{Workers: 2}})
	n := figures.Figure5()
	src := petri.Format(n)

	code, cold := post(t, ts.URL, src)
	if code != http.StatusOK || cold.Status != "ok" || cold.Cache != "miss" {
		t.Fatalf("cold POST: code=%d env=%+v", code, cold)
	}
	if want := n.CanonicalHash(); cold.Hash != want {
		t.Fatalf("hash = %s, want %s", cold.Hash, want)
	}
	var rep engine.NetReport
	if err := json.Unmarshal(cold.Report, &rep); err != nil || !rep.Schedulable {
		t.Fatalf("cold report not schedulable: err=%v rep=%+v", err, rep)
	}

	code, warm := post(t, ts.URL, src)
	if code != http.StatusOK || warm.Cache != "hit" {
		t.Fatalf("warm POST: code=%d env=%+v", code, warm)
	}
	if !bytes.Equal(cold.Report, warm.Report) {
		t.Fatalf("warm report differs from cold:\n%s\nvs\n%s", warm.Report, cold.Report)
	}

	// Content-addressed lookup.
	code, body := get(t, ts.URL+"/v1/report/"+cold.Hash)
	if code != http.StatusOK {
		t.Fatalf("report lookup: %d %s", code, body)
	}
	var looked AnalyzeResponse
	if err := json.Unmarshal(body, &looked); err != nil || !bytes.Equal(looked.Report, cold.Report) {
		t.Fatalf("lookup report differs: err=%v", err)
	}
	if code, _ := get(t, ts.URL+"/v1/report/no-such-hash"); code != http.StatusNotFound {
		t.Fatalf("unknown hash: code=%d, want 404", code)
	}

	// Malformed source.
	if code, env := post(t, ts.URL, "this is not a net"); code != http.StatusBadRequest || env.Error == "" {
		t.Fatalf("bad source: code=%d env=%+v", code, env)
	}

	// Stats reflect the traffic, including engine snapshot and trace.
	code, body = get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var st StatsReport
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 1 || st.Requests.Analyze != 3 || st.Requests.AnalyzeHits != 1 ||
		st.Requests.AnalyzeMisses != 1 || st.Requests.ParseErrors != 1 ||
		st.Requests.ReportLookups != 2 || st.Requests.ReportMisses != 1 {
		t.Fatalf("request counters: %+v", st.Requests)
	}
	if st.Totals.Jobs != 1 || st.PerShard[0].Reports != 1 {
		t.Fatalf("totals/per-shard: %+v %+v", st.Totals, st.PerShard)
	}
	if st.PerShard[0].Engine.Trace == nil || len(st.PerShard[0].Engine.Trace.Phases) == 0 {
		t.Fatal("per-shard engine snapshot missing trace phase totals")
	}

	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatal("healthz not ok")
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatal("readyz not ok")
	}
}

// TestServiceIsomorphicByteIdentity is the acceptance criterion: two
// front doors, one truth. Isomorphic nets — same names, permuted
// declaration order — submitted as separate requests across a sharded
// server return byte-identical NetReport JSON modulo the cache marker,
// cold and warm, and a fresh server analysing the permuted form cold
// agrees byte-for-byte with the original server's cold run.
func TestServiceIsomorphicByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 4, Engine: engine.Config{Workers: 2}})
	twin, twinTS := newTestServer(t, Config{Shards: 4, Engine: engine.Config{Workers: 1}})

	sources := map[string]string{
		"figure2": petri.Format(figures.Figure2()),
		"figure5": petri.Format(figures.Figure5()),
		"figure7": petri.Format(figures.Figure7()),
	}
	usedShards := map[int]bool{}
	for name, src := range sources {
		perm := permuteSource(t, src)
		if perm == src {
			t.Fatalf("%s: permutation is a no-op", name)
		}
		code, cold := post(t, ts.URL, src)
		if code != http.StatusOK || cold.Cache != "miss" {
			t.Fatalf("%s cold: code=%d env=%+v", name, code, cold)
		}
		code, warm := post(t, ts.URL, perm)
		if code != http.StatusOK {
			t.Fatalf("%s permuted: code=%d", name, code)
		}
		if warm.Hash != cold.Hash {
			t.Fatalf("%s: permuted net hashes differently: %s vs %s", name, warm.Hash, cold.Hash)
		}
		if warm.Cache != "hit" {
			t.Fatalf("%s: permuted resubmission missed the store: %+v", name, warm)
		}
		if !bytes.Equal(cold.Report, warm.Report) {
			t.Fatalf("%s: permuted report differs from original:\n%s\nvs\n%s", name, warm.Report, cold.Report)
		}
		usedShards[cold.Shard] = true

		// Cold-vs-cold across servers: the twin analyses the permuted
		// form first (no store to hit) and must produce the same bytes.
		code, twinCold := post(t, twinTS.URL, perm)
		if code != http.StatusOK || twinCold.Cache != "miss" {
			t.Fatalf("%s twin cold: code=%d env=%+v", name, code, twinCold)
		}
		if !bytes.Equal(twinCold.Report, cold.Report) {
			t.Fatalf("%s: twin server cold report differs:\n%s\nvs\n%s", name, twinCold.Report, cold.Report)
		}
	}
	if len(usedShards) < 2 {
		t.Errorf("corpus exercised only shards %v; want at least 2 of 4", usedShards)
	}
	_ = twin
}

// TestServiceAdmissionControl saturates a one-worker, one-slot shard and
// checks the service answers 429 + Retry-After instead of queueing, then
// recovers once the slot frees.
func TestServiceAdmissionControl(t *testing.T) {
	block := make(chan struct{})
	release := make(chan struct{})
	var blocked bool
	_, ts := newTestServer(t, Config{Engine: engine.Config{
		Workers:      1,
		SubmitWindow: 1,
		FaultHook: func(ctx context.Context, hash string, attempt int) error {
			// Block exactly the first job so the window stays full while
			// the test probes; later jobs run free.
			select {
			case block <- struct{}{}:
				<-release
			default:
			}
			return nil
		},
	}})

	slow := petri.Format(figures.Figure5())
	fast := petri.Format(figures.Figure2())

	done := make(chan AnalyzeResponse, 1)
	go func() {
		_, env := post(t, ts.URL, slow)
		done <- env
	}()
	select {
	case <-block:
		blocked = true
	case <-time.After(5 * time.Second):
		t.Fatal("first job never reached the engine")
	}

	code, env := post(t, ts.URL, fast)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated window: code=%d env=%+v, want 429", code, env)
	}
	if env.RetryAfterSec < 1 || env.Error == "" {
		t.Fatalf("429 envelope missing retry hint: %+v", env)
	}

	close(release)
	first := <-done
	if first.Status != "ok" || first.Cache != "miss" {
		t.Fatalf("blocked job did not complete: %+v", first)
	}
	if code, env := post(t, ts.URL, fast); code != http.StatusOK || env.Status != "ok" {
		t.Fatalf("post-drain POST: code=%d env=%+v", code, env)
	}
	if !blocked {
		t.Fatal("fault hook never blocked")
	}
}

// TestServiceQuarantine checks a panicking net is answered 500, its hash
// is quarantined, and resubmission is refused with 422 and the reason.
func TestServiceQuarantine(t *testing.T) {
	poison := figures.Figure5().CanonicalHash()
	_, ts := newTestServer(t, Config{Engine: engine.Config{
		Workers: 1,
		FaultHook: func(ctx context.Context, hash string, attempt int) error {
			if hash == poison {
				panic("synthetic fault for test")
			}
			return nil
		},
	}})
	src := petri.Format(figures.Figure5())

	code, env := post(t, ts.URL, src)
	if code != http.StatusInternalServerError || env.Status != string(engine.StatusPanicked) {
		t.Fatalf("poisoned POST: code=%d env=%+v", code, env)
	}
	code, env = post(t, ts.URL, src)
	if code != http.StatusUnprocessableEntity || env.Status != string(engine.StatusQuarantined) || env.Error == "" {
		t.Fatalf("resubmission: code=%d env=%+v, want 422 with reason", code, env)
	}
	// Healthy nets keep flowing.
	if code, env := post(t, ts.URL, petri.Format(figures.Figure2())); code != http.StatusOK || env.Status != "ok" {
		t.Fatalf("healthy net after quarantine: code=%d env=%+v", code, env)
	}
}

// TestServiceJournalWarmBoot checks the journal lifecycle: a restarted
// server serves journalled reports from its store without re-analysis,
// byte-identically, and journalled panics stay quarantined across the
// restart.
func TestServiceJournalWarmBoot(t *testing.T) {
	dir := t.TempDir()
	poison := figures.Figure2().CanonicalHash()
	hook := func(ctx context.Context, hash string, attempt int) error {
		if hash == poison {
			panic("synthetic fault for test")
		}
		return nil
	}

	a, err := New(Config{Shards: 2, JournalDir: dir, Engine: engine.Config{Workers: 1, FaultHook: hook}})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	src := petri.Format(figures.Figure5())
	code, cold := post(t, tsA.URL, src)
	if code != http.StatusOK {
		t.Fatalf("cold POST: %d", code)
	}
	if code, _ := post(t, tsA.URL, petri.Format(figures.Figure2())); code != http.StatusInternalServerError {
		t.Fatalf("poisoned POST: %d", code)
	}
	tsA.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Second boot, no fault hook: the journal is the only memory.
	b, err := New(Config{Shards: 2, JournalDir: dir, Engine: engine.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(b.Handler())
	defer func() {
		tsB.Close()
		b.Close()
	}()

	code, body := get(t, tsB.URL+"/v1/report/"+cold.Hash)
	if code != http.StatusOK {
		t.Fatalf("replayed report lookup: %d %s", code, body)
	}
	var looked AnalyzeResponse
	if err := json.Unmarshal(body, &looked); err != nil || !bytes.Equal(looked.Report, cold.Report) {
		t.Fatalf("replayed report differs from original cold report: err=%v\n%s\nvs\n%s", err, looked.Report, cold.Report)
	}
	code, env := post(t, tsB.URL, src)
	if code != http.StatusOK || env.Cache != "hit" || !bytes.Equal(env.Report, cold.Report) {
		t.Fatalf("warm-boot POST must hit the replayed store: code=%d cache=%s", code, env.Cache)
	}
	code, env = post(t, tsB.URL, petri.Format(figures.Figure2()))
	if code != http.StatusUnprocessableEntity || env.Status != string(engine.StatusQuarantined) {
		t.Fatalf("journalled panic must stay quarantined across boots: code=%d env=%+v", code, env)
	}
	if st := b.StatsReport(); st.Totals.Jobs != 0 {
		t.Fatalf("warm boot ran %d engine jobs; everything should come from the journal", st.Totals.Jobs)
	}
}

// TestServiceDrain checks the shutdown sequence: Drain turns /readyz 503
// and refuses new analyses while /healthz stays 200, and Close flushes
// journals that a subsequent merge can read.
func TestServiceDrain(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Shards: 2, JournalDir: dir, Engine: engine.Config{Workers: 1}})
	if code, _ := post(t, ts.URL, petri.Format(figures.Figure5())); code != http.StatusOK {
		t.Fatal("pre-drain POST failed")
	}
	s.Drain()
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatal("draining server must fail readiness")
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatal("draining server must stay healthy (alive)")
	}
	if code, _ := post(t, ts.URL, petri.Format(figures.Figure2())); code != http.StatusServiceUnavailable {
		t.Fatal("draining server must refuse new analyses")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The flushed shard journals merge into one resumable journal.
	merged := dir + "/merged.jsonl"
	if _, n, err := journal.Merge(merged, []string{
		dir + "/shard-0.jsonl", dir + "/shard-1.jsonl",
	}); err != nil || n != 1 {
		t.Fatalf("merging flushed journals: n=%d err=%v", n, err)
	}
	entries, err := journal.Read(merged)
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := entries[figures.Figure5().CanonicalHash()]
	if !ok || ent.Status != string(engine.StatusOK) || ent.Report == nil {
		t.Fatalf("merged journal missing the completed job: %+v", ent)
	}
}

// TestServiceShardRouting pins the router: a hash routes to the shard
// named by its hex prefix, deterministically, for any shard count.
func TestServiceShardRouting(t *testing.T) {
	s, err := New(Config{Shards: 4, Engine: engine.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, hash := range []string{
		"00000000aaaa", "00000001bbbb", "00000002cccc", "00000003dddd", "00000004eeee",
	} {
		if got := s.shardFor(hash).id; got != i%4 {
			t.Errorf("shardFor(%s) = %d, want %d", hash, got, i%4)
		}
	}
	if a, b := s.shardFor("zz-not-hex"), s.shardFor("zz-not-hex"); a != b {
		t.Error("non-hex hash must still route deterministically")
	}
}

func TestServiceBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64, Engine: engine.Config{Workers: 1}})
	var sb strings.Builder
	sb.WriteString("net big\n")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, "place p%d\n", i)
	}
	big := sb.String()
	resp, err := http.Post(ts.URL+"/v1/analyze", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("oversized body: code=%d %s, want 413", resp.StatusCode, b)
	}
}

// TestServiceConcurrentIdenticalPosts floods one net through many
// concurrent requests: every accepted response carries identical report
// bytes, and rejected ones are clean 429s.
func TestServiceConcurrentIdenticalPosts(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: engine.Config{Workers: 2, SubmitWindow: 2}})
	src := petri.Format(figures.Figure5())
	const N = 16
	type outcome struct {
		code int
		env  AnalyzeResponse
	}
	results := make(chan outcome, N)
	for i := 0; i < N; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/analyze", "text/plain", strings.NewReader(src))
			if err != nil {
				results <- outcome{code: -1}
				return
			}
			defer resp.Body.Close()
			var env AnalyzeResponse
			json.NewDecoder(resp.Body).Decode(&env)
			results <- outcome{code: resp.StatusCode, env: env}
		}()
	}
	var okReports [][]byte
	var rejected int
	for i := 0; i < N; i++ {
		o := <-results
		switch o.code {
		case http.StatusOK:
			okReports = append(okReports, o.env.Report)
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected response: %+v", o)
		}
	}
	if len(okReports) == 0 {
		t.Fatal("no request succeeded")
	}
	for i, r := range okReports[1:] {
		if !bytes.Equal(r, okReports[0]) {
			t.Fatalf("response %d differs under concurrency", i+1)
		}
	}
	t.Logf("%d ok, %d rejected by admission control", len(okReports), rejected)
}

// TestServiceDrainUnderLoad races a batch of concurrent analyses
// against Drain: every request must finish as either a 200 with a
// complete, parseable report or a clean 503 refusal envelope — never a
// torn body, never a hung handler. This is the backend half of the
// coordinator's rolling-restart story: a drain mid-batch shows up
// upstream as retryable 503s, not corruption.
func TestServiceDrainUnderLoad(t *testing.T) {
	// A wide submit window keeps admission control out of the picture:
	// the only refusal in play is the drain's 503.
	s, ts := newTestServer(t, Config{Shards: 2, Engine: engine.Config{Workers: 2, SubmitWindow: 64}})

	srcs := []string{
		petri.Format(figures.Figure2()),
		petri.Format(figures.Figure5()),
		petri.Format(figures.Figure7()),
	}
	for seed := uint64(40); len(srcs) < 24; seed++ {
		srcs = append(srcs, petri.Format(netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig())))
	}

	hc := &http.Client{Timeout: 30 * time.Second}
	var finished atomic.Int64
	var wg sync.WaitGroup
	type outcome struct {
		code int
		body []byte
		err  error
	}
	results := make(chan outcome, len(srcs))
	for _, src := range srcs {
		wg.Add(1)
		go func(src string) {
			defer wg.Done()
			defer finished.Add(1)
			resp, err := hc.Post(ts.URL+"/v1/analyze", "text/plain", strings.NewReader(src))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				results <- outcome{code: resp.StatusCode, err: rerr}
				return
			}
			results <- outcome{code: resp.StatusCode, body: body}
		}(src)
	}
	// Drain mid-batch: some requests have already completed, the rest
	// race the flag.
	for finished.Load() < int64(len(srcs))/4 {
		time.Sleep(time.Millisecond)
	}
	s.Drain()
	wg.Wait()
	close(results)

	var completed, refused int
	for o := range results {
		if o.err != nil {
			t.Fatalf("request neither completed nor cleanly refused: %v", o.err)
		}
		if !json.Valid(o.body) {
			t.Fatalf("torn response body (code %d): %q", o.code, o.body)
		}
		var env AnalyzeResponse
		if err := json.Unmarshal(o.body, &env); err != nil {
			t.Fatalf("unparsable envelope (code %d): %q", o.code, o.body)
		}
		switch o.code {
		case http.StatusOK:
			if env.Status != "ok" || len(env.Report) == 0 || !json.Valid(env.Report) {
				t.Fatalf("accepted request without a full report: %+v", env)
			}
			completed++
		case http.StatusServiceUnavailable:
			if env.Error == "" {
				t.Fatalf("503 without an error message: %q", o.body)
			}
			refused++
		default:
			t.Fatalf("unexpected status %d: %q", o.code, o.body)
		}
	}
	if completed == 0 {
		t.Fatal("drain raced ahead of every request; nothing completed")
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatal("drained server must fail readiness")
	}
	t.Logf("drain under load: %d completed, %d cleanly refused", completed, refused)
}

func fmtShardJournal(dir string, i int) string {
	return fmt.Sprintf("%s/shard-%d.jsonl", dir, i)
}

// Package server is the sharded HTTP/JSON analysis service built around
// internal/engine: the QSS pipeline behind a network front door. A POST
// of `.pn` source returns the full deterministic NetReport plus the
// net's canonical structural hash and a cache marker; identical
// structures — submitted by anyone, named anyhow — hit the same
// content-addressed line.
//
// Architecture: work partitions across N in-process shards by
// canonical-hash prefix. Each shard owns one engine.Engine (worker pool
// + content-addressed cache), a content-addressed report store, and an
// append-only journal (internal/journal). Admission control reuses the
// engine's backpressure vocabulary: a shard whose submit window is full
// refuses with 429 + Retry-After instead of queueing unboundedly,
// per-request deadlines are the engine's JobTimeout threaded through the
// existing context causes (a trip returns 504 with the partial report),
// and quarantined hashes are refused with 422 and the recorded reason.
// Boot replays the journals to warm the report store and re-seed
// quarantines; Close drains in-flight jobs and flushes the journals.
// See docs/SERVICE.md.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fcpn/internal/engine"
	"fcpn/internal/engine/stats"
	"fcpn/internal/journal"
	"fcpn/internal/petri"
)

// Config tunes the service. The zero value is usable: one shard, a
// default engine, no journals, 1 MiB body limit.
type Config struct {
	// Shards is the number of in-process shard engines work partitions
	// across by canonical-hash prefix (≤ 0 → 1). Each shard has its own
	// worker pool, cache, report store and journal.
	Shards int
	// Engine is the per-shard engine configuration. Its SubmitWindow is
	// also the shard's admission window: with W in-flight analyses a
	// shard refuses further misses with 429.
	Engine engine.Config
	// JournalDir, when set, gives each shard an append-only journal
	// (shard-<i>.jsonl) recording every completed analysis. On boot,
	// every *.jsonl in the directory is replayed — re-routed by current
	// hash prefix, so a shard-count change between boots is harmless —
	// to warm the report store and re-seed quarantines.
	JournalDir string
	// MaxBodyBytes bounds POST /v1/analyze bodies (≤ 0 → 1 MiB).
	MaxBodyBytes int64
}

// shard is one partition: an engine, its admission slots, its journal
// and its slice of the content-addressed report store.
type shard struct {
	id      int
	eng     *engine.Engine
	slots   chan struct{} // admission window; len == in-flight analyses
	journal *journal.Writer

	mu      sync.RWMutex
	reports map[string]json.RawMessage // canonical hash -> marshalled NetReport
}

func (sh *shard) lookup(hash string) (json.RawMessage, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	raw, ok := sh.reports[hash]
	return raw, ok
}

func (sh *shard) store(hash string, raw json.RawMessage) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.reports[hash] = raw
}

func (sh *shard) size() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.reports)
}

// Server is the long-running analysis service. Create with New, mount
// Handler on an http.Server, and Close on the way out (after the HTTP
// listener has stopped accepting) to drain in-flight jobs and flush the
// journals.
type Server struct {
	cfg    Config
	start  time.Time
	shards []*shard
	mux    *http.ServeMux

	draining atomic.Bool

	// Request-level counters (the engine counters live per shard).
	reqAnalyze     atomic.Int64
	reqHits        atomic.Int64
	reqMisses      atomic.Int64
	rejWindow      atomic.Int64
	rejQuarantine  atomic.Int64
	reqLookups     atomic.Int64
	lookupMisses   atomic.Int64
	reqParseErrors atomic.Int64
}

// New builds the service: one engine per shard, journals opened and
// replayed. Returns an error only for journal I/O failures.
func New(cfg Config) (*Server, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	s := &Server{cfg: cfg, start: time.Now()}
	for i := 0; i < n; i++ {
		eng := engine.New(cfg.Engine)
		sh := &shard{
			id:      i,
			eng:     eng,
			slots:   make(chan struct{}, eng.SubmitWindow()),
			reports: map[string]json.RawMessage{},
		}
		s.shards = append(s.shards, sh)
	}
	if cfg.JournalDir != "" {
		if err := s.replayJournals(cfg.JournalDir); err != nil {
			s.Close()
			return nil, err
		}
		for _, sh := range s.shards {
			w, err := journal.Open(filepath.Join(cfg.JournalDir, fmt.Sprintf("shard-%d.jsonl", sh.id)))
			if err != nil {
				s.Close()
				return nil, err
			}
			sh.journal = w
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/report/{hash}", s.handleReport)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux = mux
	return s, nil
}

// replayJournals warms the boot: every *.jsonl under dir is folded
// later-wins (files in name order, so shard files replay
// deterministically), completed reports re-enter the content-addressed
// store of whichever shard now owns their hash, and journalled
// panics/quarantines re-seed the owning engine's quarantine so poisoned
// nets stay refused across restarts.
func (s *Server) replayJournals(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	entries := map[string]journal.Entry{}
	for _, p := range paths {
		got, err := journal.Read(p)
		if err != nil {
			return fmt.Errorf("server: replaying journal %s: %w", p, err)
		}
		for h, ent := range got {
			entries[h] = ent
		}
	}
	for hash, ent := range entries {
		sh := s.shardFor(hash)
		switch ent.Status {
		case string(engine.StatusPanicked), string(engine.StatusQuarantined):
			sh.eng.Quarantine(hash, "journalled "+ent.Status+": "+ent.Error)
		case string(engine.StatusOK):
			if ent.Report == nil {
				continue
			}
			raw, err := json.Marshal(ent.Report)
			if err != nil {
				return err
			}
			sh.store(hash, raw)
		}
	}
	return nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shards reports the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// Drain flips the server into draining mode: /readyz turns 503 so load
// balancers stop routing here, and new analyses are refused. In-flight
// jobs keep running until Close.
func (s *Server) Drain() { s.draining.Store(true) }

// Close drains and shuts the service down: new work is refused, each
// shard's engine waits out its in-flight jobs, and the journals are
// flushed and closed. Call after the HTTP listener has stopped accepting
// (http.Server.Shutdown), and at most once concurrently with itself.
func (s *Server) Close() error {
	s.Drain()
	var first error
	for _, sh := range s.shards {
		sh.eng.Close()
		if err := sh.journal.Close(); err != nil && first == nil {
			first = err
		}
		sh.journal = nil
	}
	return first
}

// PrefixIndex routes a canonical hash to one of n partitions by numeric
// hash prefix. Canonical hashes are SHA-256 hex, so the first 8 hex
// digits are a uniform 32-bit key; anything shorter or non-hex (never
// produced by petri.CanonicalHash, but the router stays total) falls
// back to FNV. This is the single routing function of the whole
// deployment: in-process shards partition by it, and the multi-host
// coordinator (internal/coord) routes to backend hosts by it, so a
// report journalled by shard i of host j is findable from anywhere.
func PrefixIndex(hash string, n int) int {
	if n <= 1 {
		return 0
	}
	prefix := hash
	if len(prefix) > 8 {
		prefix = prefix[:8]
	}
	if v, err := strconv.ParseUint(prefix, 16, 64); err == nil && len(prefix) > 0 {
		return int(v % uint64(n))
	}
	f := fnv.New32a()
	f.Write([]byte(hash))
	return int(f.Sum32() % uint32(n))
}

// shardFor routes a canonical hash to its shard via PrefixIndex.
func (s *Server) shardFor(hash string) *shard {
	return s.shards[PrefixIndex(hash, len(s.shards))]
}

// ---- wire types ------------------------------------------------------

// AnalyzeResponse is the envelope of POST /v1/analyze and
// GET /v1/report/{hash}. Report is the engine's deterministic NetReport;
// Cache says whether this request was served from the content-addressed
// store ("hit") or ran the analysis ("miss") — the only field allowed to
// differ between isomorphic submissions.
type AnalyzeResponse struct {
	Hash   string `json:"hash,omitempty"`
	Cache  string `json:"cache,omitempty"` // "hit" | "miss"
	Shard  int    `json:"shard"`
	Status string `json:"status"` // engine.JobStatus vocabulary
	Error  string `json:"error,omitempty"`
	// RetryAfterSec mirrors the Retry-After header on 429 responses so
	// JSON-only clients need not read headers.
	RetryAfterSec int             `json:"retry_after_sec,omitempty"`
	Report        json.RawMessage `json:"report,omitempty"`
}

// RequestCounters are the service-level (pre-engine) request tallies.
type RequestCounters struct {
	Analyze            int64 `json:"analyze"`
	AnalyzeHits        int64 `json:"analyze_hits"`
	AnalyzeMisses      int64 `json:"analyze_misses"`
	RejectedWindow     int64 `json:"rejected_window"`
	RejectedQuarantine int64 `json:"rejected_quarantine"`
	ReportLookups      int64 `json:"report_lookups"`
	ReportMisses       int64 `json:"report_misses"`
	ParseErrors        int64 `json:"parse_errors"`
}

// ShardStats is one shard's slice of GET /v1/stats: the report-store
// size, quarantine census and the engine's full snapshot (cache and
// layer hit/miss/wait counters plus trace phase totals ride inside
// Engine.Trace).
type ShardStats struct {
	Shard       int            `json:"shard"`
	Reports     int            `json:"reports"`
	Quarantined int            `json:"quarantined"`
	Window      int            `json:"window"`
	InFlight    int            `json:"in_flight"`
	Engine      stats.Snapshot `json:"engine"`
}

// StatsReport is the GET /v1/stats document. Totals sums the per-shard
// engine counters (its Trace is nil — per-phase totals stay per shard,
// where they are attributable).
type StatsReport struct {
	Shards   int             `json:"shards"`
	UptimeMS float64         `json:"uptime_ms"`
	Requests RequestCounters `json:"requests"`
	Totals   stats.Snapshot  `json:"totals"`
	PerShard []ShardStats    `json:"per_shard"`
}

// ---- handlers --------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// retryAfterSec is the Retry-After hint on 429s: the per-request
// deadline if one is configured (by then the window has certainly
// moved), else one second.
func (s *Server) retryAfterSec() int {
	if t := s.cfg.Engine.JobTimeout; t > 0 {
		if sec := int((t + time.Second - 1) / time.Second); sec > 0 {
			return sec
		}
	}
	return 1
}

// canonicalHash computes the net's canonical hash, converting a
// canonicalisation panic into an error so a hostile net cannot kill the
// handler goroutine.
func canonicalHash(n *petri.Net) (hash string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("canonicalisation panicked: %v", r)
		}
	}()
	return n.CanonicalHash(), nil
}

func statusCode(st engine.JobStatus) int {
	switch st {
	case engine.StatusOK:
		return http.StatusOK
	case engine.StatusTimeout:
		return http.StatusGatewayTimeout // 504: the per-request deadline fired
	case engine.StatusQuarantined:
		return http.StatusUnprocessableEntity // 422: refused, net is poisoned
	default: // panicked, error
		return http.StatusInternalServerError
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.reqAnalyze.Add(1)
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, AnalyzeResponse{Status: "error", Error: "server is draining"})
		return
	}
	maxBody := s.cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	// A declared oversize body is refused before any parsing; the
	// MaxBytesReader below stays as the backstop for chunked or lying
	// senders (the parser would otherwise report a confusing syntax
	// error on the truncated line before the limit error surfaces).
	if r.ContentLength > maxBody {
		s.reqParseErrors.Add(1)
		writeJSON(w, http.StatusRequestEntityTooLarge, AnalyzeResponse{
			Status: "error",
			Error:  fmt.Sprintf("body exceeds %d byte limit", maxBody),
		})
		return
	}
	n, err := petri.Parse(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		s.reqParseErrors.Add(1)
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, code, AnalyzeResponse{Status: "error", Error: "parse: " + err.Error()})
		return
	}
	hash, err := canonicalHash(n)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, AnalyzeResponse{Status: string(engine.StatusPanicked), Error: err.Error()})
		return
	}
	sh := s.shardFor(hash)

	// Quarantine check before admission: a poisoned hash is refused
	// without consuming a window slot.
	if reason, ok := sh.eng.QuarantineReason(hash); ok {
		s.rejQuarantine.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, AnalyzeResponse{
			Hash: hash, Shard: sh.id,
			Status: string(engine.StatusQuarantined),
			Error:  reason,
		})
		return
	}

	// Content-addressed dedup: any structurally identical net already
	// analysed (this boot or replayed from the journal) is served from
	// the store without touching the engine.
	if raw, ok := sh.lookup(hash); ok {
		s.reqHits.Add(1)
		writeJSON(w, http.StatusOK, AnalyzeResponse{
			Hash: hash, Cache: "hit", Shard: sh.id,
			Status: string(engine.StatusOK),
			Report: raw,
		})
		return
	}

	// Admission control: a full submit window refuses instead of
	// queueing — the HTTP face of the engine's backpressure.
	select {
	case sh.slots <- struct{}{}:
	default:
		s.rejWindow.Add(1)
		sec := s.retryAfterSec()
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeJSON(w, http.StatusTooManyRequests, AnalyzeResponse{
			Hash: hash, Shard: sh.id,
			Status:        "error",
			Error:         fmt.Sprintf("shard %d submit window (%d) is full", sh.id, cap(sh.slots)),
			RetryAfterSec: sec,
		})
		return
	}
	defer func() { <-sh.slots }()

	s.reqMisses.Add(1)
	var res engine.Result
	err = sh.eng.AnalyzeEach([]*petri.Net{n}, func(_ int, r engine.Result) {
		res = r
		// Journal inside the engine callback: Engine.Close waits for it,
		// so a drain never loses a completed job's record.
		ent := journal.Entry{
			Hash:      r.Report.Hash,
			Source:    "http:" + n.Name(),
			Status:    string(r.Status),
			ElapsedMS: float64(r.Elapsed.Nanoseconds()) / 1e6,
			Report:    r.Report,
		}
		if r.Err != nil {
			ent.Error = r.Err.Error()
		}
		// Reissueable outcomes carry the net source so a coordinator
		// folding this journal can re-submit the work elsewhere.
		if r.Status == engine.StatusTimeout || r.Status == engine.StatusPanicked {
			ent.Net = petri.Format(n)
		}
		sh.journal.Record(ent)
	})
	if err != nil { // only ErrEngineClosed: raced a shutdown
		writeJSON(w, http.StatusServiceUnavailable, AnalyzeResponse{Hash: hash, Shard: sh.id, Status: "error", Error: err.Error()})
		return
	}

	raw, err := json.Marshal(res.Report)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, AnalyzeResponse{Hash: hash, Shard: sh.id, Status: "error", Error: err.Error()})
		return
	}
	resp := AnalyzeResponse{
		Hash: hash, Cache: "miss", Shard: sh.id,
		Status: string(res.Status),
		Report: raw,
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
	}
	if res.Status == engine.StatusOK {
		sh.store(hash, raw)
	}
	writeJSON(w, statusCode(res.Status), resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.reqLookups.Add(1)
	hash := r.PathValue("hash")
	sh := s.shardFor(hash)
	raw, ok := sh.lookup(hash)
	if !ok {
		s.lookupMisses.Add(1)
		writeJSON(w, http.StatusNotFound, AnalyzeResponse{
			Hash: hash, Shard: sh.id,
			Status: "error", Error: "unknown report hash",
		})
		return
	}
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Hash: hash, Cache: "hit", Shard: sh.id,
		Status: string(engine.StatusOK),
		Report: raw,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsReport())
}

// StatsReport assembles the /v1/stats document: request counters,
// per-shard engine snapshots (cache/layer counters and trace phase
// totals included) and the cross-shard counter totals.
func (s *Server) StatsReport() StatsReport {
	rep := StatsReport{
		Shards:   len(s.shards),
		UptimeMS: float64(time.Since(s.start).Nanoseconds()) / 1e6,
		Requests: RequestCounters{
			Analyze:            s.reqAnalyze.Load(),
			AnalyzeHits:        s.reqHits.Load(),
			AnalyzeMisses:      s.reqMisses.Load(),
			RejectedWindow:     s.rejWindow.Load(),
			RejectedQuarantine: s.rejQuarantine.Load(),
			ReportLookups:      s.reqLookups.Load(),
			ReportMisses:       s.lookupMisses.Load(),
			ParseErrors:        s.reqParseErrors.Load(),
		},
	}
	var busyWeighted float64
	for _, sh := range s.shards {
		snap := sh.eng.Stats()
		rep.PerShard = append(rep.PerShard, ShardStats{
			Shard:       sh.id,
			Reports:     sh.size(),
			Quarantined: len(sh.eng.QuarantinedHashes()),
			Window:      cap(sh.slots),
			InFlight:    len(sh.slots),
			Engine:      snap,
		})
		t := &rep.Totals
		t.Jobs += snap.Jobs
		t.CacheHits += snap.CacheHits
		t.CacheMisses += snap.CacheMisses
		t.QueueDepth += snap.QueueDepth
		if snap.QueueDepthPeak > t.QueueDepthPeak {
			t.QueueDepthPeak = snap.QueueDepthPeak
		}
		t.BusyWorkers += snap.BusyWorkers
		t.Workers += snap.Workers
		t.Timeouts += snap.Timeouts
		t.Panics += snap.Panics
		t.Retries += snap.Retries
		t.QuarantineSkips += snap.QuarantineSkips
		busyWeighted += snap.Utilization * float64(snap.Workers)
	}
	if total := rep.Totals.CacheHits + rep.Totals.CacheMisses; total > 0 {
		rep.Totals.HitRate = float64(rep.Totals.CacheHits) / float64(total)
	}
	if rep.Totals.Workers > 0 {
		rep.Totals.Utilization = busyWeighted / float64(rep.Totals.Workers)
	}
	return rep
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

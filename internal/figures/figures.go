// Package figures constructs the example nets of Sgroi et al. (DAC 1999),
// one constructor per paper figure. Tests, benchmarks and examples all pull
// their inputs from here so the paper's numbers are reproduced from a
// single source of truth.
//
// Where the scanned figure is ambiguous, the reconstruction is the unique
// net consistent with every quantity stated in the text (T-invariants,
// valid schedules, reduction traces); each constructor documents the
// evidence it was checked against.
package figures

import "fcpn/internal/petri"

// Figure1a is the free-choice fragment of Figure 1: one place with two
// output transitions, each having that place as its only input.
func Figure1a() *petri.Net {
	b := petri.NewBuilder("figure1a")
	p := b.MarkedPlace("p", 1)
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	b.Arc(p, t1)
	b.Arc(p, t2)
	return b.Build()
}

// Figure1b is the non-free-choice fragment of Figure 1: t2 consumes from
// both p1 and p2 while t3 consumes from p2 alone, so there is a marking
// (token in p2 only) at which t3 is enabled and t2 is not.
func Figure1b() *petri.Net {
	b := petri.NewBuilder("figure1b")
	p1 := b.Place("p1")
	p2 := b.MarkedPlace("p2", 1)
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	b.ArcTP(t1, p1)
	b.Arc(p1, t2)
	b.Arc(p2, t2)
	b.Arc(p2, t3)
	return b.Build()
}

// Figure2 is the multirate marked graph of Figure 2 with minimal
// T-invariant f(σ) = (4, 2, 1): t1 → p1 →² t2 → p2 →² t3 with initial
// marking (0, 0). The finite complete cycle is t1 t1 t1 t1 t2 t2 t3.
func Figure2() *petri.Net {
	b := petri.NewBuilder("figure2")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	b.ArcTP(t1, p1)
	b.WeightedArc(p1, t2, 2)
	b.ArcTP(t2, p2)
	b.WeightedArc(p2, t3, 2)
	return b.Build()
}

// Figure3a is the schedulable FCPN of Figure 3a: source t1 feeds choice
// place p1 resolved by t2 or t3, each followed by its own sink chain. The
// paper's valid schedule is S = {(t1 t2 t4), (t1 t3 t5)} and the
// T-invariant space is a·(1,1,0,1,0) + b·(1,0,1,0,1).
func Figure3a() *petri.Net {
	b := petri.NewBuilder("figure3a")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	t4 := b.Transition("t4")
	t5 := b.Transition("t5")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	p3 := b.Place("p3")
	b.Chain(t1, p1, t2, p2, t4)
	b.Chain(p1, t3, p3, t5)
	return b.Build()
}

// Figure3b is the non-schedulable FCPN of Figure 3b: the two branches of
// the choice re-synchronise on t4, which consumes from both p2 and p3.
// The only T-invariants are multiples of (2,1,1,1), so an adversary that
// always resolves the choice towards t2 (or t3) accumulates unboundedly
// many tokens in p2 (or p3); no valid schedule exists.
func Figure3b() *petri.Net {
	b := petri.NewBuilder("figure3b")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	t4 := b.Transition("t4")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	p3 := b.Place("p3")
	b.Chain(t1, p1, t2, p2, t4)
	b.Chain(p1, t3, p3, t4)
	return b.Build()
}

// Figure4 is the weighted-arc schedulable net of Figure 4: the input arc of
// t4 has weight 2 and t3 produces two tokens into p3. The paper's valid
// schedule is S = {(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}; Section 4 lists the C
// code generated from it.
func Figure4() *petri.Net {
	b := petri.NewBuilder("figure4")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	t4 := b.Transition("t4")
	t5 := b.Transition("t5")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	p3 := b.Place("p3")
	b.Chain(t1, p1, t2, p2)
	b.WeightedArc(p2, t4, 2)
	b.Arc(p1, t3)
	b.WeightedArcTP(t3, p3, 2)
	b.Chain(p3, t5)
	return b.Build()
}

// Figure5 is the two-source weighted FCPN of Figures 5 and 6. Checked
// against the paper: the T-invariants of reduction R1 are
// (1,1,0,2,0,4,0,0,0) and (0,0,0,0,0,1,0,1,1) over (t1…t9), reduction R1
// keeps {t1,t2,t4,t6,t8,t9} (Figure 6's trace removes t3, p3, t5, p5, p6,
// t7 in that order), and the paper's valid schedule is
// {(t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6), (t1 t3 t5 t7 t7 t8 t9 t6)}.
func Figure5() *petri.Net {
	b := petri.NewBuilder("figure5")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	t4 := b.Transition("t4")
	t5 := b.Transition("t5")
	t6 := b.Transition("t6")
	t7 := b.Transition("t7")
	t8 := b.Transition("t8")
	t9 := b.Transition("t9")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	p3 := b.Place("p3")
	p4 := b.Place("p4")
	p5 := b.Place("p5")
	p6 := b.Place("p6")
	p7 := b.Place("p7")
	b.ArcTP(t1, p1) // t1 is a source input
	b.Arc(p1, t2)   // p1 is the free choice
	b.Arc(p1, t3)
	b.WeightedArcTP(t2, p2, 2)
	b.Arc(p2, t4)
	b.WeightedArcTP(t4, p4, 2)
	b.Arc(p4, t6) // t6 is a sink
	b.Chain(t3, p3, t5)
	b.WeightedArcTP(t5, p5, 2)
	b.WeightedArcTP(t5, p6, 2)
	b.Arc(p5, t7) // t7 is a sink
	b.Arc(p6, t7)
	b.Chain(t8, p7, t9) // t8 is the second source input
	b.ArcTP(t9, p4)     // merge into p4
	return b.Build()
}

// Figure7 is the non-schedulable FCPN of Figure 7. It differs from
// Figure 5 in that the two choice branches re-join at synchronising
// transitions (t6 consumes p4 and p5; t7 consumes p6): every T-reduction
// keeps a producer-less place, forcing f = 0 — both reductions are
// inconsistent, so the net is not schedulable. Checked against the paper:
// R1 keeps {t1,p1,t2,p2,t4,p4,p5,t6}, R2 keeps
// {t1,p1,t3,p3,t5,p4,p5,p6,t6,t7}, and firing (t1 t2 t4 t6) forever would
// accumulate tokens in p4 because p3 cannot supply p5.
func Figure7() *petri.Net {
	b := petri.NewBuilder("figure7")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	t4 := b.Transition("t4")
	t5 := b.Transition("t5")
	t6 := b.Transition("t6")
	t7 := b.Transition("t7")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	p3 := b.Place("p3")
	p4 := b.Place("p4")
	p5 := b.Place("p5")
	p6 := b.Place("p6")
	b.ArcTP(t1, p1)
	b.Arc(p1, t2)
	b.Arc(p1, t3)
	b.Chain(t2, p2, t4, p4, t6)
	b.Chain(t3, p3, t5, p5, t6)
	b.Chain(t5, p6, t7)
	return b.Build()
}

// All returns every figure net keyed by name, for table-driven tests.
func All() map[string]*petri.Net {
	return map[string]*petri.Net{
		"figure1a": Figure1a(),
		"figure1b": Figure1b(),
		"figure2":  Figure2(),
		"figure3a": Figure3a(),
		"figure3b": Figure3b(),
		"figure4":  Figure4(),
		"figure5":  Figure5(),
		"figure7":  Figure7(),
	}
}

package spec

import (
	"strings"
	"testing"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/petri"
)

// buildPacketHandler builds a small protocol handler: parse each frame,
// branch on its kind, acknowledge data frames, ignore keep-alives.
func buildPacketHandler(t *testing.T) *petri.Net {
	t.Helper()
	s := NewSystem("packets")
	frame := s.Input("Frame")
	ack := s.Output("Ack")
	s.Process("handler").
		Receive(frame).
		Run("parse").
		If("kind",
			Branch{Label: "data", Body: func(p *Process) {
				p.Run("store").Send(ack)
			}},
			Branch{Label: "keepalive", Body: func(p *Process) {
				p.Run("touch_timer")
			}},
		)
	n, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCompilePacketHandler(t *testing.T) {
	n := buildPacketHandler(t)
	if !n.IsFreeChoice() {
		t.Fatal("compiled net must be free-choice")
	}
	srcs := n.SourceTransitions()
	if len(srcs) != 1 || n.TransitionName(srcs[0]) != "Frame" {
		t.Fatalf("sources = %v", n.SequenceNames(srcs))
	}
	if len(n.FreeChoiceSets()) != 1 {
		t.Fatalf("choices = %d", len(n.FreeChoiceSets()))
	}
	s, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatalf("must be schedulable: %v", err)
	}
	if len(s.Cycles) != 2 {
		t.Fatalf("cycles = %d", len(s.Cycles))
	}
}

func TestCompiledSpecSynthesises(t *testing.T) {
	n := buildPacketHandler(t)
	sched, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := core.PartitionTasks(n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(sched, tp)
	if err != nil {
		t.Fatal(err)
	}
	src := codegen.EmitC(prog, codegen.CConfig{})
	for _, frag := range []string{"parse();", "read_kind()", "store();", "env_Ack();"} {
		if !strings.Contains(src, frag) {
			t.Fatalf("C missing %q:\n%s", frag, src)
		}
	}
}

func TestRepeatCompilesToMultirate(t *testing.T) {
	// Figure 4's pattern through the frontend: per input, run the body
	// twice, then finalise.
	s := NewSystem("rep")
	in := s.Input("In")
	out := s.Output("Out")
	s.Process("p").
		Receive(in).
		Run("prepare").
		Repeat(2, func(b *Process) { b.Run("step") }).
		Run("finalise").
		Send(out)
	n, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatalf("must be schedulable: %v", err)
	}
	if len(sched.Cycles) != 1 {
		t.Fatalf("cycles = %d", len(sched.Cycles))
	}
	// step fires twice per input, finalise once.
	step, _ := n.TransitionByName("step")
	prep, _ := n.TransitionByName("prepare")
	if sched.Cycles[0].Counts[step] != 2*sched.Cycles[0].Counts[prep] {
		t.Fatalf("counts = %v", sched.Cycles[0].Counts)
	}
}

func TestTwoProcessPipeline(t *testing.T) {
	// Producer filters samples to a channel; consumer batches 2 per frame.
	s := NewSystem("pipe")
	sample := s.Input("Sample")
	mid := s.Channel("mid")
	frame := s.Output("FrameOut")
	s.Process("producer").
		Receive(sample).
		Run("filter").
		Send(mid)
	s.Process("consumer").
		ReceiveN(mid, 2).
		Run("assemble").
		Send(frame)
	n, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatalf("must be schedulable: %v", err)
	}
	// Per cycle: 2 samples, 1 frame.
	smp, _ := n.TransitionByName("Sample")
	asm, _ := n.TransitionByName("assemble")
	if sched.Cycles[0].Counts[smp] != 2 || sched.Cycles[0].Counts[asm] != 1 {
		t.Fatalf("counts = %v", sched.Cycles[0].Counts)
	}
	tp, err := core.PartitionTasks(n, core.Options{})
	if err != nil || tp.NumTasks() != 1 {
		t.Fatalf("tasks = %v (%v): one rate-dependent input group", tp, err)
	}
}

func TestIndependentInputsTwoTasks(t *testing.T) {
	s := NewSystem("indep")
	a := s.Input("A")
	bIn := s.Input("B")
	outA := s.Output("OutA")
	outB := s.Output("OutB")
	s.Process("pa").Receive(a).Run("fa").Send(outA)
	s.Process("pb").Receive(bIn).Run("fb").Send(outB)
	n, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tp, err := core.PartitionTasks(n, core.Options{})
	if err != nil || tp.NumTasks() != 2 {
		t.Fatalf("tasks = %d (%v)", tp.NumTasks(), err)
	}
}

func TestNestedIfAtBranchEnd(t *testing.T) {
	// An If whose branch ends with another If: every leaf must re-join
	// the continuation.
	s := NewSystem("nested")
	in := s.Input("In")
	out := s.Output("Out")
	s.Process("p").
		Receive(in).
		Run("start").
		If("outer",
			Branch{Label: "x", Body: func(b *Process) {
				b.Run("x1").If("inner",
					Branch{Label: "p", Body: func(b2 *Process) { b2.Run("deep_p") }},
					Branch{Label: "q", Body: func(b2 *Process) { b2.Run("deep_q") }},
				)
			}},
			Branch{Label: "y", Body: func(b *Process) { b.Run("y1") }},
		).
		Run("done").
		Send(out)
	n, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatalf("must be schedulable: %v", err)
	}
	// Three leaves: x→p, x→q, y.
	if len(sched.Cycles) != 3 {
		t.Fatalf("cycles = %d, want 3", len(sched.Cycles))
	}
	// 'done' runs in every cycle.
	done, _ := n.TransitionByName("done")
	for _, c := range sched.Cycles {
		if c.Counts[done] != 1 {
			t.Fatalf("done missing from a cycle: %v", c.Counts)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		sys  func() *System
		frag string
	}{
		{"no processes", func() *System { return NewSystem("x") }, "no processes"},
		{"empty body", func() *System {
			s := NewSystem("x")
			s.Process("p")
			return s
		}, "empty body"},
		{"no trigger", func() *System {
			s := NewSystem("x")
			s.Process("p").Run("a")
			return s
		}, "must start with Receive"},
		{"trailing receive", func() *System {
			s := NewSystem("x")
			in := s.Input("In")
			s.Process("p").Receive(in)
			return s
		}, "trailing Receive"},
		{"send before run", func() *System {
			s := NewSystem("x")
			in := s.Input("In")
			out := s.Output("Out")
			s.Process("p").Receive(in).Send(out).Run("a")
			return s
		}, "Send before any computation"},
		{"one-armed if", func() *System {
			s := NewSystem("x")
			in := s.Input("In")
			s.Process("p").Receive(in).Run("a").
				If("c", Branch{Label: "only", Body: func(b *Process) { b.Run("z") }})
			return s
		}, "at least two branches"},
		{"receive before if", func() *System {
			s := NewSystem("x")
			in := s.Input("In")
			ch := s.Channel("ch")
			s.Process("feeder").Receive(in).Run("f").Send(ch)
			s.Process("p").Receive(in).Run("a").Receive(ch).
				If("c",
					Branch{Label: "l", Body: func(b *Process) { b.Run("z1") }},
					Branch{Label: "r", Body: func(b *Process) { b.Run("z2") }})
			return s
		}, "Receive immediately before If"},
		{"zero repeat", func() *System {
			s := NewSystem("x")
			in := s.Input("In")
			s.Process("p").Receive(in).Run("a").Repeat(0, func(b *Process) { b.Run("z") })
			return s
		}, "Repeat needs k >= 1"},
		{"repeat without run", func() *System {
			s := NewSystem("x")
			in := s.Input("In")
			out := s.Output("Out")
			s.Process("p").Receive(in).Run("a").
				Repeat(2, func(b *Process) { b.Send(out) })
			return s
		}, "Repeat body must start with Run"},
		{"bad receiven", func() *System {
			s := NewSystem("x")
			in := s.Input("In")
			s.Process("p").ReceiveN(in, 0).Run("a")
			return s
		}, "ReceiveN needs k >= 1"},
		{"bad sendn", func() *System {
			s := NewSystem("x")
			in := s.Input("In")
			out := s.Output("Out")
			s.Process("p").Receive(in).Run("a").SendN(out, 0)
			return s
		}, "SendN needs k >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.sys().Compile()
			if err == nil {
				t.Fatalf("expected error containing %q", tc.frag)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not contain %q", err, tc.frag)
			}
		})
	}
}

func TestParForkJoin(t *testing.T) {
	s := NewSystem("fork")
	in := s.Input("In")
	out := s.Output("Out")
	s.Process("p").
		Receive(in).
		Run("split").
		Par("work",
			func(b *Process) { b.Run("left") },
			func(b *Process) { b.Run("right").Run("right2") },
		).
		Run("merge").
		Send(out)
	n, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatalf("fork-join must be schedulable: %v", err)
	}
	if len(sched.Cycles) != 1 {
		t.Fatalf("cycles = %d", len(sched.Cycles))
	}
	// Every branch and the join run exactly once per input.
	for _, name := range []string{"left", "right", "right2", "merge"} {
		tr, ok := n.TransitionByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if sched.Cycles[0].Counts[tr] != 1 {
			t.Fatalf("%s fired %d times", name, sched.Cycles[0].Counts[tr])
		}
	}
	// And the synthesised code is equivalent to the net.
	tp, err := core.PartitionTasks(n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(sched, tp)
	if err != nil {
		t.Fatal(err)
	}
	inTr, _ := n.TransitionByName("In")
	it := codegen.NewInterp(prog, func(petri.Place, []petri.Transition) int { return 0 })
	for i := 0; i < 5; i++ {
		if err := it.RunSource(inTr); err != nil {
			t.Fatal(err)
		}
		if err := it.StateEquationCheck(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParWithNestedIf(t *testing.T) {
	s := NewSystem("forkif")
	in := s.Input("In")
	s.Process("p").
		Receive(in).
		Run("start").
		Par("fan",
			func(b *Process) {
				b.Run("a1").If("cond",
					Branch{Label: "x", Body: func(b2 *Process) { b2.Run("ax") }},
					Branch{Label: "y", Body: func(b2 *Process) { b2.Run("ay") }},
				)
			},
			func(b *Process) { b.Run("b1") },
		).
		Run("done")
	n, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatalf("must be schedulable: %v", err)
	}
	if len(sched.Cycles) != 2 {
		t.Fatalf("cycles = %d (one per If outcome)", len(sched.Cycles))
	}
	done, _ := n.TransitionByName("done")
	for _, c := range sched.Cycles {
		if c.Counts[done] != 1 {
			t.Fatalf("done must fire once per cycle: %v", c.Counts)
		}
	}
}

func TestParErrors(t *testing.T) {
	mk := func(build func(p *Process)) error {
		s := NewSystem("x")
		in := s.Input("In")
		p := s.Process("p").Receive(in).Run("a")
		build(p)
		_, err := s.Compile()
		return err
	}
	if err := mk(func(p *Process) {
		p.Par("one", func(b *Process) { b.Run("z") })
	}); err == nil || !strings.Contains(err.Error(), "at least two branches") {
		t.Fatalf("one-branch Par: %v", err)
	}
	if err := mk(func(p *Process) {
		p.Par("empty", func(b *Process) {}, func(b *Process) { b.Run("z") })
	}); err == nil || !strings.Contains(err.Error(), "empty Par branch") {
		t.Fatalf("empty branch: %v", err)
	}
	if err := mk(func(p *Process) {
		p.Par("bad", func(b *Process) { b.Send(0) }, func(b *Process) { b.Run("z") })
	}); err == nil || !strings.Contains(err.Error(), "must start with Run") {
		t.Fatalf("non-Run head: %v", err)
	}
}

func TestDanglingChannelErrors(t *testing.T) {
	// Unused output.
	s := NewSystem("x")
	in := s.Input("In")
	s.Output("Out")
	s.Process("p").Receive(in).Run("a")
	if _, err := s.Compile(); err == nil || !strings.Contains(err.Error(), `sends to output "Out"`) {
		t.Fatalf("err = %v", err)
	}
	// Channel with a consumer but no producer.
	s2 := NewSystem("x")
	in2 := s2.Input("In")
	ch := s2.Channel("ch")
	s2.Process("p").Receive(in2).Run("a")
	s2.Process("q").Receive(ch).Run("b")
	if _, err := s2.Compile(); err == nil || !strings.Contains(err.Error(), `sends to channel "ch"`) {
		t.Fatalf("err = %v", err)
	}
	// Channel with a producer but no consumer.
	s3 := NewSystem("x")
	in3 := s3.Input("In")
	ch3 := s3.Channel("ch")
	s3.Process("p").Receive(in3).Run("a").Send(ch3)
	if _, err := s3.Compile(); err == nil || !strings.Contains(err.Error(), `receives from channel "ch"`) {
		t.Fatalf("err = %v", err)
	}
	// Input nobody reads.
	s4 := NewSystem("x")
	s4.Input("In")
	in4b := s4.Input("In2")
	s4.Process("p").Receive(in4b).Run("a")
	if _, err := s4.Compile(); err == nil || !strings.Contains(err.Error(), `receives from input "In"`) {
		t.Fatalf("err = %v", err)
	}
}

package spec

import (
	"fmt"
	"testing"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/petri"
)

// randomSystem builds a pseudo-random specification from a seed: 1–3
// input-driven processes with nested Ifs, Repeats and Sends to outputs or
// an internal channel drained by a consumer process. Such systems are
// schedulable by construction (all bodies are feed-forward).
func randomSystem(seed uint64) *System {
	state := seed*0x9E3779B97F4A7C15 + 77
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	s := NewSystem(fmt.Sprintf("rand%d", seed))
	uniq := 0
	fresh := func(prefix string) string {
		uniq++
		return fmt.Sprintf("%s%d", prefix, uniq)
	}
	// Declare the sinks lazily: an output or channel nobody uses is a
	// compile error (by design).
	var out, shared ChannelID
	haveOut, haveShared := false, false
	getOut := func() ChannelID {
		if !haveOut {
			out = s.Output("Out")
			haveOut = true
		}
		return out
	}
	getShared := func() ChannelID {
		if !haveShared {
			shared = s.Channel("shared")
			haveShared = true
		}
		return shared
	}
	procs := 1 + next(3)
	var body func(p *Process, depth int)
	body = func(p *Process, depth int) {
		p.Run(fresh("step"))
		if depth <= 0 {
			if next(2) == 0 {
				p.Send(getOut())
			} else {
				p.Send(getShared())
			}
			return
		}
		switch next(3) {
		case 0: // branch
			p.If(fresh("cond"),
				Branch{Label: "a", Body: func(b *Process) { body(b, depth-1) }},
				Branch{Label: "b", Body: func(b *Process) { body(b, depth-1) }},
			)
		case 1: // bounded loop
			k := 2 + next(2)
			p.Repeat(k, func(b *Process) { b.Run(fresh("loop")) })
			body(p, depth-1)
		default: // straight line
			body(p, depth-1)
		}
	}
	for i := 0; i < procs; i++ {
		in := s.Input(fmt.Sprintf("In%d", i))
		p := s.Process(fmt.Sprintf("proc%d", i)).Receive(in)
		body(p, 1+next(2))
	}
	// Consumer for the shared channel: becomes code shared by every task
	// that sends to it.
	if haveShared {
		s.Process("drain").Receive(shared).Run("consume_shared")
	}
	return s
}

// TestRandomSystemsSynthesise compiles, schedules and code-generates 60
// random specifications, checking FCPN validity, schedulability and code/
// net equivalence on a short event run.
func TestRandomSystemsSynthesise(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		sys := randomSystem(seed)
		n, err := sys.Compile()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sched, err := core.Solve(n, core.Options{})
		if err != nil {
			t.Fatalf("seed %d must be schedulable: %v\n%s", seed, err, petri.Format(n))
		}
		tp, err := core.PartitionTasks(n, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := codegen.Generate(sched, tp)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := codegen.NewInterp(prog, func(_ petri.Place, alts []petri.Transition) int {
			state := seed * 31
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(len(alts)))
		})
		sources := n.SourceTransitions()
		for e := 0; e < 12; e++ {
			src := sources[e%len(sources)]
			if err := in.RunSource(src); err != nil {
				t.Fatalf("seed %d event %d: %v", seed, e, err)
			}
			if err := in.StateEquationCheck(); err != nil {
				t.Fatalf("seed %d event %d: %v\n%s", seed, e, err,
					codegen.EmitC(prog, codegen.CConfig{}))
			}
		}
	}
}

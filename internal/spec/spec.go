// Package spec is a specification frontend for the synthesis flow: a
// concurrent process network with data-dependent control, in the style of
// the medium-grained functional decompositions the paper's introduction
// describes (SDL-like processes, dataflow actors with if-then-else).
// A System compiles into a Free-Choice Petri Net accepted by the scheduler.
//
// A system has environment inputs (compiled to source transitions),
// channels (places), and processes. A process is a straight-line reactive
// body: it is triggered by receiving from an input or channel and then
// runs computations, sends to channels, branches on data (If) and performs
// fixed-count loops (Repeat, compiled to multirate arc weights exactly as
// the paper's Figure 4). Unbounded data-dependent loops are deliberately
// not expressible: they admit no finite complete cycle, so no valid
// quasi-static schedule exists for them.
package spec

import (
	"fmt"

	"fcpn/internal/petri"
)

// ChannelID identifies a declared channel or input stream.
type ChannelID int

// System is a specification under construction.
type System struct {
	name      string
	channels  []channelDecl
	processes []*Process
	inputs    map[ChannelID]bool
	outputs   map[ChannelID]bool
}

type channelDecl struct {
	name string
}

// NewSystem starts an empty specification.
func NewSystem(name string) *System {
	return &System{
		name:    name,
		inputs:  map[ChannelID]bool{},
		outputs: map[ChannelID]bool{},
	}
}

// Input declares an environment input stream (an interrupt, a timer, a
// sensor): it compiles to a source transition feeding a place.
func (s *System) Input(name string) ChannelID {
	id := s.addChannel(name)
	s.inputs[id] = true
	return id
}

// Channel declares an internal channel between processes.
func (s *System) Channel(name string) ChannelID {
	return s.addChannel(name)
}

// Output declares an environment output stream: tokens sent to it are
// consumed by an implicit sink transition (the environment), so they never
// accumulate.
func (s *System) Output(name string) ChannelID {
	id := s.addChannel(name)
	s.outputs[id] = true
	return id
}

func (s *System) addChannel(name string) ChannelID {
	s.channels = append(s.channels, channelDecl{name: name})
	return ChannelID(len(s.channels) - 1)
}

// Process declares a process; populate its body with the returned handle.
func (s *System) Process(name string) *Process {
	p := &Process{name: name}
	s.processes = append(s.processes, p)
	return p
}

// Stmt is one statement of a process body.
type Stmt interface{ stmt() }

type recvStmt struct {
	ch ChannelID
	k  int
}
type sendStmt struct {
	ch ChannelID
	k  int
}
type runStmt struct {
	name string
}
type ifStmt struct {
	name     string
	branches [][]Stmt
	labels   []string
}
type repeatStmt struct {
	k    int
	body []Stmt
}
type parStmt struct {
	name     string
	branches [][]Stmt
}

func (recvStmt) stmt()   {}
func (sendStmt) stmt()   {}
func (runStmt) stmt()    {}
func (ifStmt) stmt()     {}
func (repeatStmt) stmt() {}
func (parStmt) stmt()    {}

// Process is a reactive sequential body.
type Process struct {
	name string
	body []Stmt
}

// Receive consumes one token from a channel or input. The first statement
// of every process must be a Receive: it is the activation trigger.
func (p *Process) Receive(ch ChannelID) *Process {
	p.body = append(p.body, recvStmt{ch: ch, k: 1})
	return p
}

// ReceiveN consumes k tokens at once (a blocking read of k items).
func (p *Process) ReceiveN(ch ChannelID, k int) *Process {
	p.body = append(p.body, recvStmt{ch: ch, k: k})
	return p
}

// Run adds a computation step (one transition).
func (p *Process) Run(name string) *Process {
	p.body = append(p.body, runStmt{name: name})
	return p
}

// Send produces one token into a channel or output.
func (p *Process) Send(ch ChannelID) *Process {
	p.body = append(p.body, sendStmt{ch: ch, k: 1})
	return p
}

// SendN produces k tokens at once.
func (p *Process) SendN(ch ChannelID, k int) *Process {
	p.body = append(p.body, sendStmt{ch: ch, k: k})
	return p
}

// Branch is one alternative of an If.
type Branch struct {
	Label string
	Body  func(*Process)
}

// If adds a data-dependent branch: at run time the value decides which
// alternative executes; the branches re-join afterwards. It compiles to a
// free-choice place. Each branch needs at least one Run (the choice's
// transition).
func (p *Process) If(name string, branches ...Branch) *Process {
	st := ifStmt{name: name}
	for _, br := range branches {
		sub := &Process{}
		br.Body(sub)
		st.branches = append(st.branches, sub.body)
		st.labels = append(st.labels, br.Label)
	}
	p.body = append(p.body, st)
	return p
}

// Repeat executes body exactly k times per activation, compiled to
// multirate arc weights (the Figure 4 pattern); k must be ≥ 1.
func (p *Process) Repeat(k int, body func(*Process)) *Process {
	sub := &Process{}
	body(sub)
	p.body = append(p.body, repeatStmt{k: k, body: sub.body})
	return p
}

// Par executes every branch once per activation — a fork–join: the
// preceding step forks one token per branch; the following step
// synchronises on all of them. Each branch must start with a Run.
func (p *Process) Par(name string, branches ...func(*Process)) *Process {
	st := parStmt{name: name}
	for _, br := range branches {
		sub := &Process{}
		br(sub)
		st.branches = append(st.branches, sub.body)
	}
	p.body = append(p.body, st)
	return p
}

// Compile lowers the system to a Free-Choice Petri Net and validates it.
func (s *System) Compile() (*petri.Net, error) {
	c := &compiler{sys: s, b: petri.NewBuilder(s.name)}
	if err := c.run(); err != nil {
		return nil, err
	}
	n := c.b.Build()
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("spec: compiled net invalid: %w", err)
	}
	return n, nil
}

type compiler struct {
	sys      *System
	b        *petri.Builder
	chPlaces []petri.Place
	uniq     int
}

func (c *compiler) fresh(prefix string) string {
	c.uniq++
	return fmt.Sprintf("%s_%d", prefix, c.uniq)
}

func (c *compiler) run() error {
	s := c.sys
	if len(s.processes) == 0 {
		return fmt.Errorf("spec: system %q has no processes", s.name)
	}
	// Channels become places; inputs gain source transitions; outputs
	// gain sink transitions.
	c.chPlaces = make([]petri.Place, len(s.channels))
	for i, ch := range s.channels {
		c.chPlaces[i] = c.b.Place("ch_" + ch.name)
	}
	for id := range s.inputs {
		src := c.b.Transition(s.channels[id].name)
		c.b.ArcTP(src, c.chPlaces[id])
	}
	for id := range s.outputs {
		sink := c.b.Transition("env_" + s.channels[id].name)
		c.b.Arc(c.chPlaces[id], sink)
	}
	for _, p := range s.processes {
		if err := c.compileProcess(p); err != nil {
			return err
		}
	}
	return c.checkChannelUse()
}

// checkChannelUse rejects dangling channels early with clear messages: a
// channel nobody sends to starves its consumers (inconsistent reduction),
// one nobody receives from accumulates tokens (unbounded) — both would
// otherwise surface later as cryptic schedulability failures.
func (c *compiler) checkChannelUse() error {
	n := c.b.Build()
	for id, ch := range c.sys.channels {
		p, _ := n.PlaceByName("ch_" + ch.name)
		producers := len(n.Producers(p))
		consumers := len(n.Consumers(p))
		switch {
		case c.sys.inputs[ChannelID(id)]:
			if consumers == 0 {
				return fmt.Errorf("spec: no process receives from input %q", ch.name)
			}
		case c.sys.outputs[ChannelID(id)]:
			if producers == 0 {
				return fmt.Errorf("spec: no process sends to output %q", ch.name)
			}
		default:
			if producers == 0 {
				return fmt.Errorf("spec: no process sends to channel %q", ch.name)
			}
			if consumers == 0 {
				return fmt.Errorf("spec: no process receives from channel %q", ch.name)
			}
		}
	}
	return nil
}

// compileProcess lowers one body. The body is a pipeline: each Run is a
// transition; consecutive transitions are linked by fresh places; Receive
// attaches channel consumption to the *next* transition, Send attaches
// production to the *previous* one.
func (c *compiler) compileProcess(p *Process) error {
	if len(p.body) == 0 {
		return fmt.Errorf("spec: process %q has an empty body", p.name)
	}
	if _, ok := p.body[0].(recvStmt); !ok {
		return fmt.Errorf("spec: process %q must start with Receive (its activation trigger)", p.name)
	}
	_, err := c.compileSeq(p.name, p.body, nil, nil)
	return err
}

// pendingIn carries channel reads to attach to the next transition.
type pendingIn struct {
	place  petri.Place
	weight int
}

// compileSeq compiles a statement list. prev is the transition the
// sequence continues from (nil at process start); pending are reads to be
// attached to the next transition. It returns every transition the
// sequence can end at (several when the last statement is an If).
func (c *compiler) compileSeq(proc string, body []Stmt, prev *petri.Transition, pending []pendingIn) ([]petri.Transition, error) {
	link := func(t petri.Transition) {
		if prev != nil {
			p := c.b.Place(c.fresh("p_" + proc))
			c.b.ArcTP(*prev, p)
			c.b.Arc(p, t)
		}
		for _, in := range pending {
			c.b.WeightedArc(in.place, t, in.weight)
		}
		prev, pending = &t, nil
	}
	for i := 0; i < len(body); i++ {
		last := i == len(body)-1
		switch st := body[i].(type) {
		case recvStmt:
			if st.k < 1 {
				return nil, fmt.Errorf("spec: process %q: ReceiveN needs k >= 1", proc)
			}
			pending = append(pending, pendingIn{c.chPlaces[st.ch], st.k})
		case sendStmt:
			if st.k < 1 {
				return nil, fmt.Errorf("spec: process %q: SendN needs k >= 1", proc)
			}
			if prev == nil {
				return nil, fmt.Errorf("spec: process %q: Send before any computation", proc)
			}
			c.b.WeightedArcTP(*prev, c.chPlaces[st.ch], st.k)
		case runStmt:
			t := c.b.Transition(st.name)
			link(t)
		case ifStmt:
			if prev == nil {
				return nil, fmt.Errorf("spec: process %q: If before any computation", proc)
			}
			if len(pending) > 0 {
				return nil, fmt.Errorf("spec: process %q: Receive immediately before If is not free-choice; Run a step first", proc)
			}
			if len(st.branches) < 2 {
				return nil, fmt.Errorf("spec: process %q: If %q needs at least two branches", proc, st.name)
			}
			choice := c.b.Place(st.name)
			c.b.ArcTP(*prev, choice)
			// Each branch starts with its own transition consuming the
			// choice place; unless the If ends the sequence, the branches
			// re-join into a merge place consumed by the continuation.
			var ends []petri.Transition
			for bi, branch := range st.branches {
				label := st.labels[bi]
				if label == "" {
					label = fmt.Sprintf("alt%d", bi)
				}
				head := c.b.Transition(st.name + "_" + label)
				c.b.Arc(choice, head)
				ht := head
				branchEnds, err := c.compileSeq(proc, branch, &ht, nil)
				if err != nil {
					return nil, err
				}
				ends = append(ends, branchEnds...)
			}
			if last {
				return ends, nil
			}
			merge := c.b.Place(c.fresh(st.name + "_join"))
			for _, e := range ends {
				c.b.ArcTP(e, merge)
			}
			joinT := c.b.Transition(c.fresh(st.name + "_cont"))
			c.b.Arc(merge, joinT)
			prev, pending = &joinT, nil
		case parStmt:
			if prev == nil {
				return nil, fmt.Errorf("spec: process %q: Par before any computation", proc)
			}
			if len(pending) > 0 {
				return nil, fmt.Errorf("spec: process %q: Receive immediately before Par is unsupported; Run a step first", proc)
			}
			if len(st.branches) < 2 {
				return nil, fmt.Errorf("spec: process %q: Par %q needs at least two branches", proc, st.name)
			}
			// Fork: prev produces one token per branch; join: a fresh
			// transition consumes one token from every branch end.
			join := c.b.Transition(c.fresh(st.name + "_join"))
			for bi, branch := range st.branches {
				if len(branch) == 0 {
					return nil, fmt.Errorf("spec: process %q: empty Par branch", proc)
				}
				firstRun, ok := branch[0].(runStmt)
				if !ok {
					return nil, fmt.Errorf("spec: process %q: Par branch must start with Run", proc)
				}
				fork := c.b.Place(c.fresh(fmt.Sprintf("%s_fork%d", st.name, bi)))
				c.b.ArcTP(*prev, fork)
				head := c.b.Transition(firstRun.name)
				c.b.Arc(fork, head)
				ht := head
				branchEnds, err := c.compileSeq(proc, branch[1:], &ht, nil)
				if err != nil {
					return nil, err
				}
				meet := c.b.Place(c.fresh(fmt.Sprintf("%s_meet%d", st.name, bi)))
				for _, e := range branchEnds {
					c.b.ArcTP(e, meet)
				}
				c.b.Arc(meet, join)
			}
			prev, pending = &join, nil
			if last {
				return []petri.Transition{join}, nil
			}
		case repeatStmt:
			if st.k < 1 {
				return nil, fmt.Errorf("spec: process %q: Repeat needs k >= 1", proc)
			}
			if prev == nil {
				return nil, fmt.Errorf("spec: process %q: Repeat before any computation", proc)
			}
			if len(pending) > 0 {
				return nil, fmt.Errorf("spec: process %q: Receive immediately before Repeat is unsupported; Run a step first", proc)
			}
			if len(st.body) == 0 {
				return nil, fmt.Errorf("spec: process %q: empty Repeat body", proc)
			}
			firstRun, ok := st.body[0].(runStmt)
			if !ok {
				return nil, fmt.Errorf("spec: process %q: Repeat body must start with Run", proc)
			}
			// prev produces k tokens into the loop-entry place; the body
			// runs once per token; every body end feeds an accumulator
			// consumed k-at-a-time by the continuation (Figure 4).
			entry := c.b.Place(c.fresh("loop_" + proc))
			c.b.WeightedArcTP(*prev, entry, st.k)
			head := c.b.Transition(firstRun.name)
			c.b.Arc(entry, head)
			ht := head
			bodyEnds, err := c.compileSeq(proc, st.body[1:], &ht, nil)
			if err != nil {
				return nil, err
			}
			if last {
				return bodyEnds, nil
			}
			acc := c.b.Place(c.fresh("acc_" + proc))
			for _, e := range bodyEnds {
				c.b.ArcTP(e, acc)
			}
			cont := c.b.Transition(c.fresh(proc + "_cont"))
			c.b.WeightedArc(acc, cont, st.k)
			prev, pending = &cont, nil
		default:
			return nil, fmt.Errorf("spec: process %q: unknown statement %T", proc, st)
		}
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("spec: process %q: trailing Receive with no following computation", proc)
	}
	if prev == nil {
		return nil, fmt.Errorf("spec: process %q compiled to no transitions", proc)
	}
	return []petri.Transition{*prev}, nil
}

package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fcpn/internal/engine"
)

// write builds a journal file from entries, one line each, optionally
// followed by a torn (newline-less, half-written) tail.
func write(t *testing.T, path string, torn string, entries ...Entry) {
	t.Helper()
	var buf bytes.Buffer
	for _, ent := range entries {
		b, err := json.Marshal(ent)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(append(b, '\n'))
	}
	buf.WriteString(torn)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWriterAppendsAndHealsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	write(t, path, `{"hash":"torn-mid`, Entry{Hash: "h1", Status: "ok"})

	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Record(Entry{Hash: "h2", Status: "ok"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The torn fragment must have been newline-terminated so the new
	// entry sits on its own line.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3 (entry, torn, entry):\n%s", len(lines), raw)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["h1"].Status != "ok" || got["h2"].Status != "ok" {
		t.Fatalf("read back %+v", got)
	}
}

func TestReadLaterEntriesWin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	write(t, path, "",
		Entry{Hash: "h", Source: "old", Status: string(engine.StatusTimeout)},
		Entry{Hash: "h", Source: "new", Status: string(engine.StatusOK)},
	)
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if ent := got["h"]; ent.Source != "new" || ent.Status != string(engine.StatusOK) {
		t.Fatalf("later entry did not win: %+v", ent)
	}
}

// TestMergeLaterInputWins pins the cross-journal conflict rule: when the
// same hash appears in several shard journals, the later input wins —
// the multi-file extension of Compact's later-lines-win.
func TestMergeLaterInputWins(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "shard-0.jsonl")
	b := filepath.Join(dir, "shard-1.jsonl")
	write(t, a, "",
		Entry{Hash: "h-conflict", Source: "shard0", Status: string(engine.StatusTimeout), Error: "engine: job deadline exceeded"},
		Entry{Hash: "h-a", Source: "shard0", Status: string(engine.StatusOK)},
	)
	write(t, b, "",
		Entry{Hash: "h-conflict", Source: "shard1", Status: string(engine.StatusOK)},
		Entry{Hash: "h-b", Source: "shard1", Status: string(engine.StatusOK)},
	)

	out := filepath.Join(dir, "merged.jsonl")
	lines, entries, err := Merge(out, []string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if lines != 4 || entries != 3 {
		t.Fatalf("merge folded %d lines into %d entries, want 4 -> 3", lines, entries)
	}
	got, err := Read(out)
	if err != nil {
		t.Fatal(err)
	}
	ent := got["h-conflict"]
	if ent.Source != "shard1" || ent.Status != string(engine.StatusOK) || ent.Error != "" {
		t.Fatalf("conflicting hash: later input must win, got %+v", ent)
	}
	if _, ok := got["h-a"]; !ok {
		t.Error("merge lost shard-0-only entry")
	}
	if _, ok := got["h-b"]; !ok {
		t.Error("merge lost shard-1-only entry")
	}
}

// TestMergeTolerantOfTornTails checks a crash-torn final line in any
// shard journal is skipped, not fatal, and does not shadow healthy
// entries.
func TestMergeTolerantOfTornTails(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "shard-0.jsonl")
	b := filepath.Join(dir, "shard-1.jsonl")
	write(t, a, `{"hash":"h-torn","status":"o`, Entry{Hash: "h-a", Status: string(engine.StatusOK)})
	write(t, b, `{"hash":`, Entry{Hash: "h-b", Status: string(engine.StatusOK)})

	out := filepath.Join(dir, "merged.jsonl")
	lines, entries, err := Merge(out, []string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if lines != 4 || entries != 2 {
		t.Fatalf("merge folded %d lines into %d entries, want 4 -> 2", lines, entries)
	}
	got, err := Read(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["h-torn"]; ok {
		t.Error("torn tail line leaked into the merge")
	}
	if len(got) != 2 {
		t.Fatalf("merged entries: %+v", got)
	}
}

// TestMergePreservesQuarantine checks a panic/quarantine record survives
// the merge when no input holds a later successful re-analysis — the
// property that lets a coordinator fold shard journals without
// resurrecting poisoned nets.
func TestMergePreservesQuarantine(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "shard-0.jsonl")
	b := filepath.Join(dir, "shard-1.jsonl")
	write(t, a, "",
		Entry{Hash: "h-poison", Source: "gen:9", Status: string(engine.StatusPanicked), Error: "engine: job panicked: synthetic"},
		Entry{Hash: "h-healed", Source: "gen:10", Status: string(engine.StatusPanicked), Error: "engine: job panicked: synthetic"},
	)
	write(t, b, "",
		Entry{Hash: "h-ok", Source: "gen:11", Status: string(engine.StatusOK)},
		// A later shard successfully re-analysed h-healed: that entry wins.
		Entry{Hash: "h-healed", Source: "gen:10", Status: string(engine.StatusOK)},
	)

	out := filepath.Join(dir, "merged.jsonl")
	if _, _, err := Merge(out, []string{a, b}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(out)
	if err != nil {
		t.Fatal(err)
	}
	if ent := got["h-poison"]; ent.Status != string(engine.StatusPanicked) || ent.Error == "" {
		t.Fatalf("merge lost the quarantine record: %+v", ent)
	}
	if ent := got["h-healed"]; ent.Status != string(engine.StatusOK) {
		t.Fatalf("successful re-analysis must override the old panic: %+v", ent)
	}
}

// TestMergeOutputMatchesCompactCodec checks Merge writes the same
// hash-sorted one-line-per-entry format Compact does: merging a single
// journal is byte-identical to compacting it.
func TestMergeOutputMatchesCompactCodec(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "j.jsonl")
	entries := []Entry{
		{Hash: "zz", Status: string(engine.StatusOK)},
		{Hash: "aa", Status: string(engine.StatusOK)},
		{Hash: "zz", Status: string(engine.StatusTimeout), Error: "late"},
		{Hash: "mm", Status: string(engine.StatusPanicked), Error: "boom"},
	}
	write(t, src, "", entries...)
	merged := filepath.Join(dir, "merged.jsonl")
	if _, n, err := Merge(merged, []string{src}); err != nil || n != 3 {
		t.Fatalf("merge: n=%d err=%v", n, err)
	}
	if before, after, err := Compact(src); err != nil || before != 4 || after != 3 {
		t.Fatalf("compact: %d -> %d, err=%v", before, after, err)
	}
	a, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("merge and compact codecs diverge:\n%s\nvs\n%s", a, b)
	}
}

func TestMergeRequiresInputs(t *testing.T) {
	if _, _, err := Merge(filepath.Join(t.TempDir(), "out.jsonl"), nil); err == nil {
		t.Fatal("merge with no inputs must error")
	}
}

// TestMergeIntoExistingInput checks out may be one of the inputs (the
// coordinator folding shard journals over its own) without data loss.
func TestMergeIntoExistingInput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "main.jsonl")
	b := filepath.Join(dir, "shard-1.jsonl")
	write(t, a, "", Entry{Hash: "h-a", Status: string(engine.StatusOK)})
	write(t, b, "", Entry{Hash: "h-b", Status: string(engine.StatusOK)})
	if _, n, err := Merge(a, []string{a, b}); err != nil || n != 2 {
		t.Fatalf("merge: n=%d err=%v", n, err)
	}
	got, err := Read(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("in-place merge lost entries: %+v", got)
	}
}

// TestMergePropertyRandomized is the property-based check of Merge's
// precedence rules over seeded random journal populations:
//
//  1. quarantine records survive any merge order: a hash whose records
//     are all quarantine-class (panicked/quarantined) merges to a
//     quarantine-class record under EVERY input permutation, and no
//     hash ever merges to "ok" unless some input actually journalled a
//     successful analysis (merge cannot invent or forge a success);
//  2. any hash journalled anywhere appears in the merge (nothing is
//     dropped);
//  3. three-way folds are associative: Merge(A,B,C) is byte-identical
//     to Merge(Merge(A,B),C) and Merge(A,Merge(B,C)) — the coordinator
//     may fold backend journals in one pass or incrementally and land
//     on the same file.
func TestMergePropertyRandomized(t *testing.T) {
	statuses := []string{
		string(engine.StatusOK),
		string(engine.StatusTimeout),
		string(engine.StatusPanicked),
		string(engine.StatusQuarantined),
	}
	quarantineClass := func(s string) bool {
		return s == string(engine.StatusPanicked) || s == string(engine.StatusQuarantined)
	}

	// splitmix64: the same seeded generator the fault injector uses, so
	// the trial populations are reproducible without math/rand.
	rng := uint64(20260808)
	next := func(n int) int {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return int((z ^ (z >> 31)) % uint64(n))
	}

	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		// Random population: ~8 hashes, ~24 records spread over 3 journals.
		nHashes := 4 + next(6)
		journals := make([][]Entry, 3)
		type world struct{ sawOK, allQuarantine bool }
		byHash := map[string]*world{}
		for rec := 0; rec < 16+next(16); rec++ {
			h := fmt.Sprintf("hash-%02d", next(nHashes))
			st := statuses[next(len(statuses))]
			j := next(3)
			journals[j] = append(journals[j], Entry{
				Hash: h, Source: fmt.Sprintf("trial%d", trial), Status: st,
			})
			w := byHash[h]
			if w == nil {
				w = &world{allQuarantine: true}
				byHash[h] = w
			}
			w.sawOK = w.sawOK || st == string(engine.StatusOK)
			w.allQuarantine = w.allQuarantine && quarantineClass(st)
		}
		paths := make([]string, 3)
		for i, ents := range journals {
			paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", i))
			write(t, paths[i], "", ents...)
		}

		// Property 1+2 under every permutation of the three inputs.
		for _, perm := range [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
			in := []string{paths[perm[0]], paths[perm[1]], paths[perm[2]]}
			out := filepath.Join(dir, "merged.jsonl")
			if _, _, err := Merge(out, in); err != nil {
				t.Fatal(err)
			}
			got, err := Read(out)
			if err != nil {
				t.Fatal(err)
			}
			for h, w := range byHash {
				ent, ok := got[h]
				if !ok {
					t.Fatalf("trial %d perm %v: merge dropped %s", trial, perm, h)
				}
				if w.allQuarantine && !quarantineClass(ent.Status) {
					t.Fatalf("trial %d perm %v: poisoned %s un-poisoned to %q",
						trial, perm, h, ent.Status)
				}
				if !w.sawOK && ent.Status == string(engine.StatusOK) {
					t.Fatalf("trial %d perm %v: merge invented a success for %s",
						trial, perm, h)
				}
			}
		}

		// Property 3: associativity, byte-for-byte.
		oneShot := filepath.Join(dir, "one-shot.jsonl")
		if _, _, err := Merge(oneShot, paths); err != nil {
			t.Fatal(err)
		}
		leftAB := filepath.Join(dir, "left-ab.jsonl")
		leftAll := filepath.Join(dir, "left-all.jsonl")
		if _, _, err := Merge(leftAB, paths[:2]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Merge(leftAll, []string{leftAB, paths[2]}); err != nil {
			t.Fatal(err)
		}
		rightBC := filepath.Join(dir, "right-bc.jsonl")
		rightAll := filepath.Join(dir, "right-all.jsonl")
		if _, _, err := Merge(rightBC, paths[1:]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Merge(rightAll, []string{paths[0], rightBC}); err != nil {
			t.Fatal(err)
		}
		one, _ := os.ReadFile(oneShot)
		left, _ := os.ReadFile(leftAll)
		right, _ := os.ReadFile(rightAll)
		if !bytes.Equal(one, left) || !bytes.Equal(one, right) {
			t.Fatalf("trial %d: three-way fold is not associative:\none-shot:\n%s\nleft:\n%s\nright:\n%s",
				trial, one, left, right)
		}
	}
}

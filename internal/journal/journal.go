// Package journal is the crash-safe checkpoint log shared by the qssd
// batch front end and the analysis service: one JSON line per completed
// job, keyed by the net's canonical structural hash — the same key the
// engine's cache and quarantine use, so a renamed but structurally
// identical net still resumes against it. The format is append-only
// JSONL; a killed writer leaves at worst one torn final line, and every
// reader tolerates exactly that.
//
// Lifecycle: a Writer appends entries as jobs complete; Read folds a
// journal into a hash-keyed map (later lines win); Compact rewrites a
// journal to one line per hash; Merge folds several shard journals into
// one using the same later-wins codec. Compact and Merge both write
// through a temporary file renamed over the destination, so a crash
// mid-rewrite never loses a journal.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"fcpn/internal/engine"
)

// Entry is one journal line. Status is the engine's JobStatus vocabulary
// plus the qssd-level "skipped-resume"; Report is the full deterministic
// NetReport for completed jobs (nil for refusals journalled before any
// analysis ran).
type Entry struct {
	Hash      string            `json:"hash"`
	Source    string            `json:"source"`
	Status    string            `json:"status"`
	Error     string            `json:"error,omitempty"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Report    *engine.NetReport `json:"report,omitempty"`
	// Net is the `.pn` source of the net, recorded only for reissueable
	// outcomes (timeout, panicked): a journal reader holding such an
	// entry — the multi-host coordinator's boot reissue pass — can
	// re-submit the work without access to the original corpus. Empty
	// for completed jobs, whose Report already says everything.
	Net string `json:"net,omitempty"`
}

// Writer appends entries to a journal file. Writes go straight to the
// file descriptor (no userspace buffering), so a completed record
// survives a process kill; only a write torn mid-line is lost, and Read
// tolerates that. Record is goroutine-safe: the batch engine serialises
// its completion callbacks, but the HTTP service journals from
// concurrent request handlers.
type Writer struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

// Open opens (or creates) the journal for appending. If a previous
// writer was killed mid-line, the torn fragment is newline-terminated so
// new entries cannot concatenate onto it — it stays an isolated,
// skippable line.
func Open(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return &Writer{f: f}, nil
}

// Record appends one entry. The first write error sticks and is reported
// by Close, so the caller's analysis loop never aborts mid-batch over a
// full disk. A nil Writer is a no-op, so callers can journal
// unconditionally.
func (w *Writer) Record(ent Entry) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	b, err := json.Marshal(ent)
	if err != nil {
		w.err = err
		return
	}
	if _, err := w.f.Write(append(b, '\n')); err != nil {
		w.err = err
	}
}

// Close closes the file and reports the first error seen.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	cerr := w.f.Close()
	if w.err != nil {
		return w.err
	}
	return cerr
}

// Read loads a journal into a hash-keyed map. Later entries win (a
// resumed run re-journals the nets it re-analyses). Unparsable lines are
// skipped: the journal is append-only, so the only malformed line a
// crash can produce is a torn final one.
func Read(path string) (map[string]Entry, error) {
	out := map[string]Entry{}
	_, err := foldInto(out, path)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// foldInto streams one journal's lines into entries (later lines win)
// and returns the number of lines seen, torn tail included.
func foldInto(entries map[string]Entry, path string) (lines int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		line, rerr := r.ReadBytes('\n')
		if len(line) > 0 {
			lines++
			var ent Entry
			if jerr := json.Unmarshal(line, &ent); jerr == nil && ent.Hash != "" {
				entries[ent.Hash] = ent
			}
		}
		if rerr == io.EOF {
			return lines, nil
		}
		if rerr != nil {
			return lines, rerr
		}
	}
}

// writeSorted writes the entries sorted by hash to path via a temporary
// file renamed over the destination — the shared codec of Compact and
// Merge. Sorting makes the output deterministic; the rename makes the
// rewrite atomic.
func writeSorted(path string, entries map[string]Entry) error {
	hashes := make([]string, 0, len(entries))
	for h := range entries {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".rewrite-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	for _, h := range hashes {
		b, err := json.Marshal(entries[h])
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(append(b, '\n')); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Compact rewrites the journal in place to one line per canonical hash,
// keeping the latest entry for each — the exact state a resume would
// reconstruct, including quarantine records (a panicked or quarantined
// entry is the latest for its hash until the net is successfully
// re-analysed, so later-wins preserves it). Returns the line count
// before and the entry count after.
func Compact(path string) (before, after int, err error) {
	entries := map[string]Entry{}
	before, err = foldInto(entries, path)
	if err != nil {
		return before, 0, err
	}
	if err := writeSorted(path, entries); err != nil {
		return before, 0, err
	}
	return before, len(entries), nil
}

// Merge folds several journals — typically one per service shard — into
// a single compacted journal at out. Inputs are folded in argument
// order, so for a hash that (unexpectedly — shards partition by hash
// prefix) appears in several inputs, the later input wins, matching
// Compact's later-wins rule within a file. Quarantine records survive
// exactly as under Compact: a panicked/quarantined entry is the latest
// for its hash until some input holds a successful re-analysis. Torn
// tail lines in any input are skipped. out may be one of the inputs; the
// rewrite is atomic. Returns the total input line count and the merged
// entry count.
func Merge(out string, inputs []string) (lines, entries int, err error) {
	if len(inputs) == 0 {
		return 0, 0, fmt.Errorf("journal: merge needs at least one input journal")
	}
	merged := map[string]Entry{}
	for _, in := range inputs {
		n, err := foldInto(merged, in)
		lines += n
		if err != nil {
			return lines, 0, fmt.Errorf("journal: reading %s: %w", in, err)
		}
	}
	if err := writeSorted(out, merged); err != nil {
		return lines, 0, err
	}
	return lines, len(merged), nil
}

package sdf

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"fcpn/internal/figures"
)

// figure2 builds the Figure 2 chain as an SDF graph: t1 -(1,2)-> t2
// -(1,2)-> t3 with no delays; repetition vector (4,2,1).
func figure2() *Graph {
	g := NewGraph()
	t1 := g.AddActor("t1")
	t2 := g.AddActor("t2")
	t3 := g.AddActor("t3")
	mustConnect(g, t1, t2, 1, 2, 0)
	mustConnect(g, t2, t3, 1, 2, 0)
	return g
}

func mustConnect(g *Graph, a, b, prod, cons, delay int) {
	if err := g.Connect(a, b, prod, cons, delay); err != nil {
		panic(err)
	}
}

func TestFigure2RepetitionVector(t *testing.T) {
	q, err := figure2().RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{4, 2, 1}; !reflect.DeepEqual(q, want) {
		t.Fatalf("q = %v, want %v (paper Figure 2: f(σ) = (4,2,1))", q, want)
	}
}

func TestFigure2Schedule(t *testing.T) {
	g := figure2()
	sched, err := g.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 7 {
		t.Fatalf("schedule length = %d, want 7", len(sched))
	}
	counts := map[int]int{}
	for _, a := range sched {
		counts[a]++
	}
	if counts[0] != 4 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("firing counts = %v", counts)
	}
	// Verify buffer feasibility and bounds.
	bounds, err := g.BufferBounds(sched)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bounds {
		if b <= 0 {
			t.Fatalf("bound %d = %d", i, b)
		}
	}
}

func TestInconsistentGraph(t *testing.T) {
	// a -(1,1)-> b and a -(1,2)-> b: q_a = q_b and q_a = 2 q_b.
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	mustConnect(g, a, b, 1, 1, 0)
	mustConnect(g, a, b, 1, 2, 0)
	if _, err := g.RepetitionVector(); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
	if _, err := g.Schedule(); err == nil {
		t.Fatal("schedule of inconsistent graph must fail")
	}
}

func TestDeadlockedCycle(t *testing.T) {
	// Two actors in a cycle with no initial tokens: consistent but dead.
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	mustConnect(g, a, b, 1, 1, 0)
	mustConnect(g, b, a, 1, 1, 0)
	if _, err := g.RepetitionVector(); err != nil {
		t.Fatalf("cycle is consistent: %v", err)
	}
	if _, err := g.Schedule(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// One delay token unblocks it.
	g2 := NewGraph()
	a2 := g2.AddActor("a")
	b2 := g2.AddActor("b")
	mustConnect(g2, a2, b2, 1, 1, 1)
	mustConnect(g2, b2, a2, 1, 1, 0)
	if _, err := g2.Schedule(); err != nil {
		t.Fatalf("delayed cycle must schedule: %v", err)
	}
}

func TestSelfLoop(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a")
	mustConnect(g, a, a, 1, 1, 1)
	q, err := g.RepetitionVector()
	if err != nil || q[0] != 1 {
		t.Fatalf("q = %v, %v", q, err)
	}
	// Rate-mismatched self-loop is inconsistent.
	g2 := NewGraph()
	a2 := g2.AddActor("a")
	mustConnect(g2, a2, a2, 2, 1, 0)
	if _, err := g2.RepetitionVector(); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v", err)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	c := g.AddActor("c")
	_ = c // isolated actor
	mustConnect(g, a, b, 2, 3, 0)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 3 || q[1] != 2 || q[2] != 1 {
		t.Fatalf("q = %v, want [3 2 1]", q)
	}
}

func TestConnectValidation(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a")
	if err := g.Connect(a, 5, 1, 1, 0); err == nil {
		t.Fatal("out-of-range actor accepted")
	}
	if err := g.Connect(a, a, 0, 1, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := g.Connect(a, a, 1, 1, -1); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestBufferBoundsUnderflowDetection(t *testing.T) {
	g := figure2()
	// t3 first: invalid order.
	if _, err := g.BufferBounds([]int{2, 0}); err == nil {
		t.Fatal("underflowing schedule must be rejected")
	}
}

func TestToPetriRoundTrip(t *testing.T) {
	g := figure2()
	n := g.ToPetri("fig2")
	if !n.IsMarkedGraph() {
		t.Fatal("SDF graph must convert to a marked graph")
	}
	if n.NumTransitions() != 3 || n.NumPlaces() != 2 {
		t.Fatalf("shape = %d/%d", n.NumTransitions(), n.NumPlaces())
	}
	back, err := FromPetri(n)
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := g.RepetitionVector()
	q2, err := back.RepetitionVector()
	if err != nil || !reflect.DeepEqual(q1, q2) {
		t.Fatalf("round-trip changed repetition vector: %v vs %v (%v)", q1, q2, err)
	}
}

func TestFromPetriMatchesFigure2Net(t *testing.T) {
	g, err := FromPetri(figures.Figure2())
	if err != nil {
		t.Fatal(err)
	}
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{4, 2, 1}; !reflect.DeepEqual(q, want) {
		t.Fatalf("q = %v, want %v", q, want)
	}
	sched, err := g.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.FlatSchedule(sched); got != "t1 t1 t1 t1 t2 t2 t3" {
		// The exact interleaving may differ but must start with t1 and
		// contain the right multiset; check multiset here.
		counts := map[string]int{}
		for _, nm := range g.Names(sched) {
			counts[nm]++
		}
		if counts["t1"] != 4 || counts["t2"] != 2 || counts["t3"] != 1 {
			t.Fatalf("schedule = %q", got)
		}
	}
}

func TestFromPetriRejectsChoice(t *testing.T) {
	if _, err := FromPetri(figures.Figure3a()); err == nil {
		t.Fatal("net with a choice place is not a marked graph")
	}
}

func TestNames(t *testing.T) {
	g := figure2()
	if got := g.Names([]int{0, 2}); got[0] != "t1" || got[1] != "t3" {
		t.Fatalf("Names = %v", got)
	}
}

// Property: for random consistent two-actor graphs, the schedule realises
// exactly the repetition vector and never underflows.
func TestScheduleRealisesRepetitionProperty(t *testing.T) {
	f := func(prodRaw, consRaw, delayRaw uint8) bool {
		prod := int(prodRaw%4) + 1
		cons := int(consRaw%4) + 1
		delay := int(delayRaw % 5)
		g := NewGraph()
		a := g.AddActor("a")
		b := g.AddActor("b")
		mustConnect(g, a, b, prod, cons, delay)
		q, err := g.RepetitionVector()
		if err != nil {
			return false
		}
		sched, err := g.Schedule()
		if err != nil {
			return false
		}
		counts := map[int]int{}
		for _, x := range sched {
			counts[x]++
		}
		if counts[a] != q[a] || counts[b] != q[b] {
			return false
		}
		_, err = g.BufferBounds(sched)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package sdf

import "testing"

// longChain builds a k-stage rate-changing chain.
func longChain(k int) *Graph {
	g := NewGraph()
	prev := g.AddActor("a0")
	for i := 1; i <= k; i++ {
		cur := g.AddActor("a" + string(rune('0'+i%10)) + string(rune('a'+i%26)))
		prod, cons := 1, 1
		if i%3 == 0 {
			prod = 2
		}
		if i%4 == 0 {
			cons = 3
		}
		if err := g.Connect(prev, cur, prod, cons, 0); err != nil {
			panic(err)
		}
		prev = cur
	}
	return g
}

func BenchmarkRepetitionVector(b *testing.B) {
	g := longChain(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.RepetitionVector(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPASS(b *testing.B) {
	g := longChain(12)
	for i := 0; i < b.N; i++ {
		if _, err := g.Schedule(); err != nil {
			b.Fatal(err)
		}
	}
}

// Package sdf implements Synchronous Dataflow (SDF) static scheduling after
// Lee & Messerschmitt ("Static scheduling of synchronous data flow programs
// for digital signal processing", IEEE ToC 1987): repetition vectors from
// the balance equations, periodic admissible sequential schedules (PASS)
// built by demand-driven simulation, and buffer-bound computation.
//
// SDF graphs are the special case of Petri nets that are marked graphs
// (Section 2 of Sgroi et al.); the same simulation engine statically
// schedules each conflict-free T-reduction of the QSS algorithm.
package sdf

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"fcpn/internal/linalg"
	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

// Actor is an SDF computation node.
type Actor struct {
	Name string
}

// Channel is a FIFO arc between actors: the producer writes Produce tokens
// per firing, the consumer reads Consume tokens per firing, and Delay
// initial tokens are present.
type Channel struct {
	From, To         int // actor indices
	Produce, Consume int
	Delay            int
}

// Graph is an SDF graph.
type Graph struct {
	Actors   []Actor
	Channels []Channel
}

// NewGraph returns an empty SDF graph.
func NewGraph() *Graph { return &Graph{} }

// AddActor appends an actor and returns its index.
func (g *Graph) AddActor(name string) int {
	g.Actors = append(g.Actors, Actor{Name: name})
	return len(g.Actors) - 1
}

// Connect adds a channel from actor a to actor b with the given rates and
// initial delay tokens.
func (g *Graph) Connect(a, b, produce, consume, delay int) error {
	if a < 0 || a >= len(g.Actors) || b < 0 || b >= len(g.Actors) {
		return fmt.Errorf("sdf: actor index out of range (%d -> %d)", a, b)
	}
	if produce <= 0 || consume <= 0 || delay < 0 {
		return fmt.Errorf("sdf: invalid rates produce=%d consume=%d delay=%d", produce, consume, delay)
	}
	g.Channels = append(g.Channels, Channel{a, b, produce, consume, delay})
	return nil
}

// ErrInconsistent is returned when the balance equations only have the
// trivial solution: the graph has no periodic schedule.
var ErrInconsistent = errors.New("sdf: graph is not sample-rate consistent")

// ErrDeadlock is returned when the repetition vector exists but simulation
// cannot complete one period (insufficient delays on a cycle).
var ErrDeadlock = errors.New("sdf: deadlock, insufficient initial tokens")

// RepetitionVector solves the balance equations
// q[from]·produce = q[to]·consume for every channel and returns the
// smallest positive integer solution. Disconnected graphs are handled per
// weakly-connected component (each normalised independently).
func (g *Graph) RepetitionVector() ([]int, error) { return g.RepetitionVectorTraced(nil) }

// RepetitionVectorTraced is RepetitionVector with the balance-equation
// solve's exact-arithmetic tier residency recorded on tr (the
// "linalg/int64|int128|bigint" detail phases); a nil tracer disables
// collection.
func (g *Graph) RepetitionVectorTraced(tr *trace.Tracer) ([]int, error) {
	n := len(g.Actors)
	if n == 0 {
		return nil, nil
	}
	// Build one equation per channel over the q variables. Self-loops
	// contribute produce−consume to a single cell, as they should.
	a := linalg.NewMat(len(g.Channels), n)
	for i, c := range g.Channels {
		a.Data[i][c.From].Add(a.Data[i][c.From], big.NewInt(int64(c.Produce)))
		a.Data[i][c.To].Sub(a.Data[i][c.To], big.NewInt(int64(c.Consume)))
	}
	flows, ok := linalg.MinimalSemiflowsTraced(a, 0, tr)
	if !ok {
		return nil, errors.New("sdf: balance system too large")
	}
	// The repetition vector is the smallest positive combination covering
	// every actor: per connected component there is exactly one minimal
	// semiflow; sum them and verify full support.
	sum := linalg.SumVecs(flows, n)
	counts, fits := sum.Ints()
	if !fits {
		return nil, errors.New("sdf: repetition vector overflows int")
	}
	for _, q := range counts {
		if q == 0 {
			return nil, ErrInconsistent
		}
	}
	return counts, nil
}

// Schedule computes a PASS: a firing order in which each actor i appears
// exactly q[i] times and every firing has sufficient input tokens. The
// construction is Lee's demand-free simulation: repeatedly fire any actor
// with remaining count whose input channels hold enough tokens; if none
// can fire before all counts are exhausted, the graph deadlocks.
func (g *Graph) Schedule() ([]int, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	return g.scheduleWith(q)
}

func (g *Graph) scheduleWith(q []int) ([]int, error) {
	remaining := append([]int(nil), q...)
	tokens := make([]int, len(g.Channels))
	for i, c := range g.Channels {
		tokens[i] = c.Delay
	}
	inOf := make([][]int, len(g.Actors))
	for i, c := range g.Channels {
		inOf[c.To] = append(inOf[c.To], i)
	}
	canFire := func(a int) bool {
		if remaining[a] == 0 {
			return false
		}
		for _, ci := range inOf[a] {
			if tokens[ci] < g.Channels[ci].Consume {
				return false
			}
		}
		return true
	}
	var order []int
	total := 0
	for _, k := range q {
		total += k
	}
	for len(order) < total {
		fired := false
		for a := range g.Actors {
			if !canFire(a) {
				continue
			}
			for _, ci := range inOf[a] {
				tokens[ci] -= g.Channels[ci].Consume
			}
			for ci, c := range g.Channels {
				if c.From == a {
					tokens[ci] += c.Produce
				}
			}
			remaining[a]--
			order = append(order, a)
			fired = true
		}
		if !fired {
			return nil, fmt.Errorf("%w after %d of %d firings", ErrDeadlock, len(order), total)
		}
	}
	return order, nil
}

// BufferBounds simulates the schedule and reports the maximum token count
// each channel reaches: the statically allocatable buffer sizes.
func (g *Graph) BufferBounds(schedule []int) ([]int, error) {
	tokens := make([]int, len(g.Channels))
	maxTokens := make([]int, len(g.Channels))
	for i, c := range g.Channels {
		tokens[i] = c.Delay
		maxTokens[i] = c.Delay
	}
	for _, a := range schedule {
		for i, c := range g.Channels {
			if c.To == a {
				tokens[i] -= c.Consume
				if tokens[i] < 0 {
					return nil, fmt.Errorf("sdf: schedule underflows channel %d at actor %s", i, g.Actors[a].Name)
				}
			}
		}
		for i, c := range g.Channels {
			if c.From == a {
				tokens[i] += c.Produce
				if tokens[i] > maxTokens[i] {
					maxTokens[i] = tokens[i]
				}
			}
		}
	}
	return maxTokens, nil
}

// Names resolves a schedule to actor names.
func (g *Graph) Names(schedule []int) []string {
	out := make([]string, len(schedule))
	for i, a := range schedule {
		out[i] = g.Actors[a].Name
	}
	return out
}

// ToPetri converts the SDF graph to its marked-graph Petri net: one
// transition per actor, one place per channel, arc weights from the rates,
// initial marking from the delays.
func (g *Graph) ToPetri(name string) *petri.Net {
	b := petri.NewBuilder(name)
	trans := make([]petri.Transition, len(g.Actors))
	used := map[string]int{}
	for i, a := range g.Actors {
		nm := a.Name
		if c := used[nm]; c > 0 {
			nm = fmt.Sprintf("%s_%d", nm, c)
		}
		used[a.Name]++
		trans[i] = b.Transition(nm)
	}
	for i, c := range g.Channels {
		p := b.MarkedPlace(fmt.Sprintf("ch%d_%s_%s", i, g.Actors[c.From].Name, g.Actors[c.To].Name), c.Delay)
		b.WeightedArcTP(trans[c.From], p, c.Produce)
		b.WeightedArc(p, trans[c.To], c.Consume)
	}
	return b.Build()
}

// FromPetri converts a marked-graph Petri net into an SDF graph. Places
// with missing producer or consumer (environment buffers) are skipped: the
// SDF view covers the closed dataflow core. An error is returned when the
// net is not a marked graph.
func FromPetri(n *petri.Net) (*Graph, error) {
	if !n.IsMarkedGraph() {
		return nil, fmt.Errorf("sdf: net %q is not a marked graph", n.Name())
	}
	g := NewGraph()
	for _, t := range n.Transitions() {
		g.AddActor(n.TransitionName(t))
	}
	init := n.InitialMarking()
	for _, p := range n.Places() {
		prod := n.Producers(p)
		cons := n.Consumers(p)
		if len(prod) != 1 || len(cons) != 1 {
			continue
		}
		if err := g.Connect(int(prod[0].Transition), int(cons[0].Transition),
			prod[0].Weight, cons[0].Weight, init[p]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// FlatSchedule renders a schedule as a space-separated actor-name string,
// useful for golden tests.
func (g *Graph) FlatSchedule(schedule []int) string {
	return strings.Join(g.Names(schedule), " ")
}

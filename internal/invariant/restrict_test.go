package invariant

import (
	"reflect"
	"testing"

	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

// adjacentPlaces returns every place some kept transition reads or writes
// — the minimal place set under which RestrictTInvariants is exact.
func adjacentPlaces(n *petri.Net, keepT []petri.Transition) []petri.Place {
	seen := map[petri.Place]bool{}
	var out []petri.Place
	for _, t := range keepT {
		for _, a := range n.Pre(t) {
			if !seen[a.Place] {
				seen[a.Place] = true
				out = append(out, a.Place)
			}
		}
		for _, a := range n.Post(t) {
			if !seen[a.Place] {
				seen[a.Place] = true
				out = append(out, a.Place)
			}
		}
	}
	return out
}

// checkRestriction builds the induced subnet, derives its invariants by
// restriction and differentially compares against a from-scratch Farkas
// run whenever the restriction claims exactness.
func checkRestriction(t *testing.T, n *petri.Net, keepT []petri.Transition, keepP []petri.Place) (exercisedExact bool) {
	t.Helper()
	parentTIs, err := TInvariants(n, Options{})
	if err != nil {
		return false
	}
	sub := n.InducedSubnet("sub", keepT, keepP)
	got, ok := RestrictTInvariants(n, sub, parentTIs)
	if !ok {
		return false
	}
	want, err := TInvariants(sub.Net, Options{})
	if err != nil {
		t.Fatalf("from-scratch invariants failed on restrictable subnet: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restricted invariants diverge from Farkas:\nparent=%v keepT=%v keepP=%v\n got %v\nwant %v",
			parentTIs, keepT, keepP, got, want)
	}
	return true
}

func TestRestrictTInvariantsExactOnAdjacencyClosedSubnets(t *testing.T) {
	exact := 0
	for seed := uint64(1); seed <= 20; seed++ {
		n := netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig())
		// Keep every other transition; keep exactly the adjacent places so
		// the exactness condition holds by construction.
		var keepT []petri.Transition
		for ti := 0; ti < n.NumTransitions(); ti++ {
			if ti%2 == 0 {
				keepT = append(keepT, petri.Transition(ti))
			}
		}
		if checkRestriction(t, n, keepT, adjacentPlaces(n, keepT)) {
			exact++
		}
	}
	if exact == 0 {
		t.Fatal("no seed exercised the exact path")
	}
}

func TestRestrictTInvariantsRefusesDroppedAdjacentPlace(t *testing.T) {
	// t1 -> p -> t2: keeping both transitions but dropping p removes p's
	// equation, so the subnet cone strictly grows (any vector becomes a
	// semiflow) and restriction must refuse.
	b := petri.NewBuilder("line")
	t1 := b.Transition("t1")
	p := b.Place("p")
	t2 := b.Transition("t2")
	b.ArcTP(t1, p)
	b.Arc(p, t2)
	n := b.Build()
	sub := n.InducedSubnet("cut", []petri.Transition{t1, t2}, nil)
	if _, ok := RestrictTInvariants(n, sub, nil); ok {
		t.Fatal("restriction accepted a subnet that dropped an adjacent place")
	}
}

func TestRestrictTInvariantsIdentity(t *testing.T) {
	// Keeping everything restricts to exactly the parent's invariants.
	n := netgen.RandomSchedulablePipeline(7, netgen.DefaultConfig())
	var keepT []petri.Transition
	for ti := 0; ti < n.NumTransitions(); ti++ {
		keepT = append(keepT, petri.Transition(ti))
	}
	var keepP []petri.Place
	for p := 0; p < n.NumPlaces(); p++ {
		keepP = append(keepP, petri.Place(p))
	}
	if !checkRestriction(t, n, keepT, keepP) {
		t.Fatal("identity subnet must be exactly restrictable")
	}
}

// FuzzRestrictTInvariants differentially fuzzes the incremental restriction
// against the from-scratch Farkas reference: whenever RestrictTInvariants
// claims exactness, its output must equal TInvariants on the subnet byte
// for byte (same vectors, same deterministic order). Transition and place
// subsets are driven by the fuzzed masks; the adjacency-closed variant
// guarantees the exact path stays exercised.
func FuzzRestrictTInvariants(f *testing.F) {
	f.Add(uint64(1), uint64(0x55), uint64(0))
	f.Add(uint64(2), uint64(0xff), uint64(0x3))
	f.Add(uint64(9), uint64(0x13), uint64(0x7f))
	f.Fuzz(func(t *testing.T, seed, tMask, pDrop uint64) {
		for _, gen := range []func(uint64, netgen.Config) *petri.Net{
			netgen.RandomSchedulablePipeline,
			netgen.RandomNet,
		} {
			n := gen(seed, netgen.DefaultConfig())
			if n.Validate() != nil {
				continue
			}
			var keepT []petri.Transition
			for ti := 0; ti < n.NumTransitions(); ti++ {
				if tMask&(1<<(uint(ti)%64)) != 0 {
					keepT = append(keepT, petri.Transition(ti))
				}
			}
			parentTIs, err := TInvariants(n, Options{})
			if err != nil {
				continue
			}
			// Variant 1: adjacency-closed place set — must be exact.
			adj := adjacentPlaces(n, keepT)
			sub := n.InducedSubnet("adj", keepT, adj)
			got, ok := RestrictTInvariants(n, sub, parentTIs)
			if !ok {
				t.Fatalf("seed=%d: adjacency-closed subnet refused", seed)
			}
			want, err := TInvariants(sub.Net, Options{})
			if err == nil && !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d tMask=%x: restricted %v != scratch %v", seed, tMask, got, want)
			}
			// Variant 2: drop some adjacent places — restriction must
			// either refuse or still agree with the reference.
			var cut []petri.Place
			for i, p := range adj {
				if pDrop&(1<<(uint(i)%64)) == 0 {
					cut = append(cut, p)
				}
			}
			sub2 := n.InducedSubnet("cut", keepT, cut)
			if got2, ok := RestrictTInvariants(n, sub2, parentTIs); ok {
				want2, err := TInvariants(sub2.Net, Options{})
				if err == nil && !reflect.DeepEqual(got2, want2) {
					t.Fatalf("seed=%d pDrop=%x: claimed-exact restriction diverges: %v != %v",
						seed, pDrop, got2, want2)
				}
			}
		}
	})
}

package invariant

import (
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

func BenchmarkTInvariantsFigure5(b *testing.B) {
	n := figures.Figure5()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TInvariants(n, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankTheorem(b *testing.B) {
	n := figures.Figure3a()
	for i := 0; i < b.N; i++ {
		if _, err := RankTheoremFC(n, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFarkasTiers measures tier residency of the exact-arithmetic
// ladder on an adversarial multirate corpus: arc weights up to 50000 make
// semiflow entries multiply along chains, so the corpus genuinely spreads
// across all three rungs. The reported int64-ops/op, int128-ops/op and
// bigint-fallbacks/op are the per-iteration counts of the ladder's
// linalg/* trace phases — the same figures qssd reports per net — so a
// pruning or limit regression shows up as residency drift, not just time.
func BenchmarkFarkasTiers(b *testing.B) {
	cfg := netgen.DefaultConfig()
	cfg.MaxWeight = 50000
	cfg.MultiratePct = 60
	var nets = make([]*petri.Net, 32)
	for i := range nets {
		nets[i] = netgen.RandomNet(uint64(i+1), cfg)
	}
	b.ReportAllocs()
	tr := trace.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nets {
			opt := Options{Trace: tr}
			// Adversarial synchronising nets may exceed the row cap;
			// tier residency of the attempt is still what we measure.
			if _, err := TInvariants(n, opt); err != nil && err != ErrTooComplex {
				b.Fatal(err)
			}
			if _, err := PInvariants(n, opt); err != nil && err != ErrTooComplex {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	rep := tr.Report()
	for phase, metric := range map[string]string{
		"linalg/int64":  "int64-ops/op",
		"linalg/int128": "int128-ops/op",
		"linalg/bigint": "bigint-fallbacks/op",
	} {
		var count int64
		if ps, ok := rep.Phase(phase); ok {
			count = ps.Count
		}
		b.ReportMetric(float64(count)/float64(b.N), metric)
	}
}

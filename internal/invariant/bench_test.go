package invariant

import (
	"testing"

	"fcpn/internal/figures"
)

func BenchmarkTInvariantsFigure5(b *testing.B) {
	n := figures.Figure5()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TInvariants(n, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankTheorem(b *testing.B) {
	n := figures.Figure3a()
	for i := 0; i < b.N; i++ {
		if _, err := RankTheoremFC(n, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

package invariant

import (
	"sort"

	"fcpn/internal/petri"
)

// Cache memoises minimal-support semiflow computations. Keys are derived
// from the net's canonical structural hash (petri.CanonicalForm), so
// structurally identical nets — regardless of node names or declaration
// order — share entries. Stored rows are in *canonical* index space; the
// cached entry points below translate to and from the requesting net's
// local indices, which is what makes cross-net sharing sound.
//
// Implementations must be safe for concurrent use; internal/engine
// provides the content-addressed implementation. Values handed to Put
// must be treated as immutable afterwards.
type Cache interface {
	// GetSemiflows returns the rows stored under key, if any.
	GetSemiflows(key string) ([][]int, bool)
	// PutSemiflows stores rows under key.
	PutSemiflows(key string, rows [][]int)
}

// Key prefixes distinguishing the semiflow layers inside a shared cache.
const (
	keyTSemiflows = "tsemi:"
	keyPSemiflows = "psemi:"
)

// TInvariantsCached is TInvariants with memoisation: on a hit the minimal
// T-semiflows are rebuilt from the cached canonical rows instead of
// running the Farkas enumeration. The result is byte-identical to the
// uncached computation (same invariants, same deterministic order).
// A nil cache degrades to TInvariants. Errors are never cached.
func TInvariantsCached(n *petri.Net, opt Options, c Cache) ([]TInvariant, error) {
	if c == nil {
		return TInvariants(n, opt)
	}
	cf := n.CanonicalForm()
	key := keyTSemiflows + cf.Hash
	if rows, ok := c.GetSemiflows(key); ok {
		out := make([]TInvariant, len(rows))
		for i, row := range rows {
			counts := make([]int, n.NumTransitions())
			for pos, v := range row {
				counts[cf.TransAt[pos]] = v
			}
			out[i] = TInvariant{Counts: counts}
		}
		// Restore the local-order sort TInvariants guarantees: the cached
		// rows are a permutation of the cold result, so re-sorting yields
		// exactly the cold output.
		sortTInvariants(out)
		return out, nil
	}
	tis, err := TInvariants(n, opt)
	if err != nil {
		return nil, err
	}
	rows := make([][]int, len(tis))
	for i, ti := range tis {
		row := make([]int, n.NumTransitions())
		for t, v := range ti.Counts {
			row[cf.TransPos[t]] = v
		}
		rows[i] = row
	}
	c.PutSemiflows(key, rows)
	return tis, nil
}

// PInvariantsCached is PInvariants with the same memoisation contract as
// TInvariantsCached.
func PInvariantsCached(n *petri.Net, opt Options, c Cache) ([]PInvariant, error) {
	if c == nil {
		return PInvariants(n, opt)
	}
	cf := n.CanonicalForm()
	key := keyPSemiflows + cf.Hash
	if rows, ok := c.GetSemiflows(key); ok {
		out := make([]PInvariant, len(rows))
		for i, row := range rows {
			weights := make([]int, n.NumPlaces())
			for pos, v := range row {
				weights[cf.PlaceAt[pos]] = v
			}
			out[i] = PInvariant{Weights: weights}
		}
		sort.Slice(out, func(i, j int) bool { return lessInts(out[i].Weights, out[j].Weights) })
		return out, nil
	}
	pis, err := PInvariants(n, opt)
	if err != nil {
		return nil, err
	}
	rows := make([][]int, len(pis))
	for i, pi := range pis {
		row := make([]int, n.NumPlaces())
		for p, v := range pi.Weights {
			row[cf.PlacePos[p]] = v
		}
		rows[i] = row
	}
	c.PutSemiflows(key, rows)
	return pis, nil
}

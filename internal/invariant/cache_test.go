package invariant

import (
	"reflect"
	"testing"

	"fcpn/internal/petri"
)

// mapCache is a minimal Cache for tests, counting hits and misses.
type mapCache struct {
	m            map[string][][]int
	hits, misses int
}

func newMapCache() *mapCache { return &mapCache{m: map[string][][]int{}} }

func (c *mapCache) GetSemiflows(key string) ([][]int, bool) {
	rows, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return rows, ok
}

func (c *mapCache) PutSemiflows(key string, rows [][]int) { c.m[key] = rows }

// weightedLoop builds a small multirate net with non-trivial T- and
// P-semiflows, with a rename hook for isomorphism tests.
func weightedLoop(rename func(string) string) *petri.Net {
	if rename == nil {
		rename = func(s string) string { return s }
	}
	b := petri.NewBuilder("loop")
	p1 := b.MarkedPlace(rename("p1"), 2)
	p2 := b.Place(rename("p2"))
	t1 := b.Transition(rename("t1"))
	t2 := b.Transition(rename("t2"))
	b.WeightedArc(p1, t1, 2)
	b.ArcTP(t1, p2)
	b.Arc(p2, t2)
	b.WeightedArcTP(t2, p1, 2)
	return b.Build()
}

func TestTInvariantsCachedMatchesCold(t *testing.T) {
	n := weightedLoop(nil)
	cold, err := TInvariants(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := newMapCache()
	miss, err := TInvariantsCached(n, Options{}, c)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := TInvariantsCached(n, Options{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if c.hits != 1 || c.misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.hits, c.misses)
	}
	if !reflect.DeepEqual(cold, miss) || !reflect.DeepEqual(cold, hit) {
		t.Fatalf("cached results differ from cold:\ncold=%v\nmiss=%v\nhit=%v", cold, miss, hit)
	}
}

func TestPInvariantsCachedMatchesCold(t *testing.T) {
	n := weightedLoop(nil)
	cold, err := PInvariants(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := newMapCache()
	if _, err := PInvariantsCached(n, Options{}, c); err != nil {
		t.Fatal(err)
	}
	hit, err := PInvariantsCached(n, Options{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, hit) {
		t.Fatalf("cached P-invariants differ from cold: %v vs %v", cold, hit)
	}
}

func TestTInvariantsCachedSharesAcrossRenamedNets(t *testing.T) {
	a := weightedLoop(nil)
	b := weightedLoop(func(s string) string { return "x_" + s })
	c := newMapCache()
	if _, err := TInvariantsCached(a, Options{}, c); err != nil {
		t.Fatal(err)
	}
	got, err := TInvariantsCached(b, Options{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if c.hits != 1 {
		t.Fatalf("renamed net did not hit the cache (hits=%d)", c.hits)
	}
	// The hit-path result must be genuine invariants of b.
	want, err := TInvariants(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shared entry produced wrong invariants: %v vs %v", got, want)
	}
	for _, ti := range got {
		if !IsTInvariant(b, ti.Counts) {
			t.Fatalf("not a T-invariant of the hitting net: %v", ti)
		}
	}
}

func TestCachedEntryPointsNilCache(t *testing.T) {
	n := weightedLoop(nil)
	if _, err := TInvariantsCached(n, Options{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := PInvariantsCached(n, Options{}, nil); err != nil {
		t.Fatal(err)
	}
}

package invariant

import "fcpn/internal/petri"

// Unbounded is the sentinel StructuralBounds reports for places covered by
// no P-invariant (no structural bound exists; the place may still be
// bounded behaviourally).
const Unbounded = -1

// StructuralBounds derives per-place token bounds from P-invariants: for a
// semiflow y and any reachable marking μ, y·μ = y·μ0, so
// μ(p) ≤ (y·μ0)/y[p] for every invariant with y[p] > 0. The tightest such
// bound is returned per place; places in no invariant get Unbounded.
//
// The bounds hold for *any* firing policy — they complement the
// schedule-specific bounds of core.Schedule.BufferBounds, which are
// usually tighter but only valid under the computed schedule.
func StructuralBounds(n *petri.Net, pis []PInvariant) []int {
	bounds := make([]int, n.NumPlaces())
	for i := range bounds {
		bounds[i] = Unbounded
	}
	m0 := n.InitialMarking()
	for _, pi := range pis {
		total := pi.TokenSum(m0)
		for p, w := range pi.Weights {
			if w <= 0 {
				continue
			}
			b := total / w
			if bounds[p] == Unbounded || b < bounds[p] {
				bounds[p] = b
			}
		}
	}
	return bounds
}

// StructurallyBounded reports whether every place has a structural bound
// (equivalent to conservativeness coverage).
func StructurallyBounded(n *petri.Net, pis []PInvariant) bool {
	for _, b := range StructuralBounds(n, pis) {
		if b == Unbounded {
			return false
		}
	}
	return n.NumPlaces() > 0
}

package invariant

import "fcpn/internal/petri"

// RestrictTInvariants derives the minimal T-semiflows of an induced subnet
// from the parent net's minimal T-semiflows, without running Farkas again.
//
// It is exact precisely when every place adjacent to a kept transition is
// kept. Under that condition extension-by-zero maps every subnet semiflow
// to a parent semiflow (the dropped places' equations only mention dropped
// transitions, so they hold trivially), and restriction maps every parent
// semiflow supported inside the kept transition set back; the two maps are
// inverse cone isomorphisms, minimal supports correspond, and the Farkas
// GCD normalisation is preserved because restriction keeps the non-zero
// entries unchanged. The result is therefore byte-identical — including
// the deterministic sort order — to a from-scratch TInvariants run on the
// subnet (pinned by FuzzRestrictTInvariants).
//
// When the condition fails — the subnet dropped a place some kept
// transition still reads or writes — a place equation disappears, the
// subnet's semiflow cone can strictly grow, and the restricted set may be
// both incomplete and non-minimal. ok is then false and the caller must
// fall back to the from-scratch computation. (The QSS Hack reduction hits
// this through rule 2(c): removing a transition also removes its source
// input places, which may still feed a surviving consumer.)
func RestrictTInvariants(parent *petri.Net, sub *petri.Subnet, parentTIs []TInvariant) ([]TInvariant, bool) {
	for _, t := range sub.ParentTransition {
		for _, a := range parent.Pre(t) {
			if _, ok := sub.FromParentPlace(a.Place); !ok {
				return nil, false
			}
		}
		for _, a := range parent.Post(t) {
			if _, ok := sub.FromParentPlace(a.Place); !ok {
				return nil, false
			}
		}
	}
	out := make([]TInvariant, 0, len(parentTIs))
	numT := sub.Net.NumTransitions()
	for _, ti := range parentTIs {
		counts := make([]int, numT)
		kept := true
		for t, c := range ti.Counts {
			if c == 0 {
				continue
			}
			st, ok := sub.FromParentTransition(petri.Transition(t))
			if !ok {
				kept = false
				break
			}
			counts[st] = c
		}
		if kept {
			out = append(out, TInvariant{Counts: counts})
		}
	}
	SortTInvariants(out)
	return out, true
}

// SortTInvariants sorts invariants into the package's deterministic order
// (the one TInvariants returns), for callers that assemble invariant sets
// themselves — the restriction above and the isomorphism fan-out of
// internal/core's reduction dedup.
func SortTInvariants(tis []TInvariant) { sortTInvariants(tis) }

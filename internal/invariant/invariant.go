// Package invariant computes structural invariants of Petri nets:
// T-invariants (firing-count vectors f ≥ 0 with fᵀ·D = 0, the candidate
// periods of cyclic schedules) and P-invariants (weightings y ≥ 0 with
// D·y = 0, conserved token sums). It also answers the consistency and
// conservativeness questions built on them.
//
// Minimal-support invariants are computed exactly with the Farkas algorithm
// from internal/linalg; every result is reported as plain []int firing
// counts (invariants of practical nets are small even when intermediate
// arithmetic is not).
package invariant

import (
	"errors"
	"fmt"
	"sort"

	"fcpn/internal/linalg"
	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

// ErrTooComplex is returned when the Farkas enumeration exceeds its row cap.
var ErrTooComplex = errors.New("invariant: semiflow enumeration exceeded size cap")

// TInvariant is one minimal-support T-semiflow: Counts[t] is the number of
// firings of transition t in the invariant.
type TInvariant struct {
	Counts []int
}

// Support returns the transitions with non-zero count, ascending.
func (ti TInvariant) Support() []petri.Transition {
	var out []petri.Transition
	for t, c := range ti.Counts {
		if c != 0 {
			out = append(out, petri.Transition(t))
		}
	}
	return out
}

// Contains reports whether transition t fires in the invariant.
func (ti TInvariant) Contains(t petri.Transition) bool {
	return int(t) < len(ti.Counts) && ti.Counts[t] > 0
}

// TotalFirings is the length of any firing sequence realising the invariant.
func (ti TInvariant) TotalFirings() int {
	sum := 0
	for _, c := range ti.Counts {
		sum += c
	}
	return sum
}

// String renders the invariant as a firing-count vector.
func (ti TInvariant) String() string { return fmt.Sprint(ti.Counts) }

// PInvariant is one minimal-support P-semiflow: Weights[p] is the weight of
// place p in the conserved sum Σ Weights[p]·μ(p).
type PInvariant struct {
	Weights []int
}

// Support returns the places with non-zero weight, ascending.
func (pi PInvariant) Support() []petri.Place {
	var out []petri.Place
	for p, w := range pi.Weights {
		if w != 0 {
			out = append(out, petri.Place(p))
		}
	}
	return out
}

// TokenSum evaluates the conserved weighted token sum at marking m.
func (pi PInvariant) TokenSum(m petri.Marking) int {
	sum := 0
	for p, w := range pi.Weights {
		sum += w * m[p]
	}
	return sum
}

// String renders the invariant as a weight vector.
func (pi PInvariant) String() string { return fmt.Sprint(pi.Weights) }

// Options bounds the exact enumeration.
type Options struct {
	// MaxRows caps intermediate Farkas rows; 0 means the package default.
	MaxRows int
	// Trace optionally records one "invariant/farkas" detail span per
	// Farkas enumeration. Nil disables collection.
	Trace *trace.Tracer
}

// TInvariants returns all minimal-support T-semiflows of the net, sorted by
// support then counts for determinism.
func TInvariants(n *petri.Net, opt Options) ([]TInvariant, error) {
	// Equations: one per place, variables are transitions.
	d := n.IncidenceMatrix()
	a := linalg.NewMat(n.NumPlaces(), n.NumTransitions())
	for t := 0; t < n.NumTransitions(); t++ {
		for p := 0; p < n.NumPlaces(); p++ {
			a.Data[p][t].SetInt64(int64(d[t][p]))
		}
	}
	sp := opt.Trace.StartDetail("invariant/farkas")
	vecs, ok := linalg.MinimalSemiflowsTraced(a, opt.MaxRows, opt.Trace)
	sp.End()
	if !ok {
		return nil, ErrTooComplex
	}
	out := make([]TInvariant, 0, len(vecs))
	for _, v := range vecs {
		counts, fits := v.Ints()
		if !fits {
			return nil, fmt.Errorf("invariant: T-semiflow does not fit in int: %v", v)
		}
		out = append(out, TInvariant{Counts: counts})
	}
	sortTInvariants(out)
	return out, nil
}

// PInvariants returns all minimal-support P-semiflows of the net, sorted
// deterministically.
func PInvariants(n *petri.Net, opt Options) ([]PInvariant, error) {
	// Equations: one per transition, variables are places.
	d := n.IncidenceMatrix()
	a := linalg.NewMat(n.NumTransitions(), n.NumPlaces())
	for t := 0; t < n.NumTransitions(); t++ {
		for p := 0; p < n.NumPlaces(); p++ {
			a.Data[t][p].SetInt64(int64(d[t][p]))
		}
	}
	sp := opt.Trace.StartDetail("invariant/farkas")
	vecs, ok := linalg.MinimalSemiflowsTraced(a, opt.MaxRows, opt.Trace)
	sp.End()
	if !ok {
		return nil, ErrTooComplex
	}
	out := make([]PInvariant, 0, len(vecs))
	for _, v := range vecs {
		weights, fits := v.Ints()
		if !fits {
			return nil, fmt.Errorf("invariant: P-semiflow does not fit in int: %v", v)
		}
		out = append(out, PInvariant{Weights: weights})
	}
	sort.Slice(out, func(i, j int) bool { return lessInts(out[i].Weights, out[j].Weights) })
	return out, nil
}

// Consistent reports whether the net is consistent (Definition 2.1): there
// exists f > 0 (strictly positive on every transition) with fᵀ·D = 0.
// A net is consistent iff the sum of its minimal T-semiflows has full
// support, so the provided invariants (from TInvariants) decide the
// question exactly.
func Consistent(n *petri.Net, tis []TInvariant) bool {
	covered := make([]bool, n.NumTransitions())
	for _, ti := range tis {
		for t, c := range ti.Counts {
			if c > 0 {
				covered[t] = true
			}
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return n.NumTransitions() > 0
}

// Conservative reports whether there exists y > 0 with D·y = 0 (every
// place in some P-semiflow), the P-side dual of consistency.
func Conservative(n *petri.Net, pis []PInvariant) bool {
	covered := make([]bool, n.NumPlaces())
	for _, pi := range pis {
		for p, w := range pi.Weights {
			if w > 0 {
				covered[p] = true
			}
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return n.NumPlaces() > 0
}

// UncoveredTransitions lists the transitions not contained in any of the
// given T-invariants: the witnesses of inconsistency.
func UncoveredTransitions(n *petri.Net, tis []TInvariant) []petri.Transition {
	covered := make([]bool, n.NumTransitions())
	for _, ti := range tis {
		for t, c := range ti.Counts {
			if c > 0 {
				covered[t] = true
			}
		}
	}
	var out []petri.Transition
	for t, c := range covered {
		if !c {
			out = append(out, petri.Transition(t))
		}
	}
	return out
}

// IsTInvariant verifies fᵀ·D = 0 directly for an arbitrary firing-count
// vector (not necessarily minimal).
func IsTInvariant(n *petri.Net, counts []int) bool {
	if len(counts) != n.NumTransitions() {
		return false
	}
	d := n.IncidenceMatrix()
	for p := 0; p < n.NumPlaces(); p++ {
		sum := 0
		for t := 0; t < n.NumTransitions(); t++ {
			sum += counts[t] * d[t][p]
		}
		if sum != 0 {
			return false
		}
	}
	return true
}

func sortTInvariants(tis []TInvariant) {
	sort.Slice(tis, func(i, j int) bool { return lessInts(tis[i].Counts, tis[j].Counts) })
}

func lessInts(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] > b[i] // put vectors with earlier support first
		}
	}
	return len(a) < len(b)
}

package invariant

import (
	"reflect"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/petri"
)

func tinvs(t *testing.T, n *petri.Net) []TInvariant {
	t.Helper()
	tis, err := TInvariants(n, Options{})
	if err != nil {
		t.Fatalf("TInvariants(%s): %v", n.Name(), err)
	}
	return tis
}

func TestFigure2TInvariant(t *testing.T) {
	n := figures.Figure2()
	tis := tinvs(t, n)
	if len(tis) != 1 {
		t.Fatalf("got %d invariants, want 1: %v", len(tis), tis)
	}
	if want := []int{4, 2, 1}; !reflect.DeepEqual(tis[0].Counts, want) {
		t.Fatalf("f(σ) = %v, want %v (paper Figure 2)", tis[0].Counts, want)
	}
	if !Consistent(n, tis) {
		t.Fatal("figure 2 net is consistent")
	}
	if tis[0].TotalFirings() != 7 {
		t.Fatalf("TotalFirings = %d", tis[0].TotalFirings())
	}
}

func TestFigure3aTInvariants(t *testing.T) {
	n := figures.Figure3a()
	tis := tinvs(t, n)
	if len(tis) != 2 {
		t.Fatalf("got %d invariants: %v", len(tis), tis)
	}
	want := map[string]bool{"[1 1 0 1 0]": true, "[1 0 1 0 1]": true}
	for _, ti := range tis {
		if !want[ti.String()] {
			t.Fatalf("unexpected invariant %v (paper: a(1,1,0,1,0)+b(1,0,1,0,1))", ti)
		}
	}
	if !Consistent(n, tis) {
		t.Fatal("figure 3a is consistent")
	}
}

func TestFigure3bTInvariants(t *testing.T) {
	n := figures.Figure3b()
	tis := tinvs(t, n)
	if len(tis) != 1 {
		t.Fatalf("got %d invariants: %v", len(tis), tis)
	}
	if want := []int{2, 1, 1, 1}; !reflect.DeepEqual(tis[0].Counts, want) {
		t.Fatalf("f = %v, want %v (paper Figure 3b)", tis[0].Counts, want)
	}
	// Consistent as a whole — non-schedulability of 3b comes from the
	// reductions, not from inconsistency of the full net.
	if !Consistent(n, tis) {
		t.Fatal("figure 3b is consistent as a whole net")
	}
}

func TestFigure5TInvariants(t *testing.T) {
	n := figures.Figure5()
	tis := tinvs(t, n)
	// Paper (discussion of R1): (1,1,0,2,0,4,0,0,0) and (0,0,0,0,0,1,0,1,1)
	// are invariants of the reduction; both are also minimal invariants of
	// the full net, along with the t3-branch flow (1,0,1,0,1,0,2,0,0).
	want := map[string]bool{
		"[1 1 0 2 0 4 0 0 0]": true,
		"[0 0 0 0 0 1 0 1 1]": true,
		"[1 0 1 0 1 0 2 0 0]": true,
	}
	if len(tis) != len(want) {
		t.Fatalf("got %d invariants: %v", len(tis), tis)
	}
	for _, ti := range tis {
		if !want[ti.String()] {
			t.Fatalf("unexpected invariant %v", ti)
		}
	}
	if !Consistent(n, tis) {
		t.Fatal("figure 5 is consistent")
	}
}

func TestFigure7Inconsistency(t *testing.T) {
	n := figures.Figure7()
	tis := tinvs(t, n)
	// The full net IS consistent ((2,1,1,1,1,1,1) balances); the
	// inconsistency appears only in the reductions (tested in core).
	if !Consistent(n, tis) {
		t.Fatalf("figure 7 full net should be consistent, invariants: %v", tis)
	}
}

func TestInconsistentNet(t *testing.T) {
	// A chain place -> t with no producer: f(t) must be 0.
	b := petri.NewBuilder("inconsistent")
	p := b.Place("p")
	tr := b.Transition("t")
	b.Arc(p, tr)
	n := b.Build()
	tis := tinvs(t, n)
	if len(tis) != 0 {
		t.Fatalf("expected no invariants, got %v", tis)
	}
	if Consistent(n, tis) {
		t.Fatal("net must be inconsistent")
	}
	un := UncoveredTransitions(n, tis)
	if len(un) != 1 || un[0] != tr {
		t.Fatalf("UncoveredTransitions = %v", un)
	}
}

func TestTInvariantHelpers(t *testing.T) {
	ti := TInvariant{Counts: []int{2, 0, 1}}
	if got := ti.Support(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Support = %v", got)
	}
	if !ti.Contains(0) || ti.Contains(1) || ti.Contains(99) {
		t.Fatal("Contains wrong")
	}
}

func TestIsTInvariant(t *testing.T) {
	n := figures.Figure3a()
	if !IsTInvariant(n, []int{1, 1, 0, 1, 0}) {
		t.Fatal("(1,1,0,1,0) is an invariant of fig3a")
	}
	if !IsTInvariant(n, []int{2, 1, 1, 1, 1}) {
		t.Fatal("sums of invariants are invariants")
	}
	if IsTInvariant(n, []int{1, 0, 0, 0, 0}) {
		t.Fatal("(1,0,0,0,0) is not an invariant")
	}
	if IsTInvariant(n, []int{1}) {
		t.Fatal("length mismatch accepted")
	}
}

func TestPInvariants(t *testing.T) {
	// Closed cycle t1 -> p -> t2 -> q -> t1 conserves tokens: p+q const.
	b := petri.NewBuilder("cycle")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	p := b.MarkedPlace("p", 1)
	q := b.Place("q")
	b.Chain(t1, p, t2, q, t1)
	n := b.Build()
	pis, err := PInvariants(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pis) != 1 {
		t.Fatalf("PInvariants = %v", pis)
	}
	if want := []int{1, 1}; !reflect.DeepEqual(pis[0].Weights, want) {
		t.Fatalf("weights = %v", pis[0].Weights)
	}
	if !Conservative(n, pis) {
		t.Fatal("cycle is conservative")
	}
	if got := pis[0].TokenSum(n.InitialMarking()); got != 1 {
		t.Fatalf("TokenSum = %d", got)
	}
	if got := pis[0].Support(); len(got) != 2 {
		t.Fatalf("Support = %v", got)
	}

	// The conserved sum is invariant under firing.
	m := n.InitialMarking()
	n.MustFire(m, t2)
	if pis[0].TokenSum(m) != 1 {
		t.Fatalf("token sum changed by firing: %v", m)
	}
}

func TestOpenNetNotConservative(t *testing.T) {
	n := figures.Figure3a()
	pis, err := PInvariants(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Conservative(n, pis) {
		t.Fatal("net with sources and sinks cannot be conservative")
	}
}

func TestTooComplexPropagates(t *testing.T) {
	n := figures.Figure5()
	if _, err := TInvariants(n, Options{MaxRows: 1}); err == nil {
		t.Fatal("tiny cap must error")
	}
}

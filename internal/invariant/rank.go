package invariant

import (
	"fcpn/internal/linalg"
	"fcpn/internal/petri"
)

// RankTheoremReport holds the ingredients of the free-choice rank theorem.
type RankTheoremReport struct {
	// Consistent: ∃ f > 0 with fᵀD = 0.
	Consistent bool
	// Conservative: ∃ y > 0 with D·y = 0.
	Conservative bool
	// Rank is rank(D) of the |T|×|P| incidence matrix.
	Rank int
	// Clusters is the number of equal-conflict clusters.
	Clusters int
	// WellFormed is the theorem's verdict: a connected free-choice net has
	// a live and bounded marking iff it is consistent, conservative and
	// rank(D) = clusters − 1 (Desel–Esparza rank theorem).
	WellFormed bool
}

// RankTheoremFC evaluates the rank theorem for free-choice nets. The
// verdict is only meaningful for weakly connected FC nets; the report
// fields are informative for any net. Embedded-system nets with source
// and sink transitions are never conservative, hence never well-formed —
// exactly why the paper replaces well-formedness with quasi-static
// schedulability.
func RankTheoremFC(n *petri.Net, opt Options) (*RankTheoremReport, error) {
	tis, err := TInvariants(n, opt)
	if err != nil {
		return nil, err
	}
	pis, err := PInvariants(n, opt)
	if err != nil {
		return nil, err
	}
	d := n.IncidenceMatrix()
	m, err := linalg.MatFromInts(d)
	if err != nil {
		return nil, err
	}
	r := &RankTheoremReport{
		Consistent:   Consistent(n, tis),
		Conservative: Conservative(n, pis),
		Rank:         linalg.RankTraced(m, opt.Trace),
		Clusters:     len(n.ConflictClusters()),
	}
	r.WellFormed = r.Consistent && r.Conservative && r.Rank == r.Clusters-1
	return r, nil
}

package invariant

import (
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/petri"
	"fcpn/internal/reach"
)

func TestStructuralBoundsCycle(t *testing.T) {
	// Cycle with 3 tokens: each place bounded by 3.
	b := petri.NewBuilder("cyc")
	p := b.MarkedPlace("p", 3)
	q := b.Place("q")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	b.Chain(p, t1, q, t2, p)
	n := b.Build()
	pis, err := PInvariants(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounds := StructuralBounds(n, pis)
	if bounds[p] != 3 || bounds[q] != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	if !StructurallyBounded(n, pis) {
		t.Fatal("cycle is structurally bounded")
	}
}

func TestStructuralBoundsWeighted(t *testing.T) {
	// credit(2) -> t1 -> p1 -2-> t2 -2-> credit: invariant 2·p1 + credit?
	// Check the derived bound against the exact behavioural bound.
	b := petri.NewBuilder("w")
	credit := b.MarkedPlace("credit", 2)
	p1 := b.Place("p1")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	b.Arc(credit, t1)
	b.ArcTP(t1, p1)
	b.WeightedArc(p1, t2, 2)
	b.WeightedArcTP(t2, credit, 2)
	n := b.Build()
	pis, err := PInvariants(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounds := StructuralBounds(n, pis)
	exactCredit, err := reach.KBound(n, n.InitialMarking())
	if err != nil {
		t.Fatal(err)
	}
	if bounds[credit] < exactCredit || bounds[p1] < 2 {
		t.Fatalf("structural bounds %v must dominate exact k-bound %d", bounds, exactCredit)
	}
	// Invariant: credit + p1 is conserved at 2 (weights 1,1).
	if bounds[p1] != 2 || bounds[credit] != 2 {
		t.Fatalf("bounds = %v, want [2 2]", bounds)
	}
}

func TestStructuralBoundsOpenNet(t *testing.T) {
	// Nets with sources have no P-invariants covering the fed places.
	n := figures.Figure3a()
	pis, err := PInvariants(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounds := StructuralBounds(n, pis)
	for p, bd := range bounds {
		if bd != Unbounded {
			t.Fatalf("place %s has structural bound %d in an open net",
				n.PlaceName(petri.Place(p)), bd)
		}
	}
	if StructurallyBounded(n, pis) {
		t.Fatal("open net cannot be structurally bounded")
	}
}

// Property: structural bounds are sound — no reachable marking of a
// bounded closed net exceeds them.
func TestStructuralBoundsSound(t *testing.T) {
	b := petri.NewBuilder("two")
	p := b.MarkedPlace("p", 2)
	q := b.Place("q")
	r := b.MarkedPlace("r", 1)
	s := b.Place("s")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	t4 := b.Transition("t4")
	b.Chain(p, t1, q, t2, p)
	b.Chain(r, t3, s, t4, r)
	n := b.Build()
	pis, err := PInvariants(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounds := StructuralBounds(n, pis)
	g, err := reach.BuildGraph(n, n.InitialMarking(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range g.Markings {
		for pl, k := range m {
			if bounds[pl] != Unbounded && k > bounds[pl] {
				t.Fatalf("marking %v exceeds structural bound %v", m, bounds)
			}
		}
	}
}

func TestRankTheoremMarkedGraphCycle(t *testing.T) {
	// A connected marked-graph cycle is the canonical well-formed FC net.
	b := petri.NewBuilder("wf")
	p := b.MarkedPlace("p", 1)
	q := b.Place("q")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	b.Chain(p, t1, q, t2, p)
	rep, err := RankTheoremFC(b.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 clusters ({t1},{t2}), rank(D) = 1, consistent, conservative.
	if !rep.WellFormed || rep.Rank != 1 || rep.Clusters != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRankTheoremOpenNet(t *testing.T) {
	rep, err := RankTheoremFC(figures.Figure3a(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WellFormed {
		t.Fatal("open nets are never well-formed")
	}
	if rep.Conservative {
		t.Fatal("open nets are not conservative")
	}
	if !rep.Consistent {
		t.Fatal("figure 3a is consistent")
	}
}

func TestRankTheoremChoiceCycle(t *testing.T) {
	// Free-choice state machine: idle -> (work|skip) -> idle, 1 token.
	// Clusters: {poll}? No: the SM has choice at 'decide'. Build:
	b := petri.NewBuilder("sm")
	idle := b.MarkedPlace("idle", 1)
	decide := b.Place("decide")
	poll := b.Transition("poll")
	work := b.Transition("work")
	skip := b.Transition("skip")
	b.Chain(idle, poll, decide)
	b.Arc(decide, work)
	b.Arc(decide, skip)
	b.ArcTP(work, idle)
	b.ArcTP(skip, idle)
	rep, err := RankTheoremFC(b.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Clusters: {poll}, {work,skip} → 2; rank(D) must be 1.
	if !rep.WellFormed {
		t.Fatalf("choice cycle must be well-formed: %+v", rep)
	}
}

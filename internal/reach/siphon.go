package reach

import (
	"sort"

	"fcpn/internal/petri"
)

// PlaceSet is a set of places represented as a sorted slice.
type PlaceSet []petri.Place

func newPlaceSet(ps map[petri.Place]bool) PlaceSet {
	out := make(PlaceSet, 0, len(ps))
	for p, in := range ps {
		if in {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether p is in the set.
func (s PlaceSet) Contains(p petri.Place) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	return i < len(s) && s[i] == p
}

// IsSiphon reports whether the place set S is a siphon: •S ⊆ S•, i.e.
// every transition producing into S also consumes from S. Once a siphon is
// emptied it stays empty.
func IsSiphon(n *petri.Net, s PlaceSet) bool {
	if len(s) == 0 {
		return false
	}
	consumers := map[petri.Transition]bool{}
	for _, p := range s {
		for _, ta := range n.Consumers(p) {
			consumers[ta.Transition] = true
		}
	}
	for _, p := range s {
		for _, ta := range n.Producers(p) {
			if !consumers[ta.Transition] {
				return false
			}
		}
	}
	return true
}

// IsTrap reports whether the place set S is a trap: S• ⊆ •S, i.e. every
// transition consuming from S also produces into S. Once a trap is marked
// it stays marked.
func IsTrap(n *petri.Net, s PlaceSet) bool {
	if len(s) == 0 {
		return false
	}
	producers := map[petri.Transition]bool{}
	for _, p := range s {
		for _, ta := range n.Producers(p) {
			producers[ta.Transition] = true
		}
	}
	for _, p := range s {
		for _, ta := range n.Consumers(p) {
			if !producers[ta.Transition] {
				return false
			}
		}
	}
	return true
}

// MinimalSiphons enumerates the minimal (w.r.t. inclusion) siphons of the
// net, capped at maxCount results (0 ⇒ 10000). The enumeration recursively
// shrinks the full place set; nets used in embedded-software models are
// small enough for this to be exact.
func MinimalSiphons(n *petri.Net, maxCount int) []PlaceSet {
	if maxCount <= 0 {
		maxCount = 10000
	}
	var results []PlaceSet
	seen := map[string]bool{}

	// reduceToSiphon shrinks a candidate set to a siphon by repeatedly
	// removing places whose producers are not covered; returns nil if it
	// collapses to empty.
	var siphons func(current map[petri.Place]bool)
	siphons = func(current map[petri.Place]bool) {
		if len(results) >= maxCount {
			return
		}
		s := newPlaceSet(current)
		if len(s) == 0 || !IsSiphon(n, s) {
			return
		}
		key := s.key()
		if seen[key] {
			return
		}
		seen[key] = true
		// Try to shrink: remove each place and re-close.
		shrunk := false
		for _, p := range s {
			sub := map[petri.Place]bool{}
			for _, q := range s {
				if q != p {
					sub[q] = true
				}
			}
			closeSiphon(n, sub)
			if len(sub) > 0 {
				ss := newPlaceSet(sub)
				if IsSiphon(n, ss) && len(ss) < len(s) {
					shrunk = true
					siphons(sub)
				}
			}
		}
		if !shrunk {
			results = append(results, s)
		}
	}

	all := map[petri.Place]bool{}
	for _, p := range n.Places() {
		all[p] = true
	}
	closeSiphon(n, all)
	siphons(all)

	// Filter to minimal sets (recursive shrinking can record both a set
	// and a subset when branches differ).
	var minimal []PlaceSet
	for i, s := range results {
		isMin := true
		for j, u := range results {
			if i != j && subsetOf(u, s) && len(u) < len(s) {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, s)
		}
	}
	sort.Slice(minimal, func(i, j int) bool { return minimal[i].key() < minimal[j].key() })
	return dedupe(minimal)
}

// closeSiphon removes places from the candidate set until every remaining
// place's producers all consume from the set (greatest siphon inside the
// candidate).
func closeSiphon(n *petri.Net, s map[petri.Place]bool) {
	for changed := true; changed; {
		changed = false
		consumers := map[petri.Transition]bool{}
		for p, in := range s {
			if !in {
				continue
			}
			for _, ta := range n.Consumers(p) {
				consumers[ta.Transition] = true
			}
		}
		for p, in := range s {
			if !in {
				continue
			}
			for _, ta := range n.Producers(p) {
				if !consumers[ta.Transition] {
					delete(s, p)
					changed = true
					break
				}
			}
		}
	}
}

// MaximalTrapIn returns the greatest trap contained in the place set s
// (possibly empty): repeatedly remove places with a consumer that does not
// produce back into the set.
func MaximalTrapIn(n *petri.Net, s PlaceSet) PlaceSet {
	cur := map[petri.Place]bool{}
	for _, p := range s {
		cur[p] = true
	}
	for changed := true; changed; {
		changed = false
		producers := map[petri.Transition]bool{}
		for p, in := range cur {
			if !in {
				continue
			}
			for _, ta := range n.Producers(p) {
				producers[ta.Transition] = true
			}
		}
		for p, in := range cur {
			if !in {
				continue
			}
			for _, ta := range n.Consumers(p) {
				if !producers[ta.Transition] {
					delete(cur, p)
					changed = true
					break
				}
			}
		}
	}
	return newPlaceSet(cur)
}

// CommonerHolds checks Commoner's condition at marking m0: every minimal
// siphon contains a trap that is marked at m0. For ordinary (unit-weight)
// free-choice nets this is equivalent to liveness (Commoner's theorem);
// for the open weighted nets of embedded models it is a useful structural
// health check rather than a full decision procedure.
func CommonerHolds(n *petri.Net, m0 petri.Marking, maxSiphons int) bool {
	for _, s := range MinimalSiphons(n, maxSiphons) {
		trap := MaximalTrapIn(n, s)
		marked := false
		for _, p := range trap {
			if m0[p] > 0 {
				marked = true
				break
			}
		}
		if !marked {
			return false
		}
	}
	return true
}

func (s PlaceSet) key() string {
	b := make([]byte, 0, len(s)*3)
	for _, p := range s {
		b = appendPlace(b, int(p))
		b = append(b, ',')
	}
	return string(b)
}

func appendPlace(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, buf[i:]...)
}

func subsetOf(a, b PlaceSet) bool {
	for _, p := range a {
		if !b.Contains(p) {
			return false
		}
	}
	return true
}

func dedupe(sets []PlaceSet) []PlaceSet {
	var out []PlaceSet
	last := ""
	for _, s := range sets {
		k := s.key()
		if k != last {
			out = append(out, s)
			last = k
		}
	}
	return out
}

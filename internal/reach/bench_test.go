package reach

import (
	"testing"

	"fcpn/internal/petri"
)

// tokenRing builds a marked ring with k stages and 2 tokens: a state space
// of Θ(k²) markings.
func tokenRing(k int) *petri.Net {
	b := petri.NewBuilder("ring")
	first := b.MarkedPlace("p0", 2)
	prev := first
	for i := 1; i <= k; i++ {
		t := b.Transition(tn("t", i))
		if i == k {
			b.Chain(prev, t, first)
		} else {
			p := b.Place(tn("p", i))
			b.Chain(prev, t, p)
			prev = p
		}
	}
	return b.Build()
}

func tn(prefix string, i int) string {
	var digits []byte
	if i == 0 {
		digits = []byte{'0'}
	}
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return prefix + string(digits)
}

func BenchmarkReachabilityGraph(b *testing.B) {
	n := tokenRing(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildGraph(n, n.InitialMarking(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKarpMiller(b *testing.B) {
	n := tokenRing(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCoverabilityTree(n, n.InitialMarking(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimalSiphons(b *testing.B) {
	n := tokenRing(8)
	for i := 0; i < b.N; i++ {
		MinimalSiphons(n, 0)
	}
}

package reach

import (
	"context"
	"errors"
	"testing"

	"fcpn/internal/figures"
)

// TestBuildGraphCancelled checks the explicit exploration stops at the
// next expanded marking with the installed cause intact.
func TestBuildGraphCancelled(t *testing.T) {
	cause := errors.New("test: deadline")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)

	n := figures.Figure5()
	if _, err := BuildGraph(n, n.InitialMarking(), Options{Ctx: ctx}); !errors.Is(err, cause) {
		t.Fatalf("BuildGraph ignored cancellation: %v", err)
	}
	if _, err := Reachable(n, n.InitialMarking(), n.InitialMarking(), Options{Ctx: ctx}); !errors.Is(err, cause) {
		t.Fatalf("Reachable ignored cancellation: %v", err)
	}
	// A live context changes nothing: figure 5 is open (source
	// transitions), so the un-cancelled exploration runs into the state
	// cap — the pre-existing behaviour — rather than any cancellation.
	_, err := BuildGraph(n, n.InitialMarking(), Options{Ctx: context.Background(), MaxStates: 500})
	if !errors.Is(err, ErrStateSpaceExceeded) || errors.Is(err, cause) {
		t.Fatalf("live ctx changed exploration: %v", err)
	}
}

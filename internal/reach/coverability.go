package reach

import (
	"fmt"

	"fcpn/internal/petri"
)

// Omega is the ω token count of the Karp–Miller construction: "unboundedly
// many". Any count at or above this sentinel behaves as ω.
const Omega = int(^uint(0) >> 2) // large enough to never be reached by real nets

// CoverabilityNode is one node of the Karp–Miller tree, with ω entries
// represented by the Omega sentinel.
type CoverabilityNode struct {
	Marking petri.Marking
	Parent  int // -1 for the root
	Via     petri.Transition
}

// CoverabilityTree is the Karp–Miller tree of (n, m0). It is finite for
// every net and decides boundedness exactly: the net is unbounded iff some
// node contains an ω.
type CoverabilityTree struct {
	Nodes []CoverabilityNode
}

// Bounded reports whether no node contains ω.
func (ct *CoverabilityTree) Bounded() bool {
	for _, nd := range ct.Nodes {
		for _, k := range nd.Marking {
			if k >= Omega {
				return false
			}
		}
	}
	return true
}

// UnboundedPlaces returns the places that acquire ω somewhere in the tree.
func (ct *CoverabilityTree) UnboundedPlaces() []petri.Place {
	unb := map[petri.Place]bool{}
	for _, nd := range ct.Nodes {
		for p, k := range nd.Marking {
			if k >= Omega {
				unb[petri.Place(p)] = true
			}
		}
	}
	var out []petri.Place
	for p := petri.Place(0); int(p) < placesLen(ct); p++ {
		if unb[p] {
			out = append(out, p)
		}
	}
	return out
}

func placesLen(ct *CoverabilityTree) int {
	if len(ct.Nodes) == 0 {
		return 0
	}
	return len(ct.Nodes[0].Marking)
}

// Bound returns the maximum token count place p reaches in the tree, or
// -1 when p is unbounded.
func (ct *CoverabilityTree) Bound(p petri.Place) int {
	max := 0
	for _, nd := range ct.Nodes {
		if nd.Marking[p] >= Omega {
			return -1
		}
		if nd.Marking[p] > max {
			max = nd.Marking[p]
		}
	}
	return max
}

// BuildCoverabilityTree constructs the Karp–Miller tree. maxNodes caps the
// construction defensively (the tree is always finite but can be large);
// pass 0 for the default of 200000.
func BuildCoverabilityTree(n *petri.Net, m0 petri.Marking, maxNodes int) (*CoverabilityTree, error) {
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	ct := &CoverabilityTree{}
	ct.Nodes = append(ct.Nodes, CoverabilityNode{Marking: m0.Clone(), Parent: -1})
	seen := map[string]bool{m0.Key(): true}

	enabledOmega := func(m petri.Marking, t petri.Transition) bool {
		for _, a := range n.Pre(t) {
			if m[a.Place] < a.Weight { // ω ≥ any weight because Omega is huge
				return false
			}
		}
		return true
	}
	fireOmega := func(m petri.Marking, t petri.Transition) petri.Marking {
		out := m.Clone()
		for _, a := range n.Pre(t) {
			if out[a.Place] < Omega {
				out[a.Place] -= a.Weight
			}
		}
		for _, a := range n.Post(t) {
			if out[a.Place] < Omega {
				out[a.Place] += a.Weight
				if out[a.Place] >= Omega {
					out[a.Place] = Omega
				}
			}
		}
		return out
	}

	for head := 0; head < len(ct.Nodes); head++ {
		cur := ct.Nodes[head]
		for t := petri.Transition(0); int(t) < n.NumTransitions(); t++ {
			if !enabledOmega(cur.Marking, t) {
				continue
			}
			next := fireOmega(cur.Marking, t)
			// ω-acceleration: if an ancestor is strictly covered by next,
			// promote the strictly larger components to ω.
			for anc := head; anc != -1; anc = ct.Nodes[anc].Parent {
				am := ct.Nodes[anc].Marking
				if next.Covers(am) && !next.Equal(am) {
					for p := range next {
						if next[p] > am[p] {
							next[p] = Omega
						}
					}
				}
			}
			k := next.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			ct.Nodes = append(ct.Nodes, CoverabilityNode{Marking: next, Parent: head, Via: t})
			if len(ct.Nodes) > maxNodes {
				return nil, fmt.Errorf("reach: coverability tree exceeds %d nodes", maxNodes)
			}
		}
	}
	return ct, nil
}

// Boundedness decides whether (n, m0) is bounded, via Karp–Miller.
func Boundedness(n *petri.Net, m0 petri.Marking) (bool, error) {
	ct, err := BuildCoverabilityTree(n, m0, 0)
	if err != nil {
		return false, err
	}
	return ct.Bounded(), nil
}

// KBound returns the smallest k such that the net is k-bounded, or -1 if it
// is unbounded.
func KBound(n *petri.Net, m0 petri.Marking) (int, error) {
	ct, err := BuildCoverabilityTree(n, m0, 0)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, nd := range ct.Nodes {
		for _, k := range nd.Marking {
			if k >= Omega {
				return -1, nil
			}
			if k > max {
				max = k
			}
		}
	}
	return max, nil
}

// Coverable reports whether some reachable marking covers target
// (componentwise ≥), decided exactly on the Karp–Miller tree: target is
// coverable iff some node's (possibly ω-extended) marking covers it.
func Coverable(n *petri.Net, m0, target petri.Marking) (bool, error) {
	ct, err := BuildCoverabilityTree(n, m0, 0)
	if err != nil {
		return false, err
	}
	for _, nd := range ct.Nodes {
		if nd.Marking.Covers(target) {
			return true, nil
		}
	}
	return false, nil
}

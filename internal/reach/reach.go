// Package reach implements behavioural analysis of Petri nets: explicit
// reachability graphs for bounded exploration, the Karp–Miller coverability
// tree for exact boundedness decisions, deadlock detection, liveness on
// bounded nets, and the siphon/trap structural analysis underlying
// Commoner's liveness condition for free-choice nets.
package reach

import (
	"context"
	"errors"
	"fmt"

	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

// ErrStateSpaceExceeded is returned when exploration hits the state cap.
var ErrStateSpaceExceeded = errors.New("reach: state space exceeds configured limit")

// Options bounds explicit exploration.
type Options struct {
	// MaxStates caps the number of distinct markings explored; 0 means the
	// package default of 100000.
	MaxStates int
	// Trace optionally records one "reach/graph" detail span per explicit
	// state-space exploration. Nil disables collection.
	Trace *trace.Tracer
	// Ctx optionally cancels exploration: when done, the search returns
	// an error wrapping context.Cause(Ctx) at the next expanded marking,
	// so a per-job deadline bounds even explorations well under
	// MaxStates. Nil never cancels.
	Ctx context.Context
}

func (o Options) maxStates() int {
	if o.MaxStates <= 0 {
		return 100000
	}
	return o.MaxStates
}

// cancelled returns nil while o.Ctx is live and an error wrapping
// context.Cause once it is done.
func (o Options) cancelled() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return fmt.Errorf("reach: exploration cancelled: %w", context.Cause(o.Ctx))
	default:
		return nil
	}
}

// Edge is one transition firing in the reachability graph.
type Edge struct {
	From, To   int
	Transition petri.Transition
}

// Graph is an explicit reachability graph: nodes are markings, edges are
// firings. Node 0 is the initial marking.
type Graph struct {
	Markings []petri.Marking
	Edges    []Edge
	// Succ[i] lists the indices into Edges of node i's outgoing edges.
	Succ [][]int
}

// NumStates reports the number of distinct reachable markings.
func (g *Graph) NumStates() int { return len(g.Markings) }

// DeadlockStates returns the node indices with no outgoing edges.
func (g *Graph) DeadlockStates() []int {
	var out []int
	for i := range g.Markings {
		if len(g.Succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// BuildGraph explores the reachability set of (n, m0) breadth-first.
// It fails with ErrStateSpaceExceeded when the net is unbounded or simply
// too large for the cap; use Boundedness to distinguish the two.
func BuildGraph(n *petri.Net, m0 petri.Marking, opt Options) (*Graph, error) {
	defer opt.Trace.StartDetail("reach/graph").End()
	max := opt.maxStates()
	g := &Graph{}
	index := map[string]int{}
	add := func(m petri.Marking) (int, bool) {
		k := m.Key()
		if i, ok := index[k]; ok {
			return i, false
		}
		i := len(g.Markings)
		index[k] = i
		g.Markings = append(g.Markings, m.Clone())
		g.Succ = append(g.Succ, nil)
		return i, true
	}
	add(m0)
	for head := 0; head < len(g.Markings); head++ {
		if err := opt.cancelled(); err != nil {
			return nil, fmt.Errorf("%w (at %d states)", err, len(g.Markings))
		}
		if len(g.Markings) > max {
			return nil, fmt.Errorf("%w (> %d states)", ErrStateSpaceExceeded, max)
		}
		m := g.Markings[head]
		for _, t := range n.EnabledTransitions(m) {
			next := m.Clone()
			n.MustFire(next, t)
			to, fresh := add(next)
			if fresh && len(g.Markings) > max {
				return nil, fmt.Errorf("%w (> %d states)", ErrStateSpaceExceeded, max)
			}
			g.Edges = append(g.Edges, Edge{head, to, t})
			g.Succ[head] = append(g.Succ[head], len(g.Edges)-1)
		}
	}
	return g, nil
}

// Reachable reports whether target is reachable from m0, exploring at most
// opt.MaxStates markings.
func Reachable(n *petri.Net, m0, target petri.Marking, opt Options) (bool, error) {
	max := opt.maxStates()
	seen := map[string]bool{m0.Key(): true}
	queue := []petri.Marking{m0.Clone()}
	for len(queue) > 0 {
		if err := opt.cancelled(); err != nil {
			return false, fmt.Errorf("%w (at %d states)", err, len(seen))
		}
		m := queue[0]
		queue = queue[1:]
		if m.Equal(target) {
			return true, nil
		}
		for _, t := range n.EnabledTransitions(m) {
			next := m.Clone()
			n.MustFire(next, t)
			k := next.Key()
			if !seen[k] {
				seen[k] = true
				if len(seen) > max {
					return false, fmt.Errorf("%w (> %d states)", ErrStateSpaceExceeded, max)
				}
				queue = append(queue, next)
			}
		}
	}
	return false, nil
}

// HasDeadlock reports whether some reachable marking enables no transition.
// Nets with source transitions never deadlock (a source is always enabled).
func HasDeadlock(n *petri.Net, m0 petri.Marking, opt Options) (bool, error) {
	if len(n.SourceTransitions()) > 0 {
		return false, nil
	}
	g, err := BuildGraph(n, m0, opt)
	if err != nil {
		return false, err
	}
	return len(g.DeadlockStates()) > 0, nil
}

// Live reports whether every transition can always fire again from every
// reachable marking (liveness). Requires a bounded net; unbounded nets
// return ErrStateSpaceExceeded.
//
// A transition t is live iff from every reachable marking some marking
// enabling t is reachable. On the finite graph this reduces to: for every
// node v, there is a path from v to some edge labelled t. We compute, per
// transition, the set of nodes that can reach a t-labelled edge (backward
// closure) and check it covers all nodes.
func Live(n *petri.Net, m0 petri.Marking, opt Options) (bool, error) {
	g, err := BuildGraph(n, m0, opt)
	if err != nil {
		return false, err
	}
	// Build reverse adjacency.
	rev := make([][]int, len(g.Markings))
	for _, e := range g.Edges {
		rev[e.To] = append(rev[e.To], e.From)
	}
	for t := petri.Transition(0); int(t) < n.NumTransitions(); t++ {
		canReach := make([]bool, len(g.Markings))
		var stack []int
		for _, e := range g.Edges {
			if e.Transition == t && !canReach[e.From] {
				canReach[e.From] = true
				stack = append(stack, e.From)
			}
		}
		if len(stack) == 0 {
			return false, nil // t never fires anywhere
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range rev[v] {
				if !canReach[u] {
					canReach[u] = true
					stack = append(stack, u)
				}
			}
		}
		for _, ok := range canReach {
			if !ok {
				return false, nil
			}
		}
	}
	return true, nil
}

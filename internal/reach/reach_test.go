package reach

import (
	"errors"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/petri"
)

// boundedCycle builds t1 -> p -> t2 -> q -> t1 with one token: a live,
// 1-bounded marked graph.
func boundedCycle() *petri.Net {
	b := petri.NewBuilder("cycle")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	p := b.MarkedPlace("p", 1)
	q := b.Place("q")
	b.Chain(t1, p, t2, q, t1)
	return b.Build()
}

// sourceFed builds src -> p -> t: unbounded because src fires forever.
func sourceFed() *petri.Net {
	b := petri.NewBuilder("src")
	src := b.Transition("src")
	t := b.Transition("t")
	p := b.Place("p")
	b.Chain(src, p, t)
	return b.Build()
}

func TestBuildGraphCycle(t *testing.T) {
	n := boundedCycle()
	g, err := BuildGraph(n, n.InitialMarking(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 2 {
		t.Fatalf("states = %d, want 2", g.NumStates())
	}
	if len(g.Edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(g.Edges))
	}
	if len(g.DeadlockStates()) != 0 {
		t.Fatal("live cycle has no deadlock")
	}
}

func TestBuildGraphCap(t *testing.T) {
	n := sourceFed()
	_, err := BuildGraph(n, n.InitialMarking(), Options{MaxStates: 10})
	if !errors.Is(err, ErrStateSpaceExceeded) {
		t.Fatalf("err = %v, want state-space exceeded", err)
	}
}

func TestReachable(t *testing.T) {
	n := boundedCycle()
	p, _ := n.PlaceByName("p")
	q, _ := n.PlaceByName("q")
	target := petri.NewMarking(n.NumPlaces())
	target[q] = 1
	ok, err := Reachable(n, n.InitialMarking(), target, Options{})
	if err != nil || !ok {
		t.Fatalf("reachable = %v, %v", ok, err)
	}
	// Two tokens are unreachable in this 1-invariant cycle.
	target2 := petri.NewMarking(n.NumPlaces())
	target2[p], target2[q] = 1, 1
	ok, err = Reachable(n, n.InitialMarking(), target2, Options{})
	if err != nil || ok {
		t.Fatalf("two-token marking must be unreachable, got %v, %v", ok, err)
	}
}

func TestReachableCap(t *testing.T) {
	n := sourceFed()
	p, _ := n.PlaceByName("p")
	target := petri.NewMarking(n.NumPlaces())
	target[p] = 1 << 30
	if _, err := Reachable(n, n.InitialMarking(), target, Options{MaxStates: 5}); !errors.Is(err, ErrStateSpaceExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestHasDeadlock(t *testing.T) {
	// p -> t with empty p deadlocks immediately.
	b := petri.NewBuilder("dead")
	p := b.Place("p")
	tr := b.Transition("t")
	b.Arc(p, tr)
	n := b.Build()
	dead, err := HasDeadlock(n, n.InitialMarking(), Options{})
	if err != nil || !dead {
		t.Fatalf("dead = %v, %v", dead, err)
	}
	// With a source transition the net can always move.
	n2 := sourceFed()
	dead, err = HasDeadlock(n2, n2.InitialMarking(), Options{})
	if err != nil || dead {
		t.Fatalf("source-fed net cannot deadlock, got %v, %v", dead, err)
	}
	n3 := boundedCycle()
	dead, err = HasDeadlock(n3, n3.InitialMarking(), Options{})
	if err != nil || dead {
		t.Fatalf("cycle deadlock = %v, %v", dead, err)
	}
}

func TestLive(t *testing.T) {
	n := boundedCycle()
	live, err := Live(n, n.InitialMarking(), Options{})
	if err != nil || !live {
		t.Fatalf("cycle must be live: %v, %v", live, err)
	}

	// One-shot net: t fires once, never again.
	b := petri.NewBuilder("oneshot")
	p := b.MarkedPlace("p", 1)
	tr := b.Transition("t")
	b.Arc(p, tr)
	n2 := b.Build()
	live, err = Live(n2, n2.InitialMarking(), Options{})
	if err != nil || live {
		t.Fatalf("one-shot net must not be live: %v, %v", live, err)
	}

	// Net where a transition never fires at all.
	b2 := petri.NewBuilder("neverfires")
	p2 := b2.Place("p")
	t2 := b2.Transition("t")
	b2.Arc(p2, t2)
	u := b2.Transition("u")
	q2 := b2.MarkedPlace("q", 1)
	b2.Chain(q2, u, q2)
	n3 := b2.Build()
	live, err = Live(n3, n3.InitialMarking(), Options{})
	if err != nil || live {
		t.Fatalf("net with dead transition must not be live: %v, %v", live, err)
	}
}

func TestCoverabilityBounded(t *testing.T) {
	n := boundedCycle()
	ct, err := BuildCoverabilityTree(n, n.InitialMarking(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Bounded() {
		t.Fatal("cycle is bounded")
	}
	if got := ct.UnboundedPlaces(); len(got) != 0 {
		t.Fatalf("UnboundedPlaces = %v", got)
	}
	p, _ := n.PlaceByName("p")
	if got := ct.Bound(p); got != 1 {
		t.Fatalf("Bound(p) = %d", got)
	}
	k, err := KBound(n, n.InitialMarking())
	if err != nil || k != 1 {
		t.Fatalf("KBound = %d, %v", k, err)
	}
}

func TestCoverabilityUnbounded(t *testing.T) {
	n := sourceFed()
	ct, err := BuildCoverabilityTree(n, n.InitialMarking(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Bounded() {
		t.Fatal("source-fed place is unbounded")
	}
	p, _ := n.PlaceByName("p")
	unb := ct.UnboundedPlaces()
	if len(unb) != 1 || unb[0] != p {
		t.Fatalf("UnboundedPlaces = %v", unb)
	}
	if ct.Bound(p) != -1 {
		t.Fatal("Bound of unbounded place must be -1")
	}
	k, err := KBound(n, n.InitialMarking())
	if err != nil || k != -1 {
		t.Fatalf("KBound = %d, %v", k, err)
	}
	bounded, err := Boundedness(n, n.InitialMarking())
	if err != nil || bounded {
		t.Fatalf("Boundedness = %v, %v", bounded, err)
	}
}

func TestCoverabilityFigureNets(t *testing.T) {
	// Every figure net with a source transition is unbounded as a free
	// net (the environment can always outrun the consumers); this is
	// exactly why the paper's schedulability is about *scheduled*
	// executions, not raw boundedness.
	for _, name := range []string{"figure3a", "figure3b", "figure4", "figure5"} {
		n := figures.All()[name]
		bounded, err := Boundedness(n, n.InitialMarking())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bounded {
			t.Fatalf("%s: source-fed net should be unbounded under free firing", name)
		}
	}
}

func TestSiphonTrapBasics(t *testing.T) {
	n := boundedCycle()
	p, _ := n.PlaceByName("p")
	q, _ := n.PlaceByName("q")
	s := PlaceSet{p, q}
	if !IsSiphon(n, s) {
		t.Fatal("{p,q} is a siphon of the cycle")
	}
	if !IsTrap(n, s) {
		t.Fatal("{p,q} is a trap of the cycle")
	}
	if IsSiphon(n, PlaceSet{}) || IsTrap(n, PlaceSet{}) {
		t.Fatal("empty set is neither siphon nor trap by convention")
	}
	if IsSiphon(n, PlaceSet{p}) {
		t.Fatal("{p} alone is not a siphon: t1 produces into p but consumes from q")
	}
}

func TestMinimalSiphons(t *testing.T) {
	n := boundedCycle()
	siphons := MinimalSiphons(n, 0)
	if len(siphons) != 1 || len(siphons[0]) != 2 {
		t.Fatalf("MinimalSiphons = %v", siphons)
	}
	// Two independent cycles → two minimal siphons.
	b := petri.NewBuilder("two")
	for _, suffix := range []string{"a", "b"} {
		t1 := b.Transition("t1" + suffix)
		t2 := b.Transition("t2" + suffix)
		p := b.MarkedPlace("p"+suffix, 1)
		q := b.Place("q" + suffix)
		b.Chain(t1, p, t2, q, t1)
	}
	siphons = MinimalSiphons(b.Build(), 0)
	if len(siphons) != 2 {
		t.Fatalf("expected 2 minimal siphons, got %v", siphons)
	}
}

func TestMaximalTrapIn(t *testing.T) {
	n := boundedCycle()
	p, _ := n.PlaceByName("p")
	q, _ := n.PlaceByName("q")
	trap := MaximalTrapIn(n, PlaceSet{p, q})
	if len(trap) != 2 {
		t.Fatalf("MaximalTrapIn = %v", trap)
	}
	// In a feed-forward chain src -> p -> t -> q (q sink place), {p}
	// contains no trap: t consumes from p without producing back.
	b := petri.NewBuilder("chain")
	src := b.Transition("src")
	tr := b.Transition("t")
	p2 := b.Place("p")
	q2 := b.Place("q")
	b.Chain(src, p2, tr, q2)
	n2 := b.Build()
	if got := MaximalTrapIn(n2, PlaceSet{p2}); len(got) != 0 {
		t.Fatalf("trap in {p} = %v, want empty", got)
	}
	// {q} is a trap: q has no consumers.
	if got := MaximalTrapIn(n2, PlaceSet{q2}); len(got) != 1 {
		t.Fatalf("trap in {q} = %v", got)
	}
}

func TestCommonerHolds(t *testing.T) {
	if !CommonerHolds(boundedCycle(), boundedCycle().InitialMarking(), 0) {
		t.Fatal("marked cycle satisfies Commoner")
	}
	// Unmarked cycle: the siphon starts empty → Commoner fails.
	b := petri.NewBuilder("emptycycle")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	p := b.Place("p")
	q := b.Place("q")
	b.Chain(t1, p, t2, q, t1)
	n := b.Build()
	if CommonerHolds(n, n.InitialMarking(), 0) {
		t.Fatal("empty cycle must violate Commoner")
	}
}

func TestPlaceSetContains(t *testing.T) {
	s := PlaceSet{1, 3, 5}
	if !s.Contains(3) || s.Contains(2) || s.Contains(9) {
		t.Fatal("Contains wrong")
	}
}

func TestCoverable(t *testing.T) {
	// Source-fed place: any finite count is coverable.
	n := sourceFed()
	p, _ := n.PlaceByName("p")
	target := petri.NewMarking(n.NumPlaces())
	target[p] = 1000
	ok, err := Coverable(n, n.InitialMarking(), target)
	if err != nil || !ok {
		t.Fatalf("Coverable = %v, %v", ok, err)
	}
	// The 1-token cycle can never cover 2 tokens.
	n2 := boundedCycle()
	p2, _ := n2.PlaceByName("p")
	target2 := petri.NewMarking(n2.NumPlaces())
	target2[p2] = 2
	ok, err = Coverable(n2, n2.InitialMarking(), target2)
	if err != nil || ok {
		t.Fatalf("two tokens coverable in a 1-invariant cycle: %v, %v", ok, err)
	}
	// One token is coverable in either place.
	q2, _ := n2.PlaceByName("q")
	target3 := petri.NewMarking(n2.NumPlaces())
	target3[q2] = 1
	ok, err = Coverable(n2, n2.InitialMarking(), target3)
	if err != nil || !ok {
		t.Fatalf("Coverable(q=1) = %v, %v", ok, err)
	}
}

// TestKarpMillerAgreesWithExplicit cross-validates the two engines: on
// bounded closed nets, the Karp–Miller tree's k-bound must equal the
// maximum token count over the explicit reachability graph.
func TestKarpMillerAgreesWithExplicit(t *testing.T) {
	nets := []*petri.Net{}
	// Family of credit loops with varying weights and tokens.
	for _, w := range []int{1, 2, 3} {
		for _, tokens := range []int{1, 2, 4} {
			b := petri.NewBuilder("loop")
			credit := b.MarkedPlace("credit", tokens)
			work := b.Place("work")
			t1 := b.Transition("t1")
			t2 := b.Transition("t2")
			b.Arc(credit, t1)
			b.WeightedArcTP(t1, work, w)
			b.WeightedArc(work, t2, w)
			b.ArcTP(t2, credit)
			nets = append(nets, b.Build())
		}
	}
	for i, n := range nets {
		g, err := BuildGraph(n, n.InitialMarking(), Options{})
		if err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
		explicitMax := 0
		for _, m := range g.Markings {
			for _, k := range m {
				if k > explicitMax {
					explicitMax = k
				}
			}
		}
		km, err := KBound(n, n.InitialMarking())
		if err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
		if km != explicitMax {
			t.Fatalf("net %d: KM bound %d != explicit max %d", i, km, explicitMax)
		}
	}
}

// TestNestedUnboundedness: a place fed by an already-ω place must itself
// accelerate to ω (two-level unboundedness).
func TestNestedUnboundedness(t *testing.T) {
	b := petri.NewBuilder("nested")
	src := b.Transition("src")
	mid := b.Transition("mid")
	p := b.Place("p")
	q := b.Place("q")
	b.Chain(src, p, mid, q)
	n := b.Build()
	ct, err := BuildCoverabilityTree(n, n.InitialMarking(), 0)
	if err != nil {
		t.Fatal(err)
	}
	unb := ct.UnboundedPlaces()
	if len(unb) != 2 {
		t.Fatalf("UnboundedPlaces = %v, want both p and q", unb)
	}
}

// TestReachableAgainstGraph cross-checks the targeted BFS against full
// graph enumeration on bounded nets: a marking is Reachable iff it appears
// in the reachability graph.
func TestReachableAgainstGraph(t *testing.T) {
	nets := []*petri.Net{boundedCycle()}
	// Add a 2-token ring with more states.
	b := petri.NewBuilder("ring2")
	p := b.MarkedPlace("p", 2)
	q := b.Place("q")
	r := b.Place("r")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	b.Chain(p, t1, q, t2, r, t3, p)
	nets = append(nets, b.Build())
	for _, n := range nets {
		g, err := BuildGraph(n, n.InitialMarking(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range g.Markings {
			ok, err := Reachable(n, n.InitialMarking(), m, Options{})
			if err != nil || !ok {
				t.Fatalf("%s: graph marking %v not Reachable (%v)", n.Name(), m, err)
			}
		}
		// A marking with one extra token anywhere is unreachable.
		bogus := n.InitialMarking()
		bogus[0] += 5
		ok, err := Reachable(n, n.InitialMarking(), bogus, Options{})
		if err != nil || ok {
			t.Fatalf("%s: bogus marking reachable (%v)", n.Name(), err)
		}
	}
}

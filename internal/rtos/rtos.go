// Package rtos models the run-time system underneath the synthesised
// tasks: a cycle-cost accounting kernel with task activation overhead, an
// event queue, and workload generators for interrupt-like (irregular) and
// timer-like (periodic) input events.
//
// The paper evaluated its implementations by clock-cycle counts on an
// embedded target with a commercial RTOS; this package is the simulated
// substitute. Absolute costs are parameters (CostModel); the comparison
// the paper makes — fewer tasks ⇒ fewer activations ⇒ less overhead —
// depends only on the relative values.
package rtos

import (
	"fmt"
	"sort"

	"fcpn/internal/petri"
)

// CostModel assigns cycle costs to the observable actions of an
// implementation.
type CostModel struct {
	// Activation is charged every time the RTOS dispatches a task
	// (context switch, queue management, scheduler bookkeeping).
	Activation int64
	// Poll is charged when the dynamic scheduler examines a task that then
	// has nothing to do.
	Poll int64
	// Fire is charged per transition firing (the data computation; a
	// proxy for the paper's per-operation cost).
	Fire int64
	// Op is charged per counter update or guard evaluation in generated
	// code.
	Op int64
	// Interrupt is charged per external event delivery.
	Interrupt int64
	// Durations, when non-nil, are per-transition execution times in
	// cycles charged ON TOP of Fire for each firing of that transition —
	// the timed-Petri-net duration annotations of the timing-safety
	// layer. Transitions absent from the map cost only Fire. The map is
	// shared by reference across cost-model copies (fault.CostJitter
	// perturbs the scalar costs per dispatch but leaves Durations
	// unscaled: annotations model the data computation's nominal length,
	// overruns model the execution environment).
	Durations map[petri.Transition]int64
}

// DefaultCostModel mirrors a small embedded kernel: task activation is an
// order of magnitude more expensive than straight-line code.
func DefaultCostModel() CostModel {
	return CostModel{
		Activation: 150,
		Poll:       6,
		Fire:       120,
		Op:         2,
		Interrupt:  30,
	}
}

// Kernel accumulates cycle costs and activation counts. A kernel may
// optionally carry a bounded ingress queue and a deadline watchdog (the
// robustness layer); both are nil in the idealised simulator.
type Kernel struct {
	Cost        CostModel
	Cycles      int64
	Activations int64
	Polls       int64
	Interrupts  int64
	// PerTask counts activations per task name.
	PerTask map[string]int64
	// Queue, when set, bounds event ingress (see Admit).
	Queue *EventQueue
	// Watch, when set, records per-event deadline misses (see Complete).
	Watch *Watchdog
}

// NewKernel returns a kernel with the given cost model.
func NewKernel(cost CostModel) *Kernel {
	return &Kernel{Cost: cost, PerTask: make(map[string]int64)}
}

// Admit delivers one external event arriving at the given clock: the
// interrupt cost is always charged (the hardware fired regardless), then
// the event is offered to the ingress queue under its overflow policy.
// Without a queue the event is accepted unconditionally but not stored.
// It reports whether the event was admitted for service.
func (k *Kernel) Admit(ev Event, arrival int64) bool {
	k.Interrupt()
	if k.Queue == nil {
		return true
	}
	return k.Queue.Offer(ev, arrival)
}

// Complete records one served event's response time with the watchdog (a
// no-op without one), reporting whether the deadline was missed.
func (k *Kernel) Complete(response int64) bool {
	return k.Watch.Observe(response)
}

// Activate charges one task dispatch.
func (k *Kernel) Activate(task string) {
	k.Cycles += k.Cost.Activation
	k.Activations++
	k.PerTask[task]++
}

// Poll charges one no-work scheduler examination.
func (k *Kernel) Poll(task string) {
	k.Cycles += k.Cost.Poll
	k.Polls++
}

// Interrupt charges one event delivery.
func (k *Kernel) Interrupt() {
	k.Cycles += k.Cost.Interrupt
	k.Interrupts++
}

// ChargeFirings charges n transition executions.
func (k *Kernel) ChargeFirings(n int64) { k.Cycles += n * k.Cost.Fire }

// ChargeOps charges n generated-code bookkeeping operations.
func (k *Kernel) ChargeOps(n int64) { k.Cycles += n * k.Cost.Op }

// ChargeDuration charges transition t's duration annotation, if it has
// one (no-op otherwise). The simulators call it once per firing through
// the interpreter's OnFire hook, so annotated and unannotated runs
// share one code path.
func (k *Kernel) ChargeDuration(t petri.Transition) {
	if d, ok := k.Cost.Durations[t]; ok {
		k.Cycles += d
	}
}

// String summarises the kernel counters.
func (k *Kernel) String() string {
	return fmt.Sprintf("cycles=%d activations=%d polls=%d interrupts=%d",
		k.Cycles, k.Activations, k.Polls, k.Interrupts)
}

// Event is one external input occurrence: the source transition fires at
// the given time (times order the merged workload; the cost model is
// cycle-based, not latency-based).
type Event struct {
	Time   int64
	Source petri.Transition
}

// Periodic generates count events for src with the given period, starting
// at phase.
func Periodic(src petri.Transition, period, phase int64, count int) []Event {
	out := make([]Event, count)
	for i := range out {
		out[i] = Event{Time: phase + int64(i)*period, Source: src}
	}
	return out
}

// Bursty generates count events for src with pseudo-random gaps averaging
// meanGap (deterministic per seed): the "interrupt at irregular times"
// input of the paper's ATM server.
func Bursty(src petri.Transition, meanGap int64, count int, seed uint64) []Event {
	if meanGap < 1 {
		meanGap = 1
	}
	state := seed*6364136223846793005 + 1442695040888963407
	next := func(n int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64((state >> 33) % uint64(n))
	}
	out := make([]Event, count)
	t := int64(0)
	for i := range out {
		t += 1 + next(2*meanGap)
		out[i] = Event{Time: t, Source: src}
	}
	return out
}

// Merge interleaves event streams by time, stably (equal times keep the
// argument order).
func Merge(streams ...[]Event) []Event {
	var all []Event
	for _, s := range streams {
		all = append(all, s...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	return all
}

package rtos

import (
	"fmt"
	"strings"
)

// OverflowPolicy selects what a bounded event queue does when an event
// arrives at a full queue.
type OverflowPolicy int

const (
	// DropNewest discards the arriving event (tail drop).
	DropNewest OverflowPolicy = iota
	// DropOldest discards the oldest queued event to admit the new one
	// (ring-buffer overwrite: freshest-data-wins, typical for sensors).
	DropOldest
	// Reject refuses the arriving event and counts it as rejected
	// (backpressure: the environment is told to retry).
	Reject
)

// String names the policy as accepted by ParsePolicy.
func (p OverflowPolicy) String() string {
	switch p {
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	case Reject:
		return "reject"
	}
	return fmt.Sprintf("OverflowPolicy(%d)", int(p))
}

// ParsePolicy parses an overflow policy name (drop-newest, drop-oldest,
// reject).
func ParsePolicy(s string) (OverflowPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "drop-newest", "dropnewest":
		return DropNewest, nil
	case "drop-oldest", "dropoldest":
		return DropOldest, nil
	case "reject":
		return Reject, nil
	}
	return 0, fmt.Errorf("rtos: unknown overflow policy %q (want drop-newest, drop-oldest or reject)", s)
}

// QueueConfig sizes a bounded event queue. Capacity <= 0 means unbounded
// (the idealised queue of the original simulator).
type QueueConfig struct {
	Capacity int
	Policy   OverflowPolicy
}

// QueuedEvent is one admitted event with its arrival clock (in cycles),
// kept so response times survive queueing delays and drop-oldest
// displacement.
type QueuedEvent struct {
	Ev      Event
	Arrival int64
}

// EventQueue is a FIFO ingress queue with a capacity and an overflow
// policy. It records how many events were lost and how.
type EventQueue struct {
	cfg QueueConfig
	// buf[head:] holds the queued events. Popping advances head instead
	// of reslicing the front away, so the backing array is reused across
	// the simulation instead of growing once per admitted event.
	buf  []QueuedEvent
	head int
	// Dropped counts events discarded by DropNewest or displaced by
	// DropOldest; Rejected counts events refused under Reject.
	Dropped, Rejected int64
}

// NewEventQueue builds a queue with the given bound and policy.
func NewEventQueue(cfg QueueConfig) *EventQueue { return &EventQueue{cfg: cfg} }

// Config reports the queue's configuration.
func (q *EventQueue) Config() QueueConfig { return q.cfg }

// Len is the number of queued events.
func (q *EventQueue) Len() int { return len(q.buf) - q.head }

// Lost is the total number of events not served (dropped + rejected).
func (q *EventQueue) Lost() int64 { return q.Dropped + q.Rejected }

// Offer admits one event arriving at the given clock. It reports whether
// the event was enqueued; a full bounded queue applies the overflow
// policy (under DropOldest the new event is always admitted, at the cost
// of the head).
func (q *EventQueue) Offer(ev Event, arrival int64) bool {
	if q.cfg.Capacity > 0 && q.Len() >= q.cfg.Capacity {
		switch q.cfg.Policy {
		case DropNewest:
			q.Dropped++
			return false
		case Reject:
			q.Rejected++
			return false
		case DropOldest:
			q.head++
			q.Dropped++
		}
	}
	if q.head == len(q.buf) {
		q.buf, q.head = q.buf[:0], 0
	} else if q.head > 32 && 2*q.head >= len(q.buf) {
		// Mostly-consumed prefix: compact in place so append reuses the
		// array instead of growing past the dead front forever.
		n := copy(q.buf, q.buf[q.head:])
		q.buf, q.head = q.buf[:n], 0
	}
	q.buf = append(q.buf, QueuedEvent{Ev: ev, Arrival: arrival})
	return true
}

// Pop removes and returns the oldest queued event.
func (q *EventQueue) Pop() (QueuedEvent, bool) {
	if q.Len() == 0 {
		return QueuedEvent{}, false
	}
	head := q.buf[q.head]
	q.head++
	return head, true
}

// Watchdog tracks per-event deadline misses: the kernel feeds it every
// completed event's response time (arrival to completion, in cycles).
//
// Budget == 0 (or negative) means the watchdog is DISABLED: Observe
// reports every response as a hit, counts nothing, and records no
// history — the zero value is the idealised no-deadline kernel, not a
// zero-cycle deadline. Like the rest of the type, a nil *Watchdog is
// valid everywhere and behaves as disabled.
type Watchdog struct {
	// Budget is the per-event response-time deadline in cycles; <= 0
	// disables the watchdog (see above).
	Budget int64
	// Misses counts events whose response exceeded the budget;
	// WorstOverrun is the largest observed excess.
	Misses       int64
	WorstOverrun int64
	// HistoryCap, when positive, bounds a recorded hit/miss history:
	// Observe appends each outcome (true = miss) to a ring keeping the
	// last HistoryCap outcomes — the stream a weakly-hard (m,k) monitor
	// consumes (timing.Replay over History). 0 records nothing.
	HistoryCap int

	history  []bool // ring of the last HistoryCap outcomes
	observed int64  // total outcomes fed while enabled
}

// Observe records one event's response time, reporting whether it missed
// the deadline. Disabled (nil, or Budget <= 0) watchdogs observe
// nothing and always report a hit.
func (w *Watchdog) Observe(response int64) bool {
	if w == nil || w.Budget <= 0 {
		return false
	}
	miss := response > w.Budget
	if miss {
		w.Misses++
		if over := response - w.Budget; over > w.WorstOverrun {
			w.WorstOverrun = over
		}
	}
	if w.HistoryCap > 0 {
		if w.history == nil {
			w.history = make([]bool, w.HistoryCap)
		}
		w.history[int(w.observed)%w.HistoryCap] = miss
	}
	w.observed++
	return miss
}

// Observed is the total number of outcomes fed to an enabled watchdog
// (hits and misses; 0 on nil or disabled watchdogs).
func (w *Watchdog) Observed() int64 {
	if w == nil {
		return 0
	}
	return w.observed
}

// History snapshots the recorded hit/miss ring, oldest outcome first
// (true = miss). It holds the last min(Observed, HistoryCap) outcomes;
// nil when recording is off or nothing was observed. Nil-safe.
func (w *Watchdog) History() []bool {
	if w == nil || w.HistoryCap <= 0 || w.observed == 0 {
		return nil
	}
	n := w.HistoryCap
	if w.observed < int64(n) {
		n = int(w.observed)
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = w.history[int(w.observed-int64(n)+int64(i))%w.HistoryCap]
	}
	return out
}

package rtos

import (
	"testing"

	"fcpn/internal/petri"
)

func ev(src petri.Transition, t int64) Event { return Event{Source: src, Time: t} }

func TestEventQueuePolicies(t *testing.T) {
	src := petri.Transition(0)
	cases := []struct {
		policy       OverflowPolicy
		wantAdmitted []int64 // arrival times left in the queue after 5 offers at cap 3
		wantDropped  int64
		wantRejected int64
		lastOfferOK  bool
	}{
		{DropNewest, []int64{0, 1, 2}, 2, 0, false},
		{DropOldest, []int64{2, 3, 4}, 2, 0, true},
		{Reject, []int64{0, 1, 2}, 0, 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.policy.String(), func(t *testing.T) {
			q := NewEventQueue(QueueConfig{Capacity: 3, Policy: tc.policy})
			ok := false
			for i := int64(0); i < 5; i++ {
				ok = q.Offer(ev(src, i), i)
			}
			if ok != tc.lastOfferOK {
				t.Fatalf("last Offer = %v, want %v", ok, tc.lastOfferOK)
			}
			if q.Dropped != tc.wantDropped || q.Rejected != tc.wantRejected {
				t.Fatalf("dropped=%d rejected=%d, want %d/%d",
					q.Dropped, q.Rejected, tc.wantDropped, tc.wantRejected)
			}
			if q.Lost() != tc.wantDropped+tc.wantRejected {
				t.Fatalf("Lost=%d", q.Lost())
			}
			var got []int64
			for {
				qe, ok := q.Pop()
				if !ok {
					break
				}
				got = append(got, qe.Arrival)
			}
			if len(got) != len(tc.wantAdmitted) {
				t.Fatalf("queue held %v, want %v", got, tc.wantAdmitted)
			}
			for i := range got {
				if got[i] != tc.wantAdmitted[i] {
					t.Fatalf("queue held %v, want %v", got, tc.wantAdmitted)
				}
			}
		})
	}
}

func TestEventQueueUnbounded(t *testing.T) {
	q := NewEventQueue(QueueConfig{})
	for i := int64(0); i < 1000; i++ {
		if !q.Offer(ev(petri.Transition(0), i), i) {
			t.Fatal("unbounded queue refused an event")
		}
	}
	if q.Len() != 1000 || q.Lost() != 0 {
		t.Fatalf("len=%d lost=%d", q.Len(), q.Lost())
	}
}

func TestPopEmpty(t *testing.T) {
	q := NewEventQueue(QueueConfig{Capacity: 1})
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported an event")
	}
}

func TestWatchdog(t *testing.T) {
	w := &Watchdog{Budget: 100}
	if w.Observe(100) {
		t.Fatal("response == budget is not a miss")
	}
	if !w.Observe(150) {
		t.Fatal("response 150 > budget 100 must miss")
	}
	w.Observe(130)
	if w.Misses != 2 || w.WorstOverrun != 50 {
		t.Fatalf("misses=%d worst=%d", w.Misses, w.WorstOverrun)
	}
	var nilW *Watchdog
	if nilW.Observe(1 << 30) {
		t.Fatal("nil watchdog must never miss")
	}
	off := &Watchdog{}
	if off.Observe(1 << 30) {
		t.Fatal("zero budget disables the watchdog")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want OverflowPolicy
	}{
		{"drop-newest", DropNewest},
		{"DropOldest", DropOldest},
		{" reject ", Reject},
	} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() == "" {
			t.Fatal("empty String()")
		}
	}
	if _, err := ParsePolicy("fifo"); err == nil {
		t.Fatal("unknown policy must fail")
	}
}

func TestKernelAdmitComplete(t *testing.T) {
	k := NewKernel(DefaultCostModel())
	// No queue: every event is admitted and only the interrupt is charged.
	if !k.Admit(ev(petri.Transition(0), 0), 0) {
		t.Fatal("queueless kernel must admit")
	}
	k.Queue = NewEventQueue(QueueConfig{Capacity: 1, Policy: Reject})
	k.Watch = &Watchdog{Budget: 10}
	if !k.Admit(ev(petri.Transition(0), 1), 1) {
		t.Fatal("first event fits")
	}
	if k.Admit(ev(petri.Transition(0), 2), 2) {
		t.Fatal("second event must be rejected at capacity 1")
	}
	if !k.Complete(25) {
		t.Fatal("response 25 > deadline 10 must register a miss")
	}
	if k.Watch.Misses != 1 {
		t.Fatalf("misses=%d", k.Watch.Misses)
	}
}

func TestWatchdogDisabledSemantics(t *testing.T) {
	// Budget == 0 means DISABLED, not "zero-cycle deadline": nothing is
	// a miss, nothing is counted, nothing is recorded — even with a
	// history ring configured.
	off := &Watchdog{Budget: 0, HistoryCap: 8}
	for _, r := range []int64{0, 1, 1 << 40} {
		if off.Observe(r) {
			t.Fatalf("disabled watchdog missed at response %d", r)
		}
	}
	if off.Misses != 0 || off.WorstOverrun != 0 {
		t.Fatalf("disabled watchdog counted: %+v", off)
	}
	if off.Observed() != 0 || off.History() != nil {
		t.Fatalf("disabled watchdog recorded history: observed=%d hist=%v",
			off.Observed(), off.History())
	}
	// Negative budgets are disabled too.
	neg := &Watchdog{Budget: -5}
	if neg.Observe(1) || neg.Observed() != 0 {
		t.Fatal("negative budget must disable the watchdog")
	}
	// Nil-safety extends to the new accessors.
	var nilW *Watchdog
	if nilW.Observed() != 0 || nilW.History() != nil {
		t.Fatal("nil watchdog accessors must be zero")
	}
}

func TestWatchdogHistoryRing(t *testing.T) {
	w := &Watchdog{Budget: 10, HistoryCap: 4}
	// Responses: hit, miss, hit, miss, miss — 5 outcomes through a
	// 4-slot ring, so the oldest (the first hit) falls out.
	for _, r := range []int64{5, 20, 10, 11, 30} {
		w.Observe(r)
	}
	if w.Observed() != 5 {
		t.Fatalf("observed = %d", w.Observed())
	}
	got := w.History()
	want := []bool{true, false, true, true} // miss, hit, miss, miss
	if len(got) != len(want) {
		t.Fatalf("history = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("history[%d] = %v, want %v (%v)", i, got[i], want[i], got)
		}
	}
	// Fewer outcomes than the cap: the snapshot is exactly what was fed.
	short := &Watchdog{Budget: 10, HistoryCap: 8}
	short.Observe(50)
	short.Observe(1)
	if h := short.History(); len(h) != 2 || !h[0] || h[1] {
		t.Fatalf("short history = %v", h)
	}
	// HistoryCap == 0: counting still works, recording is off.
	bare := &Watchdog{Budget: 10}
	bare.Observe(100)
	if bare.Misses != 1 || bare.History() != nil {
		t.Fatalf("bare watchdog: misses=%d hist=%v", bare.Misses, bare.History())
	}
}

package rtos

import (
	"strings"
	"testing"
	"testing/quick"

	"fcpn/internal/petri"
)

func TestKernelAccounting(t *testing.T) {
	k := NewKernel(CostModel{Activation: 100, Poll: 10, Fire: 5, Op: 1, Interrupt: 20})
	k.Activate("a")
	k.Activate("a")
	k.Activate("b")
	k.Poll("b")
	k.Interrupt()
	k.ChargeFirings(4)
	k.ChargeOps(7)
	if k.Cycles != 3*100+10+20+4*5+7 {
		t.Fatalf("cycles = %d", k.Cycles)
	}
	if k.Activations != 3 || k.Polls != 1 || k.Interrupts != 1 {
		t.Fatalf("counters = %+v", k)
	}
	if k.PerTask["a"] != 2 || k.PerTask["b"] != 1 {
		t.Fatalf("per task = %v", k.PerTask)
	}
	if !strings.Contains(k.String(), "activations=3") {
		t.Fatalf("String = %q", k.String())
	}
}

func TestDefaultCostModelShape(t *testing.T) {
	c := DefaultCostModel()
	if c.Activation <= c.Op || c.Activation <= c.Poll {
		t.Fatal("activation must dominate bookkeeping costs")
	}
	if c.Fire <= 0 || c.Interrupt <= 0 {
		t.Fatal("all costs positive")
	}
}

func TestPeriodic(t *testing.T) {
	evs := Periodic(petri.Transition(3), 10, 5, 4)
	if len(evs) != 4 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Time != 5+int64(i)*10 || ev.Source != 3 {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

func TestBurstyDeterministicAndMonotone(t *testing.T) {
	a := Bursty(petri.Transition(1), 8, 20, 42)
	b := Bursty(petri.Transition(1), 8, 20, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Bursty not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Time <= a[i-1].Time {
			t.Fatalf("times must be strictly increasing: %v", a)
		}
	}
	c := Bursty(petri.Transition(1), 8, 20, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
	// Degenerate mean gap is clamped.
	d := Bursty(petri.Transition(1), 0, 3, 1)
	if len(d) != 3 {
		t.Fatal("clamped gap failed")
	}
}

func TestMergeStable(t *testing.T) {
	a := []Event{{Time: 1, Source: 0}, {Time: 5, Source: 0}}
	b := []Event{{Time: 1, Source: 1}, {Time: 3, Source: 1}}
	m := Merge(a, b)
	if len(m) != 4 {
		t.Fatalf("len = %d", len(m))
	}
	if m[0].Source != 0 || m[1].Source != 1 || m[2].Time != 3 || m[3].Time != 5 {
		t.Fatalf("merge order wrong: %v", m)
	}
}

// Property: merged streams are sorted and preserve all events.
func TestMergeProperty(t *testing.T) {
	f := func(seedA, seedB uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		a := Bursty(petri.Transition(0), 5, n, seedA)
		b := Periodic(petri.Transition(1), 7, 3, n)
		m := Merge(a, b)
		if len(m) != 2*n {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i].Time < m[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChargeDuration(t *testing.T) {
	cost := DefaultCostModel()
	cost.Durations = map[petri.Transition]int64{
		petri.Transition(1): 500,
		petri.Transition(3): 70,
	}
	k := NewKernel(cost)
	k.ChargeDuration(petri.Transition(1))
	k.ChargeDuration(petri.Transition(2)) // unannotated: free
	k.ChargeDuration(petri.Transition(3))
	if k.Cycles != 570 {
		t.Fatalf("cycles = %d, want 570", k.Cycles)
	}
	// No annotation map at all: ChargeDuration is a no-op.
	plain := NewKernel(DefaultCostModel())
	plain.ChargeDuration(petri.Transition(1))
	if plain.Cycles != 0 {
		t.Fatalf("unannotated kernel charged %d", plain.Cycles)
	}
}

// Package ctest provides the compiled-execution test harness shared by
// the codegen and atm test suites: it compiles generated C with the system
// compiler, links it against a generated counting driver, runs the binary
// and compares its firing counts with the Go interpreter driven by the
// same decision streams.
package ctest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/petri"
)

func RunCompiledComparison(t *testing.T, cc string, n *petri.Net, events int) {
	t.Helper()
	RunCompiledComparisonWithResolver(t, cc, n, events, nil, nil)
}

// RunCompiledComparisonWithResolver is RunCompiledComparison with a
// caller-supplied choice resolver (nil for the default alternating one)
// and an optional OnFire hook for behavioural models.
func RunCompiledComparisonWithResolver(t *testing.T, cc string, n *petri.Net, events int,
	base codegen.ChoiceResolver, onFire func(petri.Transition)) {
	t.Helper()
	s, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := core.PartitionTasks(n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(s, tp)
	if err != nil {
		t.Fatal(err)
	}

	// Reference run: interpreter with a recording resolver. The recorded
	// streams become the C driver's scripted read_<place>()
	// implementations.
	decisions := map[petri.Place][]int{}
	counters := map[petri.Place]int{}
	resolver := func(p petri.Place, alts []petri.Transition) int {
		var pick int
		if base != nil {
			pick = base(p, alts)
		} else {
			pick = counters[p] % len(alts)
		}
		counters[p]++
		decisions[p] = append(decisions[p], pick)
		return pick
	}
	in := codegen.NewInterp(prog, resolver)
	in.OnFire = onFire
	sources := n.SourceTransitions()
	var eventOrder []petri.Transition
	for e := 0; e < events; e++ {
		src := sources[e%len(sources)]
		eventOrder = append(eventOrder, src)
		if err := in.RunSource(src); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.StateEquationCheck(); err != nil {
		t.Fatal(err)
	}

	// Generated translation unit + driver.
	taskSrc := codegen.EmitC(prog, codegen.CConfig{})
	driver := buildDriver(prog, decisions, eventOrder)

	dir := t.TempDir()
	taskPath := filepath.Join(dir, "tasks.c")
	driverPath := filepath.Join(dir, "driver.c")
	binPath := filepath.Join(dir, "run")
	if err := os.WriteFile(taskPath, []byte(taskSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(driverPath, []byte(driver), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(cc, "-std=c99", "-Wall", "-Werror", taskPath, driverPath, "-o", binPath).CombinedOutput()
	if err != nil {
		t.Fatalf("cc: %v\n%s\n--- tasks ---\n%s\n--- driver ---\n%s", err, out, taskSrc, driver)
	}
	out, err = exec.Command(binPath).CombinedOutput()
	if err != nil {
		t.Fatalf("binary failed: %v\n%s", err, out)
	}

	// The binary prints "name count" lines; compare with the interpreter.
	got := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad output line %q", line)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			t.Fatal(err)
		}
		got[fields[0]] = v
	}
	for tr := 0; tr < n.NumTransitions(); tr++ {
		name := codegen.CIdent(n.TransitionName(petri.Transition(tr)))
		if got[name] != in.Stats.Fired[tr] {
			t.Fatalf("firing counts diverge at %s: C binary %d, interpreter %d\noutput:\n%s",
				name, got[name], in.Stats.Fired[tr], out)
		}
	}
}

// buildDriver emits a C main that defines counting transition hooks,
// scripted choice predicates, fires the recorded event order and prints
// the firing counts.
func buildDriver(prog *codegen.Program, decisions map[petri.Place][]int, events []petri.Transition) string {
	n := prog.Net
	var b strings.Builder
	b.WriteString("#include <stdio.h>\n\n")
	for t := 0; t < n.NumTransitions(); t++ {
		name := codegen.CIdent(n.TransitionName(petri.Transition(t)))
		fmt.Fprintf(&b, "static int count_%s;\nvoid %s(void) { count_%s++; }\n", name, name, name)
	}
	b.WriteString("\n")
	for p := 0; p < n.NumPlaces(); p++ {
		if len(n.Consumers(petri.Place(p))) <= 1 {
			continue
		}
		name := codegen.CIdent(n.PlaceName(petri.Place(p)))
		seq := decisions[petri.Place(p)]
		fmt.Fprintf(&b, "static int idx_%s;\nstatic const int seq_%s[] = {", name, name)
		for i, v := range seq {
			if i > 0 {
				b.WriteString(", ")
			}
			// The 2-way C form is `if (read_p())` taking branch 0 on
			// non-zero, so invert the recorded branch index for pairs.
			if len(n.Consumers(petri.Place(p))) == 2 {
				if v == 0 {
					b.WriteString("1")
				} else {
					b.WriteString("0")
				}
			} else {
				fmt.Fprintf(&b, "%d", v)
			}
		}
		if len(seq) == 0 {
			b.WriteString("0")
		}
		fmt.Fprintf(&b, "};\nint read_%s(void) { return seq_%s[idx_%s++]; }\n\n", name, name, name)
	}
	// Task entry prototypes.
	for _, tc := range prog.Tasks {
		for _, body := range tc.Bodies {
			fmt.Fprintf(&b, "extern void %s(void);\n", codegen.CIdent(codegen.TaskEntryName(tc, n.TransitionName(body.Source))))
		}
	}
	b.WriteString("\nint main(void) {\n")
	for _, src := range events {
		ti := prog.TaskBySource(src)
		tc := prog.Tasks[ti]
		fmt.Fprintf(&b, "\t%s();\n", codegen.CIdent(codegen.TaskEntryName(tc, n.TransitionName(src))))
	}
	for t := 0; t < n.NumTransitions(); t++ {
		name := codegen.CIdent(n.TransitionName(petri.Transition(t)))
		fmt.Fprintf(&b, "\tprintf(\"%s %%d\\n\", count_%s);\n", name, name)
	}
	b.WriteString("\treturn 0;\n}\n")
	return b.String()
}

package linalg

import "math/big"

// Rank computes the rank of the matrix by fraction-free Gaussian
// elimination (Bareiss-style pivoting on big.Int copies).
func Rank(m *Mat) int {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	// Work on a copy.
	work := make([]Vec, m.Rows)
	for i, r := range m.Data {
		work[i] = r.Clone()
	}
	rank := 0
	col := 0
	for rank < len(work) && col < m.Cols {
		// Find pivot.
		pivot := -1
		for i := rank; i < len(work); i++ {
			if work[i][col].Sign() != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			col++
			continue
		}
		work[rank], work[pivot] = work[pivot], work[rank]
		pv := work[rank][col]
		tmp := new(big.Int)
		for i := rank + 1; i < len(work); i++ {
			if work[i][col].Sign() == 0 {
				continue
			}
			// row_i = pv*row_i - work[i][col]*row_rank
			factor := new(big.Int).Set(work[i][col])
			for j := col; j < m.Cols; j++ {
				tmp.Mul(factor, work[rank][j])
				work[i][j].Mul(work[i][j], pv)
				work[i][j].Sub(work[i][j], tmp)
			}
			work[i].NormalizeGCD()
		}
		rank++
		col++
	}
	return rank
}

// NullspaceDim returns the dimension of {x : A·x = 0} where the rows of a
// are the equations: Cols − Rank.
func NullspaceDim(a *Mat) int { return a.Cols - Rank(a) }

// SolvesZero reports whether A·x = 0 for the given integer vector x
// (rows of a are equations).
func SolvesZero(a *Mat, x Vec) bool {
	for _, row := range a.Data {
		if row.Dot(x).Sign() != 0 {
			return false
		}
	}
	return true
}

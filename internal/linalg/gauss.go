package linalg

import (
	"math/big"

	"fcpn/internal/trace"
)

// Rank computes the rank of the matrix by fraction-free Gaussian
// elimination (Bareiss-style pivoting). Arithmetic runs on the same
// machine-integer ladder as the Farkas enumeration: an int64 tier, a
// 128-bit-combination tier, then exact big.Int. Rank is arithmetic-
// representation independent, so every tier that completes returns the
// same answer; a tier whose entries outgrow its safe range aborts and
// the next one reruns the elimination from scratch.
func Rank(m *Mat) int { return RankTraced(m, nil) }

// RankTraced is Rank with tier-residency tracing: the ladder tiers that
// run record "linalg/int64" / "linalg/int128" / "linalg/bigint" detail
// spans, matching MinimalSemiflowsTraced. A nil tracer disables
// collection.
func RankTraced(m *Mat, tr *trace.Tracer) int {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	sp := tr.StartDetail("linalg/int64")
	r, ok := rankMachine(m, intLimit, eliminate64)
	sp.End()
	if ok {
		return r
	}
	sp = tr.StartDetail("linalg/int128")
	r, ok = rankMachine(m, int128Limit, eliminate128)
	sp.End()
	if ok {
		return r
	}
	sp = tr.StartDetail("linalg/bigint")
	r = rankBig(m)
	sp.End()
	return r
}

// eliminateFunc performs one Bareiss row annihilation in place:
// dst[j] = pv·dst[j] − factor·pivot[j] for j ≥ col, followed by GCD
// normalisation of the row. It reports ok=false when any normalised
// entry leaves the tier's safe range.
type eliminateFunc func(dst, pivot []int64, pv, factor int64, col int) bool

// rankMachine runs the Bareiss elimination on machine-integer rows,
// giving up (ok=false) when the input or any intermediate leaves
// [−limit, limit].
func rankMachine(m *Mat, limit int64, eliminate eliminateFunc) (int, bool) {
	work := make([][]int64, m.Rows)
	for i, r := range m.Data {
		row := make([]int64, m.Cols)
		for j, x := range r {
			if !x.IsInt64() {
				return 0, false
			}
			v := x.Int64()
			if v > limit || v < -limit {
				return 0, false
			}
			row[j] = v
		}
		work[i] = row
	}
	rank, col := 0, 0
	for rank < len(work) && col < m.Cols {
		pivot := -1
		for i := rank; i < len(work); i++ {
			if work[i][col] != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			col++
			continue
		}
		work[rank], work[pivot] = work[pivot], work[rank]
		pv := work[rank][col]
		for i := rank + 1; i < len(work); i++ {
			if work[i][col] == 0 {
				continue
			}
			if !eliminate(work[i], work[rank], pv, work[i][col], col) {
				return 0, false
			}
		}
		rank++
		col++
	}
	return rank, true
}

// eliminate64 is the int64 tier's annihilation: |pv|, |factor| and every
// entry are ≤ intLimit = 2³⁰, so pv·dst − factor·pivot is below 2⁶¹ and
// native arithmetic cannot wrap. Entries beyond intLimit after GCD
// normalisation abort the tier. (Columns left of col are already zero in
// every row below the pivot row, so normalising the full row is sound.)
func eliminate64(dst, pivot []int64, pv, factor int64, col int) bool {
	for j := col; j < len(dst); j++ {
		dst[j] = pv*dst[j] - factor*pivot[j]
	}
	var g int64
	for _, x := range dst {
		g = gcd64(g, x)
	}
	if g > 1 {
		for j := range dst {
			dst[j] /= g
		}
	}
	for _, x := range dst {
		if x > intLimit || x < -intLimit {
			return false
		}
	}
	return true
}

// eliminate128 is the 128-bit tier's annihilation: entries are ≤
// int128Limit = 2⁶², products below 2¹²⁴ and the difference below 2¹²⁵,
// exact in signed 128-bit arithmetic. Normalised entries must refit into
// [−int128Limit, int128Limit] or the tier aborts.
func eliminate128(dst, pivot []int64, pv, factor int64, col int) bool {
	wide := make([]i128, len(dst)-col)
	var g u128
	for j := col; j < len(dst); j++ {
		v := mul64(pv, dst[j]).add(mul64(factor, pivot[j]).neg())
		wide[j-col] = v
		g = gcd128(g, v.abs())
	}
	divide := !g.isZero() && !g.isOne()
	if divide && g.hi != 0 {
		return false
	}
	for j := col; j < len(dst); j++ {
		v := wide[j-col]
		q := v.abs()
		if divide {
			q = q.div64(g.lo)
		}
		if q.hi != 0 || q.lo > uint64(int128Limit) {
			return false
		}
		x := int64(q.lo)
		if v.sign() < 0 {
			x = -x
		}
		dst[j] = x
	}
	return true
}

// rankBig is the exact big.Int Bareiss elimination, the ladder's safety
// net.
func rankBig(m *Mat) int {
	// Work on a copy.
	work := make([]Vec, m.Rows)
	for i, r := range m.Data {
		work[i] = r.Clone()
	}
	rank := 0
	col := 0
	for rank < len(work) && col < m.Cols {
		// Find pivot.
		pivot := -1
		for i := rank; i < len(work); i++ {
			if work[i][col].Sign() != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			col++
			continue
		}
		work[rank], work[pivot] = work[pivot], work[rank]
		pv := work[rank][col]
		tmp := new(big.Int)
		for i := rank + 1; i < len(work); i++ {
			if work[i][col].Sign() == 0 {
				continue
			}
			// row_i = pv*row_i - work[i][col]*row_rank
			factor := new(big.Int).Set(work[i][col])
			for j := col; j < m.Cols; j++ {
				tmp.Mul(factor, work[rank][j])
				work[i][j].Mul(work[i][j], pv)
				work[i][j].Sub(work[i][j], tmp)
			}
			work[i].NormalizeGCD()
		}
		rank++
		col++
	}
	return rank
}

// NullspaceDim returns the dimension of {x : A·x = 0} where the rows of a
// are the equations: Cols − Rank.
func NullspaceDim(a *Mat) int { return a.Cols - Rank(a) }

// SolvesZero reports whether A·x = 0 for the given integer vector x
// (rows of a are equations).
func SolvesZero(a *Mat, x Vec) bool {
	for _, row := range a.Data {
		if row.Dot(x).Sign() != 0 {
			return false
		}
	}
	return true
}

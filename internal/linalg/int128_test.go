package linalg

import (
	"math/big"
	"math/rand"
	"testing"
)

// big128 converts an i128 to the reference big.Int value.
func big128(x i128) *big.Int {
	v := new(big.Int).SetInt64(x.hi)
	v.Lsh(v, 64)
	return v.Add(v, new(big.Int).SetUint64(x.lo))
}

func bigU128(x u128) *big.Int {
	v := new(big.Int).SetUint64(x.hi)
	v.Lsh(v, 64)
	return v.Add(v, new(big.Int).SetUint64(x.lo))
}

// randInt64 draws values across the whole ladder range, including the
// extremes that stress carries and sign handling.
func randInt64(rng *rand.Rand) int64 {
	v := rng.Int63n(int128Limit)
	if rng.Intn(2) == 0 {
		v = -v
	}
	switch rng.Intn(8) {
	case 0:
		v = 0
	case 1:
		v = int128Limit
	case 2:
		v = -int128Limit
	}
	return v
}

// TestI128ArithmeticMatchesBig is the exactness contract of the 128-bit
// tier's building blocks: mul64, add, neg, abs, gcd128 and div64 must
// agree with math/big on values across the tier's full range.
func TestI128ArithmeticMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		a, b := randInt64(rng), randInt64(rng)
		c, d := randInt64(rng), randInt64(rng)

		// s = a·b + c·d, the exact shape of one annihilation term.
		s := mul64(a, b).add(mul64(c, d))
		want := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		want.Add(want, new(big.Int).Mul(big.NewInt(c), big.NewInt(d)))
		if big128(s).Cmp(want) != 0 {
			t.Fatalf("trial %d: %d*%d + %d*%d = %s, want %s", trial, a, b, c, d, big128(s), want)
		}
		if got, want := s.sign(), want.Sign(); got != want {
			t.Fatalf("trial %d: sign = %d, want %d", trial, got, want)
		}
		if bigU128(s.abs()).Cmp(new(big.Int).Abs(want)) != 0 {
			t.Fatalf("trial %d: abs mismatch", trial)
		}

		// GCD of two magnitudes.
		t2 := mul64(c, d)
		g := gcd128(s.abs(), t2.abs())
		wantG := new(big.Int).GCD(nil, nil, new(big.Int).Abs(want), new(big.Int).Abs(big128(t2)))
		if bigU128(g).Cmp(wantG) != 0 {
			t.Fatalf("trial %d: gcd = %s, want %s", trial, bigU128(g), wantG)
		}

		// Division by an exact 64-bit divisor.
		if !g.isZero() && g.hi == 0 && g.lo > 1 {
			q := s.abs().div64(g.lo)
			wantQ := new(big.Int).Quo(new(big.Int).Abs(want), wantG)
			if bigU128(q).Cmp(wantQ) != 0 {
				t.Fatalf("trial %d: div64 = %s, want %s", trial, bigU128(q), wantQ)
			}
		}
	}
}

// TestU128Shifts checks rsh/lsh/trailingZeros round the 64-bit word
// boundary.
func TestU128Shifts(t *testing.T) {
	x := u128{hi: 0x8000_0000_0000_0001, lo: 0x8000_0000_0000_0000}
	if got := x.trailingZeros(); got != 63 {
		t.Fatalf("trailingZeros = %d, want 63", got)
	}
	for _, n := range []uint{0, 1, 63, 64, 65, 127} {
		want := new(big.Int).Rsh(bigU128(x), n)
		if bigU128(x.rsh(n)).Cmp(want) != 0 {
			t.Fatalf("rsh(%d) = %s, want %s", n, bigU128(x.rsh(n)), want)
		}
	}
	y := u128{hi: 0, lo: 0x9}
	mask := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 128), big.NewInt(1))
	for _, n := range []uint{0, 1, 63, 64, 65, 124} {
		want := new(big.Int).And(new(big.Int).Lsh(bigU128(y), n), mask)
		if bigU128(y.lsh(n)).Cmp(want) != 0 {
			t.Fatalf("lsh(%d) = %s, want %s", n, bigU128(y.lsh(n)), want)
		}
	}
	if got := (u128{}).trailingZeros(); got != 128 {
		t.Fatalf("trailingZeros(0) = %d, want 128", got)
	}
}

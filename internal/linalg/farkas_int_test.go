package linalg

import (
	"math/big"
	"math/rand"
	"testing"
)

func vecsEqual(a, b []Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].Cmp(b[i][j]) != 0 {
				return false
			}
		}
	}
	return true
}

// TestIntFastPathMatchesBigPath is the correctness contract of the int64
// Farkas fast path: on random small-coefficient systems — the regime
// every practical net lives in — the fast path must return exactly the
// rows, in exactly the order, of the exact big.Int implementation.
func TestIntFastPathMatchesBigPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(7)
		a := NewMat(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Data[i][j].SetInt64(int64(rng.Intn(7) - 3))
			}
		}
		fast, capped, ok := minimalSemiflowsInt(a, 100000)
		if !ok {
			t.Fatalf("trial %d: fast path refused small coefficients", trial)
		}
		if capped {
			t.Fatalf("trial %d: unexpectedly capped", trial)
		}
		slow, okBig := minimalSemiflowsBig(a, 100000)
		if !okBig {
			t.Fatalf("trial %d: big path capped", trial)
		}
		if !vecsEqual(fast, slow) {
			t.Fatalf("trial %d: fast path diverges\nA:\n%s\nfast: %v\nbig:  %v",
				trial, a, fast, slow)
		}
	}
}

// TestIntFastPathCapMatchesBigPath: the maxRows verdict must agree
// between the paths (the cap triggers at the same point of the identical
// elimination sequence).
func TestIntFastPathCapMatchesBigPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	agreedCapped := 0
	for trial := 0; trial < 100; trial++ {
		rows, cols := 4, 6
		a := NewMat(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Data[i][j].SetInt64(int64(rng.Intn(5) - 2))
			}
		}
		for _, cap := range []int{1, 2, 3, 5} {
			_, fastCapped, ok := minimalSemiflowsInt(a, cap)
			if !ok {
				t.Fatalf("trial %d: fast path refused small coefficients", trial)
			}
			_, bigOK := minimalSemiflowsBig(a, cap)
			if fastCapped != !bigOK {
				t.Fatalf("trial %d cap %d: capped verdicts differ (fast %v, big %v)",
					trial, cap, fastCapped, !bigOK)
			}
			if fastCapped {
				agreedCapped++
			}
		}
	}
	if agreedCapped == 0 {
		t.Fatal("no trial exercised the row cap")
	}
}

// TestHugeCoefficientsFallBack: coefficients beyond the fast path's safe
// range must be refused by the fast path, and MinimalSemiflows must then
// deliver the big.Int result.
func TestHugeCoefficientsFallBack(t *testing.T) {
	big1 := new(big.Int).Lsh(big.NewInt(1), 40) // 2^40 > intLimit
	a := NewMat(1, 2)
	a.Data[0][0].Set(big1)
	a.Data[0][1].Neg(big1)
	if _, _, ok := minimalSemiflowsInt(a, 0); ok {
		t.Fatal("fast path accepted out-of-range coefficients")
	}
	got, ok := MinimalSemiflows(a, 100000)
	if !ok || len(got) != 1 {
		t.Fatalf("fallback result: %v ok=%v", got, ok)
	}
	// 2^40·x0 − 2^40·x1 = 0 ⇒ minimal semiflow (1, 1).
	if got[0][0].Int64() != 1 || got[0][1].Int64() != 1 {
		t.Fatalf("fallback semiflow = %v, want [1 1]", got[0])
	}
}

// TestIntermediateOverflowFallsBack: inputs that fit but whose
// combinations blow past the limit must abort the fast path, not wrap.
func TestIntermediateOverflowFallsBack(t *testing.T) {
	// M·x0 = x1, M·x1 = x2 with M² > intLimit: the minimal semiflow
	// (1, M, M²) leaves the safe range during elimination.
	const m = int64(40000) // m² ≈ 1.6e9 > 2^30
	a := NewMat(2, 3)
	a.Data[0][0].SetInt64(m)
	a.Data[0][1].SetInt64(-1)
	a.Data[1][1].SetInt64(m)
	a.Data[1][2].SetInt64(-1)
	_, _, ok := minimalSemiflowsInt(a, 0)
	if ok {
		t.Fatal("fast path claimed an out-of-range intermediate")
	}
	got, okAll := MinimalSemiflows(a, 100000)
	if !okAll || len(got) != 1 {
		t.Fatalf("fallback result: %v ok=%v", got, okAll)
	}
	want := []int64{1, m, m * m}
	for i, w := range want {
		if got[0][i].Int64() != w {
			t.Fatalf("fallback semiflow = %v, want %v", got[0], want)
		}
	}
}

func BenchmarkMinimalSemiflowsInt(b *testing.B) {
	a := pipelineIncidence(24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := minimalSemiflowsInt(a, 100000); !ok {
			b.Fatal("fast path refused")
		}
	}
}

func BenchmarkMinimalSemiflowsBig(b *testing.B) {
	a := pipelineIncidence(24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := minimalSemiflowsBig(a, 100000); !ok {
			b.Fatal("big path capped")
		}
	}
}

// pipelineIncidence builds the transposed incidence matrix of an
// n-transition chain with occasional rate changes: the shape the
// T-semiflow computations see.
func pipelineIncidence(n int) *Mat {
	a := NewMat(n-1, n)
	for p := 0; p < n-1; p++ {
		w := int64(1 + (p % 3))
		a.Data[p][p].SetInt64(w)
		a.Data[p][p+1].SetInt64(-1)
	}
	return a
}

// TestInt128TierMatchesBigPath is the same contract one rung up the
// ladder: systems whose coefficients or intermediates escape the int64
// tier but stay within 2⁶² must come out of the 128-bit tier exactly as
// the big.Int implementation produces them.
func TestInt128TierMatchesBigPath(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	completed, beyondInt64 := 0, 0
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(6)
		a := NewMat(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				// Mix of small values and values past intLimit.
				v := int64(rng.Intn(7) - 3)
				if rng.Intn(3) == 0 {
					v *= intLimit
				}
				a.Data[i][j].SetInt64(v)
			}
		}
		wide, capped, ok := minimalSemiflowsInt128(a, 100000)
		if !ok {
			// A legitimate escalation: an intermediate outgrew 2⁶²
			// (products of two ~2³⁰ coefficients can). Counted below.
			continue
		}
		completed++
		if capped {
			t.Fatalf("trial %d: unexpectedly capped", trial)
		}
		slow, okBig := minimalSemiflowsBig(a, 100000)
		if !okBig {
			t.Fatalf("trial %d: big path capped", trial)
		}
		if !vecsEqual(wide, slow) {
			t.Fatalf("trial %d: int128 tier diverges\nA:\n%s\nint128: %v\nbig:    %v",
				trial, a, wide, slow)
		}
		if _, _, ok64 := minimalSemiflowsInt(a, 100000); !ok64 {
			beyondInt64++
		}
	}
	if completed < 100 {
		t.Fatalf("only %d/200 trials stayed within the int128 tier; coefficients too hot", completed)
	}
	if beyondInt64 == 0 {
		t.Fatal("no trial exercised the int128 tier beyond the int64 tier's range")
	}
}

// TestLadderEscalation walks one system up every rung: a multirate chain
// whose semiflow entries are m, m², m³… escapes the int64 tier at m²,
// the int128 tier at m⁵, and must land in big.Int with the exact result.
func TestLadderEscalation(t *testing.T) {
	const m = int64(40000) // m² ≈ 1.6e9 > 2³⁰; m⁵ ≈ 1.0e23 > 2⁶²
	chain := func(stages int) *Mat {
		a := NewMat(stages, stages+1)
		for i := 0; i < stages; i++ {
			a.Data[i][i].SetInt64(m)
			a.Data[i][i+1].SetInt64(-1)
		}
		return a
	}

	// 2 stages: int64 refuses, int128 delivers.
	a := chain(2)
	if _, _, ok := minimalSemiflowsInt(a, 100000); ok {
		t.Fatal("int64 tier claimed a 2³⁰-overflowing intermediate")
	}
	got, _, ok := minimalSemiflowsInt128(a, 100000)
	if !ok || len(got) != 1 {
		t.Fatalf("int128 tier on 2 stages: %v ok=%v", got, ok)
	}
	for i, want := range []int64{1, m, m * m} {
		if got[0][i].Int64() != want {
			t.Fatalf("int128 semiflow = %v, want [1 m m²]", got[0])
		}
	}

	// 5 stages: int128 refuses too; the ladder must still deliver.
	a = chain(5)
	if _, _, ok := minimalSemiflowsInt128(a, 100000); ok {
		t.Fatal("int128 tier claimed a 2⁶²-overflowing intermediate")
	}
	flows, ok := MinimalSemiflows(a, 100000)
	if !ok || len(flows) != 1 {
		t.Fatalf("ladder on 5 stages: %v ok=%v", flows, ok)
	}
	want := big.NewInt(1)
	for i := 0; i <= 5; i++ {
		if flows[0][i].Cmp(want) != 0 {
			t.Fatalf("ladder semiflow[%d] = %v, want %v", i, flows[0][i], want)
		}
		want = new(big.Int).Mul(want, big.NewInt(m))
	}
}

func BenchmarkMinimalSemiflowsInt128(b *testing.B) {
	a := pipelineIncidence(24)
	// Push the weights past intLimit so the 24-stage chain genuinely
	// exercises 128-bit combination arithmetic.
	for p := 0; p < a.Rows; p++ {
		a.Data[p][p].Mul(a.Data[p][p], big.NewInt(3))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := minimalSemiflowsInt128(a, 100000); !ok {
			b.Fatal("int128 tier refused")
		}
	}
}

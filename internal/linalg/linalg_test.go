package linalg

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := NewVec(3)
	if !v.IsZero() {
		t.Fatal("fresh vector must be zero")
	}
	v = VecFromInts([]int{2, -4, 6})
	if v.IsZero() {
		t.Fatal("non-zero vector reported zero")
	}
	if got := v.Support(); len(got) != 3 {
		t.Fatalf("Support = %v", got)
	}
	c := v.Clone()
	c[0].SetInt64(99)
	if v[0].Int64() == 99 {
		t.Fatal("Clone aliases")
	}
	ints, ok := v.Ints()
	if !ok || ints[1] != -4 {
		t.Fatalf("Ints = %v, %v", ints, ok)
	}
}

func TestVecSign(t *testing.T) {
	cases := []struct {
		in   []int
		want int
	}{
		{[]int{1, 0, 2}, 1},
		{[]int{-1, 0}, -1},
		{[]int{1, -1}, 0},
		{[]int{0, 0}, 0},
	}
	for _, tc := range cases {
		if got := VecFromInts(tc.in).Sign(); got != tc.want {
			t.Fatalf("Sign(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestNormalizeGCD(t *testing.T) {
	v := VecFromInts([]int{4, -6, 8})
	v.NormalizeGCD()
	ints, _ := v.Ints()
	if ints[0] != 2 || ints[1] != -3 || ints[2] != 4 {
		t.Fatalf("NormalizeGCD = %v", ints)
	}
	z := NewVec(2)
	z.NormalizeGCD() // must not panic or divide by zero
	if !z.IsZero() {
		t.Fatal("zero vector changed")
	}
}

func TestVecArithmetic(t *testing.T) {
	v := VecFromInts([]int{1, 2})
	w := VecFromInts([]int{3, 4})
	v.Add(w)
	ints, _ := v.Ints()
	if ints[0] != 4 || ints[1] != 6 {
		t.Fatalf("Add = %v", ints)
	}
	v.AddScaled(big.NewInt(-2), w)
	ints, _ = v.Ints()
	if ints[0] != -2 || ints[1] != -2 {
		t.Fatalf("AddScaled = %v", ints)
	}
	if got := VecFromInts([]int{1, 2, 3}).Dot(VecFromInts([]int{4, 5, 6})); got.Int64() != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestIntsOverflow(t *testing.T) {
	v := NewVec(1)
	v[0].Lsh(big.NewInt(1), 80)
	if _, ok := v.Ints(); ok {
		t.Fatal("overflow not detected")
	}
}

func TestMatFromInts(t *testing.T) {
	m, err := MatFromInts([][]int{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0).Int64() != 3 {
		t.Fatalf("MatFromInts wrong: %v", m)
	}
	if _, err := MatFromInts([][]int{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		rows [][]int
		want int
	}{
		{[][]int{{1, 0}, {0, 1}}, 2},
		{[][]int{{1, 2}, {2, 4}}, 1},
		{[][]int{{0, 0}, {0, 0}}, 0},
		{[][]int{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, 2},
		{[][]int{}, 0},
		{[][]int{{2, 0, -2}, {0, 3, -3}}, 2},
	}
	for _, tc := range cases {
		m, err := MatFromInts(tc.rows)
		if err != nil {
			t.Fatal(err)
		}
		if got := Rank(m); got != tc.want {
			t.Fatalf("Rank(%v) = %d, want %d", tc.rows, got, tc.want)
		}
	}
}

func TestNullspaceDimAndSolvesZero(t *testing.T) {
	// x + y - z = 0 has nullspace of dimension 2.
	a, _ := MatFromInts([][]int{{1, 1, -1}})
	if got := NullspaceDim(a); got != 2 {
		t.Fatalf("NullspaceDim = %d", got)
	}
	if !SolvesZero(a, VecFromInts([]int{1, 1, 2})) {
		t.Fatal("(1,1,2) solves x+y-z=0")
	}
	if SolvesZero(a, VecFromInts([]int{1, 1, 1})) {
		t.Fatal("(1,1,1) does not solve")
	}
}

func TestMinimalSemiflowsSimple(t *testing.T) {
	// One equation: x0 - x1 = 0 → single semiflow (1,1).
	a, _ := MatFromInts([][]int{{1, -1}})
	flows, ok := MinimalSemiflows(a, 0)
	if !ok || len(flows) != 1 {
		t.Fatalf("flows = %v ok=%v", flows, ok)
	}
	ints, _ := flows[0].Ints()
	if ints[0] != 1 || ints[1] != 1 {
		t.Fatalf("semiflow = %v", ints)
	}
}

func TestMinimalSemiflowsMultirate(t *testing.T) {
	// Figure 2 balance: t1 - 2 t2 = 0 ; t2 - 2 t3 = 0 → (4,2,1).
	a, _ := MatFromInts([][]int{{1, -2, 0}, {0, 1, -2}})
	flows, ok := MinimalSemiflows(a, 0)
	if !ok || len(flows) != 1 {
		t.Fatalf("flows = %v", flows)
	}
	ints, _ := flows[0].Ints()
	if ints[0] != 4 || ints[1] != 2 || ints[2] != 1 {
		t.Fatalf("semiflow = %v, want [4 2 1]", ints)
	}
}

func TestMinimalSemiflowsTwoFlows(t *testing.T) {
	// Figure 3a incidence transposed: places p1,p2,p3 over t1..t5.
	// p1: t1 - t2 - t3 ; p2: t2 - t4 ; p3: t3 - t5.
	a, _ := MatFromInts([][]int{
		{1, -1, -1, 0, 0},
		{0, 1, 0, -1, 0},
		{0, 0, 1, 0, -1},
	})
	flows, ok := MinimalSemiflows(a, 0)
	if !ok || len(flows) != 2 {
		t.Fatalf("flows = %v", flows)
	}
	want := map[string]bool{"[1 1 0 1 0]": true, "[1 0 1 0 1]": true}
	for _, f := range flows {
		ints, _ := f.Ints()
		key := ""
		for i, x := range ints {
			if i > 0 {
				key += " "
			}
			key += string(rune('0' + x))
		}
		key = "[" + key + "]"
		if !want[key] {
			t.Fatalf("unexpected semiflow %v", ints)
		}
	}
}

func TestMinimalSemiflowsNoSolution(t *testing.T) {
	// x0 = 0 and x0 - x1 = 0 force everything to zero.
	a, _ := MatFromInts([][]int{{1, 0}, {1, -1}, {0, 1}})
	flows, ok := MinimalSemiflows(a, 0)
	if !ok {
		t.Fatal("cap hit unexpectedly")
	}
	if len(flows) != 0 {
		t.Fatalf("expected no semiflows, got %v", flows)
	}
}

func TestMinimalSemiflowsCap(t *testing.T) {
	a, _ := MatFromInts([][]int{{1, -1, 0, 0}, {0, 1, -1, 0}, {0, 0, 1, -1}})
	if _, ok := MinimalSemiflows(a, 1); ok {
		t.Fatal("tiny cap must trigger failure")
	}
}

func TestCoversAllAndSum(t *testing.T) {
	flows := []Vec{VecFromInts([]int{1, 0, 1}), VecFromInts([]int{0, 1, 0})}
	if !CoversAll(flows, 3) {
		t.Fatal("flows cover all indices")
	}
	if CoversAll(flows[:1], 3) {
		t.Fatal("single flow does not cover")
	}
	sum := SumVecs(flows, 3)
	ints, _ := sum.Ints()
	if ints[0] != 1 || ints[1] != 1 || ints[2] != 1 {
		t.Fatalf("SumVecs = %v", ints)
	}
}

// Property: every semiflow returned actually solves A·x = 0, is
// non-negative and non-zero.
func TestSemiflowsSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rows, cols, a := randomSystem(seed)
		_ = rows
		flows, ok := MinimalSemiflows(a, 20000)
		if !ok {
			return true // cap hit is acceptable for adversarial seeds
		}
		for _, fl := range flows {
			if fl.Sign() != 1 || len(fl) != cols {
				return false
			}
			if !SolvesZero(a, fl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: supports of returned semiflows are pairwise incomparable
// (minimality of support).
func TestSemiflowsMinimalSupportProperty(t *testing.T) {
	f := func(seed int64) bool {
		_, _, a := randomSystem(seed)
		flows, ok := MinimalSemiflows(a, 20000)
		if !ok {
			return true
		}
		for i := range flows {
			for j := range flows {
				if i == j {
					continue
				}
				if subset(flows[i].Support(), flows[j].Support()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func subset(a, b []int) bool {
	set := map[int]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func randomSystem(seed int64) (rows, cols int, a *Mat) {
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	rows = 1 + next(4)
	cols = 1 + next(5)
	data := make([][]int, rows)
	for i := range data {
		data[i] = make([]int, cols)
		for j := range data[i] {
			data[i][j] = next(7) - 3
		}
	}
	m, err := MatFromInts(data)
	if err != nil {
		panic(err)
	}
	return rows, cols, m
}

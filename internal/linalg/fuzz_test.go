package linalg

import "testing"

// FuzzFarkasLadder differentially fuzzes the Farkas ladder: on arbitrary
// systems the int64 and int128 tiers must either refuse (escalate) or
// reproduce the big.Int reference exactly — same rows, same order, same
// row-cap verdict — and the public MinimalSemiflows entry point must
// always agree with the reference. scale shifts the coefficients up to
// ~2⁴⁶ so the fuzzer reaches every rung, not just the int64 tier.
func FuzzFarkasLadder(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(0), []byte{131, 127, 128, 128, 130, 127})
	f.Add(uint8(1), uint8(2), uint8(39), []byte{255, 0})
	f.Add(uint8(4), uint8(5), uint8(20), []byte("fcpn-farkas-ladder-seed!"))
	f.Add(uint8(3), uint8(3), uint8(7), []byte{})
	f.Fuzz(func(t *testing.T, rows, cols, scale uint8, data []byte) {
		nr, nc := int(rows%5)+1, int(cols%6)+1
		mult := int64(1) << (scale % 40)
		a := NewMat(nr, nc)
		k := 0
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				var b byte
				if k < len(data) {
					b = data[k]
					k++
				}
				a.Data[i][j].SetInt64((int64(b) - 128) * mult)
			}
		}
		// A small cap keeps adversarial systems fast while still
		// exercising the capped-verdict agreement.
		const maxRows = 2000
		ref, refOK := minimalSemiflowsBig(a, maxRows)

		check := func(tier string, out []Vec, capped, ok bool) {
			if !ok {
				return // legitimate escalation; the next rung answers
			}
			if capped == refOK {
				t.Fatalf("%s tier capped=%v but reference ok=%v\nA:\n%s", tier, capped, refOK, a)
			}
			if !capped && !vecsEqual(out, ref) {
				t.Fatalf("%s tier diverges\nA:\n%s\ntier: %v\nref:  %v", tier, a, out, ref)
			}
		}
		out, capped, ok := minimalSemiflowsInt(a, maxRows)
		check("int64", out, capped, ok)
		out, capped, ok = minimalSemiflowsInt128(a, maxRows)
		check("int128", out, capped, ok)

		got, gotOK := MinimalSemiflows(a, maxRows)
		if gotOK != refOK {
			t.Fatalf("ladder ok=%v, reference ok=%v\nA:\n%s", gotOK, refOK, a)
		}
		if gotOK && !vecsEqual(got, ref) {
			t.Fatalf("ladder diverges\nA:\n%s\nladder: %v\nref:    %v", a, got, ref)
		}
	})
}

package linalg

import "math/bits"

// 128-bit integer arithmetic for the middle tier of the exact-arithmetic
// ladder (see farkas.go). The Farkas and Bareiss annihilation steps form
// cp·x + cn·y with |cp|, |cn|, |x|, |y| ≤ 2⁶²: each product is below
// 2¹²⁴ and the two-term sum below 2¹²⁵, so a signed 128-bit accumulator
// never wraps. Only the handful of operations those steps need are
// implemented — widening multiply, add/negate, binary GCD, and division
// by a 64-bit divisor to refit normalised entries into machine words.

// i128 is a signed 128-bit integer in two's complement: hi carries the
// sign, lo the low 64 bits.
type i128 struct {
	hi int64
	lo uint64
}

// u128 is an unsigned 128-bit magnitude (the GCD domain).
type u128 struct {
	hi, lo uint64
}

// mul64 returns the full signed 128-bit product a·b. Callers guarantee
// |a|, |b| ≤ 2⁶², so the magnitudes fit uint64 and the product fits i128.
func mul64(a, b int64) i128 {
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
	}
	if b < 0 {
		ub = uint64(-b)
	}
	hi, lo := bits.Mul64(ua, ub)
	v := i128{hi: int64(hi), lo: lo}
	if neg {
		v = v.neg()
	}
	return v
}

// add returns x + y in two's complement.
func (x i128) add(y i128) i128 {
	lo, carry := bits.Add64(x.lo, y.lo, 0)
	return i128{hi: x.hi + y.hi + int64(carry), lo: lo}
}

// neg returns -x.
func (x i128) neg() i128 {
	lo, borrow := bits.Sub64(0, x.lo, 0)
	return i128{hi: -x.hi - int64(borrow), lo: lo}
}

// sign returns -1, 0 or +1.
func (x i128) sign() int {
	switch {
	case x.hi < 0:
		return -1
	case x.hi == 0 && x.lo == 0:
		return 0
	default:
		return 1
	}
}

// abs returns |x| as an unsigned magnitude.
func (x i128) abs() u128 {
	if x.hi < 0 {
		x = x.neg()
	}
	return u128{hi: uint64(x.hi), lo: x.lo}
}

func (x u128) isZero() bool { return x.hi == 0 && x.lo == 0 }

// isOne reports x == 1.
func (x u128) isOne() bool { return x.hi == 0 && x.lo == 1 }

// cmp returns -1, 0 or +1 comparing x to y.
func (x u128) cmp(y u128) int {
	switch {
	case x.hi != y.hi:
		if x.hi < y.hi {
			return -1
		}
		return 1
	case x.lo != y.lo:
		if x.lo < y.lo {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// sub returns x - y; callers guarantee x ≥ y.
func (x u128) sub(y u128) u128 {
	lo, borrow := bits.Sub64(x.lo, y.lo, 0)
	return u128{hi: x.hi - y.hi - borrow, lo: lo}
}

// rsh returns x >> n for 0 ≤ n < 128.
func (x u128) rsh(n uint) u128 {
	switch {
	case n == 0:
		return x
	case n < 64:
		return u128{hi: x.hi >> n, lo: x.lo>>n | x.hi<<(64-n)}
	default:
		return u128{hi: 0, lo: x.hi >> (n - 64)}
	}
}

// lsh returns x << n for 0 ≤ n < 128.
func (x u128) lsh(n uint) u128 {
	switch {
	case n == 0:
		return x
	case n < 64:
		return u128{hi: x.hi<<n | x.lo>>(64-n), lo: x.lo << n}
	default:
		return u128{hi: x.lo << (n - 64), lo: 0}
	}
}

// trailingZeros returns the number of trailing zero bits (128 for zero).
func (x u128) trailingZeros() uint {
	if x.lo != 0 {
		return uint(bits.TrailingZeros64(x.lo))
	}
	return 64 + uint(bits.TrailingZeros64(x.hi))
}

// div64 returns x / d for a non-zero 64-bit divisor (full 128-bit
// quotient; remainder discarded — callers divide by an exact GCD).
func (x u128) div64(d uint64) u128 {
	qhi := x.hi / d
	rem := x.hi % d
	qlo, _ := bits.Div64(rem, x.lo, d)
	return u128{hi: qhi, lo: qlo}
}

// gcd128 is Stein's binary GCD on 128-bit magnitudes: shifts, compares
// and subtractions only, so no 128-by-128 division is ever needed.
func gcd128(a, b u128) u128 {
	if a.isZero() {
		return b
	}
	if b.isZero() {
		return a
	}
	az, bz := a.trailingZeros(), b.trailingZeros()
	shift := az
	if bz < shift {
		shift = bz
	}
	a = a.rsh(az)
	for {
		b = b.rsh(b.trailingZeros())
		if a.cmp(b) > 0 {
			a, b = b, a
		}
		b = b.sub(a)
		if b.isZero() {
			return a.lsh(shift)
		}
	}
}

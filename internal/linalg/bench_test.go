package linalg

import "testing"

// chainSystem builds the balance equations of a k-stage multirate chain.
func chainSystem(k int) *Mat {
	rows := make([][]int, k)
	for i := range rows {
		rows[i] = make([]int, k+1)
		rows[i][i] = 2
		rows[i][i+1] = -3
	}
	m, err := MatFromInts(rows)
	if err != nil {
		panic(err)
	}
	return m
}

func BenchmarkMinimalSemiflowsChain(b *testing.B) {
	a := chainSystem(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := MinimalSemiflows(a, 0); !ok {
			b.Fatal("cap hit")
		}
	}
}

func BenchmarkRank(b *testing.B) {
	a := chainSystem(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Rank(a)
	}
}

// Package linalg provides the exact integer and rational linear algebra
// needed by Petri-net invariant analysis: arbitrary-precision vectors, the
// Farkas/Fourier–Motzkin algorithm for minimal-support non-negative integer
// solutions of A·x = 0 (semiflows), and Gaussian elimination over the
// rationals for rank computations.
//
// Arithmetic is exact at every size: the Farkas enumeration and the rank
// computation run on a two-tier machine-integer ladder (overflow-checked
// int64, then 128-bit two-word arithmetic via math/bits) and escalate to
// math/big only when an intermediate genuinely outgrows 2⁶², so invariant
// computation never overflows no matter how unbalanced the arc weights
// are — and never allocates big.Ints for the nets that don't need them.
package linalg

import (
	"fmt"
	"math/big"
	"strings"
)

// Vec is a dense vector of arbitrary-precision integers.
type Vec []*big.Int

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = new(big.Int)
	}
	return v
}

// VecFromInts converts an []int into a Vec.
func VecFromInts(xs []int) Vec {
	v := make(Vec, len(xs))
	for i, x := range xs {
		v[i] = big.NewInt(int64(x))
	}
	return v
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	for i := range v {
		c[i] = new(big.Int).Set(v[i])
	}
	return c
}

// IsZero reports whether every component is zero.
func (v Vec) IsZero() bool {
	for i := range v {
		if v[i].Sign() != 0 {
			return false
		}
	}
	return true
}

// Sign summarises the vector: +1 if all components ≥ 0 with at least one
// positive, -1 if all ≤ 0 with at least one negative, 0 otherwise.
func (v Vec) Sign() int {
	pos, neg := false, false
	for i := range v {
		switch v[i].Sign() {
		case 1:
			pos = true
		case -1:
			neg = true
		}
	}
	switch {
	case pos && !neg:
		return 1
	case neg && !pos:
		return -1
	default:
		return 0
	}
}

// Support returns the indices of the non-zero components.
func (v Vec) Support() []int {
	var out []int
	for i := range v {
		if v[i].Sign() != 0 {
			out = append(out, i)
		}
	}
	return out
}

// Ints converts the vector to []int64-sized ints; ok is false if any
// component overflows int.
func (v Vec) Ints() ([]int, bool) {
	out := make([]int, len(v))
	for i := range v {
		if !v[i].IsInt64() {
			return nil, false
		}
		x := v[i].Int64()
		if int64(int(x)) != x {
			return nil, false
		}
		out[i] = int(x)
	}
	return out, true
}

// NormalizeGCD divides v by the GCD of its components (in place) so that
// semiflows are reported in canonical minimal-magnitude form. The zero
// vector is left untouched.
func (v Vec) NormalizeGCD() {
	g := new(big.Int)
	for i := range v {
		if v[i].Sign() != 0 {
			g.GCD(nil, nil, g, new(big.Int).Abs(v[i]))
		}
	}
	if g.Sign() == 0 || g.Cmp(big.NewInt(1)) == 0 {
		return
	}
	for i := range v {
		v[i].Quo(v[i], g)
	}
}

// Add sets v = v + w and returns v.
func (v Vec) Add(w Vec) Vec {
	for i := range v {
		v[i].Add(v[i], w[i])
	}
	return v
}

// AddScaled sets v = v + k·w and returns v.
func (v Vec) AddScaled(k *big.Int, w Vec) Vec {
	tmp := new(big.Int)
	for i := range v {
		tmp.Mul(k, w[i])
		v[i].Add(v[i], tmp)
	}
	return v
}

// Dot returns the inner product ⟨v,w⟩.
func (v Vec) Dot(w Vec) *big.Int {
	sum := new(big.Int)
	tmp := new(big.Int)
	for i := range v {
		tmp.Mul(v[i], w[i])
		sum.Add(sum, tmp)
	}
	return sum
}

// String renders the vector as [a b c].
func (v Vec) String() string {
	parts := make([]string, len(v))
	for i := range v {
		parts[i] = v[i].String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Mat is a dense matrix of arbitrary-precision integers, row major.
type Mat struct {
	Rows, Cols int
	Data       []Vec
}

// NewMat returns a zero matrix with the given shape.
func NewMat(rows, cols int) *Mat {
	m := &Mat{Rows: rows, Cols: cols, Data: make([]Vec, rows)}
	for i := range m.Data {
		m.Data[i] = NewVec(cols)
	}
	return m
}

// MatFromInts converts a [][]int into a Mat. All rows must share a length.
func MatFromInts(rows [][]int) (*Mat, error) {
	m := &Mat{Rows: len(rows)}
	if len(rows) > 0 {
		m.Cols = len(rows[0])
	}
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("linalg: ragged matrix: row %d has %d cols, want %d", i, len(r), m.Cols)
		}
		m.Data = append(m.Data, VecFromInts(r))
	}
	return m, nil
}

// At returns the element at (i, j).
func (m *Mat) At(i, j int) *big.Int { return m.Data[i][j] }

// String renders the matrix one row per line.
func (m *Mat) String() string {
	var sb strings.Builder
	for _, r := range m.Data {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

package linalg

import (
	"math/big"

	"fcpn/internal/trace"
)

// MinimalSemiflows computes the set of minimal-support non-negative integer
// solutions x of A·x = 0, where A is given row-wise (each row is one
// homogeneous equation over the x variables).
//
// For T-invariants of a net with incidence matrix D (|T|×|P|), pass
// A = Dᵀ (one row per place, one column per transition).
//
// The algorithm is the classical Farkas / Fourier–Motzkin procedure used by
// Petri-net tools (Colom & Silva): start from [B | I] with B = Aᵀ
// (one working row per variable), then eliminate one equation at a time by
// replacing the row set with (a) rows already satisfying the equation and
// (b) all positive combinations of row pairs with opposite signs. Rows
// whose support strictly contains another row's support are pruned after
// every elimination, which both bounds the blow-up and guarantees that the
// surviving rows are exactly the minimal-support semiflows (each divided by
// the GCD of its entries).
//
// maxRows caps the intermediate row count; when exceeded the function
// returns nil and false. Pass 0 for the default cap (100000).
//
// Arithmetic runs on a two-tier machine-integer ladder (farkas_int.go):
// an overflow-checked int64 tier, then an int64-rows/128-bit-combination
// tier, then this exact big.Int implementation as the safety net. Phase
// traces showed the big.Int path spending roughly half its cycles in
// allocation and GC; practical nets never leave the machine-integer
// range, so the ladder's lower tiers are the common case. Every tier
// runs the identical elimination/pruning sequence, so the output —
// values and order — is the same whichever executes.
func MinimalSemiflows(a *Mat, maxRows int) ([]Vec, bool) {
	return MinimalSemiflowsTraced(a, maxRows, nil)
}

// MinimalSemiflowsTraced is MinimalSemiflows with tier-residency tracing:
// each ladder tier that runs records one "linalg/int64", "linalg/int128"
// or "linalg/bigint" detail span, so qssd reports (and the phasegate
// baseline) show how much of the exact-arithmetic hot path stays on
// machine integers. A nil tracer disables collection.
func MinimalSemiflowsTraced(a *Mat, maxRows int, tr *trace.Tracer) ([]Vec, bool) {
	if maxRows <= 0 {
		maxRows = 100000
	}
	sp := tr.StartDetail("linalg/int64")
	out, capped, ok := minimalSemiflowsInt(a, maxRows)
	sp.End()
	if ok {
		return out, !capped
	}
	sp = tr.StartDetail("linalg/int128")
	out, capped, ok = minimalSemiflowsInt128(a, maxRows)
	sp.End()
	if ok {
		return out, !capped
	}
	sp = tr.StartDetail("linalg/bigint")
	res, okBig := minimalSemiflowsBig(a, maxRows)
	sp.End()
	return res, okBig
}

func minimalSemiflowsBig(a *Mat, maxRows int) ([]Vec, bool) {
	numEq := a.Rows
	numVar := a.Cols

	// Working rows: pair of (left: value of each remaining equation,
	// right: the non-negative combination of unit vectors producing it).
	type row struct {
		left  Vec // length numEq
		right Vec // length numVar
	}
	rows := make([]row, numVar)
	for v := 0; v < numVar; v++ {
		left := NewVec(numEq)
		for e := 0; e < numEq; e++ {
			left[e].Set(a.Data[e][v])
		}
		right := NewVec(numVar)
		right[v].SetInt64(1)
		rows[v] = row{left, right}
	}

	supportContains := func(big, small Vec) bool {
		for i := range small {
			if small[i].Sign() != 0 && big[i].Sign() == 0 {
				return false
			}
		}
		return true
	}

	prune := func(rs []row) []row {
		// Remove rows whose right-support is a strict superset of another
		// row's right-support (and duplicate supports beyond the first).
		var keep []row
		for i := range rs {
			minimal := true
			for j := range rs {
				if i == j {
					continue
				}
				if supportContains(rs[i].right, rs[j].right) {
					// j's support ⊆ i's support.
					if !supportContains(rs[j].right, rs[i].right) {
						minimal = false // strictly smaller support exists
						break
					}
					// Equal support: keep only the first occurrence.
					if j < i {
						minimal = false
						break
					}
				}
			}
			if minimal {
				keep = append(keep, rs[i])
			}
		}
		return keep
	}

	for e := 0; e < numEq; e++ {
		var zero, pos, neg []row
		for _, r := range rows {
			switch r.left[e].Sign() {
			case 0:
				zero = append(zero, r)
			case 1:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		next := zero
		for _, rp := range pos {
			for _, rn := range neg {
				// Combine: |neg|·pos + |pos|·neg ⇒ zero in column e.
				cp := new(big.Int).Abs(rn.left[e])
				cn := new(big.Int).Abs(rp.left[e])
				left := NewVec(numEq)
				left.AddScaled(cp, rp.left)
				left.AddScaled(cn, rn.left)
				right := NewVec(numVar)
				right.AddScaled(cp, rp.right)
				right.AddScaled(cn, rn.right)
				// Normalise early to keep numbers small.
				g := new(big.Int)
				for i := range left {
					if left[i].Sign() != 0 {
						g.GCD(nil, nil, g, new(big.Int).Abs(left[i]))
					}
				}
				for i := range right {
					if right[i].Sign() != 0 {
						g.GCD(nil, nil, g, new(big.Int).Abs(right[i]))
					}
				}
				if g.Sign() != 0 && g.Cmp(big.NewInt(1)) > 0 {
					for i := range left {
						left[i].Quo(left[i], g)
					}
					for i := range right {
						right[i].Quo(right[i], g)
					}
				}
				next = append(next, row{left, right})
				if len(next) > maxRows {
					return nil, false
				}
			}
		}
		rows = prune(next)
		if len(rows) > maxRows {
			return nil, false
		}
	}

	out := make([]Vec, 0, len(rows))
	for _, r := range rows {
		if r.right.IsZero() {
			continue
		}
		r.right.NormalizeGCD()
		out = append(out, r.right)
	}
	return out, true
}

// CoversAll reports whether the union of the supports of the given vectors
// covers every index in [0, n).
func CoversAll(vs []Vec, n int) bool {
	covered := make([]bool, n)
	for _, v := range vs {
		for _, i := range v.Support() {
			covered[i] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// SumVecs returns the componentwise sum of the given vectors (all length n).
func SumVecs(vs []Vec, n int) Vec {
	sum := NewVec(n)
	for _, v := range vs {
		sum.Add(v)
	}
	return sum
}

package linalg

import "math/big"

// intLimit bounds every intermediate entry on the int64 Farkas fast
// path. Combination coefficients and entries are all ≤ intLimit, so a
// combined entry is at most 2·intLimit² < 2⁶² and the arithmetic below
// cannot wrap; any row that exceeds the limit after GCD normalisation
// aborts the fast path instead.
const intLimit = int64(1) << 30

// minimalSemiflowsInt is the int64 fast path of MinimalSemiflows: the
// identical Farkas elimination and support-pruning sequence as
// minimalSemiflowsBig, on overflow-checked machine integers and with
// right-support bitsets replacing the O(width) support scans of the
// pruning step.
//
// Returns (result, capped, ok). ok=false means an input or intermediate
// left the safe range and the caller must rerun on the big.Int path;
// capped=true (with ok=true) is the authoritative "maxRows exceeded"
// verdict. Because both paths perform the same combinations in the same
// order, prune the same rows, and normalise by the same GCDs, a run that
// stays in range returns exactly the rows — same values, same order —
// the big path would.
func minimalSemiflowsInt(a *Mat, maxRows int) (out []Vec, capped, ok bool) {
	numEq := a.Rows
	numVar := a.Cols
	words := (numVar + 63) / 64

	type irow struct {
		left  []int64
		right []int64
		mask  []uint64 // bitset over right's support
	}
	newMask := func(right []int64) []uint64 {
		m := make([]uint64, words)
		for i, v := range right {
			if v != 0 {
				m[i/64] |= 1 << (i % 64)
			}
		}
		return m
	}

	rows := make([]irow, numVar)
	for v := 0; v < numVar; v++ {
		left := make([]int64, numEq)
		for e := 0; e < numEq; e++ {
			x := a.Data[e][v]
			if !x.IsInt64() {
				return nil, false, false
			}
			left[e] = x.Int64()
			if left[e] > intLimit || left[e] < -intLimit {
				return nil, false, false
			}
		}
		right := make([]int64, numVar)
		right[v] = 1
		rows[v] = irow{left, right, newMask(right)}
	}

	// maskContains reports small's support ⊆ big's support.
	maskContains := func(big, small []uint64) bool {
		for i := range small {
			if small[i]&^big[i] != 0 {
				return false
			}
		}
		return true
	}

	prune := func(rs []irow) []irow {
		var keep []irow
		for i := range rs {
			minimal := true
			for j := range rs {
				if i == j {
					continue
				}
				if maskContains(rs[i].mask, rs[j].mask) {
					if !maskContains(rs[j].mask, rs[i].mask) {
						minimal = false // strictly smaller support exists
						break
					}
					if j < i { // equal support: keep the first
						minimal = false
						break
					}
				}
			}
			if minimal {
				keep = append(keep, rs[i])
			}
		}
		return keep
	}

	for e := 0; e < numEq; e++ {
		var zero, pos, neg []irow
		for _, r := range rows {
			switch {
			case r.left[e] == 0:
				zero = append(zero, r)
			case r.left[e] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		next := zero
		for _, rp := range pos {
			for _, rn := range neg {
				cp := rn.left[e]
				if cp < 0 {
					cp = -cp
				}
				cn := rp.left[e]
				if cn < 0 {
					cn = -cn
				}
				left := make([]int64, numEq)
				for i := range left {
					left[i] = cp*rp.left[i] + cn*rn.left[i]
				}
				right := make([]int64, numVar)
				for i := range right {
					right[i] = cp*rp.right[i] + cn*rn.right[i]
				}
				var g int64
				for _, x := range left {
					g = gcd64(g, x)
				}
				for _, x := range right {
					g = gcd64(g, x)
				}
				if g > 1 {
					for i := range left {
						left[i] /= g
					}
					for i := range right {
						right[i] /= g
					}
				}
				for _, x := range left {
					if x > intLimit || x < -intLimit {
						return nil, false, false
					}
				}
				for _, x := range right {
					if x > intLimit || x < -intLimit {
						return nil, false, false
					}
				}
				next = append(next, irow{left, right, newMask(right)})
				if len(next) > maxRows {
					return nil, true, true
				}
			}
		}
		rows = prune(next)
		if len(rows) > maxRows {
			return nil, true, true
		}
	}

	out = make([]Vec, 0, len(rows))
	for _, r := range rows {
		var g int64
		allZero := true
		for _, x := range r.right {
			if x != 0 {
				allZero = false
			}
			g = gcd64(g, x)
		}
		if allZero {
			continue
		}
		if g > 1 {
			for i := range r.right {
				r.right[i] /= g
			}
		}
		v := make(Vec, numVar)
		for i, x := range r.right {
			v[i] = big.NewInt(x)
		}
		out = append(out, v)
	}
	return out, false, true
}

// gcd64 folds |x| into the running non-negative GCD g (g=0 is the
// identity, matching big.Int.GCD's treatment of the first operand).
func gcd64(g, x int64) int64 {
	if x < 0 {
		x = -x
	}
	for x != 0 {
		g, x = x, g%x
	}
	return g
}

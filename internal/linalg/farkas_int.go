package linalg

import "math/big"

// Machine-integer tiers of the Farkas ladder (see MinimalSemiflows).
// Both tiers run the identical elimination and support-pruning sequence
// as minimalSemiflowsBig on rows of plain int64 entries; they differ only
// in how wide the annihilation arithmetic is and how large an entry may
// grow before the tier gives up:
//
//   - the int64 tier bounds entries by intLimit = 2³⁰, so a combination
//     cp·x + cn·y stays below 2⁶¹ and native arithmetic cannot wrap;
//   - the int128 tier bounds entries by int128Limit = 2⁶², computing
//     combinations in 128-bit two-word arithmetic (math/bits.Mul64 /
//     Add64, int128.go) and refitting each GCD-normalised entry back
//     into an int64.
//
// A tier that sees an input or intermediate beyond its bound aborts and
// the caller escalates: int64 → int128 → big.Int. Because every tier
// performs the same combinations in the same order, prunes the same rows
// and normalises by the same GCDs, whichever tier completes returns
// exactly the rows — same values, same order — the big.Int path would.
const (
	intLimit    = int64(1) << 30
	int128Limit = int64(1) << 62
)

// intRow is one working row of a machine-integer tier: the remaining
// equation values (left), the non-negative unit-vector combination
// producing them (right), and a bitset over right's support replacing
// the O(width) support scans of the pruning step.
type intRow struct {
	left  []int64
	right []int64
	mask  []uint64
}

// combineFunc builds the annihilating combination cp·rp + cn·rn,
// GCD-normalises it, and reports ok=false when any entry leaves the
// tier's safe range.
type combineFunc func(cp, cn int64, rp, rn *intRow) (left, right []int64, ok bool)

// minimalSemiflowsInt is the int64 tier: native arithmetic, entries
// bounded by intLimit.
func minimalSemiflowsInt(a *Mat, maxRows int) (out []Vec, capped, ok bool) {
	return minimalSemiflowsMachine(a, maxRows, intLimit, combine64)
}

// minimalSemiflowsInt128 is the middle tier: entries bounded by
// int128Limit, combinations computed in 128-bit arithmetic.
func minimalSemiflowsInt128(a *Mat, maxRows int) (out []Vec, capped, ok bool) {
	return minimalSemiflowsMachine(a, maxRows, int128Limit, combine128)
}

// minimalSemiflowsMachine is the tier-generic Farkas driver: the
// identical elimination and support-pruning sequence as
// minimalSemiflowsBig, on machine-integer rows with the tier's
// combination step.
//
// Returns (result, capped, ok). ok=false means an input or intermediate
// left the tier's safe range and the caller must escalate; capped=true
// (with ok=true) is the authoritative "maxRows exceeded" verdict.
func minimalSemiflowsMachine(a *Mat, maxRows int, limit int64, combine combineFunc) (out []Vec, capped, ok bool) {
	numEq := a.Rows
	numVar := a.Cols
	words := (numVar + 63) / 64

	newMask := func(right []int64) []uint64 {
		m := make([]uint64, words)
		for i, v := range right {
			if v != 0 {
				m[i/64] |= 1 << (i % 64)
			}
		}
		return m
	}

	rows := make([]intRow, numVar)
	for v := 0; v < numVar; v++ {
		left := make([]int64, numEq)
		for e := 0; e < numEq; e++ {
			x := a.Data[e][v]
			if !x.IsInt64() {
				return nil, false, false
			}
			left[e] = x.Int64()
			if left[e] > limit || left[e] < -limit {
				return nil, false, false
			}
		}
		right := make([]int64, numVar)
		right[v] = 1
		rows[v] = intRow{left, right, newMask(right)}
	}

	// maskContains reports small's support ⊆ big's support.
	maskContains := func(big, small []uint64) bool {
		for i := range small {
			if small[i]&^big[i] != 0 {
				return false
			}
		}
		return true
	}

	prune := func(rs []intRow) []intRow {
		var keep []intRow
		for i := range rs {
			minimal := true
			for j := range rs {
				if i == j {
					continue
				}
				if maskContains(rs[i].mask, rs[j].mask) {
					if !maskContains(rs[j].mask, rs[i].mask) {
						minimal = false // strictly smaller support exists
						break
					}
					if j < i { // equal support: keep the first
						minimal = false
						break
					}
				}
			}
			if minimal {
				keep = append(keep, rs[i])
			}
		}
		return keep
	}

	for e := 0; e < numEq; e++ {
		var zero, pos, neg []intRow
		for _, r := range rows {
			switch {
			case r.left[e] == 0:
				zero = append(zero, r)
			case r.left[e] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		next := zero
		for pi := range pos {
			for ni := range neg {
				rp, rn := &pos[pi], &neg[ni]
				cp := rn.left[e]
				if cp < 0 {
					cp = -cp
				}
				cn := rp.left[e]
				if cn < 0 {
					cn = -cn
				}
				left, right, okc := combine(cp, cn, rp, rn)
				if !okc {
					return nil, false, false
				}
				next = append(next, intRow{left, right, newMask(right)})
				if len(next) > maxRows {
					return nil, true, true
				}
			}
		}
		rows = prune(next)
		if len(rows) > maxRows {
			return nil, true, true
		}
	}

	out = make([]Vec, 0, len(rows))
	for _, r := range rows {
		var g int64
		allZero := true
		for _, x := range r.right {
			if x != 0 {
				allZero = false
			}
			g = gcd64(g, x)
		}
		if allZero {
			continue
		}
		if g > 1 {
			for i := range r.right {
				r.right[i] /= g
			}
		}
		v := make(Vec, numVar)
		for i, x := range r.right {
			v[i] = big.NewInt(x)
		}
		out = append(out, v)
	}
	return out, false, true
}

// combine64 is the int64 tier's annihilation step. Coefficients and
// entries are ≤ intLimit, so a combined entry is at most 2·intLimit²
// < 2⁶² and the arithmetic cannot wrap; any entry beyond intLimit after
// GCD normalisation aborts the tier.
func combine64(cp, cn int64, rp, rn *intRow) ([]int64, []int64, bool) {
	left := make([]int64, len(rp.left))
	for i := range left {
		left[i] = cp*rp.left[i] + cn*rn.left[i]
	}
	right := make([]int64, len(rp.right))
	for i := range right {
		right[i] = cp*rp.right[i] + cn*rn.right[i]
	}
	var g int64
	for _, x := range left {
		g = gcd64(g, x)
	}
	for _, x := range right {
		g = gcd64(g, x)
	}
	if g > 1 {
		for i := range left {
			left[i] /= g
		}
		for i := range right {
			right[i] /= g
		}
	}
	for _, x := range left {
		if x > intLimit || x < -intLimit {
			return nil, nil, false
		}
	}
	for _, x := range right {
		if x > intLimit || x < -intLimit {
			return nil, nil, false
		}
	}
	return left, right, true
}

// combine128 is the int128 tier's annihilation step: coefficients and
// entries are ≤ int128Limit = 2⁶², so each product is below 2¹²⁴ and the
// two-term sum below 2¹²⁵ — exact in signed 128-bit arithmetic. The row
// GCD runs as binary GCD on 128-bit magnitudes; after normalisation each
// entry must refit into [−int128Limit, int128Limit] or the tier aborts.
func combine128(cp, cn int64, rp, rn *intRow) ([]int64, []int64, bool) {
	numEq, numVar := len(rp.left), len(rp.right)
	wide := make([]i128, numEq+numVar)
	var g u128
	for i := 0; i < numEq; i++ {
		v := mul64(cp, rp.left[i]).add(mul64(cn, rn.left[i]))
		wide[i] = v
		g = gcd128(g, v.abs())
	}
	for i := 0; i < numVar; i++ {
		v := mul64(cp, rp.right[i]).add(mul64(cn, rn.right[i]))
		wide[numEq+i] = v
		g = gcd128(g, v.abs())
	}
	divide := !g.isZero() && !g.isOne()
	if divide && g.hi != 0 {
		// The row's common divisor itself exceeds 64 bits; every entry is
		// astronomically large, so hand the whole system to big.Int.
		return nil, nil, false
	}
	narrow := func(v i128) (int64, bool) {
		q := v.abs()
		if divide {
			q = q.div64(g.lo)
		}
		if q.hi != 0 || q.lo > uint64(int128Limit) {
			return 0, false
		}
		x := int64(q.lo)
		if v.sign() < 0 {
			x = -x
		}
		return x, true
	}
	left := make([]int64, numEq)
	for i := 0; i < numEq; i++ {
		x, ok := narrow(wide[i])
		if !ok {
			return nil, nil, false
		}
		left[i] = x
	}
	right := make([]int64, numVar)
	for i := 0; i < numVar; i++ {
		x, ok := narrow(wide[numEq+i])
		if !ok {
			return nil, nil, false
		}
		right[i] = x
	}
	return left, right, true
}

// gcd64 folds |x| into the running non-negative GCD g (g=0 is the
// identity, matching big.Int.GCD's treatment of the first operand).
func gcd64(g, x int64) int64 {
	if x < 0 {
		x = -x
	}
	for x != 0 {
		g, x = x, g%x
	}
	return g
}

package safenet

import (
	"errors"
	"strings"
	"testing"

	"fcpn/internal/core"
	"fcpn/internal/figures"
	"fcpn/internal/petri"
)

// safeChoiceLoop is a safe, closed control loop with one free choice:
// idle -> (work | skip) -> idle.
func safeChoiceLoop() *petri.Net {
	b := petri.NewBuilder("safeloop")
	idle := b.MarkedPlace("idle", 1)
	decide := b.Place("decide")
	done := b.Place("done")
	poll := b.Transition("poll")
	work := b.Transition("work")
	skip := b.Transition("skip")
	finish := b.Transition("finish")
	b.Chain(idle, poll, decide)
	b.Arc(decide, work)
	b.Arc(decide, skip)
	b.ArcTP(work, done)
	b.ArcTP(skip, done)
	b.Chain(done, finish, idle)
	return b.Build()
}

// boundedMultirate is a closed, live, 2-bounded (not safe) multirate loop:
// credit place holds 2 tokens, t1 produces into p1, t2 consumes 2.
func boundedMultirate() *petri.Net {
	b := petri.NewBuilder("multirate")
	credit := b.MarkedPlace("credit", 2)
	p1 := b.Place("p1")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	b.Arc(credit, t1)
	b.ArcTP(t1, p1)
	b.WeightedArc(p1, t2, 2)
	b.WeightedArcTP(t2, credit, 2)
	return b.Build()
}

func TestSynthesizeSafeLoop(t *testing.T) {
	res, err := Synthesize(safeChoiceLoop(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 3 {
		t.Fatalf("states = %d, want 3 (idle, decide, done)", res.States)
	}
	for _, frag := range []string{
		"void task_main(void)",
		"switch (state)",
		"switch (read_decide())",
		"case 0:",
		"poll();",
	} {
		if !strings.Contains(res.C, frag) {
			t.Fatalf("C missing %q:\n%s", frag, res.C)
		}
	}
	// A state machine needs no counters at all.
	if strings.Contains(res.C, "n_") {
		t.Fatal("safe-net code must not contain counters")
	}
}

// TestRejectsEnvironmentInputs reproduces the paper's first criticism of
// Lin's method: source transitions (environment inputs with independent
// rates) cannot be expressed under the safeness assumption.
func TestRejectsEnvironmentInputs(t *testing.T) {
	for _, n := range []*petri.Net{figures.Figure3a(), figures.Figure4(), figures.Figure5()} {
		if _, err := Synthesize(n, Options{}); !errors.Is(err, ErrHasSources) {
			t.Fatalf("%s: err = %v, want ErrHasSources", n.Name(), err)
		}
	}
}

// TestRejectsMultirate reproduces the paper's second criticism: safeness
// makes multirate specifications impossible — the bounded multirate loop
// is rejected by Lin's method but scheduled fine by QSS.
func TestRejectsMultirate(t *testing.T) {
	n := boundedMultirate()
	if _, err := Synthesize(n, Options{}); !errors.Is(err, ErrNotSafe) {
		t.Fatalf("err = %v, want ErrNotSafe", err)
	}
	// QSS handles the same net: one allocation (no choices), one cycle.
	s, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatalf("QSS must schedule the multirate loop: %v", err)
	}
	if len(s.Cycles) != 1 {
		t.Fatalf("cycles = %d", len(s.Cycles))
	}
}

func TestRejectsUnboundedClosedNet(t *testing.T) {
	// Closed net that is unbounded: t produces two tokens into its own
	// credit loop per firing.
	b := petri.NewBuilder("grow")
	p := b.MarkedPlace("p", 1)
	tr := b.Transition("t")
	b.Arc(p, tr)
	b.WeightedArcTP(tr, p, 2)
	if _, err := Synthesize(b.Build(), Options{}); !errors.Is(err, ErrNotSafe) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadlockStateEmitsReturn(t *testing.T) {
	// One-shot safe net: fires once then halts.
	b := petri.NewBuilder("oneshot")
	p := b.MarkedPlace("p", 1)
	q := b.Place("q")
	tr := b.Transition("t")
	b.Chain(p, tr, q)
	res, err := Synthesize(b.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.C, "return; /* deadlock") {
		t.Fatalf("missing deadlock case:\n%s", res.C)
	}
}

func TestConcurrencySerialised(t *testing.T) {
	// Two independent marked loops: states with two enabled non-conflicting
	// transitions must serialise, not dispatch on a choice value.
	b := petri.NewBuilder("conc")
	for _, s := range []string{"a", "b"} {
		p := b.MarkedPlace("p"+s, 1)
		q := b.Place("q" + s)
		t1 := b.Transition("go" + s)
		t2 := b.Transition("back" + s)
		b.Chain(p, t1, q, t2, p)
	}
	res, err := Synthesize(b.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.C, "/* serialised */") {
		t.Fatalf("expected serialisation comment:\n%s", res.C)
	}
	if strings.Contains(res.C, "read_") {
		t.Fatal("independent concurrency must not become a choice dispatch")
	}
}

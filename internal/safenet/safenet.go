// Package safenet implements the comparison baseline the paper argues
// against (Section 1, Lin [6], "Software synthesis of process-based
// concurrent programs", DAC 1998): code synthesis by enumerating the
// reachability graph of a *safe* (1-bounded) Petri net and compiling it to
// a single state-machine task.
//
// The implementation deliberately has Lin's limitations, which the paper
// calls out and this repository demonstrates in tests:
//
//   - it rejects nets with source transitions (safeness excludes modelling
//     the environment with source/sink transitions, so independent-rate
//     inputs cannot be expressed), and
//   - it rejects non-safe nets (safeness makes multirate specifications —
//     FFTs, downsamplers, the paper's Figure 4 — inexpressible).
//
// Within its domain it is complete: any safe net yields a finite state
// machine whose code needs no counters at all.
package safenet

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fcpn/internal/petri"
	"fcpn/internal/reach"
)

// ErrHasSources is returned for nets with source transitions: a net with
// an input that can always fire is never bounded, so never safe.
var ErrHasSources = errors.New("safenet: net has source transitions (Lin's method cannot model environment inputs)")

// ErrNotSafe is returned when some reachable marking puts more than one
// token in a place.
var ErrNotSafe = errors.New("safenet: net is not safe (1-bounded)")

// Result is the synthesised state machine.
type Result struct {
	// C is the generated single-task implementation.
	C string
	// States is the number of reachable markings.
	States int
	// Edges is the number of firings in the reachability graph.
	Edges int
}

// Options bounds the enumeration.
type Options struct {
	// MaxStates caps reachability exploration (0 = 100000).
	MaxStates int
}

// Synthesize compiles a safe Petri net into a single C task that walks the
// reachability graph: one case per marking, one firing per step, choices
// dispatched on read_<place>() exactly where several transitions of one
// equal-conflict cluster are enabled. Concurrency is serialised
// deterministically (lowest transition index first), which is sound for
// safe nets.
func Synthesize(n *petri.Net, opt Options) (*Result, error) {
	if len(n.SourceTransitions()) > 0 {
		return nil, ErrHasSources
	}
	bounded, err := reach.Boundedness(n, n.InitialMarking())
	if err != nil {
		return nil, err
	}
	if !bounded {
		return nil, ErrNotSafe
	}
	k, err := reach.KBound(n, n.InitialMarking())
	if err != nil {
		return nil, err
	}
	if k > 1 {
		return nil, fmt.Errorf("%w: %d-bounded", ErrNotSafe, k)
	}
	g, err := reach.BuildGraph(n, n.InitialMarking(), reach.Options{MaxStates: opt.MaxStates})
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "/* Safe-net state-machine implementation of %q (Lin-style baseline). */\n", n.Name())
	fmt.Fprintf(&b, "/* %d states, %d edges. */\n\n", g.NumStates(), len(g.Edges))
	emitted := map[petri.Transition]bool{}
	choiceUsed := map[petri.Place]bool{}
	for _, e := range g.Edges {
		emitted[e.Transition] = true
	}
	var ts []int
	for t := range emitted {
		ts = append(ts, int(t))
	}
	sort.Ints(ts)
	for _, t := range ts {
		fmt.Fprintf(&b, "extern void %s(void);\n", n.TransitionName(petri.Transition(t)))
	}

	// Pre-compute, per state, the plan: either a single firing, a choice
	// dispatch, or a halt.
	plans := make([][]edgeTo, g.NumStates())
	for s := 0; s < g.NumStates(); s++ {
		for _, ei := range g.Succ[s] {
			e := g.Edges[ei]
			plans[s] = append(plans[s], edgeTo{e.Transition, e.To})
		}
		sort.Slice(plans[s], func(i, j int) bool { return plans[s][i].t < plans[s][j].t })
	}
	// Which choice places dispatch anywhere?
	for s := 0; s < g.NumStates(); s++ {
		if cluster := clusterOf(n, plans[s]); cluster != nil {
			choiceUsed[cluster.Places[0]] = true
		}
	}
	var cps []int
	for p := range choiceUsed {
		cps = append(cps, int(p))
	}
	sort.Ints(cps)
	for _, p := range cps {
		fmt.Fprintf(&b, "extern int read_%s(void);\n", n.PlaceName(petri.Place(p)))
	}

	b.WriteString("\nvoid task_main(void) {\n\tint state = 0;\n\tfor (;;) {\n\t\tswitch (state) {\n")
	for s := 0; s < g.NumStates(); s++ {
		fmt.Fprintf(&b, "\t\tcase %d: /* %s */\n", s, g.Markings[s])
		switch {
		case len(plans[s]) == 0:
			b.WriteString("\t\t\treturn; /* deadlock: no enabled transition */\n")
		case len(plans[s]) == 1:
			fmt.Fprintf(&b, "\t\t\t%s(); state = %d; break;\n",
				n.TransitionName(plans[s][0].t), plans[s][0].to)
		default:
			if cluster := clusterOf(n, plans[s]); cluster != nil {
				// All enabled firings resolve one free choice: dispatch
				// on the control value.
				p := cluster.Places[0]
				fmt.Fprintf(&b, "\t\t\tswitch (read_%s()) {\n", n.PlaceName(p))
				for i, e := range plans[s] {
					fmt.Fprintf(&b, "\t\t\tcase %d: %s(); state = %d; break;\n",
						i, n.TransitionName(e.t), e.to)
				}
				b.WriteString("\t\t\t}\n\t\t\tbreak;\n")
			} else {
				// Concurrency: serialise on the lowest index.
				fmt.Fprintf(&b, "\t\t\t%s(); state = %d; break; /* serialised */\n",
					n.TransitionName(plans[s][0].t), plans[s][0].to)
			}
		}
	}
	b.WriteString("\t\t}\n\t}\n}\n")

	return &Result{C: b.String(), States: g.NumStates(), Edges: len(g.Edges)}, nil
}

// edgeTo is one outgoing firing of a reachability-graph state.
type edgeTo struct {
	t  petri.Transition
	to int
}

// clusterOf reports the free-choice cluster when every planned firing
// belongs to one equal-conflict set with a single shared place, else nil.
func clusterOf(n *petri.Net, plans []edgeTo) *petri.ConflictCluster {
	if len(plans) < 2 {
		return nil
	}
	first := plans[0].t
	for _, e := range plans[1:] {
		if !n.EqualConflict(first, e.t) {
			return nil
		}
	}
	pre := n.Pre(first)
	if len(pre) != 1 {
		return nil
	}
	cluster := &petri.ConflictCluster{Places: []petri.Place{pre[0].Place}}
	for _, e := range plans {
		cluster.Transitions = append(cluster.Transitions, e.t)
	}
	return cluster
}

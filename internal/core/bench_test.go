package core

import (
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/netgen"
)

func BenchmarkReduce(b *testing.B) {
	n := figures.Figure5()
	allocs, err := EnumerateAllocations(n, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, a := range allocs {
			Reduce(n, a)
		}
	}
}

func BenchmarkEnumerateDistinctReductions(b *testing.B) {
	n := netgen.RandomSchedulablePipeline(1234, netgen.Config{
		MaxSources: 2, MaxDepth: 6, MaxBranch: 2, MaxWeight: 2,
		ChoicePct: 60, MultiratePct: 20,
	})
	for i := 0; i < b.N; i++ {
		if _, err := EnumerateDistinctReductions(n, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckReduction(b *testing.B) {
	n := figures.Figure5()
	reds, err := EnumerateDistinctReductions(n, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range reds {
			rep := CheckReduction(n, r, Options{})
			if !rep.Schedulable {
				b.Fatal(rep.FailReason)
			}
		}
	}
}

func BenchmarkPartitionTasks(b *testing.B) {
	n := figures.Figure5()
	for i := 0; i < b.N; i++ {
		if _, err := PartitionTasks(n, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

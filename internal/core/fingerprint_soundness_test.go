package core

import (
	"testing"

	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

// checkFingerprintSoundness asserts the property the fingerprint-bucketed
// dedup rests on: equal canonical (Weisfeiler–Lehman) hashes imply equal
// round-0 fingerprints, so bucketing by fingerprint can never split an
// isomorphism class — a singleton bucket is provably alone in its class
// and safely skips the WL run. (The converse may fail: distinct classes
// sharing a fingerprint merely share a bucket and are separated by the WL
// escalation.)
func checkFingerprintSoundness(t *testing.T, name string, n *petri.Net) {
	t.Helper()
	if n.Validate() != nil {
		return
	}
	reds, err := EnumerateDistinctReductions(n, 4096)
	if err != nil {
		return
	}
	byHash := map[string]uint64{}
	for i, r := range reds {
		fp := r.Fingerprint()
		h := r.Subnet().Net.CanonicalHash()
		if prev, ok := byHash[h]; ok && prev != fp {
			t.Fatalf("%s: reduction %d: canonical hash %s has fingerprints %x and %x — fingerprint split a WL class",
				name, i, h[:12], prev, fp)
		}
		byHash[h] = fp
	}
}

func TestFingerprintNeverSplitsWLClass(t *testing.T) {
	for name, n := range equivalenceCorpus(t) {
		checkFingerprintSoundness(t, name, n)
	}
}

// FuzzFingerprintSoundness drives the soundness property over the netgen
// generators: for every seeded net (both the schedulable-by-construction
// pipelines and the unconstrained generator), equal CanonicalHash must
// imply equal Fingerprint across the net's distinct T-reductions.
func FuzzFingerprintSoundness(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	cfg := netgen.DefaultConfig()
	f.Fuzz(func(t *testing.T, seed uint64) {
		checkFingerprintSoundness(t, "pipeline", netgen.RandomSchedulablePipeline(seed, cfg))
		checkFingerprintSoundness(t, "random", netgen.RandomNet(seed, cfg))
	})
}

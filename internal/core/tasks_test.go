package core

import (
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/petri"
)

func TestFigure5TwoTasks(t *testing.T) {
	// Figure 5 has two independent-rate sources t1 and t8: they never
	// share a minimal T-invariant, so the partition yields two tasks, with
	// t6 shared (it drains p4, fed by both t4 and t9).
	n := figures.Figure5()
	tp, err := PartitionTasks(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumTasks() != 2 {
		t.Fatalf("tasks = %d, want 2", tp.NumTasks())
	}
	byName := map[string]Task{}
	for _, task := range tp.Tasks {
		byName[task.Name] = task
	}
	t1task, ok := byName["task_t1"]
	if !ok {
		t.Fatalf("missing task_t1: %v", byName)
	}
	t8task, ok := byName["task_t8"]
	if !ok {
		t.Fatalf("missing task_t8: %v", byName)
	}
	t6, _ := n.TransitionByName("t6")
	if !t1task.Contains(t6) || !t8task.Contains(t6) {
		t.Fatal("t6 must be shared between both tasks")
	}
	t2, _ := n.TransitionByName("t2")
	if t8task.Contains(t2) {
		t.Fatal("t2 belongs only to the t1 task")
	}
	shared := tp.SharedTransitions()
	if len(shared) != 1 || shared[0] != t6 {
		t.Fatalf("SharedTransitions = %v, want {t6}", n.SequenceNames(shared))
	}
}

func TestFigure3aSingleTask(t *testing.T) {
	tp, err := PartitionTasks(figures.Figure3a(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumTasks() != 1 {
		t.Fatalf("tasks = %d, want 1 (single input)", tp.NumTasks())
	}
	if got := len(tp.Tasks[0].Transitions); got != 5 {
		t.Fatalf("task covers %d transitions, want all 5", got)
	}
}

func TestDependentSourcesMerge(t *testing.T) {
	// Two sources feeding the same synchronising transition are
	// rate-dependent: one task.
	b := petri.NewBuilder("dep")
	s1 := b.Transition("s1")
	s2 := b.Transition("s2")
	join := b.Transition("join")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	b.Chain(s1, p1, join)
	b.Chain(s2, p2, join)
	n := b.Build()
	tp, err := PartitionTasks(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumTasks() != 1 {
		t.Fatalf("tasks = %d, want 1 (s1 and s2 share the join invariant)", tp.NumTasks())
	}
	if len(tp.Tasks[0].Sources) != 2 {
		t.Fatalf("sources = %v", tp.Tasks[0].Sources)
	}
}

func TestAutonomousTask(t *testing.T) {
	// A net with no sources at all becomes one autonomous task.
	b := petri.NewBuilder("loop")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	p := b.MarkedPlace("p", 1)
	q := b.Place("q")
	b.Chain(t1, p, t2, q, t1)
	tp, err := PartitionTasks(b.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumTasks() != 1 || tp.Tasks[0].Name != "task_main" {
		t.Fatalf("tasks = %+v", tp.Tasks)
	}
}

func TestOrphanLoopTask(t *testing.T) {
	// A source-driven chain next to a disjoint autonomous loop: the loop
	// forms its own task.
	b := petri.NewBuilder("mixed")
	src := b.Transition("src")
	sink := b.Transition("sink")
	p := b.Place("p")
	b.Chain(src, p, sink)
	l1 := b.Transition("l1")
	l2 := b.Transition("l2")
	lp := b.MarkedPlace("lp", 1)
	lq := b.Place("lq")
	b.Chain(l1, lp, l2, lq, l1)
	n := b.Build()
	tp, err := PartitionTasks(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumTasks() != 2 {
		t.Fatalf("tasks = %d, want 2 (source chain + autonomous loop)", tp.NumTasks())
	}
	found := false
	for _, task := range tp.Tasks {
		if task.Name == "task_autonomous" {
			found = true
			if len(task.Transitions) != 2 {
				t.Fatalf("autonomous task = %v", task.Transitions)
			}
		}
	}
	if !found {
		t.Fatal("no autonomous task created")
	}
}

func TestSourceFreeInvariantAttaches(t *testing.T) {
	// Figure 5's invariant (t6,t8,t9) contains source t8, so it is not
	// source-free; build a variant where an internal loop touches a task:
	// src -> p -> a -> q -> sink, and loop a? Instead: loop (l1,l2) where
	// l1 also consumes from the source chain — shares transition? Simplest
	// check: loop sharing a transition with a task attaches to it.
	b := petri.NewBuilder("attach")
	src := b.Transition("src")
	a := b.Transition("a")
	p := b.Place("p")
	b.Chain(src, p, a)
	// a participates in a marked self-loop (state), giving a source-free
	// invariant {a}: place s -> a -> s.
	s := b.MarkedPlace("s", 1)
	b.Arc(s, a)
	b.ArcTP(a, s)
	n := b.Build()
	tp, err := PartitionTasks(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumTasks() != 1 {
		t.Fatalf("tasks = %+v", tp.Tasks)
	}
}

func TestTaskContains(t *testing.T) {
	task := Task{Transitions: []petri.Transition{1, 3, 5}}
	if !task.Contains(3) || task.Contains(2) {
		t.Fatal("Contains wrong")
	}
}

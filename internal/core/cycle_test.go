package core

import (
	"errors"
	"testing"
	"testing/quick"

	"fcpn/internal/figures"
	"fcpn/internal/petri"
)

func TestFindCompleteCycleFigure2(t *testing.T) {
	n := figures.Figure2()
	seq, err := FindCompleteCycle(n, []int{4, 2, 1}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 7 {
		t.Fatalf("len = %d", len(seq))
	}
	if err := VerifyCompleteCycle(n, seq); err != nil {
		t.Fatal(err)
	}
}

func TestFindCompleteCycleRejectsNonInvariant(t *testing.T) {
	n := figures.Figure2()
	// (1,0,0) fires t1 once and leaves a token: greedy completes the
	// firings but the marking check must fail.
	if _, err := FindCompleteCycle(n, []int{1, 0, 0}, 1000); err == nil {
		t.Fatal("non-invariant accepted")
	}
}

func TestFindCompleteCycleDeadlock(t *testing.T) {
	// Unmarked cycle: counts (1,1) are a T-invariant but nothing can fire.
	b := petri.NewBuilder("dead")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	p := b.Place("p")
	q := b.Place("q")
	b.Chain(t1, p, t2, q, t1)
	n := b.Build()
	_, err := FindCompleteCycle(n, []int{1, 1}, 1000)
	if !errors.Is(err, ErrCycleDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestFindCompleteCycleValidation(t *testing.T) {
	n := figures.Figure2()
	if _, err := FindCompleteCycle(n, []int{1}, 1000); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FindCompleteCycle(n, []int{-1, 0, 0}, 1000); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := FindCompleteCycle(n, []int{4, 2, 1}, 3); err == nil {
		t.Fatal("cap ignored")
	}
	if _, err := FindCompleteCycle(figures.Figure3a(), []int{1, 1, 0, 1, 0}, 100); err == nil {
		t.Fatal("non-conflict-free net accepted")
	}
}

func TestVerifyCompleteCycleFailures(t *testing.T) {
	n := figures.Figure2()
	t2, _ := n.TransitionByName("t2")
	if err := VerifyCompleteCycle(n, []petri.Transition{t2}); err == nil {
		t.Fatal("disabled firing accepted")
	}
	t1, _ := n.TransitionByName("t1")
	if err := VerifyCompleteCycle(n, []petri.Transition{t1}); err == nil {
		t.Fatal("non-returning sequence accepted")
	}
}

func TestEnumerateAllocationsShape(t *testing.T) {
	n := figures.Figure5()
	allocs, err := EnumerateAllocations(n, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 {
		t.Fatalf("allocations = %d", len(allocs))
	}
	if CountAllocations(n) != 2 {
		t.Fatalf("CountAllocations = %d", CountAllocations(n))
	}
	// Marked graph: exactly one (empty) allocation.
	mg := figures.Figure2()
	allocs, err = EnumerateAllocations(mg, 100)
	if err != nil || len(allocs) != 1 || len(allocs[0].Chosen) != 0 {
		t.Fatalf("marked graph allocations = %v, %v", allocs, err)
	}
	if CountAllocations(mg) != 1 {
		t.Fatal("CountAllocations of MG must be 1")
	}
}

func TestAllocated(t *testing.T) {
	n := figures.Figure3a()
	allocs, _ := EnumerateAllocations(n, 100)
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	for _, a := range allocs {
		if !a.Allocated(t1) {
			t.Fatal("non-conflict transitions are always allocated")
		}
		if a.Allocated(t2) == a.Allocated(t3) {
			t.Fatal("exactly one of t2/t3 is allocated")
		}
	}
}

func TestAllocationCapCombinatorial(t *testing.T) {
	// A net with 12 binary choices has 4096 allocations.
	b := petri.NewBuilder("big")
	for i := 0; i < 12; i++ {
		src := b.Transition(tname("s", i))
		p := b.Place(tname("p", i))
		b.ArcTP(src, p)
		b.Arc(p, b.Transition(tname("a", i)))
		b.Arc(p, b.Transition(tname("b", i)))
	}
	n := b.Build()
	if got := CountAllocations(n); got != 4096 {
		t.Fatalf("CountAllocations = %d", got)
	}
	if _, err := EnumerateAllocations(n, 100); !errors.Is(err, ErrTooManyAllocations) {
		t.Fatal("cap must trigger")
	}
	allocs, err := EnumerateAllocations(n, 5000)
	if err != nil || len(allocs) != 4096 {
		t.Fatalf("enumeration = %d, %v", len(allocs), err)
	}
}

func tname(prefix string, i int) string {
	return prefix + string(rune('A'+i))
}

// Property: for every schedulable figure net, every cycle returned by
// Solve is a verified finite complete cycle whose counts are a T-invariant
// realisation covering the reduction.
func TestSolveCyclesAlwaysValidProperty(t *testing.T) {
	nets := []*petri.Net{figures.Figure2(), figures.Figure3a(), figures.Figure4(), figures.Figure5()}
	for _, n := range nets {
		s, err := Solve(n, Options{})
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		for _, c := range s.Cycles {
			if err := VerifyCompleteCycle(n, c.Sequence); err != nil {
				t.Fatalf("%s: %v", n.Name(), err)
			}
			// Every transition of the reduction occurs at least once
			// (Theorem 3.1's requirement).
			for _, pt := range c.Reduction.KeptTransitions() {
				if c.Counts[pt] == 0 {
					t.Fatalf("%s: transition %s of the reduction missing from cycle",
						n.Name(), n.TransitionName(pt))
				}
			}
		}
	}
}

// Property: random two-branch pipeline nets are schedulable exactly when
// both branches drain to sinks without re-synchronising.
func TestRandomChoicePipelinesProperty(t *testing.T) {
	f := func(w1Raw, w2Raw uint8, resync bool) bool {
		w1 := int(w1Raw%3) + 1
		w2 := int(w2Raw%3) + 1
		b := petri.NewBuilder("rand")
		t1 := b.Transition("t1")
		t2 := b.Transition("t2")
		t3 := b.Transition("t3")
		t4 := b.Transition("t4")
		p1 := b.Place("p1")
		p2 := b.Place("p2")
		p3 := b.Place("p3")
		b.ArcTP(t1, p1)
		b.Arc(p1, t2)
		b.Arc(p1, t3)
		b.WeightedArcTP(t2, p2, w1)
		b.WeightedArcTP(t3, p3, w2)
		if resync {
			// Both branches feed the same consumer: not schedulable.
			b.WeightedArc(p2, t4, w1)
			b.WeightedArc(p3, t4, w2)
		} else {
			t5 := b.Transition("t5")
			b.WeightedArc(p2, t4, w1)
			b.WeightedArc(p3, t5, w2)
		}
		n := b.Build()
		got := Schedulable(n, Options{})
		return got == !resync
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"errors"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

// TestRandomPipelinesAlwaysSchedulable: nets from the constrained
// generator are quasi-statically schedulable by construction; every cycle
// of every schedule must verify as a finite complete cycle containing all
// of its reduction's transitions, and the buffer bounds must be finite.
func TestRandomPipelinesAlwaysSchedulable(t *testing.T) {
	for seed := uint64(0); seed < 150; seed++ {
		n := netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig())
		s, err := Solve(n, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, n)
		}
		for _, c := range s.Cycles {
			if err := VerifyCompleteCycle(n, c.Sequence); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, pt := range c.Reduction.KeptTransitions() {
				if c.Counts[pt] == 0 {
					t.Fatalf("seed %d: cycle misses reduction transition %s",
						seed, n.TransitionName(pt))
				}
			}
		}
		if _, err := s.BufferBounds(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The partition covers at least the sources.
		tp, err := PartitionTasks(n, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tp.NumTasks() < 1 || tp.NumTasks() > len(n.SourceTransitions()) {
			t.Fatalf("seed %d: %d tasks for %d sources",
				seed, tp.NumTasks(), len(n.SourceTransitions()))
		}
	}
}

// TestRandomSyncNetsDiagnosed: the unconstrained generator's synchronising
// variants must either schedule cleanly or fail with a diagnosable
// NotSchedulableError — never panic, never return an unclassified error.
func TestRandomSyncNetsDiagnosed(t *testing.T) {
	sched, unsched := 0, 0
	for seed := uint64(0); seed < 150; seed++ {
		n := netgen.RandomNet(seed, netgen.DefaultConfig())
		_, err := Solve(n, Options{})
		switch {
		case err == nil:
			sched++
		default:
			var nse *NotSchedulableError
			if !errors.As(err, &nse) {
				t.Fatalf("seed %d: unclassified error %v", seed, err)
			}
			if nse.Report.FailReason == "" {
				t.Fatalf("seed %d: empty diagnosis", seed)
			}
			unsched++
		}
	}
	if sched == 0 || unsched == 0 {
		t.Fatalf("want both outcomes, got schedulable=%d unschedulable=%d", sched, unsched)
	}
}

// TestSimplifyPreservesSchedulability: Murata's reduction rules preserve
// liveness and boundedness, so the quasi-static schedulability verdict
// must survive simplification on both the figure nets and random nets.
func TestSimplifyPreservesSchedulability(t *testing.T) {
	check := func(name string, n *petri.Net) {
		t.Helper()
		before := Schedulable(n, Options{})
		red, trace := petri.Simplify(n)
		if err := red.Validate(); err != nil {
			t.Fatalf("%s: simplified net invalid: %v (trace %v)", name, err, trace)
		}
		after := Schedulable(red, Options{})
		if before != after {
			t.Fatalf("%s: schedulability changed %v -> %v (trace %v)\nbefore:\n%s\nafter:\n%s",
				name, before, after, trace, petri.Format(n), petri.Format(red))
		}
	}
	// Fixed order, not a map range: a failure must name the same net on
	// every run.
	for _, tc := range []struct {
		name string
		net  *petri.Net
	}{
		{"figure3a", figures.Figure3a()},
		{"figure3b", figures.Figure3b()},
		{"figure4", figures.Figure4()},
		{"figure5", figures.Figure5()},
		{"figure7", figures.Figure7()},
	} {
		check(tc.name, tc.net)
	}
	for seed := uint64(0); seed < 60; seed++ {
		check("rand", netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig()))
	}
}

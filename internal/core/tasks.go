package core

import (
	"fmt"
	"sort"
	"strings"

	"fcpn/internal/invariant"
	"fcpn/internal/petri"
)

// Task is one software task of the synthesised implementation: a group of
// source transitions with dependent firing rates plus every transition
// belonging to a T-invariant of one of those sources. Transitions may
// appear in several tasks (shared code, Section 4).
type Task struct {
	// Name is derived from the source transitions ("task_Cell").
	Name string
	// Sources are the input transitions that activate the task.
	Sources []petri.Transition
	// Transitions is the sorted set of transitions the task executes.
	Transitions []petri.Transition
}

// Contains reports whether the task executes transition t.
func (tk *Task) Contains(t petri.Transition) bool {
	i := sort.Search(len(tk.Transitions), func(i int) bool { return tk.Transitions[i] >= t })
	return i < len(tk.Transitions) && tk.Transitions[i] == t
}

// TaskPartition groups the net's transitions into the minimum number of
// quasi-statically schedulable tasks: one per group of dependent-rate
// sources. Two sources have dependent rates when they occur in a common
// minimal T-invariant of the net (their firing counts are then rationally
// related); independence is the transitive closure's complement.
type TaskPartition struct {
	Net   *petri.Net
	Tasks []Task
}

// PartitionTasks computes the task partition of the net from its minimal
// T-invariants. For a net without source transitions the whole net forms
// one autonomous task.
func PartitionTasks(n *petri.Net, opt Options) (*TaskPartition, error) {
	tis, err := invariant.TInvariantsCached(n, invariant.Options{MaxRows: opt.MaxRows, Trace: opt.Trace}, opt.Semiflows)
	if err != nil {
		return nil, fmt.Errorf("core: task partition: %w", err)
	}
	return partitionWith(n, tis), nil
}

func partitionWith(n *petri.Net, tis []invariant.TInvariant) *TaskPartition {
	sources := n.SourceTransitions()
	tp := &TaskPartition{Net: n}
	if len(sources) == 0 {
		all := n.Transitions()
		tp.Tasks = []Task{{Name: "task_main", Transitions: all}}
		return tp
	}

	// Union-find over sources: two sources are joined when a minimal
	// invariant contains both.
	parent := make(map[petri.Transition]petri.Transition, len(sources))
	for _, s := range sources {
		parent[s] = s
	}
	var find func(x petri.Transition) petri.Transition
	find = func(x petri.Transition) petri.Transition {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b petri.Transition) { parent[find(a)] = find(b) }
	for _, ti := range tis {
		var inTi []petri.Transition
		for _, s := range sources {
			if ti.Contains(s) {
				inTi = append(inTi, s)
			}
		}
		for i := 1; i < len(inTi); i++ {
			union(inTi[0], inTi[i])
		}
	}

	// Group sources and collect each group's transitions: the union of
	// supports of every invariant containing one of the group's sources.
	groups := map[petri.Transition][]petri.Transition{}
	for _, s := range sources {
		r := find(s)
		groups[r] = append(groups[r], s)
	}
	var roots []petri.Transition
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })

	for _, r := range roots {
		set := map[petri.Transition]bool{}
		for _, s := range groups[r] {
			set[s] = true
		}
		for _, ti := range tis {
			hit := false
			for _, s := range groups[r] {
				if ti.Contains(s) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			for _, t := range ti.Support() {
				set[t] = true
			}
		}
		task := Task{Sources: groups[r]}
		for t := range set {
			task.Transitions = append(task.Transitions, t)
		}
		sort.Slice(task.Transitions, func(i, j int) bool { return task.Transitions[i] < task.Transitions[j] })
		names := make([]string, len(task.Sources))
		for i, s := range task.Sources {
			names[i] = n.TransitionName(s)
		}
		// Name-sort so the task's identity depends on which sources it
		// owns, not on the order the net happened to declare them —
		// isomorphic nets must synthesise identically named tasks.
		sort.Strings(names)
		task.Name = "task_" + strings.Join(names, "_")
		tp.Tasks = append(tp.Tasks, task)
	}

	// Source-free invariants (autonomous loops) attach to every task they
	// share a transition with; fully disjoint ones form an extra task.
	var orphan []petri.Transition
	for _, ti := range tis {
		srcFree := true
		for _, s := range sources {
			if ti.Contains(s) {
				srcFree = false
				break
			}
		}
		if !srcFree {
			continue
		}
		attached := false
		for i := range tp.Tasks {
			shares := false
			for _, t := range ti.Support() {
				if tp.Tasks[i].Contains(t) {
					shares = true
					break
				}
			}
			if shares {
				tp.Tasks[i].Transitions = mergeSorted(tp.Tasks[i].Transitions, ti.Support())
				attached = true
			}
		}
		if !attached {
			orphan = mergeSorted(orphan, ti.Support())
		}
	}
	if len(orphan) > 0 {
		tp.Tasks = append(tp.Tasks, Task{Name: "task_autonomous", Transitions: orphan})
	}
	return tp
}

func mergeSorted(a, b []petri.Transition) []petri.Transition {
	set := map[petri.Transition]bool{}
	for _, t := range a {
		set[t] = true
	}
	for _, t := range b {
		set[t] = true
	}
	out := make([]petri.Transition, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SharedTransitions lists the transitions appearing in more than one task:
// the code the paper shares between tasks via labels and gotos.
func (tp *TaskPartition) SharedTransitions() []petri.Transition {
	count := make([]int, tp.Net.NumTransitions())
	for _, task := range tp.Tasks {
		for _, t := range task.Transitions {
			count[t]++
		}
	}
	var out []petri.Transition
	for t, c := range count {
		if c > 1 {
			out = append(out, petri.Transition(t))
		}
	}
	return out
}

// NumTasks reports the number of tasks: the paper's headline metric
// (Table I row 1).
func (tp *TaskPartition) NumTasks() int { return len(tp.Tasks) }

package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/invariant"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

// distillSolve runs Solve and flattens everything observable about the
// outcome — cycles, per-report verdicts, invariants, diagnosis — into a
// comparable string, so the equivalence tests below can assert that two
// solver configurations produce *identical* results, not merely equivalent
// ones.
func distillSolve(t *testing.T, n *petri.Net, opt Options) string {
	t.Helper()
	return distillOutcome(Solve(n, opt))
}

// distillOutcome flattens any (Schedule, error) solver outcome into the
// comparable string distillSolve uses.
func distillOutcome(s *Schedule, err error) string {
	if err != nil {
		var nse *NotSchedulableError
		if errors.As(err, &nse) {
			r := nse.Report
			return fmt.Sprintf("notsched consistent=%v uncovered=%v srcs=%v missing=%v reason=%q",
				r.Consistent, r.Uncovered, r.SourcesCovered, r.MissingSources, r.FailReason)
		}
		return "err " + err.Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "alloc=%d sat=%v\n", s.AllocationCount, s.AllocationCountSaturated)
	for i, c := range s.Cycles {
		r := s.Reports[i]
		fmt.Fprintf(&sb, "cycle %v counts=%v inv=%v cover=%v\n",
			s.Net.SequenceNames(c.Sequence), c.Counts, r.Invariants, r.CoveringCounts)
	}
	return sb.String()
}

// corpus returns the nets the equivalence tests sweep: every paper figure
// plus seeded netgen nets (both the schedulable-by-construction pipelines
// and the unconstrained generator, which yields non-schedulable nets too).
func equivalenceCorpus(t *testing.T) map[string]*petri.Net {
	t.Helper()
	nets := map[string]*petri.Net{}
	for name, n := range figures.All() {
		if n.Validate() == nil {
			nets[name] = n
		}
	}
	for seed := uint64(1); seed <= 12; seed++ {
		nets[fmt.Sprintf("pipe%d", seed)] = netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig())
		if n := netgen.RandomNet(seed, netgen.DefaultConfig()); n.Validate() == nil {
			nets[fmt.Sprintf("rand%d", seed)] = n
		}
	}
	return nets
}

func TestDedupMatchesFromScratch(t *testing.T) {
	// The canonical-hash dedup must be invisible in the output: same
	// cycles, same reports (including the mapped invariants, byte for
	// byte), same diagnosed failing reduction — across worker counts.
	for name, n := range equivalenceCorpus(t) {
		base := distillSolve(t, n, Options{KeepIsomorphicDuplicates: true, NoPrune: true})
		for _, opt := range []Options{
			{},
			{Workers: 4},
			{NoPrune: true},
			{Workers: 3, KeepIsomorphicDuplicates: true},
		} {
			if got := distillSolve(t, n, opt); got != base {
				t.Errorf("%s: %+v diverges from scratch solve:\n got: %s\nwant: %s", name, opt, got, base)
			}
		}
	}
}

func TestSweepPathsByteIdentical(t *testing.T) {
	// The schedulability sweep resolves each reduction's invariants through
	// one of three paths — restriction-exact own-representative checks
	// (parent aids present), fingerprint-singleton + Weisfeiler–Lehman
	// class checks with per-member fan-out (no aids), or from-scratch
	// Farkas runs — and the whole point of the machinery is that the choice
	// is invisible in the output. Running the same reduction set through
	// the sweep with and without parent aids must produce byte-identical
	// schedules, including every report's invariant set.
	for name, n := range equivalenceCorpus(t) {
		reds, err := EnumerateDistinctReductions(n, 0)
		if err != nil {
			continue
		}
		parentTIs, perr := invariant.TInvariants(n, invariant.Options{})
		if perr != nil {
			continue
		}
		noAids := distillOutcome(solveReductions(n, reds, Options{}, checkAids{}))
		withAids := distillOutcome(solveReductions(n, reds, Options{}, checkAids{parentTIs: parentTIs, haveParent: true}))
		if noAids != withAids {
			t.Errorf("%s: sweep output depends on the invariant path:\nno aids: %s\n   aids: %s", name, noAids, withAids)
		}
		parallel := distillOutcome(solveReductions(n, reds, Options{Workers: 4}, checkAids{parentTIs: parentTIs, haveParent: true}))
		if parallel != withAids {
			t.Errorf("%s: parallel sweep diverges from serial:\n got: %s\nwant: %s", name, parallel, withAids)
		}
	}
}

func TestPruneMatchesUnprunedVerdict(t *testing.T) {
	// The prune cut may pick a different failing reduction as its witness,
	// but the verdict — schedulable or not — and every schedulable
	// schedule must match the exhaustive search exactly.
	for name, n := range equivalenceCorpus(t) {
		pruned, prunedErr := Solve(n, Options{})
		full, fullErr := Solve(n, Options{NoPrune: true})
		if (prunedErr == nil) != (fullErr == nil) {
			t.Fatalf("%s: pruned err=%v, unpruned err=%v", name, prunedErr, fullErr)
		}
		if prunedErr != nil {
			var nse *NotSchedulableError
			if !errors.As(prunedErr, &nse) || nse.Report.Schedulable {
				t.Fatalf("%s: pruned diagnosis malformed: %v", name, prunedErr)
			}
			continue
		}
		a := distillSolve(t, n, Options{})
		b := distillSolve(t, n, Options{NoPrune: true})
		if a != b {
			t.Errorf("%s: pruned schedule diverges:\n got: %s\nwant: %s", name, a, b)
		}
		_ = pruned
		_ = full
	}
}

func TestPrunedEnumerationRecordsBranches(t *testing.T) {
	// Figure 3b is the paper's canonical non-schedulable net: t4 needs
	// both branches of the choice, so no parent T-semiflow survives either
	// forced exclusion and the lazy search is cut at the first fork.
	n := figures.Figure3b()
	parentTIs, err := invariant.TInvariants(n, invariant.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reds, prunes, err := EnumerateDistinctReductionsPruned(nil, n, 0, parentTIs)
	if err != nil {
		t.Fatal(err)
	}
	if len(prunes) == 0 {
		t.Fatalf("no branches pruned (reductions=%d): want the unschedulable branches cut", len(reds))
	}
	srcs := map[petri.Transition]bool{}
	for _, s := range n.SourceTransitions() {
		srcs[s] = true
	}
	for _, pb := range prunes {
		if pb.Witness == nil {
			t.Fatal("pruned branch without witness reduction")
		}
		if !srcs[pb.Source] {
			t.Fatalf("pruned branch names non-source transition %v", pb.Source)
		}
		rep := CheckReduction(n, pb.Witness, Options{})
		if rep.Schedulable {
			t.Fatalf("figure 3b witness must fail Definition 3.5, got schedulable")
		}
	}
	// The prune must not have eaten schedulable work on a schedulable net.
	n3a := figures.Figure3a()
	tis3a, err := invariant.TInvariants(n3a, invariant.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reds3a, prunes3a, err := EnumerateDistinctReductionsPruned(nil, n3a, 0, tis3a)
	if err != nil {
		t.Fatal(err)
	}
	if len(prunes3a) != 0 || len(reds3a) != 2 {
		t.Fatalf("figure 3a: reductions=%d prunes=%d, want 2/0", len(reds3a), len(prunes3a))
	}
}

// chainOfChoices builds a net with k independent binary free-choice
// clusters (source → choice place → {a_i, b_i} → sink chains), so the
// allocation product and the distinct-reduction count are both exactly 2^k.
func chainOfChoices(k int) *petri.Net {
	b := petri.NewBuilder("choices")
	for i := 0; i < k; i++ {
		src := b.Transition(fmt.Sprintf("src%d", i))
		p := b.Place(fmt.Sprintf("p%d", i))
		b.ArcTP(src, p)
		for _, nm := range []string{"a", "b"} {
			alt := b.Transition(fmt.Sprintf("%s%d", nm, i))
			b.Arc(p, alt)
		}
	}
	return b.Build()
}

func TestEnumerateAllocationsExactBoundary(t *testing.T) {
	// 3 binary clusters: exactly 8 allocations. The cap must admit
	// max == 8 and reject max == 7 — the old guard's off-by-one
	// (max/len + 1) made the boundary imprecise.
	n := chainOfChoices(3)
	allocs, err := EnumerateAllocations(n, 8)
	if err != nil || len(allocs) != 8 {
		t.Fatalf("max=8: len=%d err=%v, want 8/nil", len(allocs), err)
	}
	if _, err := EnumerateAllocations(n, 7); !errors.Is(err, ErrTooManyAllocations) {
		t.Fatalf("max=7: err=%v, want ErrTooManyAllocations", err)
	}
}

func TestEnumerateDistinctReductionsExactBoundary(t *testing.T) {
	n := chainOfChoices(3)
	reds, err := EnumerateDistinctReductions(n, 8)
	if err != nil || len(reds) != 8 {
		t.Fatalf("max=8: len=%d err=%v, want 8/nil", len(reds), err)
	}
	if _, err := EnumerateDistinctReductions(n, 7); !errors.Is(err, ErrTooManyAllocations) {
		t.Fatalf("max=7: err=%v, want ErrTooManyAllocations", err)
	}
}

func TestCountAllocationsSaturates(t *testing.T) {
	// 63 binary clusters: 2^63 > math.MaxInt on 64-bit (and far beyond it
	// on 32-bit GOARCH, where the old 1<<62 constant did not even fit in
	// int). The count must saturate at math.MaxInt with the flag set.
	n := chainOfChoices(63)
	count, saturated := CountAllocationsSat(n)
	if !saturated || count != math.MaxInt {
		t.Fatalf("CountAllocationsSat = %d,%v, want math.MaxInt,true", count, saturated)
	}
	if CountAllocations(n) != math.MaxInt {
		t.Fatalf("CountAllocations must saturate at math.MaxInt")
	}
	small, sat := CountAllocationsSat(chainOfChoices(3))
	if sat || small != 8 {
		t.Fatalf("CountAllocationsSat(2^3) = %d,%v, want 8,false", small, sat)
	}
	// The saturation marker must survive serialisation so reports never
	// present the ceiling as a real count.
	ex := (&Schedule{Net: n, AllocationCount: count, AllocationCountSaturated: saturated}).Export()
	data, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"allocation_count_saturated":true`) {
		t.Fatalf("export JSON missing saturation marker: %s", data)
	}
	plain, err := json.Marshal((&Schedule{Net: chainOfChoices(1), AllocationCount: 2}).Export())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "allocation_count_saturated") {
		t.Fatalf("unsaturated export must omit the marker: %s", plain)
	}
}

func TestCoveringCombinationIncompleteCover(t *testing.T) {
	// Regression for the silent `break`: handed a non-covering invariant
	// set, the greedy cover used to return a partial count vector that the
	// cycle search could then "certify". It must now name the uncovered
	// transitions so checkReduction fails the reduction instead.
	tis := []invariant.TInvariant{{Counts: []int{2, 1, 0, 0}}}
	counts, uncovered := coveringCombination(tis, 4)
	if len(uncovered) != 2 || uncovered[0] != 2 || uncovered[1] != 3 {
		t.Fatalf("uncovered = %v, want [2 3]", uncovered)
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("counts = %v, want the covered prefix summed", counts)
	}
	// A covering set keeps the happy path: no uncovered transitions.
	tis = append(tis, invariant.TInvariant{Counts: []int{0, 0, 1, 3}})
	if _, uncovered := coveringCombination(tis, 4); uncovered != nil {
		t.Fatalf("covering set reported uncovered = %v", uncovered)
	}
	// An empty invariant set leaves everything uncovered.
	if _, uncovered := coveringCombination(nil, 2); len(uncovered) != 2 {
		t.Fatalf("empty set: uncovered = %v, want both transitions", uncovered)
	}
}

func TestDedupCountersAndClasses(t *testing.T) {
	// The ATM model collapses 56 distinct reductions into far fewer
	// isomorphism classes; the sweep must record the split and still
	// produce one report per reduction.
	n := netgen.RandomSchedulablePipeline(4, netgen.DefaultConfig())
	reds, err := EnumerateDistinctReductions(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No parent aids: every reduction goes through the fingerprint buckets,
	// so the Weisfeiler–Lehman escalation path is what this test exercises.
	classOf, err := dedupClasses(reds, Options{}, checkAids{})
	if err != nil {
		t.Fatal(err)
	}
	if classOf == nil {
		t.Skip("seed produced no isomorphic duplicates")
	}
	classes := 0
	for i, r := range classOf {
		if r == i {
			classes++
		}
		if reds[r].Subnet().Net.CanonicalHash() != reds[i].Subnet().Net.CanonicalHash() {
			t.Fatalf("class member %d hashed differently from its representative %d", i, r)
		}
	}
	if classes >= len(reds) {
		t.Fatalf("classes=%d of %d reductions: dedup found nothing", classes, len(reds))
	}
	s, err := Solve(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Reports) != len(reds) {
		t.Fatalf("reports=%d, want one per reduction (%d)", len(s.Reports), len(reds))
	}
}

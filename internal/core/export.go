package core

import (
	"encoding/json"
	"fmt"

	"fcpn/internal/petri"
)

// ScheduleExport is the serialisable form of a valid schedule: everything
// a downstream tool needs to regenerate or audit the synthesis, with nodes
// referenced by name.
type ScheduleExport struct {
	Net         string `json:"net"`
	Allocations int    `json:"allocations"`
	// AllocationsSaturated marks Allocations as the math.MaxInt ceiling
	// (the true T-allocation product overflowed int), so downstream tools
	// never mistake the cap for a real count.
	AllocationsSaturated bool          `json:"allocation_count_saturated,omitempty"`
	Cycles               []CycleExport `json:"cycles"`
}

// CycleExport is one finite complete cycle in name form.
type CycleExport struct {
	// Choices maps each choice place to the transition the cycle's
	// T-allocation selected.
	Choices map[string]string `json:"choices"`
	// Sequence is the firing order.
	Sequence []string `json:"sequence"`
	// Counts is the firing-count vector, transitions with zero count
	// omitted.
	Counts map[string]int `json:"counts"`
}

// Export converts the schedule to its serialisable form.
func (s *Schedule) Export() *ScheduleExport {
	out := &ScheduleExport{
		Net:                  s.Net.Name(),
		Allocations:          s.AllocationCount,
		AllocationsSaturated: s.AllocationCountSaturated,
	}
	for _, c := range s.Cycles {
		ce := CycleExport{
			Choices:  map[string]string{},
			Sequence: s.Net.SequenceNames(c.Sequence),
			Counts:   map[string]int{},
		}
		alloc := c.Reduction.Allocation
		for i, cluster := range alloc.Clusters {
			for _, p := range cluster.Places {
				ce.Choices[s.Net.PlaceName(p)] = s.Net.TransitionName(alloc.Chosen[i])
			}
		}
		for t, k := range c.Counts {
			if k > 0 {
				ce.Counts[s.Net.TransitionName(petri.Transition(t))] = k
			}
		}
		out.Cycles = append(out.Cycles, ce)
	}
	return out
}

// MarshalJSON serialises the schedule through its export form.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Export())
}

// ImportSchedule reconstructs a Schedule from its export form against the
// given net and validates it fully: every referenced node must exist,
// every cycle must be a finite complete cycle consistent with its declared
// choice resolutions, and the cycle set must cover every distinct
// T-reduction of the net (Theorem 3.1's completeness). It returns a
// descriptive error otherwise — the entry point for schedules produced by
// external tools.
func ImportSchedule(n *petri.Net, ex *ScheduleExport) (*Schedule, error) {
	if ex == nil {
		return nil, fmt.Errorf("core: nil schedule export")
	}
	clusters := n.FreeChoiceSets()
	count, saturated := CountAllocationsSat(n)
	sched := &Schedule{Net: n, AllocationCount: count, AllocationCountSaturated: saturated}
	seen := map[string]bool{}
	for ci, ce := range ex.Cycles {
		seq := make([]petri.Transition, len(ce.Sequence))
		for i, name := range ce.Sequence {
			t, ok := n.TransitionByName(name)
			if !ok {
				return nil, fmt.Errorf("core: cycle %d: unknown transition %q", ci, name)
			}
			seq[i] = t
		}
		if err := VerifyCompleteCycle(n, seq); err != nil {
			return nil, fmt.Errorf("core: cycle %d: %w", ci, err)
		}
		counts := n.FiringCount(seq)
		// Rebuild the allocation from the declared choices, defaulting
		// unnamed clusters to their first alternative.
		chosen := make([]petri.Transition, len(clusters))
		for i, c := range clusters {
			chosen[i] = c.Transitions[0]
			for _, p := range c.Places {
				if name, ok := ce.Choices[n.PlaceName(p)]; ok {
					t, tok := n.TransitionByName(name)
					if !tok {
						return nil, fmt.Errorf("core: cycle %d: unknown choice target %q", ci, name)
					}
					found := false
					for _, alt := range c.Transitions {
						if alt == t {
							found = true
						}
					}
					if !found {
						return nil, fmt.Errorf("core: cycle %d: %q is not an alternative of choice %q",
							ci, name, n.PlaceName(p))
					}
					chosen[i] = t
				}
			}
		}
		// The cycle must not fire any transition its allocation excludes.
		alloc := &Allocation{Clusters: clusters, Chosen: chosen}
		for t, k := range counts {
			if k > 0 && !alloc.Allocated(petri.Transition(t)) {
				return nil, fmt.Errorf("core: cycle %d fires %s, excluded by its declared choices",
					ci, n.TransitionName(petri.Transition(t)))
			}
		}
		red := Reduce(n, alloc)
		key := red.TransitionSetKey()
		if seen[key] {
			return nil, fmt.Errorf("core: cycle %d duplicates the T-reduction of an earlier cycle", ci)
		}
		seen[key] = true
		// Completeness per reduction: every kept transition fires.
		for _, pt := range red.KeptTransitions() {
			if counts[pt] == 0 {
				return nil, fmt.Errorf("core: cycle %d misses transition %s of its T-reduction",
					ci, n.TransitionName(pt))
			}
		}
		sched.Cycles = append(sched.Cycles, Cycle{Sequence: seq, Counts: counts, Reduction: red})
	}
	// Coverage: one cycle per distinct T-reduction of the net.
	want, err := EnumerateDistinctReductions(n, 0)
	if err != nil {
		return nil, err
	}
	if len(sched.Cycles) != len(want) {
		return nil, fmt.Errorf("core: schedule has %d cycles, net has %d distinct T-reductions",
			len(sched.Cycles), len(want))
	}
	return sched, nil
}

package core

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/petri"
)

func names(n *petri.Net, ts []petri.Transition) []string { return n.SequenceNames(ts) }

func mustSolve(t *testing.T, n *petri.Net) *Schedule {
	t.Helper()
	s, err := Solve(n, Options{})
	if err != nil {
		t.Fatalf("Solve(%s): %v", n.Name(), err)
	}
	return s
}

func sortedNames(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}

func TestFigure3aSchedulable(t *testing.T) {
	n := figures.Figure3a()
	s := mustSolve(t, n)
	if len(s.Cycles) != 2 {
		t.Fatalf("cycles = %d, want 2 (one per choice outcome)", len(s.Cycles))
	}
	got := map[string]bool{}
	for _, c := range s.Cycles {
		key := ""
		for _, nm := range n.SequenceNames(c.Sequence) {
			key += nm + " "
		}
		got[key] = true
	}
	// Paper: S = {(t1 t2 t4), (t1 t3 t5)}.
	if !got["t1 t2 t4 "] || !got["t1 t3 t5 "] {
		t.Fatalf("cycles = %v, want paper's {(t1 t2 t4),(t1 t3 t5)}", got)
	}
	if s.AllocationCount != 2 {
		t.Fatalf("AllocationCount = %d", s.AllocationCount)
	}
}

func TestFigure3bNotSchedulable(t *testing.T) {
	n := figures.Figure3b()
	_, err := Solve(n, Options{})
	var nse *NotSchedulableError
	if !errors.As(err, &nse) {
		t.Fatalf("err = %v, want NotSchedulableError", err)
	}
	if nse.Report.Consistent {
		t.Fatal("figure 3b reductions must be inconsistent (t4 needs both branches)")
	}
	if nse.Error() == "" {
		t.Fatal("empty error message")
	}
	if Schedulable(n, Options{}) {
		t.Fatal("Schedulable must agree")
	}
}

func TestFigure4Schedule(t *testing.T) {
	n := figures.Figure4()
	s := mustSolve(t, n)
	if len(s.Cycles) != 2 {
		t.Fatalf("cycles = %d, want 2", len(s.Cycles))
	}
	// Paper: S = {(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}. Counts must match
	// exactly; the order of our deterministic simulation may differ but
	// must be a valid complete cycle.
	wantCounts := map[string][]int{
		"t2": {2, 2, 0, 1, 0},
		"t3": {1, 0, 1, 0, 2},
	}
	for _, c := range s.Cycles {
		chosen := n.TransitionName(c.Reduction.Allocation.Chosen[0])
		want, ok := wantCounts[chosen]
		if !ok {
			t.Fatalf("unexpected allocation %q", chosen)
		}
		if !reflect.DeepEqual(c.Counts, want) {
			t.Fatalf("allocation %s: counts = %v, want %v", chosen, c.Counts, want)
		}
		if err := VerifyCompleteCycle(n, c.Sequence); err != nil {
			t.Fatalf("cycle invalid: %v", err)
		}
	}
	// The paper's own sequences replay successfully too.
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	t4, _ := n.TransitionByName("t4")
	t5, _ := n.TransitionByName("t5")
	for _, seq := range [][]petri.Transition{
		{t1, t2, t1, t2, t4},
		{t1, t3, t5, t5},
	} {
		if err := VerifyCompleteCycle(n, seq); err != nil {
			t.Fatalf("paper sequence %v: %v", names(n, seq), err)
		}
	}
}

func TestFigure5Schedule(t *testing.T) {
	n := figures.Figure5()
	s := mustSolve(t, n)
	if len(s.Cycles) != 2 {
		t.Fatalf("cycles = %d, want 2", len(s.Cycles))
	}
	// Paper's valid schedule: {(t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6),
	// (t1 t3 t5 t7 t7 t8 t9 t6)}. Check firing counts per reduction.
	wantCounts := map[string][]int{
		//       t1 t2 t3 t4 t5 t6 t7 t8 t9
		"t2": {1, 1, 0, 2, 0, 5, 0, 1, 1},
		"t3": {1, 0, 1, 0, 1, 1, 2, 1, 1},
	}
	for _, c := range s.Cycles {
		chosen := n.TransitionName(c.Reduction.Allocation.Chosen[0])
		if !reflect.DeepEqual(c.Counts, wantCounts[chosen]) {
			t.Fatalf("allocation %s: counts = %v, want %v", chosen, c.Counts, wantCounts[chosen])
		}
		if err := VerifyCompleteCycle(n, c.Sequence); err != nil {
			t.Fatalf("cycle invalid: %v", err)
		}
	}
	// And the paper's printed sequences are themselves valid cycles.
	seqByName := func(namesList ...string) []petri.Transition {
		out := make([]petri.Transition, len(namesList))
		for i, nm := range namesList {
			tr, ok := n.TransitionByName(nm)
			if !ok {
				t.Fatalf("unknown transition %q", nm)
			}
			out[i] = tr
		}
		return out
	}
	for _, seq := range [][]petri.Transition{
		seqByName("t1", "t2", "t4", "t4", "t6", "t6", "t6", "t6", "t8", "t9", "t6"),
		seqByName("t1", "t3", "t5", "t7", "t7", "t8", "t9", "t6"),
	} {
		if err := VerifyCompleteCycle(n, seq); err != nil {
			t.Fatalf("paper sequence %v: %v", names(n, seq), err)
		}
	}
}

func TestFigure5ReductionR1(t *testing.T) {
	n := figures.Figure5()
	allocs, err := EnumerateAllocations(n, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 {
		t.Fatalf("allocations = %d, want 2", len(allocs))
	}
	var r1 *Reduction
	for _, a := range allocs {
		if n.TransitionName(a.Chosen[0]) == "t2" {
			r1 = Reduce(n, a)
		}
	}
	if r1 == nil {
		t.Fatal("allocation choosing t2 not found")
	}
	// Figure 6: R1 keeps {t1,t2,t4,t6,t8,t9} and {p1,p2,p4,p7}.
	wantT := []string{"t1", "t2", "t4", "t6", "t8", "t9"}
	if got := r1.KeptTransitionNames(n); !reflect.DeepEqual(got, wantT) {
		t.Fatalf("R1 transitions = %v, want %v", got, wantT)
	}
	wantP := []string{"p1", "p2", "p4", "p7"}
	if got := r1.KeptPlaceNames(n); !reflect.DeepEqual(got, wantP) {
		t.Fatalf("R1 places = %v, want %v", got, wantP)
	}
	if !r1.Subnet().Net.IsConflictFree() {
		t.Fatal("T-reduction must be conflict-free")
	}
	// T-invariants of R1 (paper): (1,1,0,2,0,4,0,0,0) and
	// (0,0,0,0,0,1,0,1,1) — in R1's index space {t1,t2,t4,t6,t8,t9}:
	// (1,1,2,4,0,0) and (0,0,0,1,1,1).
	report := CheckReduction(n, r1, Options{})
	if !report.Schedulable {
		t.Fatalf("R1 must be schedulable: %s", report.FailReason)
	}
	if len(report.Invariants) != 2 {
		t.Fatalf("R1 invariants = %v, want 2", report.Invariants)
	}
	got := map[string]bool{}
	for _, ti := range report.Invariants {
		got[ti.String()] = true
	}
	if !got["[1 1 2 4 0 0]"] || !got["[0 0 0 1 1 1]"] {
		t.Fatalf("R1 invariants = %v, want paper's two invariants", got)
	}
}

func TestFigure6ReductionSteps(t *testing.T) {
	n := figures.Figure5()
	allocs, _ := EnumerateAllocations(n, 0x1000)
	var r1 *Reduction
	for _, a := range allocs {
		if n.TransitionName(a.Chosen[0]) == "t2" {
			r1 = Reduce(n, a)
		}
	}
	// Figure 6's removal order: t3 (unallocated), p3, t5, p5, p6, t7.
	want := map[string]bool{
		"remove t3 (unallocated)": true, "remove p3": true,
		"remove t5 (no input place)": true, "remove p5": true,
		"remove p6": true, "remove t7 (no input place)": true,
		"remove t7 (all inputs are source places)": true,
	}
	steps := r1.Steps()
	if len(steps) != 6 {
		t.Fatalf("steps = %v, want 6 removals", steps)
	}
	if steps[0] != "remove t3 (unallocated)" || steps[1] != "remove p3" {
		t.Fatalf("first steps = %v", steps[:2])
	}
	for _, s := range steps {
		if !want[s] {
			t.Fatalf("unexpected step %q in %v", s, steps)
		}
	}
}

func TestFigure7NotSchedulable(t *testing.T) {
	n := figures.Figure7()
	_, err := Solve(n, Options{})
	var nse *NotSchedulableError
	if !errors.As(err, &nse) {
		t.Fatalf("err = %v, want NotSchedulableError", err)
	}
	if nse.Report.Consistent {
		t.Fatal("figure 7 reductions must be inconsistent (paper: both R1 and R2)")
	}
}

func TestFigure7Reductions(t *testing.T) {
	n := figures.Figure7()
	allocs, _ := EnumerateAllocations(n, 0x1000)
	if len(allocs) != 2 {
		t.Fatalf("allocations = %d", len(allocs))
	}
	for _, a := range allocs {
		red := Reduce(n, a)
		chosen := n.TransitionName(a.Chosen[0])
		gotT := sortedNames(red.KeptTransitionNames(n))
		gotP := sortedNames(red.KeptPlaceNames(n))
		switch chosen {
		case "t2": // Paper's R1: t1 p1 t2 p2 t4 p4 p5 t6
			if want := []string{"t1", "t2", "t4", "t6"}; !reflect.DeepEqual(gotT, want) {
				t.Fatalf("R1 transitions = %v, want %v", gotT, want)
			}
			if want := []string{"p1", "p2", "p4", "p5"}; !reflect.DeepEqual(gotP, want) {
				t.Fatalf("R1 places = %v, want %v", gotP, want)
			}
		case "t3": // Paper's R2: t1 p1 t3 p3 t5 p4 p5 p6 t6 t7
			if want := []string{"t1", "t3", "t5", "t6", "t7"}; !reflect.DeepEqual(gotT, want) {
				t.Fatalf("R2 transitions = %v, want %v", gotT, want)
			}
			if want := []string{"p1", "p3", "p4", "p5", "p6"}; !reflect.DeepEqual(gotP, want) {
				t.Fatalf("R2 places = %v, want %v", gotP, want)
			}
		}
		report := CheckReduction(n, red, Options{})
		if report.Schedulable || report.Consistent {
			t.Fatalf("reduction %s must be inconsistent: %+v", chosen, report)
		}
	}
}

func TestFigure2StaticScheduleViaQSS(t *testing.T) {
	// A marked graph has a single (empty-choice) allocation; QSS
	// degenerates to static scheduling with cycle counts (4,2,1).
	n := figures.Figure2()
	s := mustSolve(t, n)
	if len(s.Cycles) != 1 {
		t.Fatalf("cycles = %d", len(s.Cycles))
	}
	if want := []int{4, 2, 1}; !reflect.DeepEqual(s.Cycles[0].Counts, want) {
		t.Fatalf("counts = %v, want %v", s.Cycles[0].Counts, want)
	}
}

func TestNonFreeChoiceRejected(t *testing.T) {
	if _, err := Solve(figures.Figure1b(), Options{}); !errors.Is(err, ErrNotFreeChoice) {
		t.Fatalf("err = %v, want not-free-choice", err)
	}
}

func TestBufferBounds(t *testing.T) {
	n := figures.Figure4()
	s := mustSolve(t, n)
	bounds, err := s.BufferBounds()
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := n.PlaceByName("p2")
	p3, _ := n.PlaceByName("p3")
	if bounds[p2] != 2 {
		t.Fatalf("bound(p2) = %d, want 2 (t4 waits for two tokens)", bounds[p2])
	}
	if bounds[p3] != 2 {
		t.Fatalf("bound(p3) = %d, want 2 (t3 produces two at once)", bounds[p3])
	}
}

func TestCycleStrings(t *testing.T) {
	s := mustSolve(t, figures.Figure3a())
	strs := s.CycleStrings()
	if len(strs) != 2 || len(strs[0]) != 3 {
		t.Fatalf("CycleStrings = %v", strs)
	}
}

func TestAllocationCap(t *testing.T) {
	n := figures.Figure3a()
	if _, err := Solve(n, Options{MaxAllocations: 1}); !errors.Is(err, ErrTooManyAllocations) {
		t.Fatalf("expected allocation cap error")
	}
}

func TestKeepDuplicateReductions(t *testing.T) {
	// Figure 3a's two allocations yield two distinct reductions; with a
	// net whose second choice is downstream-equivalent the dedup matters —
	// here we simply check the option keeps the same two cycles.
	s, err := Solve(figures.Figure3a(), Options{KeepDuplicateReductions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cycles) != 2 {
		t.Fatalf("cycles = %d", len(s.Cycles))
	}
}

func TestThreeWayChoice(t *testing.T) {
	// A 3-alternative choice: three reductions, three cycles, switch-style
	// codegen downstream; the schedule covers each alternative exactly
	// once.
	b := petri.NewBuilder("tri")
	src := b.Transition("src")
	p := b.Place("p")
	b.ArcTP(src, p)
	for _, nm := range []string{"x", "y", "z"} {
		alt := b.Transition(nm)
		b.Arc(p, alt)
		q := b.Place("q_" + nm)
		sink := b.Transition("out_" + nm)
		b.Chain(alt, q, sink)
	}
	n := b.Build()
	s := mustSolve(t, n)
	if len(s.Cycles) != 3 || s.AllocationCount != 3 {
		t.Fatalf("cycles = %d, allocations = %d", len(s.Cycles), s.AllocationCount)
	}
	seen := map[string]bool{}
	for _, c := range s.Cycles {
		for _, nm := range []string{"x", "y", "z"} {
			tr, _ := n.TransitionByName(nm)
			if c.Counts[tr] == 1 {
				seen[nm] = true
			}
		}
	}
	if len(seen) != 3 {
		t.Fatalf("alternatives covered: %v", seen)
	}
	tree := s.DecisionTree()
	if len(tree.Children) != 3 {
		t.Fatalf("tree children = %d", len(tree.Children))
	}
}

func TestNestedChoices(t *testing.T) {
	// Choice under a choice: 3 leaf behaviours, 3 distinct reductions.
	b := petri.NewBuilder("nest")
	src := b.Transition("src")
	p := b.Place("p")
	b.ArcTP(src, p)
	a := b.Transition("a")
	c := b.Transition("c")
	b.Arc(p, a)
	b.Arc(p, c)
	q := b.Place("q")
	b.ArcTP(a, q)
	a1 := b.Transition("a1")
	a2 := b.Transition("a2")
	b.Arc(q, a1)
	b.Arc(q, a2)
	n := b.Build()
	s := mustSolve(t, n)
	if len(s.Cycles) != 3 {
		t.Fatalf("cycles = %d, want 3 (a→a1, a→a2, c)", len(s.Cycles))
	}
	if s.AllocationCount != 4 {
		t.Fatalf("allocations = %d, want 2×2", s.AllocationCount)
	}
}

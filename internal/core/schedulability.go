package core

import (
	"errors"
	"fmt"
	"strings"

	"fcpn/internal/invariant"
	"fcpn/internal/petri"
)

// ReductionReport is the result of the static-schedulability check of one
// T-reduction (Definition 3.5).
type ReductionReport struct {
	Reduction *Reduction
	// Invariants are the minimal T-semiflows of the reduced net, in
	// reduction transition indices.
	Invariants []invariant.TInvariant
	// Consistent reports whether every transition of the reduction is
	// covered by some T-invariant (Definition 2.1 restricted to the
	// reduction).
	Consistent bool
	// Uncovered lists the reduction's transitions in no invariant, as
	// parent-net transitions (the inconsistency witnesses).
	Uncovered []petri.Transition
	// SourcesCovered reports whether every surviving source transition of
	// the parent net appears in some invariant (Definition 3.5(2)).
	SourcesCovered bool
	// MissingSources lists surviving sources in no invariant.
	MissingSources []petri.Transition
	// CoveringCounts is the firing-count vector (reduction indices) of the
	// non-negative invariant combination chosen to cover every transition.
	CoveringCounts []int
	// Cycle is the deadlock-free finite complete cycle realising
	// CoveringCounts, mapped back to parent-net transitions. Nil when the
	// reduction is not schedulable.
	Cycle []petri.Transition
	// Schedulable is the verdict; FailReason explains a false verdict.
	Schedulable bool
	FailReason  string
	// Cause is the underlying error behind a false verdict, when there is
	// one: a budget trip (wrapping ErrBudgetExceeded), a deadlock
	// (wrapping ErrCycleDeadlock), or a cancellation (wrapping the
	// context cause). NotSchedulableError unwraps to it, keeping the
	// typed error chain intact through the diagnosis.
	Cause error
}

// CheckReduction runs the three-part schedulability test of Definition 3.5
// on a T-reduction: (1) consistency, (2) source coverage, (3) existence of
// a deadlock-free firing sequence realising a covering T-invariant and
// returning to the initial marking.
func CheckReduction(n *petri.Net, red *Reduction, opt Options) *ReductionReport {
	return checkReduction(n, red, opt, checkAids{})
}

// checkAids carries the work a solver sweep can share into one reduction's
// check. The zero value means "from scratch" — exactly CheckReduction.
type checkAids struct {
	// parentTIs are the parent net's minimal T-semiflows; when haveParent
	// is set the check first derives the subnet's invariants by exact
	// restriction (invariant.RestrictTInvariants), falling back to the
	// from-scratch Farkas run when the reduction's shape makes restriction
	// inexact.
	parentTIs  []invariant.TInvariant
	haveParent bool
	// pre short-circuits invariant computation entirely: the caller
	// already holds this subnet's minimal T-semiflows (the dedup fan-out
	// maps a class representative's invariants through the canonical
	// isomorphism). Must equal what a from-scratch run would return.
	pre     []invariant.TInvariant
	havePre bool
}

// subnetInvariants resolves a reduction's minimal T-semiflows from the
// cheapest available source: precomputed, restricted from the parent, or
// from scratch. All three produce identical output (the byte-identity
// invariant of the sweep); the core/semiflow/* counters record which path
// ran so the restriction fallback rate stays visible in traces.
func subnetInvariants(n *petri.Net, red *Reduction, opt Options, aids checkAids) ([]invariant.TInvariant, error) {
	if aids.havePre {
		return aids.pre, nil
	}
	if aids.haveParent {
		if tis, ok := invariant.RestrictTInvariants(n, red.Subnet(), aids.parentTIs); ok {
			opt.Trace.Add("core/semiflow/restricted", 1)
			return tis, nil
		}
		opt.Trace.Add("core/semiflow/full", 1)
	}
	// Subnet T-semiflows are computed directly, bypassing opt.Semiflows:
	// keying the content-addressed cache costs a canonical-form computation
	// per fresh reduction subnet, and phase traces showed that costing more
	// than the (int64 fast path) Farkas runs it saves. Whole-net Solve
	// results are memoised one level up by internal/engine, so warm
	// analyses never reach this code anyway.
	return invariant.TInvariants(red.Subnet().Net, invariant.Options{MaxRows: opt.MaxRows, Trace: opt.Trace})
}

func checkReduction(n *petri.Net, red *Reduction, opt Options, aids checkAids) *ReductionReport {
	report := &ReductionReport{Reduction: red}

	// Deadline checkpoint: once the job is cancelled the remaining checks
	// of the sweep degrade to stubs — before the subnet is even
	// materialised; SolveReductions surfaces the cancellation instead of
	// any stub verdict.
	if err := opt.cancelled(); err != nil {
		report.FailReason = err.Error()
		report.Cause = err
		return report
	}
	rsub := red.Subnet()
	sub := rsub.Net

	tis, err := subnetInvariants(n, red, opt, aids)
	if err != nil {
		report.FailReason = fmt.Sprintf("invariant computation failed: %v", err)
		report.Cause = err
		return report
	}
	report.Invariants = tis

	// (1) Consistency of the reduction.
	for _, t := range invariant.UncoveredTransitions(sub, tis) {
		report.Uncovered = append(report.Uncovered, rsub.ToParentTransition(t))
	}
	report.Consistent = len(report.Uncovered) == 0 && sub.NumTransitions() > 0

	// (2) Every surviving source transition of N in some invariant.
	report.SourcesCovered = true
	for _, src := range n.SourceTransitions() {
		st, kept := rsub.FromParentTransition(src)
		if !kept {
			// The reduction algorithm never removes sources; a missing
			// source would be a structural anomaly worth reporting.
			report.SourcesCovered = false
			report.MissingSources = append(report.MissingSources, src)
			continue
		}
		found := false
		for _, ti := range tis {
			if ti.Contains(st) {
				found = true
				break
			}
		}
		if !found {
			report.SourcesCovered = false
			report.MissingSources = append(report.MissingSources, src)
		}
	}

	if !report.Consistent {
		report.FailReason = fmt.Sprintf("T-reduction %q is not consistent: transitions %s are in no T-invariant",
			sub.Name(), transitionNames(n, report.Uncovered))
		return report
	}
	if !report.SourcesCovered {
		report.FailReason = fmt.Sprintf("T-reduction %q covers no T-invariant for source transitions %s",
			sub.Name(), transitionNames(n, report.MissingSources))
		return report
	}

	// Covering combination: a small set of minimal invariants whose union
	// of supports covers every transition of the reduction (greedy set
	// cover; consistency guarantees the full set covers, so the greedy
	// loop always completes). An incomplete cover is still surfaced as a
	// non-schedulable verdict rather than silently handing a partial
	// count vector to the cycle search — findCompleteCycle only certifies
	// the counts it is given, so a partial vector could otherwise yield a
	// "schedulable" verdict from a cycle missing transitions.
	counts, uncoveredByGreedy := coveringCombination(tis, sub.NumTransitions())
	if len(uncoveredByGreedy) > 0 {
		for _, t := range uncoveredByGreedy {
			report.Uncovered = append(report.Uncovered, rsub.ToParentTransition(t))
		}
		report.FailReason = fmt.Sprintf("T-reduction %q has no covering T-invariant combination: transitions %s stay uncovered",
			sub.Name(), transitionNames(n, report.Uncovered))
		report.Cause = ErrIncompleteCover
		return report
	}
	report.CoveringCounts = counts

	// (3) Deadlock-free simulation realising the covering counts and
	// returning to the initial marking.
	sp := opt.Trace.StartDetail("core/cycle")
	seq, simErr := findCompleteCycle(opt.Ctx, sub, report.CoveringCounts, opt.maxCycleLength())
	sp.End()
	if simErr != nil {
		report.FailReason = fmt.Sprintf("T-reduction %q deadlocks: %v", sub.Name(), simErr)
		report.Cause = simErr
		return report
	}
	report.Cycle = rsub.MapSequenceToParent(seq)
	report.Schedulable = true
	return report
}

// ErrIncompleteCover is the typed cause of a report whose greedy covering
// combination could not reach every transition. It is unreachable through
// Solve — the consistency check runs first, and a consistent invariant set
// covers by definition — but the covering step no longer trusts that:
// handed a non-covering set it reports the uncovered transitions instead
// of certifying a partial cycle (regression-tested directly).
var ErrIncompleteCover = errors.New("core: no covering T-invariant combination")

// coveringCombination greedily picks minimal invariants until every
// transition is covered, then sums their counts. uncovered lists the
// transitions (in local indices) no invariant could reach; it is empty
// whenever the invariant set is consistent, and the caller must treat a
// non-empty result as a failed check.
func coveringCombination(tis []invariant.TInvariant, numT int) (counts []int, uncovered []petri.Transition) {
	covered := make([]bool, numT)
	counts = make([]int, numT)
	remaining := numT
	for remaining > 0 {
		best, bestGain := -1, 0
		for i, ti := range tis {
			gain := 0
			for t, c := range ti.Counts {
				if c > 0 && !covered[t] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			// No invariant reaches the remaining transitions: the set does
			// not cover. Report instead of returning a partial vector.
			for t, c := range covered {
				if !c {
					uncovered = append(uncovered, petri.Transition(t))
				}
			}
			return counts, uncovered
		}
		for t, c := range tis[best].Counts {
			counts[t] += c
			if c > 0 && !covered[t] {
				covered[t] = true
				remaining--
			}
		}
	}
	return counts, nil
}

func transitionNames(n *petri.Net, ts []petri.Transition) string {
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = n.TransitionName(t)
	}
	return "{" + strings.Join(names, ", ") + "}"
}

package core

import (
	"context"
	"fmt"
	"strings"

	"fcpn/internal/petri"
)

// Allocation is a T-allocation (Definition 3.3): a function choosing
// exactly one successor transition for every place. Non-choice places have
// a unique successor, so an allocation is determined by its decisions at
// the free-choice clusters.
type Allocation struct {
	// Clusters are the free-choice clusters of the net, in the canonical
	// order of petri.FreeChoiceSets.
	Clusters []petri.ConflictCluster
	// Chosen[i] is the transition selected from Clusters[i].
	Chosen []petri.Transition
}

// Allocated reports whether transition t is allocated: every transition is
// allocated except the non-chosen members of the choice clusters.
func (a *Allocation) Allocated(t petri.Transition) bool {
	for i, c := range a.Clusters {
		for _, u := range c.Transitions {
			if u == t {
				return a.Chosen[i] == t
			}
		}
	}
	return true
}

// String renders the allocation as "p1→t2, p5→t9".
func (a *Allocation) describe(n *petri.Net) string {
	parts := make([]string, len(a.Clusters))
	for i, c := range a.Clusters {
		names := make([]string, len(c.Places))
		for j, p := range c.Places {
			names[j] = n.PlaceName(p)
		}
		parts[i] = fmt.Sprintf("%s→%s", strings.Join(names, "+"), n.TransitionName(a.Chosen[i]))
	}
	return strings.Join(parts, ", ")
}

// EnumerateAllocations produces every T-allocation of the net, i.e. the
// cartesian product of the free-choice clusters' alternatives. The result
// is deterministic: clusters in canonical order, alternatives in transition
// index order, first allocation = all-first-alternatives. It fails with
// ErrTooManyAllocations when the product exceeds max.
func EnumerateAllocations(n *petri.Net, max int) ([]*Allocation, error) {
	if max <= 0 {
		max = Options{}.maxAllocations()
	}
	clusters := n.FreeChoiceSets()
	total := 1
	for _, c := range clusters {
		if total > max/len(c.Transitions)+1 {
			total = max + 1
			break
		}
		total *= len(c.Transitions)
	}
	if total > max {
		return nil, fmt.Errorf("%w: %d free-choice clusters yield more than %d allocations",
			ErrTooManyAllocations, len(clusters), max)
	}
	out := make([]*Allocation, 0, total)
	choice := make([]int, len(clusters))
	for {
		chosen := make([]petri.Transition, len(clusters))
		for i, c := range clusters {
			chosen[i] = c.Transitions[choice[i]]
		}
		out = append(out, &Allocation{Clusters: clusters, Chosen: chosen})
		// Odometer increment.
		i := len(clusters) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(clusters[i].Transitions) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

// CountAllocations returns the number of T-allocations without enumerating
// them (product of cluster sizes), saturating at maxInt.
func CountAllocations(n *petri.Net) int {
	total := 1
	for _, c := range n.FreeChoiceSets() {
		if total > (1<<62)/len(c.Transitions) {
			return 1 << 62
		}
		total *= len(c.Transitions)
	}
	return total
}

// EnumerateDistinctReductions produces every *distinct* T-reduction of the
// net without enumerating the full allocation product. It branches lazily:
// starting from the all-first-alternatives allocation, it only splits on
// choice clusters whose choice place actually survives in the current
// reduction — clusters cut away by an upstream decision contribute no new
// reductions, which is why the ATM model's 2¹¹ allocations collapse to a
// few dozen reduce calls. The search is output-sensitive:
// O(distinct reductions × branching) Reduce invocations.
//
// maxReductions caps the result (≤ 0 means Options' allocation default).
func EnumerateDistinctReductions(n *petri.Net, maxReductions int) ([]*Reduction, error) {
	return EnumerateDistinctReductionsCtx(nil, n, maxReductions)
}

// EnumerateDistinctReductionsCtx is EnumerateDistinctReductions with a
// cancellation context (nil never cancels), checked once per Reduce call
// so a per-job deadline can interrupt an adversarial choice structure
// mid-search.
func EnumerateDistinctReductionsCtx(ctx context.Context, n *petri.Net, maxReductions int) ([]*Reduction, error) {
	if maxReductions <= 0 {
		maxReductions = Options{}.maxAllocations()
	}
	clusters := n.FreeChoiceSets()
	var out []*Reduction
	seen := map[string]bool{}

	// assignment[i] = chosen alternative index for cluster i, -1 if the
	// cluster has not been forced by the search yet (defaults to 0).
	var explore func(assignment []int) error
	explore = func(assignment []int) error {
		if err := ctxErr(ctx); err != nil {
			return fmt.Errorf("reduction enumeration interrupted after %d distinct reductions: %w", len(out), err)
		}
		chosen := make([]petri.Transition, len(clusters))
		for i, c := range clusters {
			alt := assignment[i]
			if alt < 0 {
				alt = 0
			}
			chosen[i] = c.Transitions[alt]
		}
		red := Reduce(n, &Allocation{Clusters: clusters, Chosen: chosen})
		// Find the first unforced cluster whose choice place survives:
		// its resolution genuinely matters, so branch on it.
		for i, c := range clusters {
			if assignment[i] >= 0 {
				continue
			}
			kept := false
			for _, p := range c.Places {
				if _, ok := red.Sub.FromParentPlace(p); ok {
					kept = true
					break
				}
			}
			if !kept {
				continue
			}
			for alt := range c.Transitions {
				next := append([]int(nil), assignment...)
				next[i] = alt
				if err := explore(next); err != nil {
					return err
				}
			}
			return nil
		}
		// Fully determined: record if new.
		key := red.Sub.TransitionSetKey()
		if !seen[key] {
			seen[key] = true
			out = append(out, red)
			if len(out) > maxReductions {
				return fmt.Errorf("%w: more than %d distinct T-reductions", ErrTooManyAllocations, maxReductions)
			}
		}
		return nil
	}
	initial := make([]int, len(clusters))
	for i := range initial {
		initial[i] = -1
	}
	if err := explore(initial); err != nil {
		return nil, err
	}
	return out, nil
}

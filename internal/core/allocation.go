package core

import (
	"context"
	"fmt"
	"math"
	"strings"

	"fcpn/internal/invariant"
	"fcpn/internal/petri"
)

// Allocation is a T-allocation (Definition 3.3): a function choosing
// exactly one successor transition for every place. Non-choice places have
// a unique successor, so an allocation is determined by its decisions at
// the free-choice clusters.
type Allocation struct {
	// Clusters are the free-choice clusters of the net, in the canonical
	// order of petri.FreeChoiceSets.
	Clusters []petri.ConflictCluster
	// Chosen[i] is the transition selected from Clusters[i].
	Chosen []petri.Transition
}

// Allocated reports whether transition t is allocated: every transition is
// allocated except the non-chosen members of the choice clusters.
func (a *Allocation) Allocated(t petri.Transition) bool {
	for i, c := range a.Clusters {
		for _, u := range c.Transitions {
			if u == t {
				return a.Chosen[i] == t
			}
		}
	}
	return true
}

// String renders the allocation as "p1→t2, p5→t9".
func (a *Allocation) describe(n *petri.Net) string {
	parts := make([]string, len(a.Clusters))
	for i, c := range a.Clusters {
		names := make([]string, len(c.Places))
		for j, p := range c.Places {
			names[j] = n.PlaceName(p)
		}
		parts[i] = fmt.Sprintf("%s→%s", strings.Join(names, "+"), n.TransitionName(a.Chosen[i]))
	}
	return strings.Join(parts, ", ")
}

// EnumerateAllocations produces every T-allocation of the net, i.e. the
// cartesian product of the free-choice clusters' alternatives. The result
// is deterministic: clusters in canonical order, alternatives in transition
// index order, first allocation = all-first-alternatives. It fails with
// ErrTooManyAllocations when the product exceeds max.
func EnumerateAllocations(n *petri.Net, max int) ([]*Allocation, error) {
	if max <= 0 {
		max = Options{}.maxAllocations()
	}
	clusters := n.FreeChoiceSets()
	total := 1
	for _, c := range clusters {
		// Exact overflow-free boundary: total*len > max ⟺ total > ⌊max/len⌋.
		if total > max/len(c.Transitions) {
			total = max + 1
			break
		}
		total *= len(c.Transitions)
	}
	if total > max {
		return nil, fmt.Errorf("%w: %d free-choice clusters yield more than %d allocations",
			ErrTooManyAllocations, len(clusters), max)
	}
	out := make([]*Allocation, 0, total)
	choice := make([]int, len(clusters))
	for {
		chosen := make([]petri.Transition, len(clusters))
		for i, c := range clusters {
			chosen[i] = c.Transitions[choice[i]]
		}
		out = append(out, &Allocation{Clusters: clusters, Chosen: chosen})
		// Odometer increment.
		i := len(clusters) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(clusters[i].Transitions) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

// CountAllocations returns the number of T-allocations without enumerating
// them (product of cluster sizes), saturating at math.MaxInt. Callers that
// serialise the count should use CountAllocationsSat and mark saturation
// explicitly rather than report the ceiling as a real count.
func CountAllocations(n *petri.Net) int {
	count, _ := CountAllocationsSat(n)
	return count
}

// CountAllocationsSat is CountAllocations with an explicit saturation
// flag: saturated is true when the true product exceeds math.MaxInt (the
// returned count is then the ceiling, not the real value).
func CountAllocationsSat(n *petri.Net) (count int, saturated bool) {
	total := 1
	for _, c := range n.FreeChoiceSets() {
		if total > math.MaxInt/len(c.Transitions) {
			return math.MaxInt, true
		}
		total *= len(c.Transitions)
	}
	return total, false
}

// EnumerateDistinctReductions produces every *distinct* T-reduction of the
// net without enumerating the full allocation product. It branches lazily:
// starting from the all-first-alternatives allocation, it only splits on
// choice clusters whose choice place actually survives in the current
// reduction — clusters cut away by an upstream decision contribute no new
// reductions, which is why the ATM model's 2¹¹ allocations collapse to a
// few dozen reduce calls. The search is output-sensitive:
// O(distinct reductions × branching) Reduce invocations.
//
// maxReductions caps the result (≤ 0 means Options' allocation default).
func EnumerateDistinctReductions(n *petri.Net, maxReductions int) ([]*Reduction, error) {
	return EnumerateDistinctReductionsCtx(nil, n, maxReductions)
}

// EnumerateDistinctReductionsCtx is EnumerateDistinctReductions with a
// cancellation context (nil never cancels), checked once per Reduce call
// so a per-job deadline can interrupt an adversarial choice structure
// mid-search.
func EnumerateDistinctReductionsCtx(ctx context.Context, n *petri.Net, maxReductions int) ([]*Reduction, error) {
	reds, _, err := enumerateDistinctReductions(ctx, n, maxReductions, nil)
	return reds, err
}

// PrunedBranch records one branch of the lazy reduction search cut by the
// prune-on-unschedulable rule: with the forced choices' excluded
// transitions removed, no parent minimal T-semiflow avoiding them covers
// Source, so — as far as the parent's semiflow cone can tell — every
// completion of the branch yields a reduction failing Definition 3.5.
type PrunedBranch struct {
	// Excluded are the transitions removed by the branch's forced choices.
	Excluded []petri.Transition
	// Source is the surviving source transition left uncovered.
	Source petri.Transition
	// Witness is the branch's default completion (first alternative for
	// every unforced cluster): a genuine T-reduction of the net, so when
	// its Definition 3.5 check fails the whole net is not schedulable
	// regardless of whether the cut itself was exact. Callers verify
	// witnesses instead of trusting the cut (see Solve).
	Witness *Reduction
}

// EnumerateDistinctReductionsPruned is the distinct-reduction enumeration
// with the prune-on-unschedulable cut. parentTIs must be the parent net's
// minimal T-semiflows; branches whose forced exclusions leave a source
// transition outside every surviving parent semiflow are cut before their
// subtrees are reduced and returned as PrunedBranch records. The cut is
// exact only when each completion's semiflows restrict from the parent's
// (see invariant.RestrictTInvariants); a reduction can in general gain
// semiflows the parent does not have, so callers must verify each
// Witness and fall back to the unpruned enumeration when one passes.
func EnumerateDistinctReductionsPruned(ctx context.Context, n *petri.Net, maxReductions int, parentTIs []invariant.TInvariant) ([]*Reduction, []*PrunedBranch, error) {
	return enumerateDistinctReductions(ctx, n, maxReductions, &pruner{
		tis:     parentTIs,
		sources: n.SourceTransitions(),
	})
}

// pruner holds the parent-cone data the prune-on-unschedulable cut needs.
type pruner struct {
	tis     []invariant.TInvariant
	sources []petri.Transition
}

// uncoveredSource returns a source transition no parent minimal T-semiflow
// avoiding the excluded set covers, if any. Sources survive every
// T-reduction, so such a source stays uncovered in every completion whose
// invariants restrict from the parent cone.
func (pr *pruner) uncoveredSource(excluded []bool) (petri.Transition, bool) {
	for _, s := range pr.sources {
		covered := false
		for _, ti := range pr.tis {
			if !ti.Contains(s) {
				continue
			}
			clean := true
			for t, c := range ti.Counts {
				if c != 0 && excluded[t] {
					clean = false
					break
				}
			}
			if clean {
				covered = true
				break
			}
		}
		if !covered {
			return s, true
		}
	}
	return 0, false
}

func enumerateDistinctReductions(ctx context.Context, n *petri.Net, maxReductions int, pr *pruner) ([]*Reduction, []*PrunedBranch, error) {
	if maxReductions <= 0 {
		maxReductions = Options{}.maxAllocations()
	}
	clusters := n.FreeChoiceSets()
	var out []*Reduction
	var prunes []*PrunedBranch
	seen := map[string]bool{}
	// One reducer serves the whole search: its scratch buffers (alive
	// masks, producer counts, worklist) are reused across every reduce
	// call, so the enumeration's cost per node is O(arcs) with no
	// per-call allocation beyond the result.
	rd := newReducer(n)

	// assignment[i] = chosen alternative index for cluster i, -1 if the
	// cluster has not been forced by the search yet (defaults to 0).
	var explore func(assignment []int) error
	explore = func(assignment []int) error {
		if err := ctxErr(ctx); err != nil {
			return fmt.Errorf("reduction enumeration interrupted after %d distinct reductions: %w", len(out), err)
		}
		chosen := make([]petri.Transition, len(clusters))
		for i, c := range clusters {
			alt := assignment[i]
			if alt < 0 {
				alt = 0
			}
			chosen[i] = c.Transitions[alt]
		}
		if pr != nil && len(pr.sources) > 0 {
			excluded := make([]bool, n.NumTransitions())
			var excludedList []petri.Transition
			for i, c := range clusters {
				if assignment[i] < 0 {
					continue
				}
				for _, t := range c.Transitions {
					if t != chosen[i] {
						excluded[t] = true
						excludedList = append(excludedList, t)
					}
				}
			}
			if src, cut := pr.uncoveredSource(excluded); cut {
				prunes = append(prunes, &PrunedBranch{
					Excluded: excludedList,
					Source:   src,
					Witness:  rd.reduce(&Allocation{Clusters: clusters, Chosen: chosen}),
				})
				return nil
			}
		}
		red := rd.reduce(&Allocation{Clusters: clusters, Chosen: chosen})
		// Find the first unforced cluster whose choice place survives:
		// its resolution genuinely matters, so branch on it.
		for i, c := range clusters {
			if assignment[i] >= 0 {
				continue
			}
			kept := false
			for _, p := range c.Places {
				if red.KeepsPlace(p) {
					kept = true
					break
				}
			}
			if !kept {
				continue
			}
			for alt := range c.Transitions {
				next := append([]int(nil), assignment...)
				next[i] = alt
				if err := explore(next); err != nil {
					return err
				}
			}
			return nil
		}
		// Fully determined: record if new.
		key := red.TransitionSetKey()
		if !seen[key] {
			seen[key] = true
			out = append(out, red)
			if len(out) > maxReductions {
				return fmt.Errorf("%w: more than %d distinct T-reductions", ErrTooManyAllocations, maxReductions)
			}
		}
		return nil
	}
	initial := make([]int, len(clusters))
	for i := range initial {
		initial[i] = -1
	}
	if err := explore(initial); err != nil {
		return nil, nil, err
	}
	return out, prunes, nil
}

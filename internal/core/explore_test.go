package core

import (
	"encoding/json"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

func TestStrategyStrings(t *testing.T) {
	if StrategyRoundRobin.String() != "round-robin" ||
		StrategyBatch.String() != "batch" ||
		StrategyDemand.String() != "demand" {
		t.Fatal("strategy names wrong")
	}
	if CycleStrategy(9).String() == "" {
		t.Fatal("unknown strategy must render")
	}
}

func TestStrategiesAllRealiseFigure2(t *testing.T) {
	n := figures.Figure2()
	counts := []int{4, 2, 1}
	for _, strat := range []CycleStrategy{StrategyRoundRobin, StrategyBatch, StrategyDemand} {
		seq, err := FindCompleteCycleStrategy(n, counts, 1000, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if err := VerifyCompleteCycle(n, seq); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
	}
}

func TestBatchVsDemandBufferBounds(t *testing.T) {
	// On Figure 2, batching fires t1 four times before t2 runs (p1 peaks
	// at 4), while round-robin interleaves (p1 peaks at 2): the
	// code-vs-buffer tradeoff of the paper's conclusion.
	n := figures.Figure2()
	counts := []int{4, 2, 1}
	peak := func(seq []petri.Transition) int {
		m := n.InitialMarking()
		max := 0
		for _, tr := range seq {
			n.MustFire(m, tr)
			for _, k := range m {
				if k > max {
					max = k
				}
			}
		}
		return max
	}
	batch, err := FindCompleteCycleStrategy(n, counts, 1000, StrategyBatch)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := FindCompleteCycleStrategy(n, counts, 1000, StrategyRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if got := peak(batch); got != 4 {
		t.Fatalf("batch peak = %d, want 4 (t1 t1 t1 t1 …)", got)
	}
	if got := peak(rr); got >= 4 {
		t.Fatalf("round-robin peak = %d, want < 4", got)
	}
}

func TestExploreFigure5(t *testing.T) {
	pts, err := Explore(figures.Figure5(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	var batch, demand *TradeoffPoint
	for i := range pts {
		// Every explored schedule must be valid.
		for _, c := range pts[i].Schedule.Cycles {
			if err := VerifyCompleteCycle(pts[i].Schedule.Net, c.Sequence); err != nil {
				t.Fatalf("%s: %v", pts[i].Strategy, err)
			}
		}
		switch pts[i].Strategy {
		case StrategyBatch:
			batch = &pts[i]
		case StrategyDemand:
			demand = &pts[i]
		}
	}
	if batch == nil || demand == nil {
		t.Fatal("missing strategies")
	}
	// Batching never reduces buffers and never increases switches.
	if batch.TotalBufferBound < demand.TotalBufferBound {
		t.Fatalf("batch buffers %d < demand buffers %d", batch.TotalBufferBound, demand.TotalBufferBound)
	}
	if batch.Switches > demand.Switches {
		t.Fatalf("batch switches %d > demand switches %d", batch.Switches, demand.Switches)
	}
}

func TestExploreRandomNets(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		n := netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig())
		pts, err := Explore(n, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, pt := range pts {
			if pt.TotalBufferBound <= 0 && n.NumPlaces() > 0 {
				// A net whose cycles move tokens must bound above zero…
				// unless every place stays empty (possible only when
				// there are no firings at all).
				total := 0
				for _, c := range pt.Schedule.Cycles {
					total += len(c.Sequence)
				}
				if total > 0 {
					t.Fatalf("seed %d %s: zero buffer bound with %d firings", seed, pt.Strategy, total)
				}
			}
		}
	}
}

func TestFindCompleteCycleStrategyValidation(t *testing.T) {
	n := figures.Figure2()
	if _, err := FindCompleteCycleStrategy(n, []int{1}, 10, StrategyBatch); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FindCompleteCycleStrategy(n, []int{-1, 0, 0}, 10, StrategyBatch); err == nil {
		t.Fatal("negative accepted")
	}
	if _, err := FindCompleteCycleStrategy(n, []int{4, 2, 1}, 2, StrategyBatch); err == nil {
		t.Fatal("cap ignored")
	}
	if _, err := FindCompleteCycleStrategy(figures.Figure3a(), []int{1, 1, 0, 1, 0}, 10, StrategyBatch); err == nil {
		t.Fatal("conflict net accepted")
	}
	// Non-invariant counts fail the marking check.
	if _, err := FindCompleteCycleStrategy(n, []int{1, 0, 0}, 10, StrategyDemand); err == nil {
		t.Fatal("non-invariant accepted")
	}
}

func TestScheduleExport(t *testing.T) {
	s, err := Solve(figures.Figure4(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex := s.Export()
	if ex.Net != "figure4" || ex.Allocations != 2 || len(ex.Cycles) != 2 {
		t.Fatalf("export = %+v", ex)
	}
	foundT2 := false
	for _, c := range ex.Cycles {
		if c.Choices["p1"] == "t2" {
			foundT2 = true
			if c.Counts["t4"] != 1 || c.Counts["t1"] != 2 {
				t.Fatalf("counts = %v", c.Counts)
			}
			if len(c.Sequence) != 5 {
				t.Fatalf("sequence = %v", c.Sequence)
			}
		}
	}
	if !foundT2 {
		t.Fatalf("missing t2 cycle: %+v", ex.Cycles)
	}
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ScheduleExport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Net != "figure4" || len(back.Cycles) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestImportScheduleRoundTrip(t *testing.T) {
	for _, n := range []*petri.Net{figures.Figure3a(), figures.Figure4(), figures.Figure5()} {
		s, err := Solve(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		back, err := ImportSchedule(n, s.Export())
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		if len(back.Cycles) != len(s.Cycles) {
			t.Fatalf("%s: cycles %d != %d", n.Name(), len(back.Cycles), len(s.Cycles))
		}
	}
}

func TestImportScheduleRejectsBadInput(t *testing.T) {
	n := figures.Figure4()
	s, err := Solve(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := s.Export()

	if _, err := ImportSchedule(n, nil); err == nil {
		t.Fatal("nil export accepted")
	}

	bad := *good
	bad.Cycles = append([]CycleExport(nil), good.Cycles...)
	bad.Cycles[0].Sequence = []string{"nope"}
	if _, err := ImportSchedule(n, &bad); err == nil {
		t.Fatal("unknown transition accepted")
	}

	bad.Cycles = append([]CycleExport(nil), good.Cycles...)
	bad.Cycles[0].Sequence = []string{"t1"} // not a complete cycle
	if _, err := ImportSchedule(n, &bad); err == nil {
		t.Fatal("incomplete cycle accepted")
	}

	// Missing a reduction: only one cycle.
	bad.Cycles = good.Cycles[:1]
	if _, err := ImportSchedule(n, &bad); err == nil {
		t.Fatal("under-covering schedule accepted")
	}

	// Duplicated reduction.
	bad.Cycles = []CycleExport{good.Cycles[0], good.Cycles[0]}
	if _, err := ImportSchedule(n, &bad); err == nil {
		t.Fatal("duplicate reduction accepted")
	}

	// A cycle whose declared choice contradicts its firings.
	bad.Cycles = append([]CycleExport(nil), good.Cycles...)
	flipped := map[string]string{}
	for k, v := range bad.Cycles[0].Choices {
		if v == "t2" {
			flipped[k] = "t3"
		} else {
			flipped[k] = "t2"
		}
	}
	bad.Cycles[0].Choices = flipped
	if _, err := ImportSchedule(n, &bad); err == nil {
		t.Fatal("contradictory choices accepted")
	}
}

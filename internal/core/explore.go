package core

import (
	"context"
	"errors"
	"fmt"

	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

// CycleStrategy selects the firing policy used to realise a T-invariant as
// a concrete finite complete cycle. The firing-count vector — and thus the
// generated code's behaviour — is identical across strategies; what
// changes is the interleaving, and with it the buffer (place) bounds of
// the schedule. This implements the schedule-space exploration the paper's
// conclusion proposes ("evaluate tradeoffs between code and buffer size").
type CycleStrategy int

const (
	// StrategyRoundRobin fires each enabled transition once per sweep in
	// index order: balanced interleaving (the solver's default).
	StrategyRoundRobin CycleStrategy = iota
	// StrategyBatch exhausts one transition's remaining firings before
	// moving on: maximises batching (fewest context switches between
	// operations, largest buffers).
	StrategyBatch
	// StrategyDemand fires the deepest enabled consumer first (highest
	// transition index in the pipeline ordering): drains tokens eagerly,
	// minimising buffer occupancy.
	StrategyDemand
)

// String names the strategy.
func (s CycleStrategy) String() string {
	switch s {
	case StrategyRoundRobin:
		return "round-robin"
	case StrategyBatch:
		return "batch"
	case StrategyDemand:
		return "demand"
	default:
		return fmt.Sprintf("CycleStrategy(%d)", int(s))
	}
}

// FindCompleteCycleStrategy is FindCompleteCycle under a firing policy.
// All strategies are complete on conflict-free nets (persistence): if the
// counts are realisable, every policy realises them.
func FindCompleteCycleStrategy(n *petri.Net, counts []int, maxLen int, strat CycleStrategy) ([]petri.Transition, error) {
	return findCompleteCycleStrategy(nil, nil, n, counts, maxLen, strat)
}

// findCompleteCycleStrategy is the traced, cancellable realisation body:
// tr records one "core/cycle" detail span per call (matching the solver's
// cycle search), ctx is checked once per firing sweep.
func findCompleteCycleStrategy(ctx context.Context, tr *trace.Tracer, n *petri.Net, counts []int, maxLen int, strat CycleStrategy) ([]petri.Transition, error) {
	defer tr.StartDetail("core/cycle").End()
	if len(counts) != n.NumTransitions() {
		return nil, fmt.Errorf("core: counts length %d != %d transitions", len(counts), n.NumTransitions())
	}
	if !n.IsConflictFree() {
		return nil, errors.New("core: FindCompleteCycleStrategy requires a conflict-free net")
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("core: negative firing count %v", counts)
		}
		total += c
	}
	if total > maxLen {
		return nil, fmt.Errorf("core: cycle of %d firings exceeds cap %d: %w", total, maxLen, ErrBudgetExceeded)
	}
	remaining := append([]int(nil), counts...)
	m := n.InitialMarking()
	seq := make([]petri.Transition, 0, total)

	fireOnce := func(t petri.Transition) bool {
		if remaining[t] == 0 || !n.Enabled(m, t) {
			return false
		}
		n.MustFire(m, t)
		remaining[t]--
		seq = append(seq, t)
		return true
	}

	for len(seq) < total {
		if err := ctxErr(ctx); err != nil {
			return nil, fmt.Errorf("cycle search under %s interrupted after %d of %d firings: %w", strat, len(seq), total, err)
		}
		fired := false
		switch strat {
		case StrategyBatch:
			for t := petri.Transition(0); int(t) < n.NumTransitions(); t++ {
				for fireOnce(t) {
					fired = true
				}
				if fired {
					break
				}
			}
		case StrategyDemand:
			for t := petri.Transition(n.NumTransitions() - 1); t >= 0; t-- {
				if fireOnce(t) {
					fired = true
					break
				}
			}
		default: // round-robin
			for t := petri.Transition(0); int(t) < n.NumTransitions(); t++ {
				if fireOnce(t) {
					fired = true
				}
			}
		}
		if !fired {
			return nil, fmt.Errorf("%w: %d of %d firings done under %s", ErrCycleDeadlock, len(seq), total, strat)
		}
	}
	if !m.Equal(n.InitialMarking()) {
		return nil, fmt.Errorf("core: firing vector is not a T-invariant under %s", strat)
	}
	return seq, nil
}

// TradeoffPoint is one explored schedule variant.
type TradeoffPoint struct {
	Strategy CycleStrategy
	// TotalBufferBound is Σ over places of the schedule's per-place
	// maximum token count: the static memory the implementation must
	// reserve.
	TotalBufferBound int
	// MaxBufferBound is the largest single-place bound.
	MaxBufferBound int
	// Switches counts adjacent transition changes summed over all cycles:
	// a proxy for instruction-cache pressure / loop structure of the code
	// (lower = more batching).
	Switches int
	// Schedule is the full valid schedule realised under the strategy.
	Schedule *Schedule
}

// Explore solves the net once per strategy and reports the buffer/
// batching tradeoff of each resulting valid schedule. The solve itself is
// traced through opt.Trace as usual; the per-strategy re-realisation is
// recorded under one top-level "core/explore" span (with nested
// "core/cycle" detail spans), so the phase gate covers the
// tradeoff-exploration workload too. opt.Ctx cancels mid-exploration.
func Explore(n *petri.Net, opt Options) ([]TradeoffPoint, error) {
	base, err := Solve(n, opt)
	if err != nil {
		return nil, err
	}
	sp := opt.Trace.Start("core/explore")
	defer sp.End()
	var out []TradeoffPoint
	for _, strat := range []CycleStrategy{StrategyRoundRobin, StrategyBatch, StrategyDemand} {
		if err := opt.cancelled(); err != nil {
			return nil, fmt.Errorf("core: explore %s: %w", strat, err)
		}
		sched := &Schedule{Net: n, AllocationCount: base.AllocationCount}
		for _, c := range base.Cycles {
			sub := c.Reduction.Subnet()
			subCounts := make([]int, sub.Net.NumTransitions())
			for st, pt := range sub.ParentTransition {
				subCounts[st] = c.Counts[pt]
			}
			seq, err := findCompleteCycleStrategy(opt.Ctx, opt.Trace, sub.Net, subCounts, opt.maxCycleLength(), strat)
			if err != nil {
				return nil, fmt.Errorf("core: explore %s: %w", strat, err)
			}
			sched.Cycles = append(sched.Cycles, Cycle{
				Sequence:  sub.MapSequenceToParent(seq),
				Counts:    c.Counts,
				Reduction: c.Reduction,
			})
		}
		bounds, err := sched.BufferBounds()
		if err != nil {
			return nil, err
		}
		pt := TradeoffPoint{Strategy: strat, Schedule: sched}
		for _, b := range bounds {
			pt.TotalBufferBound += b
			if b > pt.MaxBufferBound {
				pt.MaxBufferBound = b
			}
		}
		for _, c := range sched.Cycles {
			for i := 1; i < len(c.Sequence); i++ {
				if c.Sequence[i] != c.Sequence[i-1] {
					pt.Switches++
				}
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

package core

import (
	"context"
	"errors"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/trace"
)

// errDeadline stands in for the engine's typed ErrJobTimeout: the core
// layer must preserve whatever cause the caller installed.
var errDeadline = errors.New("test: deadline")

func cancelledCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errDeadline)
	return ctx
}

// TestSolveCancelledContext checks a pre-cancelled context stops Solve
// with an error that still wraps the installed cause — never a bogus
// "not schedulable" verdict.
func TestSolveCancelledContext(t *testing.T) {
	_, err := Solve(figures.Figure5(), Options{Ctx: cancelledCtx(t)})
	if err == nil {
		t.Fatal("Solve with cancelled ctx succeeded")
	}
	if !errors.Is(err, errDeadline) {
		t.Fatalf("cause lost through Solve: %v", err)
	}
	var nse *NotSchedulableError
	if errors.As(err, &nse) {
		// If the sweep surfaced the cancellation as a schedulability
		// failure, the typed cause must still unwrap from it.
		if !errors.Is(nse, errDeadline) {
			t.Fatalf("NotSchedulableError swallowed the cause: %v", nse)
		}
	}
}

// TestEnumerateReductionsCancelled checks the allocation enumeration
// honours its context.
func TestEnumerateReductionsCancelled(t *testing.T) {
	_, err := EnumerateDistinctReductionsCtx(cancelledCtx(t), figures.Figure5(), 0)
	if !errors.Is(err, errDeadline) {
		t.Fatalf("enumeration ignored cancellation: %v", err)
	}
}

// TestFindCompleteCycleCancelled checks the cycle search bails at a
// sweep boundary with the cause intact.
func TestFindCompleteCycleCancelled(t *testing.T) {
	n := figures.Figure5()
	reds, err := EnumerateDistinctReductions(n, 0)
	if err != nil || len(reds) == 0 {
		t.Fatalf("setup: %v (%d reductions)", err, len(reds))
	}
	rep := CheckReduction(n, reds[0], Options{Ctx: cancelledCtx(t)})
	if rep.Schedulable {
		t.Fatal("cancelled check reported schedulable")
	}
	if rep.Cause == nil || !errors.Is(rep.Cause, errDeadline) {
		t.Fatalf("report cause = %v, want the installed deadline cause", rep.Cause)
	}
}

// TestSolveNilCtxUnchanged guards the default path: no context behaves
// exactly as before (the whole pre-existing suite runs with Ctx nil, but
// make the invariant explicit).
func TestSolveNilCtxUnchanged(t *testing.T) {
	s, err := Solve(figures.Figure5(), Options{})
	if err != nil || len(s.Cycles) == 0 {
		t.Fatalf("baseline solve: %v", err)
	}
}

// TestExploreTracePhases checks Explore records its top-level
// "core/explore" span and nests the per-strategy cycle realisations as
// "core/cycle" detail spans (satellite of the tracing work: the ablation
// benchmarks read these).
func TestExploreTracePhases(t *testing.T) {
	tr := trace.New()
	pts, err := Explore(figures.Figure5(), Options{Trace: tr})
	if err != nil || len(pts) == 0 {
		t.Fatalf("explore: %v (%d points)", err, len(pts))
	}
	rep := tr.Report()
	top, ok := rep.Phase("core/explore")
	if !ok || top.Count == 0 || top.Detail {
		t.Fatalf("core/explore must be a recorded top-level phase: %+v ok=%v", top, ok)
	}
	cyc, ok := rep.Phase("core/cycle")
	if !ok || cyc.Count == 0 || !cyc.Detail {
		t.Fatalf("core/cycle must be a recorded detail phase: %+v ok=%v", cyc, ok)
	}
}

// TestExploreCancelled checks the strategy loop honours cancellation.
func TestExploreCancelled(t *testing.T) {
	_, err := Explore(figures.Figure5(), Options{Ctx: cancelledCtx(t)})
	if !errors.Is(err, errDeadline) {
		t.Fatalf("explore ignored cancellation: %v", err)
	}
}

// TestDedupClassesCancelled closes the dedup cancellation gap: the class
// grouping hashes whole reduction sets and must observe a cancelled
// context between its stages instead of running the batch to completion —
// and the error must preserve the installed cause.
func TestDedupClassesCancelled(t *testing.T) {
	n := figures.Figure5()
	reds, err := EnumerateDistinctReductions(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reds) < 2 {
		t.Fatalf("corpus net yields %d reductions, need ≥ 2 for the dedup to run", len(reds))
	}
	_, derr := dedupClasses(reds, Options{Ctx: cancelledCtx(t)}, checkAids{})
	if derr == nil {
		t.Fatal("dedupClasses with cancelled ctx returned no error")
	}
	if !errors.Is(derr, errDeadline) {
		t.Fatalf("cause lost through dedupClasses: %v", derr)
	}
	// The sweep wrapper must surface it too, not misread stub state.
	if _, serr := solveReductions(n, reds, Options{Ctx: cancelledCtx(t)}, checkAids{}); !errors.Is(serr, errDeadline) {
		t.Fatalf("solveReductions swallowed the dedup cancellation: %v", serr)
	}
}

package core

import (
	"strconv"
	"sync"

	"fcpn/internal/petri"
)

// Reduction is a T-reduction (Definition 3.4): the conflict-free subnet
// obtained from the net by removing the part that is inactive under a
// given T-allocation.
//
// The reduction is stored compactly as kept-node bitsets over the parent
// net plus the removal log in (opcode, node) form. The induced subnet Net —
// name lookups, string keys, arc-by-arc Builder calls — is materialised
// lazily by Subnet(): the enumeration, pruning and fingerprint-bucketing
// loops of the solver sweep thousands of reductions per solve and most of
// them never need a materialised Net at all.
type Reduction struct {
	// Allocation is the choice resolution this reduction corresponds to.
	Allocation *Allocation

	net          *petri.Net
	keptT, keptP petri.NodeSet
	numT, numP   int
	steps        []reduceStep

	subOnce sync.Once
	sub     *petri.Subnet
	keyOnce sync.Once
	key     string
	fpOnce  sync.Once
	fp      uint64
}

// reduceStep is one removal of the reduction algorithm in compact form;
// Steps renders the human-readable strings on demand so the enumeration
// hot loop never pays fmt/concat costs.
type reduceStep struct {
	op   reduceOp
	node int32
}

type reduceOp uint8

const (
	opRemovePlace reduceOp = iota
	opUnallocated
	opNoInputPlace
	opAllSourceInputs
)

// Subnet materialises the induced conflict-free subnet with parent index
// maps, computing it on first use and memoising it for the reduction's
// lifetime (safe for concurrent use).
func (r *Reduction) Subnet() *petri.Subnet {
	r.subOnce.Do(func() {
		r.sub = r.net.InducedSubnet(r.net.Name()+"/"+r.Allocation.describe(r.net),
			r.KeptTransitions(), r.KeptPlaces())
	})
	return r.sub
}

// Steps renders the removal trace performed by the reduction algorithm, in
// order (used to reproduce Figure 6).
func (r *Reduction) Steps() []string {
	out := make([]string, len(r.steps))
	for i, s := range r.steps {
		switch s.op {
		case opRemovePlace:
			out[i] = "remove " + r.net.PlaceName(petri.Place(s.node))
		case opUnallocated:
			out[i] = "remove " + r.net.TransitionName(petri.Transition(s.node)) + " (unallocated)"
		case opNoInputPlace:
			out[i] = "remove " + r.net.TransitionName(petri.Transition(s.node)) + " (no input place)"
		case opAllSourceInputs:
			out[i] = "remove " + r.net.TransitionName(petri.Transition(s.node)) + " (all inputs are source places)"
		}
	}
	return out
}

// KeepsTransition reports whether parent transition t survives.
func (r *Reduction) KeepsTransition(t petri.Transition) bool { return r.keptT.Has(int(t)) }

// KeepsPlace reports whether parent place p survives.
func (r *Reduction) KeepsPlace(p petri.Place) bool { return r.keptP.Has(int(p)) }

// KeptTransitions lists the surviving transitions in parent index order.
func (r *Reduction) KeptTransitions() []petri.Transition {
	out := make([]petri.Transition, 0, r.numT)
	for t := 0; t < r.net.NumTransitions(); t++ {
		if r.keptT.Has(t) {
			out = append(out, petri.Transition(t))
		}
	}
	return out
}

// KeptPlaces lists the surviving places in parent index order.
func (r *Reduction) KeptPlaces() []petri.Place {
	out := make([]petri.Place, 0, r.numP)
	for p := 0; p < r.net.NumPlaces(); p++ {
		if r.keptP.Has(p) {
			out = append(out, petri.Place(p))
		}
	}
	return out
}

// TransitionSetKey returns the canonical key identifying the reduction by
// its kept parent transition set — the same bytes as
// petri.Subnet.TransitionSetKey, without materialising the subnet. Two
// reductions with the same key are duplicates for scheduling purposes.
func (r *Reduction) TransitionSetKey() string {
	r.keyOnce.Do(func() {
		key := make([]byte, 0, r.numT*3)
		for t := 0; t < r.net.NumTransitions(); t++ {
			if r.keptT.Has(t) {
				key = strconv.AppendInt(key, int64(t), 10)
				key = append(key, ',')
			}
		}
		r.key = string(key)
	})
	return r.key
}

// Fingerprint returns the reduction's cheap isomorphism-invariant
// fingerprint (petri.InducedFingerprint over the kept-node bitsets),
// memoised. Equal canonical hashes imply equal fingerprints, so the dedup
// can bucket on it before any Weisfeiler–Lehman refinement runs.
func (r *Reduction) Fingerprint() uint64 {
	r.fpOnce.Do(func() { r.fp = r.net.InducedFingerprint(r.keptT, r.keptP) })
	return r.fp
}

// restrictionExact reports whether every place adjacent to a kept
// transition is kept — exactly invariant.RestrictTInvariants' exactness
// precondition, checkable in O(arcs) from the bitsets alone. When it holds
// the reduction's minimal T-semiflows restrict from the parent's, so the
// dedup sweep can skip the isomorphism machinery for this reduction
// entirely: its check is already Farkas-free.
func (r *Reduction) restrictionExact() bool {
	for t := 0; t < r.net.NumTransitions(); t++ {
		if !r.keptT.Has(t) {
			continue
		}
		for _, a := range r.net.Pre(petri.Transition(t)) {
			if !r.keptP.Has(int(a.Place)) {
				return false
			}
		}
		for _, a := range r.net.Post(petri.Transition(t)) {
			if !r.keptP.Has(int(a.Place)) {
				return false
			}
		}
	}
	return true
}

// KeptTransitionNames lists the surviving transitions by name, for tests.
func (r *Reduction) KeptTransitionNames(n *petri.Net) []string {
	out := make([]string, 0, r.numT)
	for _, t := range r.KeptTransitions() {
		out = append(out, n.TransitionName(t))
	}
	return out
}

// KeptPlaceNames lists the surviving places by name, for tests.
func (r *Reduction) KeptPlaceNames(n *petri.Net) []string {
	out := make([]string, 0, r.numP)
	for _, p := range r.KeptPlaces() {
		out = append(out, n.PlaceName(p))
	}
	return out
}

// Reduce applies the paper's modified Hack reduction algorithm (Section 3,
// Step 1) to the net under the given allocation:
//
//  1. Start from the full net.
//  2. Remove every non-allocated (conflict) transition t. For each place s
//     in t's postset, remove s unless (i) s has another surviving producer
//     or (ii) some surviving consumer of s has another surviving input
//     place that is not a source place (a place with no surviving
//     producers).
//  3. When a place s is removed, remove each consumer t of s when (i) t
//     has no surviving input place, or (ii) all of t's surviving input
//     places are source places — in which case those places are removed
//     too.
//  4. Iterate until no rule applies.
//
// The result is a set of disjoint conflict-free subnets, returned as a
// single (possibly disconnected) subnet. Sweeps that reduce the same net
// under many allocations should build one reducer and call its reduce
// method to reuse the per-net scratch buffers.
func Reduce(n *petri.Net, alloc *Allocation) *Reduction {
	return newReducer(n).reduce(alloc)
}

// Reducer applies the reduction algorithm repeatedly on one net, reusing
// the per-net scratch buffers across calls — the exported face of the
// worklist kernel for sweeps outside this package (internal/engine rebuilds
// one reduction per cached cycle). Not safe for concurrent use.
type Reducer struct {
	rd *reducer
}

// NewReducer returns a Reducer for n.
func NewReducer(n *petri.Net) *Reducer { return &Reducer{rd: newReducer(n)} }

// Reduce is Reduce(n, alloc) on the Reducer's net, without the per-call
// scratch allocation.
func (r *Reducer) Reduce(alloc *Allocation) *Reduction { return r.rd.reduce(alloc) }

// reducer holds the reusable per-net state of the reduction algorithm:
// alive masks, incremental surviving-producer counts and the rule 2(d)
// worklist. One reducer serves any number of sequential reduce calls on
// its net, so the distinct-reduction enumeration's thousands of calls
// allocate almost nothing.
type reducer struct {
	n      *petri.Net
	aliveT []bool
	aliveP []bool
	// prod[p] is the number of surviving producers of p, maintained
	// incrementally; orig[p] is the static producer count of the full net.
	// prod[p] == 0 is exactly the old O(producers) isSourcePlace scan.
	prod []int
	orig []int
	// work queues places whose rule 2(b) conditions may have decayed —
	// starved places and their sibling inputs — replacing the old
	// whole-net rescan-until-fixpoint loop of rule 2(d). The removal rules
	// are monotone (a removable node stays removable until removed), so
	// draining the queue reaches the same fixpoint as chaotic iteration.
	work   []petri.Place
	inWork []bool
	steps  []reduceStep
}

func newReducer(n *petri.Net) *reducer {
	nP, nT := n.NumPlaces(), n.NumTransitions()
	rd := &reducer{
		n:      n,
		aliveT: make([]bool, nT),
		aliveP: make([]bool, nP),
		prod:   make([]int, nP),
		orig:   make([]int, nP),
		inWork: make([]bool, nP),
	}
	for p := 0; p < nP; p++ {
		rd.orig[p] = len(n.Producers(petri.Place(p)))
	}
	return rd
}

func (rd *reducer) reduce(alloc *Allocation) *Reduction {
	n := rd.n
	for i := range rd.aliveT {
		rd.aliveT[i] = true
	}
	for i := range rd.aliveP {
		rd.aliveP[i] = true
	}
	copy(rd.prod, rd.orig)
	rd.steps = rd.steps[:0]
	rd.work = rd.work[:0]

	// Seed: remove the non-allocated conflict transitions. Each removal
	// cascades rules 2(b)/2(c) immediately (same order as the recursive
	// algorithm) and queues decay candidates for the drain below.
	for i, c := range alloc.Clusters {
		for _, t := range c.Transitions {
			if t != alloc.Chosen[i] {
				rd.removeTransition(t, opUnallocated)
			}
		}
	}

	// Rule 2(d): a place kept by rule 2(b)(ii) can lose its justification
	// when a later cascade removes the consumer or starves the other input
	// place. Every such decay event was queued by removeTransition, so
	// draining the queue (re-queueing as cascades run) reaches the fixpoint
	// without rescanning the net.
	for h := 0; h < len(rd.work); h++ {
		p := rd.work[h]
		rd.inWork[p] = false
		if rd.aliveP[p] && rd.orig[p] > 0 && rd.prod[p] == 0 {
			rd.maybeRemovePlace(p)
		}
	}
	rd.work = rd.work[:0]

	red := &Reduction{
		Allocation: alloc,
		net:        n,
		keptT:      petri.NewNodeSet(n.NumTransitions()),
		keptP:      petri.NewNodeSet(n.NumPlaces()),
		steps:      append([]reduceStep(nil), rd.steps...),
	}
	for t, alive := range rd.aliveT {
		if alive {
			red.keptT.Add(t)
			red.numT++
		}
	}
	for p, alive := range rd.aliveP {
		if alive {
			red.keptP.Add(p)
			red.numP++
		}
	}
	return red
}

// push queues p for the rule 2(d) drain (deduplicated).
func (rd *reducer) push(p petri.Place) {
	if !rd.inWork[p] {
		rd.inWork[p] = true
		rd.work = append(rd.work, p)
	}
}

// maybeRemovePlace applies rule 2(b) to a place that has lost a producer.
func (rd *reducer) maybeRemovePlace(s petri.Place) {
	if !rd.aliveP[s] {
		return
	}
	// (i) another surviving producer keeps s.
	if rd.prod[s] != 0 {
		return
	}
	// (ii) a surviving consumer with another surviving non-source input
	// place keeps s.
	for _, ta := range rd.n.Consumers(s) {
		if !rd.aliveT[ta.Transition] {
			continue
		}
		for _, in := range rd.n.Pre(ta.Transition) {
			if in.Place != s && rd.aliveP[in.Place] && rd.prod[in.Place] != 0 {
				return
			}
		}
	}
	rd.removePlace(s)
}

func (rd *reducer) removePlace(p petri.Place) {
	if !rd.aliveP[p] {
		return
	}
	rd.aliveP[p] = false
	rd.steps = append(rd.steps, reduceStep{op: opRemovePlace, node: int32(p)})
	// Rule 2(c): consumers of a removed place.
	for _, ta := range rd.n.Consumers(p) {
		tj := ta.Transition
		if !rd.aliveT[tj] {
			continue
		}
		surviving := 0
		allSources := true
		for _, in := range rd.n.Pre(tj) {
			if !rd.aliveP[in.Place] {
				continue
			}
			surviving++
			if rd.prod[in.Place] != 0 {
				allSources = false
			}
		}
		switch {
		case surviving == 0:
			rd.removeTransition(tj, opNoInputPlace)
		case allSources:
			// Remove tj and every surviving (source) input place. The input
			// list is snapshotted first because the removal cascades.
			inputs := make([]petri.Place, 0, surviving)
			for _, in := range rd.n.Pre(tj) {
				if rd.aliveP[in.Place] {
					inputs = append(inputs, in.Place)
				}
			}
			rd.removeTransition(tj, opAllSourceInputs)
			for _, in := range inputs {
				rd.removePlace(in)
			}
		}
	}
}

func (rd *reducer) removeTransition(t petri.Transition, op reduceOp) {
	if !rd.aliveT[t] {
		return
	}
	rd.aliveT[t] = false
	rd.steps = append(rd.steps, reduceStep{op: op, node: int32(t)})
	// Decrement every postset place's producer count before the rule 2(b)
	// cascade so each cascade step sees t dead on all of them (matching the
	// recursive algorithm, whose isSourcePlace scan always saw the final
	// aliveT). A place starved here may also strip the rule 2(b)(ii)
	// justification from its consumers' sibling inputs — queue them.
	for _, out := range rd.n.Post(t) {
		s := out.Place
		rd.prod[s]--
		if rd.prod[s] == 0 && rd.aliveP[s] {
			rd.push(s)
			for _, ta := range rd.n.Consumers(s) {
				if !rd.aliveT[ta.Transition] {
					continue
				}
				for _, in := range rd.n.Pre(ta.Transition) {
					if in.Place != s && rd.aliveP[in.Place] {
						rd.push(in.Place)
					}
				}
			}
		}
	}
	for _, out := range rd.n.Post(t) {
		rd.maybeRemovePlace(out.Place)
	}
	// Removing a consumer can strip justification (ii) from its surviving
	// input places.
	for _, in := range rd.n.Pre(t) {
		if rd.aliveP[in.Place] {
			rd.push(in.Place)
		}
	}
}

package core

import (
	"fmt"

	"fcpn/internal/petri"
)

// Reduction is a T-reduction (Definition 3.4): the conflict-free subnet
// obtained from the net by removing the part that is inactive under a
// given T-allocation.
type Reduction struct {
	// Allocation is the choice resolution this reduction corresponds to.
	Allocation *Allocation
	// Sub is the induced conflict-free subnet with parent index maps.
	Sub *petri.Subnet
	// Steps is a human-readable trace of the removals performed by the
	// reduction algorithm, in order (used to reproduce Figure 6).
	Steps []string
}

// Reduce applies the paper's modified Hack reduction algorithm (Section 3,
// Step 1) to the net under the given allocation:
//
//  1. Start from the full net.
//  2. Remove every non-allocated (conflict) transition t. For each place s
//     in t's postset, remove s unless (i) s has another surviving producer
//     or (ii) some surviving consumer of s has another surviving input
//     place that is not a source place (a place with no surviving
//     producers).
//  3. When a place s is removed, remove each consumer t of s when (i) t
//     has no surviving input place, or (ii) all of t's surviving input
//     places are source places — in which case those places are removed
//     too.
//  4. Iterate until no rule applies.
//
// The result is a set of disjoint conflict-free subnets, returned as a
// single (possibly disconnected) subnet.
func Reduce(n *petri.Net, alloc *Allocation) *Reduction {
	aliveT := make([]bool, n.NumTransitions())
	aliveP := make([]bool, n.NumPlaces())
	for i := range aliveT {
		aliveT[i] = true
	}
	for i := range aliveP {
		aliveP[i] = true
	}
	red := &Reduction{Allocation: alloc}

	// isSourcePlace reports whether p currently has no surviving producer.
	isSourcePlace := func(p petri.Place) bool {
		for _, ta := range n.Producers(p) {
			if aliveT[ta.Transition] {
				return false
			}
		}
		return true
	}

	var removePlace func(p petri.Place)
	var removeTransition func(t petri.Transition, reason string)

	// maybeRemovePlace applies rule 2(b) to a postset place of a removed
	// transition.
	maybeRemovePlace := func(s petri.Place) {
		if !aliveP[s] {
			return
		}
		// (i) another surviving producer keeps s.
		if !isSourcePlace(s) {
			return
		}
		// (ii) a surviving consumer with another surviving non-source
		// input place keeps s.
		for _, ta := range n.Consumers(s) {
			if !aliveT[ta.Transition] {
				continue
			}
			for _, in := range n.Pre(ta.Transition) {
				if in.Place != s && aliveP[in.Place] && !isSourcePlace(in.Place) {
					return
				}
			}
		}
		removePlace(s)
	}

	removePlace = func(p petri.Place) {
		if !aliveP[p] {
			return
		}
		aliveP[p] = false
		red.Steps = append(red.Steps, "remove "+n.PlaceName(p))
		// Rule 2(c): consumers of a removed place.
		for _, ta := range n.Consumers(p) {
			tj := ta.Transition
			if !aliveT[tj] {
				continue
			}
			surviving := 0
			allSources := true
			for _, in := range n.Pre(tj) {
				if !aliveP[in.Place] {
					continue
				}
				surviving++
				if !isSourcePlace(in.Place) {
					allSources = false
				}
			}
			switch {
			case surviving == 0:
				removeTransition(tj, "no input place")
			case allSources:
				// Remove tj and every surviving (source) input place.
				inputs := make([]petri.Place, 0, surviving)
				for _, in := range n.Pre(tj) {
					if aliveP[in.Place] {
						inputs = append(inputs, in.Place)
					}
				}
				removeTransition(tj, "all inputs are source places")
				for _, in := range inputs {
					removePlace(in)
				}
			}
		}
	}

	removeTransition = func(t petri.Transition, reason string) {
		if !aliveT[t] {
			return
		}
		aliveT[t] = false
		red.Steps = append(red.Steps, fmt.Sprintf("remove %s (%s)", n.TransitionName(t), reason))
		for _, out := range n.Post(t) {
			maybeRemovePlace(out.Place)
		}
	}

	// Seed: remove the non-allocated conflict transitions.
	for i, c := range alloc.Clusters {
		for _, t := range c.Transitions {
			if t != alloc.Chosen[i] {
				removeTransition(t, "unallocated")
			}
		}
	}

	// Rule 2(d): iterate until no rule applies. A place kept by rule
	// 2(b)(ii) can lose its justification when a later cascade removes the
	// consumer or starves the other input place, so places that lost every
	// producer (but had producers in the original net) are re-examined
	// until the step trace stops growing.
	for {
		before := len(red.Steps)
		for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
			if aliveP[p] && len(n.Producers(p)) > 0 && isSourcePlace(p) {
				maybeRemovePlace(p)
			}
		}
		if len(red.Steps) == before {
			break
		}
	}

	var keepT []petri.Transition
	for t := petri.Transition(0); int(t) < n.NumTransitions(); t++ {
		if aliveT[t] {
			keepT = append(keepT, t)
		}
	}
	var keepP []petri.Place
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if aliveP[p] {
			keepP = append(keepP, p)
		}
	}
	red.Sub = n.InducedSubnet(n.Name()+"/"+alloc.describe(n), keepT, keepP)
	return red
}

// KeptTransitionNames lists the surviving transitions by name, for tests.
func (r *Reduction) KeptTransitionNames(n *petri.Net) []string {
	out := make([]string, len(r.Sub.ParentTransition))
	for i, t := range r.Sub.ParentTransition {
		out[i] = n.TransitionName(t)
	}
	return out
}

// KeptPlaceNames lists the surviving places by name, for tests.
func (r *Reduction) KeptPlaceNames(n *petri.Net) []string {
	out := make([]string, len(r.Sub.ParentPlace))
	for i, p := range r.Sub.ParentPlace {
		out[i] = n.PlaceName(p)
	}
	return out
}

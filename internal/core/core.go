// Package core implements the paper's primary contribution: quasi-static
// scheduling (QSS) of Free-Choice Petri Nets (Sgroi, Lavagno, Watanabe,
// Sangiovanni-Vincentelli, DAC 1999).
//
// The pipeline follows Section 3 of the paper:
//
//  1. Enumerate the T-allocations of the net — one chosen successor per
//     free-choice place (allocation.go).
//  2. For each allocation, compute the T-reduction with the modified Hack
//     reduction algorithm; the result is a conflict-free subnet
//     (reduction.go). Reductions that coincide on their transition sets are
//     deduplicated.
//  3. Check that every T-reduction is statically schedulable
//     (Definition 3.5): consistent, covering every surviving source
//     transition with a T-invariant, and able to complete a deadlock-free
//     finite cycle returning to the initial marking (schedulability.go,
//     cycle.go).
//  4. If every reduction is schedulable, assemble the valid schedule: one
//     finite complete cycle per distinct T-reduction (Theorem 3.1).
//  5. Partition the transitions into tasks, one per group of
//     dependent-rate source transitions (tasks.go).
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"fcpn/internal/invariant"
	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

// Options tunes the solver. The zero value uses sensible defaults.
type Options struct {
	// MaxAllocations caps the number of enumerated T-allocations
	// (default 65536). The count is exponential in the number of
	// free-choice places; nets beyond the cap return ErrTooManyAllocations.
	MaxAllocations int
	// MaxRows caps the Farkas semiflow enumeration (default from
	// internal/invariant).
	MaxRows int
	// MaxCycleLength caps finite-complete-cycle simulation (default 1 << 20
	// firings) as a safety net.
	MaxCycleLength int
	// KeepDuplicateReductions disables T-reduction deduplication, keeping
	// one cycle per allocation even when reductions coincide. Used by the
	// ablation benchmarks. It also disables the isomorphism dedup, the
	// parent-semiflow sharing and the prune cut below, so the ablation
	// measures the paper's unoptimised sweep.
	KeepDuplicateReductions bool
	// KeepIsomorphicDuplicates disables the canonical-hash isomorphism
	// dedup of the schedulability sweep (Theorem 3.1 needs one verdict per
	// equivalence class; the dedup checks one representative per class and
	// fans its invariants out to the other members). The sweep's output is
	// identical either way — the switch exists for the equivalence tests
	// and ablation benchmarks.
	KeepIsomorphicDuplicates bool
	// NoPrune disables the prune-on-unschedulable cut in Solve's reduction
	// search, restoring the exhaustive lazy enumeration. internal/engine
	// sets it: the engine enumerates reductions separately for its report,
	// and its not-schedulable diagnoses must stay identical between that
	// path and a direct Solve.
	NoPrune bool
	// Workers bounds the parallel fan-out of the per-T-reduction work
	// (reduction construction in the ablation path and the schedulability
	// sweep). Values ≤ 1 run serially. Results are merged in enumeration
	// order, so the outcome — schedule or diagnostic — is identical for
	// every worker count.
	Workers int
	// Semiflows optionally memoises minimal-semiflow computations across
	// Solve/PartitionTasks calls, keyed by canonical structural hash.
	// Implementations must be safe for concurrent use (see
	// internal/engine). Nil disables memoisation.
	Semiflows invariant.Cache
	// Trace optionally records detail spans for the pipeline's inner
	// steps: "core/enumerate" (allocation/reduction enumeration),
	// "core/check" (one per class-representative schedulability check —
	// the unit of Workers fan-out), "core/dedup/sig" (restriction-exact
	// scan plus fingerprint bucketing), "core/dedup/wl" (one per
	// Weisfeiler–Lehman escalation of a multi-member bucket), "core/dedup"
	// (one span per fanned-out duplicate member), "core/cycle"
	// (finite-complete-cycle search) and the invariant package's spans,
	// plus the core/dedup/*, core/semiflow/* and core/prune/* counters
	// (see docs/TRACING.md). Nil disables collection; spans may end on any
	// worker goroutine.
	Trace *trace.Tracer
	// Ctx optionally cancels the pipeline's long loops — reduction
	// enumeration, the schedulability sweep, finite-complete-cycle
	// search, tradeoff exploration. When the context is done, the
	// pipeline returns an error wrapping context.Cause(Ctx) at the next
	// checkpoint (internal/engine uses this for per-job deadlines,
	// passing its typed ErrJobTimeout as the cause). Nil never cancels.
	Ctx context.Context
}

// cancelled returns nil while opt.Ctx is live and an error wrapping
// context.Cause once it is done. It is the single cancellation checkpoint
// of the pipeline, so every cancellation error is errors.Is-testable
// against the caller's cause.
func (o Options) cancelled() error {
	return ctxErr(o.Ctx)
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return fmt.Errorf("core: cancelled: %w", context.Cause(ctx))
	default:
		return nil
	}
}

func (o Options) maxAllocations() int {
	if o.MaxAllocations <= 0 {
		return 65536
	}
	return o.MaxAllocations
}

func (o Options) maxCycleLength() int {
	if o.MaxCycleLength <= 0 {
		return 1 << 20
	}
	return o.MaxCycleLength
}

func (o Options) workerCount() int {
	if o.Workers <= 1 {
		return 1
	}
	return o.Workers
}

// ErrTooManyAllocations is returned when the choice structure exceeds
// Options.MaxAllocations.
var ErrTooManyAllocations = errors.New("core: too many T-allocations")

// ErrBudgetExceeded is the typed cause for every structured step budget in
// the pipeline: cycle realisation past Options.MaxCycleLength, interpreter
// execution past its op budget (codegen.Interp.MaxOps), and robust
// simulation past its step budget all wrap it, so hostile or
// non-schedulable inputs terminate with errors.Is(err, ErrBudgetExceeded)
// instead of running away.
var ErrBudgetExceeded = errors.New("step budget exceeded")

// ErrNotFreeChoice wraps structural validation failures.
var ErrNotFreeChoice = petri.ErrNotFreeChoice

// NotSchedulableError reports why a net has no valid schedule: the first
// failing T-reduction and its diagnosis.
type NotSchedulableError struct {
	// Report is the failing reduction's schedulability report.
	Report *ReductionReport
}

func (e *NotSchedulableError) Error() string {
	return fmt.Sprintf("core: net is not quasi-statically schedulable: %s", e.Report.FailReason)
}

// Unwrap exposes the failing check's underlying error (the report's
// Cause), so budget trips and cancellations stay errors.Is-testable —
// errors.Is(err, ErrBudgetExceeded) holds for a cycle search that blew
// its firing cap even after the diagnosis is wrapped in this type.
func (e *NotSchedulableError) Unwrap() error { return e.Report.Cause }

// Cycle is one finite complete cycle of the valid schedule: a firing
// sequence over the original net that starts and ends at the initial
// marking and contains every transition of its T-reduction at least once.
type Cycle struct {
	// Sequence is the firing order, in original-net transition indices.
	Sequence []petri.Transition
	// Counts is the firing-count vector f(σ) over the original net.
	Counts []int
	// Reduction is the T-reduction this cycle statically schedules.
	Reduction *Reduction
}

// Schedule is a valid schedule (Definition 3.1/3.2): a complete set of
// finite complete cycles, one per distinct T-reduction, guaranteeing
// bounded-memory infinite execution for every resolution of the choices.
type Schedule struct {
	Net    *petri.Net
	Cycles []Cycle
	// Reports holds one schedulability report per distinct T-reduction, in
	// the same order as Cycles.
	Reports []*ReductionReport
	// AllocationCount is the number of T-allocations enumerated before
	// deduplication, saturating at math.MaxInt; AllocationCountSaturated
	// marks the saturated case so serialised reports never present the
	// ceiling as a real count.
	AllocationCount          int
	AllocationCountSaturated bool
}

// Solve checks quasi-static schedulability of (net, initial marking) and
// returns the valid schedule. A *NotSchedulableError is returned when some
// T-reduction is not statically schedulable (Theorem 3.1: this is exactly
// when no valid schedule exists).
func Solve(n *petri.Net, opt Options) (*Schedule, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if opt.KeepDuplicateReductions {
		// Ablation path: one reduction per allocation, duplicates kept,
		// every check from scratch.
		sp := opt.Trace.StartDetail("core/enumerate")
		allocs, err := EnumerateAllocations(n, opt.maxAllocations())
		if err != nil {
			return nil, err
		}
		reductions := make([]*Reduction, len(allocs))
		forEachIndex(len(allocs), opt.workerCount(), func(i int) {
			reductions[i] = Reduce(n, allocs[i])
		})
		sp.End()
		return solveReductions(n, reductions, opt, checkAids{})
	}
	// The parent's minimal T-semiflows are computed once per solve and
	// shared three ways: the prune cut below, the per-reduction restriction
	// (invariant.RestrictTInvariants) and the consistency checks of the
	// sweep. A failed computation (e.g. invariant.ErrTooComplex) disables
	// sharing rather than failing the solve — every consumer falls back to
	// its from-scratch path.
	parentTIs, err := invariant.TInvariants(n, invariant.Options{MaxRows: opt.MaxRows, Trace: opt.Trace})
	aids := checkAids{parentTIs: parentTIs, haveParent: err == nil}

	// Output-sensitive search: only distinct T-reductions are built,
	// without touching the exponential allocation product.
	sp := opt.Trace.StartDetail("core/enumerate")
	var reductions []*Reduction
	var prunes []*PrunedBranch
	if aids.haveParent && !opt.NoPrune {
		reductions, prunes, err = EnumerateDistinctReductionsPruned(opt.Ctx, n, opt.maxAllocations(), parentTIs)
	} else {
		reductions, err = EnumerateDistinctReductionsCtx(opt.Ctx, n, opt.maxAllocations())
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	if len(prunes) > 0 {
		opt.Trace.Add("core/prune/branches", int64(len(prunes)))
		// Verify the cut instead of trusting it: each pruned branch's
		// Witness is a genuine T-reduction, so a failing witness proves
		// the net unschedulable no matter whether the cut was exact.
		for _, pb := range prunes {
			csp := opt.Trace.StartDetail("core/check")
			rep := checkReduction(n, pb.Witness, opt, aids)
			csp.End()
			if cerr := opt.cancelled(); cerr != nil {
				return nil, cerr
			}
			if !rep.Schedulable {
				return nil, &NotSchedulableError{Report: rep}
			}
		}
		// Every witness passed: some completion gained semiflows the
		// parent cone does not restrict to (the inexact corner of
		// RestrictTInvariants), so the cut was unsound for this net.
		// Redo the enumeration without pruning.
		opt.Trace.Add("core/prune/fallback", 1)
		sp = opt.Trace.StartDetail("core/enumerate")
		reductions, err = EnumerateDistinctReductionsCtx(opt.Ctx, n, opt.maxAllocations())
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	return solveReductions(n, reductions, opt, aids)
}

// SolveReductions is the schedulability sweep of Solve over an
// already-enumerated reduction set. Callers that hold the reductions for
// other purposes (internal/engine enumerates them for its report) pass
// them here instead of paying a second enumeration inside Solve; the
// result is identical to Solve on the same net when the set is the one
// EnumerateDistinctReductions produces.
func SolveReductions(n *petri.Net, reductions []*Reduction, opt Options) (*Schedule, error) {
	aids := checkAids{}
	if !opt.KeepDuplicateReductions && len(reductions) > 0 {
		// Same parent-semiflow sharing as Solve (restriction beats a
		// from-scratch Farkas run per reduction); errors only disable it.
		if parentTIs, err := invariant.TInvariants(n, invariant.Options{MaxRows: opt.MaxRows, Trace: opt.Trace}); err == nil {
			aids = checkAids{parentTIs: parentTIs, haveParent: true}
		}
	}
	return solveReductions(n, reductions, opt, aids)
}

// DedupClasses partitions an enumerated reduction set into isomorphism
// classes exactly as the sweep inside Solve does — restriction-exact
// reductions become their own representatives, the rest are bucketed by
// structural fingerprint and only multi-member buckets pay a canonical
// (Weisfeiler–Lehman) hash. classOf[i] is the representative index of
// reductions[i]; a nil slice means every reduction is its own class.
// Exported for benchmarks and tooling that measure the dedup stage in
// isolation.
func DedupClasses(n *petri.Net, reductions []*Reduction, opt Options) ([]int, error) {
	aids := checkAids{}
	if parentTIs, err := invariant.TInvariants(n, invariant.Options{MaxRows: opt.MaxRows, Trace: opt.Trace}); err == nil {
		aids = checkAids{parentTIs: parentTIs, haveParent: true}
	}
	return dedupClasses(reductions, opt, aids)
}

func solveReductions(n *petri.Net, reductions []*Reduction, opt Options, aids checkAids) (*Schedule, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	count, saturated := CountAllocationsSat(n)
	sched := &Schedule{Net: n, AllocationCount: count, AllocationCountSaturated: saturated}
	// Schedulability sweep: each reduction's check is independent, so they
	// fan out across workers; merging in enumeration order keeps the
	// result — including which failing reduction is diagnosed — identical
	// to the serial sweep. Every reduction is checked even when an early
	// one fails, so the phase trace (core/check count) is a function of
	// the net alone, not of the worker count or of goroutine timing.
	//
	// With the isomorphism dedup (classOf non-nil), the sweep runs in two
	// deterministic stages: full checks for the class representatives,
	// then per-member fan-outs that reuse each representative's minimal
	// semiflows through the canonical isomorphism (Theorem 3.1: one
	// verdict per equivalence class suffices; the member reports are still
	// materialised per reduction, byte-identical to from-scratch checks,
	// so the schedule keeps its shape).
	reports := make([]*ReductionReport, len(reductions))
	classOf, err := dedupClasses(reductions, opt, aids)
	if err != nil {
		return nil, err
	}
	check := func(i int) {
		sp := opt.Trace.StartDetail("core/check")
		reports[i] = checkReduction(n, reductions[i], opt, aids)
		sp.End()
	}
	if classOf == nil {
		forEachIndex(len(reductions), opt.workerCount(), check)
	} else {
		var reps, members []int
		for i, r := range classOf {
			if r == i {
				reps = append(reps, i)
			} else {
				members = append(members, i)
			}
		}
		forEachIndex(len(reps), opt.workerCount(), func(k int) { check(reps[k]) })
		forEachIndex(len(members), opt.workerCount(), func(k int) {
			i := members[k]
			sp := opt.Trace.StartDetail("core/dedup")
			reports[i] = fanOutReport(n, reductions[i], reductions[classOf[i]], reports[classOf[i]], opt)
			sp.End()
		})
	}
	// A cancelled sweep leaves stub reports behind; surface the
	// cancellation instead of misreading a stub as "not schedulable".
	if err := opt.cancelled(); err != nil {
		return nil, err
	}
	for i, report := range reports {
		if !report.Schedulable {
			return nil, &NotSchedulableError{Report: report}
		}
		sched.Cycles = append(sched.Cycles, Cycle{
			Sequence:  report.Cycle,
			Counts:    n.FiringCount(report.Cycle),
			Reduction: reductions[i],
		})
		sched.Reports = append(sched.Reports, report)
	}
	return sched, nil
}

// dedupClasses groups the reductions into verdict-sharing classes and
// returns classOf with classOf[i] the index of reduction i's class
// representative (the class's first member in enumeration order). nil means
// the dedup is off or pointless (every reduction its own representative).
//
// The grouping escalates in three stages, cheapest first:
//
//  1. Restriction-exact reductions (every place adjacent to a kept
//     transition is kept) become their own representatives with no hashing
//     at all: their check derives its invariants by exact parent-semiflow
//     restriction, so there is no Farkas run for the isomorphism machinery
//     to save. Requires aids.haveParent.
//  2. The rest are bucketed by the O(arcs) round-0 fingerprint
//     (petri.InducedFingerprint, "core/dedup/sig" span). Equal canonical
//     hashes imply equal fingerprints, so a singleton bucket is provably
//     alone in its isomorphism class and becomes its own representative
//     with no Weisfeiler–Lehman run at all.
//  3. Only multi-member buckets escalate to the full CanonicalForm
//     refinement (one "core/dedup/wl" span per hash); classes still form
//     only on equal full hashes, which guarantee isomorphic subnets — the
//     hash covers the complete relabelled structure — so a class shares one
//     schedulability verdict by Theorem 3.1.
//
// The error return is a cancellation: the stage boundaries and the WL
// batch check opt.cancelled(), so a huge corpus net cannot make the dedup
// stage uncancellable.
func dedupClasses(reductions []*Reduction, opt Options, aids checkAids) ([]int, error) {
	if opt.KeepDuplicateReductions || opt.KeepIsomorphicDuplicates || len(reductions) < 2 {
		return nil, nil
	}
	classOf := make([]int, len(reductions))
	for i := range classOf {
		classOf[i] = i
	}
	sp := opt.Trace.StartDetail("core/dedup/sig")
	var pool []int
	exact := 0
	for i, r := range reductions {
		if aids.haveParent && r.restrictionExact() {
			exact++
			continue
		}
		pool = append(pool, i)
	}
	buckets := make(map[uint64][]int, len(pool))
	for _, i := range pool {
		fp := reductions[i].Fingerprint()
		buckets[fp] = append(buckets[fp], i)
	}
	sp.End()
	if err := opt.cancelled(); err != nil {
		return nil, err
	}
	singles := 0
	var multi []int
	for _, b := range buckets {
		if len(b) == 1 {
			singles++
		} else {
			multi = append(multi, b...)
		}
	}
	// Enumeration order: representatives must be each class's first member
	// no matter how the bucket map iterated.
	sort.Ints(multi)
	hashes := make([]string, len(reductions))
	forEachIndex(len(multi), opt.workerCount(), func(k int) {
		if opt.cancelled() != nil {
			return
		}
		wsp := opt.Trace.StartDetail("core/dedup/wl")
		hashes[multi[k]] = reductions[multi[k]].Subnet().Net.CanonicalHash()
		wsp.End()
	})
	if err := opt.cancelled(); err != nil {
		return nil, err
	}
	rep := make(map[string]int, len(multi))
	classes := exact + singles
	for _, i := range multi {
		if r, ok := rep[hashes[i]]; ok {
			classOf[i] = r
		} else {
			rep[hashes[i]] = i
			classes++
		}
	}
	opt.Trace.Add("core/dedup/exact", int64(exact))
	opt.Trace.Add("core/dedup/singletons", int64(singles))
	opt.Trace.Add("core/dedup/classes", int64(classes))
	opt.Trace.Add("core/dedup/members", int64(len(reductions)-classes))
	if classes == len(reductions) {
		return nil, nil
	}
	return classOf, nil
}

// fanOutReport re-derives a duplicate reduction's report from its class
// representative. The minimal-semiflow *set* is the only part of the check
// that is isomorphism-equivariant: the greedy covering combination and the
// index-order cycle search are not, so they are recomputed in the member's
// own index space — which is exactly what keeps the fanned-out report
// byte-identical to a from-scratch check while still skipping the Farkas
// run (the expensive part).
func fanOutReport(n *petri.Net, member, rep *Reduction, repReport *ReductionReport, opt Options) *ReductionReport {
	if repReport.Invariants == nil {
		// The representative never produced invariants (cancellation stub
		// or a failed computation): nothing to share, check from scratch —
		// deterministic, so the member reproduces the same diagnosis.
		return checkReduction(n, member, opt, checkAids{})
	}
	m := petri.MapTransitionsByCanonical(rep.Subnet().Net, member.Subnet().Net)
	tis := make([]invariant.TInvariant, len(repReport.Invariants))
	for k, ti := range repReport.Invariants {
		counts := make([]int, len(ti.Counts))
		for t, c := range ti.Counts {
			counts[m[t]] = c
		}
		tis[k] = invariant.TInvariant{Counts: counts}
	}
	invariant.SortTInvariants(tis)
	return checkReduction(n, member, opt, checkAids{pre: tis, havePre: true})
}

// forEachIndex runs fn(0..n-1), fanning out across up to workers
// goroutines. Each index is processed exactly once; fn must only write to
// its own index's slots for the sweep to stay deterministic.
//
// A panic in fn is re-raised on the calling goroutine (the first one wins
// when several workers panic), never on a spawned worker: a raw goroutine
// panic would kill the whole process and bypass any recovery the caller —
// in particular the engine's per-job panic quarantine — has installed.
func forEachIndex(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					// Keep draining so the feeder below never blocks on a
					// channel nobody reads.
					for range jobs {
					}
				}
			}()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Schedulable is a convenience wrapper: it reports whether the net has a
// valid schedule, swallowing the diagnostic.
func Schedulable(n *petri.Net, opt Options) bool {
	_, err := Solve(n, opt)
	return err == nil
}

// BufferBounds replays every cycle of the schedule and reports, per place,
// the maximum number of tokens observed: the statically allocatable buffer
// sizes for a single-cycle execution. (Interleavings of different cycles
// cannot exceed the sum of per-cycle bounds on shared places; for the
// common case of choice-private places the per-cycle maximum is exact.)
func (s *Schedule) BufferBounds() ([]int, error) {
	bounds := make([]int, s.Net.NumPlaces())
	init := s.Net.InitialMarking()
	for i := range bounds {
		bounds[i] = init[i]
	}
	for _, c := range s.Cycles {
		m := s.Net.InitialMarking()
		for _, t := range c.Sequence {
			if err := s.Net.Fire(m, t); err != nil {
				return nil, fmt.Errorf("core: replaying cycle: %w", err)
			}
			for p, k := range m {
				if k > bounds[p] {
					bounds[p] = k
				}
			}
		}
		if !m.Equal(init) {
			return nil, fmt.Errorf("core: cycle does not return to the initial marking: %v", m)
		}
	}
	return bounds, nil
}

// CycleStrings renders every cycle as transition names for reports and
// golden tests.
func (s *Schedule) CycleStrings() [][]string {
	out := make([][]string, len(s.Cycles))
	for i, c := range s.Cycles {
		out[i] = s.Net.SequenceNames(c.Sequence)
	}
	return out
}

// ScheduleStats summarises a valid schedule for reports.
type ScheduleStats struct {
	// Cycles is the number of finite complete cycles (distinct
	// T-reductions).
	Cycles int
	// MaxCycleLen and TotalFirings describe the firing sequences.
	MaxCycleLen, TotalFirings int
	// TotalBufferBound is the sum of per-place buffer bounds; MaxBuffer
	// the largest single place bound.
	TotalBufferBound, MaxBuffer int
}

// Stats computes the schedule's summary metrics.
func (s *Schedule) Stats() (ScheduleStats, error) {
	st := ScheduleStats{Cycles: len(s.Cycles)}
	for _, c := range s.Cycles {
		if len(c.Sequence) > st.MaxCycleLen {
			st.MaxCycleLen = len(c.Sequence)
		}
		st.TotalFirings += len(c.Sequence)
	}
	bounds, err := s.BufferBounds()
	if err != nil {
		return st, err
	}
	for _, b := range bounds {
		st.TotalBufferBound += b
		if b > st.MaxBuffer {
			st.MaxBuffer = b
		}
	}
	return st, nil
}

// Package core implements the paper's primary contribution: quasi-static
// scheduling (QSS) of Free-Choice Petri Nets (Sgroi, Lavagno, Watanabe,
// Sangiovanni-Vincentelli, DAC 1999).
//
// The pipeline follows Section 3 of the paper:
//
//  1. Enumerate the T-allocations of the net — one chosen successor per
//     free-choice place (allocation.go).
//  2. For each allocation, compute the T-reduction with the modified Hack
//     reduction algorithm; the result is a conflict-free subnet
//     (reduction.go). Reductions that coincide on their transition sets are
//     deduplicated.
//  3. Check that every T-reduction is statically schedulable
//     (Definition 3.5): consistent, covering every surviving source
//     transition with a T-invariant, and able to complete a deadlock-free
//     finite cycle returning to the initial marking (schedulability.go,
//     cycle.go).
//  4. If every reduction is schedulable, assemble the valid schedule: one
//     finite complete cycle per distinct T-reduction (Theorem 3.1).
//  5. Partition the transitions into tasks, one per group of
//     dependent-rate source transitions (tasks.go).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"fcpn/internal/invariant"
	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

// Options tunes the solver. The zero value uses sensible defaults.
type Options struct {
	// MaxAllocations caps the number of enumerated T-allocations
	// (default 65536). The count is exponential in the number of
	// free-choice places; nets beyond the cap return ErrTooManyAllocations.
	MaxAllocations int
	// MaxRows caps the Farkas semiflow enumeration (default from
	// internal/invariant).
	MaxRows int
	// MaxCycleLength caps finite-complete-cycle simulation (default 1 << 20
	// firings) as a safety net.
	MaxCycleLength int
	// KeepDuplicateReductions disables T-reduction deduplication, keeping
	// one cycle per allocation even when reductions coincide. Used by the
	// ablation benchmarks.
	KeepDuplicateReductions bool
	// Workers bounds the parallel fan-out of the per-T-reduction work
	// (reduction construction in the ablation path and the schedulability
	// sweep). Values ≤ 1 run serially. Results are merged in enumeration
	// order, so the outcome — schedule or diagnostic — is identical for
	// every worker count.
	Workers int
	// Semiflows optionally memoises minimal-semiflow computations across
	// Solve/PartitionTasks calls, keyed by canonical structural hash.
	// Implementations must be safe for concurrent use (see
	// internal/engine). Nil disables memoisation.
	Semiflows invariant.Cache
	// Trace optionally records detail spans for the pipeline's inner
	// steps: "core/enumerate" (allocation/reduction enumeration),
	// "core/check" (one per T-reduction schedulability check — the unit
	// of Workers fan-out), "core/cycle" (finite-complete-cycle search)
	// and the invariant package's spans. Nil disables collection; spans
	// may end on any worker goroutine.
	Trace *trace.Tracer
	// Ctx optionally cancels the pipeline's long loops — reduction
	// enumeration, the schedulability sweep, finite-complete-cycle
	// search, tradeoff exploration. When the context is done, the
	// pipeline returns an error wrapping context.Cause(Ctx) at the next
	// checkpoint (internal/engine uses this for per-job deadlines,
	// passing its typed ErrJobTimeout as the cause). Nil never cancels.
	Ctx context.Context
}

// cancelled returns nil while opt.Ctx is live and an error wrapping
// context.Cause once it is done. It is the single cancellation checkpoint
// of the pipeline, so every cancellation error is errors.Is-testable
// against the caller's cause.
func (o Options) cancelled() error {
	return ctxErr(o.Ctx)
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return fmt.Errorf("core: cancelled: %w", context.Cause(ctx))
	default:
		return nil
	}
}

func (o Options) maxAllocations() int {
	if o.MaxAllocations <= 0 {
		return 65536
	}
	return o.MaxAllocations
}

func (o Options) maxCycleLength() int {
	if o.MaxCycleLength <= 0 {
		return 1 << 20
	}
	return o.MaxCycleLength
}

func (o Options) workerCount() int {
	if o.Workers <= 1 {
		return 1
	}
	return o.Workers
}

// ErrTooManyAllocations is returned when the choice structure exceeds
// Options.MaxAllocations.
var ErrTooManyAllocations = errors.New("core: too many T-allocations")

// ErrBudgetExceeded is the typed cause for every structured step budget in
// the pipeline: cycle realisation past Options.MaxCycleLength, interpreter
// execution past its op budget (codegen.Interp.MaxOps), and robust
// simulation past its step budget all wrap it, so hostile or
// non-schedulable inputs terminate with errors.Is(err, ErrBudgetExceeded)
// instead of running away.
var ErrBudgetExceeded = errors.New("step budget exceeded")

// ErrNotFreeChoice wraps structural validation failures.
var ErrNotFreeChoice = petri.ErrNotFreeChoice

// NotSchedulableError reports why a net has no valid schedule: the first
// failing T-reduction and its diagnosis.
type NotSchedulableError struct {
	// Report is the failing reduction's schedulability report.
	Report *ReductionReport
}

func (e *NotSchedulableError) Error() string {
	return fmt.Sprintf("core: net is not quasi-statically schedulable: %s", e.Report.FailReason)
}

// Unwrap exposes the failing check's underlying error (the report's
// Cause), so budget trips and cancellations stay errors.Is-testable —
// errors.Is(err, ErrBudgetExceeded) holds for a cycle search that blew
// its firing cap even after the diagnosis is wrapped in this type.
func (e *NotSchedulableError) Unwrap() error { return e.Report.Cause }

// Cycle is one finite complete cycle of the valid schedule: a firing
// sequence over the original net that starts and ends at the initial
// marking and contains every transition of its T-reduction at least once.
type Cycle struct {
	// Sequence is the firing order, in original-net transition indices.
	Sequence []petri.Transition
	// Counts is the firing-count vector f(σ) over the original net.
	Counts []int
	// Reduction is the T-reduction this cycle statically schedules.
	Reduction *Reduction
}

// Schedule is a valid schedule (Definition 3.1/3.2): a complete set of
// finite complete cycles, one per distinct T-reduction, guaranteeing
// bounded-memory infinite execution for every resolution of the choices.
type Schedule struct {
	Net    *petri.Net
	Cycles []Cycle
	// Reports holds one schedulability report per distinct T-reduction, in
	// the same order as Cycles.
	Reports []*ReductionReport
	// AllocationCount is the number of T-allocations enumerated before
	// deduplication.
	AllocationCount int
}

// Solve checks quasi-static schedulability of (net, initial marking) and
// returns the valid schedule. A *NotSchedulableError is returned when some
// T-reduction is not statically schedulable (Theorem 3.1: this is exactly
// when no valid schedule exists).
func Solve(n *petri.Net, opt Options) (*Schedule, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	sp := opt.Trace.StartDetail("core/enumerate")
	var reductions []*Reduction
	if opt.KeepDuplicateReductions {
		// Ablation path: one reduction per allocation, duplicates kept.
		allocs, err := EnumerateAllocations(n, opt.maxAllocations())
		if err != nil {
			return nil, err
		}
		reductions = make([]*Reduction, len(allocs))
		forEachIndex(len(allocs), opt.workerCount(), func(i int) {
			reductions[i] = Reduce(n, allocs[i])
		})
	} else {
		// Output-sensitive search: only distinct T-reductions are built,
		// without touching the exponential allocation product.
		var err error
		reductions, err = EnumerateDistinctReductionsCtx(opt.Ctx, n, opt.maxAllocations())
		if err != nil {
			return nil, err
		}
	}
	sp.End()
	return SolveReductions(n, reductions, opt)
}

// SolveReductions is the schedulability sweep of Solve over an
// already-enumerated reduction set. Callers that hold the reductions for
// other purposes (internal/engine enumerates them for its report) pass
// them here instead of paying a second enumeration inside Solve; the
// result is identical to Solve on the same net when the set is the one
// EnumerateDistinctReductions produces.
func SolveReductions(n *petri.Net, reductions []*Reduction, opt Options) (*Schedule, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	sched := &Schedule{Net: n, AllocationCount: CountAllocations(n)}
	// Schedulability sweep: each reduction's check is independent, so they
	// fan out across workers; merging in enumeration order keeps the
	// result — including which failing reduction is diagnosed — identical
	// to the serial sweep. Every reduction is checked even when an early
	// one fails, so the phase trace (core/check count) is a function of
	// the net alone, not of the worker count or of goroutine timing.
	reports := make([]*ReductionReport, len(reductions))
	check := func(i int) {
		sp := opt.Trace.StartDetail("core/check")
		reports[i] = CheckReduction(n, reductions[i], opt)
		sp.End()
	}
	forEachIndex(len(reductions), opt.workerCount(), check)
	// A cancelled sweep leaves stub reports behind; surface the
	// cancellation instead of misreading a stub as "not schedulable".
	if err := opt.cancelled(); err != nil {
		return nil, err
	}
	for i, report := range reports {
		if !report.Schedulable {
			return nil, &NotSchedulableError{Report: report}
		}
		sched.Cycles = append(sched.Cycles, Cycle{
			Sequence:  report.Cycle,
			Counts:    n.FiringCount(report.Cycle),
			Reduction: reductions[i],
		})
		sched.Reports = append(sched.Reports, report)
	}
	return sched, nil
}

// forEachIndex runs fn(0..n-1), fanning out across up to workers
// goroutines. Each index is processed exactly once; fn must only write to
// its own index's slots for the sweep to stay deterministic.
//
// A panic in fn is re-raised on the calling goroutine (the first one wins
// when several workers panic), never on a spawned worker: a raw goroutine
// panic would kill the whole process and bypass any recovery the caller —
// in particular the engine's per-job panic quarantine — has installed.
func forEachIndex(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					// Keep draining so the feeder below never blocks on a
					// channel nobody reads.
					for range jobs {
					}
				}
			}()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Schedulable is a convenience wrapper: it reports whether the net has a
// valid schedule, swallowing the diagnostic.
func Schedulable(n *petri.Net, opt Options) bool {
	_, err := Solve(n, opt)
	return err == nil
}

// BufferBounds replays every cycle of the schedule and reports, per place,
// the maximum number of tokens observed: the statically allocatable buffer
// sizes for a single-cycle execution. (Interleavings of different cycles
// cannot exceed the sum of per-cycle bounds on shared places; for the
// common case of choice-private places the per-cycle maximum is exact.)
func (s *Schedule) BufferBounds() ([]int, error) {
	bounds := make([]int, s.Net.NumPlaces())
	init := s.Net.InitialMarking()
	for i := range bounds {
		bounds[i] = init[i]
	}
	for _, c := range s.Cycles {
		m := s.Net.InitialMarking()
		for _, t := range c.Sequence {
			if err := s.Net.Fire(m, t); err != nil {
				return nil, fmt.Errorf("core: replaying cycle: %w", err)
			}
			for p, k := range m {
				if k > bounds[p] {
					bounds[p] = k
				}
			}
		}
		if !m.Equal(init) {
			return nil, fmt.Errorf("core: cycle does not return to the initial marking: %v", m)
		}
	}
	return bounds, nil
}

// CycleStrings renders every cycle as transition names for reports and
// golden tests.
func (s *Schedule) CycleStrings() [][]string {
	out := make([][]string, len(s.Cycles))
	for i, c := range s.Cycles {
		out[i] = s.Net.SequenceNames(c.Sequence)
	}
	return out
}

// ScheduleStats summarises a valid schedule for reports.
type ScheduleStats struct {
	// Cycles is the number of finite complete cycles (distinct
	// T-reductions).
	Cycles int
	// MaxCycleLen and TotalFirings describe the firing sequences.
	MaxCycleLen, TotalFirings int
	// TotalBufferBound is the sum of per-place buffer bounds; MaxBuffer
	// the largest single place bound.
	TotalBufferBound, MaxBuffer int
}

// Stats computes the schedule's summary metrics.
func (s *Schedule) Stats() (ScheduleStats, error) {
	st := ScheduleStats{Cycles: len(s.Cycles)}
	for _, c := range s.Cycles {
		if len(c.Sequence) > st.MaxCycleLen {
			st.MaxCycleLen = len(c.Sequence)
		}
		st.TotalFirings += len(c.Sequence)
	}
	bounds, err := s.BufferBounds()
	if err != nil {
		return st, err
	}
	for _, b := range bounds {
		st.TotalBufferBound += b
		if b > st.MaxBuffer {
			st.MaxBuffer = b
		}
	}
	return st, nil
}

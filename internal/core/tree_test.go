package core

import (
	"strings"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

func TestDecisionTreeFigure3a(t *testing.T) {
	s := mustSolve(t, figures.Figure3a())
	tree := s.DecisionTree()
	// Common prefix t1, then the p1 choice with two leaves.
	if got := s.Net.SequenceNames(tree.Prefix); len(got) != 1 || got[0] != "t1" {
		t.Fatalf("prefix = %v", got)
	}
	if tree.Choice < 0 || s.Net.PlaceName(tree.Choice) != "p1" {
		t.Fatalf("choice = %v", tree.Choice)
	}
	if len(tree.Children) != 2 || tree.Leaves() != 2 {
		t.Fatalf("children = %d leaves = %d", len(tree.Children), tree.Leaves())
	}
	text := s.FormatTree()
	for _, frag := range []string{"t1\n", "choice p1:", "t2 t4", "t3 t5"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("FormatTree missing %q:\n%s", frag, text)
		}
	}
}

func TestDecisionTreeFigure4(t *testing.T) {
	s := mustSolve(t, figures.Figure4())
	tree := s.DecisionTree()
	// Cycles (t1 t2 t1 t2 t4) and (t1 t3 t5 t5): prefix t1, split on p1.
	if tree.Leaves() != 2 {
		t.Fatalf("leaves = %d", tree.Leaves())
	}
	if s.Net.PlaceName(tree.Choice) != "p1" {
		t.Fatalf("choice = %v", tree.Choice)
	}
}

func TestDecisionTreeLeavesMatchCycles(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		n := netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig())
		s, err := Solve(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tree := s.DecisionTree()
		// Each cycle contributes exactly one leaf unless two cycles share
		// a full sequence prefix relationship (impossible: cycles are
		// distinct complete sequences returning to μ0 and deduped).
		if got := tree.Leaves(); got > len(s.Cycles) || got < 1 {
			t.Fatalf("seed %d: leaves = %d for %d cycles", seed, got, len(s.Cycles))
		}
		// Replaying every root-to-leaf path must be a valid cycle.
		var walk func(node *DecisionNode, prefix []petri.Transition)
		walk = func(node *DecisionNode, prefix []petri.Transition) {
			seq := append(append([]petri.Transition{}, prefix...), node.Prefix...)
			if len(node.Children) == 0 {
				if err := VerifyCompleteCycle(n, seq); err != nil {
					t.Fatalf("seed %d: leaf path invalid: %v", seed, err)
				}
				return
			}
			for _, c := range node.Children {
				walk(c.Node, seq)
			}
		}
		walk(tree, nil)
	}
}

func TestDecisionTreeSingleCycle(t *testing.T) {
	s := mustSolve(t, figures.Figure2())
	tree := s.DecisionTree()
	if len(tree.Children) != 0 || tree.Leaves() != 1 {
		t.Fatalf("marked graph tree must be a single leaf: %+v", tree)
	}
	if len(tree.Prefix) != 7 {
		t.Fatalf("prefix length = %d, want 7 firings", len(tree.Prefix))
	}
}

func TestTreeDOT(t *testing.T) {
	s := mustSolve(t, figures.Figure3a())
	dot := s.TreeDOT()
	for _, frag := range []string{"digraph", "shape=diamond", `label="p1"`, "⟳"} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("TreeDOT missing %q:\n%s", frag, dot)
		}
	}
}

func TestScheduleStats(t *testing.T) {
	s := mustSolve(t, figures.Figure4())
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 2 {
		t.Fatalf("cycles = %d", st.Cycles)
	}
	// Cycles: 5 and 4 firings.
	if st.MaxCycleLen != 5 || st.TotalFirings != 9 {
		t.Fatalf("lens = %d/%d", st.MaxCycleLen, st.TotalFirings)
	}
	// Bounds: p1:1 p2:2 p3:2.
	if st.TotalBufferBound != 5 || st.MaxBuffer != 2 {
		t.Fatalf("bounds = %d/%d", st.TotalBufferBound, st.MaxBuffer)
	}
}

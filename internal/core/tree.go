package core

import (
	"fmt"
	"sort"
	"strings"

	"fcpn/internal/petri"
)

// DecisionNode is one node of the schedule's decision-tree view: the
// maximal common firing prefix of the cycles below it, followed by either
// nothing (a leaf: one cycle ends here) or a branch per resolution of the
// next differing choice.
type DecisionNode struct {
	// Prefix is the firing run shared by every cycle under this node.
	Prefix []petri.Transition
	// Choice is the place whose resolution splits the children; -1 for a
	// leaf.
	Choice petri.Place
	// Children maps each resolving transition to the subtree that follows
	// it, ordered by transition index.
	Children []DecisionChild
}

// DecisionChild is one branch of a DecisionNode.
type DecisionChild struct {
	Via  petri.Transition
	Node *DecisionNode
}

// DecisionTree folds the valid schedule's cycles into a prefix tree: the
// quasi-static schedule as the paper describes it operationally — run the
// common prefix at compile-time-fixed order, test the choice, continue in
// the selected branch. Cycles whose next transitions differ without being
// alternatives of one free choice (possible when distinct reductions
// diverge in firing order before their distinguishing choice) are split
// on their first differing position using that transition's cluster.
func (s *Schedule) DecisionTree() *DecisionNode {
	seqs := make([][]petri.Transition, len(s.Cycles))
	for i, c := range s.Cycles {
		seqs[i] = c.Sequence
	}
	return s.buildTree(seqs)
}

func (s *Schedule) buildTree(seqs [][]petri.Transition) *DecisionNode {
	node := &DecisionNode{Choice: -1}
	if len(seqs) == 0 {
		return node
	}
	depth := 0
	for {
		// All sequences exhausted together?
		if depth >= len(seqs[0]) {
			allDone := true
			for _, q := range seqs {
				if depth < len(q) {
					allDone = false
					break
				}
			}
			if allDone {
				node.Prefix = append(node.Prefix, seqs[0][:depth]...)
				return node
			}
		}
		// Do all sequences agree at this depth?
		agree := true
		var first petri.Transition = -1
		for _, q := range seqs {
			if depth >= len(q) {
				agree = false
				break
			}
			if first == -1 {
				first = q[depth]
			} else if q[depth] != first {
				agree = false
				break
			}
		}
		if agree && len(seqs) > 0 {
			depth++
			continue
		}
		// Split: group by the transition at this depth (sequences that
		// ended contribute a leaf with empty remainder).
		node.Prefix = append(node.Prefix, seqs[0][:depth]...)
		groups := map[petri.Transition][][]petri.Transition{}
		var ended [][]petri.Transition
		for _, q := range seqs {
			if depth >= len(q) {
				ended = append(ended, nil)
				continue
			}
			groups[q[depth]] = append(groups[q[depth]], q[depth:])
		}
		// The splitting choice place: the shared input place of the
		// divergent transitions (they are free-choice alternatives when
		// the schedule is well-formed).
		var vias []petri.Transition
		for via := range groups {
			vias = append(vias, via)
		}
		sort.Slice(vias, func(i, j int) bool { return vias[i] < vias[j] })
		if len(vias) > 0 {
			if pre := s.Net.Pre(vias[0]); len(pre) == 1 {
				node.Choice = pre[0].Place
			}
		}
		for _, via := range vias {
			sub := groups[via]
			// Strip the branching transition into the child's prefix.
			trimmed := make([][]petri.Transition, len(sub))
			for i, q := range sub {
				trimmed[i] = q[1:]
			}
			child := s.buildTree(trimmed)
			child.Prefix = append([]petri.Transition{via}, child.Prefix...)
			node.Children = append(node.Children, DecisionChild{Via: via, Node: child})
		}
		_ = ended // cycles ending at the split point need no branch
		return node
	}
}

// FormatTree renders the decision tree with indentation, transition names
// and choice annotations.
func (s *Schedule) FormatTree() string {
	var b strings.Builder
	var walk func(n *DecisionNode, depth int)
	walk = func(n *DecisionNode, depth int) {
		ind := strings.Repeat("  ", depth)
		if len(n.Prefix) > 0 {
			fmt.Fprintf(&b, "%s%s\n", ind, strings.Join(s.Net.SequenceNames(n.Prefix), " "))
		}
		if len(n.Children) == 0 {
			return
		}
		name := "?"
		if n.Choice >= 0 {
			name = s.Net.PlaceName(n.Choice)
		}
		fmt.Fprintf(&b, "%schoice %s:\n", ind, name)
		for _, c := range n.Children {
			walk(c.Node, depth+1)
		}
	}
	walk(s.DecisionTree(), 0)
	return b.String()
}

// Leaves counts the tree's leaf nodes (= number of distinct cycle endings).
func (n *DecisionNode) Leaves() int {
	if len(n.Children) == 0 {
		return 1
	}
	sum := 0
	for _, c := range n.Children {
		sum += c.Node.Leaves()
	}
	return sum
}

// TreeDOT renders the decision tree in Graphviz syntax: prefix runs as
// boxes, choices as diamonds, one edge per resolution.
func (s *Schedule) TreeDOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n", s.Net.Name()+"_schedule")
	id := 0
	var emit func(n *DecisionNode) int
	emit = func(n *DecisionNode) int {
		my := id
		id++
		label := strings.Join(s.Net.SequenceNames(n.Prefix), " ")
		if label == "" {
			label = "·"
		}
		if len(n.Children) == 0 {
			fmt.Fprintf(&b, "  n%d [shape=box, label=%q];\n", my, label+" ⟳")
			return my
		}
		fmt.Fprintf(&b, "  n%d [shape=box, label=%q];\n", my, label)
		choiceName := "?"
		if n.Choice >= 0 {
			choiceName = s.Net.PlaceName(n.Choice)
		}
		d := id
		id++
		fmt.Fprintf(&b, "  n%d [shape=diamond, label=%q];\n", d, choiceName)
		fmt.Fprintf(&b, "  n%d -> n%d;\n", my, d)
		for _, c := range n.Children {
			child := emit(c.Node)
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", d, child, s.Net.TransitionName(c.Via))
		}
		return my
	}
	emit(s.DecisionTree())
	b.WriteString("}\n")
	return b.String()
}

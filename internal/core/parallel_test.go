package core

import (
	"encoding/json"
	"runtime"
	"sync"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

// syncCache is a goroutine-safe semiflow cache for tests.
type syncCache struct {
	mu sync.Mutex
	m  map[string][][]int
}

func newSyncCache() *syncCache { return &syncCache{m: map[string][][]int{}} }

func (c *syncCache) GetSemiflows(key string) ([][]int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows, ok := c.m[key]
	return rows, ok
}

func (c *syncCache) PutSemiflows(key string, rows [][]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = rows
}

// solveOutcome captures everything observable about a Solve call in a
// comparable form: the exported schedule (or the diagnostic) plus the
// buffer bounds.
func solveOutcome(t *testing.T, n *petri.Net, opt Options) string {
	t.Helper()
	s, err := Solve(n, opt)
	if err != nil {
		return "err: " + err.Error()
	}
	ex, jerr := json.Marshal(s.Export())
	if jerr != nil {
		t.Fatal(jerr)
	}
	bounds, berr := s.BufferBounds()
	if berr != nil {
		t.Fatal(berr)
	}
	b, jerr := json.Marshal(bounds)
	if jerr != nil {
		t.Fatal(jerr)
	}
	return string(ex) + "|" + string(b)
}

// TestSolveParallelDeterminism checks the acceptance criterion that the
// schedulability sweep is byte-identical across worker counts and across
// cold/cached runs, on every figure net and a netgen corpus.
func TestSolveParallelDeterminism(t *testing.T) {
	var nets []*petri.Net
	for _, n := range figures.All() {
		nets = append(nets, n)
	}
	corpus := 50
	if testing.Short() {
		corpus = 10
	}
	for seed := uint64(0); seed < uint64(corpus); seed++ {
		nets = append(nets, netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig()))
	}
	cache := newSyncCache()
	for i, n := range nets {
		serial := solveOutcome(t, n, Options{})
		for _, opt := range []Options{
			{Workers: runtime.NumCPU()},
			{Workers: 4, Semiflows: cache}, // cold cache
			{Workers: 4, Semiflows: cache}, // warm cache
			{Workers: 1, Semiflows: cache}, // warm, serial
		} {
			if got := solveOutcome(t, n, opt); got != serial {
				t.Fatalf("net %q: outcome differs for %+v:\n%s\nvs\n%s", n.Name(), opt, got, serial)
			}
		}
		// The duplicate-keeping ablation path fans out over allocations;
		// spot-check it on a few nets (it is quadratically more work).
		if i%17 == 0 && CountAllocations(n) <= 64 {
			dupSerial := solveOutcome(t, n, Options{KeepDuplicateReductions: true})
			dupPar := solveOutcome(t, n, Options{KeepDuplicateReductions: true, Workers: 4})
			if dupSerial != dupPar {
				t.Fatalf("net %q: ablation outcome differs across worker counts", n.Name())
			}
		}
	}
}

// TestPartitionTasksCached checks the cached task partition matches the
// uncached one.
func TestPartitionTasksCached(t *testing.T) {
	n := figures.Figure5()
	cold, err := PartitionTasks(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := newSyncCache()
	for i := 0; i < 2; i++ {
		got, err := PartitionTasks(n, Options{Semiflows: cache})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Tasks) != len(cold.Tasks) {
			t.Fatalf("task count changed: %d vs %d", len(got.Tasks), len(cold.Tasks))
		}
		for j := range got.Tasks {
			if got.Tasks[j].Name != cold.Tasks[j].Name {
				t.Fatalf("task %d name changed: %s vs %s", j, got.Tasks[j].Name, cold.Tasks[j].Name)
			}
		}
	}
}

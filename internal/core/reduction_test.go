package core

import (
	"fmt"
	"sort"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/petri"
)

// referenceReduce is a direct port of the recursive rescan-until-fixpoint
// reduction algorithm this package used before the worklist kernel. It is
// the differential oracle: the kernel must compute the same kept-node sets
// and the same removal multiset on every net and allocation.
func referenceReduce(n *petri.Net, alloc *Allocation) (aliveT, aliveP []bool, steps []string) {
	aliveT = make([]bool, n.NumTransitions())
	aliveP = make([]bool, n.NumPlaces())
	for i := range aliveT {
		aliveT[i] = true
	}
	for i := range aliveP {
		aliveP[i] = true
	}
	isSourcePlace := func(p petri.Place) bool {
		for _, ta := range n.Producers(p) {
			if aliveT[ta.Transition] {
				return false
			}
		}
		return true
	}
	var removePlace func(p petri.Place)
	var removeTransition func(t petri.Transition, reason string)
	maybeRemovePlace := func(s petri.Place) {
		if !aliveP[s] || !isSourcePlace(s) {
			return
		}
		for _, ta := range n.Consumers(s) {
			if !aliveT[ta.Transition] {
				continue
			}
			for _, in := range n.Pre(ta.Transition) {
				if in.Place != s && aliveP[in.Place] && !isSourcePlace(in.Place) {
					return
				}
			}
		}
		removePlace(s)
	}
	removePlace = func(p petri.Place) {
		if !aliveP[p] {
			return
		}
		aliveP[p] = false
		steps = append(steps, "remove "+n.PlaceName(p))
		for _, ta := range n.Consumers(p) {
			tj := ta.Transition
			if !aliveT[tj] {
				continue
			}
			surviving := 0
			allSources := true
			for _, in := range n.Pre(tj) {
				if !aliveP[in.Place] {
					continue
				}
				surviving++
				if !isSourcePlace(in.Place) {
					allSources = false
				}
			}
			switch {
			case surviving == 0:
				removeTransition(tj, "no input place")
			case allSources:
				inputs := make([]petri.Place, 0, surviving)
				for _, in := range n.Pre(tj) {
					if aliveP[in.Place] {
						inputs = append(inputs, in.Place)
					}
				}
				removeTransition(tj, "all inputs are source places")
				for _, in := range inputs {
					removePlace(in)
				}
			}
		}
	}
	removeTransition = func(t petri.Transition, reason string) {
		if !aliveT[t] {
			return
		}
		aliveT[t] = false
		steps = append(steps, fmt.Sprintf("remove %s (%s)", n.TransitionName(t), reason))
		for _, out := range n.Post(t) {
			maybeRemovePlace(out.Place)
		}
	}
	for i, c := range alloc.Clusters {
		for _, t := range c.Transitions {
			if t != alloc.Chosen[i] {
				removeTransition(t, "unallocated")
			}
		}
	}
	for {
		before := len(steps)
		for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
			if aliveP[p] && len(n.Producers(p)) > 0 && isSourcePlace(p) {
				maybeRemovePlace(p)
			}
		}
		if len(steps) == before {
			break
		}
	}
	return aliveT, aliveP, steps
}

func TestReduceMatchesReferenceAlgorithm(t *testing.T) {
	// The worklist kernel's event queue must reach the same fixpoint as the
	// reference's whole-net rescan: identical kept-node sets and the same
	// removal multiset (event order may legally differ in the rule 2(d)
	// tail, so steps are compared sorted) — for every allocation of every
	// corpus net.
	for name, n := range equivalenceCorpus(t) {
		allocs, err := EnumerateAllocations(n, 0)
		if err != nil {
			continue
		}
		rd := newReducer(n)
		for ai, alloc := range allocs {
			wantT, wantP, wantSteps := referenceReduce(n, alloc)
			red := rd.reduce(alloc)
			for i, alive := range wantT {
				if red.KeepsTransition(petri.Transition(i)) != alive {
					t.Fatalf("%s alloc %d: transition %s kept=%v, reference %v",
						name, ai, n.TransitionName(petri.Transition(i)), !alive, alive)
				}
			}
			for i, alive := range wantP {
				if red.KeepsPlace(petri.Place(i)) != alive {
					t.Fatalf("%s alloc %d: place %s kept=%v, reference %v",
						name, ai, n.PlaceName(petri.Place(i)), !alive, alive)
				}
			}
			gotSteps := red.Steps()
			sort.Strings(gotSteps)
			sort.Strings(wantSteps)
			if len(gotSteps) != len(wantSteps) {
				t.Fatalf("%s alloc %d: %d steps, reference %d\n got %v\nwant %v",
					name, ai, len(gotSteps), len(wantSteps), gotSteps, wantSteps)
			}
			for i := range gotSteps {
				if gotSteps[i] != wantSteps[i] {
					t.Fatalf("%s alloc %d: step multiset diverges\n got %v\nwant %v",
						name, ai, gotSteps, wantSteps)
				}
			}
		}
	}
}

func TestReductionLazyAccessorsMatchSubnet(t *testing.T) {
	// Every bitset-backed accessor must agree with the materialised subnet
	// it replaces in the hot paths.
	for name, n := range equivalenceCorpus(t) {
		reds, err := EnumerateDistinctReductions(n, 0)
		if err != nil {
			continue
		}
		for _, red := range reds {
			sub := red.Subnet()
			if got, want := red.TransitionSetKey(), sub.TransitionSetKey(); got != want {
				t.Fatalf("%s: TransitionSetKey %q != subnet key %q", name, got, want)
			}
			kept := red.KeptTransitions()
			if len(kept) != len(sub.ParentTransition) {
				t.Fatalf("%s: %d kept transitions, subnet has %d", name, len(kept), len(sub.ParentTransition))
			}
			for i, pt := range sub.ParentTransition {
				if kept[i] != pt {
					t.Fatalf("%s: kept transition %d = %v, subnet parent %v", name, i, kept[i], pt)
				}
			}
			for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
				if _, ok := sub.FromParentPlace(p); ok != red.KeepsPlace(p) {
					t.Fatalf("%s: KeepsPlace(%v)=%v, subnet says %v", name, p, red.KeepsPlace(p), ok)
				}
			}
			if got, want := red.Fingerprint(), sub.Net.Fingerprint(); got != want {
				t.Fatalf("%s: bitset fingerprint %x != subnet fingerprint %x", name, got, want)
			}
		}
	}
}

func TestReduceAllocsPerRun(t *testing.T) {
	// Regression pin for the worklist kernel: with a shared Reducer, one
	// reduce call allocates only the Reduction result (struct, two
	// bitsets, the compact step copy) — no per-call scratch, no subnet, no
	// step strings. The pin is deliberately loose (the result itself costs
	// a handful) but catches any return to eager materialisation, whose
	// Builder path costs dozens per call.
	n := figures.Figure5()
	allocs, err := EnumerateAllocations(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	rd := NewReducer(n)
	avg := testing.AllocsPerRun(200, func() {
		for _, a := range allocs {
			rd.Reduce(a)
		}
	})
	perCall := avg / float64(len(allocs))
	if perCall > 8 {
		t.Fatalf("Reduce allocates %.1f objects per call, want ≤ 8 (eager materialisation regression?)", perCall)
	}
}

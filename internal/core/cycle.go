package core

import (
	"context"
	"errors"
	"fmt"

	"fcpn/internal/petri"
)

// ErrCycleDeadlock is returned when the firing-count vector cannot be
// realised from the initial marking: the reduction deadlocks (the
// executability failure of the paper's footnote 2).
var ErrCycleDeadlock = errors.New("core: deadlock while realising T-invariant")

// FindCompleteCycle searches a firing sequence of the (conflict-free) net
// that fires each transition t exactly counts[t] times starting and ending
// at the initial marking: a finite complete cycle (Section 2).
//
// Conflict-free nets are persistent — no two transitions share an input
// place, so firing an enabled transition never disables another. Greedy
// simulation is therefore complete: if any realising sequence exists, the
// greedy one succeeds, and getting stuck proves deadlock. Transitions are
// tried in index order, giving a deterministic sequence.
//
// maxLen bounds the sequence length defensively.
func FindCompleteCycle(n *petri.Net, counts []int, maxLen int) ([]petri.Transition, error) {
	return findCompleteCycle(nil, n, counts, maxLen)
}

// findCompleteCycle is FindCompleteCycle with a cancellation context
// (nil never cancels), checked once per greedy sweep so a deadline can
// interrupt a realisation of up to maxLen (default 2^20) firings.
func findCompleteCycle(ctx context.Context, n *petri.Net, counts []int, maxLen int) ([]petri.Transition, error) {
	if len(counts) != n.NumTransitions() {
		return nil, fmt.Errorf("core: counts length %d != %d transitions", len(counts), n.NumTransitions())
	}
	if !n.IsConflictFree() {
		return nil, errors.New("core: FindCompleteCycle requires a conflict-free net")
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("core: negative firing count %v", counts)
		}
		total += c
	}
	if total > maxLen {
		return nil, fmt.Errorf("core: cycle of %d firings exceeds cap %d: %w", total, maxLen, ErrBudgetExceeded)
	}
	remaining := append([]int(nil), counts...)
	m := n.InitialMarking()
	seq := make([]petri.Transition, 0, total)
	for len(seq) < total {
		if err := ctxErr(ctx); err != nil {
			return nil, fmt.Errorf("cycle search interrupted after %d of %d firings: %w", len(seq), total, err)
		}
		fired := false
		for t := petri.Transition(0); int(t) < n.NumTransitions(); t++ {
			if remaining[t] == 0 || !n.Enabled(m, t) {
				continue
			}
			n.MustFire(m, t)
			remaining[t]--
			seq = append(seq, t)
			fired = true
		}
		if !fired {
			return nil, fmt.Errorf("%w: %d of %d firings done, stuck at %s with remaining %v",
				ErrCycleDeadlock, len(seq), total, m, remaining)
		}
	}
	if !m.Equal(n.InitialMarking()) {
		return nil, fmt.Errorf("core: firing vector is not a T-invariant: final marking %s != initial %s",
			m, n.InitialMarking())
	}
	return seq, nil
}

// VerifyCompleteCycle replays seq on the net from the initial marking and
// checks it is a finite complete cycle: every firing enabled, final
// marking equal to the initial one.
func VerifyCompleteCycle(n *petri.Net, seq []petri.Transition) error {
	m := n.InitialMarking()
	if _, err := n.FireSequence(m, seq); err != nil {
		return err
	}
	if !m.Equal(n.InitialMarking()) {
		return fmt.Errorf("core: sequence ends at %s, not the initial marking %s", m, n.InitialMarking())
	}
	return nil
}

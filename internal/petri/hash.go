package petri

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// CanonicalForm is a naming- and declaration-order-independent canonical
// relabelling of a net: nodes are assigned canonical positions by iterated
// colour refinement (Weisfeiler–Lehman style) over the bipartite weighted
// flow graph, with the initial marking folded into the place colours. Two
// nets that differ only in node names or declaration order of symmetric
// nodes receive the same Hash; equal hashes always denote isomorphic nets
// (the hash covers the complete relabelled structure, so a collision would
// require equal canonical adjacency).
//
// The permutation is exposed both ways so content-addressed caches can
// store analysis results in canonical index space and translate them into
// any requesting net's index space:
//
//	canonical position -> local index: PlaceAt / TransAt
//	local index -> canonical position: PlacePos / TransPos
type CanonicalForm struct {
	// Hash is the hex SHA-256 of the canonical structure serialisation.
	Hash string
	// PlaceAt[i] is the place occupying canonical position i.
	PlaceAt []Place
	// TransAt[i] is the transition occupying canonical position i.
	TransAt []Transition
	// PlacePos[p] is the canonical position of place p.
	PlacePos []int
	// TransPos[t] is the canonical position of transition t.
	TransPos []int
}

// CanonicalHash is CanonicalForm().Hash.
func (n *Net) CanonicalHash() string { return n.CanonicalForm().Hash }

// CanonicalForm returns the canonical relabelling, computing it on first
// use and memoising it for the net's lifetime (nets are immutable, and
// phase traces showed the relabelling being recomputed for every cache
// lookup — several times per analysis). Cost of the one computation is
// O(rounds × arcs × log) with rounds bounded by the number of nodes;
// refinement stops as soon as the colour partition is stable.
func (n *Net) CanonicalForm() *CanonicalForm {
	n.canonOnce.Do(func() { n.canon = n.computeCanonicalForm() })
	return n.canon
}

func (n *Net) computeCanonicalForm() *CanonicalForm {
	nP, nT := n.NumPlaces(), n.NumTransitions()
	pCol := make([]int, nP)
	tCol := make([]int, nT)

	// Round 0: structural signatures independent of any prior colours.
	sigs := make([]string, 0, nP+nT)
	init := n.initialMark
	for p := 0; p < nP; p++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, "P|m%d|i%d|o%d", markAt(init, p), len(n.placeIn[p]), len(n.placeOut[p]))
		sb.WriteString("|iw")
		for _, w := range sortedWeightsT(n.placeIn[p]) {
			fmt.Fprintf(&sb, " %d", w)
		}
		sb.WriteString("|ow")
		for _, w := range sortedWeightsT(n.placeOut[p]) {
			fmt.Fprintf(&sb, " %d", w)
		}
		sigs = append(sigs, sb.String())
	}
	for t := 0; t < nT; t++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, "T|i%d|o%d", len(n.pre[t]), len(n.post[t]))
		sb.WriteString("|iw")
		for _, w := range sortedWeightsP(n.pre[t]) {
			fmt.Fprintf(&sb, " %d", w)
		}
		sb.WriteString("|ow")
		for _, w := range sortedWeightsP(n.post[t]) {
			fmt.Fprintf(&sb, " %d", w)
		}
		sigs = append(sigs, sb.String())
	}
	classes := rankSignatures(sigs, pCol, tCol)

	// Refinement rounds: a node's new signature is its colour plus the
	// sorted multiset of (direction, weight, neighbour colour) tuples.
	// Signature ranks are assigned by lexicographic order of the distinct
	// signatures, so colours depend only on the multiset — never on the
	// local iteration order — keeping the result declaration-order stable.
	for round := 0; round < nP+nT; round++ {
		sigs = sigs[:0]
		for p := 0; p < nP; p++ {
			var tuples []string
			for _, ta := range n.placeIn[p] {
				tuples = append(tuples, fmt.Sprintf("<%d,%d", ta.Weight, tCol[ta.Transition]))
			}
			for _, ta := range n.placeOut[p] {
				tuples = append(tuples, fmt.Sprintf(">%d,%d", ta.Weight, tCol[ta.Transition]))
			}
			sort.Strings(tuples)
			sigs = append(sigs, fmt.Sprintf("P%d|%s", pCol[p], strings.Join(tuples, ";")))
		}
		for t := 0; t < nT; t++ {
			var tuples []string
			for _, a := range n.pre[t] {
				tuples = append(tuples, fmt.Sprintf("<%d,%d", a.Weight, pCol[a.Place]))
			}
			for _, a := range n.post[t] {
				tuples = append(tuples, fmt.Sprintf(">%d,%d", a.Weight, pCol[a.Place]))
			}
			sort.Strings(tuples)
			sigs = append(sigs, fmt.Sprintf("T%d|%s", tCol[t], strings.Join(tuples, ";")))
		}
		next := rankSignatures(sigs, pCol, tCol)
		if next == classes {
			break // partition stable
		}
		classes = next
	}

	cf := &CanonicalForm{
		PlaceAt:  make([]Place, nP),
		TransAt:  make([]Transition, nT),
		PlacePos: make([]int, nP),
		TransPos: make([]int, nT),
	}
	for i := range cf.PlaceAt {
		cf.PlaceAt[i] = Place(i)
	}
	for i := range cf.TransAt {
		cf.TransAt[i] = Transition(i)
	}
	// Canonical order: refined colour first, local index as the tie-break
	// (ties are colour-equivalent nodes, interchangeable for all practical
	// nets; a tie broken differently still yields a valid — merely
	// unshared — hash).
	sort.Slice(cf.PlaceAt, func(i, j int) bool {
		a, b := cf.PlaceAt[i], cf.PlaceAt[j]
		if pCol[a] != pCol[b] {
			return pCol[a] < pCol[b]
		}
		return a < b
	})
	sort.Slice(cf.TransAt, func(i, j int) bool {
		a, b := cf.TransAt[i], cf.TransAt[j]
		if tCol[a] != tCol[b] {
			return tCol[a] < tCol[b]
		}
		return a < b
	})
	for i, p := range cf.PlaceAt {
		cf.PlacePos[p] = i
	}
	for i, t := range cf.TransAt {
		cf.TransPos[t] = i
	}

	// Serialise the relabelled structure: node counts, markings in
	// canonical place order, then per canonical transition the sorted
	// (canonical place, weight) pre- and post-sets.
	h := sha256.New()
	fmt.Fprintf(h, "fcpn-canonical-v1|P%d|T%d\nm", nP, nT)
	for _, p := range cf.PlaceAt {
		fmt.Fprintf(h, " %d", markAt(init, int(p)))
	}
	for i, t := range cf.TransAt {
		fmt.Fprintf(h, "\nt%d pre", i)
		for _, pw := range canonicalArcs(n.pre[t], cf.PlacePos) {
			fmt.Fprintf(h, " %d*%d", pw[0], pw[1])
		}
		fmt.Fprintf(h, " post")
		for _, pw := range canonicalArcs(n.post[t], cf.PlacePos) {
			fmt.Fprintf(h, " %d*%d", pw[0], pw[1])
		}
	}
	cf.Hash = hex.EncodeToString(h.Sum(nil))
	return cf
}

// rankSignatures replaces pCol/tCol with the rank of each node's signature
// in the lexicographically sorted distinct-signature list and returns the
// number of distinct signatures.
func rankSignatures(sigs []string, pCol, tCol []int) int {
	distinct := append([]string(nil), sigs...)
	sort.Strings(distinct)
	uniq := distinct[:0]
	for i, s := range distinct {
		if i == 0 || s != distinct[i-1] {
			uniq = append(uniq, s)
		}
	}
	rank := make(map[string]int, len(uniq))
	for i, s := range uniq {
		rank[s] = i
	}
	for p := range pCol {
		pCol[p] = rank[sigs[p]]
	}
	for t := range tCol {
		tCol[t] = rank[sigs[len(pCol)+t]]
	}
	return len(uniq)
}

func markAt(m Marking, p int) int {
	if p < len(m) {
		return m[p]
	}
	return 0
}

func sortedWeightsT(arcs []TArc) []int {
	ws := make([]int, len(arcs))
	for i, a := range arcs {
		ws[i] = a.Weight
	}
	sort.Ints(ws)
	return ws
}

func sortedWeightsP(arcs []ArcRef) []int {
	ws := make([]int, len(arcs))
	for i, a := range arcs {
		ws[i] = a.Weight
	}
	sort.Ints(ws)
	return ws
}

// canonicalArcs maps a transition's arc list into sorted
// (canonical place position, weight) pairs.
func canonicalArcs(arcs []ArcRef, placePos []int) [][2]int {
	out := make([][2]int, len(arcs))
	for i, a := range arcs {
		out[i] = [2]int{placePos[a.Place], a.Weight}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

package petri

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
)

// CanonicalForm is a naming- and declaration-order-independent canonical
// relabelling of a net: nodes are assigned canonical positions by iterated
// colour refinement (Weisfeiler–Lehman style) over the bipartite weighted
// flow graph, with the initial marking folded into the place colours. Two
// nets that differ only in node names or declaration order of symmetric
// nodes receive the same Hash; equal hashes always denote isomorphic nets
// (the hash covers the complete relabelled structure, so a collision would
// require equal canonical adjacency).
//
// The permutation is exposed both ways so content-addressed caches can
// store analysis results in canonical index space and translate them into
// any requesting net's index space:
//
//	canonical position -> local index: PlaceAt / TransAt
//	local index -> canonical position: PlacePos / TransPos
type CanonicalForm struct {
	// Hash is the hex SHA-256 of the canonical structure serialisation.
	Hash string
	// PlaceAt[i] is the place occupying canonical position i.
	PlaceAt []Place
	// TransAt[i] is the transition occupying canonical position i.
	TransAt []Transition
	// PlacePos[p] is the canonical position of place p.
	PlacePos []int
	// TransPos[t] is the canonical position of transition t.
	TransPos []int
}

// CanonicalHash is CanonicalForm().Hash.
func (n *Net) CanonicalHash() string { return n.CanonicalForm().Hash }

// CanonicalForm returns the canonical relabelling, computing it on first
// use and memoising it for the net's lifetime (nets are immutable, and
// phase traces showed the relabelling being recomputed for every cache
// lookup — several times per analysis). Cost of the one computation is
// O(rounds × arcs × log) with rounds bounded by the number of nodes;
// refinement stops as soon as the colour partition is stable.
func (n *Net) CanonicalForm() *CanonicalForm {
	n.canonOnce.Do(func() { n.canon = n.computeCanonicalForm() })
	return n.canon
}

func (n *Net) computeCanonicalForm() *CanonicalForm {
	nP, nT := n.NumPlaces(), n.NumTransitions()
	pCol := make([]int, nP)
	tCol := make([]int, nT)

	// Signatures are assembled with manual byte appends rather than fmt:
	// the reduction-class dedup in internal/core hashes hundreds of small
	// subnets per solve, and fmt verb parsing dominated the refinement
	// loop in its phase traces. The byte sequences are identical to the
	// previous fmt-built ones, so ranks — and therefore hashes — are
	// unchanged (pinned by the golden hashes in the engine tests).
	var buf []byte

	// Round 0: structural signatures independent of any prior colours.
	sigs := make([]string, 0, nP+nT)
	init := n.initialMark
	for p := 0; p < nP; p++ {
		buf = append(buf[:0], "P|m"...)
		buf = strconv.AppendInt(buf, int64(markAt(init, p)), 10)
		buf = append(buf, "|i"...)
		buf = strconv.AppendInt(buf, int64(len(n.placeIn[p])), 10)
		buf = append(buf, "|o"...)
		buf = strconv.AppendInt(buf, int64(len(n.placeOut[p])), 10)
		buf = append(buf, "|iw"...)
		for _, w := range sortedWeightsT(n.placeIn[p]) {
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(w), 10)
		}
		buf = append(buf, "|ow"...)
		for _, w := range sortedWeightsT(n.placeOut[p]) {
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(w), 10)
		}
		sigs = append(sigs, string(buf))
	}
	for t := 0; t < nT; t++ {
		buf = append(buf[:0], "T|i"...)
		buf = strconv.AppendInt(buf, int64(len(n.pre[t])), 10)
		buf = append(buf, "|o"...)
		buf = strconv.AppendInt(buf, int64(len(n.post[t])), 10)
		buf = append(buf, "|iw"...)
		for _, w := range sortedWeightsP(n.pre[t]) {
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(w), 10)
		}
		buf = append(buf, "|ow"...)
		for _, w := range sortedWeightsP(n.post[t]) {
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(w), 10)
		}
		sigs = append(sigs, string(buf))
	}
	classes := rankSignatures(sigs, pCol, tCol)

	// Refinement rounds: a node's new signature is its colour plus the
	// sorted multiset of (direction, weight, neighbour colour) tuples.
	// Signature ranks are assigned by lexicographic order of the distinct
	// signatures, so colours depend only on the multiset — never on the
	// local iteration order — keeping the result declaration-order stable.
	tuple := func(dir byte, weight, col int) string {
		var b [24]byte
		s := append(b[:0], dir)
		s = strconv.AppendInt(s, int64(weight), 10)
		s = append(s, ',')
		s = strconv.AppendInt(s, int64(col), 10)
		return string(s)
	}
	var tuples []string
	joinSig := func(kind byte, col int) string {
		sort.Strings(tuples)
		buf = append(buf[:0], kind)
		buf = strconv.AppendInt(buf, int64(col), 10)
		buf = append(buf, '|')
		for i, s := range tuples {
			if i > 0 {
				buf = append(buf, ';')
			}
			buf = append(buf, s...)
		}
		return string(buf)
	}
	for round := 0; round < nP+nT; round++ {
		sigs = sigs[:0]
		for p := 0; p < nP; p++ {
			tuples = tuples[:0]
			for _, ta := range n.placeIn[p] {
				tuples = append(tuples, tuple('<', ta.Weight, tCol[ta.Transition]))
			}
			for _, ta := range n.placeOut[p] {
				tuples = append(tuples, tuple('>', ta.Weight, tCol[ta.Transition]))
			}
			sigs = append(sigs, joinSig('P', pCol[p]))
		}
		for t := 0; t < nT; t++ {
			tuples = tuples[:0]
			for _, a := range n.pre[t] {
				tuples = append(tuples, tuple('<', a.Weight, pCol[a.Place]))
			}
			for _, a := range n.post[t] {
				tuples = append(tuples, tuple('>', a.Weight, pCol[a.Place]))
			}
			sigs = append(sigs, joinSig('T', tCol[t]))
		}
		next := rankSignatures(sigs, pCol, tCol)
		if next == classes {
			break // partition stable
		}
		classes = next
	}

	cf := &CanonicalForm{
		PlaceAt:  make([]Place, nP),
		TransAt:  make([]Transition, nT),
		PlacePos: make([]int, nP),
		TransPos: make([]int, nT),
	}
	for i := range cf.PlaceAt {
		cf.PlaceAt[i] = Place(i)
	}
	for i := range cf.TransAt {
		cf.TransAt[i] = Transition(i)
	}
	// Canonical order: refined colour first, local index as the tie-break
	// (ties are colour-equivalent nodes, interchangeable for all practical
	// nets; a tie broken differently still yields a valid — merely
	// unshared — hash).
	sort.Slice(cf.PlaceAt, func(i, j int) bool {
		a, b := cf.PlaceAt[i], cf.PlaceAt[j]
		if pCol[a] != pCol[b] {
			return pCol[a] < pCol[b]
		}
		return a < b
	})
	sort.Slice(cf.TransAt, func(i, j int) bool {
		a, b := cf.TransAt[i], cf.TransAt[j]
		if tCol[a] != tCol[b] {
			return tCol[a] < tCol[b]
		}
		return a < b
	})
	for i, p := range cf.PlaceAt {
		cf.PlacePos[p] = i
	}
	for i, t := range cf.TransAt {
		cf.TransPos[t] = i
	}

	// Serialise the relabelled structure: node counts, markings in
	// canonical place order, then per canonical transition the sorted
	// (canonical place, weight) pre- and post-sets.
	buf = append(buf[:0], "fcpn-canonical-v1|P"...)
	buf = strconv.AppendInt(buf, int64(nP), 10)
	buf = append(buf, "|T"...)
	buf = strconv.AppendInt(buf, int64(nT), 10)
	buf = append(buf, "\nm"...)
	for _, p := range cf.PlaceAt {
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(markAt(init, int(p))), 10)
	}
	appendArcs := func(arcs []ArcRef) {
		for _, pw := range canonicalArcs(arcs, cf.PlacePos) {
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(pw[0]), 10)
			buf = append(buf, '*')
			buf = strconv.AppendInt(buf, int64(pw[1]), 10)
		}
	}
	for i, t := range cf.TransAt {
		buf = append(buf, "\nt"...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, " pre"...)
		appendArcs(n.pre[t])
		buf = append(buf, " post"...)
		appendArcs(n.post[t])
	}
	sum := sha256.Sum256(buf)
	cf.Hash = hex.EncodeToString(sum[:])
	return cf
}

// MapTransitionsByCanonical returns the transition mapping from net a onto
// net b induced by their canonical forms: out[t] is the b-transition at the
// same canonical position as a-transition t.
//
// Precondition: a and b have equal canonical hashes. The hash covers the
// complete relabelled structure — markings, arcs and weights in canonical
// position space — so equal hashes mean the position-to-position
// correspondence preserves every arc and marking: it is an isomorphism, no
// matter how colour ties were broken on either side. Callers (the
// reduction-class dedup in internal/core) use it to transport
// structure-only results such as minimal semiflow sets between members of
// a canonical-hash equivalence class.
func MapTransitionsByCanonical(a, b *Net) []Transition {
	fa, fb := a.CanonicalForm(), b.CanonicalForm()
	out := make([]Transition, len(fa.TransPos))
	for t := range out {
		out[t] = fb.TransAt[fa.TransPos[t]]
	}
	return out
}

// rankSignatures replaces pCol/tCol with the rank of each node's signature
// in the lexicographically sorted distinct-signature list and returns the
// number of distinct signatures.
func rankSignatures(sigs []string, pCol, tCol []int) int {
	distinct := append([]string(nil), sigs...)
	sort.Strings(distinct)
	uniq := distinct[:0]
	for i, s := range distinct {
		if i == 0 || s != distinct[i-1] {
			uniq = append(uniq, s)
		}
	}
	rank := make(map[string]int, len(uniq))
	for i, s := range uniq {
		rank[s] = i
	}
	for p := range pCol {
		pCol[p] = rank[sigs[p]]
	}
	for t := range tCol {
		tCol[t] = rank[sigs[len(pCol)+t]]
	}
	return len(uniq)
}

func markAt(m Marking, p int) int {
	if p < len(m) {
		return m[p]
	}
	return 0
}

func sortedWeightsT(arcs []TArc) []int {
	ws := make([]int, len(arcs))
	for i, a := range arcs {
		ws[i] = a.Weight
	}
	sort.Ints(ws)
	return ws
}

func sortedWeightsP(arcs []ArcRef) []int {
	ws := make([]int, len(arcs))
	for i, a := range arcs {
		ws[i] = a.Weight
	}
	sort.Ints(ws)
	return ws
}

// canonicalArcs maps a transition's arc list into sorted
// (canonical place position, weight) pairs.
func canonicalArcs(arcs []ArcRef, placePos []int) [][2]int {
	out := make([][2]int, len(arcs))
	for i, a := range arcs {
		out[i] = [2]int{placePos[a.Place], a.Weight}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

package petri

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads the textual net format:
//
//	# comment
//	net figure3a
//	place p1            # unmarked place
//	place buf 2         # place with 2 initial tokens
//	trans t1
//	arc t1 -> p1        # direction inferred from node kinds
//	arc p1 -> t2 * 2    # arc weight 2
//	arc t2 -> p2 -> t4  # chains are allowed
//
// Nodes may also be declared implicitly by prefix: names starting with "p"
// are NOT auto-typed; every node must be declared before use so typos fail
// loudly. Parse returns the first error with a line number.
func Parse(r io.Reader) (*Net, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	b := NewBuilder("")
	named := false
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "net":
			if len(fields) != 2 {
				return nil, fmt.Errorf("petri: line %d: usage: net NAME", line)
			}
			if named {
				return nil, fmt.Errorf("petri: line %d: duplicate net directive", line)
			}
			named = true
			b.name = fields[1]
		case "place":
			if len(fields) != 2 && len(fields) != 3 {
				return nil, fmt.Errorf("petri: line %d: usage: place NAME [TOKENS]", line)
			}
			tokens := 0
			if len(fields) == 3 {
				v, err := strconv.Atoi(fields[2])
				if err != nil || v < 0 {
					return nil, fmt.Errorf("petri: line %d: bad token count %q", line, fields[2])
				}
				tokens = v
			}
			if err := checkFresh(b, fields[1]); err != nil {
				return nil, fmt.Errorf("petri: line %d: %w", line, err)
			}
			b.MarkedPlace(fields[1], tokens)
		case "trans", "transition":
			if len(fields) != 2 {
				return nil, fmt.Errorf("petri: line %d: usage: trans NAME", line)
			}
			if err := checkFresh(b, fields[1]); err != nil {
				return nil, fmt.Errorf("petri: line %d: %w", line, err)
			}
			b.Transition(fields[1])
		case "arc":
			if err := parseArcChain(b, fields[1:]); err != nil {
				return nil, fmt.Errorf("petri: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("petri: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("petri: read: %w", err)
	}
	return b.Build(), nil
}

// ParseString is Parse over an in-memory document.
func ParseString(s string) (*Net, error) { return Parse(strings.NewReader(s)) }

func checkFresh(b *Builder, name string) error {
	if _, dup := b.placeIndex[name]; dup {
		return fmt.Errorf("duplicate node %q", name)
	}
	if _, dup := b.transIndex[name]; dup {
		return fmt.Errorf("duplicate node %q", name)
	}
	return nil
}

// parseArcChain handles "A -> B [* W] [-> C [* W] ...]".
func parseArcChain(b *Builder, fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("usage: arc FROM -> TO [* WEIGHT] [-> NEXT ...]")
	}
	cur := fields[0]
	i := 1
	for i < len(fields) {
		if fields[i] != "->" {
			return fmt.Errorf("expected \"->\" at token %q", fields[i])
		}
		if i+1 >= len(fields) {
			return fmt.Errorf("dangling \"->\"")
		}
		next := fields[i+1]
		i += 2
		weight := 1
		if i < len(fields) && fields[i] == "*" {
			if i+1 >= len(fields) {
				return fmt.Errorf("dangling \"*\"")
			}
			w, err := strconv.Atoi(fields[i+1])
			if err != nil || w <= 0 {
				return fmt.Errorf("bad weight %q", fields[i+1])
			}
			weight = w
			i += 2
		}
		if err := addArcByName(b, cur, next, weight); err != nil {
			return err
		}
		cur = next
	}
	return nil
}

func addArcByName(b *Builder, from, to string, w int) error {
	if p, ok := b.placeIndex[from]; ok {
		t, ok := b.transIndex[to]
		if !ok {
			if _, isPlace := b.placeIndex[to]; isPlace {
				return fmt.Errorf("arc %s -> %s connects two places", from, to)
			}
			return fmt.Errorf("unknown node %q", to)
		}
		b.WeightedArc(p, t, w)
		return nil
	}
	if t, ok := b.transIndex[from]; ok {
		p, ok := b.placeIndex[to]
		if !ok {
			if _, isTrans := b.transIndex[to]; isTrans {
				return fmt.Errorf("arc %s -> %s connects two transitions", from, to)
			}
			return fmt.Errorf("unknown node %q", to)
		}
		b.WeightedArcTP(t, p, w)
		return nil
	}
	return fmt.Errorf("unknown node %q", from)
}

// Format serialises the net in the textual format accepted by Parse. The
// output is deterministic: places, then transitions, then arcs, each in
// index order.
func Format(n *Net) string {
	var sb strings.Builder
	if n.Name() != "" {
		fmt.Fprintf(&sb, "net %s\n", n.Name())
	}
	init := n.initialMark
	for p := 0; p < n.NumPlaces(); p++ {
		if len(init) == n.NumPlaces() && init[p] > 0 {
			fmt.Fprintf(&sb, "place %s %d\n", n.placeNames[p], init[p])
		} else {
			fmt.Fprintf(&sb, "place %s\n", n.placeNames[p])
		}
	}
	for t := 0; t < n.NumTransitions(); t++ {
		fmt.Fprintf(&sb, "trans %s\n", n.transNames[t])
	}
	for _, a := range n.Arcs() {
		var from, to string
		if a.FromKind == PlaceNode {
			from, to = n.placeNames[a.From], n.transNames[a.To]
		} else {
			from, to = n.transNames[a.From], n.placeNames[a.To]
		}
		if a.Weight > 1 {
			fmt.Fprintf(&sb, "arc %s -> %s * %d\n", from, to, a.Weight)
		} else {
			fmt.Fprintf(&sb, "arc %s -> %s\n", from, to)
		}
	}
	return sb.String()
}

package petri

import (
	"strings"
	"testing"
)

func TestSimplifySeriesTransitions(t *testing.T) {
	// src -> p1 -> a -> p2 -> b -> p3 -> sinkt : a·b fuse through p2
	// (p1 and p3 survive: src/sink transitions stay untouched).
	b := NewBuilder("chain")
	src := b.Transition("src")
	a := b.Transition("a")
	c := b.Transition("b")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	p3 := b.Place("p3")
	b.Chain(src, p1, a, p2, c, p3)
	n := b.Build()
	red, trace := Simplify(n)
	if len(trace) == 0 {
		t.Fatal("no rewrites applied")
	}
	joined := strings.Join(trace, "; ")
	if !strings.Contains(joined, "FST") {
		t.Fatalf("expected FST in trace: %v", trace)
	}
	// a and b fused: transition count drops by 1, p2 gone.
	if red.NumTransitions() != n.NumTransitions()-1 {
		t.Fatalf("transitions = %d", red.NumTransitions())
	}
	if _, ok := red.PlaceByName("p2"); ok {
		t.Fatal("p2 must be removed")
	}
	if _, ok := red.TransitionByName("a+b"); !ok {
		t.Fatalf("fused transition missing: %s", red)
	}
}

func TestSimplifyParallelDuplicates(t *testing.T) {
	// Two identical transitions between the same places.
	b := NewBuilder("par")
	p := b.MarkedPlace("p", 1)
	q := b.Place("q")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	b.Chain(p, t1, q)
	b.Chain(p, t2, q)
	back := b.Transition("back")
	b.Chain(q, back, p)
	n := b.Build()
	red, trace := Simplify(n)
	if !strings.Contains(strings.Join(trace, ";"), "FPT") {
		t.Fatalf("expected FPT: %v", trace)
	}
	if red.NumTransitions() >= n.NumTransitions() {
		t.Fatal("duplicate transition not removed")
	}

	// Two identical places between the same transitions.
	b2 := NewBuilder("parp")
	t3 := b2.Transition("t3")
	t4 := b2.Transition("t4")
	pa := b2.Place("pa")
	pb := b2.Place("pb")
	b2.Chain(t3, pa, t4)
	b2.Chain(t3, pb, t4)
	n2 := b2.Build()
	red2, trace2 := Simplify(n2)
	if !strings.Contains(strings.Join(trace2, ";"), "FPP") {
		t.Fatalf("expected FPP: %v", trace2)
	}
	if red2.NumPlaces() >= n2.NumPlaces() {
		t.Fatal("duplicate place not removed")
	}
}

func TestSimplifySelfLoop(t *testing.T) {
	b := NewBuilder("loop")
	p := b.MarkedPlace("p", 1)
	noop := b.Transition("noop")
	b.Arc(p, noop)
	b.ArcTP(noop, p)
	worker := b.Transition("worker")
	q := b.Place("q")
	b.Chain(p, worker, q)
	n := b.Build()
	red, trace := Simplify(n)
	if !strings.Contains(strings.Join(trace, ";"), "ELT") {
		t.Fatalf("expected ELT: %v", trace)
	}
	if _, ok := red.TransitionByName("noop"); ok {
		t.Fatal("self-loop transition not removed")
	}
	if _, ok := red.TransitionByName("worker"); !ok {
		t.Fatal("worker must survive")
	}
}

func TestSimplifyPreservesChoices(t *testing.T) {
	// Figure-3a shape: the choice structure must survive untouched except
	// for series fusion inside the branches.
	n := buildFig3a()
	red, _ := Simplify(n)
	if len(red.FreeChoiceSets()) != 1 {
		t.Fatalf("choice destroyed: %s", red)
	}
	if !red.IsFreeChoice() {
		t.Fatal("free-choice property lost")
	}
}

func TestSimplifyPreservesMarkingTotal(t *testing.T) {
	// FSP merges places; tokens must be conserved.
	b := NewBuilder("m")
	t1 := b.Transition("t1")
	mid := b.Transition("mid")
	t2 := b.Transition("t2")
	p1 := b.MarkedPlace("p1", 2)
	p2 := b.MarkedPlace("p2", 1)
	back := b.Place("back")
	b.Chain(p1, mid, p2, t2, back, t1, p1)
	n := b.Build()
	before := n.InitialMarking().Total()
	red, trace := Simplify(n)
	if red.InitialMarking().Total() != before {
		t.Fatalf("tokens lost: %d -> %d (trace %v)", before, red.InitialMarking().Total(), trace)
	}
}

func TestSimplifyFixpoint(t *testing.T) {
	// A long series chain collapses fully; re-simplifying is a no-op.
	b := NewBuilder("long")
	src := b.Transition("src")
	prev := src
	for i := 0; i < 6; i++ {
		p := b.Place(placeName(i))
		next := b.Transition(transName(i))
		b.Chain(prev, p, next)
		prev = next
	}
	n := b.Build()
	red, trace := Simplify(n)
	if len(trace) < 4 {
		t.Fatalf("expected several fusions, got %v", trace)
	}
	again, trace2 := Simplify(red)
	if len(trace2) != 0 {
		t.Fatalf("not a fixpoint: %v", trace2)
	}
	if again.NumTransitions() != red.NumTransitions() {
		t.Fatal("fixpoint changed net")
	}
}

func TestSimplifyBoundedCyclePreservesBehaviour(t *testing.T) {
	// On a closed net, liveness-preserving rules must keep the net live
	// and 1-bounded: t1 -> p -> t2 -> q -> t3 -> r -> t1 with one token
	// collapses to a smaller cycle that still circulates.
	b := NewBuilder("ring")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	p := b.MarkedPlace("p", 1)
	q := b.Place("q")
	r := b.Place("r")
	b.Chain(t1, p, t2, q, t3, r, t1)
	n := b.Build()
	red, _ := Simplify(n)
	if red.NumTransitions() == 0 || red.NumPlaces() == 0 {
		t.Fatalf("over-reduced: %s", red)
	}
	if red.InitialMarking().Total() != 1 {
		t.Fatalf("token lost: %v", red.InitialMarking())
	}
	// The reduced ring must still be able to fire forever: check one lap.
	m := red.InitialMarking()
	for i := 0; i < 2*red.NumTransitions(); i++ {
		fired := false
		for tr := Transition(0); int(tr) < red.NumTransitions(); tr++ {
			if red.Enabled(m, tr) {
				red.MustFire(m, tr)
				fired = true
				break
			}
		}
		if !fired {
			t.Fatalf("reduced ring deadlocked: %s at %v", red, m)
		}
	}
}

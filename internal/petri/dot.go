package petri

import (
	"fmt"
	"strings"
)

// DOT renders the net in Graphviz dot syntax: places as circles (labelled
// with their token count when marked), transitions as boxes, arc weights
// as edge labels when greater than one.
func (n *Net) DOT() string {
	var sb strings.Builder
	name := n.name
	if name == "" {
		name = "net"
	}
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", name)
	init := n.initialMark
	for p := 0; p < n.NumPlaces(); p++ {
		label := n.placeNames[p]
		if len(init) == n.NumPlaces() && init[p] > 0 {
			label = fmt.Sprintf("%s\\n●%d", n.placeNames[p], init[p])
		}
		fmt.Fprintf(&sb, "  %q [shape=circle, label=%q];\n", "p_"+n.placeNames[p], label)
	}
	for t := 0; t < n.NumTransitions(); t++ {
		fmt.Fprintf(&sb, "  %q [shape=box, label=%q];\n", "t_"+n.transNames[t], n.transNames[t])
	}
	for _, a := range n.Arcs() {
		var from, to string
		if a.FromKind == PlaceNode {
			from, to = "p_"+n.placeNames[a.From], "t_"+n.transNames[a.To]
		} else {
			from, to = "t_"+n.transNames[a.From], "p_"+n.placeNames[a.To]
		}
		if a.Weight > 1 {
			fmt.Fprintf(&sb, "  %q -> %q [label=\"%d\"];\n", from, to, a.Weight)
		} else {
			fmt.Fprintf(&sb, "  %q -> %q;\n", from, to)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

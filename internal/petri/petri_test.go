package petri

import (
	"reflect"
	"strings"
	"testing"
)

// buildFig3a constructs the Figure 3a net inline (the figures package
// depends on petri, so tests here build their own nets).
func buildFig3a() *Net {
	b := NewBuilder("fig3a")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	t4 := b.Transition("t4")
	t5 := b.Transition("t5")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	p3 := b.Place("p3")
	b.Chain(t1, p1, t2, p2, t4)
	b.Chain(p1, t3, p3, t5)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	n := buildFig3a()
	if got, want := n.NumPlaces(), 3; got != want {
		t.Fatalf("NumPlaces = %d, want %d", got, want)
	}
	if got, want := n.NumTransitions(), 5; got != want {
		t.Fatalf("NumTransitions = %d, want %d", got, want)
	}
	p1, ok := n.PlaceByName("p1")
	if !ok {
		t.Fatal("p1 not found")
	}
	if name := n.PlaceName(p1); name != "p1" {
		t.Fatalf("PlaceName = %q", name)
	}
	t2, ok := n.TransitionByName("t2")
	if !ok {
		t.Fatal("t2 not found")
	}
	if got := n.Pre(t2); len(got) != 1 || got[0].Place != p1 || got[0].Weight != 1 {
		t.Fatalf("Pre(t2) = %v", got)
	}
	if _, ok := n.TransitionByName("nope"); ok {
		t.Fatal("lookup of unknown transition succeeded")
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*Builder)
	}{
		{"duplicate place", func(b *Builder) { b.Place("x"); b.Place("x") }},
		{"duplicate transition", func(b *Builder) { b.Transition("x"); b.Transition("x") }},
		{"cross-kind duplicate", func(b *Builder) { b.Place("x"); b.Transition("x") }},
		{"empty place name", func(b *Builder) { b.Place("") }},
		{"negative marking", func(b *Builder) { b.MarkedPlace("p", -1) }},
		{"zero weight", func(b *Builder) {
			p := b.Place("p")
			tr := b.Transition("t")
			b.WeightedArc(p, tr, 0)
		}},
		{"unknown place", func(b *Builder) {
			tr := b.Transition("t")
			b.WeightedArc(Place(7), tr, 1)
		}},
		{"bad chain kinds", func(b *Builder) {
			p := b.Place("p")
			q := b.Place("q")
			b.Chain(p, q)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewBuilder("panic"))
		})
	}
}

func TestSourceSinkQueries(t *testing.T) {
	n := buildFig3a()
	if got := n.SourceTransitions(); len(got) != 1 || n.TransitionName(got[0]) != "t1" {
		t.Fatalf("SourceTransitions = %v", n.SequenceNames(got))
	}
	sinks := n.SinkTransitions()
	if len(sinks) != 2 {
		t.Fatalf("SinkTransitions = %v", n.SequenceNames(sinks))
	}
	if got := n.ChoicePlaces(); len(got) != 1 || n.PlaceName(got[0]) != "p1" {
		t.Fatalf("ChoicePlaces = %v", got)
	}
	if got := n.MergePlaces(); len(got) != 0 {
		t.Fatalf("MergePlaces = %v", got)
	}
}

func TestFiringSemantics(t *testing.T) {
	n := buildFig3a()
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	t4, _ := n.TransitionByName("t4")
	m := n.InitialMarking()

	if !n.Enabled(m, t1) {
		t.Fatal("source transition must always be enabled")
	}
	if n.Enabled(m, t2) {
		t.Fatal("t2 enabled at empty marking")
	}
	if err := n.Fire(m, t2); err == nil {
		t.Fatal("firing disabled transition must error")
	}
	n.MustFire(m, t1)
	p1, _ := n.PlaceByName("p1")
	if m[p1] != 1 {
		t.Fatalf("after t1: marking = %v", m)
	}
	if fired, err := n.FireSequence(m, []Transition{t2, t4}); err != nil || fired != 2 {
		t.Fatalf("FireSequence = %d, %v", fired, err)
	}
	if m.Total() != 0 {
		t.Fatalf("marking not empty after cycle: %v", m)
	}
}

func TestFireSequenceStopsAtFailure(t *testing.T) {
	n := buildFig3a()
	t2, _ := n.TransitionByName("t2")
	m := n.InitialMarking()
	fired, err := n.FireSequence(m, []Transition{t2})
	if err == nil || fired != 0 {
		t.Fatalf("FireSequence = %d, %v", fired, err)
	}
	if !m.Equal(n.InitialMarking()) {
		t.Fatalf("failed sequence must not change marking before failing step: %v", m)
	}
}

func TestMarkingHelpers(t *testing.T) {
	m := Marking{1, 0, 2}
	if !m.Clone().Equal(m) {
		t.Fatal("clone not equal")
	}
	c := m.Clone()
	c[0] = 9
	if m[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if m.Equal(Marking{1, 0}) {
		t.Fatal("different lengths compare equal")
	}
	if !m.Covers(Marking{1, 0, 1}) || m.Covers(Marking{2, 0, 0}) {
		t.Fatal("Covers wrong")
	}
	if m.Total() != 3 {
		t.Fatalf("Total = %d", m.Total())
	}
	if m.Key() != "1,0,2" || m.String() != "(1,0,2)" {
		t.Fatalf("Key/String = %q / %q", m.Key(), m.String())
	}
}

func TestDeadlocked(t *testing.T) {
	b := NewBuilder("dead")
	p := b.Place("p")
	tr := b.Transition("t")
	b.Arc(p, tr)
	n := b.Build()
	if !n.Deadlocked(n.InitialMarking()) {
		t.Fatal("empty net with one disabled transition should be deadlocked")
	}
	m := n.InitialMarking()
	m[p] = 1
	if n.Deadlocked(m) {
		t.Fatal("t is enabled")
	}
}

func TestFiringCount(t *testing.T) {
	n := buildFig3a()
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	f := n.FiringCount([]Transition{t1, t2, t1})
	if want := []int{2, 1, 0, 0, 0}; !reflect.DeepEqual(f, want) {
		t.Fatalf("FiringCount = %v, want %v", f, want)
	}
}

func TestIncidenceAndApply(t *testing.T) {
	n := buildFig3a()
	d := n.IncidenceMatrix()
	t1, _ := n.TransitionByName("t1")
	p1, _ := n.PlaceByName("p1")
	if d[t1][p1] != 1 {
		t.Fatalf("D[t1][p1] = %d", d[t1][p1])
	}
	// f = (1,1,0,1,0) is a T-invariant of fig 3a.
	out := n.ApplyFiringVector(n.InitialMarking(), []int{1, 1, 0, 1, 0})
	if out.Total() != 0 {
		t.Fatalf("T-invariant should return to initial marking, got %v", out)
	}
	// Firing t1 twice and t2 once leaves one token in p1 and one in p2.
	out = n.ApplyFiringVector(n.InitialMarking(), []int{2, 1, 0, 0, 0})
	if out[p1] != 1 {
		t.Fatalf("ApplyFiringVector = %v", out)
	}
}

func TestPreMatrixPostMatrix(t *testing.T) {
	n := buildFig3a()
	pre, post := n.PreMatrix(), n.PostMatrix()
	t2, _ := n.TransitionByName("t2")
	p1, _ := n.PlaceByName("p1")
	p2, _ := n.PlaceByName("p2")
	if pre[t2][p1] != 1 || pre[t2][p2] != 0 {
		t.Fatalf("Pre row for t2 = %v", pre[t2])
	}
	if post[t2][p2] != 1 || post[t2][p1] != 0 {
		t.Fatalf("Post row for t2 = %v", post[t2])
	}
}

func TestWeightAccessors(t *testing.T) {
	b := NewBuilder("w")
	tr := b.Transition("t")
	p := b.Place("p")
	q := b.Place("q")
	b.WeightedArc(p, tr, 3)
	b.WeightedArcTP(tr, q, 2)
	n := b.Build()
	if n.Weight(p, tr) != 3 || n.Weight(q, tr) != 0 {
		t.Fatal("Weight wrong")
	}
	if n.WeightTP(tr, q) != 2 || n.WeightTP(tr, p) != 0 {
		t.Fatal("WeightTP wrong")
	}
}

func TestAccumulatedArcWeights(t *testing.T) {
	b := NewBuilder("acc")
	tr := b.Transition("t")
	p := b.Place("p")
	b.Arc(p, tr)
	b.WeightedArc(p, tr, 2)
	n := b.Build()
	if n.Weight(p, tr) != 3 {
		t.Fatalf("accumulated weight = %d, want 3", n.Weight(p, tr))
	}
}

func TestStringOutputs(t *testing.T) {
	n := buildFig3a()
	s := n.String()
	for _, frag := range []string{"fig3a", "t1", "(source)", "p1"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() missing %q:\n%s", frag, s)
		}
	}
	dot := n.DOT()
	for _, frag := range []string{"digraph", "shape=circle", "shape=box", "->"} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, dot)
		}
	}
}

func TestArcsDeterministic(t *testing.T) {
	n := buildFig3a()
	a1 := n.Arcs()
	a2 := n.Arcs()
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("Arcs not deterministic")
	}
	// p→t arcs first.
	if a1[0].FromKind != PlaceNode {
		t.Fatalf("first arc kind = %v", a1[0].FromKind)
	}
}

func TestNodeKindString(t *testing.T) {
	if PlaceNode.String() != "place" || TransitionNode.String() != "transition" {
		t.Fatal("NodeKind strings wrong")
	}
	if got := NodeKind(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestDOTMarkedPlacesAndWeights(t *testing.T) {
	b := NewBuilder("dotted")
	p := b.MarkedPlace("p", 3)
	tr := b.Transition("t")
	q := b.Place("q")
	b.WeightedArc(p, tr, 2)
	b.ArcTP(tr, q)
	n := b.Build()
	dot := n.DOT()
	if !strings.Contains(dot, "●3") {
		t.Fatalf("marked place label missing:\n%s", dot)
	}
	if !strings.Contains(dot, `label="2"`) {
		t.Fatalf("weight label missing:\n%s", dot)
	}
}

func TestChainLeadingKindAndSingleNode(t *testing.T) {
	b := NewBuilder("c")
	p := b.Place("p")
	tr := b.Transition("t")
	b.Chain(p, tr) // place-led chain
	n := b.Build()
	if n.Weight(p, tr) != 1 {
		t.Fatal("place-led chain failed")
	}
	// A single node chain is a no-op.
	b2 := NewBuilder("c2")
	b2.Chain(b2.Place("x"))
	if b2.Build().NumPlaces() != 1 {
		t.Fatal("single-node chain broke the builder")
	}
}

func TestFiguresAllValidate(t *testing.T) {
	// Every FC figure net passes Validate; figure1b is the designed
	// exception.
	for name, build := range map[string]func() *Net{
		"fig3a": buildFig3a,
		"mg":    buildMarkedGraph,
	} {
		if err := build().Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

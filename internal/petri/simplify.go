package petri

import "fmt"

// Simplify applies Murata's classical structural reduction rules (Petri
// nets survey [Murata 1989], Fig. 18) until no rule applies, returning the
// reduced net and a human-readable trace of the rewrites. The implemented
// rules preserve liveness, boundedness and safeness:
//
//   - FST, fusion of series transitions: p's unique producer t1 and unique
//     consumer t2 (with p as t2's only input, unit weights) merge into one
//     transition.
//   - FSP, fusion of series places: a transition t with exactly one input
//     place and one output place (unit weights, t the places' unique
//     link) is removed, its places merged.
//   - FPT, fusion of parallel transitions: transitions with identical
//     presets and postsets are duplicates; one survives.
//   - FPP, fusion of parallel places: places with identical producers,
//     consumers and initial marking are duplicates; one survives.
//   - ELT, elimination of self-loop transitions: a transition whose preset
//     equals its postset (one place, unit weights) does nothing.
//
// Names of fused nodes are joined with '+', so reduced nets stay readable
// in reports. Source/sink transitions and choice/merge places are left
// untouched — exactly the structure quasi-static scheduling cares about.
func Simplify(n *Net) (*Net, []string) {
	var trace []string
	for {
		rewritten, step := simplifyOnce(n)
		if step == "" {
			return n, trace
		}
		trace = append(trace, step)
		n = rewritten
	}
}

// simplifyOnce applies the first applicable rule and returns the new net;
// step is empty when nothing applies.
func simplifyOnce(n *Net) (*Net, string) {
	// FPT: duplicate transitions (sources excluded: they model distinct
	// environment inputs).
	for a := Transition(0); int(a) < n.NumTransitions(); a++ {
		for b := a + 1; int(b) < n.NumTransitions(); b++ {
			if sameArcRefs(n.Pre(a), n.Pre(b)) && sameArcRefs(n.Post(a), n.Post(b)) &&
				len(n.Pre(a)) > 0 {
				return rebuildWithout(n, map[Transition]bool{b: true}, nil, nil, nil),
					fmt.Sprintf("FPT: drop %s (parallel to %s)", n.TransitionName(b), n.TransitionName(a))
			}
		}
	}
	// FPP: duplicate places.
	init := n.InitialMarking()
	for p := Place(0); int(p) < n.NumPlaces(); p++ {
		for q := p + 1; int(q) < n.NumPlaces(); q++ {
			if init[p] == init[q] && sameTArcs(n.Producers(p), n.Producers(q)) &&
				sameTArcs(n.Consumers(p), n.Consumers(q)) &&
				len(n.Producers(p))+len(n.Consumers(p)) > 0 {
				return rebuildWithout(n, nil, map[Place]bool{q: true}, nil, nil),
					fmt.Sprintf("FPP: drop %s (parallel to %s)", n.PlaceName(q), n.PlaceName(p))
			}
		}
	}
	// ELT: self-loop transitions, kept when they are the place's only
	// activity (removing them would orphan the place).
	for t := Transition(0); int(t) < n.NumTransitions(); t++ {
		if len(n.Pre(t)) == 1 && len(n.Post(t)) == 1 &&
			n.Pre(t)[0] == n.Post(t)[0] && n.Pre(t)[0].Weight == 1 {
			p := n.Pre(t)[0].Place
			if len(n.Producers(p)) < 2 && len(n.Consumers(p)) < 2 {
				continue
			}
			return rebuildWithout(n, map[Transition]bool{t: true}, nil, nil, nil),
				fmt.Sprintf("ELT: drop self-loop %s", n.TransitionName(t))
		}
	}
	// FST: series transitions via an intermediate place.
	for p := Place(0); int(p) < n.NumPlaces(); p++ {
		prod, cons := n.Producers(p), n.Consumers(p)
		if len(prod) != 1 || len(cons) != 1 || init[p] != 0 {
			continue
		}
		t1, t2 := prod[0].Transition, cons[0].Transition
		if t1 == t2 || prod[0].Weight != 1 || cons[0].Weight != 1 {
			continue
		}
		// t2 must have p as its only input so the fusion cannot block;
		// environment interfaces stay untouched (t1 not a source, t2 not
		// a sink).
		if len(n.Pre(t2)) != 1 || len(n.Pre(t1)) == 0 || len(n.Post(t2)) == 0 {
			continue
		}
		fused := map[Transition]Transition{t2: t1}
		return rebuildWithout(n, map[Transition]bool{t2: true}, map[Place]bool{p: true}, fused, nil),
			fmt.Sprintf("FST: fuse %s·%s through %s", n.TransitionName(t1), n.TransitionName(t2), n.PlaceName(p))
	}
	// FSP: series places via an intermediate transition.
	for t := Transition(0); int(t) < n.NumTransitions(); t++ {
		if len(n.Pre(t)) != 1 || len(n.Post(t)) != 1 {
			continue
		}
		in, out := n.Pre(t)[0], n.Post(t)[0]
		if in.Weight != 1 || out.Weight != 1 || in.Place == out.Place {
			continue
		}
		// The output place must have t as its only producer so merging
		// cannot create new token sources, the input place must have t as
		// its only consumer so no choice is destroyed, and both places
		// must stay connected to the rest of the net (no environment
		// buffers are fused away).
		if len(n.Producers(out.Place)) != 1 || len(n.Consumers(in.Place)) != 1 {
			continue
		}
		if len(n.Producers(in.Place)) == 0 || len(n.Consumers(out.Place)) == 0 {
			continue
		}
		fusedP := map[Place]Place{out.Place: in.Place}
		return rebuildWithout(n, map[Transition]bool{t: true}, map[Place]bool{out.Place: true}, nil, fusedP),
			fmt.Sprintf("FSP: fuse %s·%s through %s", n.PlaceName(in.Place), n.PlaceName(out.Place), n.TransitionName(t))
	}
	return n, ""
}

// rebuildWithout reconstructs the net dropping the given nodes; fusedT
// redirects a dropped transition's arcs onto its fusion partner, fusedP
// likewise for places. Names of fusion partners are joined.
func rebuildWithout(n *Net, dropT map[Transition]bool, dropP map[Place]bool,
	fusedT map[Transition]Transition, fusedP map[Place]Place) *Net {
	b := NewBuilder(n.Name())
	init := n.InitialMarking()

	placeName := make([]string, n.NumPlaces())
	for p := Place(0); int(p) < n.NumPlaces(); p++ {
		placeName[p] = n.PlaceName(p)
	}
	transName := make([]string, n.NumTransitions())
	for t := Transition(0); int(t) < n.NumTransitions(); t++ {
		transName[t] = n.TransitionName(t)
	}
	for old, into := range fusedP {
		placeName[into] = placeName[into] + "+" + placeName[old]
	}
	for old, into := range fusedT {
		transName[into] = transName[into] + "+" + transName[old]
	}

	newP := make([]Place, n.NumPlaces())
	for p := Place(0); int(p) < n.NumPlaces(); p++ {
		if dropP[p] {
			continue
		}
		tokens := init[p]
		// A fused-away place's tokens move to its partner.
		for old, into := range fusedP {
			if into == p {
				tokens += init[old]
			}
		}
		newP[p] = b.MarkedPlace(placeName[p], tokens)
	}
	mapPlace := func(p Place) Place {
		if into, ok := fusedP[p]; ok {
			p = into
		}
		return newP[p]
	}

	newT := make([]Transition, n.NumTransitions())
	for t := Transition(0); int(t) < n.NumTransitions(); t++ {
		if dropT[t] {
			continue
		}
		newT[t] = b.Transition(transName[t])
	}
	// keepArc reports whether an arc endpoint place survives (directly or
	// through fusion).
	keepArc := func(p Place) bool {
		if !dropP[p] {
			return true
		}
		_, fused := fusedP[p]
		return fused
	}
	addArcs := func(from Transition, into Transition) {
		for _, a := range n.Pre(from) {
			if keepArc(a.Place) {
				b.WeightedArc(mapPlace(a.Place), newT[into], a.Weight)
			}
		}
		for _, a := range n.Post(from) {
			if keepArc(a.Place) {
				b.WeightedArcTP(newT[into], mapPlace(a.Place), a.Weight)
			}
		}
	}
	for t := Transition(0); int(t) < n.NumTransitions(); t++ {
		if dropT[t] {
			continue
		}
		addArcs(t, t)
	}
	// Arcs of fused-away transitions attach to their partners; the
	// dropped intermediate place's arcs vanish with it (FST drops the
	// place without a fusion target).
	for old, into := range fusedT {
		addArcs(old, into)
	}
	return b.Build()
}

func sameArcRefs(a, b []ArcRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameTArcs(a, b []TArc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

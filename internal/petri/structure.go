package petri

import "sort"

// IsMarkedGraph reports whether every place has at most one input and at
// most one output transition. Marked graphs model concurrency and
// synchronisation but no conflict; SDF graphs map onto them.
func (n *Net) IsMarkedGraph() bool {
	for p := 0; p < n.NumPlaces(); p++ {
		if len(n.placeIn[p]) > 1 || len(n.placeOut[p]) > 1 {
			return false
		}
	}
	return true
}

// IsConflictFree reports whether every place has at most one output
// transition. T-reductions produced by the QSS reduction algorithm are
// conflict-free by construction.
func (n *Net) IsConflictFree() bool {
	for p := 0; p < n.NumPlaces(); p++ {
		if len(n.placeOut[p]) > 1 {
			return false
		}
	}
	return true
}

// IsStateMachine reports whether every transition has exactly one input and
// one output place, each with unit weight.
func (n *Net) IsStateMachine() bool {
	for t := 0; t < n.NumTransitions(); t++ {
		if len(n.pre[t]) != 1 || len(n.post[t]) != 1 {
			return false
		}
		if n.pre[t][0].Weight != 1 || n.post[t][0].Weight != 1 {
			return false
		}
	}
	return true
}

// IsFreeChoice reports whether the net is free-choice: every arc from a
// place is either the unique outgoing arc of that place or the unique
// incoming arc of its target transition. Equivalently, if a place has
// several output transitions, each of those transitions has that place as
// its only input. This guarantees that whenever one output transition of a
// choice place is enabled, all of them are.
func (n *Net) IsFreeChoice() bool {
	for p := 0; p < n.NumPlaces(); p++ {
		if len(n.placeOut[p]) <= 1 {
			continue
		}
		for _, ta := range n.placeOut[p] {
			if len(n.pre[ta.Transition]) != 1 {
				return false
			}
		}
	}
	return true
}

// IsExtendedFreeChoice reports whether every pair of transitions sharing an
// input place has identical presets (the equal-conflict generalisation of
// free choice used by Teruel for weighted nets).
func (n *Net) IsExtendedFreeChoice() bool {
	for p := 0; p < n.NumPlaces(); p++ {
		outs := n.placeOut[p]
		for i := 1; i < len(outs); i++ {
			if !n.samePreset(outs[0].Transition, outs[i].Transition) {
				return false
			}
		}
	}
	return true
}

func (n *Net) samePreset(a, b Transition) bool {
	if len(n.pre[a]) != len(n.pre[b]) {
		return false
	}
	for i := range n.pre[a] {
		if n.pre[a][i] != n.pre[b][i] {
			return false
		}
	}
	return true
}

// EqualConflict reports whether transitions a and b are in equal-conflict
// relation: Pre[P,a] = Pre[P,b] ≠ 0 (Teruel). In a free-choice net two
// distinct transitions are in equal conflict exactly when they share their
// (single) input place.
func (n *Net) EqualConflict(a, b Transition) bool {
	if len(n.pre[a]) == 0 || len(n.pre[b]) == 0 {
		return false
	}
	return n.samePreset(a, b)
}

// ConflictCluster is a maximal set of transitions that are pairwise in
// equal-conflict relation, together with the choice place(s) they share.
// In a free-choice net every cluster with more than one transition stems
// from exactly one choice place.
type ConflictCluster struct {
	Places      []Place
	Transitions []Transition
}

// ConflictClusters partitions the transitions with non-empty presets into
// equal-conflict clusters, sorted by first transition index. Source
// transitions (empty preset) are never part of a cluster.
func (n *Net) ConflictClusters() []ConflictCluster {
	seen := make([]bool, n.NumTransitions())
	var clusters []ConflictCluster
	for t := Transition(0); int(t) < n.NumTransitions(); t++ {
		if seen[t] || len(n.pre[t]) == 0 {
			continue
		}
		cluster := ConflictCluster{Transitions: []Transition{t}}
		seen[t] = true
		for u := t + 1; int(u) < n.NumTransitions(); u++ {
			if !seen[u] && n.EqualConflict(t, u) {
				cluster.Transitions = append(cluster.Transitions, u)
				seen[u] = true
			}
		}
		placeSet := map[Place]bool{}
		for _, a := range n.pre[t] {
			placeSet[a.Place] = true
		}
		for p := range placeSet {
			cluster.Places = append(cluster.Places, p)
		}
		sort.Slice(cluster.Places, func(i, j int) bool { return cluster.Places[i] < cluster.Places[j] })
		clusters = append(clusters, cluster)
	}
	return clusters
}

// FreeChoiceSets returns only the clusters with ≥ 2 transitions: the
// decision points the QSS algorithm must resolve.
func (n *Net) FreeChoiceSets() []ConflictCluster {
	var out []ConflictCluster
	for _, c := range n.ConflictClusters() {
		if len(c.Transitions) > 1 {
			out = append(out, c)
		}
	}
	return out
}

// StronglyConnected reports whether the underlying directed graph (places
// and transitions as vertices, arcs as edges) is strongly connected.
// Embedded-system nets with source/sink transitions never are; the check
// matters because classic free-choice results (Hack) assume it.
func (n *Net) StronglyConnected() bool {
	v := n.NumPlaces() + n.NumTransitions()
	if v == 0 {
		return true
	}
	// Vertex numbering: places 0..|P|-1, transitions |P|..|P|+|T|-1.
	fwd := make([][]int, v)
	rev := make([][]int, v)
	addEdge := func(a, b int) {
		fwd[a] = append(fwd[a], b)
		rev[b] = append(rev[b], a)
	}
	for p := 0; p < n.NumPlaces(); p++ {
		for _, ta := range n.placeOut[p] {
			addEdge(p, n.NumPlaces()+int(ta.Transition))
		}
	}
	for t := 0; t < n.NumTransitions(); t++ {
		for _, pa := range n.post[t] {
			addEdge(n.NumPlaces()+t, int(pa.Place))
		}
	}
	reach := func(adj [][]int) int {
		seen := make([]bool, v)
		stack := []int{0}
		seen[0] = true
		count := 0
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			count++
			for _, y := range adj[x] {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		return count
	}
	return reach(fwd) == v && reach(rev) == v
}

// WeaklyConnected reports whether the underlying undirected graph is
// connected (ignoring isolated comparison when the net is empty).
func (n *Net) WeaklyConnected() bool {
	v := n.NumPlaces() + n.NumTransitions()
	if v == 0 {
		return true
	}
	adj := make([][]int, v)
	link := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for p := 0; p < n.NumPlaces(); p++ {
		for _, ta := range n.placeOut[p] {
			link(p, n.NumPlaces()+int(ta.Transition))
		}
	}
	for t := 0; t < n.NumTransitions(); t++ {
		for _, pa := range n.post[t] {
			link(n.NumPlaces()+t, int(pa.Place))
		}
	}
	seen := make([]bool, v)
	stack := []int{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, y := range adj[x] {
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	return count == v
}

// Classify summarises the structural class of the net for reports.
func (n *Net) Classify() string {
	switch {
	case n.IsMarkedGraph():
		return "marked graph"
	case n.IsConflictFree():
		return "conflict-free"
	case n.IsFreeChoice():
		return "free-choice"
	case n.IsExtendedFreeChoice():
		return "extended free-choice"
	default:
		return "general"
	}
}

package petri

import "testing"

func TestNodeSet(t *testing.T) {
	s := NewNodeSet(130)
	for _, i := range []int{0, 63, 64, 129} {
		if s.Has(i) {
			t.Fatalf("empty set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("set missing %d after Add", i)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	if s.Has(5000) {
		t.Fatal("out-of-range Has must be false, not panic")
	}
	if NewNodeSet(0) == nil {
		// Zero-size sets are valid (empty nets); Has on them is false.
		t.Log("zero-size NodeSet is nil-backed")
	}
}

// fingerprintNet is a small weighted net with a choice, used by the
// fingerprint tests below.
func fingerprintNet(names []string) *Net {
	b := NewBuilder("fp")
	src := b.Transition("src")
	p := b.MarkedPlace("p", 2)
	b.WeightedArcTP(src, p, 2)
	var alts []Transition
	for _, nm := range names {
		alts = append(alts, b.Transition(nm))
		b.Arc(p, alts[len(alts)-1])
	}
	q := b.Place("q")
	b.WeightedArcTP(alts[0], q, 3)
	sink := b.Transition("sink")
	b.WeightedArc(q, sink, 3)
	return b.Build()
}

func TestInducedFingerprintMatchesMaterialisedSubnet(t *testing.T) {
	n := fingerprintNet([]string{"a", "b"})
	// Sweep every subset of a few nodes deterministically: the bitset
	// fingerprint must equal the fingerprint of the Builder-materialised
	// induced subnet, for every kept-node combination.
	nT, nP := n.NumTransitions(), n.NumPlaces()
	for mask := 0; mask < 1<<(nT+nP); mask++ {
		keepT := NewNodeSet(nT)
		keepP := NewNodeSet(nP)
		var listT []Transition
		var listP []Place
		for t := 0; t < nT; t++ {
			if mask&(1<<t) != 0 {
				keepT.Add(t)
				listT = append(listT, Transition(t))
			}
		}
		for p := 0; p < nP; p++ {
			if mask&(1<<(nT+p)) != 0 {
				keepP.Add(p)
				listP = append(listP, Place(p))
			}
		}
		sub := n.InducedSubnet("sub", listT, listP)
		if got, want := n.InducedFingerprint(keepT, keepP), sub.Net.Fingerprint(); got != want {
			t.Fatalf("mask %b: induced fingerprint %x != materialised subnet fingerprint %x", mask, got, want)
		}
	}
	// nil masks mean "keep everything".
	if n.InducedFingerprint(nil, nil) != n.Fingerprint() {
		t.Fatal("nil masks must fingerprint the whole net")
	}
}

func TestFingerprintIsomorphismInvariant(t *testing.T) {
	// Renaming nodes and permuting declaration order must not change the
	// fingerprint (it hashes an order-independent multiset of structural
	// node signatures).
	a := fingerprintNet([]string{"a", "b"})
	b := fingerprintNet([]string{"zz", "yy"})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("renamed net fingerprints differently")
	}
	// The canonical twin is an isomorphic relabelling by construction.
	if tw := a.CanonicalNet(); tw.Fingerprint() != a.Fingerprint() {
		t.Fatal("canonical twin fingerprints differently")
	}
	// A genuine structural change must (for this net) move the fingerprint:
	// not guaranteed in general — FNV buckets may collide — but a fixed
	// regression net keeps the cheap-reject property honest.
	c := fingerprintNet([]string{"a", "b", "c"})
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("extra choice alternative left the fingerprint unchanged")
	}
}

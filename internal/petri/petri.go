// Package petri implements the Petri-net kernel used throughout the
// repository: weighted place/transition nets, markings and the firing rule,
// structural queries (presets, postsets, clusters), the net subclasses that
// matter for quasi-static scheduling (marked graphs, conflict-free nets,
// free-choice nets, state machines) and incidence matrices.
//
// The model follows Murata's survey ("Petri nets: properties, analysis and
// applications", Proc. IEEE 1989) and the conventions of Sgroi et al.
// (DAC 1999): a net is a triple (P, T, F) with F : (T×P) ∪ (P×T) → ℕ the
// weighted flow relation. Source and sink transitions (empty preset or
// postset) model the environment and are first-class citizens.
package petri

import (
	"fmt"
	"sort"
	"sync"
)

// NodeKind distinguishes the two vertex classes of the bipartite net graph.
type NodeKind int

const (
	// PlaceNode identifies a place vertex.
	PlaceNode NodeKind = iota
	// TransitionNode identifies a transition vertex.
	TransitionNode
)

func (k NodeKind) String() string {
	switch k {
	case PlaceNode:
		return "place"
	case TransitionNode:
		return "transition"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Place is a typed index into a net's place set.
type Place int

// Transition is a typed index into a net's transition set.
type Transition int

// Arc is one weighted edge of the flow relation. Exactly one of the two
// directions is encoded by From/To kinds: place→transition (an input arc,
// consuming) or transition→place (an output arc, producing).
type Arc struct {
	FromKind NodeKind
	From     int
	To       int
	Weight   int
}

// Net is an immutable weighted place/transition net. Build one with a
// Builder; the zero Net is empty and valid.
//
// All per-node relations are precomputed at Build time so queries are O(1)
// or O(degree) and never allocate.
type Net struct {
	name        string
	placeNames  []string
	transNames  []string
	placeIndex  map[string]Place
	transIndex  map[string]Transition
	pre         [][]ArcRef // pre[t]: input arcs of transition t (place, weight)
	post        [][]ArcRef // post[t]: output arcs of transition t
	placeIn     [][]TArc   // placeIn[p]: producing transitions of p
	placeOut    [][]TArc   // placeOut[p]: consuming transitions of p
	initialMark Marking

	// canonOnce/canon memoise CanonicalForm: the net is immutable, so
	// the canonical relabelling is computed at most once per Net and
	// shared across goroutines (see hash.go).
	canonOnce sync.Once
	canon     *CanonicalForm
}

// ArcRef is a weighted reference from a transition to a place.
type ArcRef struct {
	Place  Place
	Weight int
}

// TArc is a weighted reference from a place to a transition.
type TArc struct {
	Transition Transition
	Weight     int
}

// Name reports the net's name (may be empty).
func (n *Net) Name() string { return n.name }

// NumPlaces reports |P|.
func (n *Net) NumPlaces() int { return len(n.placeNames) }

// NumTransitions reports |T|.
func (n *Net) NumTransitions() int { return len(n.transNames) }

// PlaceName reports the name of place p.
func (n *Net) PlaceName(p Place) string { return n.placeNames[p] }

// TransitionName reports the name of transition t.
func (n *Net) TransitionName(t Transition) string { return n.transNames[t] }

// PlaceByName looks a place up by name.
func (n *Net) PlaceByName(name string) (Place, bool) {
	p, ok := n.placeIndex[name]
	return p, ok
}

// TransitionByName looks a transition up by name.
func (n *Net) TransitionByName(name string) (Transition, bool) {
	t, ok := n.transIndex[name]
	return t, ok
}

// Pre returns the input arcs (preset with weights) of transition t.
// The returned slice must not be modified.
func (n *Net) Pre(t Transition) []ArcRef { return n.pre[t] }

// Post returns the output arcs (postset with weights) of transition t.
// The returned slice must not be modified.
func (n *Net) Post(t Transition) []ArcRef { return n.post[t] }

// Producers returns the transitions producing into place p, with weights.
func (n *Net) Producers(p Place) []TArc { return n.placeIn[p] }

// Consumers returns the transitions consuming from place p, with weights.
func (n *Net) Consumers(p Place) []TArc { return n.placeOut[p] }

// InitialMarking returns a copy of the net's initial marking μ0.
func (n *Net) InitialMarking() Marking { return n.initialMark.Clone() }

// Weight reports F(p,t), the weight of the arc from place p to transition
// t, or zero when no such arc exists.
func (n *Net) Weight(p Place, t Transition) int {
	for _, a := range n.pre[t] {
		if a.Place == p {
			return a.Weight
		}
	}
	return 0
}

// WeightTP reports F(t,p), the weight of the arc from transition t to place
// p, or zero when no such arc exists.
func (n *Net) WeightTP(t Transition, p Place) int {
	for _, a := range n.post[t] {
		if a.Place == p {
			return a.Weight
		}
	}
	return 0
}

// Places returns all place indices in order. The slice is fresh.
func (n *Net) Places() []Place {
	ps := make([]Place, n.NumPlaces())
	for i := range ps {
		ps[i] = Place(i)
	}
	return ps
}

// Transitions returns all transition indices in order. The slice is fresh.
func (n *Net) Transitions() []Transition {
	ts := make([]Transition, n.NumTransitions())
	for i := range ts {
		ts[i] = Transition(i)
	}
	return ts
}

// SourceTransitions returns the transitions with empty preset. They model
// inputs from the environment (interrupts, periodic events).
func (n *Net) SourceTransitions() []Transition {
	var out []Transition
	for t := range n.pre {
		if len(n.pre[t]) == 0 {
			out = append(out, Transition(t))
		}
	}
	return out
}

// SinkTransitions returns the transitions with empty postset. They model
// outputs to the environment.
func (n *Net) SinkTransitions() []Transition {
	var out []Transition
	for t := range n.post {
		if len(n.post[t]) == 0 {
			out = append(out, Transition(t))
		}
	}
	return out
}

// SourcePlaces returns the places with empty preset.
func (n *Net) SourcePlaces() []Place {
	var out []Place
	for p := range n.placeIn {
		if len(n.placeIn[p]) == 0 {
			out = append(out, Place(p))
		}
	}
	return out
}

// SinkPlaces returns the places with empty postset.
func (n *Net) SinkPlaces() []Place {
	var out []Place
	for p := range n.placeOut {
		if len(n.placeOut[p]) == 0 {
			out = append(out, Place(p))
		}
	}
	return out
}

// ChoicePlaces returns the places with more than one output transition
// (called choices or conflicts in the paper).
func (n *Net) ChoicePlaces() []Place {
	var out []Place
	for p := range n.placeOut {
		if len(n.placeOut[p]) > 1 {
			out = append(out, Place(p))
		}
	}
	return out
}

// MergePlaces returns the places with more than one input transition.
func (n *Net) MergePlaces() []Place {
	var out []Place
	for p := range n.placeIn {
		if len(n.placeIn[p]) > 1 {
			out = append(out, Place(p))
		}
	}
	return out
}

// Arcs returns every arc of the flow relation in a deterministic order:
// first all place→transition arcs sorted by (place, transition), then all
// transition→place arcs sorted by (transition, place).
func (n *Net) Arcs() []Arc {
	var arcs []Arc
	for p := range n.placeOut {
		for _, ta := range n.placeOut[p] {
			arcs = append(arcs, Arc{PlaceNode, p, int(ta.Transition), ta.Weight})
		}
	}
	for t := range n.post {
		for _, pa := range n.post[t] {
			arcs = append(arcs, Arc{TransitionNode, t, int(pa.Place), pa.Weight})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].FromKind != arcs[j].FromKind {
			return arcs[i].FromKind == PlaceNode
		}
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	return arcs
}

// String renders a compact multi-line description of the net, suitable for
// debugging and test failure messages.
func (n *Net) String() string {
	s := fmt.Sprintf("net %q: %d places, %d transitions\n", n.name, n.NumPlaces(), n.NumTransitions())
	for t := 0; t < n.NumTransitions(); t++ {
		s += "  " + n.transNames[t] + ":"
		for _, a := range n.pre[t] {
			s += fmt.Sprintf(" %s*%d ->", n.placeNames[a.Place], a.Weight)
		}
		if len(n.pre[t]) == 0 {
			s += " (source) ->"
		}
		for _, a := range n.post[t] {
			s += fmt.Sprintf(" -> %s*%d", n.placeNames[a.Place], a.Weight)
		}
		if len(n.post[t]) == 0 {
			s += " -> (sink)"
		}
		s += "\n"
	}
	return s
}

package petri

import (
	"fmt"
	"sort"
)

// Builder accumulates places, transitions and arcs and then produces an
// immutable Net. Methods panic on structural misuse (duplicate names,
// unknown endpoints, non-positive weights): nets are built by code, not
// from untrusted input — the text-format parser validates before calling.
type Builder struct {
	name       string
	placeNames []string
	transNames []string
	placeIndex map[string]Place
	transIndex map[string]Transition
	preArcs    map[Transition]map[Place]int
	postArcs   map[Transition]map[Place]int
	marking    map[Place]int
}

// NewBuilder creates a Builder for a net with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:       name,
		placeIndex: make(map[string]Place),
		transIndex: make(map[string]Transition),
		preArcs:    make(map[Transition]map[Place]int),
		postArcs:   make(map[Transition]map[Place]int),
		marking:    make(map[Place]int),
	}
}

// Place adds a place with zero initial tokens and returns its handle.
func (b *Builder) Place(name string) Place {
	return b.MarkedPlace(name, 0)
}

// MarkedPlace adds a place carrying tokens initial tokens.
func (b *Builder) MarkedPlace(name string, tokens int) Place {
	if name == "" {
		panic("petri: empty place name")
	}
	if _, dup := b.placeIndex[name]; dup {
		panic(fmt.Sprintf("petri: duplicate place %q", name))
	}
	if _, dup := b.transIndex[name]; dup {
		panic(fmt.Sprintf("petri: name %q already used for a transition", name))
	}
	if tokens < 0 {
		panic(fmt.Sprintf("petri: negative initial marking for %q", name))
	}
	p := Place(len(b.placeNames))
	b.placeNames = append(b.placeNames, name)
	b.placeIndex[name] = p
	if tokens > 0 {
		b.marking[p] = tokens
	}
	return p
}

// Transition adds a transition and returns its handle.
func (b *Builder) Transition(name string) Transition {
	if name == "" {
		panic("petri: empty transition name")
	}
	if _, dup := b.transIndex[name]; dup {
		panic(fmt.Sprintf("petri: duplicate transition %q", name))
	}
	if _, dup := b.placeIndex[name]; dup {
		panic(fmt.Sprintf("petri: name %q already used for a place", name))
	}
	t := Transition(len(b.transNames))
	b.transNames = append(b.transNames, name)
	b.transIndex[name] = t
	return t
}

// Arc adds a unit-weight arc from place p to transition t.
func (b *Builder) Arc(p Place, t Transition) { b.WeightedArc(p, t, 1) }

// ArcTP adds a unit-weight arc from transition t to place p.
func (b *Builder) ArcTP(t Transition, p Place) { b.WeightedArcTP(t, p, 1) }

// WeightedArc adds an arc from place p to transition t with weight w.
// Adding an arc that already exists accumulates the weight.
func (b *Builder) WeightedArc(p Place, t Transition, w int) {
	b.checkPlace(p)
	b.checkTransition(t)
	if w <= 0 {
		panic(fmt.Sprintf("petri: non-positive arc weight %d", w))
	}
	m := b.preArcs[t]
	if m == nil {
		m = make(map[Place]int)
		b.preArcs[t] = m
	}
	m[p] += w
}

// WeightedArcTP adds an arc from transition t to place p with weight w.
// Adding an arc that already exists accumulates the weight.
func (b *Builder) WeightedArcTP(t Transition, p Place, w int) {
	b.checkPlace(p)
	b.checkTransition(t)
	if w <= 0 {
		panic(fmt.Sprintf("petri: non-positive arc weight %d", w))
	}
	m := b.postArcs[t]
	if m == nil {
		m = make(map[Place]int)
		b.postArcs[t] = m
	}
	m[p] += w
}

// Chain is a convenience that threads a token path
// t0 -> p0 -> t1 -> p1 -> ... with unit weights. Arguments must alternate
// Transition, Place, Transition, ... (starting with either kind).
func (b *Builder) Chain(nodes ...interface{}) {
	for i := 0; i+1 < len(nodes); i++ {
		switch from := nodes[i].(type) {
		case Transition:
			p, ok := nodes[i+1].(Place)
			if !ok {
				panic("petri: Chain expects alternating Transition/Place")
			}
			b.ArcTP(from, p)
		case Place:
			t, ok := nodes[i+1].(Transition)
			if !ok {
				panic("petri: Chain expects alternating Place/Transition")
			}
			b.Arc(from, t)
		default:
			panic("petri: Chain accepts only Place and Transition values")
		}
	}
}

// SetMarking overrides the initial marking of place p.
func (b *Builder) SetMarking(p Place, tokens int) {
	b.checkPlace(p)
	if tokens < 0 {
		panic("petri: negative marking")
	}
	if tokens == 0 {
		delete(b.marking, p)
		return
	}
	b.marking[p] = tokens
}

func (b *Builder) checkPlace(p Place) {
	if p < 0 || int(p) >= len(b.placeNames) {
		panic(fmt.Sprintf("petri: unknown place index %d", p))
	}
}

func (b *Builder) checkTransition(t Transition) {
	if t < 0 || int(t) >= len(b.transNames) {
		panic(fmt.Sprintf("petri: unknown transition index %d", t))
	}
}

// Build finalises the net. The Builder may keep being used afterwards;
// subsequent Build calls produce independent nets.
func (b *Builder) Build() *Net {
	n := &Net{
		name:       b.name,
		placeNames: append([]string(nil), b.placeNames...),
		transNames: append([]string(nil), b.transNames...),
		placeIndex: make(map[string]Place, len(b.placeIndex)),
		transIndex: make(map[string]Transition, len(b.transIndex)),
		pre:        make([][]ArcRef, len(b.transNames)),
		post:       make([][]ArcRef, len(b.transNames)),
		placeIn:    make([][]TArc, len(b.placeNames)),
		placeOut:   make([][]TArc, len(b.placeNames)),
	}
	for name, p := range b.placeIndex {
		n.placeIndex[name] = p
	}
	for name, t := range b.transIndex {
		n.transIndex[name] = t
	}
	for t := Transition(0); int(t) < len(b.transNames); t++ {
		n.pre[t] = sortedArcRefs(b.preArcs[t])
		n.post[t] = sortedArcRefs(b.postArcs[t])
		for _, a := range n.pre[t] {
			n.placeOut[a.Place] = append(n.placeOut[a.Place], TArc{t, a.Weight})
		}
		for _, a := range n.post[t] {
			n.placeIn[a.Place] = append(n.placeIn[a.Place], TArc{t, a.Weight})
		}
	}
	n.initialMark = NewMarking(len(b.placeNames))
	for p, k := range b.marking {
		n.initialMark[p] = k
	}
	return n
}

func sortedArcRefs(m map[Place]int) []ArcRef {
	if len(m) == 0 {
		return nil
	}
	out := make([]ArcRef, 0, len(m))
	for p, w := range m {
		out = append(out, ArcRef{p, w})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Place < out[j].Place })
	return out
}

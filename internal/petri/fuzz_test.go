package petri

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that every accepted
// document round-trips through Format. Run the corpus in normal test
// runs; run with -fuzz=FuzzParse for coverage-guided exploration.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"net x\n",
		"place p\ntrans t\narc p -> t\n",
		"place p 3\ntrans t\narc t -> p * 2\n",
		"# comment only\n",
		"net a\nplace p\nplace q\ntrans t\narc p -> t -> q\n",
		"arc nope -> nope\n",
		"place p\nplace p\n",
		"trans t\narc t -> t\n",
		"place p -1\n",
		"net x\nnet y\n",
		"place p\ntrans t\narc p -> t * 0\n",
		strings.Repeat("place p", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		n, err := ParseString(doc)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted documents must round-trip.
		text := Format(n)
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("Format output unparseable: %v\n%s", err, text)
		}
		if back.NumPlaces() != n.NumPlaces() || back.NumTransitions() != n.NumTransitions() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				n.NumPlaces(), n.NumTransitions(), back.NumPlaces(), back.NumTransitions())
		}
		if len(back.Arcs()) != len(n.Arcs()) {
			t.Fatal("round trip changed arcs")
		}
		if !back.InitialMarking().Equal(n.InitialMarking()) {
			t.Fatal("round trip changed marking")
		}
	})
}

// FuzzParsePN checks the .pn front end end-to-end: malformed documents
// must be rejected with an error — never a panic — and accepted documents
// must survive the structural pipeline (Validate, canonical hashing)
// without panicking. The canonical hash must also be invariant under a
// Format round-trip, since Format only renames nothing and reorders
// declarations — exactly the variation the hash is defined to ignore.
func FuzzParsePN(f *testing.F) {
	seeds := []string{
		"",
		"net broken\nplace\n",
		"place p 1\ntrans t\narc p -> t\narc t -> p\n",
		"place a\nplace b\ntrans t u\n",
		"arc -> ->\n",
		"place p 9999999999999999999\n",
		"trans t\narc t -> t * -3\n",
		"net n\nplace p 2\ntrans t\narc p -> t * 2\narc t -> p * 2\n",
		"\x00\x01place p\n",
		"place p q\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		n, err := ParseString(doc)
		if err != nil {
			if n != nil {
				t.Fatal("error with non-nil net")
			}
			return // malformed input must error, never panic
		}
		_ = n.Validate() // must not panic on any accepted net
		h := n.CanonicalHash()
		if h == "" {
			t.Fatal("empty canonical hash")
		}
		back, err := ParseString(Format(n))
		if err != nil {
			t.Fatalf("Format output unparseable: %v", err)
		}
		if bh := back.CanonicalHash(); bh != h {
			t.Fatalf("canonical hash not Format-stable: %s vs %s", h, bh)
		}
	})
}

// FuzzFiring checks the firing rule against arbitrary small nets driven
// by arbitrary firing scripts: no panic, markings stay non-negative, and
// Fire errors exactly when Enabled is false.
func FuzzFiring(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2})
	f.Add(int64(42), []byte{5, 5, 5, 5})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		n := randomNet(seed)
		if n.NumTransitions() == 0 {
			return
		}
		m := n.InitialMarking()
		for _, b := range script {
			tr := Transition(int(b) % n.NumTransitions())
			enabled := n.Enabled(m, tr)
			err := n.Fire(m, tr)
			if enabled && err != nil {
				t.Fatalf("enabled transition failed to fire: %v", err)
			}
			if !enabled && err == nil {
				t.Fatal("disabled transition fired")
			}
			for p, k := range m {
				if k < 0 {
					t.Fatalf("negative marking at place %d: %v", p, m)
				}
			}
		}
	})
}

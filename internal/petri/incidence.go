package petri

// PreMatrix returns the |T|×|P| input matrix: entry [t][p] = F(p,t).
func (n *Net) PreMatrix() [][]int {
	m := make([][]int, n.NumTransitions())
	for t := range m {
		row := make([]int, n.NumPlaces())
		for _, a := range n.pre[t] {
			row[a.Place] = a.Weight
		}
		m[t] = row
	}
	return m
}

// PostMatrix returns the |T|×|P| output matrix: entry [t][p] = F(t,p).
func (n *Net) PostMatrix() [][]int {
	m := make([][]int, n.NumTransitions())
	for t := range m {
		row := make([]int, n.NumPlaces())
		for _, a := range n.post[t] {
			row[a.Place] = a.Weight
		}
		m[t] = row
	}
	return m
}

// IncidenceMatrix returns the |T|×|P| incidence matrix D = Post − Pre.
// Row t is the marking change produced by one firing of transition t, so a
// firing-count vector f satisfies the state equation μ' = μ + fᵀ·D, and a
// T-invariant is an f ≥ 0 with fᵀ·D = 0.
func (n *Net) IncidenceMatrix() [][]int {
	m := make([][]int, n.NumTransitions())
	for t := range m {
		row := make([]int, n.NumPlaces())
		for _, a := range n.post[t] {
			row[a.Place] += a.Weight
		}
		for _, a := range n.pre[t] {
			row[a.Place] -= a.Weight
		}
		m[t] = row
	}
	return m
}

// ApplyFiringVector computes μ + fᵀ·D without simulating an order. The
// result can be negative in intermediate theory contexts; callers that need
// realisability must simulate.
func (n *Net) ApplyFiringVector(m Marking, f []int) Marking {
	out := m.Clone()
	for t := 0; t < n.NumTransitions(); t++ {
		if f[t] == 0 {
			continue
		}
		for _, a := range n.post[t] {
			out[a.Place] += a.Weight * f[t]
		}
		for _, a := range n.pre[t] {
			out[a.Place] -= a.Weight * f[t]
		}
	}
	return out
}

package petri

import "testing"

// benchNet is a 30-stage chain with scattered tokens.
func benchNet() *Net {
	b := NewBuilder("bench")
	prev := b.Transition("t0")
	for i := 1; i <= 30; i++ {
		p := b.MarkedPlace(sprintName("p", i), i%3)
		next := b.Transition(sprintName("t", i))
		b.Chain(prev, p, next)
		prev = next
	}
	return b.Build()
}

func sprintName(prefix string, i int) string {
	buf := []byte(prefix)
	if i == 0 {
		return string(append(buf, '0'))
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(append(buf, digits...))
}

func BenchmarkEnabled(b *testing.B) {
	n := benchNet()
	m := n.InitialMarking()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for t := Transition(0); int(t) < n.NumTransitions(); t++ {
			n.Enabled(m, t)
		}
	}
}

func BenchmarkFireCycle(b *testing.B) {
	n := benchNet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := n.InitialMarking()
		for t := Transition(0); int(t) < n.NumTransitions(); t++ {
			if n.Enabled(m, t) {
				n.MustFire(m, t)
			}
		}
	}
}

func BenchmarkMarkingKey(b *testing.B) {
	n := benchNet()
	m := n.InitialMarking()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Key()
	}
}

func BenchmarkParseFormat(b *testing.B) {
	text := Format(benchNet())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n, err := ParseString(text)
		if err != nil {
			b.Fatal(err)
		}
		_ = Format(n)
	}
}

func BenchmarkSimplify(b *testing.B) {
	n := benchNet()
	for i := 0; i < b.N; i++ {
		Simplify(n)
	}
}

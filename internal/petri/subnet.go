package petri

import "sort"

// Subnet is a net induced by a subset of a parent net's nodes, together
// with the index maps back to the parent. The QSS reduction algorithm
// produces T-reductions as subnets so schedules can be reported in terms of
// the original transitions.
type Subnet struct {
	Net *Net
	// ParentPlace[i] is the parent index of subnet place i.
	ParentPlace []Place
	// ParentTransition[i] is the parent index of subnet transition i.
	ParentTransition []Transition
	// placeTo / transTo map parent indices to subnet indices (-1 if dropped).
	placeTo []int
	transTo []int
}

// InducedSubnet builds the subnet of n induced by the given transitions and
// places: all arcs of n between kept nodes are preserved with their
// weights, and the initial marking is restricted to kept places. Node order
// follows the parent's order regardless of the order of the arguments.
func (n *Net) InducedSubnet(name string, keepT []Transition, keepP []Place) *Subnet {
	tKeep := make([]bool, n.NumTransitions())
	for _, t := range keepT {
		tKeep[t] = true
	}
	pKeep := make([]bool, n.NumPlaces())
	for _, p := range keepP {
		pKeep[p] = true
	}

	b := NewBuilder(name)
	s := &Subnet{
		placeTo: make([]int, n.NumPlaces()),
		transTo: make([]int, n.NumTransitions()),
	}
	for i := range s.placeTo {
		s.placeTo[i] = -1
	}
	for i := range s.transTo {
		s.transTo[i] = -1
	}
	init := n.InitialMarking()
	for p := Place(0); int(p) < n.NumPlaces(); p++ {
		if !pKeep[p] {
			continue
		}
		sp := b.MarkedPlace(n.PlaceName(p), init[p])
		s.placeTo[p] = int(sp)
		s.ParentPlace = append(s.ParentPlace, p)
	}
	for t := Transition(0); int(t) < n.NumTransitions(); t++ {
		if !tKeep[t] {
			continue
		}
		st := b.Transition(n.TransitionName(t))
		s.transTo[t] = int(st)
		s.ParentTransition = append(s.ParentTransition, t)
	}
	for t := Transition(0); int(t) < n.NumTransitions(); t++ {
		if !tKeep[t] {
			continue
		}
		st := Transition(s.transTo[t])
		for _, a := range n.Pre(t) {
			if sp := s.placeTo[a.Place]; sp >= 0 {
				b.WeightedArc(Place(sp), st, a.Weight)
			}
		}
		for _, a := range n.Post(t) {
			if sp := s.placeTo[a.Place]; sp >= 0 {
				b.WeightedArcTP(st, Place(sp), a.Weight)
			}
		}
	}
	s.Net = b.Build()
	return s
}

// ToParentTransition maps a subnet transition back to the parent net.
func (s *Subnet) ToParentTransition(t Transition) Transition { return s.ParentTransition[t] }

// ToParentPlace maps a subnet place back to the parent net.
func (s *Subnet) ToParentPlace(p Place) Place { return s.ParentPlace[p] }

// FromParentTransition maps a parent transition into the subnet; ok is
// false when the transition was dropped.
func (s *Subnet) FromParentTransition(t Transition) (Transition, bool) {
	i := s.transTo[t]
	return Transition(i), i >= 0
}

// FromParentPlace maps a parent place into the subnet; ok is false when the
// place was dropped.
func (s *Subnet) FromParentPlace(p Place) (Place, bool) {
	i := s.placeTo[p]
	return Place(i), i >= 0
}

// MapSequenceToParent rewrites a firing sequence of the subnet in terms of
// parent transitions.
func (s *Subnet) MapSequenceToParent(seq []Transition) []Transition {
	out := make([]Transition, len(seq))
	for i, t := range seq {
		out[i] = s.ParentTransition[t]
	}
	return out
}

// TransitionSetKey returns a canonical key identifying the subnet by its
// parent transition set; two reductions with the same key are duplicates
// for scheduling purposes.
func (s *Subnet) TransitionSetKey() string {
	ids := make([]int, len(s.ParentTransition))
	for i, t := range s.ParentTransition {
		ids[i] = int(t)
	}
	sort.Ints(ids)
	key := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		key = appendInt(key, id)
		key = append(key, ',')
	}
	return string(key)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, buf[i:]...)
}

package petri

import (
	"sort"
	"strconv"
)

// Subnet is a net induced by a subset of a parent net's nodes, together
// with the index maps back to the parent. The QSS reduction algorithm
// produces T-reductions as subnets so schedules can be reported in terms of
// the original transitions.
type Subnet struct {
	Net *Net
	// ParentPlace[i] is the parent index of subnet place i.
	ParentPlace []Place
	// ParentTransition[i] is the parent index of subnet transition i.
	ParentTransition []Transition
	// placeTo / transTo map parent indices to subnet indices (-1 if dropped).
	placeTo []int
	transTo []int
}

// InducedSubnet builds the subnet of n induced by the given transitions and
// places: all arcs of n between kept nodes are preserved with their
// weights, and the initial marking is restricted to kept places. Node order
// follows the parent's order regardless of the order of the arguments.
//
// The Net is assembled directly rather than through a Builder: the parent
// is already a validated Net (unique non-empty names, deduplicated sorted
// arcs), so none of the Builder's checks or map-based arc accumulation can
// observe anything, and the solver materialises hundreds of these per
// sweep. Filtering the parent's place-sorted arc lists preserves their
// order because kept nodes keep their relative order.
func (n *Net) InducedSubnet(name string, keepT []Transition, keepP []Place) *Subnet {
	tKeep := make([]bool, n.NumTransitions())
	for _, t := range keepT {
		tKeep[t] = true
	}
	pKeep := make([]bool, n.NumPlaces())
	for _, p := range keepP {
		pKeep[p] = true
	}

	s := &Subnet{
		placeTo: make([]int, n.NumPlaces()),
		transTo: make([]int, n.NumTransitions()),
	}
	for i := range s.placeTo {
		s.placeTo[i] = -1
	}
	for i := range s.transTo {
		s.transTo[i] = -1
	}
	sub := &Net{name: name}
	for p := Place(0); int(p) < n.NumPlaces(); p++ {
		if !pKeep[p] {
			continue
		}
		s.placeTo[p] = len(sub.placeNames)
		s.ParentPlace = append(s.ParentPlace, p)
		sub.placeNames = append(sub.placeNames, n.placeNames[p])
	}
	for t := Transition(0); int(t) < n.NumTransitions(); t++ {
		if !tKeep[t] {
			continue
		}
		s.transTo[t] = len(sub.transNames)
		s.ParentTransition = append(s.ParentTransition, t)
		sub.transNames = append(sub.transNames, n.transNames[t])
	}
	sub.placeIndex = make(map[string]Place, len(sub.placeNames))
	for i, nm := range sub.placeNames {
		sub.placeIndex[nm] = Place(i)
	}
	sub.transIndex = make(map[string]Transition, len(sub.transNames))
	for i, nm := range sub.transNames {
		sub.transIndex[nm] = Transition(i)
	}
	sub.pre = make([][]ArcRef, len(sub.transNames))
	sub.post = make([][]ArcRef, len(sub.transNames))
	sub.placeIn = make([][]TArc, len(sub.placeNames))
	sub.placeOut = make([][]TArc, len(sub.placeNames))
	for st, pt := range s.ParentTransition {
		for _, a := range n.pre[pt] {
			if sp := s.placeTo[a.Place]; sp >= 0 {
				sub.pre[st] = append(sub.pre[st], ArcRef{Place(sp), a.Weight})
				sub.placeOut[sp] = append(sub.placeOut[sp], TArc{Transition(st), a.Weight})
			}
		}
		for _, a := range n.post[pt] {
			if sp := s.placeTo[a.Place]; sp >= 0 {
				sub.post[st] = append(sub.post[st], ArcRef{Place(sp), a.Weight})
				sub.placeIn[sp] = append(sub.placeIn[sp], TArc{Transition(st), a.Weight})
			}
		}
	}
	sub.initialMark = NewMarking(len(sub.placeNames))
	for sp, pp := range s.ParentPlace {
		sub.initialMark[sp] = n.initialMark[pp]
	}
	s.Net = sub
	return s
}

// ToParentTransition maps a subnet transition back to the parent net.
func (s *Subnet) ToParentTransition(t Transition) Transition { return s.ParentTransition[t] }

// ToParentPlace maps a subnet place back to the parent net.
func (s *Subnet) ToParentPlace(p Place) Place { return s.ParentPlace[p] }

// FromParentTransition maps a parent transition into the subnet; ok is
// false when the transition was dropped.
func (s *Subnet) FromParentTransition(t Transition) (Transition, bool) {
	i := s.transTo[t]
	return Transition(i), i >= 0
}

// FromParentPlace maps a parent place into the subnet; ok is false when the
// place was dropped.
func (s *Subnet) FromParentPlace(p Place) (Place, bool) {
	i := s.placeTo[p]
	return Place(i), i >= 0
}

// MapSequenceToParent rewrites a firing sequence of the subnet in terms of
// parent transitions.
func (s *Subnet) MapSequenceToParent(seq []Transition) []Transition {
	out := make([]Transition, len(seq))
	for i, t := range seq {
		out[i] = s.ParentTransition[t]
	}
	return out
}

// TransitionSetKey returns a canonical key identifying the subnet by its
// parent transition set; two reductions with the same key are duplicates
// for scheduling purposes.
func (s *Subnet) TransitionSetKey() string {
	ids := make([]int, len(s.ParentTransition))
	for i, t := range s.ParentTransition {
		ids[i] = int(t)
	}
	sort.Ints(ids)
	key := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		key = strconv.AppendInt(key, int64(id), 10)
		key = append(key, ',')
	}
	return string(key)
}

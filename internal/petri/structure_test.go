package petri

import "testing"

func buildFig1b() *Net {
	b := NewBuilder("fig1b")
	p1 := b.Place("p1")
	p2 := b.MarkedPlace("p2", 1)
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	t3 := b.Transition("t3")
	b.ArcTP(t1, p1)
	b.Arc(p1, t2)
	b.Arc(p2, t2)
	b.Arc(p2, t3)
	return b.Build()
}

func buildMarkedGraph() *Net {
	b := NewBuilder("mg")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	p := b.MarkedPlace("p", 1)
	q := b.Place("q")
	b.Chain(t1, p, t2, q, t1)
	return b.Build()
}

func TestFigure1Classification(t *testing.T) {
	// Figure 1a: free choice.
	b := NewBuilder("fig1a")
	p := b.MarkedPlace("p", 1)
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	b.Arc(p, t1)
	b.Arc(p, t2)
	fc := b.Build()
	if !fc.IsFreeChoice() {
		t.Fatal("figure 1a must be free-choice")
	}
	if fc.IsConflictFree() {
		t.Fatal("figure 1a has a conflict")
	}
	if err := fc.ValidateFreeChoice(); err != nil {
		t.Fatalf("ValidateFreeChoice: %v", err)
	}

	// Figure 1b: not free choice (t2 is enabled only with both tokens).
	nfc := buildFig1b()
	if nfc.IsFreeChoice() {
		t.Fatal("figure 1b must not be free-choice")
	}
	if err := nfc.ValidateFreeChoice(); err == nil {
		t.Fatal("ValidateFreeChoice must fail for figure 1b")
	}
}

func TestSubclassPredicates(t *testing.T) {
	mg := buildMarkedGraph()
	if !mg.IsMarkedGraph() || !mg.IsConflictFree() || !mg.IsFreeChoice() {
		t.Fatal("cycle of two transitions is a marked graph and thus CF and FC")
	}
	if mg.Classify() != "marked graph" {
		t.Fatalf("Classify = %q", mg.Classify())
	}

	fig3a := buildFig3a()
	if fig3a.IsMarkedGraph() || fig3a.IsConflictFree() {
		t.Fatal("fig3a has a choice place")
	}
	if !fig3a.IsFreeChoice() {
		t.Fatal("fig3a is free-choice")
	}
	if fig3a.Classify() != "free-choice" {
		t.Fatalf("Classify = %q", fig3a.Classify())
	}
	if got := buildFig1b().Classify(); got != "general" {
		t.Fatalf("fig1b Classify = %q", got)
	}
}

func TestIsStateMachine(t *testing.T) {
	b := NewBuilder("sm")
	p := b.MarkedPlace("p", 1)
	q := b.Place("q")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	b.Chain(p, t1, q, t2, p)
	n := b.Build()
	if !n.IsStateMachine() {
		t.Fatal("two-state cycle is a state machine")
	}
	if buildFig3a().IsStateMachine() {
		t.Fatal("fig3a has source/sink transitions, not a state machine")
	}
}

func TestExtendedFreeChoice(t *testing.T) {
	// Two transitions sharing BOTH input places: EFC but not FC.
	b := NewBuilder("efc")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	b.Arc(p1, t1)
	b.Arc(p2, t1)
	b.Arc(p1, t2)
	b.Arc(p2, t2)
	n := b.Build()
	if n.IsFreeChoice() {
		t.Fatal("shared double-preset is not ordinary free choice")
	}
	if !n.IsExtendedFreeChoice() {
		t.Fatal("equal presets must be extended free choice")
	}
	if buildFig1b().IsExtendedFreeChoice() {
		t.Fatal("fig1b is not extended free choice either")
	}
}

func TestEqualConflictAndClusters(t *testing.T) {
	n := buildFig3a()
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	t3, _ := n.TransitionByName("t3")
	t4, _ := n.TransitionByName("t4")
	if !n.EqualConflict(t2, t3) {
		t.Fatal("t2 and t3 share preset {p1}")
	}
	if n.EqualConflict(t2, t4) {
		t.Fatal("t2 and t4 are not in conflict")
	}
	if n.EqualConflict(t1, t1) {
		t.Fatal("source transitions are never in equal conflict (Pre = 0)")
	}

	clusters := n.ConflictClusters()
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3 ({t2,t3},{t4},{t5})", len(clusters))
	}
	choice := n.FreeChoiceSets()
	if len(choice) != 1 || len(choice[0].Transitions) != 2 {
		t.Fatalf("FreeChoiceSets = %+v", choice)
	}
	if n.PlaceName(choice[0].Places[0]) != "p1" {
		t.Fatalf("choice place = %q", n.PlaceName(choice[0].Places[0]))
	}
}

func TestConnectivity(t *testing.T) {
	if !buildMarkedGraph().StronglyConnected() {
		t.Fatal("cycle must be strongly connected")
	}
	n := buildFig3a()
	if n.StronglyConnected() {
		t.Fatal("net with sources/sinks is not strongly connected")
	}
	if !n.WeaklyConnected() {
		t.Fatal("fig3a is weakly connected")
	}
	// Two disjoint pieces.
	b := NewBuilder("dis")
	p := b.Place("p")
	q := b.Place("q")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	b.ArcTP(t1, p)
	b.ArcTP(t2, q)
	if b.Build().WeaklyConnected() {
		t.Fatal("disconnected net reported connected")
	}
}

func TestValidate(t *testing.T) {
	if err := buildFig3a().Validate(); err != nil {
		t.Fatalf("fig3a: %v", err)
	}
	if err := buildFig1b().Validate(); err == nil {
		t.Fatal("fig1b must fail validation")
	}
	// Weighted choice arc.
	b := NewBuilder("wchoice")
	p := b.Place("p")
	t1 := b.Transition("t1")
	t2 := b.Transition("t2")
	b.WeightedArc(p, t1, 2)
	b.Arc(p, t2)
	if err := b.Build().Validate(); err == nil {
		t.Fatal("weighted choice arcs must fail validation")
	}
	// Empty net.
	if err := NewBuilder("empty").Build().Validate(); err == nil {
		t.Fatal("empty net must fail validation")
	}
}

func TestSubnetInduction(t *testing.T) {
	n := buildFig3a()
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	t4, _ := n.TransitionByName("t4")
	p1, _ := n.PlaceByName("p1")
	p2, _ := n.PlaceByName("p2")
	s := n.InducedSubnet("r1", []Transition{t1, t2, t4}, []Place{p1, p2})
	if s.Net.NumTransitions() != 3 || s.Net.NumPlaces() != 2 {
		t.Fatalf("subnet shape = %d/%d", s.Net.NumTransitions(), s.Net.NumPlaces())
	}
	if !s.Net.IsConflictFree() {
		t.Fatal("reduced net must be conflict-free")
	}
	st2, ok := s.FromParentTransition(t2)
	if !ok {
		t.Fatal("t2 missing from subnet")
	}
	if s.ToParentTransition(st2) != t2 {
		t.Fatal("transition round-trip failed")
	}
	if _, ok := s.FromParentTransition(Transition(2)); s.Net.TransitionName(st2) != "t2" && !ok {
		t.Fatal("mapping inconsistent")
	}
	sp1, ok := s.FromParentPlace(p1)
	if !ok || s.ToParentPlace(sp1) != p1 {
		t.Fatal("place round-trip failed")
	}
	t3, _ := n.TransitionByName("t3")
	if _, ok := s.FromParentTransition(t3); ok {
		t.Fatal("dropped transition still mapped")
	}
	p3, _ := n.PlaceByName("p3")
	if _, ok := s.FromParentPlace(p3); ok {
		t.Fatal("dropped place still mapped")
	}

	seq := s.MapSequenceToParent([]Transition{0, 1, 2})
	if len(seq) != 3 || seq[0] != t1 {
		t.Fatalf("MapSequenceToParent = %v", seq)
	}
}

func TestSubnetKeepsMarkingAndWeights(t *testing.T) {
	b := NewBuilder("wm")
	tr := b.Transition("t")
	u := b.Transition("u")
	p := b.MarkedPlace("p", 3)
	q := b.Place("q")
	b.WeightedArc(p, tr, 2)
	b.WeightedArcTP(tr, q, 4)
	b.Arc(q, u)
	n := b.Build()
	s := n.InducedSubnet("sub", []Transition{tr}, []Place{p, q})
	sp, _ := s.FromParentPlace(p)
	if s.Net.InitialMarking()[sp] != 3 {
		t.Fatal("marking not preserved")
	}
	st, _ := s.FromParentTransition(tr)
	sq, _ := s.FromParentPlace(q)
	if s.Net.Weight(sp, st) != 2 || s.Net.WeightTP(st, sq) != 4 {
		t.Fatal("weights not preserved")
	}
	// u was dropped; q must have no consumers in the subnet.
	if len(s.Net.Consumers(sq)) != 0 {
		t.Fatal("dropped consumer still present")
	}
}

func TestTransitionSetKey(t *testing.T) {
	n := buildFig3a()
	t1, _ := n.TransitionByName("t1")
	t2, _ := n.TransitionByName("t2")
	s1 := n.InducedSubnet("a", []Transition{t2, t1}, nil)
	s2 := n.InducedSubnet("b", []Transition{t1, t2}, nil)
	if s1.TransitionSetKey() != s2.TransitionSetKey() {
		t.Fatal("keys must be order independent")
	}
	s3 := n.InducedSubnet("c", []Transition{t1}, nil)
	if s1.TransitionSetKey() == s3.TransitionSetKey() {
		t.Fatal("different sets must have different keys")
	}
}

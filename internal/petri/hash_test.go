package petri

import "testing"

// fig3aLike builds the Figure-3a shape with controllable declaration order
// and names so the canonical hash's invariance claims can be tested
// without depending on internal/figures (which would be an import cycle).
func fig3aLike(reversed bool, rename func(string) string) *Net {
	b := NewBuilder("h")
	if rename == nil {
		rename = func(s string) string { return s }
	}
	names := []string{"p1", "p2", "p3", "p4"}
	tnames := []string{"t1", "t2", "t3", "t4", "t5"}
	if reversed {
		for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
			names[i], names[j] = names[j], names[i]
		}
		for i, j := 0, len(tnames)-1; i < j; i, j = i+1, j-1 {
			tnames[i], tnames[j] = tnames[j], tnames[i]
		}
	}
	for _, s := range names {
		b.Place(rename(s))
	}
	for _, s := range tnames {
		b.Transition(rename(s))
	}
	place := func(s string) Place { return b.placeIndex[rename(s)] }
	trans := func(s string) Transition { return b.transIndex[rename(s)] }
	b.Arc(place("p1"), trans("t2"))
	b.Arc(place("p1"), trans("t3"))
	b.ArcTP(trans("t1"), place("p1"))
	b.ArcTP(trans("t2"), place("p2"))
	b.ArcTP(trans("t3"), place("p3"))
	b.Arc(place("p2"), trans("t4"))
	b.Arc(place("p3"), trans("t5"))
	b.ArcTP(trans("t4"), place("p4"))
	b.ArcTP(trans("t5"), place("p4"))
	return b.Build()
}

func TestCanonicalHashInvariantUnderRenamingAndReorder(t *testing.T) {
	base := fig3aLike(false, nil)
	renamed := fig3aLike(false, func(s string) string { return "node_" + s })
	reordered := fig3aLike(true, nil)

	h := base.CanonicalHash()
	if h == "" || len(h) != 64 {
		t.Fatalf("bad hash %q", h)
	}
	if got := renamed.CanonicalHash(); got != h {
		t.Errorf("renaming changed the hash: %s vs %s", got, h)
	}
	if got := reordered.CanonicalHash(); got != h {
		t.Errorf("declaration reorder changed the hash: %s vs %s", got, h)
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := fig3aLike(false, nil)
	h := base.CanonicalHash()

	// Changed marking.
	b := NewBuilder("h")
	p := b.MarkedPlace("p", 1)
	tr := b.Transition("t")
	b.Arc(p, tr)
	marked := b.Build()

	b2 := NewBuilder("h")
	p2 := b2.Place("p")
	tr2 := b2.Transition("t")
	b2.Arc(p2, tr2)
	unmarked := b2.Build()

	if marked.CanonicalHash() == unmarked.CanonicalHash() {
		t.Error("marking change must change the hash")
	}

	// Changed weight.
	b3 := NewBuilder("h")
	p3 := b3.Place("p")
	tr3 := b3.Transition("t")
	b3.WeightedArc(p3, tr3, 2)
	if b3.Build().CanonicalHash() == unmarked.CanonicalHash() {
		t.Error("weight change must change the hash")
	}

	// A different structure entirely.
	if unmarked.CanonicalHash() == h {
		t.Error("different structures must differ")
	}
}

func TestCanonicalFormPermutationRoundTrip(t *testing.T) {
	n := fig3aLike(true, nil)
	cf := n.CanonicalForm()
	if len(cf.PlaceAt) != n.NumPlaces() || len(cf.TransAt) != n.NumTransitions() {
		t.Fatal("permutation size mismatch")
	}
	for i, p := range cf.PlaceAt {
		if cf.PlacePos[p] != i {
			t.Fatalf("place permutation does not round-trip at %d", i)
		}
	}
	for i, tr := range cf.TransAt {
		if cf.TransPos[tr] != i {
			t.Fatalf("transition permutation does not round-trip at %d", i)
		}
	}
}

func TestCanonicalFormIsDeterministic(t *testing.T) {
	n := fig3aLike(false, nil)
	a, b := n.CanonicalForm(), n.CanonicalForm()
	if a.Hash != b.Hash {
		t.Fatal("hash not deterministic")
	}
	for i := range a.PlaceAt {
		if a.PlaceAt[i] != b.PlaceAt[i] {
			t.Fatal("place order not deterministic")
		}
	}
}

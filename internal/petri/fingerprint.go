package petri

import (
	"math/bits"
	"sort"
)

// NodeSet is a bitset over node indices (places or transitions). The QSS
// reduction pipeline in internal/core represents T-reductions as kept-node
// bitsets over the parent net instead of materialised subnets, so the hot
// enumeration/dedup loops never touch the Builder.
type NodeSet []uint64

// NewNodeSet returns an empty set sized for indices 0..n-1.
func NewNodeSet(n int) NodeSet { return make(NodeSet, (n+63)/64) }

// Add inserts index i. i must be within the size the set was created with.
func (s NodeSet) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Has reports whether index i is in the set.
func (s NodeSet) Has(i int) bool {
	w := i >> 6
	return w < len(s) && s[w]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of indices in the set.
func (s NodeSet) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// FNV-1a 64-bit parameters (hash/fnv is not used directly: the fingerprint
// mixes raw uint64 values, not byte streams).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit value into an FNV-1a state, byte by byte.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Fingerprint is InducedFingerprint over the whole net.
func (n *Net) Fingerprint() uint64 { return n.InducedFingerprint(nil, nil) }

// InducedFingerprint returns a cheap isomorphism-invariant fingerprint of
// the subnet induced by the kept transitions and places (nil keeps every
// node), equal to the fingerprint the materialised InducedSubnet would
// produce. It hashes exactly the information of the canonical form's
// round-0 colour partition (hash.go): per kept node its kind, restricted
// marking and sorted kept in/out arc-weight multisets, folded as a sorted
// multiset of per-node hashes together with the kept node counts.
//
// Isomorphic nets therefore always receive equal fingerprints — a
// fingerprint can never split a CanonicalHash equivalence class — while
// unequal fingerprints prove non-isomorphism up to the (negligible) FNV
// collision probability, which can only merge buckets, never split them.
// internal/core's reduction dedup uses this to bucket candidates before
// escalating to the full Weisfeiler–Lehman refinement.
//
// Cost is O(arcs log maxdegree) with no allocation beyond two reusable
// slices; compare O(rounds × arcs × log) for CanonicalForm.
func (n *Net) InducedFingerprint(keepT, keepP NodeSet) uint64 {
	nP, nT := n.NumPlaces(), n.NumTransitions()
	nodes := make([]uint64, 0, nP+nT)
	var weights []int
	keptP, keptT := 0, 0
	init := n.initialMark
	for p := 0; p < nP; p++ {
		if !keeps(keepP, p) {
			continue
		}
		keptP++
		h := fnvMix(fnvOffset64, 'P')
		h = fnvMix(h, uint64(markAt(init, p)))
		weights = weights[:0]
		for _, a := range n.placeIn[p] {
			if keeps(keepT, int(a.Transition)) {
				weights = append(weights, a.Weight)
			}
		}
		h = mixWeights(h, weights)
		weights = weights[:0]
		for _, a := range n.placeOut[p] {
			if keeps(keepT, int(a.Transition)) {
				weights = append(weights, a.Weight)
			}
		}
		h = mixWeights(h, weights)
		nodes = append(nodes, h)
	}
	for t := 0; t < nT; t++ {
		if !keeps(keepT, t) {
			continue
		}
		keptT++
		h := fnvMix(fnvOffset64, 'T')
		weights = weights[:0]
		for _, a := range n.pre[t] {
			if keeps(keepP, int(a.Place)) {
				weights = append(weights, a.Weight)
			}
		}
		h = mixWeights(h, weights)
		weights = weights[:0]
		for _, a := range n.post[t] {
			if keeps(keepP, int(a.Place)) {
				weights = append(weights, a.Weight)
			}
		}
		h = mixWeights(h, weights)
		nodes = append(nodes, h)
	}
	// The multiset of node hashes is order-independent after sorting, so the
	// fold depends only on the induced structure, not on declaration order.
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	fp := fnvMix(fnvOffset64, uint64(keptP))
	fp = fnvMix(fp, uint64(keptT))
	for _, h := range nodes {
		fp = fnvMix(fp, h)
	}
	return fp
}

// keeps reports membership with nil meaning "keep everything".
func keeps(s NodeSet, i int) bool { return s == nil || s.Has(i) }

// mixWeights folds a weight multiset (length plus sorted elements) into h.
func mixWeights(h uint64, ws []int) uint64 {
	sort.Ints(ws)
	h = fnvMix(h, uint64(len(ws)))
	for _, w := range ws {
		h = fnvMix(h, uint64(w))
	}
	return h
}

package petri

import (
	"fmt"
	"strings"
)

// Marking is the token count vector μ, indexed by Place.
type Marking []int

// NewMarking returns the zero marking over n places.
func NewMarking(n int) Marking { return make(Marking, n) }

// Clone returns an independent copy of m.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	copy(c, m)
	return c
}

// Equal reports whether m and o mark every place identically.
func (m Marking) Equal(o Marking) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Covers reports whether m ≥ o componentwise.
func (m Marking) Covers(o Marking) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] < o[i] {
			return false
		}
	}
	return true
}

// Total reports the total number of tokens in the marking.
func (m Marking) Total() int {
	sum := 0
	for _, k := range m {
		sum += k
	}
	return sum
}

// Key returns a compact string usable as a map key for visited-set
// bookkeeping in state-space exploration.
func (m Marking) Key() string {
	var sb strings.Builder
	for i, k := range m {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", k)
	}
	return sb.String()
}

// String renders the marking as (k0, k1, …).
func (m Marking) String() string { return "(" + m.Key() + ")" }

// Enabled reports whether transition t is enabled at marking m in net n:
// every input place p holds at least F(p,t) tokens. Source transitions are
// always enabled.
func (n *Net) Enabled(m Marking, t Transition) bool {
	for _, a := range n.pre[t] {
		if m[a.Place] < a.Weight {
			return false
		}
	}
	return true
}

// EnabledTransitions returns all transitions enabled at m, in index order.
func (n *Net) EnabledTransitions(m Marking) []Transition {
	var out []Transition
	for t := Transition(0); int(t) < n.NumTransitions(); t++ {
		if n.Enabled(m, t) {
			out = append(out, t)
		}
	}
	return out
}

// Fire fires transition t at marking m in place, consuming F(p,t) tokens
// from each input place and producing F(t,p) tokens in each output place.
// It returns an error and leaves m untouched when t is not enabled.
func (n *Net) Fire(m Marking, t Transition) error {
	if !n.Enabled(m, t) {
		return fmt.Errorf("petri: transition %s not enabled at %s", n.transNames[t], m)
	}
	for _, a := range n.pre[t] {
		m[a.Place] -= a.Weight
	}
	for _, a := range n.post[t] {
		m[a.Place] += a.Weight
	}
	return nil
}

// MustFire fires t and panics if it is not enabled. For tests and for
// replaying sequences already known to be fireable.
func (n *Net) MustFire(m Marking, t Transition) {
	if err := n.Fire(m, t); err != nil {
		panic(err)
	}
}

// FireSequence fires the transitions of seq in order starting from m
// (in place). It stops at the first disabled transition, returning the
// number of firings performed and an error describing the failure.
func (n *Net) FireSequence(m Marking, seq []Transition) (int, error) {
	for i, t := range seq {
		if err := n.Fire(m, t); err != nil {
			return i, fmt.Errorf("petri: step %d: %w", i, err)
		}
	}
	return len(seq), nil
}

// Deadlocked reports whether no transition of the net is enabled at m.
// A net with source transitions can never deadlock (sources are always
// enabled).
func (n *Net) Deadlocked(m Marking) bool {
	for t := Transition(0); int(t) < n.NumTransitions(); t++ {
		if n.Enabled(m, t) {
			return false
		}
	}
	return true
}

// SequenceNames resolves a firing sequence to transition names, useful in
// error messages and golden tests.
func (n *Net) SequenceNames(seq []Transition) []string {
	out := make([]string, len(seq))
	for i, t := range seq {
		out[i] = n.transNames[t]
	}
	return out
}

// FiringCount returns the firing-count vector f(σ) of a sequence: entry i
// is the number of occurrences of transition i in seq.
func (n *Net) FiringCount(seq []Transition) []int {
	f := make([]int, n.NumTransitions())
	for _, t := range seq {
		f[t]++
	}
	return f
}

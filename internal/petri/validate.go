package petri

import (
	"errors"
	"fmt"
)

// ErrNotFreeChoice is wrapped by Validate* failures caused by a net that is
// not free-choice.
var ErrNotFreeChoice = errors.New("net is not free-choice")

// ValidateFreeChoice verifies that the net satisfies the structural
// assumptions of the QSS algorithm and returns a descriptive error naming
// the first offending node otherwise.
func (n *Net) ValidateFreeChoice() error {
	for p := 0; p < n.NumPlaces(); p++ {
		if len(n.placeOut[p]) <= 1 {
			continue
		}
		for _, ta := range n.placeOut[p] {
			if len(n.pre[ta.Transition]) != 1 {
				return fmt.Errorf(
					"petri: place %q has several consumers but consumer %q has %d input places: %w",
					n.placeNames[p], n.transNames[ta.Transition], len(n.pre[ta.Transition]), ErrNotFreeChoice)
			}
		}
	}
	return nil
}

// ValidateChoiceUnitWeights checks that every arc out of a choice place has
// unit weight. The paper's free-choice semantics resolves a choice by the
// value of one token; weighted choice arcs would make "one outcome, one
// token" ambiguous. Non-choice arcs may carry any weight (multirate).
func (n *Net) ValidateChoiceUnitWeights() error {
	for p := 0; p < n.NumPlaces(); p++ {
		if len(n.placeOut[p]) <= 1 {
			continue
		}
		for _, ta := range n.placeOut[p] {
			if ta.Weight != 1 {
				return fmt.Errorf("petri: choice place %q has arc of weight %d to %q; choice arcs must have weight 1",
					n.placeNames[p], ta.Weight, n.transNames[ta.Transition])
			}
		}
	}
	return nil
}

// ValidateNonEmpty checks the net has at least one place and transition,
// matching the paper's definition (non-empty finite sets P and T).
func (n *Net) ValidateNonEmpty() error {
	if n.NumPlaces() == 0 {
		return errors.New("petri: net has no places")
	}
	if n.NumTransitions() == 0 {
		return errors.New("petri: net has no transitions")
	}
	return nil
}

// Validate runs every structural check required before quasi-static
// scheduling.
func (n *Net) Validate() error {
	if err := n.ValidateNonEmpty(); err != nil {
		return err
	}
	if err := n.ValidateFreeChoice(); err != nil {
		return err
	}
	return n.ValidateChoiceUnitWeights()
}

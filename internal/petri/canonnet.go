package petri

import (
	"fmt"
	"sort"
)

// CanonicalNet materialises the canonical relabelling as a standalone
// net: places and transitions are created in canonical position order
// under position-derived names ("p3", "t0"), arcs are inserted per
// transition sorted by canonical place position, and the initial marking
// is carried over. Every member of an isomorphism class therefore
// materialises the exact same twin — identical structure in identical
// index order — so any computation whose result depends on index order
// (the schedule search above all: it explores allocations and firings in
// index order and may return any of several valid schedules) becomes
// isomorphism-invariant when run on the twin instead of the original.
//
// The twin is rebuilt on each call; callers that need it repeatedly
// should keep the returned net.
func (n *Net) CanonicalNet() *Net {
	cf := n.CanonicalForm()
	tag := cf.Hash
	if len(tag) > 12 {
		tag = tag[:12]
	}
	b := NewBuilder("canonical_" + tag)
	mark := n.initialMark
	places := make([]Place, len(cf.PlaceAt))
	for pos, p := range cf.PlaceAt {
		places[pos] = b.MarkedPlace(fmt.Sprintf("p%d", pos), mark[p])
	}
	trans := make([]Transition, len(cf.TransAt))
	for pos := range cf.TransAt {
		trans[pos] = b.Transition(fmt.Sprintf("t%d", pos))
	}
	for pos, t := range cf.TransAt {
		pre := append([]ArcRef(nil), n.Pre(t)...)
		sort.Slice(pre, func(i, j int) bool {
			return cf.PlacePos[pre[i].Place] < cf.PlacePos[pre[j].Place]
		})
		for _, a := range pre {
			b.WeightedArc(places[cf.PlacePos[a.Place]], trans[pos], a.Weight)
		}
		post := append([]ArcRef(nil), n.Post(t)...)
		sort.Slice(post, func(i, j int) bool {
			return cf.PlacePos[post[i].Place] < cf.PlacePos[post[j].Place]
		})
		for _, a := range post {
			b.WeightedArcTP(trans[pos], places[cf.PlacePos[a.Place]], a.Weight)
		}
	}
	return b.Build()
}

package petri

import (
	"strings"
	"testing"
	"testing/quick"
)

const fig4Text = `
# Figure 4 of the paper: weighted arcs.
net figure4
place p1
place p2
place p3
trans t1
trans t2
trans t3
trans t4
trans t5
arc t1 -> p1
arc p1 -> t2 -> p2
arc p2 -> t4 * 2
arc p1 -> t3
arc t3 -> p3 * 2
arc p3 -> t5
`

func TestParseFigure4(t *testing.T) {
	n, err := ParseString(fig4Text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Name() != "figure4" {
		t.Fatalf("name = %q", n.Name())
	}
	if n.NumPlaces() != 3 || n.NumTransitions() != 5 {
		t.Fatalf("shape = %d/%d", n.NumPlaces(), n.NumTransitions())
	}
	p2, _ := n.PlaceByName("p2")
	t4, _ := n.TransitionByName("t4")
	if n.Weight(p2, t4) != 2 {
		t.Fatalf("weight p2->t4 = %d", n.Weight(p2, t4))
	}
	t3, _ := n.TransitionByName("t3")
	p3, _ := n.PlaceByName("p3")
	if n.WeightTP(t3, p3) != 2 {
		t.Fatalf("weight t3->p3 = %d", n.WeightTP(t3, p3))
	}
	if !n.IsFreeChoice() {
		t.Fatal("figure4 must be free-choice")
	}
}

func TestParseMarking(t *testing.T) {
	n, err := ParseString("place p 5\ntrans t\narc p -> t\n")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := n.PlaceByName("p")
	if n.InitialMarking()[p] != 5 {
		t.Fatalf("marking = %v", n.InitialMarking())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		frag string
	}{
		{"unknown directive", "foo bar\n", "unknown directive"},
		{"bad tokens", "place p x\n", "bad token count"},
		{"negative tokens", "place p -1\n", "bad token count"},
		{"place usage", "place\n", "usage"},
		{"trans usage", "trans\n", "usage"},
		{"net usage", "net\n", "usage"},
		{"duplicate net", "net a\nnet b\n", "duplicate net"},
		{"duplicate node", "place p\ntrans p\n", "duplicate node"},
		{"unknown from", "trans t\narc x -> t\n", "unknown node"},
		{"unknown to", "trans t\nplace p\narc p -> x\n", "unknown node"},
		{"place to place", "place p\nplace q\narc p -> q\n", "two places"},
		{"trans to trans", "trans t\ntrans u\narc t -> u\n", "two transitions"},
		{"bad arrow", "place p\ntrans t\narc p to t\n", "expected"},
		{"dangling arrow", "place p\ntrans t\narc p -> t ->\n", "dangling"},
		{"dangling star", "place p\ntrans t\narc p -> t *\n", "dangling"},
		{"bad weight", "place p\ntrans t\narc p -> t * 0\n", "bad weight"},
		{"short arc", "arc p\n", "usage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.text)
			if err == nil {
				t.Fatalf("expected error for %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	n, err := ParseString("# leading comment\n\nnet x # trailing\nplace p # c\ntrans t\narc p -> t # c\n")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "x" || n.NumPlaces() != 1 {
		t.Fatalf("parsed net wrong: %v", n)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig, err := ParseString(fig4Text)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(orig)
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse of Format output: %v\n%s", err, text)
	}
	if Format(back) != text {
		t.Fatalf("Format not a fixed point:\n%s\nvs\n%s", text, Format(back))
	}
	if back.NumPlaces() != orig.NumPlaces() || back.NumTransitions() != orig.NumTransitions() {
		t.Fatal("round trip changed shape")
	}
	for _, a := range orig.Arcs() {
		found := false
		for _, b := range back.Arcs() {
			if a == b {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("arc %+v lost in round trip", a)
		}
	}
}

// TestFormatRoundTripProperty checks Parse(Format(n)) == n over random
// small nets.
func TestFormatRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := randomNet(seed)
		back, err := ParseString(Format(n))
		if err != nil {
			return false
		}
		if back.NumPlaces() != n.NumPlaces() || back.NumTransitions() != n.NumTransitions() {
			return false
		}
		if len(back.Arcs()) != len(n.Arcs()) {
			return false
		}
		for i, a := range n.Arcs() {
			if back.Arcs()[i] != a {
				return false
			}
		}
		return back.InitialMarking().Equal(n.InitialMarking())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomNet builds a small pseudo-random net from a seed using a simple
// LCG so the property test is deterministic per seed.
func randomNet(seed int64) *Net {
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	b := NewBuilder("rand")
	np := 1 + next(5)
	nt := 1 + next(5)
	places := make([]Place, np)
	for i := range places {
		places[i] = b.MarkedPlace(placeName(i), next(3))
	}
	trans := make([]Transition, nt)
	for i := range trans {
		trans[i] = b.Transition(transName(i))
	}
	arcs := next(8)
	for i := 0; i < arcs; i++ {
		p := places[next(np)]
		tr := trans[next(nt)]
		w := 1 + next(3)
		if next(2) == 0 {
			b.WeightedArc(p, tr, w)
		} else {
			b.WeightedArcTP(tr, p, w)
		}
	}
	return b.Build()
}

func placeName(i int) string { return "p" + string(rune('a'+i)) }
func transName(i int) string { return "t" + string(rune('a'+i)) }

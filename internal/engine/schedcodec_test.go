package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"fcpn/internal/engine/stats"
	"fcpn/internal/trace"
)

func TestSchedCodecRoundTrip(t *testing.T) {
	cases := []*cachedSchedule{
		{cycles: []cachedCycle{}},
		{cycles: []cachedCycle{{seq: []int{0, 3, 3, 7}, choices: [][2]int{{1, 3}, {4, 7}}}}},
		{cycles: []cachedCycle{
			{seq: []int{2, 2, 2, 5}},
			{seq: []int{0, 9, 0, 9, 9}, choices: [][2]int{{0, 9}}},
		}},
		// A chosen transition outside the firing sequence still round-trips.
		{cycles: []cachedCycle{{seq: []int{4}, choices: [][2]int{{2, 11}}}}},
	}
	for i, cs := range cases {
		got, err := decodeSchedule(encodeSchedule(cs))
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, cs) {
			t.Fatalf("case %d: round trip\n got %+v\nwant %+v", i, got, cs)
		}
	}
}

func TestSchedCodecRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		cs := &cachedSchedule{cycles: make([]cachedCycle, rng.Intn(5))}
		for i := range cs.cycles {
			kept := rng.Perm(40)[:rng.Intn(8)+1]
			cc := cachedCycle{seq: make([]int, rng.Intn(30))}
			for j := range cc.seq {
				cc.seq[j] = kept[rng.Intn(len(kept))]
			}
			places := rng.Perm(40)[:rng.Intn(4)]
			sort.Ints(places)
			for _, p := range places {
				cc.choices = append(cc.choices, [2]int{p, kept[rng.Intn(len(kept))]})
			}
			cs.cycles[i] = cc
		}
		got, err := decodeSchedule(encodeSchedule(cs))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !reflect.DeepEqual(got, cs) {
			t.Fatalf("trial %d: round trip\n got %+v\nwant %+v", trial, got, cs)
		}
	}
}

func TestSchedCodecRejectsBadPayloads(t *testing.T) {
	good := encodeSchedule(&cachedSchedule{cycles: []cachedCycle{
		{seq: []int{1, 4, 1}, choices: [][2]int{{0, 4}}},
	}})
	if _, err := decodeSchedule(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = schedCacheVersion + 1
	if _, err := decodeSchedule(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
	for cut := 1; cut < len(good); cut++ {
		if _, err := decodeSchedule(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := decodeSchedule(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestSchedKeyStaysInSchedLayer pins the versioned key to the "sched"
// layer prefix: the cache derives its per-layer counters from everything
// before the first ':', so the version segment must come after it.
func TestSchedKeyStaysInSchedLayer(t *testing.T) {
	tr := trace.New()
	c := newCache(4, &stats.Counters{}, tr)
	if _, err := c.getOrCompute(schedKey("abc"), func() (any, error) { return []byte{1}, nil }); err != nil {
		t.Fatal(err)
	}
	if got := tr.Report().Counter("cache/sched/miss"); got != 1 {
		t.Fatalf("cache/sched/miss = %d, want 1", got)
	}
}

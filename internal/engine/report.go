package engine

import (
	"sort"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/petri"
)

// NetReport is the engine's complete, deterministic analysis result for
// one net. Every field is derived either from the net itself or from
// canonical cached payloads mapped into the net's index space, so a cache
// hit marshals byte-identically to a cold run — the report is the unit the
// determinism guarantees of docs/ENGINE.md are stated over. Timings and
// cache counters deliberately live elsewhere (Result, stats.Snapshot).
//
// The same type backs `qssd` batch entries and `netinfo -json`.
type NetReport struct {
	Name        string `json:"name"`
	Hash        string `json:"hash"`
	Places      int    `json:"places"`
	Transitions int    `json:"transitions"`
	Arcs        int    `json:"arcs"`
	Class       string `json:"class"`
	FreeChoice  bool   `json:"free_choice"`

	Sources     []string `json:"sources,omitempty"`
	Sinks       []string `json:"sinks,omitempty"`
	FreeChoices int      `json:"free_choices"`

	// Invariant analysis (cache layer: minimal T-/P-semiflows).
	TSemiflows   int  `json:"t_semiflows"`
	PSemiflows   int  `json:"p_semiflows"`
	Consistent   bool `json:"consistent"`
	Conservative bool `json:"conservative"`

	// StructuralBounds maps each structurally bounded place to its
	// P-invariant token bound (cache layer: P-invariant bounds). Places
	// with no structural bound are omitted.
	StructuralBounds map[string]int `json:"structural_bounds,omitempty"`

	// Reductions lists, per distinct T-reduction, the surviving
	// transitions by name (cache layer: canonical T-reductions). Only
	// populated for free-choice nets.
	Reductions [][]string `json:"reductions,omitempty"`

	// Scheduling (cache layer: complete schedules).
	Schedulable   bool   `json:"schedulable"`
	ScheduleError string `json:"schedule_error,omitempty"`
	Allocations   int    `json:"allocations,omitempty"`
	// AllocationsSaturated marks Allocations as the math.MaxInt ceiling of
	// core.CountAllocationsSat rather than a real count.
	AllocationsSaturated bool                 `json:"allocation_count_saturated,omitempty"`
	Schedule             *core.ScheduleExport `json:"schedule,omitempty"`
	// BufferBounds maps each place to its schedule buffer bound.
	BufferBounds map[string]int `json:"buffer_bounds,omitempty"`

	// Tasks is the minimum task partition.
	Tasks []TaskReport `json:"tasks,omitempty"`

	// Timing is the weakly-hard timing-safety result (verdict plus
	// optional overload margins), present when the engine was configured
	// with Config.Timing and the net is schedulable (cache layer: timing
	// verdicts and margins).
	Timing *TimingReport `json:"timing,omitempty"`

	// Errors collects non-fatal analysis failures (e.g. a semiflow
	// enumeration past its size cap); the remaining fields stay valid.
	Errors []string `json:"errors,omitempty"`
}

// TaskReport is one synthesised task in name form.
type TaskReport struct {
	Name        string   `json:"name"`
	Sources     []string `json:"sources,omitempty"`
	Transitions []string `json:"transitions"`
}

// Synthesis bundles the engine's cached full-pipeline result for one net.
type Synthesis struct {
	Schedule  *core.Schedule
	Partition *core.TaskPartition
	Program   *codegen.Program
}

// C renders the synthesised implementation as a C translation unit.
func (s *Synthesis) C(standalone bool) string {
	return codegen.EmitC(s.Program, codegen.CConfig{Standalone: standalone})
}

func names(n *petri.Net, ts []petri.Transition) []string {
	if len(ts) == 0 {
		return nil
	}
	return n.SequenceNames(ts)
}

// sortedNames renders a transition *set* as name-sorted strings. Report
// fields that are sets (sources, sinks, reduction survivors, task
// members) must serialise identically for isomorphic nets, so their
// order cannot come from transition indices — those depend on
// declaration order. Sequences (schedules) keep their semantic order.
func sortedNames(n *petri.Net, ts []petri.Transition) []string {
	out := names(n, ts)
	sort.Strings(out)
	return out
}

// lessStrings is lexicographic order on string slices, for sorting
// lists of name-sets deterministically.
func lessStrings(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

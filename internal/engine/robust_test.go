package engine

// Robustness tests for the batch engine: per-job deadlines, panic
// quarantine, retry-once, bounded submission windows, and submit/Close
// races. Faults are injected deterministically through Config.FaultHook
// via fault.EngineInjector, never with ad-hoc sleeps in analysis code.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fcpn/internal/core"
	"fcpn/internal/fault"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

// genNets builds count distinct netgen nets starting at seed, asserting
// their canonical hashes are pairwise distinct (the fault injector keys
// on hashes, so a collision would silently merge two test subjects).
func genNets(t *testing.T, seed uint64, count int) []*petri.Net {
	t.Helper()
	seen := make(map[string]uint64, count)
	nets := make([]*petri.Net, 0, count)
	for s := seed; len(nets) < count; s++ {
		n := netgen.RandomSchedulablePipeline(s, netgen.DefaultConfig())
		h := n.CanonicalHash()
		if prev, dup := seen[h]; dup {
			t.Logf("seed %d collides with seed %d (hash %s); skipping", s, prev, h)
			continue
		}
		seen[h] = s
		nets = append(nets, n)
	}
	return nets
}

// TestEngineFaultedCorpus is the robustness acceptance check: a corpus
// with one panicking net, one over-deadline net and N healthy nets must
// complete with byte-identical reports for the healthy nets (vs a clean
// engine), typed errors for the faulted ones, and a queue depth bounded
// by the submission window.
func TestEngineFaultedCorpus(t *testing.T) {
	all := genNets(t, 100, 12)
	panicNet, slowNet, healthy := all[0], all[1], all[2:]
	inj := &fault.EngineInjector{
		SlowFor: 2 * time.Second,
		Force: map[string]fault.JobFaultKind{
			panicNet.CanonicalHash(): fault.FaultPanic,
			slowNet.CanonicalHash():  fault.FaultSlow,
		},
	}
	const window = 3
	e := New(Config{
		Workers:      4,
		SubmitWindow: window,
		JobTimeout:   250 * time.Millisecond,
		FaultHook:    inj.Hook(),
	})
	defer e.Close()

	nets := append([]*petri.Net{panicNet, slowNet}, healthy...)
	results, err := e.AnalyzeBatch(nets)
	if err != nil {
		t.Fatalf("faulted batch must not fail as a whole: %v", err)
	}

	// The panicking net: typed error, quarantined hash, partial report
	// that still identifies the net.
	r := results[0]
	if r.Status != StatusPanicked || !errors.Is(r.Err, ErrJobPanicked) {
		t.Fatalf("panic net: status=%s err=%v", r.Status, r.Err)
	}
	if r.Report == nil || r.Report.Hash != panicNet.CanonicalHash() {
		t.Fatalf("panic net: missing/misattributed partial report: %+v", r.Report)
	}

	// The over-deadline net: typed timeout, partial report.
	r = results[1]
	if r.Status != StatusTimeout || !errors.Is(r.Err, ErrJobTimeout) {
		t.Fatalf("slow net: status=%s err=%v", r.Status, r.Err)
	}
	if r.Report == nil || r.Report.Name != slowNet.Name() {
		t.Fatalf("slow net: missing partial report")
	}

	// Healthy nets: byte-identical to a clean (fault-free, no-deadline)
	// engine.
	clean := New(Config{Workers: 4})
	defer clean.Close()
	for i, n := range healthy {
		r := results[2+i]
		if r.Status != StatusOK || r.Err != nil {
			t.Fatalf("healthy net %q: status=%s err=%v", n.Name(), r.Status, r.Err)
		}
		want := reportJSON(t, analyze(t, clean, n))
		if got := reportJSON(t, r.Report); got != want {
			t.Fatalf("healthy net %q: faulted-run report differs from clean run:\n%s\nvs\n%s",
				n.Name(), got, want)
		}
	}

	s := e.Stats()
	if s.Panics != 1 || s.Timeouts != 1 {
		t.Errorf("stats: panics=%d timeouts=%d, want 1/1", s.Panics, s.Timeouts)
	}
	if s.QueueDepthPeak > window {
		t.Errorf("queue depth peaked at %d, window is %d", s.QueueDepthPeak, window)
	}
	if s.QueueDepth != 0 {
		t.Errorf("queue depth %d after batch drained", s.QueueDepth)
	}
	if got := s.Trace.Counter("engine/panic") + func() int64 {
		p, _ := s.Trace.Phase("engine/panic")
		return p.Count
	}(); got == 0 {
		t.Errorf("no engine/panic trace evidence recorded")
	}

	// Resubmitting the panicking net must be refused without running.
	rep, err := e.Analyze(panicNet)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("resubmitted panic net: err=%v, want ErrQuarantined", err)
	}
	if rep == nil || rep.Hash != panicNet.CanonicalHash() {
		t.Fatalf("quarantine refusal lost the identifying report")
	}
	if got := e.QuarantinedHashes(); len(got) != 1 || got[0] != panicNet.CanonicalHash() {
		t.Fatalf("quarantined hashes = %v", got)
	}
	if s := e.Stats(); s.QuarantineSkips != 1 {
		t.Errorf("quarantine skips = %d, want 1", s.QuarantineSkips)
	}
	// Synthesize must refuse it too (same quarantine set).
	if _, err := e.Synthesize(panicNet); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Synthesize of quarantined net: err=%v", err)
	}
}

// TestEngineRetryTransient checks the retry-once policy: a job whose
// first attempt trips a (injected) budget error succeeds on the retry,
// and the retry is visible in the counters and the job trace.
func TestEngineRetryTransient(t *testing.T) {
	n := genNets(t, 300, 1)[0]
	inj := &fault.EngineInjector{
		Force: map[string]fault.JobFaultKind{n.CanonicalHash(): fault.FaultFlaky},
	}
	e := New(Config{Workers: 2, FaultHook: inj.Hook(), RetryBackoff: time.Millisecond})
	defer e.Close()

	results, err := e.AnalyzeBatch([]*petri.Net{n})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Status != StatusOK || r.Err != nil {
		t.Fatalf("flaky net did not recover: status=%s err=%v", r.Status, r.Err)
	}
	clean := New(Config{Workers: 2})
	defer clean.Close()
	if got, want := reportJSON(t, r.Report), reportJSON(t, analyze(t, clean, n)); got != want {
		t.Fatalf("retried report differs from clean run:\n%s\nvs\n%s", got, want)
	}
	if s := e.Stats(); s.Retries != 1 {
		t.Errorf("retries = %d, want 1", s.Retries)
	}
	if p, ok := r.Trace.Phase("engine/retry"); !ok || p.Count != 1 {
		t.Errorf("job trace missing engine/retry phase: %+v", r.Trace)
	}
}

// TestEnginePersistentFaultIsError checks a fault that survives the
// retry surfaces as StatusError with the injected error intact.
func TestEnginePersistentFaultIsError(t *testing.T) {
	n := genNets(t, 400, 1)[0]
	hook := func(ctx context.Context, hash string, attempt int) error {
		return fmt.Errorf("%w: persistent: %w", fault.ErrInjected, core.ErrBudgetExceeded)
	}
	e := New(Config{Workers: 1, FaultHook: hook, RetryBackoff: time.Millisecond})
	defer e.Close()
	results, err := e.AnalyzeBatch([]*petri.Net{n})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Status != StatusError || !errors.Is(r.Err, fault.ErrInjected) {
		t.Fatalf("persistent fault: status=%s err=%v", r.Status, r.Err)
	}
	if s := e.Stats(); s.Retries != 1 {
		t.Errorf("retries = %d, want 1 (retried once, then gave up)", s.Retries)
	}
}

// TestEngineBackpressureWindow checks AnalyzeEach never lets the queue
// gauge past the submission window, even when jobs are slow and the
// corpus is much larger than the window.
func TestEngineBackpressureWindow(t *testing.T) {
	nets := genNets(t, 500, 6)
	corpus := make([]*petri.Net, 0, 36)
	for i := 0; i < 6; i++ {
		corpus = append(corpus, nets...)
	}
	const window = 2
	e := New(Config{
		Workers:      2,
		SubmitWindow: window,
		FaultHook: func(ctx context.Context, hash string, attempt int) error {
			time.Sleep(2 * time.Millisecond) // make jobs slow enough to pile up
			return nil
		},
	})
	defer e.Close()
	var mu sync.Mutex
	done := 0
	if err := e.AnalyzeEach(corpus, func(i int, r Result) {
		mu.Lock()
		done++
		mu.Unlock()
		if r.Status != StatusOK {
			t.Errorf("net %d: status=%s err=%v", i, r.Status, r.Err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if done != len(corpus) {
		t.Fatalf("onDone fired %d times for %d nets", done, len(corpus))
	}
	s := e.Stats()
	if s.QueueDepthPeak > window {
		t.Errorf("queue depth peaked at %d, window is %d", s.QueueDepthPeak, window)
	}
	if s.QueueDepthPeak == 0 {
		t.Errorf("queue never observed any depth — backpressure untested")
	}
}

// TestEngineSubmitCloseRace hammers Analyze/AnalyzeBatch from many
// goroutines while Close runs concurrently: every call must either
// succeed or fail with the typed ErrEngineClosed — never panic on the
// closed channel, never hang. Run under -race in CI's soak step.
func TestEngineSubmitCloseRace(t *testing.T) {
	nets := genNets(t, 600, 4)
	for round := 0; round < 8; round++ {
		e := New(Config{Workers: 2, SubmitWindow: 2})
		errs := make(chan error, 64)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					if g%2 == 0 {
						_, err := e.Analyze(nets[(g+i)%len(nets)])
						errs <- err
					} else {
						_, err := e.AnalyzeBatch(nets[:2])
						errs <- err
					}
				}
			}(g)
		}
		// Close concurrently with the submitters.
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close()
		}()
		wg.Wait()
		e.Close()
		close(errs)
		for err := range errs {
			if err != nil && !errors.Is(err, ErrEngineClosed) {
				t.Fatalf("round %d: unexpected error under submit/Close race: %v", round, err)
			}
		}
	}
}

// TestEngineSoak runs a larger faulted corpus — background panic, slow
// and flaky faults over ~40 nets with a tight deadline — twice through
// one engine, then checks the engine is still fully usable. There are
// no per-net assertions; the test exists to shake out deadlocks, races
// (run with -race in CI) and stranded singleflights under sustained
// fault pressure.
func TestEngineSoak(t *testing.T) {
	nets := genNets(t, 700, 40)
	inj := &fault.EngineInjector{
		Seed:     2026,
		PanicPct: 10,
		SlowPct:  10,
		FlakyPct: 20,
		SlowFor:  time.Second,
	}
	e := New(Config{
		Workers:      4,
		SubmitWindow: 4,
		JobTimeout:   100 * time.Millisecond,
		RetryBackoff: time.Millisecond,
		FaultHook:    inj.Hook(),
	})
	defer e.Close()

	counts := map[JobStatus]int{}
	for pass := 0; pass < 2; pass++ {
		results, err := e.AnalyzeBatch(nets)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		for i, r := range results {
			if r.Report == nil {
				t.Fatalf("pass %d net %d: nil report (status %s)", pass, i, r.Status)
			}
			counts[r.Status]++
		}
	}
	t.Logf("soak outcomes over 2 passes: %v, stats: panics=%d timeouts=%d retries=%d quarantine_skips=%d",
		counts, e.Stats().Panics, e.Stats().Timeouts, e.Stats().Retries, e.Stats().QuarantineSkips)
	if counts[StatusOK] == 0 {
		t.Fatal("soak produced no successful jobs — fault rates are misconfigured")
	}

	// The engine must still be fully usable after the storm. Pin the
	// probe net to FaultNone so the background draws cannot hit it.
	fresh := genNets(t, 900, 1)[0]
	inj.Force = map[string]fault.JobFaultKind{fresh.CanonicalHash(): fault.FaultNone}
	rep, err := e.Analyze(fresh)
	if err != nil {
		t.Fatalf("engine unusable after soak: %v", err)
	}
	if rep == nil || rep.Hash == "" {
		t.Fatal("empty report after soak")
	}
	if s := e.Stats(); s.QueueDepth != 0 || s.BusyWorkers != 0 {
		t.Errorf("leaked gauge state after soak: depth=%d busy=%d", s.QueueDepth, s.BusyWorkers)
	}
}

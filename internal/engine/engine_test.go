package engine

import (
	"encoding/json"
	"runtime"
	"sort"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

// corpus returns the determinism test set: every figure net plus a 50-net
// netgen corpus, in a deterministic order.
func corpus() []*petri.Net {
	var nets []*petri.Net
	all := figures.All()
	var keys []string
	for k := range all {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		nets = append(nets, all[k])
	}
	for seed := uint64(0); seed < 50; seed++ {
		nets = append(nets, netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig()))
	}
	return nets
}

func reportJSON(t *testing.T, rep *NetReport) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// outcome is the full byte-comparable engine result for one net: the
// report plus, when schedulable, the generated C.
func outcome(t *testing.T, e *Engine, n *petri.Net) string {
	t.Helper()
	rep := e.Analyze(n)
	s := reportJSON(t, rep)
	if rep.Schedulable {
		syn, err := e.Synthesize(n)
		if err != nil {
			t.Fatalf("net %q: analyze says schedulable but synthesize failed: %v", n.Name(), err)
		}
		s += "\n" + syn.C(true)
	}
	return s
}

// wideWorkers is the pool size for the "parallel" side of determinism
// tests: NumCPU, but never fewer than 4 so single-core machines still
// exercise real goroutine interleaving.
func wideWorkers() int {
	if n := runtime.NumCPU(); n > 4 {
		return n
	}
	return 4
}

// TestEngineDeterminism is the acceptance criterion: for every figure net
// and a 50-net netgen corpus, results (reports, schedules, bounds,
// generated C) are byte-identical between cold run, warm-cache run, and
// workers=1 vs workers=max(4, NumCPU).
func TestEngineDeterminism(t *testing.T) {
	nets := corpus()
	serial := New(Config{Workers: 1})
	defer serial.Close()
	wide := New(Config{Workers: wideWorkers()})
	defer wide.Close()

	for _, n := range nets {
		cold := outcome(t, serial, n)
		warm := outcome(t, serial, n)
		if cold != warm {
			t.Fatalf("net %q: warm run differs from cold run:\n%s\nvs\n%s", n.Name(), warm, cold)
		}
		wideCold := outcome(t, wide, n)
		wideWarm := outcome(t, wide, n)
		if wideCold != cold {
			t.Fatalf("net %q: workers=%d differs from workers=1:\n%s\nvs\n%s",
				n.Name(), wide.Workers(), wideCold, cold)
		}
		if wideWarm != cold {
			t.Fatalf("net %q: warm wide run differs", n.Name())
		}
	}
	if s := wide.Stats(); s.CacheHits == 0 {
		t.Error("warm runs produced no cache hits")
	}
}

// TestEngineBatchOrderAndConcurrency checks AnalyzeBatch returns results
// in input order and that concurrent submission of the same net through
// the singleflight produces identical reports.
func TestEngineBatchOrderAndConcurrency(t *testing.T) {
	e := New(Config{Workers: wideWorkers()})
	defer e.Close()
	n := figures.Figure5()
	nets := make([]*petri.Net, 32)
	for i := range nets {
		nets[i] = n
	}
	results := e.AnalyzeBatch(nets)
	if len(results) != len(nets) {
		t.Fatalf("got %d results", len(results))
	}
	want := reportJSON(t, results[0].Report)
	for i, r := range results {
		if got := reportJSON(t, r.Report); got != want {
			t.Fatalf("result %d differs:\n%s\nvs\n%s", i, got, want)
		}
	}
	if s := e.Stats(); s.Jobs != int64(len(nets)) {
		t.Errorf("jobs = %d, want %d", s.Jobs, len(nets))
	}
}

// TestEngineSharesAcrossRenamedNets checks content addressing: a
// structurally identical net with different names hits the cache and
// still reports its own names.
func TestEngineSharesAcrossRenamedNets(t *testing.T) {
	build := func(prefix string) *petri.Net {
		b := petri.NewBuilder(prefix + "net")
		src := b.Transition(prefix + "src")
		p := b.Place(prefix + "p")
		sink := b.Transition(prefix + "sink")
		b.Chain(src, p, sink)
		return b.Build()
	}
	e := New(Config{Workers: 1})
	defer e.Close()
	a := e.Analyze(build("a_"))
	hitsBefore := e.Stats().CacheHits
	bb := e.Analyze(build("b_"))
	if e.Stats().CacheHits <= hitsBefore {
		t.Error("renamed twin did not hit the cache")
	}
	if a.Hash != bb.Hash {
		t.Errorf("isomorphic nets hash differently: %s vs %s", a.Hash, bb.Hash)
	}
	if !bb.Schedulable || len(bb.Schedule.Cycles) != 1 {
		t.Fatalf("bad twin report: %+v", bb)
	}
	if bb.Schedule.Cycles[0].Sequence[0] != "b_src" {
		t.Errorf("twin report leaked foreign names: %v", bb.Schedule.Cycles[0].Sequence)
	}
}

// TestEngineCacheEviction checks a tiny cache still yields correct,
// deterministic results (entries are recomputed after eviction).
func TestEngineCacheEviction(t *testing.T) {
	small := New(Config{Workers: 2, CacheCapacity: 2})
	defer small.Close()
	big := New(Config{Workers: 2})
	defer big.Close()
	for _, n := range corpus()[:12] {
		if a, b := outcome(t, small, n), outcome(t, big, n); a != b {
			t.Fatalf("net %q: eviction changed the result", n.Name())
		}
	}
}

// TestEngineUnschedulableDiagnostics checks failures are reported, not
// cached into wrong verdicts.
func TestEngineUnschedulableDiagnostics(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	for i := 0; i < 2; i++ {
		rep := e.Analyze(figures.Figure3b())
		if rep.Schedulable || rep.ScheduleError == "" {
			t.Fatalf("figure3b must be diagnosed unschedulable: %+v", rep)
		}
		if _, err := e.Synthesize(figures.Figure3b()); err == nil {
			t.Fatal("synthesize must fail on figure3b")
		}
	}
}

package engine

import (
	"encoding/json"
	"errors"
	"maps"
	"runtime"
	"sort"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

// corpus returns the determinism test set: every figure net plus a 50-net
// netgen corpus, in a deterministic order.
func corpus() []*petri.Net {
	var nets []*petri.Net
	all := figures.All()
	var keys []string
	for k := range all {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		nets = append(nets, all[k])
	}
	for seed := uint64(0); seed < 50; seed++ {
		nets = append(nets, netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig()))
	}
	return nets
}

func reportJSON(t *testing.T, rep *NetReport) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// analyze runs e.Analyze and fails the test on error.
func analyze(t *testing.T, e *Engine, n *petri.Net) *NetReport {
	t.Helper()
	rep, err := e.Analyze(n)
	if err != nil {
		t.Fatalf("net %q: analyze: %v", n.Name(), err)
	}
	return rep
}

// outcome is the full byte-comparable engine result for one net: the
// report plus, when schedulable, the generated C.
func outcome(t *testing.T, e *Engine, n *petri.Net) string {
	t.Helper()
	rep := analyze(t, e, n)
	s := reportJSON(t, rep)
	if rep.Schedulable {
		syn, err := e.Synthesize(n)
		if err != nil {
			t.Fatalf("net %q: analyze says schedulable but synthesize failed: %v", n.Name(), err)
		}
		s += "\n" + syn.C(true)
	}
	return s
}

// wideWorkers is the pool size for the "parallel" side of determinism
// tests: max(NumCPU, 4). On hosts with fewer than four CPUs this
// oversubscribes the pool on purpose — four workers time-slicing one or
// two CPUs interleave goroutines far more aggressively than a
// one-worker pool ever would, which is exactly the scheduling pressure
// the determinism tests need.
func wideWorkers() int {
	if n := runtime.NumCPU(); n > 4 {
		return n
	}
	return 4
}

// TestEngineDeterminism is the acceptance criterion: for every figure net
// and a 50-net netgen corpus, results (reports, schedules, bounds,
// generated C) are byte-identical between cold run, warm-cache run, and
// workers=1 vs workers=max(4, NumCPU).
func TestEngineDeterminism(t *testing.T) {
	nets := corpus()
	serial := New(Config{Workers: 1})
	defer serial.Close()
	wide := New(Config{Workers: wideWorkers()})
	defer wide.Close()

	for _, n := range nets {
		cold := outcome(t, serial, n)
		warm := outcome(t, serial, n)
		if cold != warm {
			t.Fatalf("net %q: warm run differs from cold run:\n%s\nvs\n%s", n.Name(), warm, cold)
		}
		wideCold := outcome(t, wide, n)
		wideWarm := outcome(t, wide, n)
		if wideCold != cold {
			t.Fatalf("net %q: workers=%d differs from workers=1:\n%s\nvs\n%s",
				n.Name(), wide.Workers(), wideCold, cold)
		}
		if wideWarm != cold {
			t.Fatalf("net %q: warm wide run differs", n.Name())
		}
	}
	if s := wide.Stats(); s.CacheHits == 0 {
		t.Error("warm runs produced no cache hits")
	}
}

// TestEngineBatchOrderAndConcurrency checks AnalyzeBatch returns results
// in input order and that concurrent submission of the same net through
// the singleflight produces identical reports.
func TestEngineBatchOrderAndConcurrency(t *testing.T) {
	e := New(Config{Workers: wideWorkers()})
	defer e.Close()
	n := figures.Figure5()
	nets := make([]*petri.Net, 32)
	for i := range nets {
		nets[i] = n
	}
	results, err := e.AnalyzeBatch(nets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(nets) {
		t.Fatalf("got %d results", len(results))
	}
	want := reportJSON(t, results[0].Report)
	for i, r := range results {
		if got := reportJSON(t, r.Report); got != want {
			t.Fatalf("result %d differs:\n%s\nvs\n%s", i, got, want)
		}
	}
	if s := e.Stats(); s.Jobs != int64(len(nets)) {
		t.Errorf("jobs = %d, want %d", s.Jobs, len(nets))
	}
}

// TestEngineSharesAcrossRenamedNets checks content addressing: a
// structurally identical net with different names hits the cache and
// still reports its own names.
func TestEngineSharesAcrossRenamedNets(t *testing.T) {
	build := func(prefix string) *petri.Net {
		b := petri.NewBuilder(prefix + "net")
		src := b.Transition(prefix + "src")
		p := b.Place(prefix + "p")
		sink := b.Transition(prefix + "sink")
		b.Chain(src, p, sink)
		return b.Build()
	}
	e := New(Config{Workers: 1})
	defer e.Close()
	a := analyze(t, e, build("a_"))
	hitsBefore := e.Stats().CacheHits
	bb := analyze(t, e, build("b_"))
	if e.Stats().CacheHits <= hitsBefore {
		t.Error("renamed twin did not hit the cache")
	}
	if a.Hash != bb.Hash {
		t.Errorf("isomorphic nets hash differently: %s vs %s", a.Hash, bb.Hash)
	}
	if !bb.Schedulable || len(bb.Schedule.Cycles) != 1 {
		t.Fatalf("bad twin report: %+v", bb)
	}
	if bb.Schedule.Cycles[0].Sequence[0] != "b_src" {
		t.Errorf("twin report leaked foreign names: %v", bb.Schedule.Cycles[0].Sequence)
	}
}

// TestEngineCacheEviction checks a tiny cache still yields correct,
// deterministic results (entries are recomputed after eviction).
func TestEngineCacheEviction(t *testing.T) {
	small := New(Config{Workers: 2, CacheCapacity: 2})
	defer small.Close()
	big := New(Config{Workers: 2})
	defer big.Close()
	for _, n := range corpus()[:12] {
		if a, b := outcome(t, small, n), outcome(t, big, n); a != b {
			t.Fatalf("net %q: eviction changed the result", n.Name())
		}
	}
}

// TestEngineUnschedulableDiagnostics checks failures are reported, not
// cached into wrong verdicts.
func TestEngineUnschedulableDiagnostics(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	for i := 0; i < 2; i++ {
		rep := analyze(t, e, figures.Figure3b())
		if rep.Schedulable || rep.ScheduleError == "" {
			t.Fatalf("figure3b must be diagnosed unschedulable: %+v", rep)
		}
		if _, err := e.Synthesize(figures.Figure3b()); err == nil {
			t.Fatal("synthesize must fail on figure3b")
		}
	}
}

// TestEngineClosedError checks every submission path after Close fails
// fast with the typed ErrEngineClosed instead of panicking on the closed
// job channel.
func TestEngineClosedError(t *testing.T) {
	e := New(Config{Workers: 2})
	e.Close()
	n := figures.Figure5()
	if _, err := e.Analyze(n); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Analyze after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := e.AnalyzeBatch([]*petri.Net{n, n}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("AnalyzeBatch after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := e.Synthesize(n); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Synthesize after Close: err = %v, want ErrEngineClosed", err)
	}
	e.Close() // second Close must stay a no-op
}

// phaseCounts projects a trace report onto its deterministic part: the
// number of times each phase ran. Durations are wall-clock noise; counts
// are a function of the net alone and must not depend on the worker-pool
// size.
func phaseCounts(rep *trace.Report) map[string]int64 {
	counts := make(map[string]int64)
	if rep == nil {
		return counts
	}
	for _, p := range rep.Phases {
		counts[p.Name] = p.Count
	}
	return counts
}

// TestTraceWorkerCountIndependence checks the per-job phase trace is
// structurally identical — same phases, same per-phase counts — between a
// one-worker and a four-worker cold analysis of the same corpus. Only
// durations may differ.
func TestTraceWorkerCountIndependence(t *testing.T) {
	nets := corpus()[:8]
	serial := New(Config{Workers: 1})
	defer serial.Close()
	wide := New(Config{Workers: 4})
	defer wide.Close()

	srs, err := serial.AnalyzeBatch(nets)
	if err != nil {
		t.Fatal(err)
	}
	wrs, err := wide.AnalyzeBatch(nets)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nets {
		sc, wc := phaseCounts(srs[i].Trace), phaseCounts(wrs[i].Trace)
		if len(sc) == 0 {
			t.Fatalf("net %q: empty serial trace", n.Name())
		}
		if !maps.Equal(sc, wc) {
			t.Errorf("net %q: phase counts depend on worker count:\nworkers=1: %v\nworkers=4: %v",
				n.Name(), sc, wc)
		}
	}
}

// TestTraceCoversElapsed checks the acceptance property behind the qssd
// trace block: for a cold analysis, the non-detail phases partition the
// job and their summed duration does not exceed the job's elapsed wall
// time (spans nest inside the measured window).
func TestTraceCoversElapsed(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	results, err := e.AnalyzeBatch(corpus()[:8])
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Trace == nil {
			t.Fatalf("result %d: nil trace", i)
		}
		top := r.Trace.TopTotalMS()
		elapsed := float64(r.Elapsed.Nanoseconds()) / 1e6
		if top > elapsed*1.02+0.05 {
			t.Errorf("result %d: top-level phases sum to %.3f ms, beyond elapsed %.3f ms", i, top, elapsed)
		}
	}
}

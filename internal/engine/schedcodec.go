package engine

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// schedCacheVersion tags the wire format of the schedule layer's cache
// payload. Bump it whenever encodeSchedule's format changes: the version
// is part of the cache key (schedKey), so stale entries from an older
// binary are simply never hit rather than misdecoded, and the version
// byte inside the payload rejects any that arrive through other routes
// (a shared store, a corrupted journal).
const schedCacheVersion = 2

// schedKey is the cache key of a net's schedule payload.
func schedKey(hash string) string {
	return fmt.Sprintf("sched:v%d:%s", schedCacheVersion, hash)
}

// encodeSchedule serialises a canonical-space schedule payload.
//
// Cycle sequences repeat a small set of transitions many times (the
// firing counts of the covering T-invariant), so each cycle is encoded
// against its kept-transition set: the sorted canonical positions of the
// transitions the reduction kept, delta-encoded as uvarint gaps, with
// the sequence itself stored as indices into that set (almost always one
// byte each) instead of absolute positions. Choices are delta-encoded on
// their sorted representative-place positions, each paired with the
// kept-set index of the chosen transition.
func encodeSchedule(cs *cachedSchedule) []byte {
	buf := []byte{schedCacheVersion}
	buf = binary.AppendUvarint(buf, uint64(len(cs.cycles)))
	for _, cc := range cs.cycles {
		kept := keptSet(cc)
		keptIdx := make(map[int]int, len(kept))
		buf = binary.AppendUvarint(buf, uint64(len(kept)))
		prev := 0
		for i, pos := range kept {
			buf = binary.AppendUvarint(buf, uint64(pos-prev))
			prev = pos
			keptIdx[pos] = i
		}
		buf = binary.AppendUvarint(buf, uint64(len(cc.seq)))
		for _, pos := range cc.seq {
			buf = binary.AppendUvarint(buf, uint64(keptIdx[pos]))
		}
		buf = binary.AppendUvarint(buf, uint64(len(cc.choices)))
		prev = 0
		for _, pair := range cc.choices {
			buf = binary.AppendUvarint(buf, uint64(pair[0]-prev))
			prev = pair[0]
			buf = binary.AppendUvarint(buf, uint64(keptIdx[pair[1]]))
		}
	}
	return buf
}

// keptSet returns the sorted distinct canonical transition positions a
// cycle references: its firing sequence plus every chosen transition.
// The chosen transitions are normally a subset of the sequence (the
// covering T-invariant fires every kept transition), but the union keeps
// the codec correct for any payload.
func keptSet(cc cachedCycle) []int {
	seen := map[int]bool{}
	for _, pos := range cc.seq {
		seen[pos] = true
	}
	for _, pair := range cc.choices {
		seen[pair[1]] = true
	}
	kept := make([]int, 0, len(seen))
	for pos := range seen {
		kept = append(kept, pos)
	}
	sort.Ints(kept)
	return kept
}

// decodeSchedule parses an encodeSchedule payload, validating the
// version and every index so a foreign or truncated payload surfaces as
// an error, never a bogus schedule.
func decodeSchedule(data []byte) (*cachedSchedule, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("engine: empty schedule payload")
	}
	if data[0] != schedCacheVersion {
		return nil, fmt.Errorf("engine: schedule payload version %d, want %d", data[0], schedCacheVersion)
	}
	data = data[1:]
	next := func() (int, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 || v > uint64(int(^uint(0)>>1)) {
			return 0, fmt.Errorf("engine: truncated or oversized schedule payload")
		}
		data = data[n:]
		return int(v), nil
	}
	nCycles, err := next()
	if err != nil {
		return nil, err
	}
	cs := &cachedSchedule{cycles: make([]cachedCycle, nCycles)}
	for i := 0; i < nCycles; i++ {
		nKept, err := next()
		if err != nil {
			return nil, err
		}
		kept := make([]int, nKept)
		pos := 0
		for k := 0; k < nKept; k++ {
			gap, err := next()
			if err != nil {
				return nil, err
			}
			pos += gap
			kept[k] = pos
		}
		nSeq, err := next()
		if err != nil {
			return nil, err
		}
		cc := cachedCycle{seq: make([]int, nSeq)}
		for j := 0; j < nSeq; j++ {
			idx, err := next()
			if err != nil {
				return nil, err
			}
			if idx >= nKept {
				return nil, fmt.Errorf("engine: schedule payload sequence index %d out of kept set of %d", idx, nKept)
			}
			cc.seq[j] = kept[idx]
		}
		nChoices, err := next()
		if err != nil {
			return nil, err
		}
		pos = 0
		for k := 0; k < nChoices; k++ {
			gap, err := next()
			if err != nil {
				return nil, err
			}
			pos += gap
			idx, err := next()
			if err != nil {
				return nil, err
			}
			if idx >= nKept {
				return nil, fmt.Errorf("engine: schedule payload choice index %d out of kept set of %d", idx, nKept)
			}
			cc.choices = append(cc.choices, [2]int{pos, kept[idx]})
		}
		cs.cycles[i] = cc
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("engine: %d trailing bytes in schedule payload", len(data))
	}
	return cs, nil
}

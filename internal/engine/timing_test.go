package engine

import (
	"encoding/json"
	"testing"

	"fcpn/internal/figures"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
	"fcpn/internal/sim"
	"fcpn/internal/timing"
)

func timingConfig(workers int) Config {
	return Config{
		Workers: workers,
		Timing: TimingOptions{
			MK:     timing.Constraint{M: 9, K: 10},
			Margin: true,
		},
	}
}

func timingJSON(t *testing.T, rep *NetReport) string {
	t.Helper()
	if rep.Timing == nil {
		return ""
	}
	b, err := json.Marshal(rep.Timing)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestEngineTimingDeterminism is the PR's acceptance criterion at the
// engine layer: timing verdicts and overload margins are byte-identical
// between cold run, warm-cache run, and workers=1 vs a wide pool.
func TestEngineTimingDeterminism(t *testing.T) {
	var nets []*petri.Net
	nets = append(nets, figures.Figure4(), figures.Figure5())
	for seed := uint64(0); seed < 6; seed++ {
		nets = append(nets, netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig()))
	}
	serial := New(timingConfig(1))
	defer serial.Close()
	wide := New(timingConfig(wideWorkers()))
	defer wide.Close()

	for _, n := range nets {
		cold := reportJSON(t, analyze(t, serial, n))
		warm := reportJSON(t, analyze(t, serial, n))
		if cold != warm {
			t.Fatalf("net %q: warm timing run differs from cold:\n%s\nvs\n%s", n.Name(), warm, cold)
		}
		wideCold := reportJSON(t, analyze(t, wide, n))
		if wideCold != cold {
			t.Fatalf("net %q: workers=%d timing differs from workers=1:\n%s\nvs\n%s",
				n.Name(), wide.Workers(), wideCold, cold)
		}
	}
}

// TestEngineTimingIsomorphismInvariance: two isomorphic nets analysed by
// two FRESH engines (no cache sharing possible) must produce identical
// timing reports — the canonical workload and canonical choice resolver
// make the verdict a function of the structure, not of declaration order.
func TestEngineTimingIsomorphismInvariance(t *testing.T) {
	// Figure-4 shape (source, free choice, two branch paths) declared in
	// two different orders with different names.
	twinA := func() *petri.Net {
		b := petri.NewBuilder("twin_a")
		t1 := b.Transition("a_in")
		t2 := b.Transition("a_left")
		t3 := b.Transition("a_right")
		t4 := b.Transition("a_out_l")
		t5 := b.Transition("a_out_r")
		p1 := b.Place("a_choice")
		p2 := b.Place("a_bufl")
		p3 := b.Place("a_bufr")
		b.ArcTP(t1, p1)
		b.Arc(p1, t2)
		b.Arc(p1, t3)
		b.Chain(t2, p2, t4)
		b.Chain(t3, p3, t5)
		return b.Build()
	}
	twinB := func() *petri.Net {
		b := petri.NewBuilder("twin_b")
		// Reversed declaration order: every local index differs from twinA.
		t5 := b.Transition("b_out_r")
		t4 := b.Transition("b_out_l")
		t3 := b.Transition("b_right")
		t2 := b.Transition("b_left")
		t1 := b.Transition("b_in")
		p3 := b.Place("b_bufr")
		p2 := b.Place("b_bufl")
		p1 := b.Place("b_choice")
		b.ArcTP(t1, p1)
		b.Arc(p1, t2)
		b.Arc(p1, t3)
		b.Chain(t2, p2, t4)
		b.Chain(t3, p3, t5)
		return b.Build()
	}

	ea := New(timingConfig(1))
	defer ea.Close()
	eb := New(timingConfig(1))
	defer eb.Close()
	ra := analyze(t, ea, twinA())
	rb := analyze(t, eb, twinB())
	if ra.Hash != rb.Hash {
		t.Fatalf("twins are not isomorphic: %s vs %s", ra.Hash, rb.Hash)
	}
	ja, jb := timingJSON(t, ra), timingJSON(t, rb)
	if ja == "" || ja != jb {
		t.Fatalf("cold timing reports differ across isomorphic nets:\n%s\nvs\n%s", ja, jb)
	}
}

// TestEngineTimingReportShape checks the concrete fields: calibrated
// deadline, satisfied nominal verdict, one margin per configured kind
// with a non-negative level.
func TestEngineTimingReportShape(t *testing.T) {
	e := New(timingConfig(2))
	defer e.Close()
	rep := analyze(t, e, figures.Figure4())
	tr := rep.Timing
	if tr == nil || tr.Verdict == nil {
		t.Fatalf("no timing report: %+v", tr)
	}
	if tr.MK != "(9,10)" || tr.Deadline <= 0 || tr.EventsPerSource != 32 || tr.Seed != 1 {
		t.Fatalf("timing params = %+v", tr)
	}
	if !tr.Verdict.Satisfied {
		t.Fatalf("nominal verdict must pass under the calibrated deadline: %s", tr.Verdict)
	}
	if len(tr.Margins) != 2 || tr.Margins[0].Kind != sim.OverloadBurst.String() ||
		tr.Margins[1].Kind != sim.OverloadOverrun.String() {
		t.Fatalf("margins = %+v", tr.Margins)
	}
	for _, om := range tr.Margins {
		if om.Result == nil || om.Result.Level < 0 {
			t.Fatalf("margin %s did not produce a finite non-negative level: %+v", om.Kind, om.Result)
		}
		if om.Deadline != tr.Deadline {
			t.Fatalf("margin deadline %d != verdict deadline %d", om.Deadline, tr.Deadline)
		}
	}

	// The timing pass only runs for schedulable nets.
	rep7 := analyze(t, e, figures.Figure7())
	if rep7.Schedulable || rep7.Timing != nil {
		t.Fatalf("unschedulable net got a timing report: %+v", rep7.Timing)
	}

	// And not at all when the option is off.
	plain := New(Config{Workers: 1})
	defer plain.Close()
	if rep := analyze(t, plain, figures.Figure4()); rep.Timing != nil {
		t.Fatal("timing pass ran without being configured")
	}
}

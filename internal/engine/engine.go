// Package engine is the concurrent QSS analysis engine: a long-running,
// goroutine-safe front end over internal/core that shards a stream of nets
// across a bounded worker pool and memoises the expensive intermediates —
// minimal T-semiflows, P-invariant bounds, canonical T-reductions and
// complete schedules — in a content-addressed cache keyed by the canonical
// structural hash of each net (petri.CanonicalForm).
//
// Determinism contract: every cached payload is stored in canonical index
// space and every report field is derived from the canonical payload
// mapped back into the requesting net's index space, for cold and warm
// paths alike. A cache hit therefore returns byte-identical results to a
// cold run, and results are independent of the worker count. See
// docs/ENGINE.md.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/engine/stats"
	"fcpn/internal/invariant"
	"fcpn/internal/petri"
)

// Config tunes the engine. The zero value is usable: GOMAXPROCS workers,
// a 4096-entry cache, default solver options.
type Config struct {
	// Workers is the analysis worker-pool size (≤ 0 → GOMAXPROCS). The
	// per-net schedulability sweep inherits it through Core.Workers
	// unless that is set explicitly.
	Workers int
	// CacheCapacity bounds the content-addressed cache (entries across
	// all layers; ≤ 0 → 4096). Eviction is LRU.
	CacheCapacity int
	// Core is the solver configuration applied to every job.
	Core core.Options
}

// Engine is the long-running analysis service. Create with New, share
// freely across goroutines, and Close when done (Close waits for
// in-flight jobs). Methods must not be called from inside another job of
// the same engine — jobs occupy workers, so nesting can deadlock a full
// pool.
type Engine struct {
	cfg      Config
	workers  int
	cache    *cache
	counters stats.Counters
	start    time.Time

	jobs      chan func()
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// Result pairs a report with its wall-clock analysis time. Elapsed is the
// only non-deterministic field, which is why it lives outside NetReport.
type Result struct {
	Report  *NetReport
	Elapsed time.Duration
}

// New starts an engine with its worker pool.
func New(cfg Config) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cfg:     cfg,
		workers: workers,
		start:   time.Now(),
		jobs:    make(chan func()),
	}
	e.cache = newCache(cfg.CacheCapacity, &e.counters)
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for fn := range e.jobs {
		e.counters.QueueDepth.Add(-1)
		e.counters.BusyWorkers.Add(1)
		t0 := time.Now()
		fn()
		e.counters.BusyNanos.Add(time.Since(t0).Nanoseconds())
		e.counters.BusyWorkers.Add(-1)
	}
}

// Close shuts the pool down and waits for in-flight jobs. The cache stays
// readable; submitting new jobs after Close panics.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.jobs) })
	e.wg.Wait()
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// Stats snapshots the engine counters.
func (e *Engine) Stats() stats.Snapshot {
	return e.counters.Snapshot(e.workers, time.Since(e.start).Nanoseconds())
}

// coreOpts is the per-job solver configuration: the engine's cache and —
// unless the caller pinned one — its worker count for the inner
// schedulability sweep.
func (e *Engine) coreOpts() core.Options {
	opt := e.cfg.Core
	opt.Semiflows = semiflowCache{e.cache}
	if opt.Workers == 0 {
		opt.Workers = e.workers
	}
	return opt
}

// run executes fn on the pool and waits for it.
func (e *Engine) run(fn func()) {
	done := make(chan struct{})
	e.counters.QueueDepth.Add(1)
	e.jobs <- func() { fn(); close(done) }
	<-done
}

// Analyze runs the full structural + behavioural analysis of one net on
// the pool and returns its deterministic report.
func (e *Engine) Analyze(n *petri.Net) *NetReport {
	var rep *NetReport
	e.run(func() { rep = e.analyze(n) })
	return rep
}

// AnalyzeBatch analyses the nets concurrently across the pool and returns
// the results in input order.
func (e *Engine) AnalyzeBatch(nets []*petri.Net) []Result {
	out := make([]Result, len(nets))
	var wg sync.WaitGroup
	for i, n := range nets {
		i, n := i, n
		wg.Add(1)
		e.counters.QueueDepth.Add(1)
		e.jobs <- func() {
			defer wg.Done()
			t0 := time.Now()
			out[i] = Result{Report: e.analyze(n), Elapsed: time.Since(t0)}
		}
	}
	wg.Wait()
	return out
}

// Synthesize runs the complete pipeline — schedule, task partition, code
// generation — through the cache and returns the bundle. Schedules come
// from the content-addressed schedule layer; the generated program is
// rebuilt from them (code generation is linear and name-dependent, so its
// output is not content-addressed).
func (e *Engine) Synthesize(n *petri.Net) (*Synthesis, error) {
	var syn *Synthesis
	var err error
	e.run(func() { syn, err = e.synthesize(n) })
	return syn, err
}

func (e *Engine) synthesize(n *petri.Net) (*Synthesis, error) {
	e.counters.Jobs.Add(1)
	cf := n.CanonicalForm()
	sched, err := e.schedule(n, cf)
	if err != nil {
		return nil, err
	}
	tp, err := core.PartitionTasks(n, e.coreOpts())
	if err != nil {
		return nil, err
	}
	prog, err := codegen.Generate(sched, tp)
	if err != nil {
		return nil, err
	}
	return &Synthesis{Schedule: sched, Partition: tp, Program: prog}, nil
}

// ---- cache layers ----------------------------------------------------

// cachedSchedule is the canonical-space payload of the schedule layer:
// cycles sorted lexicographically by canonical firing sequence, each with
// its choice resolution as (canonical cluster-representative place,
// canonical chosen transition) pairs.
type cachedSchedule struct {
	cycles []cachedCycle
}

type cachedCycle struct {
	seq     []int
	choices [][2]int
}

// schedule returns the net's valid schedule through the cache: on a miss
// core.Solve runs (parallel sweep, memoised semiflows) and the result is
// canonicalised; hit or miss, the returned Schedule is rebuilt from the
// canonical payload, which is what makes warm results byte-identical to
// cold ones. Solve failures are returned, never cached.
func (e *Engine) schedule(n *petri.Net, cf *petri.CanonicalForm) (*core.Schedule, error) {
	v, err := e.cache.getOrCompute("sched:"+cf.Hash, func() (any, error) {
		s, err := core.Solve(n, e.coreOpts())
		if err != nil {
			return nil, err
		}
		return toCachedSchedule(cf, s), nil
	})
	if err != nil {
		return nil, err
	}
	return rebuildSchedule(n, cf, v.(*cachedSchedule))
}

func toCachedSchedule(cf *petri.CanonicalForm, s *core.Schedule) *cachedSchedule {
	cs := &cachedSchedule{cycles: make([]cachedCycle, len(s.Cycles))}
	for i, cyc := range s.Cycles {
		cc := cachedCycle{seq: make([]int, len(cyc.Sequence))}
		for j, t := range cyc.Sequence {
			cc.seq[j] = cf.TransPos[t]
		}
		alloc := cyc.Reduction.Allocation
		for k, cluster := range alloc.Clusters {
			rep := cf.PlacePos[cluster.Places[0]]
			for _, p := range cluster.Places[1:] {
				if pos := cf.PlacePos[p]; pos < rep {
					rep = pos
				}
			}
			cc.choices = append(cc.choices, [2]int{rep, cf.TransPos[alloc.Chosen[k]]})
		}
		sort.Slice(cc.choices, func(a, b int) bool { return cc.choices[a][0] < cc.choices[b][0] })
		cs.cycles[i] = cc
	}
	sort.Slice(cs.cycles, func(a, b int) bool { return lessIntSlice(cs.cycles[a].seq, cs.cycles[b].seq) })
	return cs
}

func rebuildSchedule(n *petri.Net, cf *petri.CanonicalForm, cs *cachedSchedule) (*core.Schedule, error) {
	clusters := n.FreeChoiceSets()
	clusterOf := map[petri.Place]int{}
	for i, c := range clusters {
		for _, p := range c.Places {
			clusterOf[p] = i
		}
	}
	sched := &core.Schedule{Net: n, AllocationCount: core.CountAllocations(n)}
	for _, cc := range cs.cycles {
		seq := make([]petri.Transition, len(cc.seq))
		for j, pos := range cc.seq {
			seq[j] = cf.TransAt[pos]
		}
		chosen := make([]petri.Transition, len(clusters))
		for i, c := range clusters {
			chosen[i] = c.Transitions[0]
		}
		for _, pair := range cc.choices {
			p, t := cf.PlaceAt[pair[0]], cf.TransAt[pair[1]]
			ci, ok := clusterOf[p]
			if !ok {
				return nil, fmt.Errorf("engine: cached choice place %q is not a choice of net %q",
					n.PlaceName(p), n.Name())
			}
			chosen[ci] = t
		}
		alloc := &core.Allocation{Clusters: clusters, Chosen: chosen}
		sched.Cycles = append(sched.Cycles, core.Cycle{
			Sequence:  seq,
			Counts:    n.FiringCount(seq),
			Reduction: core.Reduce(n, alloc),
		})
	}
	return sched, nil
}

// reductions returns, per distinct T-reduction, the canonically sorted
// kept-transition sets, mapped to the net's transitions.
func (e *Engine) reductions(n *petri.Net, cf *petri.CanonicalForm) ([][]petri.Transition, error) {
	max := e.cfg.Core.MaxAllocations
	v, err := e.cache.getOrCompute("reds:"+cf.Hash, func() (any, error) {
		reds, err := core.EnumerateDistinctReductions(n, max)
		if err != nil {
			return nil, err
		}
		rows := make([][]int, len(reds))
		for i, r := range reds {
			row := make([]int, len(r.Sub.ParentTransition))
			for j, t := range r.Sub.ParentTransition {
				row[j] = cf.TransPos[t]
			}
			sort.Ints(row)
			rows[i] = row
		}
		sort.Slice(rows, func(a, b int) bool { return lessIntSlice(rows[a], rows[b]) })
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	rows := v.([][]int)
	out := make([][]petri.Transition, len(rows))
	for i, row := range rows {
		ts := make([]petri.Transition, len(row))
		for j, pos := range row {
			ts[j] = cf.TransAt[pos]
		}
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
		out[i] = ts
	}
	return out, nil
}

// structuralBounds returns the P-invariant place bounds through the
// bounds layer (canonical place order).
func (e *Engine) structuralBounds(n *petri.Net, cf *petri.CanonicalForm) ([]int, error) {
	v, err := e.cache.getOrCompute("bounds:"+cf.Hash, func() (any, error) {
		pis, err := invariant.PInvariantsCached(n, invariant.Options{MaxRows: e.cfg.Core.MaxRows}, semiflowCache{e.cache})
		if err != nil {
			return nil, err
		}
		local := invariant.StructuralBounds(n, pis)
		canon := make([]int, len(local))
		for p, b := range local {
			canon[cf.PlacePos[p]] = b
		}
		return canon, nil
	})
	if err != nil {
		return nil, err
	}
	canon := v.([]int)
	local := make([]int, len(canon))
	for pos, b := range canon {
		local[cf.PlaceAt[pos]] = b
	}
	return local, nil
}

// ---- analysis --------------------------------------------------------

func (e *Engine) analyze(n *petri.Net) *NetReport {
	e.counters.Jobs.Add(1)
	cf := n.CanonicalForm()
	rep := &NetReport{
		Name:        n.Name(),
		Hash:        cf.Hash,
		Places:      n.NumPlaces(),
		Transitions: n.NumTransitions(),
		Arcs:        len(n.Arcs()),
		Class:       n.Classify(),
		FreeChoice:  n.IsFreeChoice(),
		Sources:     names(n, n.SourceTransitions()),
		Sinks:       names(n, n.SinkTransitions()),
		FreeChoices: len(n.FreeChoiceSets()),
	}
	fail := func(stage string, err error) {
		rep.Errors = append(rep.Errors, stage+": "+err.Error())
	}

	iopt := invariant.Options{MaxRows: e.cfg.Core.MaxRows}
	tis, err := invariant.TInvariantsCached(n, iopt, semiflowCache{e.cache})
	if err != nil {
		fail("t-semiflows", err)
	} else {
		rep.TSemiflows = len(tis)
		rep.Consistent = invariant.Consistent(n, tis)
	}
	pis, err := invariant.PInvariantsCached(n, iopt, semiflowCache{e.cache})
	if err != nil {
		fail("p-semiflows", err)
	} else {
		rep.PSemiflows = len(pis)
		rep.Conservative = invariant.Conservative(n, pis)
	}
	if bounds, err := e.structuralBounds(n, cf); err != nil {
		fail("structural-bounds", err)
	} else {
		for p, b := range bounds {
			if b != invariant.Unbounded {
				if rep.StructuralBounds == nil {
					rep.StructuralBounds = map[string]int{}
				}
				rep.StructuralBounds[n.PlaceName(petri.Place(p))] = b
			}
		}
	}

	if !rep.FreeChoice || n.Validate() != nil {
		if err := n.Validate(); err != nil {
			rep.ScheduleError = err.Error()
		}
		return rep
	}

	if reds, err := e.reductions(n, cf); err != nil {
		fail("reductions", err)
	} else {
		for _, ts := range reds {
			rep.Reductions = append(rep.Reductions, n.SequenceNames(ts))
		}
	}

	sched, err := e.schedule(n, cf)
	if err != nil {
		rep.ScheduleError = err.Error()
		return rep
	}
	rep.Schedulable = true
	rep.Allocations = sched.AllocationCount
	rep.Schedule = sched.Export()
	if bounds, err := sched.BufferBounds(); err != nil {
		fail("buffer-bounds", err)
	} else {
		rep.BufferBounds = map[string]int{}
		for p, b := range bounds {
			rep.BufferBounds[n.PlaceName(petri.Place(p))] = b
		}
	}

	tp, err := core.PartitionTasks(n, e.coreOpts())
	if err != nil {
		fail("tasks", err)
	} else {
		for _, task := range tp.Tasks {
			rep.Tasks = append(rep.Tasks, TaskReport{
				Name:        task.Name,
				Sources:     names(n, task.Sources),
				Transitions: names(n, task.Transitions),
			})
		}
	}
	return rep
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

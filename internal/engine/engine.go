// Package engine is the concurrent QSS analysis engine: a long-running,
// goroutine-safe front end over internal/core that shards a stream of nets
// across a bounded worker pool and memoises the expensive intermediates —
// minimal T-semiflows, P-invariant bounds, canonical T-reductions and
// complete schedules — in a content-addressed cache keyed by the canonical
// structural hash of each net (petri.CanonicalForm).
//
// Determinism contract: every cached payload is stored in canonical index
// space and every report field is derived from the canonical payload
// mapped back into the requesting net's index space, for cold and warm
// paths alike. A cache hit therefore returns byte-identical results to a
// cold run, and results are independent of the worker count. See
// docs/ENGINE.md.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/engine/stats"
	"fcpn/internal/invariant"
	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

// ErrEngineClosed is returned by Analyze/AnalyzeBatch/Synthesize after
// Close: the worker pool is gone, so new jobs cannot run. (The cache
// stays readable through results already held by the caller.)
var ErrEngineClosed = errors.New("engine: closed")

// Config tunes the engine. The zero value is usable: GOMAXPROCS workers,
// a 4096-entry cache, default solver options.
type Config struct {
	// Workers is the analysis worker-pool size (≤ 0 → GOMAXPROCS). The
	// per-net schedulability sweep inherits it through Core.Workers
	// unless that is set explicitly.
	Workers int
	// CacheCapacity bounds the content-addressed cache (entries across
	// all layers; ≤ 0 → 4096). Eviction is LRU.
	CacheCapacity int
	// Core is the solver configuration applied to every job.
	Core core.Options
}

// Engine is the long-running analysis service. Create with New, share
// freely across goroutines, and Close when done (Close waits for
// in-flight jobs). Methods must not be called from inside another job of
// the same engine — jobs occupy workers, so nesting can deadlock a full
// pool.
type Engine struct {
	cfg      Config
	workers  int
	cache    *cache
	counters stats.Counters
	tracer   *trace.Tracer // lifetime aggregate of every job's phases
	start    time.Time

	jobs      chan func()
	wg        sync.WaitGroup
	closeOnce sync.Once

	// mu guards closed against concurrent submits: a send on the closed
	// jobs channel would panic, so Close flips the flag under the write
	// lock and every submit checks it under the read lock.
	mu     sync.RWMutex
	closed bool
}

// Result pairs a report with its wall-clock analysis time and phase
// trace. Elapsed and the trace durations are the only non-deterministic
// outputs, which is why they live outside NetReport (phase *counts* are
// deterministic and worker-count independent).
type Result struct {
	Report  *NetReport
	Elapsed time.Duration
	// Trace is the job's per-phase breakdown; its non-detail phases sum
	// to Elapsed modulo scheduling glue.
	Trace *trace.Report
}

// New starts an engine with its worker pool.
func New(cfg Config) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cfg:     cfg,
		workers: workers,
		tracer:  trace.New(),
		start:   time.Now(),
		jobs:    make(chan func()),
	}
	e.cache = newCache(cfg.CacheCapacity, &e.counters, e.tracer)
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for fn := range e.jobs {
		e.counters.QueueDepth.Add(-1)
		e.counters.BusyWorkers.Add(1)
		t0 := time.Now()
		fn()
		e.counters.BusyNanos.Add(time.Since(t0).Nanoseconds())
		e.counters.BusyWorkers.Add(-1)
	}
}

// Close shuts the pool down and waits for in-flight jobs. The cache stays
// readable; submitting new jobs after Close returns ErrEngineClosed.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.mu.Lock()
		e.closed = true
		close(e.jobs)
		e.mu.Unlock()
	})
	e.wg.Wait()
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// Stats snapshots the engine counters, including the lifetime per-phase
// trace aggregate across every job run so far.
func (e *Engine) Stats() stats.Snapshot {
	s := e.counters.Snapshot(e.workers, time.Since(e.start).Nanoseconds())
	s.Trace = e.tracer.Report()
	return s
}

// coreOpts is the per-job solver configuration: the engine's cache, the
// job's tracer and — unless the caller pinned one — the engine's worker
// count for the inner schedulability sweep.
func (e *Engine) coreOpts(tr *trace.Tracer) core.Options {
	opt := e.cfg.Core
	opt.Semiflows = semiflowCache{e.cache}
	opt.Trace = tr
	if opt.Workers == 0 {
		opt.Workers = e.workers
	}
	return opt
}

// submit schedules fn on the pool, or reports ErrEngineClosed.
func (e *Engine) submit(fn func()) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.counters.QueueDepth.Add(1)
	e.jobs <- fn
	return nil
}

// run executes fn on the pool and waits for it.
func (e *Engine) run(fn func()) error {
	done := make(chan struct{})
	if err := e.submit(func() { fn(); close(done) }); err != nil {
		return err
	}
	<-done
	return nil
}

// Analyze runs the full structural + behavioural analysis of one net on
// the pool and returns its deterministic report. After Close it returns
// ErrEngineClosed.
func (e *Engine) Analyze(n *petri.Net) (*NetReport, error) {
	var rep *NetReport
	if err := e.run(func() { rep, _ = e.analyze(n) }); err != nil {
		return nil, err
	}
	return rep, nil
}

// AnalyzeBatch analyses the nets concurrently across the pool and returns
// the results in input order. After Close it returns ErrEngineClosed
// (jobs already submitted still finish).
func (e *Engine) AnalyzeBatch(nets []*petri.Net) ([]Result, error) {
	out := make([]Result, len(nets))
	var wg sync.WaitGroup
	for i, n := range nets {
		i, n := i, n
		wg.Add(1)
		if err := e.submit(func() {
			defer wg.Done()
			t0 := time.Now()
			rep, tr := e.analyze(n)
			out[i] = Result{Report: rep, Elapsed: time.Since(t0), Trace: tr}
		}); err != nil {
			wg.Done()
			wg.Wait()
			return nil, err
		}
	}
	wg.Wait()
	return out, nil
}

// Synthesize runs the complete pipeline — schedule, task partition, code
// generation — through the cache and returns the bundle. Schedules come
// from the content-addressed schedule layer; the generated program is
// rebuilt from them (code generation is linear and name-dependent, so its
// output is not content-addressed).
func (e *Engine) Synthesize(n *petri.Net) (*Synthesis, error) {
	var syn *Synthesis
	var err error
	if rerr := e.run(func() { syn, err = e.synthesize(n) }); rerr != nil {
		return nil, rerr
	}
	return syn, err
}

func (e *Engine) synthesize(n *petri.Net) (*Synthesis, error) {
	e.counters.Jobs.Add(1)
	tr := trace.New()
	defer e.tracer.Merge(tr)
	sp := tr.Start("petri/canonical")
	cf := n.CanonicalForm()
	sp.End()
	sp = tr.Start("core/solve")
	sched, err := e.schedule(n, cf, nil, tr)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start("core/tasks")
	tp, err := core.PartitionTasks(n, e.coreOpts(tr))
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start("codegen/generate")
	prog, err := codegen.Generate(sched, tp)
	sp.End()
	if err != nil {
		return nil, err
	}
	return &Synthesis{Schedule: sched, Partition: tp, Program: prog}, nil
}

// ---- cache layers ----------------------------------------------------

// cachedSchedule is the canonical-space payload of the schedule layer:
// cycles sorted lexicographically by canonical firing sequence, each with
// its choice resolution as (canonical cluster-representative place,
// canonical chosen transition) pairs.
type cachedSchedule struct {
	cycles []cachedCycle
}

type cachedCycle struct {
	seq     []int
	choices [][2]int
}

// schedule returns the net's valid schedule through the cache: on a miss
// the solver runs (parallel sweep, memoised semiflows) and the result is
// canonicalised; hit or miss, the returned Schedule is rebuilt from the
// canonical payload, which is what makes warm results byte-identical to
// cold ones. Solve failures are returned, never cached.
//
// reds, when non-nil, is the distinct-reduction set the caller already
// enumerated for this net (reductions()): the miss path sweeps it
// directly instead of re-enumerating, and the rebuild reuses its
// Reduction objects instead of re-running Reduce per cycle. Nil — the
// warm path, or a caller without the set — falls back to the
// self-contained computation.
func (e *Engine) schedule(n *petri.Net, cf *petri.CanonicalForm, reds []*core.Reduction, tr *trace.Tracer) (*core.Schedule, error) {
	v, err := e.cache.getOrCompute("sched:"+cf.Hash, func() (any, error) {
		var s *core.Schedule
		var err error
		if reds != nil && !e.cfg.Core.KeepDuplicateReductions {
			s, err = core.SolveReductions(n, reds, e.coreOpts(tr))
		} else {
			s, err = core.Solve(n, e.coreOpts(tr))
		}
		if err != nil {
			return nil, err
		}
		return toCachedSchedule(cf, s), nil
	})
	if err != nil {
		return nil, err
	}
	return rebuildSchedule(n, cf, v.(*cachedSchedule), reds)
}

func toCachedSchedule(cf *petri.CanonicalForm, s *core.Schedule) *cachedSchedule {
	cs := &cachedSchedule{cycles: make([]cachedCycle, len(s.Cycles))}
	for i, cyc := range s.Cycles {
		cc := cachedCycle{seq: make([]int, len(cyc.Sequence))}
		for j, t := range cyc.Sequence {
			cc.seq[j] = cf.TransPos[t]
		}
		alloc := cyc.Reduction.Allocation
		for k, cluster := range alloc.Clusters {
			rep := cf.PlacePos[cluster.Places[0]]
			for _, p := range cluster.Places[1:] {
				if pos := cf.PlacePos[p]; pos < rep {
					rep = pos
				}
			}
			cc.choices = append(cc.choices, [2]int{rep, cf.TransPos[alloc.Chosen[k]]})
		}
		sort.Slice(cc.choices, func(a, b int) bool { return cc.choices[a][0] < cc.choices[b][0] })
		cs.cycles[i] = cc
	}
	sort.Slice(cs.cycles, func(a, b int) bool { return lessIntSlice(cs.cycles[a].seq, cs.cycles[b].seq) })
	return cs
}

func rebuildSchedule(n *petri.Net, cf *petri.CanonicalForm, cs *cachedSchedule, reds []*core.Reduction) (*core.Schedule, error) {
	clusters := n.FreeChoiceSets()
	clusterOf := map[petri.Place]int{}
	for i, c := range clusters {
		for _, p := range c.Places {
			clusterOf[p] = i
		}
	}
	// Cold path: the caller's enumerated reductions carry exactly the
	// allocations the cached cycles were derived from, so the Reduce per
	// cycle below is redundant — index them by chosen-transition vector
	// and reuse. Warm rebuilds (reds == nil, possibly a different
	// isomorphic net) recompute; Reduce is deterministic in the
	// allocation, so both paths produce identical schedules.
	byChosen := make(map[string]*core.Reduction, len(reds))
	for _, r := range reds {
		byChosen[chosenKey(r.Allocation.Chosen)] = r
	}
	sched := &core.Schedule{Net: n, AllocationCount: core.CountAllocations(n)}
	for _, cc := range cs.cycles {
		seq := make([]petri.Transition, len(cc.seq))
		for j, pos := range cc.seq {
			seq[j] = cf.TransAt[pos]
		}
		chosen := make([]petri.Transition, len(clusters))
		for i, c := range clusters {
			chosen[i] = c.Transitions[0]
		}
		for _, pair := range cc.choices {
			p, t := cf.PlaceAt[pair[0]], cf.TransAt[pair[1]]
			ci, ok := clusterOf[p]
			if !ok {
				return nil, fmt.Errorf("engine: cached choice place %q is not a choice of net %q",
					n.PlaceName(p), n.Name())
			}
			chosen[ci] = t
		}
		red := byChosen[chosenKey(chosen)]
		if red == nil {
			red = core.Reduce(n, &core.Allocation{Clusters: clusters, Chosen: chosen})
		}
		sched.Cycles = append(sched.Cycles, core.Cycle{
			Sequence:  seq,
			Counts:    n.FiringCount(seq),
			Reduction: red,
		})
	}
	return sched, nil
}

// chosenKey is a map key for an allocation's chosen-transition vector
// (clusters are always in petri.FreeChoiceSets order).
func chosenKey(chosen []petri.Transition) string {
	b := make([]byte, 0, 4*len(chosen))
	for _, t := range chosen {
		b = appendInt(b, int(t))
		b = append(b, ',')
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// reductions returns, per distinct T-reduction, the canonically sorted
// kept-transition sets, mapped to the net's transitions. The second
// return is the raw reduction set in enumeration order when THIS call
// computed it (a cache miss this goroutine won): analyze hands it to
// schedule() so a cold job enumerates reductions exactly once. On hits —
// and for singleflight waiters — it is nil.
func (e *Engine) reductions(n *petri.Net, cf *petri.CanonicalForm) ([][]petri.Transition, []*core.Reduction, error) {
	max := e.cfg.Core.MaxAllocations
	var fresh []*core.Reduction
	v, err := e.cache.getOrCompute("reds:"+cf.Hash, func() (any, error) {
		reds, err := core.EnumerateDistinctReductions(n, max)
		if err != nil {
			return nil, err
		}
		fresh = reds
		rows := make([][]int, len(reds))
		for i, r := range reds {
			row := make([]int, len(r.Sub.ParentTransition))
			for j, t := range r.Sub.ParentTransition {
				row[j] = cf.TransPos[t]
			}
			sort.Ints(row)
			rows[i] = row
		}
		sort.Slice(rows, func(a, b int) bool { return lessIntSlice(rows[a], rows[b]) })
		return rows, nil
	})
	if err != nil {
		return nil, nil, err
	}
	rows := v.([][]int)
	out := make([][]petri.Transition, len(rows))
	for i, row := range rows {
		ts := make([]petri.Transition, len(row))
		for j, pos := range row {
			ts[j] = cf.TransAt[pos]
		}
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
		out[i] = ts
	}
	return out, fresh, nil
}

// structuralBounds returns the P-invariant place bounds through the
// bounds layer (canonical place order).
func (e *Engine) structuralBounds(n *petri.Net, cf *petri.CanonicalForm, tr *trace.Tracer) ([]int, error) {
	v, err := e.cache.getOrCompute("bounds:"+cf.Hash, func() (any, error) {
		pis, err := invariant.PInvariantsCached(n, invariant.Options{MaxRows: e.cfg.Core.MaxRows, Trace: tr}, semiflowCache{e.cache})
		if err != nil {
			return nil, err
		}
		local := invariant.StructuralBounds(n, pis)
		canon := make([]int, len(local))
		for p, b := range local {
			canon[cf.PlacePos[p]] = b
		}
		return canon, nil
	})
	if err != nil {
		return nil, err
	}
	canon := v.([]int)
	local := make([]int, len(canon))
	for pos, b := range canon {
		local[cf.PlaceAt[pos]] = b
	}
	return local, nil
}

// ---- analysis --------------------------------------------------------

// analyze runs one job under a fresh per-job tracer and returns the
// deterministic report plus the job's phase breakdown. The tracer is
// folded into the engine-lifetime aggregate before returning.
func (e *Engine) analyze(n *petri.Net) (*NetReport, *trace.Report) {
	tr := trace.New()
	rep := e.analyzeTraced(n, tr)
	e.tracer.Merge(tr)
	return rep, tr.Report()
}

// analyzeTraced is the analysis body. The top-level spans below are
// sequential and cover every statement between the first and the last, so
// their totals account for the job's wall time (the qssd report checks
// that sum against elapsed time per net).
func (e *Engine) analyzeTraced(n *petri.Net, tr *trace.Tracer) *NetReport {
	e.counters.Jobs.Add(1)
	sp := tr.Start("petri/canonical")
	cf := n.CanonicalForm()
	sp.End()
	sp = tr.Start("petri/classify")
	rep := &NetReport{
		Name:        n.Name(),
		Hash:        cf.Hash,
		Places:      n.NumPlaces(),
		Transitions: n.NumTransitions(),
		Arcs:        len(n.Arcs()),
		Class:       n.Classify(),
		FreeChoice:  n.IsFreeChoice(),
		Sources:     names(n, n.SourceTransitions()),
		Sinks:       names(n, n.SinkTransitions()),
		FreeChoices: len(n.FreeChoiceSets()),
	}
	sp.End()
	fail := func(stage string, err error) {
		rep.Errors = append(rep.Errors, stage+": "+err.Error())
	}

	iopt := invariant.Options{MaxRows: e.cfg.Core.MaxRows, Trace: tr}
	sp = tr.Start("invariant/tsemiflows")
	tis, err := invariant.TInvariantsCached(n, iopt, semiflowCache{e.cache})
	if err != nil {
		fail("t-semiflows", err)
	} else {
		rep.TSemiflows = len(tis)
		rep.Consistent = invariant.Consistent(n, tis)
	}
	sp.End()
	sp = tr.Start("invariant/psemiflows")
	pis, err := invariant.PInvariantsCached(n, iopt, semiflowCache{e.cache})
	if err != nil {
		fail("p-semiflows", err)
	} else {
		rep.PSemiflows = len(pis)
		rep.Conservative = invariant.Conservative(n, pis)
	}
	sp.End()
	sp = tr.Start("invariant/bounds")
	if bounds, err := e.structuralBounds(n, cf, tr); err != nil {
		fail("structural-bounds", err)
	} else {
		for p, b := range bounds {
			if b != invariant.Unbounded {
				if rep.StructuralBounds == nil {
					rep.StructuralBounds = map[string]int{}
				}
				rep.StructuralBounds[n.PlaceName(petri.Place(p))] = b
			}
		}
	}
	sp.End()

	if !rep.FreeChoice || n.Validate() != nil {
		if err := n.Validate(); err != nil {
			rep.ScheduleError = err.Error()
		}
		return rep
	}

	sp = tr.Start("core/reduce")
	rows, fresh, err := e.reductions(n, cf)
	if err != nil {
		fail("reductions", err)
	} else {
		for _, ts := range rows {
			rep.Reductions = append(rep.Reductions, n.SequenceNames(ts))
		}
	}
	sp.End()

	sp = tr.Start("core/solve")
	sched, err := e.schedule(n, cf, fresh, tr)
	sp.End()
	if err != nil {
		rep.ScheduleError = err.Error()
		return rep
	}
	rep.Schedulable = true
	rep.Allocations = sched.AllocationCount
	rep.Schedule = sched.Export()
	sp = tr.Start("core/bounds")
	if bounds, err := sched.BufferBounds(); err != nil {
		fail("buffer-bounds", err)
	} else {
		rep.BufferBounds = map[string]int{}
		for p, b := range bounds {
			rep.BufferBounds[n.PlaceName(petri.Place(p))] = b
		}
	}
	sp.End()

	sp = tr.Start("core/tasks")
	tp, err := core.PartitionTasks(n, e.coreOpts(tr))
	if err != nil {
		fail("tasks", err)
	} else {
		for _, task := range tp.Tasks {
			rep.Tasks = append(rep.Tasks, TaskReport{
				Name:        task.Name,
				Sources:     names(n, task.Sources),
				Transitions: names(n, task.Transitions),
			})
		}
	}
	sp.End()
	return rep
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Package engine is the concurrent QSS analysis engine: a long-running,
// goroutine-safe front end over internal/core that shards a stream of nets
// across a bounded worker pool and memoises the expensive intermediates —
// minimal T-semiflows, P-invariant bounds, canonical T-reductions and
// complete schedules — in a content-addressed cache keyed by the canonical
// structural hash of each net (petri.CanonicalForm).
//
// Determinism contract: every cached payload is stored in canonical index
// space and every report field is derived from the canonical payload
// mapped back into the requesting net's index space, for cold and warm
// paths alike. A cache hit therefore returns byte-identical results to a
// cold run, and results are independent of the worker count. See
// docs/ENGINE.md.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/engine/stats"
	"fcpn/internal/invariant"
	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

// ErrEngineClosed is returned by Analyze/AnalyzeBatch/Synthesize after
// Close: the worker pool is gone, so new jobs cannot run. (The cache
// stays readable through results already held by the caller.)
var ErrEngineClosed = errors.New("engine: closed")

// ErrJobTimeout is the typed failure of a job that exceeded
// Config.JobTimeout. It is installed as the deadline's cancellation
// cause, so it survives errors.Is through every layer the context
// threads into (core's sweep, cycle search, reduction enumeration).
var ErrJobTimeout = errors.New("engine: job deadline exceeded")

// ErrJobPanicked is the typed failure of a job whose analysis panicked.
// The panic is recovered on the worker, the offending canonical hash is
// quarantined, and the pool keeps running.
var ErrJobPanicked = errors.New("engine: job panicked")

// ErrQuarantined is returned for jobs whose canonical hash was
// quarantined by an earlier panic (or seeded via Quarantine, e.g. from a
// resumed qssd journal): the job is refused without running.
var ErrQuarantined = errors.New("engine: net is quarantined")

// Config tunes the engine. The zero value is usable: GOMAXPROCS workers,
// a 4096-entry cache, default solver options, a 2×workers submission
// window, no deadline, no fault injection.
type Config struct {
	// Workers is the analysis worker-pool size (≤ 0 → GOMAXPROCS). The
	// per-net schedulability sweep inherits it through Core.Workers
	// unless that is set explicitly.
	Workers int
	// CacheCapacity bounds the content-addressed cache (entries across
	// all layers; ≤ 0 → 4096). Eviction is LRU.
	CacheCapacity int
	// Core is the solver configuration applied to every job.
	Core core.Options
	// Timing, when enabled (Timing.MK set), appends a weakly-hard
	// timing-safety verdict — and optionally overload margins — to every
	// schedulable net's report (NetReport.Timing). Cached per canonical
	// hash and option set, like every other analysis layer.
	Timing TimingOptions

	// SubmitWindow bounds how many AnalyzeEach/AnalyzeBatch jobs may be
	// submitted but not yet finished (≤ 0 → 2×Workers). The window is
	// the engine's backpressure: batch submission blocks once the window
	// is full, so queue memory for a million-net corpus stays O(window)
	// instead of O(corpus) and the queue_depth gauge is bounded by it.
	SubmitWindow int
	// JobTimeout is the per-job deadline (0 = none). A job past its
	// deadline is cancelled at the pipeline's next checkpoint and
	// returns its partial report with a typed ErrJobTimeout.
	JobTimeout time.Duration
	// RetryBackoff is the wait before the single retry of a transiently
	// failed job (one wrapping core.ErrBudgetExceeded; ≤ 0 → 1ms).
	RetryBackoff time.Duration
	// FaultHook, when non-nil, runs at the start of every job attempt
	// with the job's canonical hash and attempt number (0 = first). It
	// may panic, sleep, or return an error, which the engine treats
	// exactly like an analysis failure — the injection point for
	// fault.EngineInjector in the robustness tests. Never set in
	// production.
	FaultHook func(ctx context.Context, hash string, attempt int) error
}

// Engine is the long-running analysis service. Create with New, share
// freely across goroutines, and Close when done (Close waits for
// in-flight jobs). Methods must not be called from inside another job of
// the same engine — jobs occupy workers, so nesting can deadlock a full
// pool.
type Engine struct {
	cfg      Config
	workers  int
	cache    *cache
	counters stats.Counters
	tracer   *trace.Tracer // lifetime aggregate of every job's phases
	start    time.Time

	jobs      chan func()
	wg        sync.WaitGroup
	closeOnce sync.Once

	// mu guards closed against concurrent submits: a send on the closed
	// jobs channel would panic, so Close flips the flag under the write
	// lock and every submit checks it under the read lock.
	mu     sync.RWMutex
	closed bool

	// quarantine maps canonical hashes poisoned by a recovered panic (or
	// seeded via Quarantine) to the reason; jobs for those hashes are
	// refused with ErrQuarantined.
	quarantine sync.Map // string -> string

	// onDoneMu serialises AnalyzeEach completion callbacks so callers
	// (e.g. qssd's journal writer) need no locking of their own.
	onDoneMu sync.Mutex
}

// JobStatus classifies how a job ended. It is the string the batch
// reports aggregate over.
type JobStatus string

const (
	// StatusOK: the analysis ran to completion (the report may still
	// carry a schedulability diagnosis — that is an answer, not a
	// failure).
	StatusOK JobStatus = "ok"
	// StatusTimeout: the job exceeded Config.JobTimeout; the report is
	// partial and Err wraps ErrJobTimeout.
	StatusTimeout JobStatus = "timeout"
	// StatusPanicked: the analysis panicked; the worker recovered, the
	// hash is quarantined, Err wraps ErrJobPanicked.
	StatusPanicked JobStatus = "panicked"
	// StatusQuarantined: the job was refused because its hash was
	// already quarantined; Err wraps ErrQuarantined.
	StatusQuarantined JobStatus = "quarantined"
	// StatusError: a residual job-level failure that is none of the
	// above (e.g. a persistent injected fault).
	StatusError JobStatus = "error"
)

// Result pairs a report with its wall-clock analysis time, phase trace
// and failure classification. Elapsed and the trace durations are the
// only non-deterministic outputs, which is why they live outside
// NetReport (phase *counts* are deterministic and worker-count
// independent).
type Result struct {
	Report  *NetReport
	Elapsed time.Duration
	// Trace is the job's per-phase breakdown; its non-detail phases sum
	// to Elapsed modulo scheduling glue. Failure modes appear as
	// "engine/timeout", "engine/panic" and "engine/retry" detail phases
	// plus matching counters.
	Trace *trace.Report
	// Status classifies the job's ending; Err is the typed job-level
	// error for every status but StatusOK (errors.Is-testable against
	// ErrJobTimeout / ErrJobPanicked / ErrQuarantined). A timed-out or
	// panicked job still carries the partial Report built before the
	// failure.
	Status JobStatus
	Err    error
}

// New starts an engine with its worker pool.
func New(cfg Config) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cfg:     cfg,
		workers: workers,
		tracer:  trace.New(),
		start:   time.Now(),
		jobs:    make(chan func()),
	}
	e.cache = newCache(cfg.CacheCapacity, &e.counters, e.tracer)
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for fn := range e.jobs {
		e.counters.QueueDepth.Add(-1)
		e.counters.BusyWorkers.Add(1)
		t0 := time.Now()
		fn()
		e.counters.BusyNanos.Add(time.Since(t0).Nanoseconds())
		e.counters.BusyWorkers.Add(-1)
	}
}

// Close shuts the pool down and waits for in-flight jobs. The cache stays
// readable; submitting new jobs after Close returns ErrEngineClosed.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.mu.Lock()
		e.closed = true
		close(e.jobs)
		e.mu.Unlock()
	})
	e.wg.Wait()
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// Stats snapshots the engine counters, including the lifetime per-phase
// trace aggregate across every job run so far.
func (e *Engine) Stats() stats.Snapshot {
	s := e.counters.Snapshot(e.workers, time.Since(e.start).Nanoseconds())
	s.Trace = e.tracer.Report()
	return s
}

// coreOpts is the per-job solver configuration: the engine's cache, the
// job's tracer, the job's cancellation context and — unless the caller
// pinned one — the engine's worker count for the inner schedulability
// sweep.
func (e *Engine) coreOpts(ctx context.Context, tr *trace.Tracer) core.Options {
	opt := e.cfg.Core
	opt.Semiflows = semiflowCache{e.cache}
	opt.Trace = tr
	opt.Ctx = ctx
	// The prune cut can change which failing reduction Solve diagnoses.
	// The engine's cold path sweeps the reduction set it enumerated for
	// the report (SolveReductions); its warm Solve fallback must produce
	// the same diagnosis byte for byte, so pruning stays off here.
	opt.NoPrune = true
	if opt.Workers == 0 {
		opt.Workers = e.workers
	}
	return opt
}

// SubmitWindow is the effective backpressure window: Config.SubmitWindow,
// or 2×Workers when unset. AnalyzeEach bounds its in-flight jobs by it;
// the HTTP service sizes its admission semaphore from it so a full
// window turns into a 429 instead of an unbounded queue.
func (e *Engine) SubmitWindow() int {
	if e.cfg.SubmitWindow > 0 {
		return e.cfg.SubmitWindow
	}
	return 2 * e.workers
}

// retryBackoff is the wait before a transient-failure retry.
func (e *Engine) retryBackoff() time.Duration {
	if e.cfg.RetryBackoff > 0 {
		return e.cfg.RetryBackoff
	}
	return time.Millisecond
}

// jobContext returns the per-attempt context: deadline-bound with
// ErrJobTimeout as the cancellation cause when Config.JobTimeout is set.
func (e *Engine) jobContext() (context.Context, context.CancelFunc) {
	if e.cfg.JobTimeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeoutCause(context.Background(), e.cfg.JobTimeout, ErrJobTimeout)
}

// Quarantine marks a canonical hash as poisoned: subsequent jobs for it
// are refused with ErrQuarantined instead of running. The engine calls
// this itself after a recovered panic; qssd -resume seeds it from
// journalled panics.
func (e *Engine) Quarantine(hash, reason string) {
	e.quarantine.LoadOrStore(hash, reason)
}

// QuarantineReason reports whether hash is quarantined and, if so, why.
// The HTTP service fronts its admission check with this so a poisoned
// net is refused with its recorded reason instead of re-running.
func (e *Engine) QuarantineReason(hash string) (string, bool) {
	reason, ok := e.quarantine.Load(hash)
	if !ok {
		return "", false
	}
	return reason.(string), true
}

// QuarantinedHashes lists the quarantined canonical hashes, sorted.
func (e *Engine) QuarantinedHashes() []string {
	var out []string
	e.quarantine.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

// submit schedules fn on the pool, or reports ErrEngineClosed.
func (e *Engine) submit(fn func()) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.counters.ObserveQueueDepth(e.counters.QueueDepth.Add(1))
	e.jobs <- fn
	return nil
}

// run executes fn on the pool and waits for it.
func (e *Engine) run(fn func()) error {
	done := make(chan struct{})
	if err := e.submit(func() { fn(); close(done) }); err != nil {
		return err
	}
	<-done
	return nil
}

// Analyze runs the full structural + behavioural analysis of one net on
// the pool and returns its deterministic report. After Close it returns
// ErrEngineClosed. Job-level failures (deadline, panic, quarantine)
// return the typed error alongside the partial report built before the
// failure.
func (e *Engine) Analyze(n *petri.Net) (*NetReport, error) {
	var res Result
	if err := e.run(func() { res = e.analyzeJob(n) }); err != nil {
		return nil, err
	}
	return res.Report, res.Err
}

// AnalyzeBatch analyses the nets concurrently across the pool and returns
// the results in input order. Submission is bounded by the engine's
// backpressure window (Config.SubmitWindow). After Close it returns
// ErrEngineClosed (jobs already submitted still finish). Per-job
// failures — timeouts, panics, quarantine refusals — do NOT fail the
// batch: they come back as typed Result.Err/Status entries while the
// healthy nets' reports stay byte-identical to a fault-free run.
func (e *Engine) AnalyzeBatch(nets []*petri.Net) ([]Result, error) {
	out := make([]Result, len(nets))
	err := e.AnalyzeEach(nets, func(i int, r Result) { out[i] = r })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AnalyzeEach is the streaming form of AnalyzeBatch: onDone fires once
// per net as its job finishes (serialised — no caller locking needed —
// but in completion order, not input order; i is the net's input index).
// At most the submission window's worth of jobs is in flight, so corpus
// memory beyond the results the caller retains is O(window). qssd's
// crash-safe journal hangs off this callback.
func (e *Engine) AnalyzeEach(nets []*petri.Net, onDone func(i int, r Result)) error {
	window := e.SubmitWindow()
	slots := make(chan struct{}, window)
	var wg sync.WaitGroup
	for i, n := range nets {
		// Backpressure: block until an in-flight job frees a slot.
		slots <- struct{}{}
		i, n := i, n
		wg.Add(1)
		if err := e.submit(func() {
			defer wg.Done()
			r := e.analyzeJob(n)
			// Free the slot before the callback: journal writes and other
			// caller work must not throttle the pool.
			<-slots
			e.onDoneMu.Lock()
			defer e.onDoneMu.Unlock()
			onDone(i, r)
		}); err != nil {
			<-slots
			wg.Done()
			wg.Wait()
			return err
		}
	}
	wg.Wait()
	return nil
}

// Synthesize runs the complete pipeline — schedule, task partition, code
// generation — through the cache and returns the bundle. Schedules come
// from the content-addressed schedule layer; the generated program is
// rebuilt from them (code generation is linear and name-dependent, so its
// output is not content-addressed).
func (e *Engine) Synthesize(n *petri.Net) (*Synthesis, error) {
	var syn *Synthesis
	var err error
	if rerr := e.run(func() { syn, err = e.synthesize(n) }); rerr != nil {
		return nil, rerr
	}
	return syn, err
}

func (e *Engine) synthesize(n *petri.Net) (syn *Synthesis, err error) {
	e.counters.Jobs.Add(1)
	tr := trace.New()
	defer e.tracer.Merge(tr)
	// Synthesis gets the same worker-level guard rails as analysis: a
	// recovered panic quarantines the hash, a deadline cancels the solve.
	var cf *petri.CanonicalForm
	defer func() {
		if r := recover(); r != nil {
			e.counters.Panics.Add(1)
			tr.Add("engine/panic", 1)
			err = fmt.Errorf("%w: %v", ErrJobPanicked, r)
			if cf != nil {
				e.Quarantine(cf.Hash, err.Error())
			}
			syn = nil
		}
	}()
	ctx, cancel := e.jobContext()
	defer cancel()
	sp := tr.Start("petri/canonical")
	cf = n.CanonicalForm()
	sp.End()
	if reason, ok := e.quarantine.Load(cf.Hash); ok {
		e.counters.QuarantineSkips.Add(1)
		return nil, fmt.Errorf("%w: %s (%s)", ErrQuarantined, cf.Hash, reason.(string))
	}
	sp = tr.Start("core/solve")
	sched, err := e.schedule(ctx, n, cf, nil, tr)
	sp.End()
	if err != nil {
		if cerr := ctxCause(ctx); cerr != nil {
			e.counters.Timeouts.Add(1)
			return nil, cerr
		}
		return nil, err
	}
	sp = tr.Start("core/tasks")
	tp, err := core.PartitionTasks(n, e.coreOpts(ctx, tr))
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start("codegen/generate")
	prog, err := codegen.Generate(sched, tp)
	sp.End()
	if err != nil {
		return nil, err
	}
	return &Synthesis{Schedule: sched, Partition: tp, Program: prog}, nil
}

// ---- cache layers ----------------------------------------------------

// cachedSchedule is the canonical-space payload of the schedule layer:
// cycles sorted lexicographically by canonical firing sequence, each with
// its choice resolution as (canonical cluster-representative place,
// canonical chosen transition) pairs.
type cachedSchedule struct {
	cycles []cachedCycle
}

type cachedCycle struct {
	seq     []int
	choices [][2]int
}

// schedule returns the net's valid schedule through the cache: on a miss
// the solver runs (parallel sweep, memoised semiflows) and the result is
// canonicalised; hit or miss, the returned Schedule is rebuilt from the
// canonical payload, which is what makes warm results byte-identical to
// cold ones. Solve failures are returned, never cached.
//
// The miss path never solves the caller's net directly: the solver
// explores allocations and firings in index order and may return any of
// several valid schedules, so two isomorphic nets solved as-declared
// would cache different payloads depending on which arrived first — and
// two *cold* runs of the same class would diverge. Instead it solves the
// canonical twin (petri.CanonicalNet), which is byte-identical for every
// member of the class, making the cached payload a function of the
// canonical hash alone.
//
// fresh, when non-nil, carries the twin and the distinct-reduction set
// reductions() already enumerated on it this job: the miss path sweeps
// that set directly instead of re-enumerating. Nil — the warm path, or a
// caller without the set — rebuilds the twin and solves from scratch.
func (e *Engine) schedule(ctx context.Context, n *petri.Net, cf *petri.CanonicalForm, fresh *twinReds, tr *trace.Tracer) (*core.Schedule, error) {
	v, err := e.cache.getOrCompute(schedKey(cf.Hash), func() (any, error) {
		tw := fresh
		if tw == nil {
			tw = &twinReds{net: n.CanonicalNet()}
		}
		var s *core.Schedule
		var err error
		if tw.reds != nil && !e.cfg.Core.KeepDuplicateReductions {
			s, err = core.SolveReductions(tw.net, tw.reds, e.coreOpts(ctx, tr))
		} else {
			s, err = core.Solve(tw.net, e.coreOpts(ctx, tr))
		}
		if err != nil {
			return nil, err
		}
		enc := encodeSchedule(toCachedSchedule(identityForm(tw.net), s))
		tr.Add("cache/sched/bytes", int64(len(enc)))
		return enc, nil
	})
	if err != nil {
		return nil, err
	}
	// Hit and miss alike rebuild from the decoded wire payload, so a cold
	// result can never differ from a warm one by construction.
	cs, err := decodeSchedule(v.([]byte))
	if err != nil {
		return nil, err
	}
	return rebuildSchedule(n, cf, cs)
}

// twinReds carries a freshly enumerated distinct-reduction set together
// with the canonical twin net it was enumerated on, for hand-off from
// reductions() to schedule() within one cold job.
type twinReds struct {
	net  *petri.Net
	reds []*core.Reduction
}

// identityForm is the canonical form of a canonical twin: the twin is
// built with places and transitions in canonical position order, so its
// canonical relabelling is the identity by construction. Building it
// directly spares the twin a second WL refinement pass, which profiling
// showed roughly tripling the reductions layer.
func identityForm(n *petri.Net) *petri.CanonicalForm {
	cf := &petri.CanonicalForm{
		PlaceAt:  make([]petri.Place, n.NumPlaces()),
		TransAt:  make([]petri.Transition, n.NumTransitions()),
		PlacePos: make([]int, n.NumPlaces()),
		TransPos: make([]int, n.NumTransitions()),
	}
	for i := range cf.PlaceAt {
		cf.PlaceAt[i] = petri.Place(i)
		cf.PlacePos[i] = i
	}
	for i := range cf.TransAt {
		cf.TransAt[i] = petri.Transition(i)
		cf.TransPos[i] = i
	}
	return cf
}

func toCachedSchedule(cf *petri.CanonicalForm, s *core.Schedule) *cachedSchedule {
	cs := &cachedSchedule{cycles: make([]cachedCycle, len(s.Cycles))}
	for i, cyc := range s.Cycles {
		cc := cachedCycle{seq: make([]int, len(cyc.Sequence))}
		for j, t := range cyc.Sequence {
			cc.seq[j] = cf.TransPos[t]
		}
		alloc := cyc.Reduction.Allocation
		for k, cluster := range alloc.Clusters {
			rep := cf.PlacePos[cluster.Places[0]]
			for _, p := range cluster.Places[1:] {
				if pos := cf.PlacePos[p]; pos < rep {
					rep = pos
				}
			}
			cc.choices = append(cc.choices, [2]int{rep, cf.TransPos[alloc.Chosen[k]]})
		}
		sort.Slice(cc.choices, func(a, b int) bool { return cc.choices[a][0] < cc.choices[b][0] })
		cs.cycles[i] = cc
	}
	sort.Slice(cs.cycles, func(a, b int) bool { return lessIntSlice(cs.cycles[a].seq, cs.cycles[b].seq) })
	return cs
}

// rebuildSchedule maps a canonical-space payload into n's index space.
// The per-cycle Reduce below recomputes what the solver already derived
// on the twin, but in *local* space; Reduce is deterministic in the
// allocation, so every member of the isomorphism class rebuilds the same
// schedule from the same payload.
func rebuildSchedule(n *petri.Net, cf *petri.CanonicalForm, cs *cachedSchedule) (*core.Schedule, error) {
	clusters := n.FreeChoiceSets()
	clusterOf := map[petri.Place]int{}
	for i, c := range clusters {
		for _, p := range c.Places {
			clusterOf[p] = i
		}
	}
	count, saturated := core.CountAllocationsSat(n)
	sched := &core.Schedule{Net: n, AllocationCount: count, AllocationCountSaturated: saturated}
	rd := core.NewReducer(n)
	for _, cc := range cs.cycles {
		seq := make([]petri.Transition, len(cc.seq))
		for j, pos := range cc.seq {
			seq[j] = cf.TransAt[pos]
		}
		chosen := make([]petri.Transition, len(clusters))
		for i, c := range clusters {
			chosen[i] = c.Transitions[0]
		}
		for _, pair := range cc.choices {
			p, t := cf.PlaceAt[pair[0]], cf.TransAt[pair[1]]
			ci, ok := clusterOf[p]
			if !ok {
				return nil, fmt.Errorf("engine: cached choice place %q is not a choice of net %q",
					n.PlaceName(p), n.Name())
			}
			chosen[ci] = t
		}
		red := rd.Reduce(&core.Allocation{Clusters: clusters, Chosen: chosen})
		sched.Cycles = append(sched.Cycles, core.Cycle{
			Sequence:  seq,
			Counts:    n.FiringCount(seq),
			Reduction: red,
		})
	}
	return sched, nil
}

// mapReductionsToTwin re-derives each distinct reduction on the
// canonical twin: the allocation translates through the canonical
// permutation and Reduce — deterministic in (net, allocation) — rebuilds
// the subnet in twin space. Sorting by twin transition-set key then makes
// the solver's input depend only on the isomorphism class.
//
// Enumerating directly on the twin would also work, but the lazy
// branching search's cost is sensitive to cluster index order (up to ~4x
// more Reduce calls on some nets under the canonical order); mapping
// costs exactly one Reduce per distinct reduction.
func mapReductionsToTwin(cf *petri.CanonicalForm, twin *petri.Net, reds []*core.Reduction) []*core.Reduction {
	clusters := twin.FreeChoiceSets()
	clusterOf := map[petri.Place]int{}
	for i, c := range clusters {
		for _, p := range c.Places {
			clusterOf[p] = i
		}
	}
	out := make([]*core.Reduction, len(reds))
	rd := core.NewReducer(twin)
	for i, r := range reds {
		chosen := make([]petri.Transition, len(clusters))
		for k, c := range clusters {
			chosen[k] = c.Transitions[0]
		}
		la := r.Allocation
		for k, cluster := range la.Clusters {
			ci := clusterOf[petri.Place(cf.PlacePos[cluster.Places[0]])]
			chosen[ci] = petri.Transition(cf.TransPos[la.Chosen[k]])
		}
		out[i] = rd.Reduce(&core.Allocation{Clusters: clusters, Chosen: chosen})
	}
	sort.Slice(out, func(a, b int) bool {
		return out[a].TransitionSetKey() < out[b].TransitionSetKey()
	})
	return out
}

// reductions returns, per distinct T-reduction, the canonically sorted
// kept-transition sets, mapped to the net's transitions. The second
// return is the fresh reduction set in twin space when THIS call
// computed it (a cache miss this goroutine won): analyze hands it to
// schedule() so a cold job enumerates reductions exactly once. On hits —
// and for singleflight waiters — it is nil.
//
// Enumeration runs on the caller's net (the search is cheapest in the
// order the allocation tree was grown for), then the distinct set is
// mapped onto the canonical twin for the solve, which needs twin-space
// reductions in class-invariant order.
func (e *Engine) reductions(ctx context.Context, n *petri.Net, cf *petri.CanonicalForm) ([][]petri.Transition, *twinReds, error) {
	max := e.cfg.Core.MaxAllocations
	var fresh *twinReds
	v, err := e.cache.getOrCompute("reds:"+cf.Hash, func() (any, error) {
		reds, err := core.EnumerateDistinctReductionsCtx(ctx, n, max)
		if err != nil {
			return nil, err
		}
		twin := n.CanonicalNet()
		fresh = &twinReds{net: twin, reds: mapReductionsToTwin(cf, twin, reds)}
		rows := make([][]int, len(reds))
		for i, r := range reds {
			kept := r.KeptTransitions()
			row := make([]int, len(kept))
			for j, t := range kept {
				row[j] = cf.TransPos[t]
			}
			sort.Ints(row)
			rows[i] = row
		}
		sort.Slice(rows, func(a, b int) bool { return lessIntSlice(rows[a], rows[b]) })
		return rows, nil
	})
	if err != nil {
		return nil, nil, err
	}
	rows := v.([][]int)
	out := make([][]petri.Transition, len(rows))
	for i, row := range rows {
		ts := make([]petri.Transition, len(row))
		for j, pos := range row {
			ts[j] = cf.TransAt[pos]
		}
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
		out[i] = ts
	}
	return out, fresh, nil
}

// structuralBounds returns the P-invariant place bounds through the
// bounds layer (canonical place order).
func (e *Engine) structuralBounds(n *petri.Net, cf *petri.CanonicalForm, tr *trace.Tracer) ([]int, error) {
	v, err := e.cache.getOrCompute("bounds:"+cf.Hash, func() (any, error) {
		pis, err := invariant.PInvariantsCached(n, invariant.Options{MaxRows: e.cfg.Core.MaxRows, Trace: tr}, semiflowCache{e.cache})
		if err != nil {
			return nil, err
		}
		local := invariant.StructuralBounds(n, pis)
		canon := make([]int, len(local))
		for p, b := range local {
			canon[cf.PlacePos[p]] = b
		}
		return canon, nil
	})
	if err != nil {
		return nil, err
	}
	canon := v.([]int)
	local := make([]int, len(canon))
	for pos, b := range canon {
		local[cf.PlaceAt[pos]] = b
	}
	return local, nil
}

// ---- analysis --------------------------------------------------------

// ctxCause returns nil while ctx is live and an error wrapping
// context.Cause once it is done (for a deadline job, that cause is the
// typed ErrJobTimeout).
func ctxCause(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return fmt.Errorf("engine: job cancelled: %w", context.Cause(ctx))
	default:
		return nil
	}
}

// minimalReport identifies a net whose analysis never ran (or died
// early): enough for a journal entry and a quarantine record.
func minimalReport(n *petri.Net, cf *petri.CanonicalForm) *NetReport {
	return &NetReport{
		Name:        n.Name(),
		Hash:        cf.Hash,
		Places:      n.NumPlaces(),
		Transitions: n.NumTransitions(),
		Arcs:        len(n.Arcs()),
	}
}

// analyzeJob runs one fully guarded analysis job on a worker goroutine:
// canonicalise, refuse quarantined hashes, then attempt the analysis
// under the per-job deadline with panic recovery and the retry-once
// policy. It never panics and never blocks past the deadline by more
// than one pipeline checkpoint.
func (e *Engine) analyzeJob(n *petri.Net) Result {
	e.counters.Jobs.Add(1)
	t0 := time.Now()
	tr := trace.New()
	res := e.analyzeGuarded(n, tr)
	res.Elapsed = time.Since(t0)
	e.tracer.Merge(tr)
	res.Trace = tr.Report()
	return res
}

func (e *Engine) analyzeGuarded(n *petri.Net, tr *trace.Tracer) Result {
	cf, err := e.canonical(n, tr)
	if err != nil {
		// Canonicalisation itself panicked: there is no hash to
		// quarantine, but the job still returns typed instead of killing
		// the worker.
		e.counters.Panics.Add(1)
		tr.Add("engine/panic", 1)
		return Result{Report: &NetReport{Name: n.Name()}, Status: StatusPanicked, Err: err}
	}
	if reason, ok := e.quarantine.Load(cf.Hash); ok {
		e.counters.QuarantineSkips.Add(1)
		tr.Add("engine/quarantined", 1)
		return Result{
			Report: minimalReport(n, cf),
			Status: StatusQuarantined,
			Err:    fmt.Errorf("%w: %s (%s)", ErrQuarantined, cf.Hash, reason.(string)),
		}
	}

	const attempts = 2
	var rep *NetReport
	var jobErr error
	for attempt := 0; attempt < attempts; attempt++ {
		final := attempt == attempts-1
		ta := time.Now()
		ctx, cancel := e.jobContext()
		rep, jobErr = e.attempt(ctx, n, cf, tr, final, attempt)
		expired := ctx.Err() != nil
		cancel()
		if rep == nil {
			rep = minimalReport(n, cf)
		}
		switch {
		case errors.Is(jobErr, ErrJobPanicked):
			// Quarantine the hash so one poisoned net cannot keep taking
			// workers down; the panic itself was recovered in attempt().
			e.Quarantine(cf.Hash, jobErr.Error())
			e.counters.Panics.Add(1)
			tr.Observe("engine/panic", time.Since(ta), true)
			return Result{Report: rep, Status: StatusPanicked, Err: jobErr}
		case jobErr != nil && expired:
			// The job's own deadline fired: partial result, typed error.
			e.counters.Timeouts.Add(1)
			tr.Observe("engine/timeout", time.Since(ta), true)
			return Result{Report: rep, Status: StatusTimeout, Err: jobErr}
		case jobErr != nil && !final &&
			(errors.Is(jobErr, core.ErrBudgetExceeded) || errors.Is(jobErr, ErrJobTimeout)):
			// Transient: a budget trip (possibly injected) or a
			// singleflight leader's deadline observed from a waiter whose
			// own deadline is intact. Retry once with backoff.
			e.counters.Retries.Add(1)
			backoff := e.retryBackoff()
			tr.Observe("engine/retry", backoff, true)
			time.Sleep(backoff)
			continue
		case jobErr != nil:
			return Result{Report: rep, Status: StatusError, Err: jobErr}
		default:
			return Result{Report: rep, Status: StatusOK}
		}
	}
	return Result{Report: rep, Status: StatusError, Err: jobErr}
}

// canonical computes the net's canonical form under the job's
// "petri/canonical" span, converting a canonicalisation panic into a
// typed error.
func (e *Engine) canonical(n *petri.Net, tr *trace.Tracer) (cf *petri.CanonicalForm, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: canonicalisation: %v", ErrJobPanicked, r)
		}
	}()
	sp := tr.Start("petri/canonical")
	cf = n.CanonicalForm()
	sp.End()
	return cf, nil
}

// attempt runs one analysis attempt: the fault hook (tests only), then
// the traced analysis body, with panics recovered into ErrJobPanicked.
func (e *Engine) attempt(ctx context.Context, n *petri.Net, cf *petri.CanonicalForm, tr *trace.Tracer, final bool, attempt int) (rep *NetReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrJobPanicked, r)
		}
	}()
	if e.cfg.FaultHook != nil {
		if herr := e.cfg.FaultHook(ctx, cf.Hash, attempt); herr != nil {
			return nil, herr
		}
	}
	return e.analyzeTraced(ctx, n, cf, tr, final)
}

// analyzeTraced is the analysis body. The top-level spans below are
// sequential and cover every statement between the first and the last, so
// their totals account for the job's wall time (the qssd report checks
// that sum against elapsed time per net). Cancellation is checked at
// every stage boundary (and inside core's long loops via opt.Ctx); a
// cancelled job returns the report built so far plus the cause error.
// finalAttempt folds budget-typed schedule failures into the report's
// ScheduleError (the real verdict); earlier attempts surface them as
// errors so the caller's retry policy can run.
func (e *Engine) analyzeTraced(ctx context.Context, n *petri.Net, cf *petri.CanonicalForm, tr *trace.Tracer, finalAttempt bool) (*NetReport, error) {
	sp := tr.Start("petri/classify")
	rep := &NetReport{
		Name:        n.Name(),
		Hash:        cf.Hash,
		Places:      n.NumPlaces(),
		Transitions: n.NumTransitions(),
		Arcs:        len(n.Arcs()),
		Class:       n.Classify(),
		FreeChoice:  n.IsFreeChoice(),
		Sources:     sortedNames(n, n.SourceTransitions()),
		Sinks:       sortedNames(n, n.SinkTransitions()),
		FreeChoices: len(n.FreeChoiceSets()),
	}
	sp.End()
	fail := func(stage string, err error) {
		rep.Errors = append(rep.Errors, stage+": "+err.Error())
	}
	if cerr := ctxCause(ctx); cerr != nil {
		return rep, cerr
	}

	iopt := invariant.Options{MaxRows: e.cfg.Core.MaxRows, Trace: tr}
	sp = tr.Start("invariant/tsemiflows")
	tis, err := invariant.TInvariantsCached(n, iopt, semiflowCache{e.cache})
	if err != nil {
		fail("t-semiflows", err)
	} else {
		rep.TSemiflows = len(tis)
		rep.Consistent = invariant.Consistent(n, tis)
	}
	sp.End()
	sp = tr.Start("invariant/psemiflows")
	pis, err := invariant.PInvariantsCached(n, iopt, semiflowCache{e.cache})
	if err != nil {
		fail("p-semiflows", err)
	} else {
		rep.PSemiflows = len(pis)
		rep.Conservative = invariant.Conservative(n, pis)
	}
	sp.End()
	sp = tr.Start("invariant/bounds")
	if bounds, err := e.structuralBounds(n, cf, tr); err != nil {
		fail("structural-bounds", err)
	} else {
		for p, b := range bounds {
			if b != invariant.Unbounded {
				if rep.StructuralBounds == nil {
					rep.StructuralBounds = map[string]int{}
				}
				rep.StructuralBounds[n.PlaceName(petri.Place(p))] = b
			}
		}
	}
	sp.End()
	if cerr := ctxCause(ctx); cerr != nil {
		return rep, cerr
	}

	if !rep.FreeChoice || n.Validate() != nil {
		if err := n.Validate(); err != nil {
			rep.ScheduleError = err.Error()
		}
		return rep, nil
	}

	sp = tr.Start("core/reduce")
	rows, fresh, err := e.reductions(ctx, n, cf)
	if err != nil {
		if cerr := ctxCause(ctx); cerr != nil {
			sp.End()
			return rep, cerr
		}
		fail("reductions", err)
	} else {
		// Reduction survivor sets are name-sorted (and the list of sets
		// name-ordered) so the report serialises identically for
		// isomorphic nets regardless of declaration order.
		for _, ts := range rows {
			rep.Reductions = append(rep.Reductions, sortedNames(n, ts))
		}
		sort.Slice(rep.Reductions, func(a, b int) bool {
			return lessStrings(rep.Reductions[a], rep.Reductions[b])
		})
	}
	sp.End()

	sp = tr.Start("core/solve")
	sched, err := e.schedule(ctx, n, cf, fresh, tr)
	sp.End()
	if err != nil {
		if cerr := ctxCause(ctx); cerr != nil {
			// The deadline fired mid-sweep: surface the cancellation, not a
			// bogus "not schedulable" verdict.
			return rep, cerr
		}
		if !finalAttempt && errors.Is(err, core.ErrBudgetExceeded) {
			// Transient budget trip: hand it to the retry policy instead of
			// recording a verdict that a second attempt might overturn.
			return rep, err
		}
		rep.ScheduleError = err.Error()
		return rep, nil
	}
	rep.Schedulable = true
	rep.Allocations = sched.AllocationCount
	rep.AllocationsSaturated = sched.AllocationCountSaturated
	rep.Schedule = sched.Export()
	sp = tr.Start("core/bounds")
	if bounds, err := sched.BufferBounds(); err != nil {
		fail("buffer-bounds", err)
	} else {
		rep.BufferBounds = map[string]int{}
		for p, b := range bounds {
			rep.BufferBounds[n.PlaceName(petri.Place(p))] = b
		}
	}
	sp.End()

	sp = tr.Start("core/tasks")
	tp, err := core.PartitionTasks(n, e.coreOpts(ctx, tr))
	if err != nil {
		if cerr := ctxCause(ctx); cerr != nil {
			sp.End()
			return rep, cerr
		}
		fail("tasks", err)
		tp = nil
	} else {
		for _, task := range tp.Tasks {
			rep.Tasks = append(rep.Tasks, TaskReport{
				Name:        task.Name,
				Sources:     sortedNames(n, task.Sources),
				Transitions: sortedNames(n, task.Transitions),
			})
		}
		// Task order, like task names, must not depend on declaration
		// order (names are unique: one task per source group).
		sort.Slice(rep.Tasks, func(a, b int) bool { return rep.Tasks[a].Name < rep.Tasks[b].Name })
	}
	sp.End()

	if e.cfg.Timing.Enabled() && tp != nil {
		if cerr := ctxCause(ctx); cerr != nil {
			return rep, cerr
		}
		if trep, err := e.timingPass(n, cf, sched, tp, tr); err != nil {
			fail("timing", err)
		} else {
			rep.Timing = trep
		}
	}
	return rep, nil
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

package stats

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestSnapshotJSONFieldNames pins the wire names of the snapshot: they
// appear in qssd batch reports, BENCH_engine.json / BENCH_service.json
// and the service's GET /v1/stats document, so a rename is a breaking
// API change and must fail a test, not slip through a refactor.
func TestSnapshotJSONFieldNames(t *testing.T) {
	want := map[string]bool{
		"jobs":             true,
		"cache_hits":       true,
		"cache_misses":     true,
		"hit_rate":         true,
		"queue_depth":      true,
		"queue_depth_peak": true,
		"busy_workers":     true,
		"workers":          true,
		"timeouts":         true,
		"panics":           true,
		"retries":          true,
		"quarantine_skips": true,
		"utilization":      true,
		"trace":            true,
	}
	typ := reflect.TypeOf(Snapshot{})
	got := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		tag := typ.Field(i).Tag.Get("json")
		if tag == "" || tag == "-" {
			t.Fatalf("field %s has no json tag", typ.Field(i).Name)
		}
		for j := 0; j < len(tag); j++ {
			if tag[j] == ',' {
				tag = tag[:j]
				break
			}
		}
		got[tag] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot JSON fields changed:\ngot  %v\nwant %v", got, want)
	}
}

// TestSnapshotJSONRoundTrip checks a populated snapshot survives
// marshal/unmarshal unchanged — the qssd client and the journal both
// rehydrate engine documents from JSON.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	var c Counters
	c.Jobs.Store(7)
	c.CacheHits.Store(30)
	c.CacheMisses.Store(10)
	c.QueueDepth.Store(2)
	c.ObserveQueueDepth(5)
	c.BusyWorkers.Store(3)
	c.BusyNanos.Store(4e9)
	c.Timeouts.Store(1)
	c.Panics.Store(2)
	c.Retries.Store(3)
	c.QuarantineSkips.Store(4)

	snap := c.Snapshot(4, 2e9)
	if snap.HitRate != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", snap.HitRate)
	}
	if snap.Utilization != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", snap.Utilization)
	}
	if snap.QueueDepthPeak != 5 {
		t.Fatalf("queue depth peak = %v, want 5", snap.QueueDepthPeak)
	}

	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip changed the snapshot:\n%+v\nvs\n%+v", snap, back)
	}
}

func TestObserveQueueDepthKeepsPeak(t *testing.T) {
	var c Counters
	for _, d := range []int64{3, 9, 4} {
		c.ObserveQueueDepth(d)
	}
	if got := c.QueueDepthPeak.Load(); got != 9 {
		t.Fatalf("peak = %d, want 9", got)
	}
}

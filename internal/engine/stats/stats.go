// Package stats is the engine's lightweight instrumentation: a fixed set
// of atomic counters (jobs, cache hits/misses, queue depth, worker
// occupancy) cheap enough to update on every operation, plus an immutable
// Snapshot for reports. It exists so the BENCH trajectory can track
// engine throughput and cache effectiveness without a metrics dependency.
package stats

import (
	"sync/atomic"

	"fcpn/internal/trace"
)

// Counters is the live, goroutine-safe counter set. The zero value is
// ready to use.
type Counters struct {
	// Jobs counts analysis jobs accepted by the engine.
	Jobs atomic.Int64
	// CacheHits / CacheMisses count content-addressed cache lookups
	// across every layer.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// QueueDepth is the number of submitted jobs not yet picked up by a
	// worker (a gauge).
	QueueDepth atomic.Int64
	// QueueDepthPeak is the high-water mark of QueueDepth over the
	// engine's lifetime. With a bounded submission window it never
	// exceeds the window, which is what makes the gauge meaningful.
	QueueDepthPeak atomic.Int64
	// BusyWorkers is the number of workers currently executing a job
	// (a gauge).
	BusyWorkers atomic.Int64
	// BusyNanos accumulates worker busy time, for utilisation.
	BusyNanos atomic.Int64

	// Failure-mode counters (see docs/ENGINE.md "Failure modes"):
	// Timeouts counts jobs that hit their per-job deadline, Panics jobs
	// whose worker recovered a panic, Retries transient-failure retries,
	// QuarantineSkips jobs refused because their canonical hash was
	// quarantined by an earlier panic.
	Timeouts        atomic.Int64
	Panics          atomic.Int64
	Retries         atomic.Int64
	QuarantineSkips atomic.Int64
}

// ObserveQueueDepth folds a just-observed queue depth into the peak
// gauge.
func (c *Counters) ObserveQueueDepth(depth int64) {
	for {
		peak := c.QueueDepthPeak.Load()
		if depth <= peak || c.QueueDepthPeak.CompareAndSwap(peak, depth) {
			return
		}
	}
}

// Snapshot is a consistent-enough point-in-time reading of the counters,
// JSON-ready for reports.
type Snapshot struct {
	Jobs        int64   `json:"jobs"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	QueueDepth  int64   `json:"queue_depth"`
	// QueueDepthPeak is the lifetime high-water mark of the queue gauge;
	// with AnalyzeBatch's bounded submission window it stays ≤ the window.
	QueueDepthPeak int64 `json:"queue_depth_peak"`
	BusyWorkers    int64 `json:"busy_workers"`
	Workers        int   `json:"workers"`

	// Failure-mode counters: deadline trips, recovered panics,
	// transient-failure retries, and quarantine refusals.
	Timeouts        int64 `json:"timeouts,omitempty"`
	Panics          int64 `json:"panics,omitempty"`
	Retries         int64 `json:"retries,omitempty"`
	QuarantineSkips int64 `json:"quarantine_skips,omitempty"`
	// Utilization is cumulative worker busy time divided by
	// workers × wall time, in [0, 1] modulo sampling skew.
	Utilization float64 `json:"utilization"`
	// Trace is the engine-lifetime per-phase aggregate across every job,
	// including per-layer cache counters. Filled by engine.Stats; nil
	// when tracing never ran.
	Trace *trace.Report `json:"trace,omitempty"`
}

// Snapshot captures the counters. workers is the pool size and wallNanos
// the engine's elapsed wall-clock time, both needed for utilisation.
func (c *Counters) Snapshot(workers int, wallNanos int64) Snapshot {
	s := Snapshot{
		Jobs:            c.Jobs.Load(),
		CacheHits:       c.CacheHits.Load(),
		CacheMisses:     c.CacheMisses.Load(),
		QueueDepth:      c.QueueDepth.Load(),
		QueueDepthPeak:  c.QueueDepthPeak.Load(),
		BusyWorkers:     c.BusyWorkers.Load(),
		Workers:         workers,
		Timeouts:        c.Timeouts.Load(),
		Panics:          c.Panics.Load(),
		Retries:         c.Retries.Load(),
		QuarantineSkips: c.QuarantineSkips.Load(),
	}
	if total := s.CacheHits + s.CacheMisses; total > 0 {
		s.HitRate = float64(s.CacheHits) / float64(total)
	}
	if workers > 0 && wallNanos > 0 {
		s.Utilization = float64(c.BusyNanos.Load()) / (float64(workers) * float64(wallNanos))
	}
	return s
}

// Package stats is the engine's lightweight instrumentation: a fixed set
// of atomic counters (jobs, cache hits/misses, queue depth, worker
// occupancy) cheap enough to update on every operation, plus an immutable
// Snapshot for reports. It exists so the BENCH trajectory can track
// engine throughput and cache effectiveness without a metrics dependency.
package stats

import (
	"sync/atomic"

	"fcpn/internal/trace"
)

// Counters is the live, goroutine-safe counter set. The zero value is
// ready to use.
type Counters struct {
	// Jobs counts analysis jobs accepted by the engine.
	Jobs atomic.Int64
	// CacheHits / CacheMisses count content-addressed cache lookups
	// across every layer.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// QueueDepth is the number of submitted jobs not yet picked up by a
	// worker (a gauge).
	QueueDepth atomic.Int64
	// BusyWorkers is the number of workers currently executing a job
	// (a gauge).
	BusyWorkers atomic.Int64
	// BusyNanos accumulates worker busy time, for utilisation.
	BusyNanos atomic.Int64
}

// Snapshot is a consistent-enough point-in-time reading of the counters,
// JSON-ready for reports.
type Snapshot struct {
	Jobs        int64   `json:"jobs"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	QueueDepth  int64   `json:"queue_depth"`
	BusyWorkers int64   `json:"busy_workers"`
	Workers     int     `json:"workers"`
	// Utilization is cumulative worker busy time divided by
	// workers × wall time, in [0, 1] modulo sampling skew.
	Utilization float64 `json:"utilization"`
	// Trace is the engine-lifetime per-phase aggregate across every job,
	// including per-layer cache counters. Filled by engine.Stats; nil
	// when tracing never ran.
	Trace *trace.Report `json:"trace,omitempty"`
}

// Snapshot captures the counters. workers is the pool size and wallNanos
// the engine's elapsed wall-clock time, both needed for utilisation.
func (c *Counters) Snapshot(workers int, wallNanos int64) Snapshot {
	s := Snapshot{
		Jobs:        c.Jobs.Load(),
		CacheHits:   c.CacheHits.Load(),
		CacheMisses: c.CacheMisses.Load(),
		QueueDepth:  c.QueueDepth.Load(),
		BusyWorkers: c.BusyWorkers.Load(),
		Workers:     workers,
	}
	if total := s.CacheHits + s.CacheMisses; total > 0 {
		s.HitRate = float64(s.CacheHits) / float64(total)
	}
	if workers > 0 && wallNanos > 0 {
		s.Utilization = float64(c.BusyNanos.Load()) / (float64(workers) * float64(wallNanos))
	}
	return s
}

package engine

import (
	"fmt"
	"testing"

	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

// benchNets is a fixed 64-net corpus of distinct generated pipelines.
func benchNets() []*petri.Net {
	nets := make([]*petri.Net, 64)
	for i := range nets {
		nets[i] = netgen.RandomSchedulablePipeline(uint64(i), netgen.DefaultConfig())
	}
	return nets
}

// BenchmarkEngineBatch measures cold batch-analysis throughput at several
// pool widths. The inner schedulability sweep inherits the pool width
// (the engine default), so wide pools win twice: batches shard across
// workers and the dominant net's reduction sweep parallelises. The
// acceptance target is workers=4 beating workers=1 by >1.5x. A fresh
// engine per iteration keeps every run cold.
func BenchmarkEngineBatch(b *testing.B) {
	nets := benchNets()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New(Config{Workers: workers})
				e.AnalyzeBatch(nets)
				e.Close()
			}
			b.ReportMetric(float64(len(nets))*float64(b.N)/b.Elapsed().Seconds(), "nets/s")
		})
	}
}

// BenchmarkEngineWarm measures the same batch against a warmed cache —
// the content-addressed hit path (canonical rebuild only).
func BenchmarkEngineWarm(b *testing.B) {
	nets := benchNets()
	e := New(Config{Workers: 4})
	defer e.Close()
	e.AnalyzeBatch(nets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AnalyzeBatch(nets)
	}
	b.ReportMetric(float64(len(nets))*float64(b.N)/b.Elapsed().Seconds(), "nets/s")
}

package engine

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"fcpn/internal/engine/stats"
	"fcpn/internal/trace"
)

// cache is the engine's content-addressed store: a bounded, goroutine-safe
// LRU keyed by strings derived from canonical structural hashes
// ("<layer>:<hash>"). Values are stored in canonical index space and must
// be treated as immutable by all readers — that is what makes one entry
// shareable across every net with the same canonical structure.
//
// A singleflight map collapses concurrent computations of the same key:
// the first goroutine computes, the rest wait and share the result. The
// leader's lookup counts as a miss, each follower's as a hit.
type cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      list.List // front = most recent; values are *cacheEntry
	inflight map[string]*flight
	counters *stats.Counters
	// tracer receives per-layer lookup counters
	// ("cache/<layer>/hit|miss|wait"), derived from the key prefix. The
	// aggregate counters above stay layer-blind for compatibility.
	tracer *trace.Tracer
}

type cacheEntry struct {
	key string
	val any
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

func newCache(capacity int, counters *stats.Counters, tracer *trace.Tracer) *cache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &cache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
		counters: counters,
		tracer:   tracer,
	}
}

// count records a layer-resolved lookup outcome ("hit", "miss", "wait")
// on the tracer's counters.
func (c *cache) count(key, outcome string) {
	if c.tracer == nil {
		return
	}
	layer := key
	if i := strings.IndexByte(key, ':'); i >= 0 {
		layer = key[:i]
	}
	c.tracer.Add("cache/"+layer+"/"+outcome, 1)
}

// get returns the value stored under key and counts the hit or miss.
func (c *cache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.counters.CacheMisses.Add(1)
		c.count(key, "miss")
		return nil, false
	}
	c.counters.CacheHits.Add(1)
	c.count(key, "hit")
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores val under key, evicting the least-recently-used entry past
// capacity.
func (c *cache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	for len(c.entries) > c.capacity {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// getOrCompute returns the cached value for key or computes it exactly
// once across concurrent callers. Errors are returned to every waiter and
// never cached.
func (c *cache) getOrCompute(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.counters.CacheHits.Add(1)
		c.count(key, "hit")
		c.lru.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, nil
	}
	if f, ok := c.inflight[key]; ok {
		// A concurrent computation is underway; share its outcome.
		c.counters.CacheHits.Add(1)
		c.count(key, "wait")
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	c.counters.CacheMisses.Add(1)
	c.count(key, "miss")
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	// A panic in compute must not strand the flight: waiters would block
	// on done forever and every future lookup of the key would join them.
	// Convert the panic into an error for the waiters, release the
	// flight, then re-raise for the leader's own recovery (the engine's
	// per-job quarantine).
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("engine: computing %s panicked: %v", key, r)
			close(f.done)
			c.mu.Lock()
			delete(c.inflight, key)
			c.mu.Unlock()
			panic(r)
		}
	}()
	f.val, f.err = compute()
	close(f.done)

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	if f.err == nil {
		c.put(key, f.val)
	}
	return f.val, f.err
}

// semiflowCache adapts the engine cache to invariant.Cache so
// core.Solve/PartitionTasks memoise their Farkas enumerations in the same
// content-addressed store.
type semiflowCache struct{ c *cache }

func (s semiflowCache) GetSemiflows(key string) ([][]int, bool) {
	v, ok := s.c.get(key)
	if !ok {
		return nil, false
	}
	return v.([][]int), true
}

func (s semiflowCache) PutSemiflows(key string, rows [][]int) { s.c.put(key, rows) }

package engine

import (
	"encoding/json"
	"fmt"
	"sort"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/petri"
	"fcpn/internal/rtos"
	"fcpn/internal/sim"
	"fcpn/internal/timing"
	"fcpn/internal/trace"
)

// TimingOptions configures the engine's weakly-hard timing-safety pass:
// every schedulable net's synthesised program is driven against a
// canonical periodic workload and its deadline hit/miss stream checked
// against the (m,k) constraint; optionally the overload margin (the
// harshest fault-injector intensity the constraint survives) is searched
// per overload kind. The zero value disables the pass.
type TimingOptions struct {
	// MK is the weakly-hard constraint; disabled (zero) turns the whole
	// pass off.
	MK timing.Constraint
	// Deadline is the per-event response budget in cycles; 0 calibrates
	// per net to sim.DefaultDeadlineFactor x the fault-free worst
	// response.
	Deadline int64
	// EventsPerSource sizes the synthetic workload (default 32): source
	// i (in canonical order) emits that many events with period 2i+3 and
	// phase i, mirroring qss -verify-bounds.
	EventsPerSource int
	// Seed drives choice resolution and the margin injectors (default 1).
	Seed uint64
	// Margin turns on the overload-margin search over MarginKinds
	// (default burst and overrun).
	Margin        bool
	MarginKinds   []sim.OverloadKind
	MarginCeiling int
}

// Enabled reports whether the timing pass runs.
func (o TimingOptions) Enabled() bool { return o.MK.Enabled() }

// normalized applies the documented defaults, so cache keys built from
// the options are stable however the caller spelled them.
func (o TimingOptions) normalized() TimingOptions {
	if o.EventsPerSource <= 0 {
		o.EventsPerSource = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Margin && len(o.MarginKinds) == 0 {
		o.MarginKinds = []sim.OverloadKind{sim.OverloadBurst, sim.OverloadOverrun}
	}
	return o
}

// TimingReport is the per-net outcome of the timing pass, attached to
// NetReport.Timing. Like every other report field it is decoded from a
// canonical cached payload, hit and miss alike, so warm results marshal
// byte-identically to cold ones; the verdict and margins carry no
// net-local identifiers.
type TimingReport struct {
	// MK restates the constraint ("(m,k)"); Deadline is the per-event
	// budget actually used (configured, or calibrated from the
	// fault-free run); EventsPerSource and Seed restate the workload.
	MK              string `json:"mk"`
	Deadline        int64  `json:"deadline"`
	EventsPerSource int    `json:"events_per_source"`
	Seed            uint64 `json:"seed"`
	// Verdict is the nominal run's weakly-hard verdict.
	Verdict *timing.Verdict `json:"verdict"`
	// Margins, when the margin search ran, hold one graceful-degradation
	// frontier per overload kind, in MarginKinds order.
	Margins []*sim.OverloadMargin `json:"margins,omitempty"`
}

// timingCacheVersion tags the timing layer's payload format (JSON of
// TimingReport / sim.OverloadMargin). Part of the key, like schedKey.
const timingCacheVersion = 1

// timingParams renders the option fields that shape a verdict, for keys.
func timingParams(o TimingOptions) string {
	return fmt.Sprintf("%d-%d:d%d:e%d:s%d", o.MK.M, o.MK.K, o.Deadline, o.EventsPerSource, o.Seed)
}

// timingVerdictKey is the cache key of a net's nominal timing verdict.
func timingVerdictKey(hash string, o TimingOptions) string {
	return fmt.Sprintf("timing:v%d:%s:%s", timingCacheVersion, timingParams(o), hash)
}

// timingMarginKey is the cache key of one overload kind's margin search.
func timingMarginKey(hash string, o TimingOptions, kind sim.OverloadKind) string {
	return fmt.Sprintf("timing:v%d:margin:%s:c%d:%s:%s", timingCacheVersion, kind, o.MarginCeiling, timingParams(o), hash)
}

// timingWorkload builds the canonical periodic workload: sources ordered
// by canonical position, source i firing EventsPerSource times with
// period 2i+3 from phase i. Isomorphic nets get corresponding streams.
func timingWorkload(n *petri.Net, cf *petri.CanonicalForm, o TimingOptions) []rtos.Event {
	sources := append([]petri.Transition(nil), n.SourceTransitions()...)
	sort.Slice(sources, func(a, b int) bool {
		return cf.TransPos[sources[a]] < cf.TransPos[sources[b]]
	})
	streams := make([][]rtos.Event, len(sources))
	for i, src := range sources {
		streams[i] = rtos.Periodic(src, int64(2*i+3), int64(i), o.EventsPerSource)
	}
	return rtos.Merge(streams...)
}

// canonResolver resolves choices as a pure function of (canonical place
// position, occurrence index, seed): the target is drawn from the
// place's consumers ordered by canonical transition position, then
// located in the alternatives the interpreter offers. Isomorphic nets
// therefore resolve correspondingly, which is what lets the timing
// layer's cached verdicts be a function of the canonical structure alone
// (sim.DecisionStream hashes net-local indices and would not be).
func canonResolver(n *petri.Net, cf *petri.CanonicalForm, seed uint64) codegen.ChoiceResolver {
	// Dense place-indexed state: the resolver runs once per simulated
	// choice, so occurrence counters and the (static) canonical consumer
	// order are slice lookups, not map operations; the order is computed
	// lazily per place instead of sorted on every call.
	occ := make([]uint64, n.NumPlaces())
	order := make([][]petri.Transition, n.NumPlaces())
	return func(p petri.Place, alts []petri.Transition) int {
		k := occ[p]
		occ[p] = k + 1
		h := seed ^ (uint64(cf.PlacePos[p])+1)*0x9E3779B97F4A7C15 ^ (k+1)*0xBF58476D1CE4E5B9
		h ^= h >> 31
		h *= 0x94D049BB133111EB
		h ^= h >> 29
		ts := order[p]
		if ts == nil {
			cons := n.Consumers(p)
			ts = make([]petri.Transition, len(cons))
			for i, c := range cons {
				ts[i] = c.Transition
			}
			sort.Slice(ts, func(a, b int) bool { return cf.TransPos[ts[a]] < cf.TransPos[ts[b]] })
			order[p] = ts
		}
		target := ts[h%uint64(len(ts))]
		for i, t := range alts {
			if t == target {
				return i
			}
		}
		return -1
	}
}

// timingPass runs the whole pass for one schedulable net: nominal
// verdict under the "timing/monitor" span, then (when configured) the
// margin searches under "timing/margin". Both go through the cache; the
// report is decoded from the stored payload on hit and miss alike.
func (e *Engine) timingPass(n *petri.Net, cf *petri.CanonicalForm, sched *core.Schedule, tp *core.TaskPartition, tr *trace.Tracer) (*TimingReport, error) {
	opts := e.cfg.Timing.normalized()

	// The program is only needed on cache misses; memoise it per job so a
	// verdict miss and several margin misses generate code once.
	var prog *codegen.Program
	getProg := func() (*codegen.Program, error) {
		if prog != nil {
			return prog, nil
		}
		var err error
		prog, err = codegen.Generate(sched, tp)
		return prog, err
	}
	hooks := func() sim.Hooks {
		return sim.Hooks{Resolver: canonResolver(n, cf, opts.Seed)}
	}
	events := timingWorkload(n, cf, opts)
	cost := rtos.DefaultCostModel()

	sp := tr.Start("timing/monitor")
	v, err := e.cache.getOrCompute(timingVerdictKey(cf.Hash, opts), func() (any, error) {
		p, err := getProg()
		if err != nil {
			return nil, err
		}
		deadline := opts.Deadline
		if deadline == 0 {
			deadline, err = sim.CalibrateDeadline(p, events, cost,
				sim.RobustConfig{CyclesPerTick: 1}, hooks(), sim.DefaultDeadlineFactor)
			if err != nil {
				return nil, err
			}
		}
		rm, err := sim.RunRobust(p, events, cost,
			sim.RobustConfig{CyclesPerTick: 1, Deadline: deadline, MK: opts.MK}, hooks())
		if err != nil {
			return nil, err
		}
		enc, err := json.Marshal(&TimingReport{
			MK:              opts.MK.String(),
			Deadline:        deadline,
			EventsPerSource: opts.EventsPerSource,
			Seed:            opts.Seed,
			Verdict:         rm.Timing,
		})
		if err != nil {
			return nil, err
		}
		tr.Add("cache/timing/bytes", int64(len(enc)))
		return enc, nil
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	trep := &TimingReport{}
	if err := json.Unmarshal(v.([]byte), trep); err != nil {
		return nil, fmt.Errorf("engine: timing payload: %w", err)
	}

	if !opts.Margin {
		return trep, nil
	}
	sp = tr.Start("timing/margin")
	defer sp.End()
	for _, kind := range opts.MarginKinds {
		kind := kind
		v, err := e.cache.getOrCompute(timingMarginKey(cf.Hash, opts, kind), func() (any, error) {
			p, err := getProg()
			if err != nil {
				return nil, err
			}
			om, err := sim.SearchOverloadMargin(p, events, cost, sim.MarginConfig{
				Kind:    kind,
				MK:      opts.MK,
				Seed:    opts.Seed,
				Ceiling: opts.MarginCeiling,
				Robust:  sim.RobustConfig{CyclesPerTick: 1, Deadline: trep.Deadline},
				Hooks:   hooks,
			})
			if err != nil {
				return nil, err
			}
			tr.Add("timing/probes", int64(om.Result.Probes))
			return json.Marshal(om)
		})
		if err != nil {
			return nil, err
		}
		om := &sim.OverloadMargin{}
		if err := json.Unmarshal(v.([]byte), om); err != nil {
			return nil, fmt.Errorf("engine: margin payload: %w", err)
		}
		trep.Margins = append(trep.Margins, om)
	}
	return trep, nil
}

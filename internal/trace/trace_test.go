package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	s.End()
	tr.StartDetail("y").End()
	tr.Add("c", 3)
	tr.Observe("z", time.Second, false)
	tr.Merge(New())
	if rep := tr.Report(); rep != nil {
		t.Fatalf("nil tracer reported %+v", rep)
	}
	if got := tr.Report().TopTotalMS(); got != 0 {
		t.Fatalf("nil report TopTotalMS = %v", got)
	}
}

func TestSpanAggregation(t *testing.T) {
	tr := New()
	tr.Observe("solve", 2*time.Millisecond, false)
	tr.Observe("solve", 40*time.Microsecond, false)
	tr.Observe("check", 500*time.Microsecond, true)
	tr.Add("cache/sched/hit", 2)
	tr.Add("cache/sched/hit", 1)

	rep := tr.Report()
	ps, ok := rep.Phase("solve")
	if !ok {
		t.Fatal("missing solve phase")
	}
	if ps.Count != 2 || ps.Detail {
		t.Fatalf("solve stat = %+v", ps)
	}
	if ps.MinMS != 0.04 || ps.MaxMS != 2.0 || ps.TotalMS != 2.04 {
		t.Fatalf("solve durations = %+v", ps)
	}
	// 40µs → bucket 0 (<100us), 2ms → bucket 2 (<10ms).
	if ps.Buckets != [NumBuckets]int64{1, 0, 1, 0, 0, 0} {
		t.Fatalf("solve buckets = %v", ps.Buckets)
	}
	if cs, _ := rep.Phase("check"); !cs.Detail || cs.Count != 1 {
		t.Fatalf("check stat = %+v", cs)
	}
	if rep.Counters["cache/sched/hit"] != 3 {
		t.Fatalf("counters = %v", rep.Counters)
	}
	// Wall-time account excludes detail phases.
	if got := rep.TopTotalMS(); got != 2.04 {
		t.Fatalf("TopTotalMS = %v", got)
	}
}

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{99 * time.Microsecond, 0},
		{100 * time.Microsecond, 1},
		{time.Millisecond, 2},
		{9 * time.Millisecond, 2},
		{10 * time.Millisecond, 3},
		{99 * time.Millisecond, 3},
		{100 * time.Millisecond, 4},
		{time.Second, 5},
		{time.Hour, 5},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestSpanEndRecords(t *testing.T) {
	tr := New()
	s := tr.Start("p")
	time.Sleep(time.Millisecond)
	s.End()
	ps, ok := tr.Report().Phase("p")
	if !ok || ps.Count != 1 {
		t.Fatalf("stat = %+v ok=%v", ps, ok)
	}
	if ps.TotalMS < 0.5 {
		t.Fatalf("span did not measure elapsed time: %+v", ps)
	}
	// Zero Span (from a nil tracer) must be inert.
	var zero Span
	zero.End()
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Observe("farkas", time.Millisecond, true)
	a.Add("rows", 10)
	b.Observe("farkas", 3*time.Millisecond, true)
	b.Observe("solve", 2*time.Millisecond, false)
	b.Add("rows", 5)

	a.Merge(b)
	a.Merge(nil) // no-op

	rep := a.Report()
	fs, _ := rep.Phase("farkas")
	if fs.Count != 2 || fs.TotalMS != 4.0 || fs.MinMS != 1.0 || fs.MaxMS != 3.0 {
		t.Fatalf("merged farkas = %+v", fs)
	}
	if ss, ok := rep.Phase("solve"); !ok || ss.Count != 1 {
		t.Fatalf("merged solve = %+v", ss)
	}
	if rep.Counters["rows"] != 15 {
		t.Fatalf("merged counters = %v", rep.Counters)
	}
}

// TestMergeIntoEmptyKeepsMin guards the min-widening rule: merging into a
// fresh tracer must adopt the source min, not stay at zero.
func TestMergeIntoEmptyKeepsMin(t *testing.T) {
	src := New()
	src.Observe("p", 5*time.Millisecond, false)
	dst := New()
	dst.Merge(src)
	ps, _ := dst.Report().Phase("p")
	if ps.MinMS != 5.0 {
		t.Fatalf("merged min = %v, want 5", ps.MinMS)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.StartDetail("check").End()
				tr.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	ps, _ := tr.Report().Phase("check")
	if ps.Count != 1600 || tr.Report().Counters["n"] != 1600 {
		t.Fatalf("lost updates: %+v", ps)
	}
}

func TestReportJSONShape(t *testing.T) {
	tr := New()
	tr.Observe("solve", time.Millisecond, false)
	b, err := json.Marshal(tr.Report())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Phases []struct {
			Phase   string  `json:"phase"`
			Count   int64   `json:"count"`
			TotalMS float64 `json:"total_ms"`
			Buckets []int64 `json:"buckets"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Phases) != 1 || decoded.Phases[0].Phase != "solve" ||
		len(decoded.Phases[0].Buckets) != NumBuckets {
		t.Fatalf("JSON shape: %s", b)
	}
}

func TestReportSortedByName(t *testing.T) {
	tr := New()
	for _, n := range []string{"z", "a", "m"} {
		tr.Observe(n, time.Microsecond, false)
	}
	rep := tr.Report()
	for i := 1; i < len(rep.Phases); i++ {
		if rep.Phases[i-1].Name > rep.Phases[i].Name {
			t.Fatalf("phases not sorted: %v", rep.Phases)
		}
	}
}

// Package trace is the pipeline's lightweight phase tracer: named spans
// aggregated into per-phase duration statistics (count, total, min/max,
// log-scale histogram) plus free-form counters, cheap enough to leave on
// permanently. It exists so the per-phase cost profile of the synthesis
// pipeline — parse/classify, semiflow enumeration, reduction, the
// schedulability sweep, code generation — is visible in every report
// instead of requiring an external profiler (the phases range from
// polynomial to NP-hard, so "where does the time go" has no static
// answer).
//
// Design constraints:
//
//   - stdlib only, no metrics dependency (mirrors internal/engine/stats);
//   - allocation-frugal: starting and ending a span allocates nothing
//     after a phase's first use (Span is a value, aggregates are reused);
//   - goroutine-safe: spans may end on any goroutine, so the per-phase
//     fan-out of core.Options.Workers is visible as count×duration
//     overlap;
//   - a nil *Tracer is valid everywhere and disables collection, so
//     callers thread the tracer unconditionally.
//
// Phases come in two kinds. Top-level phases partition a job's wall time
// (their totals sum to the job's elapsed time, modulo unattributed glue);
// detail phases are nested inside a top-level phase (one span per
// T-reduction check, per Farkas run, …) and would double-count in any
// sum. Report keeps them apart so consumers can check coverage against
// the top-level phases only.
package trace

import (
	"sort"
	"sync"
	"time"
)

// NumBuckets is the number of histogram buckets per phase. Bucket i
// counts spans with duration < Boundaries[i]; the last bucket is
// unbounded.
const NumBuckets = 6

// Boundaries are the upper bounds of the first NumBuckets-1 histogram
// buckets. BucketLabels names all NumBuckets buckets in report order.
var (
	Boundaries = [NumBuckets - 1]time.Duration{
		100 * time.Microsecond,
		time.Millisecond,
		10 * time.Millisecond,
		100 * time.Millisecond,
		time.Second,
	}
	BucketLabels = [NumBuckets]string{
		"<100us", "<1ms", "<10ms", "<100ms", "<1s", ">=1s",
	}
)

// phase is the live aggregate for one phase name.
type phase struct {
	count   int64
	total   time.Duration
	min     time.Duration
	max     time.Duration
	buckets [NumBuckets]int64
	detail  bool
}

// Tracer collects span aggregates and counters. The zero value is ready
// to use; a nil *Tracer is a valid no-op collector.
type Tracer struct {
	mu       sync.Mutex
	phases   map[string]*phase
	counters map[string]int64
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Span is an in-flight measurement returned by Start. It is a plain
// value: copying is fine, and End on the zero Span is a no-op.
type Span struct {
	tr     *Tracer
	name   string
	start  time.Time
	detail bool
}

// Start opens a top-level span. Top-level spans of one job are expected
// to be non-overlapping, so their totals account for the job's wall
// time.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, start: time.Now()}
}

// StartDetail opens a detail span: a measurement nested inside some
// top-level phase (e.g. one per-allocation schedulability check inside
// the solve phase). Detail spans are reported separately so they never
// double-count in wall-time sums.
func (t *Tracer) StartDetail(name string) Span {
	s := t.Start(name)
	s.detail = true
	return s
}

// End closes the span and records its duration.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.record(s.name, time.Since(s.start), s.detail)
}

// Observe records an externally measured duration under a phase name,
// for callers that already hold a timing (e.g. merging a sub-report).
func (t *Tracer) Observe(name string, d time.Duration, detail bool) {
	if t == nil {
		return
	}
	t.record(name, d, detail)
}

func (t *Tracer) record(name string, d time.Duration, detail bool) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.phase(name, detail)
	p.count++
	p.total += d
	if d < p.min || p.count == 1 {
		p.min = d
	}
	if d > p.max {
		p.max = d
	}
	p.buckets[bucketOf(d)]++
}

// phase returns the aggregate for name, creating it on first use. Must
// be called with t.mu held.
func (t *Tracer) phase(name string, detail bool) *phase {
	if t.phases == nil {
		t.phases = make(map[string]*phase)
	}
	p, ok := t.phases[name]
	if !ok {
		p = &phase{detail: detail}
		t.phases[name] = p
	}
	return p
}

func bucketOf(d time.Duration) int {
	for i, b := range Boundaries {
		if d < b {
			return i
		}
	}
	return NumBuckets - 1
}

// Add increments a named counter (cache hits per layer, rows enumerated,
// …). Counters are monotone and deterministic where the underlying event
// counts are.
func (t *Tracer) Add(name string, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.counters == nil {
		t.counters = make(map[string]int64)
	}
	t.counters[name] += n
}

// Merge folds the other tracer's aggregates into t (per-phase stats add
// up; min/max widen; counters sum). The engine uses it to fold each
// job's tracer into the engine-lifetime aggregate.
func (t *Tracer) Merge(other *Tracer) {
	if t == nil || other == nil {
		return
	}
	// Snapshot other first so the two locks never nest.
	rep := other.Report()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ps := range rep.Phases {
		p := t.phase(ps.Name, ps.Detail)
		if p.count == 0 || ps.minDuration < p.min {
			p.min = ps.minDuration
		}
		if ps.maxDuration > p.max {
			p.max = ps.maxDuration
		}
		p.count += ps.Count
		p.total += ps.totalDuration
		for i, c := range ps.Buckets {
			p.buckets[i] += c
		}
	}
	if len(rep.Counters) > 0 && t.counters == nil {
		t.counters = make(map[string]int64)
	}
	for name, v := range rep.Counters {
		t.counters[name] += v
	}
}

// PhaseStat is the JSON-ready aggregate of one phase.
type PhaseStat struct {
	Name  string `json:"phase"`
	Count int64  `json:"count"`
	// TotalMS/MinMS/MaxMS are durations in milliseconds. Durations are
	// the only non-deterministic fields; Count and the per-phase
	// presence are identical across worker counts and cache states for
	// the same input (the worker-independence tests assert this).
	TotalMS float64 `json:"total_ms"`
	MinMS   float64 `json:"min_ms"`
	MaxMS   float64 `json:"max_ms"`
	// Buckets is the duration histogram in BucketLabels order.
	Buckets [NumBuckets]int64 `json:"buckets"`
	// Detail marks nested spans that overlap a top-level phase and must
	// be excluded from wall-time sums.
	Detail bool `json:"detail,omitempty"`

	minDuration, maxDuration, totalDuration time.Duration
}

// Report is a point-in-time snapshot of a tracer, JSON-ready. Phases are
// sorted by name for stable output.
type Report struct {
	Phases   []PhaseStat      `json:"phases,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Report snapshots the tracer. A nil tracer reports nil.
func (t *Tracer) Report() *Report {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rep := &Report{}
	for name, p := range t.phases {
		rep.Phases = append(rep.Phases, PhaseStat{
			Name:          name,
			Count:         p.count,
			TotalMS:       ms(p.total),
			MinMS:         ms(p.min),
			MaxMS:         ms(p.max),
			Buckets:       p.buckets,
			Detail:        p.detail,
			minDuration:   p.min,
			maxDuration:   p.max,
			totalDuration: p.total,
		})
	}
	sort.Slice(rep.Phases, func(i, j int) bool { return rep.Phases[i].Name < rep.Phases[j].Name })
	if len(t.counters) > 0 {
		rep.Counters = make(map[string]int64, len(t.counters))
		for name, v := range t.counters {
			rep.Counters[name] = v
		}
	}
	return rep
}

// TopTotalMS sums the totals of the non-detail phases: the traced
// account of a job's wall time.
func (r *Report) TopTotalMS() float64 {
	if r == nil {
		return 0
	}
	sum := 0.0
	for _, p := range r.Phases {
		if !p.Detail {
			sum += p.TotalMS
		}
	}
	return sum
}

// Counter returns the named counter's value, or 0 when absent (including
// on a nil report). Failure-mode counters like "engine/retry" are read
// through this in tests and reports.
func (r *Report) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.Counters[name]
}

// Phase returns the named phase's stats, or a zero PhaseStat if absent.
func (r *Report) Phase(name string) (PhaseStat, bool) {
	if r == nil {
		return PhaseStat{}, false
	}
	for _, p := range r.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseStat{}, false
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

package atm

import (
	"fcpn/internal/rtos"
)

// Workload is the testbench of Section 5: a stream of ATM cells arriving
// at irregular times interleaved with the periodic cell-slot ticks.
type Workload struct {
	// Events is the time-merged event sequence delivered to the RTOS.
	Events []rtos.Event
	// Cells holds the header of each Cell event, in arrival order.
	Cells []CellHeader
}

// WorkloadConfig parameterises the generator.
type WorkloadConfig struct {
	// Cells is the number of non-empty cells (the paper used 50).
	Cells int
	// TickPeriod and CellMeanGap set the relative rates of the two inputs.
	TickPeriod  int64
	CellMeanGap int64
	// Seed makes the stream deterministic.
	Seed uint64
	// BadHeaderPct, UnknownVCPct and EOMPct shape the header stream
	// (percentages, 0–100).
	BadHeaderPct, UnknownVCPct, EOMPct int
	// VCs lists the virtual circuits cells arrive on.
	VCs []int
}

// DefaultWorkload reproduces the paper's testbench scale: 50 cells, with
// ticks running at a comparable rate so the buffer both fills and drains.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		Cells:        50,
		TickPeriod:   10,
		CellMeanGap:  8,
		Seed:         0xA7151915,
		BadHeaderPct: 4,
		UnknownVCPct: 6,
		EOMPct:       20,
		VCs:          []int{1, 2, 3, 4},
	}
}

// NewWorkload generates the testbench for a model.
func NewWorkload(m *Model, cfg WorkloadConfig) *Workload {
	if cfg.Cells <= 0 {
		cfg.Cells = 50
	}
	if cfg.TickPeriod <= 0 {
		cfg.TickPeriod = 10
	}
	if cfg.CellMeanGap <= 0 {
		cfg.CellMeanGap = 8
	}
	if len(cfg.VCs) == 0 {
		cfg.VCs = []int{1}
	}
	cellEvents := rtos.Bursty(m.Cell, cfg.CellMeanGap, cfg.Cells, cfg.Seed)
	// Ticks span the whole cell stream plus a drain tail so buffered
	// cells get emitted.
	lastCell := cellEvents[len(cellEvents)-1].Time
	tickCount := int(lastCell/cfg.TickPeriod) + cfg.Cells + 8
	tickEvents := rtos.Periodic(m.Tick, cfg.TickPeriod, cfg.TickPeriod/2, tickCount)

	w := &Workload{Events: rtos.Merge(cellEvents, tickEvents)}

	state := cfg.Seed*0x9E3779B97F4A7C15 + 0x1234
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < cfg.Cells; i++ {
		h := CellHeader{
			VC:    cfg.VCs[next(len(cfg.VCs))],
			HdrOK: next(100) >= cfg.BadHeaderPct,
			EOM:   next(100) < cfg.EOMPct,
		}
		if next(100) < cfg.UnknownVCPct {
			h.VC = 999 // not provisioned
		}
		w.Cells = append(w.Cells, h)
	}
	return w
}

// CellFeeder returns a BeforeEvent hook that presents the next cell header
// to the server ahead of each Cell event and advances the slot on ticks.
func (w *Workload) CellFeeder(m *Model, s *Server) func(rtos.Event) {
	i := 0
	return func(ev rtos.Event) {
		switch ev.Source {
		case m.Cell:
			if i < len(w.Cells) {
				s.BeginCell(w.Cells[i])
				i++
			}
		case m.Tick:
			s.BeginSlot()
		}
	}
}

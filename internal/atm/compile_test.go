package atm

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/ctest"
	"fcpn/internal/petri"
)

// TestATMCCompiles compiles both synthesised ATM implementations — the
// 2-task QSS one and the 5-task functional baseline — with the system C
// compiler under -Wall -Werror.
func TestATMCCompiles(t *testing.T) {
	cc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler in PATH")
	}
	m := New()
	s, err := core.Solve(m.Net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := core.PartitionTasks(m.Net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	qss, err := codegen.Generate(s, tp)
	if err != nil {
		t.Fatal(err)
	}
	var modules []codegen.Module
	for _, mod := range m.Modules() {
		modules = append(modules, codegen.Module{Name: mod.Name, Transitions: mod.Transitions})
	}
	fun, err := codegen.GenerateModular(m.Net, modules)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for name, src := range map[string]string{
		"atm_qss":        codegen.EmitC(qss, codegen.CConfig{}),
		"atm_functional": codegen.EmitC(fun, codegen.CConfig{}),
	} {
		path := filepath.Join(dir, name+".c")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command(cc, "-std=c99", "-Wall", "-Werror", "-c", path,
			"-o", filepath.Join(dir, name+".o")).CombinedOutput()
		if err != nil {
			t.Fatalf("cc failed for %s: %v\n%s", name, err, out)
		}
	}
}

// TestCompiledATMMatchesInterpreter runs the compiled-execution comparison
// on the full case study: the 49-transition ATM server's generated C,
// compiled and executed, fires exactly like the interpreter over a
// 30-event stream.
func TestCompiledATMMatchesInterpreter(t *testing.T) {
	cc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler in PATH")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	ctest.RunCompiledComparison(t, cc, New().Net, 30)
}

// TestCompiledATMWithBehaviour repeats the compiled-execution comparison
// with the *behavioural* decision stream: real WFQ/MSD state resolves the
// choices, the recorded decisions are replayed by the C binary, and the
// machine code must fire exactly like the interpreter.
func TestCompiledATMWithBehaviour(t *testing.T) {
	cc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler in PATH")
	}
	m := New()
	server := NewServer(m, DefaultConfig())
	// Feed the behavioural model per event: sources alternate Cell/Tick in
	// the harness, so wrap the resolver to advance the workload state when
	// the corresponding source would fire. We approximate BeginCell /
	// BeginSlot through OnFire on the source transitions.
	wl := NewWorkload(m, DefaultWorkload())
	cellIdx := 0
	onFire := func(tr petri.Transition) {
		switch tr {
		case m.Cell:
			if cellIdx < len(wl.Cells) {
				server.BeginCell(wl.Cells[cellIdx])
				cellIdx++
			}
		case m.Tick:
			server.BeginSlot()
		}
		server.OnFire(tr)
	}
	ctest.RunCompiledComparisonWithResolver(t, cc, m.Net, 24, server.Resolver(), onFire)
}

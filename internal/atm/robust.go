package atm

import (
	"errors"
	"fmt"
	"strings"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/fault"
	"fcpn/internal/rtos"
	"fcpn/internal/sim"
	"fcpn/internal/timing"
)

// RobustnessConfig parameterises the ATM robustness experiment: the base
// workload, the fault scenarios applied to it, and the kernel's overload
// protections.
type RobustnessConfig struct {
	// Workload is the nominal testbench the scenarios perturb.
	Workload WorkloadConfig
	// CyclesPerTick converts workload time units to cycles (default 400,
	// which loads the server moderately: one event's service is a few
	// hundred to a few thousand cycles).
	CyclesPerTick int64
	// Scenarios is the number of seeded fault scenarios (default 10).
	Scenarios int
	// FaultSeed seeds the scenario generator.
	FaultSeed uint64
	// BurstPct/BurstExtra shape cell bursts; DupPct duplicates events;
	// DropPct loses events; TickJitter reorders ticks by +-TickJitter
	// time units. Zero disables an injector; if all are zero, the mixed
	// default catalogue is used.
	BurstPct, BurstExtra, DupPct, DropPct int
	TickJitter                            int64
	// QueueCapacity bounds the ingress queue (0 = unbounded); Policy
	// selects the overflow behaviour.
	QueueCapacity int
	Policy        rtos.OverflowPolicy
	// Deadline is the watchdog's per-event response budget in cycles
	// (0 disables); OverrunPct is the worst-case per-dispatch task
	// overrun in percent (0 disables cost jitter).
	Deadline   int64
	OverrunPct int
	// StepBudget caps interpreter ops per scenario (0 = package default).
	StepBudget int
	// MK, when enabled, checks each scenario's deadline hit/miss stream
	// against the weakly-hard (m,k) constraint; a zero Deadline is then
	// calibrated from the fault-free run (sim.DefaultDeadlineFactor x the
	// nominal worst response).
	MK timing.Constraint
	// MarginKinds, with MK enabled, lists the overload kinds to
	// binary-search for the harshest intensity the constraint survives.
	MarginKinds []sim.OverloadKind
}

// ScenarioResult is one scenario's robustness measurements.
type ScenarioResult struct {
	Name      string
	Seed      uint64
	Injected  int // events after injection
	Served    int
	Dropped   int64
	Rejected  int64
	Misses    int64
	MaxPeak   int // largest per-place peak counter
	Violated  int // sound structural bounds exceeded (must be 0)
	Backlog   int // per-cycle schedule bounds exceeded (overload signal)
	Exhausted bool
	// Timing is the scenario's weakly-hard verdict (nil unless cfg.MK).
	Timing *timing.Verdict `json:",omitempty"`
}

// TimingSafety is the report's weakly-hard block: the constraint and
// deadline the scenarios were judged against, plus one overload-margin
// frontier per configured kind, searched on the fault-free testbench.
type TimingSafety struct {
	MK       string
	Deadline int64
	Margins  []*sim.OverloadMargin `json:",omitempty"`
}

// RobustnessReport is the deterministic outcome of RunRobustness: the same
// configuration reproduces the identical report byte-for-byte.
type RobustnessReport struct {
	Net       string
	Queue     rtos.QueueConfig
	Scenarios []ScenarioResult
	// Timing is present when RobustnessConfig.MK was enabled.
	Timing *TimingSafety `json:",omitempty"`
}

// Format renders the report as a fixed-width table.
func (r *RobustnessReport) Format() string {
	var b strings.Builder
	queue := "unbounded"
	if r.Queue.Capacity > 0 {
		queue = fmt.Sprintf("%d (%s)", r.Queue.Capacity, r.Queue.Policy)
	}
	fmt.Fprintf(&b, "robustness of net %q (ingress queue: %s)\n", r.Net, queue)
	fmt.Fprintf(&b, "  %-16s %18s %8s %8s %8s %8s %8s %10s %8s\n",
		"scenario", "seed", "events", "served", "dropped", "missed", "peak", "violations", "backlog")
	for _, s := range r.Scenarios {
		status := fmt.Sprintf("%d", s.Violated)
		if s.Exhausted {
			status += "!"
		}
		fmt.Fprintf(&b, "  %-16s %#18x %8d %8d %8d %8d %8d %10s %8d\n",
			s.Name, s.Seed, s.Injected, s.Served, s.Dropped+s.Rejected, s.Misses, s.MaxPeak, status, s.Backlog)
	}
	if r.Timing != nil {
		fmt.Fprintf(&b, "\nweakly-hard timing safety %s, deadline %d cycles\n", r.Timing.MK, r.Timing.Deadline)
		for _, s := range r.Scenarios {
			if s.Timing != nil {
				fmt.Fprintf(&b, "  %-16s %s\n", s.Name, s.Timing)
			}
		}
		for _, om := range r.Timing.Margins {
			fmt.Fprintf(&b, "  margin %-8s %s\n", om.Kind+":", om.Result)
		}
	}
	return b.String()
}

// TotalViolations sums sound-bound violations over all scenarios (zero for
// a valid schedule).
func (r *RobustnessReport) TotalViolations() int {
	total := 0
	for _, s := range r.Scenarios {
		total += s.Violated
	}
	return total
}

// RunRobustness synthesises the QSS implementation of the ATM server and
// replays the testbench under cfg.Scenarios seeded fault scenarios with a
// bounded ingress queue, watchdog and cost jitter, checking the observed
// buffer peaks against the net's structural (P-invariant) bounds and the
// schedule's per-cycle bounds.
func RunRobustness(cfg RobustnessConfig, cost rtos.CostModel) (*RobustnessReport, error) {
	if cfg.Scenarios <= 0 {
		cfg.Scenarios = 10
	}
	if cfg.CyclesPerTick <= 0 {
		cfg.CyclesPerTick = 400
	}
	m := New()
	sched, err := core.Solve(m.Net, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("atm: schedule: %w", err)
	}
	tp, err := core.PartitionTasks(m.Net, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("atm: partition: %w", err)
	}
	prog, err := codegen.Generate(sched, tp)
	if err != nil {
		return nil, fmt.Errorf("atm: codegen: %w", err)
	}
	limits, err := sim.StructuralLimits(m.Net)
	if err != nil {
		return nil, err
	}
	cycleLimits, err := sim.ScheduleLimits(sched)
	if err != nil {
		return nil, err
	}

	scenarios := cfg.scenarioSet(m)
	report := &RobustnessReport{
		Net:   m.Net.Name(),
		Queue: rtos.QueueConfig{Capacity: cfg.QueueCapacity, Policy: cfg.Policy},
	}
	// hooks builds a fresh server+feeder per run: the margin search and
	// the deadline calibration replay the testbench several times, and the
	// cell pipeline's state must not leak between probes.
	hooks := func() sim.Hooks {
		w := NewWorkload(m, cfg.Workload)
		server := NewServer(m, DefaultConfig())
		return sim.Hooks{
			Resolver:    server.Resolver(),
			OnFire:      server.OnFire,
			BeforeEvent: w.CellFeeder(m, server),
		}
	}
	deadline := cfg.Deadline
	if cfg.MK.Enabled() {
		if err := cfg.MK.Validate(); err != nil {
			return nil, fmt.Errorf("atm: %w", err)
		}
		if deadline == 0 {
			nominal := NewWorkload(m, cfg.Workload).Events
			deadline, err = sim.CalibrateDeadline(prog, nominal, cost, sim.RobustConfig{
				CyclesPerTick: cfg.CyclesPerTick,
				StepBudget:    cfg.StepBudget,
			}, hooks(), sim.DefaultDeadlineFactor)
			if err != nil {
				return nil, fmt.Errorf("atm: calibrating deadline: %w", err)
			}
		}
		report.Timing = &TimingSafety{MK: cfg.MK.String(), Deadline: deadline}
	}
	for _, sc := range scenarios {
		w := NewWorkload(m, cfg.Workload)
		events := sc.Apply(w.Events)
		server := NewServer(m, DefaultConfig())
		var jitter sim.CostPerturber
		if cfg.OverrunPct > 0 {
			jitter = &fault.CostJitter{Seed: sc.Seed, MaxPct: cfg.OverrunPct}
		}
		rm, err := sim.RunRobust(prog, events, cost, sim.RobustConfig{
			CyclesPerTick: cfg.CyclesPerTick,
			Queue:         report.Queue,
			Deadline:      deadline,
			MK:            cfg.MK,
			Jitter:        jitter,
			StepBudget:    cfg.StepBudget,
			Limits:        limits,
			CycleLimits:   cycleLimits,
		}, sim.Hooks{
			Resolver:    server.Resolver(),
			OnFire:      server.OnFire,
			BeforeEvent: w.CellFeeder(m, server),
		})
		if err != nil && !errors.Is(err, core.ErrBudgetExceeded) {
			return nil, fmt.Errorf("atm: scenario %s: %w", sc.Name, err)
		}
		maxPeak := 0
		for _, p := range rm.PeakCounters {
			if p > maxPeak {
				maxPeak = p
			}
		}
		report.Scenarios = append(report.Scenarios, ScenarioResult{
			Name:      sc.Name,
			Seed:      sc.Seed,
			Injected:  len(events),
			Served:    rm.Events,
			Dropped:   rm.DroppedEvents - rm.RejectedEvents,
			Rejected:  rm.RejectedEvents,
			Misses:    rm.DeadlineMisses,
			MaxPeak:   maxPeak,
			Violated:  rm.BoundViolations,
			Backlog:   len(rm.CycleExceedances),
			Exhausted: rm.BudgetExhausted,
			Timing:    rm.Timing,
		})
	}
	if report.Timing != nil && len(cfg.MarginKinds) > 0 {
		nominal := NewWorkload(m, cfg.Workload).Events
		for _, kind := range cfg.MarginKinds {
			om, err := sim.SearchOverloadMargin(prog, nominal, cost, sim.MarginConfig{
				Kind: kind,
				MK:   cfg.MK,
				Seed: cfg.FaultSeed,
				Robust: sim.RobustConfig{
					CyclesPerTick: cfg.CyclesPerTick,
					Queue:         report.Queue,
					Deadline:      deadline,
					StepBudget:    cfg.StepBudget,
				},
				Hooks: hooks,
			})
			if err != nil {
				return nil, fmt.Errorf("atm: margin %s: %w", kind, err)
			}
			report.Timing.Margins = append(report.Timing.Margins, om)
		}
	}
	return report, nil
}

// scenarioSet builds the scenario list: explicitly configured injectors
// when any fault knob is set, the mixed default catalogue otherwise.
func (cfg RobustnessConfig) scenarioSet(m *Model) []fault.Scenario {
	custom := cfg.BurstPct > 0 || cfg.DupPct > 0 || cfg.DropPct > 0 || cfg.TickJitter > 0
	if !custom {
		return fault.DefaultScenarios(cfg.Scenarios, cfg.FaultSeed)
	}
	var injs []fault.Injector
	if cfg.BurstPct > 0 {
		extra := cfg.BurstExtra
		if extra <= 0 {
			extra = 3
		}
		injs = append(injs, fault.Burst{Pct: cfg.BurstPct, Extra: extra, Source: m.Cell})
	}
	if cfg.DupPct > 0 {
		injs = append(injs, fault.Duplicate{Pct: cfg.DupPct, Source: fault.AnySource})
	}
	if cfg.DropPct > 0 {
		injs = append(injs, fault.Drop{Pct: cfg.DropPct, Source: fault.AnySource})
	}
	if cfg.TickJitter > 0 {
		injs = append(injs, fault.JitterTicks{Window: cfg.TickJitter, Source: m.Tick})
	}
	out := make([]fault.Scenario, cfg.Scenarios)
	base := fault.DefaultScenarios(cfg.Scenarios, cfg.FaultSeed)
	for i := range out {
		out[i] = fault.Scenario{
			Name:      fmt.Sprintf("custom-%02d", i+1),
			Seed:      base[i].Seed,
			Injectors: injs,
		}
	}
	return out
}

package atm

import (
	"fmt"
	"strings"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/rtos"
	"fcpn/internal/sim"
)

// TableIRow is one column of the paper's Table I.
type TableIRow struct {
	Name        string
	Tasks       int
	LinesOfC    int
	ClockCycles int64
	Activations int64
	Cycles      int // finite complete cycles in the valid schedule (QSS only)
}

// TableIResult is the full reproduction of Table I.
type TableIResult struct {
	QSS        TableIRow
	Functional TableIRow
	// Behaviour statistics from the QSS run (sanity: the server really
	// processed the cells).
	Stats ServerStats
}

// RunTableI builds both implementations of the ATM server — the
// quasi-statically scheduled one (2 tasks) and the functional
// task-partitioning baseline (5 tasks, one per Figure-8 module) — and
// drives both with the same testbench, reproducing Table I.
func RunTableI(wl WorkloadConfig, cost rtos.CostModel) (*TableIResult, error) {
	m := New()

	// QSS implementation.
	sched, err := core.Solve(m.Net, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("atm: schedule: %w", err)
	}
	tp, err := core.PartitionTasks(m.Net, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("atm: partition: %w", err)
	}
	qssProg, err := codegen.Generate(sched, tp)
	if err != nil {
		return nil, fmt.Errorf("atm: codegen: %w", err)
	}

	// Functional baseline: one task per module.
	var modules []codegen.Module
	for _, mod := range m.Modules() {
		modules = append(modules, codegen.Module{Name: mod.Name, Transitions: mod.Transitions})
	}
	funProg, err := codegen.GenerateModular(m.Net, modules)
	if err != nil {
		return nil, fmt.Errorf("atm: modular codegen: %w", err)
	}

	w := NewWorkload(m, wl)

	// Both runs use behaviour-backed choice resolution over the same cell
	// stream, each with its own server instance (each implementation owns
	// its state, as the real systems would).
	qssServer := NewServer(m, DefaultConfig())
	qssMetrics, err := sim.RunQSSWithHooks(qssProg, w.Events, cost, sim.Hooks{
		Resolver:    qssServer.Resolver(),
		OnFire:      qssServer.OnFire,
		BeforeEvent: w.CellFeeder(m, qssServer),
	})
	if err != nil {
		return nil, fmt.Errorf("atm: QSS run: %w", err)
	}

	funServer := NewServer(m, DefaultConfig())
	funMetrics, err := sim.RunModularWithHooks(funProg, w.Events, cost, sim.Hooks{
		Resolver:    funServer.Resolver(),
		OnFire:      funServer.OnFire,
		BeforeEvent: w.CellFeeder(m, funServer),
	})
	if err != nil {
		return nil, fmt.Errorf("atm: functional run: %w", err)
	}

	res := &TableIResult{
		QSS: TableIRow{
			Name:        "QSS",
			Tasks:       len(qssProg.Tasks),
			LinesOfC:    codegen.LineCount(codegen.EmitC(qssProg, codegen.CConfig{})),
			ClockCycles: qssMetrics.Cycles,
			Activations: qssMetrics.Activations,
			Cycles:      len(sched.Cycles),
		},
		Functional: TableIRow{
			Name:        "Functional task partitioning",
			Tasks:       len(funProg.Tasks),
			LinesOfC:    codegen.LineCount(codegen.EmitC(funProg, codegen.CConfig{})),
			ClockCycles: funMetrics.Cycles,
			Activations: funMetrics.Activations,
		},
		Stats: qssServer.Stats,
	}
	return res, nil
}

// Format renders the result in the paper's Table I layout.
func (r *TableIResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %28s\n", "Sw implementation", "QSS", "Functional task partitioning")
	fmt.Fprintf(&b, "%-24s %12d %28d\n", "Number of tasks", r.QSS.Tasks, r.Functional.Tasks)
	fmt.Fprintf(&b, "%-24s %12d %28d\n", "Lines of C code", r.QSS.LinesOfC, r.Functional.LinesOfC)
	fmt.Fprintf(&b, "%-24s %12d %28d\n", "Clock cycles", r.QSS.ClockCycles, r.Functional.ClockCycles)
	fmt.Fprintf(&b, "%-24s %12d %28d\n", "Task activations", r.QSS.Activations, r.Functional.Activations)
	return b.String()
}

// ResponseRow summarises a timed single-CPU run of one implementation.
type ResponseRow struct {
	Name                     string
	ResponseMax, ResponseAvg int64
	Utilisation              float64
	DeadlineMisses           int
}

// ResponseResult compares per-event response times of the two
// implementations under real arrival times — the real-time facet of the
// paper's motivation (quasi-static scheduling minimises run-time overhead,
// hence response time, on a single processor).
type ResponseResult struct {
	QSS, Functional ResponseRow
}

// RunResponseTimes drives both implementations with the same timed
// workload on a single CPU and reports worst/average response and
// deadline misses. cyclesPerTick converts workload time to cycles;
// deadline (cycles) may be 0 to disable miss accounting.
func RunResponseTimes(wl WorkloadConfig, cost rtos.CostModel, cyclesPerTick, deadline int64) (*ResponseResult, error) {
	m := New()
	sched, err := core.Solve(m.Net, core.Options{})
	if err != nil {
		return nil, err
	}
	tp, err := core.PartitionTasks(m.Net, core.Options{})
	if err != nil {
		return nil, err
	}
	qssProg, err := codegen.Generate(sched, tp)
	if err != nil {
		return nil, err
	}
	var modules []codegen.Module
	for _, mod := range m.Modules() {
		modules = append(modules, codegen.Module{Name: mod.Name, Transitions: mod.Transitions})
	}
	funProg, err := codegen.GenerateModular(m.Net, modules)
	if err != nil {
		return nil, err
	}

	w := NewWorkload(m, wl)
	run := func(prog *codegen.Program, modular bool) (*sim.TimedMetrics, error) {
		server := NewServer(m, DefaultConfig())
		return sim.RunTimed(prog, w.Events, cost, sim.TimedConfig{
			CyclesPerTick: cyclesPerTick,
			Deadline:      deadline,
			Modular:       modular,
		}, sim.Hooks{
			Resolver:    server.Resolver(),
			OnFire:      server.OnFire,
			BeforeEvent: w.CellFeeder(m, server),
		})
	}
	qm, err := run(qssProg, false)
	if err != nil {
		return nil, err
	}
	fm, err := run(funProg, true)
	if err != nil {
		return nil, err
	}
	return &ResponseResult{
		QSS: ResponseRow{Name: "QSS", ResponseMax: qm.ResponseMax, ResponseAvg: qm.ResponseAvg,
			Utilisation: qm.Utilisation, DeadlineMisses: qm.DeadlineMisses},
		Functional: ResponseRow{Name: "Functional", ResponseMax: fm.ResponseMax, ResponseAvg: fm.ResponseAvg,
			Utilisation: fm.Utilisation, DeadlineMisses: fm.DeadlineMisses},
	}, nil
}

// Package atm reconstructs the paper's case study (Section 5): an ATM
// Server for Virtual Private Networks with a message-discard policy (MSD)
// and a Weighted-Fair-Queueing (WFQ) bandwidth controller.
//
// The FCPN model follows the Figure-8 block structure — CELL input feeding
// MSD → BUFFER → WFQ SCHEDULING, TICK input feeding COUNTER →
// CELL EXTRACT → WFQ SCHEDULING → ARBITER — and is built to the scale the
// paper reports: 49 transitions, 41 places, 11 free-choice places, and two
// independent-rate inputs (Cell, an irregular interrupt, and Tick, a
// periodic timer). Data-dependent conditions (header CRC, VC lookup,
// discard mode, buffer occupancy, port state, line errors, …) are
// abstracted as free choices exactly as the paper prescribes; behavior.go
// supplies the executable semantics that resolves them at run time.
package atm

import "fcpn/internal/petri"

// Model bundles the net with the handles needed by the workload, the
// behaviour layer and the module partition.
type Model struct {
	Net *petri.Net
	// Sources.
	Cell, Tick petri.Transition
	// Module assignment, one entry per transition (module name).
	ModuleOf map[petri.Transition]string
}

// Module names (the five blocks of Figure 8; COUNTER is folded into
// CELL_EXTRACT exactly as the paper's five-task baseline does).
const (
	ModMSD         = "MSD"
	ModBuffer      = "BUFFER"
	ModCellExtract = "CELL_EXTRACT"
	ModWFQ         = "WFQ_SCHEDULING"
	ModArbiter     = "ARBITER"
)

// StatsFlushPeriod is the multirate element of the cell path: per-cell
// statistics are flushed to the management plane every 4 cells.
const StatsFlushPeriod = 4

// RecalibratePeriod is the multirate element of the slot path: the WFQ
// calendar is recalibrated every 8 cell slots.
const RecalibratePeriod = 8

// New constructs the ATM server FCPN.
func New() *Model {
	b := petri.NewBuilder("atmserver")
	m := &Model{ModuleOf: map[petri.Transition]string{}}

	tr := func(name, module string) petri.Transition {
		t := b.Transition(name)
		m.ModuleOf[t] = module
		return t
	}

	// ------------------------------------------------------------------
	// Cell path: MSD → BUFFER → WFQ.
	// ------------------------------------------------------------------
	cell := tr("Cell", ModMSD)        // source: non-empty cell arrives (interrupt)
	pCellIn := b.Place("p_cell_in")   // the cell payload
	pCellCtx := b.Place("p_cell_ctx") // the reception context (port, time)
	b.ArcTP(cell, pCellIn)
	b.ArcTP(cell, pCellCtx)

	rxHdr := tr("t_rx_hdr", ModMSD) // parse the 5-byte header
	pHdrChk := b.Place("p_hdr_chk") // choice 1: HEC check
	b.Chain(pCellIn, rxHdr, pHdrChk)
	b.Arc(pCellCtx, rxHdr)

	hdrOK := tr("t_hdr_ok", ModMSD)
	hdrBad := tr("t_hdr_bad", ModMSD) // corrupted header: count and drop
	pVcLkp := b.Place("p_vc_lkp")
	pCellFin := b.Place("p_cell_fin") // merge: every cell outcome lands here
	b.Chain(pHdrChk, hdrOK, pVcLkp)
	b.Arc(pHdrChk, hdrBad)
	b.ArcTP(hdrBad, pCellFin)

	vcLookup := tr("t_vc_lookup", ModMSD) // VPI/VCI table lookup
	pVcRes := b.Place("p_vc_res")         // choice 2: known VC?
	b.Chain(pVcLkp, vcLookup, pVcRes)

	vcOK := tr("t_vc_ok", ModMSD)
	vcUnknown := tr("t_vc_unknown", ModMSD) // unknown VC: drop
	pMsdQ := b.Place("p_msd_q")             // choice 3: discard mode?
	b.Chain(pVcRes, vcOK, pMsdQ)
	b.Arc(pVcRes, vcUnknown)
	b.ArcTP(vcUnknown, pCellFin)

	modeAccept := tr("t_mode_accept", ModMSD)
	modeDiscard := tr("t_mode_discard", ModMSD)
	pAccQ := b.Place("p_acc_q") // choice 5: room in the buffer?
	pDisQ := b.Place("p_dis_q") // choice 4: end of message?
	b.Chain(pMsdQ, modeAccept, pAccQ)
	b.Chain(pMsdQ, modeDiscard, pDisQ)

	eom := tr("t_eom", ModMSD) // end-of-message: leave discard mode
	mid := tr("t_mid", ModMSD) // mid-message cell: keep discarding
	pEomQ := b.Place("p_eom_q")
	b.Chain(pDisQ, eom, pEomQ)
	b.Arc(pDisQ, mid)
	b.ArcTP(mid, pCellFin)
	resetMode := tr("t_reset_mode", ModMSD) // clear per-VC discard state
	b.Chain(pEomQ, resetMode)
	b.ArcTP(resetMode, pCellFin)

	room := tr("t_room", ModMSD)
	full := tr("t_full", ModMSD) // buffer full: discard whole message (MSD)
	pAdm := b.Place("p_adm")
	pFullQ := b.Place("p_full_q")
	b.Chain(pAccQ, room, pAdm)
	b.Chain(pAccQ, full, pFullQ)
	setDiscard := tr("t_set_discard", ModMSD) // enter discard mode
	b.Chain(pFullQ, setDiscard)
	b.ArcTP(setDiscard, pCellFin)

	// BUFFER: admit the cell.
	enqueue := tr("t_enqueue", ModBuffer)
	pEnq := b.Place("p_enq")          // the stored cell
	pEnqMeta := b.Place("p_enq_meta") // its buffer descriptor
	b.Chain(pAdm, enqueue, pEnq)
	b.ArcTP(enqueue, pEnqMeta)

	occInc := tr("t_occ_inc", ModBuffer) // occupancy++ and thresholds
	pOcc := b.Place("p_occ")             // choice 6: VC already backlogged?
	b.Chain(pEnq, occInc, pOcc)
	b.Arc(pEnqMeta, occInc)

	// WFQ (cell side): timestamp the admitted cell.
	flowNew := tr("t_flow_new", ModWFQ) // idle VC: start = max(V, finish)
	flowAct := tr("t_flow_act", ModWFQ) // backlogged VC: append after tail
	pFn := b.Place("p_fn")
	pFa := b.Place("p_fa")
	b.Chain(pOcc, flowNew, pFn)
	b.Chain(pOcc, flowAct, pFa)
	wfqStart := tr("t_wfq_start", ModWFQ)
	wfqTail := tr("t_wfq_tail", ModWFQ)
	pTs := b.Place("p_ts")          // merge of the two timestamp routes
	pTsMeta := b.Place("p_ts_meta") // the computed finish time
	b.Chain(pFn, wfqStart)
	b.ArcTP(wfqStart, pTs)
	b.ArcTP(wfqStart, pTsMeta)
	b.Chain(pFa, wfqTail)
	b.ArcTP(wfqTail, pTs)
	b.ArcTP(wfqTail, pTsMeta)

	timestamp := tr("t_timestamp", ModWFQ) // write finish time into calendar
	pVtReq := b.Place("p_vt_req")          // merge: both paths poke global V
	b.Chain(pTs, timestamp)
	b.Arc(pTsMeta, timestamp)
	b.ArcTP(timestamp, pCellFin)
	b.ArcTP(timestamp, pVtReq)

	// Per-cell statistics: flushed every StatsFlushPeriod cells.
	cellStat := tr("t_cell_stat", ModMSD)
	pCellCnt := b.Place("p_cellcnt")
	b.Chain(pCellFin, cellStat, pCellCnt)
	statsFlush := tr("t_stats_flush", ModMSD) // sink: management plane
	b.WeightedArc(pCellCnt, statsFlush, StatsFlushPeriod)

	// ------------------------------------------------------------------
	// Slot path: COUNTER → CELL EXTRACT → WFQ → ARBITER.
	// ------------------------------------------------------------------
	tick := tr("Tick", ModCellExtract) // source: periodic cell-slot timer
	pTickIn := b.Place("p_tick_in")    // the timer event
	pTickCtx := b.Place("p_tick_ctx")  // the slot context (slot number)
	b.ArcTP(tick, pTickIn)
	b.ArcTP(tick, pTickCtx)

	slot := tr("t_slot", ModCellExtract) // COUNTER: advance the slot count
	pSlotQ := b.Place("p_slot_q")        // choice 7: buffer empty?
	b.Chain(pTickIn, slot, pSlotQ)
	b.Arc(pTickCtx, slot)

	empty := tr("t_empty", ModCellExtract)
	nonempty := tr("t_nonempty", ModCellExtract)
	pIdleQ := b.Place("p_idle_q")
	pSelQ := b.Place("p_sel_q")
	pSlotFin := b.Place("p_slot_fin") // merge: every slot outcome lands here
	b.Chain(pSlotQ, empty, pIdleQ)
	b.Chain(pSlotQ, nonempty, pSelQ)
	idleCell := tr("t_idle_cell", ModCellExtract) // emit an idle cell
	b.Chain(pIdleQ, idleCell)
	b.ArcTP(idleCell, pSlotFin)

	sel := tr("t_select", ModCellExtract) // min finish-time search
	pHeadQ := b.Place("p_head_q")         // choice 8: selected head valid?
	b.Chain(pSelQ, sel, pHeadQ)

	headOK := tr("t_head_ok", ModCellExtract)
	headStale := tr("t_head_stale", ModCellExtract) // aged-out cell
	pDeqQ := b.Place("p_deq_q")
	b.Chain(pHeadQ, headOK, pDeqQ)
	b.Arc(pHeadQ, headStale)
	dropStale := tr("t_drop_stale", ModCellExtract)
	pStaleQ := b.Place("p_stale_q")
	b.ArcTP(headStale, pStaleQ)
	b.Chain(pStaleQ, dropStale)
	b.ArcTP(dropStale, pSlotFin)

	dequeue := tr("t_dequeue", ModBuffer)
	pNextQ := b.Place("p_next_q")     // the extracted cell
	pDeqMeta := b.Place("p_deq_meta") // its released descriptor
	b.Chain(pDeqQ, dequeue, pNextQ)
	b.ArcTP(dequeue, pDeqMeta)

	occDec := tr("t_occ_dec", ModBuffer) // occupancy--
	pFlowQ := b.Place("p_flow_q")        // choice 9: VC still backlogged?
	b.Chain(pNextQ, occDec, pFlowQ)
	b.Arc(pDeqMeta, occDec)

	more := tr("t_more", ModWFQ)
	last := tr("t_last", ModWFQ)
	pRequeueQ := b.Place("p_requeue_q")
	pRetireQ := b.Place("p_retire_q")
	b.Chain(pFlowQ, more, pRequeueQ)
	b.Chain(pFlowQ, last, pRetireQ)
	wfqRequeue := tr("t_wfq_requeue", ModWFQ) // next cell's finish time
	wfqRetire := tr("t_wfq_retire", ModWFQ)   // VC leaves the calendar
	pVtQ := b.Place("p_vt_q")                 // merge
	b.Chain(pRequeueQ, wfqRequeue)
	b.ArcTP(wfqRequeue, pVtQ)
	b.Chain(pRetireQ, wfqRetire)
	b.ArcTP(wfqRetire, pVtQ)

	advanceV := tr("t_advance_v", ModWFQ) // advance the virtual time
	pEmitQ := b.Place("p_emit_q")         // choice 10: output port free?
	b.Chain(pVtQ, advanceV, pEmitQ)
	b.ArcTP(advanceV, pVtReq)

	// Shared WFQ bookkeeping: the global virtual-time update serves both
	// the cell path and the slot path (the transition both tasks share).
	updateVG := tr("t_update_vg", ModWFQ)
	b.Chain(pVtReq, updateVG)

	// ARBITER: emission onto the output line.
	portOK := tr("t_port_ok", ModArbiter)
	portBusy := tr("t_port_busy", ModArbiter) // contention: retry next slot
	pTxQ := b.Place("p_tx_q")
	b.Chain(pEmitQ, portOK, pTxQ)
	b.Arc(pEmitQ, portBusy)
	b.ArcTP(portBusy, pSlotFin)

	emit := tr("t_emit", ModArbiter)
	pLineQ := b.Place("p_line_q") // choice 11: line status after emission
	b.Chain(pTxQ, emit, pLineQ)

	txOK := tr("t_tx_ok", ModArbiter)
	txErr := tr("t_tx_err", ModArbiter)
	pOkQ := b.Place("p_ok_q")
	b.Chain(pLineQ, txOK, pOkQ)
	b.Arc(pLineQ, txErr)
	b.ArcTP(txErr, pSlotFin)
	countTx := tr("t_count_tx", ModArbiter)
	b.Chain(pOkQ, countTx)
	b.ArcTP(countTx, pSlotFin)

	// Per-slot statistics: the WFQ calendar is recalibrated every
	// RecalibratePeriod slots.
	slotStat := tr("t_slot_stat", ModArbiter)
	pSlotCnt := b.Place("p_slotcnt")
	b.Chain(pSlotFin, slotStat, pSlotCnt)
	recal := tr("t_wfq_recal", ModWFQ) // sink: calendar recalibration
	b.WeightedArc(pSlotCnt, recal, RecalibratePeriod)

	m.Net = b.Build()
	m.Cell = cell
	m.Tick = tick
	return m
}

// Modules returns the five-module partition of the paper's functional
// baseline, in Figure-8 order.
func (m *Model) Modules() []struct {
	Name        string
	Transitions []petri.Transition
} {
	order := []string{ModMSD, ModBuffer, ModCellExtract, ModWFQ, ModArbiter}
	byMod := map[string][]petri.Transition{}
	for t := petri.Transition(0); int(t) < m.Net.NumTransitions(); t++ {
		mod := m.ModuleOf[t]
		byMod[mod] = append(byMod[mod], t)
	}
	var out []struct {
		Name        string
		Transitions []petri.Transition
	}
	for _, name := range order {
		out = append(out, struct {
			Name        string
			Transitions []petri.Transition
		}{name, byMod[name]})
	}
	return out
}

package atm

import (
	"testing"

	"fcpn/internal/core"
)

func TestModelShape(t *testing.T) {
	m := New()
	n := m.Net
	// The paper's model: 49 transitions, 41 places, 11 non-deterministic
	// choices, two independent-rate inputs.
	if got := n.NumTransitions(); got != 49 {
		t.Fatalf("transitions = %d, want 49 (paper Section 5)", got)
	}
	if got := n.NumPlaces(); got != 41 {
		t.Fatalf("places = %d, want 41 (paper Section 5)", got)
	}
	if got := len(n.FreeChoiceSets()); got != 11 {
		t.Fatalf("choices = %d, want 11 (paper Section 5)", got)
	}
	srcs := n.SourceTransitions()
	if len(srcs) != 2 {
		t.Fatalf("sources = %v", n.SequenceNames(srcs))
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("model must be a valid FCPN: %v", err)
	}
}

func TestModelSchedulable(t *testing.T) {
	m := New()
	s, err := core.Solve(m.Net, core.Options{})
	if err != nil {
		t.Fatalf("ATM model must be quasi-statically schedulable: %v", err)
	}
	if len(s.Cycles) == 0 {
		t.Fatal("no cycles")
	}
	t.Logf("allocations=%d distinct reductions (cycles)=%d", s.AllocationCount, len(s.Cycles))
	if s.AllocationCount != 2048 {
		t.Fatalf("allocations = %d, want 2^11", s.AllocationCount)
	}
	// Reduction dedup must collapse the 2048 allocations massively (the
	// paper reports 120 finite complete cycles for its 11-choice model;
	// our reconstruction yields a same-order count).
	if len(s.Cycles) >= 200 || len(s.Cycles) < 20 {
		t.Fatalf("distinct reductions = %d, expected tens (paper: 120)", len(s.Cycles))
	}
	for _, c := range s.Cycles {
		if err := core.VerifyCompleteCycle(m.Net, c.Sequence); err != nil {
			t.Fatalf("invalid cycle: %v", err)
		}
	}
}

func TestModelTwoTasks(t *testing.T) {
	m := New()
	tp, err := core.PartitionTasks(m.Net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumTasks() != 2 {
		for _, task := range tp.Tasks {
			t.Logf("task %s: %v", task.Name, m.Net.SequenceNames(task.Transitions))
		}
		t.Fatalf("tasks = %d, want 2 (paper Table I: QSS yields one task per independent input)", tp.NumTasks())
	}
	// The global virtual-time update is shared between the two tasks.
	shared := tp.SharedTransitions()
	found := false
	for _, tr := range shared {
		if m.Net.TransitionName(tr) == "t_update_vg" {
			found = true
		}
	}
	if !found {
		t.Fatalf("t_update_vg must be shared, got %v", m.Net.SequenceNames(shared))
	}
}

func TestModulesPartition(t *testing.T) {
	m := New()
	mods := m.Modules()
	if len(mods) != 5 {
		t.Fatalf("modules = %d, want 5 (Figure 8)", len(mods))
	}
	total := 0
	for _, mod := range mods {
		if len(mod.Transitions) == 0 {
			t.Fatalf("module %s is empty", mod.Name)
		}
		total += len(mod.Transitions)
	}
	if total != m.Net.NumTransitions() {
		t.Fatalf("modules cover %d of %d transitions", total, m.Net.NumTransitions())
	}
}

package atm

import (
	"fcpn/internal/codegen"
	"fcpn/internal/petri"
)

// CellHeader is one incoming ATM cell as seen by the server.
type CellHeader struct {
	// VC is the virtual-circuit identifier.
	VC int
	// HdrOK is the result of the header error check (HEC).
	HdrOK bool
	// EOM marks the last cell of an AAL5 message.
	EOM bool
}

// VCConfig configures one provisioned virtual circuit.
type VCConfig struct {
	// Weight is the WFQ weight (bandwidth share); must be positive.
	Weight int
}

// Config sizes the server.
type Config struct {
	// BufferCapacity is the shared cell buffer size; arrivals beyond it
	// trigger message discard.
	BufferCapacity int
	// EPDThreshold, when positive, enables Early Packet Discard: a VC
	// starting a *new* message while occupancy is at or above the
	// threshold has the whole message discarded up front, saving the
	// buffer from partially transmitted messages. Classic ATM practice;
	// 0 disables it (only full-buffer discard applies).
	EPDThreshold int
	// MaxAge is the number of slots after which a buffered cell is stale.
	MaxAge int
	// VCs maps VC id to its configuration; cells on other VCs are dropped.
	VCs map[int]VCConfig
}

// DefaultConfig provisions four VCs with 8:4:2:1 weights over a 16-cell
// buffer.
func DefaultConfig() Config {
	return Config{
		BufferCapacity: 16,
		MaxAge:         64,
		VCs: map[int]VCConfig{
			1: {Weight: 8},
			2: {Weight: 4},
			3: {Weight: 2},
			4: {Weight: 1},
		},
	}
}

// bufferedCell is one cell held in the shared buffer.
type bufferedCell struct {
	vc       int
	finish   int64 // WFQ virtual finish time (fixed point, see vtScale)
	enqueued int64 // slot number at admission, for staleness
}

// vtScale is the fixed-point scale of virtual time.
const vtScale = 1 << 16

// Server is the executable semantics of the ATM server: it owns the WFQ
// calendar, the shared buffer, the per-VC discard state, and resolves every
// free choice of the FCPN from that state. It plugs into the generated
// code as a ChoiceResolver plus an OnFire hook.
type Server struct {
	cfg   Config
	model *Model

	// Pending input cell (set by the workload before each Cell event).
	current CellHeader

	// Buffer and WFQ state.
	buffer      []bufferedCell
	occupancy   int
	virtualTime int64
	weightSum   int64
	perVC       map[int]*vcState
	slot        int64

	// The cell/slot currently travelling through the pipeline.
	selected  bufferedCell
	selectedI int

	// Deterministic line/port model.
	portState uint64

	// Statistics.
	Stats ServerStats
}

type vcState struct {
	weight     int
	backlog    int
	lastFin    int64
	discarding bool
	// inMessage is true between a message's first cell and its EOM cell,
	// for the Early-Packet-Discard decision.
	inMessage bool
}

// ServerStats counts externally visible outcomes.
type ServerStats struct {
	CellsSeen, CellsAdmitted, CellsDropped int
	SlotsSeen, CellsEmitted, IdleSlots     int
	TxErrors, StaleDrops                   int
	// PortDrops counts dequeued cells lost to output-port contention
	// (the arbiter's busy path).
	PortDrops int
}

// NewServer builds the behaviour for a model.
func NewServer(model *Model, cfg Config) *Server {
	s := &Server{cfg: cfg, model: model, perVC: map[int]*vcState{}, portState: 0x243F6A8885A308D3}
	for vc, c := range cfg.VCs {
		s.perVC[vc] = &vcState{weight: c.Weight}
	}
	return s
}

// BeginCell presents the next incoming cell; call before delivering a Cell
// event to the task code.
func (s *Server) BeginCell(h CellHeader) {
	s.current = h
	s.Stats.CellsSeen++
}

// BeginSlot advances to the next emission slot; call before a Tick event.
func (s *Server) BeginSlot() {
	s.slot++
	s.Stats.SlotsSeen++
}

// Resolver returns the choice resolver backed by the server state. The
// mapping from choice place to predicate mirrors the comments in model.go.
func (s *Server) Resolver() codegen.ChoiceResolver {
	n := s.model.Net
	name := func(p petri.Place) string { return n.PlaceName(p) }
	return func(p petri.Place, alts []petri.Transition) int {
		pick := func(target string) int {
			for i, t := range alts {
				if n.TransitionName(t) == target {
					return i
				}
			}
			return -1
		}
		switch name(p) {
		case "p_hdr_chk": // choice 1: HEC
			if s.current.HdrOK {
				return pick("t_hdr_ok")
			}
			return pick("t_hdr_bad")
		case "p_vc_res": // choice 2: known VC
			if _, ok := s.perVC[s.current.VC]; ok {
				return pick("t_vc_ok")
			}
			return pick("t_vc_unknown")
		case "p_msd_q": // choice 3: discard mode
			if st := s.perVC[s.current.VC]; st != nil && st.discarding {
				return pick("t_mode_discard")
			}
			return pick("t_mode_accept")
		case "p_dis_q": // choice 4: end of message
			if s.current.EOM {
				return pick("t_eom")
			}
			return pick("t_mid")
		case "p_acc_q": // choice 5: room in the buffer (plus EPD)
			if s.occupancy >= s.cfg.BufferCapacity {
				return pick("t_full")
			}
			if s.cfg.EPDThreshold > 0 && s.occupancy >= s.cfg.EPDThreshold {
				if st := s.perVC[s.current.VC]; st != nil && !st.inMessage {
					// Early packet discard: refuse the whole new message.
					return pick("t_full")
				}
			}
			return pick("t_room")
		case "p_occ": // choice 6: VC already backlogged
			if st := s.perVC[s.current.VC]; st != nil && st.backlog > 1 {
				return pick("t_flow_act")
			}
			return pick("t_flow_new")
		case "p_slot_q": // choice 7: buffer empty
			if s.occupancy == 0 {
				return pick("t_empty")
			}
			return pick("t_nonempty")
		case "p_head_q": // choice 8: selected head stale
			if s.slot-s.selected.enqueued > int64(s.cfg.MaxAge) {
				return pick("t_head_stale")
			}
			return pick("t_head_ok")
		case "p_flow_q": // choice 9: VC still backlogged
			if st := s.perVC[s.selected.vc]; st != nil && st.backlog > 0 {
				return pick("t_more")
			}
			return pick("t_last")
		case "p_emit_q": // choice 10: output port free
			if s.portFree() {
				return pick("t_port_ok")
			}
			return pick("t_port_busy")
		case "p_line_q": // choice 11: line status
			if s.lineOK() {
				return pick("t_tx_ok")
			}
			return pick("t_tx_err")
		default:
			return 0
		}
	}
}

// portFree models output-port contention deterministically: busy one slot
// in sixteen.
func (s *Server) portFree() bool {
	s.portState = s.portState*6364136223846793005 + 1442695040888963407
	return (s.portState>>33)%16 != 0
}

// lineOK models line errors: one emission in sixty-four fails.
func (s *Server) lineOK() bool {
	s.portState = s.portState*6364136223846793005 + 1442695040888963407
	return (s.portState>>33)%64 != 0
}

// OnFire updates the server state as the generated code executes
// transitions. Only the transitions with real side effects matter; the
// rest are pure computation placeholders.
func (s *Server) OnFire(t petri.Transition) {
	switch s.model.Net.TransitionName(t) {
	case "t_enqueue":
		st := s.perVC[s.current.VC]
		start := s.virtualTime
		if st.lastFin > start {
			start = st.lastFin
		}
		fin := start + vtScale/int64(st.weight)
		st.lastFin = fin
		st.backlog++
		st.inMessage = !s.current.EOM
		s.buffer = append(s.buffer, bufferedCell{vc: s.current.VC, finish: fin, enqueued: s.slot})
		s.occupancy++
		s.Stats.CellsAdmitted++
	case "t_set_discard":
		if st := s.perVC[s.current.VC]; st != nil {
			st.discarding = true
			st.inMessage = !s.current.EOM
		}
		s.Stats.CellsDropped++
	case "t_reset_mode":
		if st := s.perVC[s.current.VC]; st != nil {
			st.discarding = false
			st.inMessage = false
		}
		s.Stats.CellsDropped++ // the EOM cell itself is dropped
	case "t_mid":
		if st := s.perVC[s.current.VC]; st != nil {
			st.inMessage = !s.current.EOM
		}
		s.Stats.CellsDropped++
	case "t_hdr_bad", "t_vc_unknown":
		s.Stats.CellsDropped++
	case "t_select":
		// Smallest virtual finish time wins (the WFQ policy).
		best := 0
		for i := 1; i < len(s.buffer); i++ {
			if s.buffer[i].finish < s.buffer[best].finish {
				best = i
			}
		}
		s.selected = s.buffer[best]
		s.selectedI = best
	case "t_dequeue":
		s.buffer = append(s.buffer[:s.selectedI], s.buffer[s.selectedI+1:]...)
		s.occupancy--
		if st := s.perVC[s.selected.vc]; st != nil {
			st.backlog--
		}
	case "t_drop_stale":
		s.buffer = append(s.buffer[:s.selectedI], s.buffer[s.selectedI+1:]...)
		s.occupancy--
		if st := s.perVC[s.selected.vc]; st != nil {
			st.backlog--
		}
		s.Stats.StaleDrops++
	case "t_advance_v":
		// Virtual time advances by 1/Σweights of the backlogged VCs.
		s.weightSum = 0
		for _, st := range s.perVC {
			if st.backlog > 0 {
				s.weightSum += int64(st.weight)
			}
		}
		if s.weightSum > 0 {
			s.virtualTime += vtScale / s.weightSum
		}
	case "t_port_busy":
		s.Stats.PortDrops++
	case "t_emit":
		s.Stats.CellsEmitted++
	case "t_tx_err":
		s.Stats.TxErrors++
	case "t_idle_cell":
		s.Stats.IdleSlots++
	}
}

// Occupancy reports the buffered cell count (for assertions).
func (s *Server) Occupancy() int { return s.occupancy }

// VirtualTime reports the WFQ virtual time (fixed point).
func (s *Server) VirtualTime() int64 { return s.virtualTime }

package atm

import (
	"testing"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/petri"
	"fcpn/internal/rtos"
	"fcpn/internal/sim"
)

func buildQSS(t *testing.T, m *Model) *codegen.Program {
	t.Helper()
	s, err := core.Solve(m.Net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := core.PartitionTasks(m.Net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(s, tp)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBehaviourConservation(t *testing.T) {
	m := New()
	prog := buildQSS(t, m)
	server := NewServer(m, DefaultConfig())
	w := NewWorkload(m, DefaultWorkload())
	_, err := sim.RunQSSWithHooks(prog, w.Events, rtos.DefaultCostModel(), sim.Hooks{
		Resolver:    server.Resolver(),
		OnFire:      server.OnFire,
		BeforeEvent: w.CellFeeder(m, server),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := server.Stats
	if st.CellsSeen != 50 {
		t.Fatalf("cells seen = %d", st.CellsSeen)
	}
	// Cell conservation: every cell is admitted or dropped.
	if st.CellsAdmitted+st.CellsDropped != st.CellsSeen {
		t.Fatalf("cells leak: admitted %d + dropped %d != seen %d",
			st.CellsAdmitted, st.CellsDropped, st.CellsSeen)
	}
	// Buffer conservation: every admitted cell is emitted, dropped stale,
	// lost to port contention, or still buffered.
	if st.CellsEmitted+st.StaleDrops+st.PortDrops+server.Occupancy() != st.CellsAdmitted {
		t.Fatalf("buffer leak: emitted %d + stale %d + port %d + held %d != admitted %d",
			st.CellsEmitted, st.StaleDrops, st.PortDrops, server.Occupancy(), st.CellsAdmitted)
	}
	// Slot conservation: every slot emits, idles, retries or drops stale.
	if st.SlotsSeen == 0 || st.CellsEmitted == 0 {
		t.Fatalf("no traffic processed: %+v", st)
	}
	if server.VirtualTime() <= 0 {
		t.Fatal("virtual time never advanced")
	}
}

func TestBehaviourBufferNeverOverflows(t *testing.T) {
	m := New()
	prog := buildQSS(t, m)
	cfg := DefaultConfig()
	cfg.BufferCapacity = 4
	server := NewServer(m, cfg)
	// Flood: many cells, few ticks.
	wl := DefaultWorkload()
	wl.Cells = 120
	wl.CellMeanGap = 2
	wl.TickPeriod = 40
	w := NewWorkload(m, wl)
	occCheck := 0
	_, err := sim.RunQSSWithHooks(prog, w.Events, rtos.DefaultCostModel(), sim.Hooks{
		Resolver: server.Resolver(),
		OnFire: func(tr petri.Transition) {
			server.OnFire(tr)
			if server.Occupancy() > cfg.BufferCapacity {
				occCheck++
			}
		},
		BeforeEvent: w.CellFeeder(m, server),
	})
	if err != nil {
		t.Fatal(err)
	}
	if occCheck != 0 {
		t.Fatalf("occupancy exceeded capacity %d times", occCheck)
	}
	if server.Stats.CellsDropped == 0 {
		t.Fatal("flooding a tiny buffer must trigger the discard policy")
	}
}

func TestWFQWeightedService(t *testing.T) {
	// With both VCs permanently backlogged, WFQ serves them in proportion
	// to their weights. Enqueue 16 cells on VC1 (weight 8) interleaved
	// with 16 on VC4 (weight 1); among the first nine services exactly
	// eight must go to VC1 (finish times 8192·k vs 65536·k).
	m := New()
	cfg := Config{
		BufferCapacity: 64,
		MaxAge:         1 << 30,
		VCs:            map[int]VCConfig{1: {Weight: 8}, 4: {Weight: 1}},
	}
	server := NewServer(m, cfg)
	tEnqueue, _ := m.Net.TransitionByName("t_enqueue")
	tSelect, _ := m.Net.TransitionByName("t_select")
	tDequeue, _ := m.Net.TransitionByName("t_dequeue")
	for i := 0; i < 16; i++ {
		for _, vc := range []int{1, 4} {
			server.BeginCell(CellHeader{VC: vc, HdrOK: true})
			server.OnFire(tEnqueue)
		}
	}
	if server.Occupancy() != 32 {
		t.Fatalf("occupancy = %d", server.Occupancy())
	}
	served := map[int]int{}
	for i := 0; i < 9; i++ {
		server.OnFire(tSelect)
		served[server.selected.vc]++
		server.OnFire(tDequeue)
	}
	if served[1] != 8 || served[4] != 1 {
		t.Fatalf("first nine services = %v, want VC1:8 VC4:1 (weights 8:1)", served)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	m := New()
	w1 := NewWorkload(m, DefaultWorkload())
	w2 := NewWorkload(m, DefaultWorkload())
	if len(w1.Events) != len(w2.Events) || len(w1.Cells) != len(w2.Cells) {
		t.Fatal("workload not deterministic")
	}
	for i := range w1.Events {
		if w1.Events[i] != w2.Events[i] {
			t.Fatal("event streams differ")
		}
	}
	for i := range w1.Cells {
		if w1.Cells[i] != w2.Cells[i] {
			t.Fatal("cell streams differ")
		}
	}
	// Sanity on defaults clamping.
	w3 := NewWorkload(m, WorkloadConfig{})
	if len(w3.Cells) != 50 {
		t.Fatalf("default cells = %d", len(w3.Cells))
	}
}

func TestTableIReproduction(t *testing.T) {
	res, err := RunTableI(DefaultWorkload(), rtos.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table I shape: QSS has 2 tasks vs 5, fewer lines of C and
	// fewer clock cycles.
	if res.QSS.Tasks != 2 {
		t.Fatalf("QSS tasks = %d, want 2", res.QSS.Tasks)
	}
	if res.Functional.Tasks != 5 {
		t.Fatalf("functional tasks = %d, want 5", res.Functional.Tasks)
	}
	if res.QSS.LinesOfC >= res.Functional.LinesOfC {
		t.Fatalf("QSS LoC %d must beat functional %d (paper: 1664 vs 2187)",
			res.QSS.LinesOfC, res.Functional.LinesOfC)
	}
	if res.QSS.ClockCycles >= res.Functional.ClockCycles {
		t.Fatalf("QSS cycles %d must beat functional %d (paper: 197526 vs 249726)",
			res.QSS.ClockCycles, res.Functional.ClockCycles)
	}
	ratio := float64(res.Functional.ClockCycles) / float64(res.QSS.ClockCycles)
	if ratio < 1.05 || ratio > 2.0 {
		t.Fatalf("cycle ratio %.2f outside plausible band around the paper's 1.26", ratio)
	}
	if res.QSS.Activations >= res.Functional.Activations {
		t.Fatal("QSS must need fewer task activations")
	}
	if got := res.Format(); len(got) == 0 {
		t.Fatal("empty format")
	}
}

func TestResponseTimesQSSWins(t *testing.T) {
	res, err := RunResponseTimes(DefaultWorkload(), rtos.DefaultCostModel(), 400, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.QSS.ResponseMax <= 0 || res.Functional.ResponseMax <= 0 {
		t.Fatalf("responses not recorded: %+v", res)
	}
	// The functional baseline pays scheduler cascades per event: both its
	// worst and average response must exceed QSS's.
	if res.Functional.ResponseMax <= res.QSS.ResponseMax {
		t.Fatalf("functional max response %d must exceed QSS %d",
			res.Functional.ResponseMax, res.QSS.ResponseMax)
	}
	if res.Functional.ResponseAvg <= res.QSS.ResponseAvg {
		t.Fatalf("functional avg response %d must exceed QSS %d",
			res.Functional.ResponseAvg, res.QSS.ResponseAvg)
	}
	// With a deadline between the two worst cases, only the baseline
	// misses.
	deadline := (res.QSS.ResponseMax + res.Functional.ResponseMax) / 2
	res2, err := RunResponseTimes(DefaultWorkload(), rtos.DefaultCostModel(), 400, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if res2.QSS.DeadlineMisses != 0 {
		t.Fatalf("QSS missed %d deadlines below its own worst case", res2.QSS.DeadlineMisses)
	}
	if res2.Functional.DeadlineMisses == 0 {
		t.Fatal("functional baseline must miss the tight deadline")
	}
}

func TestEarlyPacketDiscard(t *testing.T) {
	// With an EPD threshold well below capacity and slow draining, new
	// messages are refused before the buffer ever fills: drops happen
	// while peak occupancy stays under the hard capacity.
	m := New()
	prog := buildQSS(t, m)
	cfg := DefaultConfig()
	cfg.BufferCapacity = 32
	cfg.EPDThreshold = 6
	server := NewServer(m, cfg)
	wl := DefaultWorkload()
	wl.Cells = 80
	wl.CellMeanGap = 2
	wl.TickPeriod = 50
	wl.EOMPct = 50 // short messages: many message starts to refuse
	w := NewWorkload(m, wl)
	peak := 0
	_, err := sim.RunQSSWithHooks(prog, w.Events, rtos.DefaultCostModel(), sim.Hooks{
		Resolver: server.Resolver(),
		OnFire: func(tr petri.Transition) {
			server.OnFire(tr)
			if server.Occupancy() > peak {
				peak = server.Occupancy()
			}
		},
		BeforeEvent: w.CellFeeder(m, server),
	})
	if err != nil {
		t.Fatal(err)
	}
	if server.Stats.CellsDropped == 0 {
		t.Fatal("EPD must drop new messages above the threshold")
	}
	if peak >= cfg.BufferCapacity {
		t.Fatalf("peak occupancy %d reached hard capacity %d: EPD did not protect the buffer",
			peak, cfg.BufferCapacity)
	}
	// Same workload without EPD: fewer early drops, higher peak.
	server2 := NewServer(m, DefaultConfig())
	cfg2 := DefaultConfig()
	cfg2.BufferCapacity = 32
	server2 = NewServer(m, cfg2)
	w2 := NewWorkload(m, wl)
	peak2 := 0
	_, err = sim.RunQSSWithHooks(buildQSS(t, m), w2.Events, rtos.DefaultCostModel(), sim.Hooks{
		Resolver: server2.Resolver(),
		OnFire: func(tr petri.Transition) {
			server2.OnFire(tr)
			if server2.Occupancy() > peak2 {
				peak2 = server2.Occupancy()
			}
		},
		BeforeEvent: w2.CellFeeder(m, server2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak2 <= peak {
		t.Fatalf("without EPD the peak (%d) must exceed the EPD-protected peak (%d)", peak2, peak)
	}
}

func TestStaleCellsDropped(t *testing.T) {
	// With a tiny MaxAge and ticks arriving long after the cells, the
	// head-of-line cells age out and take the t_head_stale path.
	m := New()
	prog := buildQSS(t, m)
	cfg := DefaultConfig()
	cfg.MaxAge = 1
	server := NewServer(m, cfg)
	wl := DefaultWorkload()
	wl.Cells = 30
	wl.CellMeanGap = 2
	wl.TickPeriod = 200 // ticks far apart: cells age before service
	w := NewWorkload(m, wl)
	_, err := sim.RunQSSWithHooks(prog, w.Events, rtos.DefaultCostModel(), sim.Hooks{
		Resolver:    server.Resolver(),
		OnFire:      server.OnFire,
		BeforeEvent: w.CellFeeder(m, server),
	})
	if err != nil {
		t.Fatal(err)
	}
	if server.Stats.StaleDrops == 0 {
		t.Fatalf("expected stale drops with MaxAge=1: %+v", server.Stats)
	}
	// Conservation still holds with the stale path active.
	st := server.Stats
	if st.CellsEmitted+st.StaleDrops+st.PortDrops+server.Occupancy() != st.CellsAdmitted {
		t.Fatalf("conservation violated: %+v held=%d", st, server.Occupancy())
	}
}

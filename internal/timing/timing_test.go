package timing

import (
	"encoding/json"
	"errors"
	"testing"
)

func streamOf(s string) []bool {
	out := make([]bool, len(s))
	for i, c := range s {
		out[i] = c == '0' // '0' = miss
	}
	return out
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Constraint
		ok   bool
	}{
		{"9,10", Constraint{9, 10}, true},
		{" 3 , 5 ", Constraint{3, 5}, true},
		{"0,4", Constraint{0, 4}, true},
		{"4,4", Constraint{4, 4}, true},
		{"5,4", Constraint{}, false},
		{"-1,4", Constraint{}, false},
		{"1,0", Constraint{}, false},
		{"1", Constraint{}, false},
		{"a,b", Constraint{}, false},
		{"", Constraint{}, false},
	} {
		got, err := Parse(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("Parse(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("Parse(%q) = %v; want error", tc.in, got)
		}
	}
}

func TestConstraintString(t *testing.T) {
	if got := (Constraint{9, 10}).String(); got != "(9,10)" {
		t.Fatalf("String = %q", got)
	}
	if (Constraint{}).Enabled() {
		t.Fatal("zero constraint must be disabled")
	}
}

func TestMonitorNilSafety(t *testing.T) {
	var m *Monitor
	m.Observe(true) // must not panic
	m.ObserveOverrun(5)
	if m.Violated() {
		t.Fatal("nil monitor violated")
	}
	if m.Verdict() != nil {
		t.Fatal("nil monitor verdict")
	}
	if NewMonitor(Constraint{}) != nil {
		t.Fatal("disabled constraint must yield nil monitor")
	}
}

func TestMonitorBasics(t *testing.T) {
	// (2,3): at most one miss per window of 3.
	c := Constraint{M: 2, K: 3}

	m := Replay(c, streamOf("110110"))
	if m.Violated() {
		t.Fatalf("misses three apart must satisfy (2,3): %s", m.Verdict())
	}
	v := m.Verdict()
	if v.Events != 6 || v.Misses != 2 || !v.Satisfied {
		t.Fatalf("verdict = %+v", v)
	}

	m = Replay(c, streamOf("11001"))
	if !m.Violated() {
		t.Fatal("two misses in one window must violate (2,3)")
	}
	v = m.Verdict()
	if v.Satisfied || v.Violation == nil {
		t.Fatalf("verdict = %+v", v)
	}
	// The first violating window ends at index 3 ("100").
	if v.Violation.End != 3 || v.Violation.Window != "100" || v.Violation.Misses != 2 {
		t.Fatalf("violation = %+v", v.Violation)
	}
	// Observation continues after the latch: totals cover the stream.
	if v.Events != 5 || v.Misses != 2 {
		t.Fatalf("totals after violation = %+v", v)
	}
}

func TestMonitorShortStreamVacuouslySatisfied(t *testing.T) {
	// Fewer events than K: no complete window, satisfied vacuously even
	// if every event missed.
	m := Replay(Constraint{M: 3, K: 4}, streamOf("000"))
	if m.Violated() {
		t.Fatal("stream shorter than k must be vacuously satisfied")
	}
	v := m.Verdict()
	if !v.Satisfied || v.Misses != 3 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestMonitorZeroMAlwaysSatisfied(t *testing.T) {
	m := Replay(Constraint{M: 0, K: 5}, streamOf("0000000000"))
	if m.Violated() {
		t.Fatal("(0,k) can never be violated")
	}
}

func TestMonitorMEqualsKFirstMissViolates(t *testing.T) {
	m := Replay(Constraint{M: 4, K: 4}, streamOf("1110"))
	v := m.Verdict()
	if v.Satisfied || v.Violation.End != 3 {
		t.Fatalf("(k,k) must break on the first windowed miss: %+v", v)
	}
}

func TestMonitorOverrun(t *testing.T) {
	m := NewMonitor(Constraint{M: 1, K: 2})
	m.Observe(true)
	m.ObserveOverrun(40)
	m.ObserveOverrun(25) // smaller: ignored
	m.Observe(false)
	if v := m.Verdict(); v.WorstOverrun != 40 {
		t.Fatalf("worst overrun = %d, want 40", v.WorstOverrun)
	}
}

func TestBruteForceMatchesMonitorOnCraftedStreams(t *testing.T) {
	cases := []struct {
		c Constraint
		s string
	}{
		{Constraint{2, 3}, "111111"},
		{Constraint{2, 3}, "110110110"},
		{Constraint{2, 3}, "1100"},
		{Constraint{1, 4}, "0101010101"},
		{Constraint{1, 4}, "1000110001"},
		{Constraint{5, 5}, "1111101111"},
		{Constraint{0, 2}, "0000"},
		{Constraint{3, 8}, "1010101010101010"},
		{Constraint{3, 8}, ""},
		{Constraint{1, 1}, "1"},
		{Constraint{1, 1}, "0"},
	}
	for _, tc := range cases {
		stream := streamOf(tc.s)
		got := Replay(tc.c, stream).Verdict()
		want := BruteForce(tc.c, stream)
		ga, _ := json.Marshal(got)
		wa, _ := json.Marshal(want)
		if string(ga) != string(wa) {
			t.Errorf("%v over %q: monitor %s vs brute force %s", tc.c, tc.s, ga, wa)
		}
	}
}

// ---- margin search ---------------------------------------------------

// stepProbe passes at levels <= frontier and fails above it.
func stepProbe(frontier int, count *int) Probe {
	return func(level int) (*Verdict, error) {
		if count != nil {
			*count++
		}
		ok := level <= frontier
		v := &Verdict{M: 1, K: 2, Events: 10, Satisfied: ok}
		if !ok {
			v.Violation = &Violation{End: level, Window: "00", Misses: 2}
		}
		return v, nil
	}
}

func TestSearchMarginFindsFrontier(t *testing.T) {
	for _, frontier := range []int{0, 1, 7, 31, 63, 99} {
		res, err := SearchMargin(100, stepProbe(frontier, nil))
		if err != nil {
			t.Fatal(err)
		}
		if res.Level != frontier {
			t.Fatalf("frontier %d: got margin %d", frontier, res.Level)
		}
		if res.Pass == nil || !res.Pass.Satisfied {
			t.Fatalf("frontier %d: missing pass verdict", frontier)
		}
		if res.Fail == nil || res.Fail.Satisfied {
			t.Fatalf("frontier %d: missing fail verdict", frontier)
		}
	}
}

func TestSearchMarginNominalFailure(t *testing.T) {
	res, err := SearchMargin(50, stepProbe(-1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != -1 || res.Fail == nil || res.Pass != nil {
		t.Fatalf("res = %+v", res)
	}
	if res.Probes != 1 {
		t.Fatalf("nominal failure must stop after one probe, got %d", res.Probes)
	}
}

func TestSearchMarginNeverBreaks(t *testing.T) {
	res, err := SearchMargin(64, stepProbe(64, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != 64 || res.Fail != nil || res.Pass == nil {
		t.Fatalf("res = %+v", res)
	}
	if res.Probes != 2 {
		t.Fatalf("pass-everywhere must stop after two probes, got %d", res.Probes)
	}
}

func TestSearchMarginProbeBudget(t *testing.T) {
	count := 0
	res, err := SearchMargin(1<<20, stepProbe(12345, &count))
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != 12345 {
		t.Fatalf("margin = %d", res.Level)
	}
	if count > 24 { // 2 endpoints + ~20 bisections
		t.Fatalf("too many probes: %d", count)
	}
	if res.Probes != count {
		t.Fatalf("Probes %d != invocations %d", res.Probes, count)
	}
}

func TestSearchMarginErrors(t *testing.T) {
	if _, err := SearchMargin(-1, stepProbe(0, nil)); err == nil {
		t.Fatal("negative ceiling must error")
	}
	boom := errors.New("boom")
	if _, err := SearchMargin(4, func(int) (*Verdict, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("probe error must propagate, got %v", err)
	}
	if _, err := SearchMargin(4, func(int) (*Verdict, error) { return nil, nil }); err == nil {
		t.Fatal("nil verdict must error")
	}
}

func TestSearchMarginZeroCeiling(t *testing.T) {
	res, err := SearchMargin(0, stepProbe(99, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != 0 || res.Probes != 1 {
		t.Fatalf("res = %+v", res)
	}
}

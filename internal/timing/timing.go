// Package timing verifies weakly-hard (m,k) deadline constraints over
// the hit/miss stream of a timed simulation run.
//
// The 1999 paper's "schedulable" means a finite complete cycle exists —
// a statement about memory, not about deadlines. This package adds the
// timing dimension: a task set satisfies the weakly-hard constraint
// (m,k) when every window of K consecutive events contains at least M
// deadline hits (equivalently, at most K-M misses). Weakly-hard
// constraints are the standard language for control loops that tolerate
// occasional misses but not clustered ones (Bernat/Burns/Llamosí 2001;
// ControlTimingSafety.jl synthesises schedules against exactly these).
//
// Two checkers are provided and differentially fuzzed against each
// other: Monitor, an O(1)-per-event sliding-window automaton over a
// ring buffer, and BruteForce, which re-scans every window explicitly.
// The monitor is what the simulators embed; the brute-force checker is
// the oracle that keeps it honest (FuzzWeaklyHard).
//
// On top of the verdicts, SearchMargin turns a parameterised overload
// probe into a graceful-degradation frontier: the largest overload
// intensity at which the constraint still holds (see sim's
// SearchOverloadMargin for the fault-injector ladder that drives it).
package timing

import (
	"fmt"
	"strconv"
	"strings"
)

// Constraint is a weakly-hard (m,k) constraint: at least M deadline
// hits in every window of K consecutive events. The zero value is the
// disabled constraint (Enabled reports false).
type Constraint struct {
	M, K int
}

// Enabled reports whether the constraint is active (K > 0).
func (c Constraint) Enabled() bool { return c.K > 0 }

// Validate checks 0 <= M <= K and K > 0.
func (c Constraint) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("timing: window k must be positive, got %d", c.K)
	}
	if c.M < 0 || c.M > c.K {
		return fmt.Errorf("timing: need 0 <= m <= k, got (%d,%d)", c.M, c.K)
	}
	return nil
}

// String renders the constraint as "(m,k)".
func (c Constraint) String() string { return fmt.Sprintf("(%d,%d)", c.M, c.K) }

// Parse reads a constraint from "m,k" (as the CLIs' -mk flag passes it).
func Parse(s string) (Constraint, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 2 {
		return Constraint{}, fmt.Errorf("timing: want \"m,k\", got %q", s)
	}
	m, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return Constraint{}, fmt.Errorf("timing: bad m in %q: %w", s, err)
	}
	k, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return Constraint{}, fmt.Errorf("timing: bad k in %q: %w", s, err)
	}
	c := Constraint{M: m, K: k}
	if err := c.Validate(); err != nil {
		return Constraint{}, err
	}
	return c, nil
}

// Violation pinpoints the first window that broke the constraint.
type Violation struct {
	// End is the 0-based index of the event that completed the first
	// violating window (the window covers events End-K+1 .. End).
	End int `json:"end"`
	// Window is the window's hit/miss pattern, oldest event first:
	// '1' = deadline hit, '0' = miss.
	Window string `json:"window"`
	// Misses is the number of misses in the window (> K-M).
	Misses int `json:"misses"`
}

func (v *Violation) String() string {
	return fmt.Sprintf("window ending at event %d: %s (%d misses)", v.End, v.Window, v.Misses)
}

// Verdict is the typed outcome of checking one run against a
// constraint. It is JSON-ready and deliberately free of any net-local
// identifiers, so the engine can cache it per canonical hash.
type Verdict struct {
	// M and K restate the constraint the verdict is about.
	M int `json:"m"`
	K int `json:"k"`
	// Events and Misses count the observed completion stream.
	Events int `json:"events"`
	Misses int `json:"misses"`
	// Satisfied reports whether every complete window held at least M
	// hits. A stream shorter than K has no complete window and is
	// satisfied vacuously.
	Satisfied bool `json:"satisfied"`
	// Violation describes the first violating window when !Satisfied.
	Violation *Violation `json:"violation,omitempty"`
	// WorstOverrun is the largest response-time excess past the
	// deadline observed over the whole run (0 when every deadline held
	// or overruns were not measured).
	WorstOverrun int64 `json:"worst_overrun,omitempty"`
}

// String summarises the verdict for CLI output.
func (v *Verdict) String() string {
	c := Constraint{M: v.M, K: v.K}
	if v.Satisfied {
		return fmt.Sprintf("%s satisfied over %d events (%d misses)", c, v.Events, v.Misses)
	}
	return fmt.Sprintf("%s VIOLATED over %d events (%d misses; %s; worst overrun %d)",
		c, v.Events, v.Misses, v.Violation, v.WorstOverrun)
}

// Monitor is the sliding-window (m,k) automaton: a ring buffer of the
// last K hit/miss outcomes and a running miss count, so each
// observation costs O(1) and no allocation after construction. A nil
// Monitor is a valid no-op (Observe does nothing, Verdict returns nil),
// mirroring the nil-safety of rtos.Watchdog.
type Monitor struct {
	c Constraint
	// ring[i] is true when the event was a miss; the window is the last
	// min(events, K) entries ending at (events-1) mod K.
	ring      []bool
	events    int
	misses    int // misses in the current window
	total     int // misses over the whole stream
	violation *Violation
	overrun   int64
}

// NewMonitor builds a monitor for the constraint. The disabled
// constraint (K == 0) yields a nil monitor.
func NewMonitor(c Constraint) *Monitor {
	if !c.Enabled() {
		return nil
	}
	return &Monitor{c: c, ring: make([]bool, c.K)}
}

// Observe feeds one event outcome (miss = deadline missed) into the
// window. The first violating window is latched; observation continues
// afterwards so Events/Misses describe the full stream.
func (m *Monitor) Observe(miss bool) {
	if m == nil {
		return
	}
	slot := m.events % m.c.K
	if m.events >= m.c.K && m.ring[slot] {
		m.misses-- // the outcome falling out of the window
	}
	m.ring[slot] = miss
	if miss {
		m.misses++
		m.total++
	}
	m.events++
	if m.violation == nil && m.events >= m.c.K && m.misses > m.c.K-m.c.M {
		m.violation = &Violation{
			End:    m.events - 1,
			Window: m.window(),
			Misses: m.misses,
		}
	}
}

// ObserveOverrun records a response-time excess past the deadline (the
// watchdog's per-event overrun); the worst one is kept for the verdict.
func (m *Monitor) ObserveOverrun(over int64) {
	if m == nil || over <= m.overrun {
		return
	}
	m.overrun = over
}

// window renders the current window oldest-first as '1' (hit) / '0'
// (miss).
func (m *Monitor) window() string {
	n := m.c.K
	if m.events < n {
		n = m.events
	}
	var b strings.Builder
	b.Grow(n)
	for i := m.events - n; i < m.events; i++ {
		if m.ring[i%m.c.K] {
			b.WriteByte('0')
		} else {
			b.WriteByte('1')
		}
	}
	return b.String()
}

// Violated reports whether some complete window has already broken the
// constraint (false on a nil monitor).
func (m *Monitor) Violated() bool { return m != nil && m.violation != nil }

// Verdict snapshots the monitor. Nil monitor yields a nil verdict.
func (m *Monitor) Verdict() *Verdict {
	if m == nil {
		return nil
	}
	return &Verdict{
		M:            m.c.M,
		K:            m.c.K,
		Events:       m.events,
		Misses:       m.total,
		Satisfied:    m.violation == nil,
		Violation:    m.violation,
		WorstOverrun: m.overrun,
	}
}

// Replay runs a recorded hit/miss stream (e.g. rtos.Watchdog.History)
// through a fresh monitor and returns it, for post-hoc verdicts.
func Replay(c Constraint, misses []bool) *Monitor {
	m := NewMonitor(c)
	for _, miss := range misses {
		m.Observe(miss)
	}
	return m
}

// BruteForce evaluates the constraint over a full stream by scanning
// every window of K consecutive outcomes explicitly — O(len·K), the
// differential oracle the monitor is fuzzed against (FuzzWeaklyHard).
func BruteForce(c Constraint, misses []bool) *Verdict {
	if !c.Enabled() {
		return nil
	}
	v := &Verdict{M: c.M, K: c.K, Events: len(misses), Satisfied: true}
	for _, miss := range misses {
		if miss {
			v.Misses++
		}
	}
	for end := c.K - 1; end < len(misses); end++ {
		inWindow := 0
		var b strings.Builder
		b.Grow(c.K)
		for i := end - c.K + 1; i <= end; i++ {
			if misses[i] {
				inWindow++
				b.WriteByte('0')
			} else {
				b.WriteByte('1')
			}
		}
		if inWindow > c.K-c.M {
			v.Satisfied = false
			v.Violation = &Violation{End: end, Window: b.String(), Misses: inWindow}
			return v
		}
	}
	return v
}

package timing

import (
	"testing"

	"fcpn/internal/rtos"
)

// TestMonitorConsumesWatchdogHistory is the satellite wiring check: the
// watchdog records the hit/miss stream, Replay turns it into a verdict,
// and the verdict matches feeding the monitor online.
func TestMonitorConsumesWatchdogHistory(t *testing.T) {
	c := Constraint{M: 2, K: 3}
	w := &rtos.Watchdog{Budget: 100, HistoryCap: 16}
	online := NewMonitor(c)
	for _, response := range []int64{50, 90, 150, 80, 200, 170, 60} {
		online.Observe(w.Observe(response))
	}
	replayed := Replay(c, w.History()).Verdict()
	got := online.Verdict()
	if got.Satisfied != replayed.Satisfied || got.Misses != replayed.Misses ||
		got.Events != replayed.Events {
		t.Fatalf("online %+v vs replayed %+v", got, replayed)
	}
	// The stream "1101 000..." has two misses inside the window ending
	// at event 4 — (2,3) must be violated with that exact window.
	if got.Satisfied {
		t.Fatal("clustered misses must violate (2,3)")
	}
	if got.Violation.End != 4 || got.Violation.Window != "010" {
		t.Fatalf("violation = %+v", got.Violation)
	}
	if w.WorstOverrun != 100 {
		t.Fatalf("worst overrun = %d", w.WorstOverrun)
	}
}

package timing

import (
	"encoding/json"
	"testing"
)

// FuzzWeaklyHard differentially fuzzes the O(1)-per-event ring-buffer
// monitor against the brute-force every-window checker: for any (m,k)
// and any hit/miss stream, both must produce identical verdicts —
// satisfaction, totals, and the exact first violating window. Run via
// `make fuzz` and the CI fuzz step.
func FuzzWeaklyHard(f *testing.F) {
	f.Add(uint8(2), uint8(3), []byte("110110"))
	f.Add(uint8(9), uint8(10), []byte{0xFF, 0x00, 0xAA})
	f.Add(uint8(1), uint8(1), []byte{0x55})
	f.Add(uint8(0), uint8(5), []byte{0x00, 0x00})
	f.Add(uint8(7), uint8(7), []byte{0x80})
	f.Add(uint8(3), uint8(64), []byte("a longer stream of arbitrary bytes 0101"))
	f.Fuzz(func(t *testing.T, m, k uint8, raw []byte) {
		c := Constraint{M: int(m), K: int(k)}
		if c.Validate() != nil {
			t.Skip()
		}
		// Unpack the raw bytes into a hit/miss stream bit by bit, so the
		// fuzzer controls miss clustering at full resolution.
		stream := make([]bool, 0, len(raw)*8)
		for _, b := range raw {
			for bit := 0; bit < 8; bit++ {
				stream = append(stream, b&(1<<bit) != 0)
			}
		}

		fast := Replay(c, stream).Verdict()
		slow := BruteForce(c, stream)
		fa, err := json.Marshal(fast)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := json.Marshal(slow)
		if err != nil {
			t.Fatal(err)
		}
		if string(fa) != string(sa) {
			t.Fatalf("monitor and brute force diverge for %v over %d events:\n  monitor: %s\n  oracle:  %s",
				c, len(stream), fa, sa)
		}
	})
}

package timing

import "fmt"

// Probe runs the system under test at one integer overload level and
// returns the constraint verdict. Level 0 is the nominal (fault-free)
// intensity; higher levels mean harsher overload. Probes must be pure
// in the level (seeded, no shared state across calls) so the search is
// reproducible.
type Probe func(level int) (*Verdict, error)

// MarginResult is the outcome of SearchMargin: the graceful-degradation
// frontier of one overload dimension.
type MarginResult struct {
	// Level is the largest probed intensity whose verdict satisfied the
	// constraint: -1 when even the nominal run (level 0) violates it.
	Level int `json:"level"`
	// Ceiling is the search's upper bound. Level == Ceiling means the
	// constraint held at every probed intensity — the dimension never
	// broke it within the searched range.
	Ceiling int `json:"ceiling"`
	// Probes counts probe invocations (≤ 2 + log2(Ceiling)).
	Probes int `json:"probes"`
	// Pass is the verdict at Level (nil when Level < 0); Fail is the
	// verdict at the first failing level found, Level+1 after the
	// bisection converges (nil when Level == Ceiling).
	Pass *Verdict `json:"pass,omitempty"`
	Fail *Verdict `json:"fail,omitempty"`
}

// String summarises the frontier for CLI output.
func (r *MarginResult) String() string {
	switch {
	case r.Level < 0:
		return fmt.Sprintf("margin -1 (nominal run already violates; %d probes)", r.Probes)
	case r.Level == r.Ceiling:
		return fmt.Sprintf("margin >= %d (never violated within ceiling; %d probes)", r.Ceiling, r.Probes)
	default:
		return fmt.Sprintf("margin %d of %d (breaks at %d; %d probes)", r.Level, r.Ceiling, r.Level+1, r.Probes)
	}
}

// SearchMargin bisects [0, ceiling] for the largest overload level the
// constraint tolerates. It maintains the invariant pass(lo) ∧ fail(hi):
// for a monotone system the result is the exact frontier; for a
// non-monotone one it is still a well-defined boundary point — a level
// that passes whose successor fails — reached deterministically, so the
// same seeded probe reproduces the same margin.
func SearchMargin(ceiling int, probe Probe) (*MarginResult, error) {
	if ceiling < 0 {
		return nil, fmt.Errorf("timing: margin ceiling must be >= 0, got %d", ceiling)
	}
	res := &MarginResult{Ceiling: ceiling}
	run := func(level int) (*Verdict, error) {
		res.Probes++
		v, err := probe(level)
		if err != nil {
			return nil, fmt.Errorf("timing: margin probe at level %d: %w", level, err)
		}
		if v == nil {
			return nil, fmt.Errorf("timing: margin probe at level %d returned no verdict", level)
		}
		return v, nil
	}

	v0, err := run(0)
	if err != nil {
		return nil, err
	}
	if !v0.Satisfied {
		res.Level = -1
		res.Fail = v0
		return res, nil
	}
	if ceiling == 0 {
		res.Level = 0
		res.Pass = v0
		return res, nil
	}
	vc, err := run(ceiling)
	if err != nil {
		return nil, err
	}
	if vc.Satisfied {
		res.Level = ceiling
		res.Pass = vc
		return res, nil
	}

	lo, hi := 0, ceiling // invariant: lo passes, hi fails
	passV, failV := v0, vc
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		v, err := run(mid)
		if err != nil {
			return nil, err
		}
		if v.Satisfied {
			lo, passV = mid, v
		} else {
			hi, failV = mid, v
		}
	}
	res.Level = lo
	res.Pass = passV
	res.Fail = failV
	return res, nil
}

package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"fcpn/internal/core"
)

func TestEngineInjectorZeroValue(t *testing.T) {
	var inj EngineInjector
	if k := inj.Kind("deadbeef"); k != FaultNone {
		t.Fatalf("zero injector assigned %v", k)
	}
	if err := inj.Hook()(context.Background(), "deadbeef", 0); err != nil {
		t.Fatalf("zero injector errored: %v", err)
	}
}

func TestEngineInjectorDeterministic(t *testing.T) {
	inj := &EngineInjector{Seed: 42, PanicPct: 20, SlowPct: 20, FlakyPct: 20}
	hashes := []string{"a1", "b2", "c3", "d4", "e5", "f6", "0123abcd"}
	for _, h := range hashes {
		k1, k2 := inj.Kind(h), inj.Kind(h)
		if k1 != k2 {
			t.Fatalf("Kind(%q) not deterministic: %v vs %v", h, k1, k2)
		}
	}
	// A different seed must change at least one assignment across a
	// reasonable sample (overwhelmingly likely; deterministic given seeds).
	other := &EngineInjector{Seed: 43, PanicPct: 20, SlowPct: 20, FlakyPct: 20}
	same := true
	for _, h := range hashes {
		if inj.Kind(h) != other.Kind(h) {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 assigned identical faults to all %d hashes", len(hashes))
	}
}

func TestEngineInjectorForce(t *testing.T) {
	inj := &EngineInjector{Force: map[string]JobFaultKind{
		"p": FaultPanic, "s": FaultSlow, "f": FaultFlaky,
	}}
	if got := inj.Kind("p"); got != FaultPanic {
		t.Fatalf("forced panic: got %v", got)
	}
	hook := inj.Hook()

	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("FaultPanic hook did not panic")
			}
		}()
		hook(context.Background(), "p", 0)
	}()

	// Flaky: fails attempt 0 with a budget-typed error, passes attempt 1.
	err := hook(context.Background(), "f", 0)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("flaky attempt 0: got %v, want ErrInjected wrapping ErrBudgetExceeded", err)
	}
	if err := hook(context.Background(), "f", 1); err != nil {
		t.Fatalf("flaky attempt 1: got %v, want nil", err)
	}
}

func TestEngineInjectorSlowHonoursContext(t *testing.T) {
	inj := &EngineInjector{
		SlowFor: time.Minute,
		Force:   map[string]JobFaultKind{"s": FaultSlow},
	}
	cause := errors.New("deadline for test")
	ctx, cancel := context.WithTimeoutCause(context.Background(), 10*time.Millisecond, cause)
	defer cancel()
	start := time.Now()
	err := inj.Hook()(ctx, "s", 0)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slow fault ignored cancellation (took %v)", elapsed)
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, cause) {
		t.Fatalf("cancelled slow fault: got %v, want ErrInjected wrapping the cause", err)
	}
}

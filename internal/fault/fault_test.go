package fault

import (
	"reflect"
	"sort"
	"testing"

	"fcpn/internal/petri"
	"fcpn/internal/rtos"
)

func stream(src petri.Transition, n int) []rtos.Event {
	return rtos.Periodic(src, 5, 0, n)
}

func TestScenarioDeterminism(t *testing.T) {
	src := petri.Transition(0)
	base := stream(src, 100)
	sc := Scenario{Name: "mix", Seed: 42, Injectors: []Injector{
		Burst{Pct: 30, Extra: 2, Source: AnySource},
		Drop{Pct: 20, Source: AnySource},
		JitterTicks{Window: 4, Source: AnySource},
	}}
	a := sc.Apply(base)
	b := sc.Apply(base)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	other := Scenario{Name: "mix", Seed: 43, Injectors: sc.Injectors}.Apply(base)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical streams (suspicious)")
	}
}

func TestScenarioApplyDoesNotMutateInput(t *testing.T) {
	src := petri.Transition(0)
	base := stream(src, 50)
	snapshot := append([]rtos.Event(nil), base...)
	Scenario{Seed: 7, Injectors: []Injector{
		JitterTicks{Window: 9, Source: AnySource},
		Drop{Pct: 50, Source: AnySource},
	}}.Apply(base)
	if !reflect.DeepEqual(base, snapshot) {
		t.Fatal("Apply mutated its input stream")
	}
}

func TestBurstAddsCopiesAtSameTime(t *testing.T) {
	src := petri.Transition(0)
	base := stream(src, 40)
	out := Burst{Pct: 100, Extra: 3, Source: src}.Apply(base, NewRand(1))
	if len(out) != 4*len(base) {
		t.Fatalf("burst of 100%% with 3 extras: %d events, want %d", len(out), 4*len(base))
	}
	for i := 0; i < len(out); i += 4 {
		for j := 1; j < 4; j++ {
			if out[i+j] != out[i] {
				t.Fatalf("burst copy %d differs at %d: %v vs %v", j, i, out[i+j], out[i])
			}
		}
	}
}

func TestDropRemovesOnlyMatching(t *testing.T) {
	a, b := petri.Transition(0), petri.Transition(1)
	base := rtos.Merge(stream(a, 50), stream(b, 50))
	out := Drop{Pct: 100, Source: a}.Apply(base, NewRand(3))
	if len(out) != 50 {
		t.Fatalf("dropping all of source a left %d events, want 50", len(out))
	}
	for _, ev := range out {
		if ev.Source == a {
			t.Fatal("a drop-all filter let a matching event through")
		}
	}
}

func TestDuplicateRate(t *testing.T) {
	src := petri.Transition(0)
	base := stream(src, 1000)
	out := Duplicate{Pct: 25, Source: AnySource}.Apply(base, NewRand(9))
	extra := len(out) - len(base)
	if extra < 180 || extra > 320 {
		t.Fatalf("25%% duplication of 1000 events added %d copies", extra)
	}
}

func TestJitterTicksKeepsSortedAndCount(t *testing.T) {
	src := petri.Transition(0)
	base := stream(src, 200)
	out := JitterTicks{Window: 11, Source: AnySource}.Apply(base, NewRand(5))
	if len(out) != len(base) {
		t.Fatalf("jitter changed the event count: %d != %d", len(out), len(base))
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Time < out[j].Time }) {
		t.Fatal("jittered stream is not time-ordered")
	}
	for _, ev := range out {
		if ev.Time < 0 {
			t.Fatal("jitter produced a negative timestamp")
		}
	}
}

func TestCostJitterDeterministicAndBounded(t *testing.T) {
	base := rtos.DefaultCostModel()
	j := &CostJitter{Seed: 11, MaxPct: 40}
	for d := int64(0); d < 500; d++ {
		got := j.Perturb(base, d)
		if again := j.Perturb(base, d); !reflect.DeepEqual(got, again) {
			t.Fatalf("dispatch %d: non-deterministic perturbation", d)
		}
		if got.Fire < base.Fire || got.Fire > base.Fire*140/100 {
			t.Fatalf("dispatch %d: Fire=%d outside [%d, %d]", d, got.Fire, base.Fire, base.Fire*140/100)
		}
		if got.Interrupt != base.Interrupt || got.Poll != base.Poll {
			t.Fatalf("dispatch %d: kernel costs must not jitter", d)
		}
	}
	if !reflect.DeepEqual((&CostJitter{Seed: 1, MaxPct: 0}).Perturb(base, 3), base) {
		t.Fatal("MaxPct 0 must be the identity")
	}
	var nilJitter *CostJitter
	if !reflect.DeepEqual(nilJitter.Perturb(base, 3), base) {
		t.Fatal("nil jitter must be the identity")
	}
}

func TestDefaultScenariosStableNaming(t *testing.T) {
	got := DefaultScenarios(5, 0xFA117)
	wantNames := []string{"burst-01", "duplicate-02", "drop-03", "jitter-04", "burst+drop-05"}
	for i, sc := range got {
		if sc.Name != wantNames[i] {
			t.Fatalf("scenario %d named %q, want %q", i, sc.Name, wantNames[i])
		}
		if sc.Seed == 0 {
			t.Fatal("zero scenario seed")
		}
	}
	again := DefaultScenarios(5, 0xFA117)
	if !reflect.DeepEqual(got, again) {
		t.Fatal("DefaultScenarios is not deterministic")
	}
	if BurstScenarios(3, 1, AnySource, 50, 2)[2].Name != "burst-03" {
		t.Fatal("BurstScenarios naming changed")
	}
}

// Package fault perturbs RTOS workloads deterministically: seedable
// injectors rewrite an event stream (bursts, duplicates, losses, timer
// jitter) and a cost-jitter model perturbs the kernel cost model per
// dispatch (task overruns).
//
// The paper's guarantee — a valid quasi-static schedule implies bounded
// memory and run-to-completion tasks — is proved for the net, not for the
// environment. The injectors model a hostile environment so the simulator
// (internal/sim) can check the guarantee *executably*: statically computed
// buffer bounds must hold under any legal firing sequence, however the
// input events arrive. Everything here is a pure function of (input
// stream, seed); the same seed reproduces the same perturbed workload
// byte-for-byte, which the robustness reports rely on.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"fcpn/internal/petri"
	"fcpn/internal/rtos"
)

// AnySource matches every event source in an injector filter.
const AnySource = petri.Transition(-1)

// Rand is a small deterministic generator (splitmix64). Injectors draw
// from it in a fixed order, so a Scenario's output depends only on the
// input stream and the seed.
type Rand struct{ state uint64 }

// NewRand seeds a generator. The zero seed is remapped so the stream is
// never the all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next value of the splitmix64 sequence.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n); n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("fault: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Pct returns a value in [0, 100), for percentage draws.
func (r *Rand) Pct() int { return r.Intn(100) }

// Injector rewrites an event stream. Apply must not mutate its input and
// must draw randomness only from r.
type Injector interface {
	// Name identifies the injector in reports ("burst", "drop", ...).
	Name() string
	// Apply returns the perturbed stream, time-ordered.
	Apply(events []rtos.Event, r *Rand) []rtos.Event
}

func matches(filter petri.Transition, ev rtos.Event) bool {
	return filter == AnySource || ev.Source == filter
}

// Burst turns selected events into back-to-back arrival bursts: Extra
// copies of the event are inserted at the same timestamp, modelling an
// interrupt storm or a device retrying faster than the service rate.
type Burst struct {
	// Pct is the percentage of matching events that burst.
	Pct int
	// Extra is the number of additional copies per bursting event.
	Extra int
	// Source restricts the injector to one event source (AnySource = all).
	Source petri.Transition
}

// Name implements Injector.
func (b Burst) Name() string { return "burst" }

// Apply implements Injector.
func (b Burst) Apply(events []rtos.Event, r *Rand) []rtos.Event {
	// Size for the worst case (every matching event bursts) up front: the
	// margin bisection applies injectors thousands of times, and growing
	// the slice inside the loop dominated its profile.
	worst := len(events)
	if b.Pct > 0 && b.Extra > 0 {
		worst += len(events) * b.Extra
	}
	out := make([]rtos.Event, 0, worst)
	for _, ev := range events {
		out = append(out, ev)
		if !matches(b.Source, ev) || r.Pct() >= b.Pct {
			continue
		}
		for i := 0; i < b.Extra; i++ {
			out = append(out, ev)
		}
	}
	return out
}

// Duplicate re-delivers selected events once (the duplicated-interrupt /
// at-least-once delivery fault).
type Duplicate struct {
	Pct    int
	Source petri.Transition
}

// Name implements Injector.
func (d Duplicate) Name() string { return "duplicate" }

// Apply implements Injector.
func (d Duplicate) Apply(events []rtos.Event, r *Rand) []rtos.Event {
	out := make([]rtos.Event, 0, len(events))
	for _, ev := range events {
		out = append(out, ev)
		if matches(d.Source, ev) && r.Pct() < d.Pct {
			out = append(out, ev)
		}
	}
	return out
}

// Drop removes selected events (event loss: a missed interrupt or an
// overrun input latch).
type Drop struct {
	Pct    int
	Source petri.Transition
}

// Name implements Injector.
func (d Drop) Name() string { return "drop" }

// Apply implements Injector.
func (d Drop) Apply(events []rtos.Event, r *Rand) []rtos.Event {
	out := make([]rtos.Event, 0, len(events))
	for _, ev := range events {
		if matches(d.Source, ev) && r.Pct() < d.Pct {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// JitterTicks perturbs the timestamps of matching events by a uniform
// offset in [-Window, +Window] and re-sorts the stream, reordering timer
// ticks relative to the other inputs (clock drift / deferred timer ISR).
// Times never go negative.
type JitterTicks struct {
	Window int64
	Source petri.Transition
}

// Name implements Injector.
func (j JitterTicks) Name() string { return "jitter-ticks" }

// Apply implements Injector.
func (j JitterTicks) Apply(events []rtos.Event, r *Rand) []rtos.Event {
	out := append([]rtos.Event(nil), events...)
	if j.Window <= 0 {
		return out
	}
	span := 2*j.Window + 1
	for i := range out {
		if !matches(j.Source, out[i]) {
			continue
		}
		t := out[i].Time + int64(r.Intn(int(span))) - j.Window
		if t < 0 {
			t = 0
		}
		out[i].Time = t
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Time < out[b].Time })
	return out
}

// Scenario is one named, seeded fault configuration: the injectors run in
// order over a fresh Rand(Seed), so applying the same scenario to the
// same stream always yields the same perturbed stream.
type Scenario struct {
	Name      string
	Seed      uint64
	Injectors []Injector
}

// Apply runs the scenario's injector chain over the stream.
func (s Scenario) Apply(events []rtos.Event) []rtos.Event {
	r := NewRand(s.Seed)
	out := append([]rtos.Event(nil), events...)
	for _, inj := range s.Injectors {
		out = inj.Apply(out, r)
	}
	return out
}

// Describe renders the injector chain ("burst+drop") for reports.
func (s Scenario) Describe() string {
	if len(s.Injectors) == 0 {
		return "baseline"
	}
	names := make([]string, len(s.Injectors))
	for i, inj := range s.Injectors {
		names[i] = inj.Name()
	}
	return strings.Join(names, "+")
}

// BurstScenarios builds n seeded event-burst scenarios (the adversarial
// workload of the robustness acceptance check): each bursts pct% of
// matching events with extra back-to-back copies.
func BurstScenarios(n int, baseSeed uint64, src petri.Transition, pct, extra int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = Scenario{
			Name:      fmt.Sprintf("burst-%02d", i+1),
			Seed:      scenarioSeed(baseSeed, i),
			Injectors: []Injector{Burst{Pct: pct, Extra: extra, Source: src}},
		}
	}
	return out
}

// DefaultScenarios builds n mixed scenarios cycling through the injector
// catalogue: bursts, duplicates, losses, tick jitter, and a combined
// burst+loss case.
func DefaultScenarios(n int, baseSeed uint64) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		seed := scenarioSeed(baseSeed, i)
		var injs []Injector
		var kind string
		switch i % 5 {
		case 0:
			kind, injs = "burst", []Injector{Burst{Pct: 30, Extra: 3, Source: AnySource}}
		case 1:
			kind, injs = "duplicate", []Injector{Duplicate{Pct: 25, Source: AnySource}}
		case 2:
			kind, injs = "drop", []Injector{Drop{Pct: 20, Source: AnySource}}
		case 3:
			kind, injs = "jitter", []Injector{JitterTicks{Window: 7, Source: AnySource}}
		default:
			kind, injs = "burst+drop", []Injector{
				Burst{Pct: 20, Extra: 2, Source: AnySource},
				Drop{Pct: 15, Source: AnySource},
			}
		}
		out[i] = Scenario{
			Name:      fmt.Sprintf("%s-%02d", kind, i+1),
			Seed:      seed,
			Injectors: injs,
		}
	}
	return out
}

func scenarioSeed(base uint64, i int) uint64 {
	r := NewRand(base ^ (uint64(i)+1)*0xD1342543DE82EF95)
	return r.Uint64()
}

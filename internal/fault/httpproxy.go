package fault

// The HTTP fault proxy extends the fault model from the synthesised
// system's inputs (injectors) and the analysis engine's jobs
// (EngineInjector) to the *network between hosts*: it sits in front of
// a qssd backend and garbles a seeded fraction of the traffic the way
// a sick host or a flaky link would — dropped connections, TCP resets,
// delays, 5xx substitutions, torn response bodies. The coordinator
// (internal/coord) is the component under test: every injected fault is
// one it must absorb without changing an answer.

import (
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ProxyBehavior is the seeded fault mix of an HTTP proxy. Percentages
// are cumulative bands over one per-request draw, so at most one fault
// fires per request; their sum must stay ≤ 100 (the remainder passes
// through clean).
type ProxyBehavior struct {
	// DropPct closes the client connection without any response bytes
	// (the backend process died mid-request).
	DropPct int
	// ResetPct closes the client connection with a TCP RST (linger 0),
	// the classic "connection reset by peer".
	ResetPct int
	// Err5xxPct substitutes a 502 with a non-JSON body for whatever the
	// backend would have said (a confused intermediary).
	Err5xxPct int
	// TornPct forwards the request but truncates the response body
	// halfway and kills the connection — the torn-JSON case every
	// reader must treat as transient.
	TornPct int
	// DelayPct holds the request for Delay before forwarding (a stalled
	// host; pairs with the coordinator's hedging threshold).
	DelayPct int
	Delay    time.Duration
}

func (b ProxyBehavior) active() bool {
	return b.DropPct+b.ResetPct+b.Err5xxPct+b.TornPct+b.DelayPct > 0
}

// Proxy is a seeded HTTP fault injector fronting one backend base URL.
// Fault decisions draw from a splitmix64 stream in request-arrival
// order, so a serial request sequence reproduces the same fault
// sequence for the same seed. Behaviour can be swapped at runtime
// (SetBehavior/Clear), which is how the chaos soak garbles a healthy
// backend mid-batch.
type Proxy struct {
	backend string
	hc      *http.Client

	mu       sync.Mutex
	rng      *Rand
	behavior ProxyBehavior
	injected map[string]int64
}

// NewProxy builds a passthrough proxy for the backend base URL (e.g.
// "http://127.0.0.1:8080"). Faults start disabled.
func NewProxy(backend string, seed uint64) *Proxy {
	return &Proxy{
		backend:  strings.TrimRight(backend, "/"),
		hc:       &http.Client{Timeout: 2 * time.Minute},
		rng:      NewRand(seed),
		injected: map[string]int64{},
	}
}

// SetBehavior swaps the fault mix in. The seeded draw stream continues
// where it was, so enabling faults mid-run keeps determinism relative
// to the request order.
func (p *Proxy) SetBehavior(b ProxyBehavior) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.behavior = b
}

// Clear disables all faults; the proxy passes traffic through.
func (p *Proxy) Clear() { p.SetBehavior(ProxyBehavior{}) }

// Injected snapshots the per-kind injected-fault tallies
// ("drop"/"reset"/"5xx"/"torn"/"delay").
func (p *Proxy) Injected() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.injected))
	for k, v := range p.injected {
		out[k] = v
	}
	return out
}

// decide draws one fault for this request ("" = pass through clean).
func (p *Proxy) decide() (kind string, delay time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.behavior
	if !b.active() {
		return "", 0
	}
	draw := p.rng.Pct()
	bands := []struct {
		kind string
		pct  int
	}{
		{"drop", b.DropPct}, {"reset", b.ResetPct}, {"5xx", b.Err5xxPct},
		{"torn", b.TornPct}, {"delay", b.DelayPct},
	}
	acc := 0
	for _, band := range bands {
		acc += band.pct
		if draw < acc {
			p.injected[band.kind]++
			return band.kind, b.Delay
		}
	}
	return "", 0
}

// abort kills the client connection. With reset it goes out as a TCP
// RST; otherwise as a bare FIN with no (or a truncated) response.
func abort(w http.ResponseWriter, reset bool) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// Not hijackable (e.g. HTTP/2): the panic aborts the handler and
		// the server resets the stream, which is the same client-visible
		// fault class.
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	if reset {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
	}
	conn.Close()
}

// ServeHTTP implements http.Handler: decide a fault, then forward.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	kind, delay := p.decide()
	switch kind {
	case "drop":
		abort(w, false)
		return
	case "reset":
		abort(w, true)
		return
	case "5xx":
		w.Header().Set("Content-Type", "text/plain")
		w.WriteHeader(http.StatusBadGateway)
		io.WriteString(w, "injected fault: bad gateway\n")
		return
	case "delay":
		time.Sleep(delay)
	}

	url := p.backend + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		http.Error(w, "proxy: "+err.Error(), http.StatusBadGateway)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		http.Error(w, "proxy: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, "proxy: "+err.Error(), http.StatusBadGateway)
		return
	}

	if kind == "torn" {
		// Advertise the full length, send half, kill the connection: the
		// client sees a well-formed header and a truncated body.
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		abort(w, false)
		return
	}

	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

package fault

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoBackend answers every request with a small JSON document.
func echoBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"echo": string(body), "path": r.URL.Path})
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestProxyPassthrough(t *testing.T) {
	backend := echoBackend(t)
	p := NewProxy(backend.URL, 1)
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/analyze", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["echo"] != "hello" || got["path"] != "/v1/analyze" {
		t.Fatalf("passthrough garbled the request: %+v", got)
	}
	if inj := p.Injected(); len(inj) != 0 {
		t.Fatalf("clean proxy injected faults: %+v", inj)
	}
}

func TestProxy5xxSubstitution(t *testing.T) {
	backend := echoBackend(t)
	p := NewProxy(backend.URL, 1)
	p.SetBehavior(ProxyBehavior{Err5xxPct: 100})
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("code = %d, want 502", resp.StatusCode)
	}
	if json.Valid(body) {
		t.Fatalf("substituted body should not be JSON: %q", body)
	}
	if p.Injected()["5xx"] != 1 {
		t.Fatalf("injected tally: %+v", p.Injected())
	}
}

func TestProxyDropAndReset(t *testing.T) {
	backend := echoBackend(t)
	for _, b := range []ProxyBehavior{{DropPct: 100}, {ResetPct: 100}} {
		p := NewProxy(backend.URL, 1)
		p.SetBehavior(b)
		front := httptest.NewServer(p)
		if _, err := http.Get(front.URL + "/v1/stats"); err == nil {
			t.Fatalf("%+v: killed connection must surface as a transport error", b)
		}
		front.Close()
	}
}

func TestProxyTornBody(t *testing.T) {
	backend := echoBackend(t)
	p := NewProxy(backend.URL, 1)
	p.SetBehavior(ProxyBehavior{TornPct: 100})
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/analyze", "text/plain",
		strings.NewReader(strings.Repeat("payload ", 16)))
	if err != nil {
		t.Fatal(err) // headers should arrive fine
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil && json.Valid(body) {
		t.Fatalf("torn body read cleanly as valid JSON: err=%v body=%q", rerr, body)
	}
	if p.Injected()["torn"] != 1 {
		t.Fatalf("injected tally: %+v", p.Injected())
	}
}

func TestProxyDelayThenForward(t *testing.T) {
	backend := echoBackend(t)
	p := NewProxy(backend.URL, 1)
	p.SetBehavior(ProxyBehavior{DelayPct: 100, Delay: 20 * time.Millisecond})
	front := httptest.NewServer(p)
	defer front.Close()

	t0 := time.Now()
	resp, err := http.Get(front.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("delayed request returned in %v", d)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delayed request must still forward: %d", resp.StatusCode)
	}
}

// TestProxyDeterministicSequence pins the seeded draw stream: two
// proxies with the same seed and behaviour inject the same fault
// sequence over a serial request stream.
func TestProxyDeterministicSequence(t *testing.T) {
	backend := echoBackend(t)
	mix := ProxyBehavior{Err5xxPct: 30, DelayPct: 20, Delay: time.Millisecond}
	run := func(seed uint64) []int64 {
		p := NewProxy(backend.URL, seed)
		p.SetBehavior(mix)
		front := httptest.NewServer(p)
		defer front.Close()
		for i := 0; i < 40; i++ {
			resp, err := http.Get(front.URL + "/x")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		inj := p.Injected()
		return []int64{inj["5xx"], inj["delay"]}
	}
	a, b := run(7), run(7)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a[0] == 0 || a[1] == 0 {
		t.Fatalf("mix injected nothing: %v", a)
	}
	if c := run(8); c[0] == a[0] && c[1] == a[1] {
		t.Logf("different seed produced same tallies (possible, unlikely): %v", c)
	}
}

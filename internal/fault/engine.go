package fault

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fcpn/internal/core"
)

// This file is the engine-level injector: where fault.go perturbs RTOS
// event streams, EngineInjector perturbs analysis *jobs* — panicking
// workers, jobs that outlive their deadline, transient budget trips —
// through the engine's Config.FaultHook. Decisions are a pure function
// of (seed, canonical hash), so a faulted corpus run is reproducible
// net-for-net, which is what lets the robustness tests assert that the
// healthy nets' reports stay byte-identical to a fault-free run.

// ErrInjected marks every error produced by EngineInjector, so tests can
// tell an injected failure from a genuine one with errors.Is.
var ErrInjected = errors.New("fault: injected")

// JobFaultKind classifies what an EngineInjector does to one job attempt.
type JobFaultKind int

const (
	// FaultNone leaves the attempt alone.
	FaultNone JobFaultKind = iota
	// FaultPanic panics on the worker (exercises recovery + quarantine).
	FaultPanic
	// FaultSlow sleeps for SlowFor or until the job's deadline fires,
	// whichever comes first (exercises per-job timeouts).
	FaultSlow
	// FaultFlaky fails the first attempt with an injected transient
	// budget trip and lets retries through (exercises the retry policy).
	FaultFlaky
)

// String names the kind for reports.
func (k JobFaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultSlow:
		return "slow"
	case FaultFlaky:
		return "flaky"
	default:
		return "none"
	}
}

// EngineInjector decides, per canonical hash, whether an analysis job is
// perturbed and how. Percentage fields select background victims
// pseudo-randomly (seeded by Seed XOR a hash of the net's canonical
// hash); Force pins specific hashes to specific faults for targeted
// tests. The zero value injects nothing.
type EngineInjector struct {
	// Seed drives the per-hash percentage draws.
	Seed uint64
	// PanicPct / SlowPct / FlakyPct are the percentages of jobs (by
	// hash) hit by each fault. Draws are made in that order from one
	// per-hash generator, so the classes are disjoint in practice.
	PanicPct, SlowPct, FlakyPct int
	// SlowFor is how long FaultSlow sleeps (default 50ms).
	SlowFor time.Duration
	// Force pins canonical hashes to fault kinds, overriding the draws.
	Force map[string]JobFaultKind
}

// Kind reports the fault assigned to a canonical hash.
func (inj *EngineInjector) Kind(hash string) JobFaultKind {
	if k, ok := inj.Force[hash]; ok {
		return k
	}
	if inj.PanicPct <= 0 && inj.SlowPct <= 0 && inj.FlakyPct <= 0 {
		return FaultNone
	}
	r := NewRand(inj.Seed ^ hashSeed(hash))
	if r.Pct() < inj.PanicPct {
		return FaultPanic
	}
	if r.Pct() < inj.SlowPct {
		return FaultSlow
	}
	if r.Pct() < inj.FlakyPct {
		return FaultFlaky
	}
	return FaultNone
}

// Hook adapts the injector to engine.Config.FaultHook. Panic and slow
// faults hit every attempt of a victim (panics quarantine, so there is
// at most one; a slow job must not get faster on retry). Flaky faults
// hit only attempt 0, so the engine's retry-once policy recovers them.
func (inj *EngineInjector) Hook() func(ctx context.Context, hash string, attempt int) error {
	return func(ctx context.Context, hash string, attempt int) error {
		switch inj.Kind(hash) {
		case FaultPanic:
			panic(fmt.Sprintf("fault: injected panic for %s (attempt %d)", hash, attempt))
		case FaultSlow:
			slow := inj.SlowFor
			if slow <= 0 {
				slow = 50 * time.Millisecond
			}
			timer := time.NewTimer(slow)
			defer timer.Stop()
			select {
			case <-timer.C:
				return nil
			case <-ctx.Done():
				return fmt.Errorf("%w: slow job cancelled: %w", ErrInjected, context.Cause(ctx))
			}
		case FaultFlaky:
			if attempt == 0 {
				return fmt.Errorf("%w: transient budget trip: %w", ErrInjected, core.ErrBudgetExceeded)
			}
		}
		return nil
	}
}

// hashSeed folds a canonical hash string into a 64-bit seed (FNV-1a).
func hashSeed(hash string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(hash); i++ {
		h ^= uint64(hash[i])
		h *= 1099511628211
	}
	return h
}

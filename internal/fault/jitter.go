package fault

import "fcpn/internal/rtos"

// CostJitter perturbs the kernel cost model per dispatch, modelling task
// overruns: the k-th dispatch runs up to MaxPct percent slower than the
// nominal cost model. The perturbation is a pure function of (Seed,
// dispatch index), so runs reproduce exactly.
type CostJitter struct {
	Seed uint64
	// MaxPct is the maximum overrun, in percent of the nominal costs
	// (40 = the slowest dispatch takes 1.4x nominal).
	MaxPct int
}

// Perturb returns the cost model for one dispatch. The activation, firing
// and per-operation costs scale together (the whole task body runs slow);
// the interrupt and poll costs are unchanged (they are kernel work, not
// task work).
func (j *CostJitter) Perturb(base rtos.CostModel, dispatch int64) rtos.CostModel {
	if j == nil || j.MaxPct <= 0 {
		return base
	}
	r := NewRand(j.Seed ^ (uint64(dispatch)+1)*0xA0761D6478BD642F)
	pct := int64(100 + r.Intn(j.MaxPct+1))
	out := base
	out.Activation = base.Activation * pct / 100
	out.Fire = base.Fire * pct / 100
	out.Op = base.Op * pct / 100
	return out
}
